// staled-router: the scatter-gather front tier over N shard staleds
// (src/cluster/README.md). Clients talk to the router exactly as they
// would to a single-node staled; the router forwards point lookups to the
// owning shard and merges aggregate answers from every shard:
//
//   $ ./staled_router [--port N] [--bind ADDR] [--threads N]
//                     --shard-endpoint HOST:PORT [--shard-endpoint ...]
//                     [--timeout-ms N] [--health-interval-ms N]
//                     [--log-file PATH] [--log-level LEVEL]
//   staled-router: listening on 127.0.0.1:8080 (2 shards, 4 workers)
//
// --shard-endpoint order matters: the k-th flag must name the staled
// serving shard k/N (started with --shard k/N over shard-k-of-N.scw).
//
// /v1/stale and /v1/summary?domain= forward to the owning shard (one retry
// on a fresh connection, then 503). /v1/key, /v1/revocation and the global
// /v1/summary scatter to every shard under --timeout-ms and merge;
// key/revocation fail closed on a missing shard, the global summary
// degrades to a "partial":true body. /metrics, /statusz and /healthz
// describe the router itself (per-shard health, latency, fan-out); POST
// /ingest is 404 here — deltas go directly to the owning shard's staled.
//
// SIGINT/SIGTERM drain gracefully like staled: no new connections,
// in-flight requests finish, exit 0. --port 0 binds an ephemeral port and
// prints the outcome on stdout in the same greppable shape staled uses.
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "stalecert/cluster/router.hpp"
#include "stalecert/obs/event_log.hpp"
#include "stalecert/query/server.hpp"

using namespace stalecert;

namespace {

constexpr const char* kUsage =
    "staled_router [--port N] [--bind ADDR] [--threads N] "
    "--shard-endpoint HOST:PORT [--shard-endpoint ...] [--timeout-ms N] "
    "[--health-interval-ms N] [--log-file PATH] [--log-level LEVEL]";

int usage(const std::string& detail) {
  std::cerr << "usage: " << kUsage << '\n';
  if (!detail.empty()) std::cerr << detail << '\n';
  return 2;
}

bool parse_endpoint(const std::string& text, cluster::ShardEndpoint* out) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= text.size()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long port = std::strtoul(text.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || port == 0 || port > 65535) {
    return false;
  }
  out->host = text.substr(0, colon);
  out->port = static_cast<std::uint16_t>(port);
  return true;
}

int run(int argc, char** argv) {
  query::HttpServer::Options server_options;
  cluster::RouterOptions router_options;
  router_options.build_info = "stalecert-staled-router/1";
  std::string log_file;
  obs::LogLevel log_level = obs::LogLevel::kInfo;
  if (const char* env = std::getenv("STALECERT_LOG_LEVEL")) {
    if (const auto parsed = obs::parse_log_level(env)) log_level = *parsed;
  }

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    const bool takes_value =
        flag == "--port" || flag == "--bind" || flag == "--threads" ||
        flag == "--shard-endpoint" || flag == "--timeout-ms" ||
        flag == "--health-interval-ms" || flag == "--log-file" ||
        flag == "--log-level";
    if (!takes_value) return usage("unknown argument: " + flag);
    if (i + 1 >= args.size()) return usage(flag + " needs a value");
    const std::string& value = args[++i];
    try {
      if (flag == "--port") {
        server_options.port = static_cast<std::uint16_t>(std::stoul(value));
      } else if (flag == "--bind") {
        server_options.bind_address = value;
      } else if (flag == "--threads") {
        server_options.threads = static_cast<unsigned>(std::stoul(value));
      } else if (flag == "--shard-endpoint") {
        cluster::ShardEndpoint endpoint;
        if (!parse_endpoint(value, &endpoint)) {
          return usage("bad --shard-endpoint (want HOST:PORT): " + value);
        }
        router_options.shards.push_back(endpoint);
      } else if (flag == "--timeout-ms") {
        router_options.timeout = std::chrono::milliseconds(std::stoul(value));
      } else if (flag == "--health-interval-ms") {
        router_options.health_interval =
            std::chrono::milliseconds(std::stoul(value));
      } else if (flag == "--log-file") {
        log_file = value;
      } else if (flag == "--log-level") {
        const auto parsed = obs::parse_log_level(value);
        if (!parsed) return usage("bad --log-level: " + value);
        log_level = *parsed;
      }
    } catch (const std::exception&) {
      return usage("bad value for " + flag + ": " + value);
    }
  }
  if (router_options.shards.empty()) {
    return usage("at least one --shard-endpoint is required");
  }

  // Block the drain signals before any thread exists so the worker pool
  // inherits the mask and sigwait() below is the only consumer.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  cluster::RouterService router(router_options);
  router.log().set_level(log_level);
  if (!log_file.empty() && !router.log().open_jsonl(log_file)) {
    std::cerr << "staled-router: cannot open --log-file " << log_file << '\n';
    return 2;
  }

  query::HttpServer server(server_options,
                           [&router](const query::HttpRequest& r) {
                             return router.handle(r);
                           });
  server.start();
  router.start();
  const unsigned workers =
      server_options.threads == 0 ? 1u : server_options.threads;
  // Kept on stdout, and in exactly this shape: scripts (CI smoke, local
  // tooling) discover an ephemeral --port 0 by parsing this line.
  std::cout << "staled-router: listening on " << server_options.bind_address
            << ":" << server.port() << " (" << router.shard_count()
            << " shards, " << workers << " workers)" << std::endl;
  router.log().info("listening",
                    {{"bind", server_options.bind_address},
                     {"port", std::to_string(server.port())},
                     {"shards", std::to_string(router.shard_count())},
                     {"workers", std::to_string(workers)}});

  int signal = 0;
  while (sigwait(&signals, &signal) != 0) {
  }
  router.log().info("signal received, draining",
                    {{"signal", std::to_string(signal)}});
  router.stop();
  server.stop();
  // The "drained after" phrasing is part of the smoke-test contract.
  router.log().info("drained after " +
                    std::to_string(server.requests_served()) +
                    " requests, bye");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const stalecert::Error& e) {
    std::cerr << "staled-router: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "staled-router: unexpected error: " << e.what() << '\n';
    return 1;
  }
}
