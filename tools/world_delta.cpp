// world_delta: inspect, validate, and compare .scwd incremental world
// deltas (the files world_gen --extend-days emits and staled --feed-dir
// ingests).
//
//   $ ./world_delta info <delta.scwd>
//   $ ./world_delta verify <delta.scwd> [--base <world.scw>]
//   $ ./world_delta diff <a.scwd> <b.scwd>
//
// info prints the delta's binding (base world id, profile, seed, covered
// days) and per-dataset record counts. verify fully decodes the container
// (magic, version, per-segment CRCs, record structure) and, with --base,
// additionally checks the delta binds to that archive and follows directly
// after its horizon — the same checks staled applies before ingesting.
// diff compares two deltas field by field: binding, coverage, and record
// counts. Exit status: 0 ok, 1 validation/diff failure, 2 usage.
#include <iostream>
#include <string>
#include <vector>

#include "stalecert/feed/delta.hpp"
#include "stalecert/feed/errors.hpp"
#include "stalecert/feed/extend.hpp"
#include "stalecert/feed/format.hpp"
#include "stalecert/store/archive.hpp"
#include "stalecert/store/errors.hpp"

using namespace stalecert;

namespace {

int usage(const std::string& detail) {
  std::cerr << "usage: world_delta info <delta.scwd>\n"
               "       world_delta verify <delta.scwd> [--base <world.scw>]\n"
               "       world_delta diff <a.scwd> <b.scwd>\n";
  if (!detail.empty()) std::cerr << detail << '\n';
  return 2;
}

void print_info(const std::string& path, const feed::WorldDelta& delta) {
  std::cout << path << ":\n"
            << "  base world id:  " << delta.meta.base_world_id << "\n"
            << "  profile:        " << delta.meta.profile << " (seed "
            << delta.meta.seed << ")\n"
            << "  covers:         " << delta.meta.from_day.to_string() << " .. "
            << delta.meta.to_day.to_string() << " ("
            << (delta.meta.to_day - delta.meta.from_day + 1) << " days)\n"
            << "  ct entries:     " << delta.ct_entry_count() << " across "
            << delta.ct.size() << " logs\n"
            << "  revocations:    " << delta.revocations.size() << "\n"
            << "  whois events:   " << delta.registrations.size() << "\n"
            << "  adns snapshots: " << delta.adns.size() << "\n";
}

int run_info(const std::string& path) {
  print_info(path, feed::read_delta(path));
  return 0;
}

int run_verify(const std::string& path, const std::string& base_path) {
  const feed::WorldDelta delta = feed::read_delta(path);  // throws if broken
  std::cout << path << ": container ok (" << delta.ct_entry_count()
            << " ct entries, " << delta.revocations.size() << " revocations, "
            << delta.registrations.size() << " whois events, "
            << delta.adns.size() << " adns snapshots)\n";
  if (base_path.empty()) return 0;

  const store::ArchiveReader reader(base_path);
  const std::uint64_t base_id = feed::world_id(reader.meta());
  if (delta.meta.base_world_id != base_id) {
    std::cerr << "world_delta: " << path << " binds to world id "
              << delta.meta.base_world_id << ", but " << base_path
              << " has world id " << base_id << '\n';
    return 1;
  }
  const util::Date horizon = reader.meta().end;
  if (delta.meta.from_day != horizon + 1) {
    std::cerr << "world_delta: " << path << " starts "
              << delta.meta.from_day.to_string() << " but " << base_path
              << " ends " << horizon.to_string()
              << " (expected a delta starting " << (horizon + 1).to_string()
              << ")\n";
    return 1;
  }
  std::cout << path << ": binds to " << base_path << " and follows its horizon"
            << '\n';
  return 0;
}

int run_diff(const std::string& a_path, const std::string& b_path) {
  const feed::WorldDelta a = feed::read_delta(a_path);
  const feed::WorldDelta b = feed::read_delta(b_path);
  std::size_t differences = 0;
  const auto compare = [&](const std::string& field, const std::string& lhs,
                           const std::string& rhs) {
    if (lhs == rhs) return;
    ++differences;
    std::cout << "  " << field << ": " << lhs << " != " << rhs << '\n';
  };
  std::cout << "diff " << a_path << " " << b_path << ":\n";
  compare("base world id", std::to_string(a.meta.base_world_id),
          std::to_string(b.meta.base_world_id));
  compare("profile", a.meta.profile, b.meta.profile);
  compare("seed", std::to_string(a.meta.seed), std::to_string(b.meta.seed));
  compare("from_day", a.meta.from_day.to_string(), b.meta.from_day.to_string());
  compare("to_day", a.meta.to_day.to_string(), b.meta.to_day.to_string());
  compare("ct entries", std::to_string(a.ct_entry_count()),
          std::to_string(b.ct_entry_count()));
  compare("ct logs touched", std::to_string(a.ct.size()),
          std::to_string(b.ct.size()));
  compare("revocations", std::to_string(a.revocations.size()),
          std::to_string(b.revocations.size()));
  compare("whois events", std::to_string(a.registrations.size()),
          std::to_string(b.registrations.size()));
  compare("adns snapshots", std::to_string(a.adns.size()),
          std::to_string(b.adns.size()));
  if (differences == 0) {
    std::cout << "  identical metadata and record counts\n";
    return 0;
  }
  return 1;
}

int run(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage("missing command");
  const std::string& command = args[0];
  if (command == "info") {
    if (args.size() != 2) return usage("info takes exactly one delta path");
    return run_info(args[1]);
  }
  if (command == "verify") {
    std::string path;
    std::string base;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--base") {
        if (i + 1 >= args.size()) return usage("--base requires an argument");
        base = args[++i];
      } else if (!args[i].empty() && args[i][0] == '-') {
        return usage("unknown flag " + args[i]);
      } else if (path.empty()) {
        path = args[i];
      } else {
        return usage("multiple delta paths given");
      }
    }
    if (path.empty()) return usage("missing delta path");
    return run_verify(path, base);
  }
  if (command == "diff") {
    if (args.size() != 3) return usage("diff takes exactly two delta paths");
    return run_diff(args[1], args[2]);
  }
  return usage("unknown command " + command);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const store::ArchiveError& e) {
    std::cerr << "world_delta: unreadable file: " << e.what() << '\n';
    return 1;
  } catch (const stalecert::Error& e) {
    std::cerr << "world_delta: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "world_delta: unexpected error: " << e.what() << '\n';
    return 1;
  }
}
