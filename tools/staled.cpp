// staled: the staleness serving daemon. Loads a .scw world archive, runs
// the measurement pipeline once, indexes the result (query::StalenessIndex)
// and serves point lookups over a minimal HTTP/1.1 subset:
//
//   $ ./staled [--port N] [--bind ADDR] [--threads N] <archive.scw>
//   staled: listening on 127.0.0.1:8080 (...)
//
// Endpoints: /v1/stale?domain=&date=, /v1/key/<spki>, /v1/summary[?domain=],
// /v1/revocation?serial=, /healthz, /metrics (Prometheus).
//
// SIGHUP hot-reloads the archive: the replacement index is built off the
// serving path and swapped in atomically; on failure the old snapshot keeps
// serving. SIGINT/SIGTERM drain gracefully: no new connections, in-flight
// requests finish, exit 0. --port 0 binds an ephemeral port and prints the
// outcome, which is how the CI smoke test finds it.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "stalecert/query/server.hpp"
#include "stalecert/query/service.hpp"
#include "stalecert/store/errors.hpp"

using namespace stalecert;

namespace {

int usage(const std::string& detail) {
  std::cerr << "usage: staled [--port N] [--bind ADDR] [--threads N]"
               " <archive.scw>\n";
  if (!detail.empty()) std::cerr << detail << '\n';
  return 2;
}

int run(int argc, char** argv) {
  query::HttpServer::Options options;
  options.port = 8080;
  std::string archive_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" || arg == "--bind" || arg == "--threads") {
      if (i + 1 >= argc) return usage(arg + " requires an argument");
      const std::string value = argv[++i];
      if (arg == "--port") {
        options.port = static_cast<std::uint16_t>(std::atoi(value.c_str()));
      } else if (arg == "--bind") {
        options.bind_address = value;
      } else {
        options.threads = static_cast<unsigned>(std::atoi(value.c_str()));
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return usage("unknown flag " + arg);
    } else if (archive_path.empty()) {
      archive_path = arg;
    } else {
      return usage("multiple archive paths given");
    }
  }
  if (archive_path.empty()) return usage("missing archive path");

  // Block the control signals before any thread exists so the worker pool
  // inherits the mask and sigwait() below is the only consumer.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGHUP);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  query::StaledService service(archive_path);
  service.load();
  const auto snapshot = service.snapshot();
  std::cerr << "staled: indexed " << snapshot->stats().certificates
            << " certificates, " << snapshot->stats().stale_records
            << " stale records from " << archive_path << '\n';

  query::HttpServer server(options, [&service](const query::HttpRequest& r) {
    return service.handle(r);
  });
  server.start();
  std::cout << "staled: listening on " << options.bind_address << ":"
            << server.port() << " (" << (options.threads == 0 ? 1u : options.threads)
            << " workers)" << std::endl;

  for (;;) {
    int signal = 0;
    if (sigwait(&signals, &signal) != 0) continue;
    if (signal == SIGHUP) {
      std::cerr << "staled: SIGHUP — reloading " << archive_path << '\n';
      if (service.reload()) {
        std::cerr << "staled: snapshot generation " << service.generation()
                  << " serving\n";
      } else {
        std::cerr << "staled: reload failed, previous snapshot kept\n";
      }
      continue;
    }
    std::cerr << "staled: signal " << signal << " — draining\n";
    break;
  }

  server.stop();
  std::cerr << "staled: drained after " << server.requests_served()
            << " requests, bye\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const store::ArchiveError& e) {
    std::cerr << "staled: cannot serve archive: " << e.what() << '\n';
    return 1;
  } catch (const stalecert::Error& e) {
    std::cerr << "staled: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "staled: unexpected error: " << e.what() << '\n';
    return 1;
  }
}
