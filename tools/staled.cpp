// staled: the staleness serving daemon. Loads a .scw world archive, runs
// the measurement pipeline once, indexes the result (query::StalenessIndex)
// and serves point lookups over a minimal HTTP/1.1 subset:
//
//   $ ./staled [--port N] [--bind ADDR] [--threads N] [--shard K/N]
//              [--log-file PATH] [--log-level LEVEL] <archive.scw>
//   staled: listening on 127.0.0.1:8080 (...)
//
// --shard K/N serves shard K of an N-way partition (see src/cluster): the
// archive is narrowed to the shard's slice (instant on a pre-split
// shard-K-of-N.scw), /statusz and /metrics carry the shard identity, and
// /v1/summary reports the shard's OWNED slice so a front tier can sum
// summaries across shards without double counting.
//
// Endpoints: /v1/stale?domain=&date=, /v1/key/<spki>, /v1/summary[?domain=],
// /v1/revocation?serial=, /healthz, /metrics (Prometheus), /statusz
// (JSON or ?format=html operational status).
//
// Diagnostics go through the service's obs::EventLog: human-readable on
// stderr, optionally mirrored as JSONL with --log-file. --log-level (or the
// STALECERT_LOG_LEVEL environment variable) filters severity.
//
// Feed mode (--feed-dir DIR): the accumulated world is kept in memory, the
// directory's .scwd deltas are applied at startup and then polled every
// --feed-poll-ms, and POST /ingest applies a delta on demand — each apply
// runs only the delta records through the staleness detectors and swaps a
// patched snapshot in, so the daemon stays fresh without re-running the
// pipeline (see src/feed/README.md).
//
// SIGHUP hot-reloads the archive: the replacement index is built off the
// serving path and swapped in atomically; on failure the old snapshot keeps
// serving. In feed mode the reload also re-applies every delta in
// --feed-dir on top of the rebuilt base. SIGINT/SIGTERM drain gracefully:
// no new connections, in-flight requests finish, exit 0. --port 0 binds an
// ephemeral port and prints the outcome, which is how the CI smoke test
// finds it.
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "stalecert/cluster/shard.hpp"
#include "stalecert/feed/runtime.hpp"
#include "stalecert/query/index.hpp"
#include "stalecert/query/server.hpp"
#include "stalecert/query/service.hpp"
#include "stalecert/query/staled_options.hpp"
#include "stalecert/store/errors.hpp"
#include "stalecert/util/mutex.hpp"

using namespace stalecert;

namespace {

int usage(const std::string& detail) {
  std::cerr << "usage: " << query::staled_usage_line() << '\n';
  if (!detail.empty()) std::cerr << detail << '\n';
  return 2;
}

int run(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  const auto parsed =
      query::parse_staled_options(args, std::getenv("STALECERT_LOG_LEVEL"));
  if (!parsed.ok()) return usage(parsed.error);
  const query::StaledOptions& options = *parsed.options;

  // Block the control signals before any thread exists so the worker pool
  // inherits the mask and sigwait() below is the only consumer.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGHUP);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  query::ServiceOptions service_options;
  service_options.build_info = "stalecert-staled/1 (obs v2)";
  service_options.feed_dir = options.feed_dir;
  // --shard K/N: serve one slice of a partitioned world. The scope narrows
  // the archive to the shard (a no-op on a pre-split shard-K-of-N.scw) and
  // installs the ownership predicate so /v1/summary reports this shard's
  // owned slice; cluster policy stays out of the query layer.
  std::optional<query::ShardScope> scope;
  if (options.shard_count > 0) {
    scope = cluster::ShardPlan(options.shard_count)
                .scope_for(options.shard_index);
    service_options.shard_index = options.shard_index;
    service_options.shard_count = options.shard_count;
    service_options.snapshot_builder = [s = *scope](const std::string& path) {
      return query::StalenessIndex::from_archive(path, s);
    };
  }
  query::StaledService service(options.archive_path, service_options);
  service.log().set_level(options.log_level);
  if (!options.log_file.empty() && !service.log().open_jsonl(options.log_file)) {
    std::cerr << "staled: cannot open --log-file " << options.log_file << '\n';
    return 2;
  }

  const bool feed_mode = !options.feed_dir.empty();
  std::unique_ptr<feed::FeedRuntime> runtime;
  // One sweep: ingest every pending delta through the service (which
  // publishes each successor snapshot and keeps the metrics honest), then
  // refresh the pending-deltas gauge.
  const auto sweep_feed_dir = [&](const std::string& origin) {
    for (const auto& path : runtime->pending_deltas(options.feed_dir)) {
      if (!service.ingest({.path = path, .origin = origin}).ok) break;
    }
    service
        .registry()
        .gauge("stalecert_staled_feed_pending_deltas", {},
               "Readable .scwd files in --feed-dir still ahead of the horizon")
        .set(static_cast<double>(
            runtime->pending_deltas(options.feed_dir).size()));
  };
  if (feed_mode) {
    // The runtime's base build replaces service.load(): same pipeline, but
    // it keeps the world in memory for incremental applies.
    runtime = std::make_unique<feed::FeedRuntime>(options.archive_path,
                                                  nullptr, scope);
    service.set_ingest_handler(runtime->handler());
    service.publish(runtime->index(), "feed base " + options.archive_path);
    sweep_feed_dir("startup");
  } else {
    service.load();
  }

  query::HttpServer server(options.server,
                           [&service](const query::HttpRequest& r) {
                             return service.handle(r);
                           });
  server.set_request_hook([&service](const query::HttpRequest&,
                                     const query::HttpResponse& response,
                                     std::chrono::nanoseconds write_duration) {
    service.on_response_written(response, write_duration);
  });
  server.start();
  // Kept on stdout, and in exactly this shape: scripts (CI smoke, local
  // tooling) discover an ephemeral --port 0 by parsing this line.
  const unsigned workers =
      options.server.threads == 0 ? 1u : options.server.threads;
  std::cout << "staled: listening on " << options.server.bind_address << ":"
            << server.port() << " (" << workers << " workers)" << std::endl;
  service.log().info("listening",
                     {{"bind", options.server.bind_address},
                      {"port", std::to_string(server.port())},
                      {"workers", std::to_string(workers)}});

  // Feed poll loop: condition-variable timed wait so shutdown is instant.
  util::Mutex poll_mutex;
  util::CondVar poll_cv;
  bool poll_stop = false;  // guarded by poll_mutex
  std::thread poller;
  if (feed_mode) {
    service.log().info("feed mode on",
                       {{"dir", options.feed_dir},
                        {"poll_ms", std::to_string(options.feed_poll_ms)}});
    poller = std::thread([&] {
      for (;;) {
        sweep_feed_dir("poll");
        const util::MutexLock lock(poll_mutex);
        if (poll_cv.wait_for(poll_mutex,
                             std::chrono::milliseconds(options.feed_poll_ms),
                             [&] { return poll_stop; })) {
          return;
        }
      }
    });
  }

  for (;;) {
    int signal = 0;
    if (sigwait(&signals, &signal) != 0) continue;
    if (signal == SIGHUP) {
      service.log().info("SIGHUP received, reloading",
                         {{"archive", options.archive_path}});
      if (feed_mode) {
        // Rebuild the base from disk, publish it, then re-apply every
        // delta in --feed-dir on top. On a broken archive the runtime
        // keeps its current state and the old snapshot keeps serving.
        try {
          runtime->reload();
          service.publish(runtime->index(),
                          "sighup base " + options.archive_path);
          sweep_feed_dir("sighup");
        } catch (const std::exception& e) {
          service.log().error("reload failed, previous snapshot kept",
                              {{"archive", options.archive_path},
                               {"error", e.what()}});
        }
      } else {
        service.reload();  // outcome (ok/failed) is logged by the service
      }
      continue;
    }
    service.log().info("signal received, draining",
                       {{"signal", std::to_string(signal)}});
    break;
  }

  if (poller.joinable()) {
    {
      const util::MutexLock lock(poll_mutex);
      poll_stop = true;
    }
    poll_cv.notify_all();
    poller.join();
  }
  server.stop();
  // The "drained after" phrasing is part of the smoke-test contract.
  service.log().info(
      "drained after " + std::to_string(server.requests_served()) +
          " requests, bye",
      {{"slow_traces_retained",
        std::to_string(service.slow_traces().snapshot().size())}});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const store::ArchiveError& e) {
    std::cerr << "staled: cannot serve archive: " << e.what() << '\n';
    return 1;
  } catch (const stalecert::Error& e) {
    std::cerr << "staled: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "staled: unexpected error: " << e.what() << '\n';
    return 1;
  }
}
