// stalecert_query: CLI client for a running staled daemon.
//
//   $ ./stalecert_query [--host A] [--port N] stale --domain D --date YYYY-MM-DD
//   $ ./stalecert_query key <spki-hex>
//   $ ./stalecert_query summary [--domain D]
//   $ ./stalecert_query revocation --serial <hex>
//   $ ./stalecert_query ingest <delta.scwd>
//   $ ./stalecert_query healthz | metrics | statusz | get <raw-target>
//
// `ingest` POSTs the .scwd bytes to /ingest on a feed-mode staled (see
// src/feed/README.md); everything else is a GET. Prints the response body
// to stdout and the HTTP status to stderr. --timeout-ms bounds the whole
// exchange (connect and every socket read/write); 0, the default, waits
// indefinitely.
// Exit codes: 0 on HTTP 200, 1 on any other status, 2 on usage errors,
// 3 when the daemon is unreachable, 4 when --timeout-ms expires.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "stalecert/query/client.hpp"

using namespace stalecert;

namespace {

int usage(const std::string& detail) {
  std::cerr
      << "usage: stalecert_query [--host ADDR] [--port N] [--timeout-ms N]"
         " <command> [args]\n"
         "commands:\n"
         "  stale --domain D --date YYYY-MM-DD   point-in-time staleness\n"
         "  key <spki-hex>                       certificates sharing a key\n"
         "  summary [--domain D]                 global or per-domain summary\n"
         "  revocation --serial <hex>            joined revocation status\n"
         "  ingest <delta.scwd>                  POST a delta to /ingest\n"
         "  healthz                              daemon liveness\n"
         "  metrics                              Prometheus metrics\n"
         "  statusz [--format html]              operational status page\n"
         "  get <target>                         raw GET (e.g. /v1/summary)\n";
  if (!detail.empty()) std::cerr << detail << '\n';
  return 2;
}

/// Percent-encodes a query-string value (unreserved characters pass).
std::string encode(const std::string& value) {
  static const char* hex = "0123456789abcdef";
  std::string out;
  for (const unsigned char c : value) {
    const bool unreserved = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '-' || c == '.' ||
                            c == '_' || c == '~';
    if (unreserved) {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(hex[c >> 4]);
      out.push_back(hex[c & 0xf]);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 8080;
  std::chrono::milliseconds timeout{0};
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" || arg == "--port" || arg == "--timeout-ms") {
      if (i + 1 >= argc) return usage(arg + " requires an argument");
      const std::string value = argv[++i];
      if (arg == "--host") {
        host = value;
      } else if (arg == "--port") {
        port = static_cast<std::uint16_t>(std::atoi(value.c_str()));
      } else {
        const long long ms = std::atoll(value.c_str());
        if (ms < 0) return usage("bad --timeout-ms value: " + value);
        timeout = std::chrono::milliseconds(ms);
      }
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) return usage("missing command");

  // Named options after the command (--domain, --date, --serial).
  const std::string command = args[0];
  std::map<std::string, std::string> named;
  std::vector<std::string> positional;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i].size() > 2 && args[i][0] == '-' && args[i][1] == '-') {
      if (i + 1 >= args.size()) return usage(args[i] + " requires a value");
      const std::string key = args[i].substr(2);
      named[key] = args[++i];
    } else {
      positional.push_back(args[i]);
    }
  }

  std::string target;
  std::string post_body;
  bool is_post = false;
  if (command == "stale") {
    if (named.count("domain") == 0 || named.count("date") == 0) {
      return usage("stale requires --domain and --date");
    }
    target = "/v1/stale?domain=" + encode(named["domain"]) +
             "&date=" + encode(named["date"]);
  } else if (command == "key") {
    if (positional.size() != 1) return usage("key requires one SPKI argument");
    target = "/v1/key/" + encode(positional[0]);
  } else if (command == "summary") {
    target = "/v1/summary";
    if (named.count("domain") != 0) target += "?domain=" + encode(named["domain"]);
  } else if (command == "revocation") {
    if (named.count("serial") == 0) return usage("revocation requires --serial");
    target = "/v1/revocation?serial=" + encode(named["serial"]);
  } else if (command == "ingest") {
    if (positional.size() != 1) return usage("ingest requires one .scwd path");
    std::ifstream in(positional[0], std::ios::binary);
    if (!in) {
      std::cerr << "stalecert_query: cannot read " << positional[0] << '\n';
      return 2;
    }
    post_body.assign((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    target = "/ingest";
    is_post = true;
  } else if (command == "healthz") {
    target = "/healthz";
  } else if (command == "metrics") {
    target = "/metrics";
  } else if (command == "statusz") {
    target = "/statusz";
    if (named.count("format") != 0) target += "?format=" + encode(named["format"]);
  } else if (command == "get") {
    if (positional.size() != 1) return usage("get requires one target argument");
    target = positional[0];
  } else {
    return usage("unknown command " + command);
  }

  try {
    query::HttpClient client(host, port, timeout);
    const auto result =
        is_post ? client.post(target, post_body, "application/octet-stream")
                : client.get(target);
    std::cerr << "HTTP " << result.status << " " << target << '\n';
    std::cout << result.body;
    return result.status == 200 ? 0 : 1;
  } catch (const query::QueryTimeoutError& e) {
    // Before stalecert::Error: a timeout IS a QueryError, but scripts need
    // to tell "slow" (4, retry later) from "gone" (3, page someone).
    std::cerr << "stalecert_query: " << e.what() << '\n';
    return 4;
  } catch (const stalecert::Error& e) {
    std::cerr << "stalecert_query: " << e.what() << '\n';
    return 3;
  }
}
