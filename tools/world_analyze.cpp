// world_analyze: load a .scw world archive written by world_gen (or
// full_survey --save-world) and run the full measurement pipeline over it —
// the analyze side of generate-once / analyze-many.
//
//   $ ./world_analyze [--in-memory] [--metrics-json <path|->]
//                     [--trace-json <path>] <archive.scw>
//
// The printed report is deterministic. --in-memory ignores the archived
// datasets and regenerates the world from the archive's stored profile +
// seed instead; because archives are faithful, the two modes print
// byte-identical reports (CI diffs them). --metrics-json writes the
// observability snapshot (store_load + pipeline stages) as JSON.
// --trace-json writes the stage tree in Chrome trace-event format — load it
// in chrome://tracing or https://ui.perfetto.dev to see the pipeline
// timeline. Diagnostics go through obs::EventLog (human-readable stderr).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "stalecert/core/pipeline.hpp"
#include "stalecert/obs/event_log.hpp"
#include "stalecert/obs/observer.hpp"
#include "stalecert/obs/trace_export.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/store/archive.hpp"
#include "stalecert/store/errors.hpp"
#include "stalecert/util/strings.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;

namespace {

int usage(const std::string& detail) {
  std::cerr << "usage: world_analyze [--in-memory] [--metrics-json <path|->]"
               " [--trace-json <path>] <archive.scw>\n";
  if (!detail.empty()) std::cerr << detail << '\n';
  return 2;
}

void print_report(const store::ArchiveMeta& meta,
                  const core::PipelineResult& result, std::ostream& os) {
  os << "=== stalecert analysis (profile " << meta.profile << ", seed "
     << meta.seed << ") ===\n";
  os << "world: " << meta.start.to_string() << " .. " << meta.end.to_string()
     << "\n";
  os << "corpus: " << result.corpus.size() << " certificates ("
     << result.collect_stats.raw_entries << " raw CT entries, "
     << result.collect_stats.dropped_anomalous_fqdns
     << " anomalous FQDNs dropped)\n\n";

  util::TextTable detection(
      {"Class", "Stale certs", "e2LDs", "Median staleness", "S(90d)"});
  for (const auto cls : core::kAllStaleClasses) {
    const auto& stale = result.of(cls);
    core::StalenessAnalyzer analyzer(result.corpus, stale);
    const auto dist = analyzer.staleness_distribution();
    detection.add_row(
        {to_string(cls), std::to_string(stale.size()),
         std::to_string(analyzer.affected_e2lds().size()),
         stale.empty() ? "-"
                       : std::to_string(static_cast<int>(dist.median())) + "d",
         util::percent(core::elimination_upper_bound(result.corpus, stale, 90),
                       1)});
  }
  detection.print(os);

  const auto all = result.all_third_party();
  os << "\nlifetime-cap sweep over all " << all.size()
     << " third-party stale certificates:\n";
  util::TextTable caps({"Cap", "Still stale", "Staleness-days cut"});
  for (const auto& cap :
       core::simulate_caps(result.corpus, all, {7, 45, 90, 215, 398})) {
    caps.add_row({std::to_string(cap.cap_days) + "d",
                  std::to_string(cap.surviving_count) + " / " +
                      std::to_string(cap.original_count),
                  util::percent(cap.staleness_days_reduction(), 1)});
  }
  caps.print(os);
}

int run(int argc, char** argv) {
  bool in_memory = false;
  std::string metrics_json_path;
  std::string trace_json_path;
  std::string archive_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--in-memory") {
      in_memory = true;
    } else if (arg == "--metrics-json" || arg == "--trace-json") {
      if (i + 1 >= argc) return usage(arg + " requires a path argument");
      (arg == "--metrics-json" ? metrics_json_path : trace_json_path) =
          argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage("unknown flag " + arg);
    } else if (archive_path.empty()) {
      archive_path = arg;
    } else {
      return usage("multiple archive paths given");
    }
  }
  if (archive_path.empty()) return usage("missing archive path");

  obs::EventLog log;
  log.set_level(obs::log_level_from_env(std::getenv("STALECERT_LOG_LEVEL"),
                                        obs::LogLevel::kWarn));

  obs::MetricsPipelineObserver telemetry;
  const bool want_telemetry =
      !metrics_json_path.empty() || !trace_json_path.empty();
  obs::PipelineObserver* observer = want_telemetry ? &telemetry : nullptr;

  store::ArchiveReader reader(archive_path, observer);
  const store::ArchiveMeta& meta = reader.meta();
  log.info("archive opened",
           {{"archive", archive_path},
            {"profile", meta.profile},
            {"seed", std::to_string(meta.seed)}});

  core::PipelineConfig pipeline_config;
  pipeline_config.revocation_cutoff = meta.revocation_cutoff;
  pipeline_config.delegation_patterns = meta.delegation_patterns;
  pipeline_config.managed_san_pattern = meta.managed_san_pattern;
  pipeline_config.observer = observer;

  core::PipelineResult result;
  if (in_memory) {
    // Regenerate the identical world from the archived recipe: the
    // cross-check CI diffs this report against the archive-backed one.
    sim::WorldConfig config;
    if (meta.profile == "small") {
      config = sim::small_test_config();
    } else if (meta.profile == "default") {
      config = sim::WorldConfig{};
    } else {
      log.error("archive profile names no known recipe; --in-memory needs "
                "small or default",
                {{"profile", meta.profile}});
      return 1;
    }
    config.seed = meta.seed;
    sim::World world(config);
    world.set_observer(observer);
    world.run();
    result = core::run_pipeline(world.ct_logs(),
                                world.crl_collection().store(),
                                world.whois().re_registrations(),
                                world.adns(), pipeline_config);
  } else {
    const store::LoadedWorld world = reader.load_world();
    result = core::run_pipeline(world.ct_logs, world.revocations,
                                world.re_registrations(), world.adns,
                                pipeline_config);
  }
  print_report(meta, result, std::cout);

  if (!metrics_json_path.empty()) {
    if (metrics_json_path == "-") {
      std::cerr << telemetry.report_json() << '\n';
    } else {
      std::ofstream out(metrics_json_path);
      if (!out) {
        log.error("cannot write metrics JSON", {{"path", metrics_json_path}});
        return 1;
      }
      out << telemetry.report_json() << '\n';
    }
  }
  if (!trace_json_path.empty()) {
    std::ofstream out(trace_json_path);
    if (!out) {
      log.error("cannot write trace JSON", {{"path", trace_json_path}});
      return 1;
    }
    out << obs::to_chrome_trace(telemetry.trace()) << '\n';
    log.info("wrote Chrome trace (open in chrome://tracing or Perfetto)",
             {{"path", trace_json_path},
              {"spans", std::to_string(telemetry.trace().spans().size())}});
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Layered catch over the store error taxonomy: every failure mode exits
  // nonzero with a one-line diagnostic instead of an unhandled-exception
  // abort (std::terminate would print a stack-free "terminate called").
  try {
    return run(argc, argv);
  } catch (const store::ArchiveError& e) {
    std::cerr << "world_analyze: cannot read archive: " << e.what() << '\n';
    return 1;
  } catch (const stalecert::Error& e) {
    std::cerr << "world_analyze: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "world_analyze: unexpected error: " << e.what() << '\n';
    return 1;
  }
}
