// world_gen: simulate a synthetic web-PKI world once and archive its
// Table-3 datasets as a .scw file — the generate side of the
// generate-once / analyze-many workflow (analyze side: world_analyze).
//
//   $ ./world_gen [--profile small|default] [--seed N]
//                 [--metrics-json <path|->] <output.scw>
//
// The profile names the WorldConfig recipe and is stored in the archive, so
// world_analyze --in-memory can regenerate the identical world for
// cross-checking. --metrics-json writes the observability snapshot
// (sim_run + store_save stages) as JSON to <path>, or stderr for "-".
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "stalecert/obs/event_log.hpp"
#include "stalecert/obs/observer.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/store/archive.hpp"
#include "stalecert/store/errors.hpp"

using namespace stalecert;

namespace {

int usage(const std::string& detail) {
  std::cerr << "usage: world_gen [--profile small|default] [--seed N]"
               " [--metrics-json <path|->] <output.scw>\n";
  if (!detail.empty()) std::cerr << detail << '\n';
  return 2;
}

int run(int argc, char** argv) {
  std::string profile = "small";
  std::string metrics_json_path;
  std::string output_path;
  std::optional<std::uint64_t> seed;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--profile" || arg == "--seed" || arg == "--metrics-json") {
      if (i + 1 >= argc) return usage(arg + " requires an argument");
      const std::string value = argv[++i];
      if (arg == "--profile") {
        profile = value;
      } else if (arg == "--seed") {
        seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
      } else {
        metrics_json_path = value;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return usage("unknown flag " + arg);
    } else if (output_path.empty()) {
      output_path = arg;
    } else {
      return usage("multiple output paths given");
    }
  }
  if (output_path.empty()) return usage("missing output path");

  obs::EventLog log;
  log.set_level(obs::log_level_from_env(std::getenv("STALECERT_LOG_LEVEL"),
                                        obs::LogLevel::kWarn));

  sim::WorldConfig config;
  if (profile == "small") {
    config = sim::small_test_config();
  } else if (profile == "default") {
    config = sim::WorldConfig{};
  } else {
    log.error("unknown profile (want small or default)",
              {{"profile", profile}});
    return 2;
  }
  if (seed) config.seed = *seed;

  obs::MetricsPipelineObserver telemetry;
  obs::PipelineObserver* observer =
      metrics_json_path.empty() ? nullptr : &telemetry;

  sim::World world(config);
  world.set_observer(observer);
  world.run();

  const std::uint64_t bytes =
      store::save_world(world, output_path, observer, profile);
  std::cout << "wrote " << output_path << ": " << bytes << " bytes, profile "
            << profile << ", seed " << config.seed << "\n"
            << "  ct entries:     " << world.ct_logs().total_entries() << "\n"
            << "  revocations:    " << world.crl_collection().store().size()
            << "\n"
            << "  whois events:   " << world.whois().new_registrations().size()
            << "\n"
            << "  adns snapshots: " << world.adns().days() << "\n";

  if (!metrics_json_path.empty()) {
    if (metrics_json_path == "-") {
      std::cerr << telemetry.report_json() << '\n';
    } else {
      std::ofstream out(metrics_json_path);
      if (!out) {
        log.error("cannot write metrics JSON", {{"path", metrics_json_path}});
        return 1;
      }
      out << telemetry.report_json() << '\n';
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Layered catch over the store error taxonomy: every failure mode exits
  // nonzero with a one-line diagnostic instead of an unhandled-exception
  // abort. The simulation itself runs inside the try block too — it was
  // previously outside any handler.
  try {
    return run(argc, argv);
  } catch (const store::ArchiveError& e) {
    std::cerr << "world_gen: cannot write archive: " << e.what() << '\n';
    return 1;
  } catch (const stalecert::Error& e) {
    std::cerr << "world_gen: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "world_gen: unexpected error: " << e.what() << '\n';
    return 1;
  }
}
