// world_gen: simulate a synthetic web-PKI world once and archive its
// Table-3 datasets as a .scw file — the generate side of the
// generate-once / analyze-many workflow (analyze side: world_analyze).
//
//   $ ./world_gen [--profile small|default] [--seed N] [--shards N]
//                 [--metrics-json <path|->] <output.scw>
//
// The profile names the WorldConfig recipe and is stored in the archive, so
// world_analyze --in-memory can regenerate the identical world for
// cross-checking. --metrics-json writes the observability snapshot
// (sim_run + store_save stages) as JSON to <path>, or stderr for "-".
//
// --shards N additionally splits the world into shard-<k>-of-<N>.scw
// archives next to the output (cluster::ShardPlan partition, src/cluster):
// each is a self-contained slice that `staled --shard k/N` serves.
//
// Extension mode emits incremental .scwd deltas instead of a new archive:
//
//   $ ./world_gen --extend-days N [--slice-days M] [--out-dir DIR]
//                 --base <world.scw>            (one shell line)
//   wrote DIR/delta-<from>-<to>.scwd: ... (one per slice)
//
// The base archive's profile + seed regenerate the identical world, which
// is run past its horizon; each slice's new records are diffed out and
// written as a delta bound to the base's world id. Deterministic: the same
// base and flags always produce byte-identical .scwd files.
//
// With --shards N, extension mode ALSO routes every delta through
// cluster::DeltaSplitter and writes the per-shard copies into
// DIR/shard-<k>-of-<N>/ (bound to the shard archives' world ids), which is
// where each shard's `staled --feed-dir` polls.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "stalecert/cluster/shard.hpp"
#include "stalecert/cluster/split.hpp"
#include "stalecert/feed/delta.hpp"
#include "stalecert/feed/errors.hpp"
#include "stalecert/feed/extend.hpp"
#include "stalecert/obs/event_log.hpp"
#include "stalecert/obs/observer.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/store/archive.hpp"
#include "stalecert/store/errors.hpp"

using namespace stalecert;

namespace {

int usage(const std::string& detail) {
  std::cerr << "usage: world_gen [--profile small|default] [--seed N]"
               " [--shards N] [--metrics-json <path|->] <output.scw>\n"
               "       world_gen --extend-days N [--slice-days M]"
               " [--shards N] [--out-dir DIR] --base <world.scw>\n";
  if (!detail.empty()) std::cerr << detail << '\n';
  return 2;
}

/// --shards in generate mode: reload the archive just written and split it
/// into shard-<k>-of-<N>.scw siblings.
int write_shards(const std::string& archive_path, unsigned shards,
                 obs::PipelineObserver* observer) {
  const cluster::ShardPlan plan(shards);
  const store::LoadedWorld world = store::load_world(archive_path, observer);
  const std::string dir =
      std::filesystem::path(archive_path).parent_path().string();
  const auto paths =
      cluster::write_shard_archives(world, plan, dir.empty() ? "." : dir,
                                    observer);
  for (const auto& path : paths) {
    std::cout << "wrote " << path << ": shard slice of " << archive_path
              << "\n";
  }
  return 0;
}

/// --extend-days mode: regenerate the base world, run it N days past its
/// horizon, and write one .scwd delta per slice into --out-dir.
int run_extend(const std::string& base_path, std::int64_t days,
               std::int64_t slice_days, const std::string& out_dir,
               unsigned shards, const std::string& metrics_json_path) {
  obs::MetricsPipelineObserver telemetry;
  obs::PipelineObserver* observer =
      metrics_json_path.empty() ? nullptr : &telemetry;

  const store::ArchiveReader reader(base_path);
  const auto deltas =
      feed::extend_world(reader.meta(), days, slice_days, observer);

  // The splitter must see the deltas in feed order against the SAME base
  // world the shard archives were split from.
  std::optional<cluster::ShardPlan> plan;
  std::optional<cluster::DeltaSplitter> splitter;
  if (shards > 1) {
    plan.emplace(shards);
    splitter.emplace(reader.load_world(), *plan);
  }

  std::filesystem::create_directories(out_dir);
  for (const auto& delta : deltas) {
    const std::string path =
        (std::filesystem::path(out_dir) / feed::delta_file_name(delta.meta))
            .string();
    const std::uint64_t bytes = feed::write_delta(delta, path, observer);
    std::cout << "wrote " << path << ": " << bytes << " bytes, "
              << delta.ct_entry_count() << " ct entries, "
              << delta.revocations.size() << " revocations, "
              << delta.registrations.size() << " whois events, "
              << delta.adns.size() << " adns snapshots\n";
    if (!splitter) continue;
    const auto routed = splitter->split(delta);
    for (unsigned k = 0; k < plan->count(); ++k) {
      const auto shard_dir = std::filesystem::path(out_dir) /
                             cluster::ShardPlan::shard_dir_name(k,
                                                               plan->count());
      std::filesystem::create_directories(shard_dir);
      const std::string shard_path =
          (shard_dir / feed::delta_file_name(routed[k].meta)).string();
      feed::write_delta(routed[k], shard_path, observer);
      std::cout << "wrote " << shard_path << ": "
                << routed[k].ct_entry_count() << " ct entries, "
                << routed[k].revocations.size() << " revocations, "
                << routed[k].registrations.size() << " whois events\n";
    }
  }

  if (!metrics_json_path.empty()) {
    if (metrics_json_path == "-") {
      std::cerr << telemetry.report_json() << '\n';
    } else {
      std::ofstream out(metrics_json_path);
      if (!out) {
        std::cerr << "world_gen: cannot write metrics JSON to "
                  << metrics_json_path << '\n';
        return 1;
      }
      out << telemetry.report_json() << '\n';
    }
  }
  return 0;
}

int run(int argc, char** argv) {
  std::string profile = "small";
  std::string metrics_json_path;
  std::string output_path;
  std::string base_path;
  std::string out_dir = ".";
  std::optional<std::uint64_t> seed;
  std::int64_t extend_days = 0;
  std::int64_t slice_days = 1;
  unsigned shards = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--profile" || arg == "--seed" || arg == "--metrics-json" ||
        arg == "--extend-days" || arg == "--slice-days" || arg == "--base" ||
        arg == "--out-dir" || arg == "--shards") {
      if (i + 1 >= argc) return usage(arg + " requires an argument");
      const std::string value = argv[++i];
      if (arg == "--profile") {
        profile = value;
      } else if (arg == "--seed") {
        seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
      } else if (arg == "--extend-days") {
        extend_days = std::atoll(value.c_str());
        if (extend_days <= 0) return usage("bad --extend-days value: " + value);
      } else if (arg == "--slice-days") {
        slice_days = std::atoll(value.c_str());
        if (slice_days <= 0) return usage("bad --slice-days value: " + value);
      } else if (arg == "--base") {
        base_path = value;
      } else if (arg == "--out-dir") {
        out_dir = value;
      } else if (arg == "--shards") {
        const long long parsed = std::atoll(value.c_str());
        if (parsed < 2 || parsed > 1024) {
          return usage("bad --shards value (want 2..1024): " + value);
        }
        shards = static_cast<unsigned>(parsed);
      } else {
        metrics_json_path = value;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return usage("unknown flag " + arg);
    } else if (output_path.empty()) {
      output_path = arg;
    } else {
      return usage("multiple output paths given");
    }
  }
  if (extend_days > 0) {
    if (base_path.empty()) return usage("--extend-days requires --base");
    if (!output_path.empty()) {
      return usage("--extend-days writes into --out-dir, not a positional path");
    }
    return run_extend(base_path, extend_days, slice_days, out_dir, shards,
                      metrics_json_path);
  }
  if (!base_path.empty()) return usage("--base requires --extend-days");
  if (output_path.empty()) return usage("missing output path");

  obs::EventLog log;
  log.set_level(obs::log_level_from_env(std::getenv("STALECERT_LOG_LEVEL"),
                                        obs::LogLevel::kWarn));

  sim::WorldConfig config;
  if (profile == "small") {
    config = sim::small_test_config();
  } else if (profile == "default") {
    config = sim::WorldConfig{};
  } else {
    log.error("unknown profile (want small or default)",
              {{"profile", profile}});
    return 2;
  }
  if (seed) config.seed = *seed;

  obs::MetricsPipelineObserver telemetry;
  obs::PipelineObserver* observer =
      metrics_json_path.empty() ? nullptr : &telemetry;

  sim::World world(config);
  world.set_observer(observer);
  world.run();

  const std::uint64_t bytes =
      store::save_world(world, output_path, observer, profile);
  std::cout << "wrote " << output_path << ": " << bytes << " bytes, profile "
            << profile << ", seed " << config.seed << "\n"
            << "  ct entries:     " << world.ct_logs().total_entries() << "\n"
            << "  revocations:    " << world.crl_collection().store().size()
            << "\n"
            << "  whois events:   " << world.whois().new_registrations().size()
            << "\n"
            << "  adns snapshots: " << world.adns().days() << "\n";

  if (shards > 1) {
    const int rc = write_shards(output_path, shards, observer);
    if (rc != 0) return rc;
  }

  if (!metrics_json_path.empty()) {
    if (metrics_json_path == "-") {
      std::cerr << telemetry.report_json() << '\n';
    } else {
      std::ofstream out(metrics_json_path);
      if (!out) {
        log.error("cannot write metrics JSON", {{"path", metrics_json_path}});
        return 1;
      }
      out << telemetry.report_json() << '\n';
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Layered catch over the store error taxonomy: every failure mode exits
  // nonzero with a one-line diagnostic instead of an unhandled-exception
  // abort. The simulation itself runs inside the try block too — it was
  // previously outside any handler.
  try {
    return run(argc, argv);
  } catch (const store::ArchiveError& e) {
    std::cerr << "world_gen: cannot write archive: " << e.what() << '\n';
    return 1;
  } catch (const stalecert::Error& e) {
    std::cerr << "world_gen: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "world_gen: unexpected error: " << e.what() << '\n';
    return 1;
  }
}
