// stalecert_lint: project-invariant linter for the stalecert source tree.
//
//   $ ./stalecert_lint [--rule NAME]... [--list-rules] <repo-root>
//
// Scans src/, tools/, and examples/ under the given root and enforces the
// invariants the compiler cannot (see tools/lint/README.md for the full
// rule descriptions):
//
//   layering        src/<module> may only #include "stalecert/<dep>/..."
//                   for deps in the module layering table, and the observed
//                   include graph must stay acyclic.
//   raw-logging     no std::cerr / printf / fprintf diagnostics in src/
//                   outside src/obs (EventLog is the logging seam).
//   raw-mutex       no std::mutex & friends outside src/util — concurrent
//                   code must use the annotated util::Mutex wrapper.
//   raw-socket      no raw ::socket( / ::connect( / ::accept( calls outside
//                   src/net — stalecert::net owns the one transport; new
//                   socket owners must go through it.
//   partial-switch  switches over the enforced enum list (StaleClass and
//                   friends) must cover every enumerator and carry no
//                   default label, so -Wswitch keeps guarding growth.
//
// Violations print "path:line: [rule] message" and exit 1; a clean tree
// exits 0; usage or I/O problems exit 2. A line may opt out of one rule
// with a trailing comment containing "lint:allow(<rule>)" and a reason.

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

namespace fs = std::filesystem;

namespace {

// --- The module layering table -------------------------------------------
//
// Every src/<module> and the modules it may depend on. Keep edges tight:
// this table *is* the architecture — a new legitimate dependency is a
// one-line diff here, reviewed as such. "util" is the bottom layer;
// "cluster" is the top. tools/, examples/, tests/, and bench/ sit above
// the whole tree and may include anything.
const std::map<std::string, std::set<std::string>>& layering_table() {
  static const std::map<std::string, std::set<std::string>> table = {
      {"util", {}},
      {"crypto", {"util"}},
      {"asn1", {"util"}},
      {"x509", {"asn1", "crypto", "util"}},
      {"dns", {"util", "x509"}},
      {"whois", {"util"}},
      {"registrar", {"util"}},
      {"reputation", {"util"}},
      {"popularity", {"util"}},
      {"obs", {"util"}},
      {"net", {"obs", "util"}},
      {"revocation", {"asn1", "crypto", "util", "x509"}},
      {"tls", {"revocation", "util", "x509"}},
      {"ct", {"crypto", "obs", "util", "x509"}},
      {"ca", {"ct", "revocation", "util", "x509"}},
      {"cdn", {"ca", "dns", "util", "x509"}},
      {"core", {"ct", "dns", "obs", "revocation", "util", "whois", "x509"}},
      {"sim", {"ca", "cdn", "ct", "dns", "obs", "registrar", "reputation",
               "revocation", "util", "whois"}},
      {"store", {"ct", "dns", "obs", "revocation", "sim", "util", "whois",
                 "x509"}},
      {"query", {"core", "dns", "net", "obs", "store", "util"}},
      {"feed", {"core", "ct", "dns", "obs", "query", "revocation", "sim",
                "store", "util", "whois"}},
      {"cluster", {"asn1", "feed", "net", "obs", "query", "store", "util",
                   "x509"}},
  };
  return table;
}

/// Enums whose switches must stay exhaustive: adding an enumerator must
/// fail lint (and -Wswitch) at every switch until the new case is handled.
/// Enumerator lists are parsed from the tree itself, so this stays in sync
/// with the headers automatically.
const std::set<std::string>& enforced_enums() {
  static const std::set<std::string> enums = {
      "StaleClass",       "InfoCategory",
      "InvalidationEvent", "LogLevel",
      "RevocationJoinOutcome", "DepartureJoinOutcome",
  };
  return enums;
}

struct Diagnostic {
  std::string file;  // root-relative path
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct SourceFile {
  fs::path path;
  std::string rel;        // root-relative, '/'-separated
  std::string module;     // "<mod>" when under src/<mod>/, else empty
  std::string raw;        // original bytes
  std::string sanitized;  // comments and string/char literals blanked
};

bool is_ident_char(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

/// Blanks comments, string literals (including raw strings), and char
/// literals with spaces, preserving newlines so offsets map to the same
/// line numbers as the original text.
std::string sanitize(const std::string& text) {
  std::string out = text;
  const std::size_t n = text.size();
  std::size_t i = 0;
  const auto blank = [&](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to && k < n; ++k) {
      if (out[k] != '\n') out[k] = ' ';
    }
  };
  while (i < n) {
    const char c = text[i];
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      blank(i, end);
      i = end;
    } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      std::size_t end = text.find("*/", i + 2);
      end = (end == std::string::npos) ? n : end + 2;
      blank(i, end);
      i = end;
    } else if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
               (i == 0 || !is_ident_char(text[i - 1]))) {
      // Raw string literal: R"delim( ... )delim"
      const std::size_t open = text.find('(', i + 2);
      if (open == std::string::npos) break;
      std::string close = ")";
      close.append(text, i + 2, open - (i + 2));
      close.push_back('"');
      std::size_t end = text.find(close, open + 1);
      end = (end == std::string::npos) ? n : end + close.size();
      blank(i, end);
      i = end;
    } else if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n && text[j] != c) {
        if (text[j] == '\\') ++j;
        if (j < n) ++j;
      }
      const std::size_t end = (j < n) ? j + 1 : n;
      blank(i + 1, end > i + 1 ? end - 1 : i + 1);  // keep the quotes
      i = end;
    } else {
      ++i;
    }
  }
  return out;
}

std::size_t line_of(const std::string& text, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<long>(
                                                             std::min(offset, text.size())),
                            '\n'));
}

std::string line_text(const std::string& text, std::size_t line) {
  std::istringstream in(text);
  std::string current;
  for (std::size_t k = 0; k < line && std::getline(in, current); ++k) {
  }
  return current;
}

/// True when the offending line — or the line above it, for markers that
/// do not fit as a trailing comment — carries "lint:allow(<rule>)".
bool line_allows(const SourceFile& file, std::size_t line,
                 const std::string& rule) {
  const std::string marker = "lint:allow(" + rule + ")";
  if (line_text(file.raw, line).find(marker) != std::string::npos) return true;
  return line > 1 &&
         line_text(file.raw, line - 1).find(marker) != std::string::npos;
}

/// Finds `token` as a whole word starting at or after `from`; npos when
/// absent. Boundaries: the char before the match and after it must not be
/// identifier characters (':' also blocks, so "std::mutex" never matches
/// inside a longer qualified name).
std::size_t find_token(const std::string& text, const std::string& token,
                       std::size_t from) {
  std::size_t pos = text.find(token, from);
  while (pos != std::string::npos) {
    const bool left_ok =
        pos == 0 || (!is_ident_char(text[pos - 1]) && text[pos - 1] != ':');
    const std::size_t after = pos + token.size();
    const bool right_ok = after >= text.size() ||
                          (!is_ident_char(text[after]) && text[after] != ':');
    if (left_ok && right_ok) return pos;
    pos = text.find(token, pos + 1);
  }
  return std::string::npos;
}

/// Offset just past the bracket that matches text[open] (which must be one
/// of ( { [ ); npos when unbalanced.
std::size_t match_bracket(const std::string& text, std::size_t open) {
  const char open_c = text[open];
  const char close_c = open_c == '(' ? ')' : (open_c == '{' ? '}' : ']');
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == open_c) ++depth;
    if (text[i] == close_c && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

// --- Rule: layering -------------------------------------------------------

struct IncludeEdge {
  std::string from_module;
  std::string to_module;
  std::string file;
  std::size_t line;
};

void check_layering(const std::vector<SourceFile>& files,
                    std::vector<Diagnostic>* diagnostics) {
  const auto& table = layering_table();
  std::vector<IncludeEdge> edges;

  for (const SourceFile& file : files) {
    if (file.module.empty()) continue;  // tools/examples: unrestricted
    if (table.find(file.module) == table.end()) {
      diagnostics->push_back(
          {file.rel, 1, "layering",
           "module '" + file.module +
               "' is not in the layering table; add it (with its allowed "
               "dependencies) to layering_table() in stalecert_lint"});
      continue;
    }
    std::istringstream in(file.raw);
    std::string text_line;
    for (std::size_t line = 1; std::getline(in, text_line); ++line) {
      const std::size_t hash = text_line.find_first_not_of(" \t");
      if (hash == std::string::npos || text_line[hash] != '#') continue;
      static const std::string kPrefix = "#include \"stalecert/";
      const std::size_t inc = text_line.find(kPrefix, hash);
      if (inc == std::string::npos) continue;
      const std::size_t start = inc + kPrefix.size();
      const std::size_t slash = text_line.find('/', start);
      if (slash == std::string::npos) continue;
      const std::string dep = text_line.substr(start, slash - start);
      if (dep == file.module) continue;
      edges.push_back({file.module, dep, file.rel, line});
      if (table.find(dep) == table.end()) {
        if (line_allows(file, line, "layering")) continue;
        diagnostics->push_back(
            {file.rel, line, "layering",
             "include of unknown module '" + dep +
                 "'; add it to layering_table() in stalecert_lint"});
        continue;
      }
      const std::set<std::string>& allowed = table.at(file.module);
      if (allowed.find(dep) == allowed.end()) {
        if (line_allows(file, line, "layering")) continue;
        diagnostics->push_back(
            {file.rel, line, "layering",
             "module '" + file.module + "' must not depend on '" + dep +
                 "' (allowed: " +
                 [&allowed] {
                   std::string joined;
                   for (const auto& a : allowed)
                     joined += (joined.empty() ? "" : ", ") + a;
                   return joined.empty() ? std::string("none") : joined;
                 }() +
                 ")"});
      }
    }
  }

  // Cycle detection over the *observed* graph (valid and violating edges
  // alike): a cycle means the layering premise itself is broken, which is
  // worth its own diagnostic even when every edge is individually flagged.
  std::map<std::string, std::set<std::string>> graph;
  for (const IncludeEdge& edge : edges) {
    graph[edge.from_module].insert(edge.to_module);
  }
  std::set<std::string> done;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  bool cycle_reported = false;

  const std::function<void(const std::string&)> visit =
      [&](const std::string& module) {
        if (cycle_reported || done.count(module) != 0) return;
        stack.push_back(module);
        on_stack.insert(module);
        const auto it = graph.find(module);
        if (it != graph.end()) {
          for (const std::string& dep : it->second) {
            if (cycle_reported) break;
            if (on_stack.count(dep) != 0) {
              // Rebuild the cycle path module -> ... -> dep -> module.
              std::string path;
              bool in_cycle = false;
              for (const std::string& m : stack) {
                if (m == dep) in_cycle = true;
                if (in_cycle) path += m + " -> ";
              }
              path += dep;
              // Anchor the report at the edge closing the cycle.
              for (const IncludeEdge& edge : edges) {
                if (edge.from_module == module && edge.to_module == dep) {
                  diagnostics->push_back(
                      {edge.file, edge.line, "layering",
                       "include cycle between modules: " + path});
                  break;
                }
              }
              cycle_reported = true;
              break;
            }
            visit(dep);
          }
        }
        on_stack.erase(module);
        stack.pop_back();
        done.insert(module);
      };
  for (const auto& [module, deps] : graph) {
    (void)deps;
    visit(module);
  }
}

// --- Rule: raw-logging ----------------------------------------------------

void check_raw_logging(const std::vector<SourceFile>& files,
                       std::vector<Diagnostic>* diagnostics) {
  // snprintf/vsnprintf are fine (bounded formatting into buffers, not
  // logging); find_token's boundary check keeps them from matching.
  static const std::vector<std::string> kBanned = {"std::cerr", "printf",
                                                   "fprintf"};
  for (const SourceFile& file : files) {
    if (file.module.empty() || file.module == "obs") continue;
    for (const std::string& token : kBanned) {
      for (std::size_t pos = find_token(file.sanitized, token, 0);
           pos != std::string::npos;
           pos = find_token(file.sanitized, token, pos + 1)) {
        const std::size_t line = line_of(file.sanitized, pos);
        if (line_allows(file, line, "raw-logging")) continue;
        diagnostics->push_back(
            {file.rel, line, "raw-logging",
             "raw '" + token +
                 "' diagnostic in library code; route it through "
                 "obs::EventLog (src/obs) instead"});
      }
    }
  }
}

// --- Rule: raw-mutex ------------------------------------------------------

void check_raw_mutex(const std::vector<SourceFile>& files,
                     std::vector<Diagnostic>* diagnostics) {
  static const std::vector<std::string> kBanned = {
      "std::mutex",          "std::timed_mutex",
      "std::recursive_mutex", "std::shared_mutex",
      "std::lock_guard",     "std::unique_lock",
      "std::scoped_lock",    "std::shared_lock",
      "std::condition_variable", "std::condition_variable_any",
  };
  for (const SourceFile& file : files) {
    if (file.module == "util") continue;  // the wrapper itself
    for (const std::string& token : kBanned) {
      for (std::size_t pos = find_token(file.sanitized, token, 0);
           pos != std::string::npos;
           pos = find_token(file.sanitized, token, pos + 1)) {
        const std::size_t line = line_of(file.sanitized, pos);
        if (line_allows(file, line, "raw-mutex")) continue;
        diagnostics->push_back(
            {file.rel, line, "raw-mutex",
             "raw '" + token +
                 "' outside src/util; use util::Mutex / util::MutexLock / "
                 "util::CondVar (stalecert/util/mutex.hpp) so Clang "
                 "thread-safety analysis sees the lock"});
      }
    }
  }
}

// --- Rule: raw-socket -----------------------------------------------------

void check_raw_socket(const std::vector<SourceFile>& files,
                      std::vector<Diagnostic>* diagnostics) {
  // Only the global-qualified spellings are banned: "::connect(" with no
  // identifier before the "::" is the libc call, while "client.connect("
  // or a "TlsClient::connect(" definition is a method and stays legal.
  static const std::vector<std::string> kBanned = {
      "::socket(", "::connect(", "::accept(", "::accept4("};
  for (const SourceFile& file : files) {
    if (file.module.empty() || file.module == "net") continue;
    const std::string& text = file.sanitized;
    for (const std::string& token : kBanned) {
      for (std::size_t pos = text.find(token); pos != std::string::npos;
           pos = text.find(token, pos + 1)) {
        if (pos > 0 &&
            (is_ident_char(text[pos - 1]) || text[pos - 1] == ':')) {
          continue;  // Type::connect( — qualified name, not the libc call
        }
        const std::size_t line = line_of(text, pos);
        if (line_allows(file, line, "raw-socket")) continue;
        diagnostics->push_back(
            {file.rel, line, "raw-socket",
             "raw '" + token.substr(0, token.size() - 1) +
                 "' outside src/net; sockets belong to stalecert::net "
                 "(EventLoop / Listener / HttpServer / HttpClient / "
                 "fetch_all) so there is exactly one transport"});
      }
    }
  }
}

// --- Rule: partial-switch -------------------------------------------------

/// Parses every `enum class Name ... { ... }` in the sanitized text.
void collect_enums(const SourceFile& file,
                   std::map<std::string, std::vector<std::string>>* enums) {
  const std::string& text = file.sanitized;
  for (std::size_t pos = find_token(text, "enum", 0); pos != std::string::npos;
       pos = find_token(text, "enum", pos + 1)) {
    std::size_t i = pos + 4;
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (text.compare(i, 5, "class") == 0 || text.compare(i, 6, "struct") == 0) {
      i += (text[i] == 'c') ? 5 : 6;
    } else {
      continue;  // unscoped enum: none of the enforced ones
    }
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    std::size_t name_end = i;
    while (name_end < text.size() && is_ident_char(text[name_end])) ++name_end;
    if (name_end == i) continue;
    const std::string name = text.substr(i, name_end - i);
    const std::size_t brace = text.find_first_of("{;", name_end);
    if (brace == std::string::npos || text[brace] == ';') continue;
    const std::size_t end = match_bracket(text, brace);
    if (end == std::string::npos) continue;

    std::vector<std::string> values;
    std::size_t k = brace + 1;
    while (k < end - 1) {
      while (k < end - 1 &&
             !is_ident_char(text[k])) {
        ++k;
      }
      std::size_t v_end = k;
      while (v_end < end - 1 && is_ident_char(text[v_end])) ++v_end;
      if (v_end > k) values.push_back(text.substr(k, v_end - k));
      // Skip to the next top-level comma (past any "= expr").
      int depth = 0;
      k = v_end;
      while (k < end - 1 && (text[k] != ',' || depth > 0)) {
        if (text[k] == '(' || text[k] == '{' || text[k] == '<') ++depth;
        if (text[k] == ')' || text[k] == '}' || text[k] == '>') --depth;
        ++k;
      }
      ++k;
    }
    if (!values.empty()) (*enums)[name] = values;
  }
}

void check_switches(const std::vector<SourceFile>& files,
                    std::vector<Diagnostic>* diagnostics) {
  std::map<std::string, std::vector<std::string>> enums;
  for (const SourceFile& file : files) collect_enums(file, &enums);

  for (const SourceFile& file : files) {
    const std::string& text = file.sanitized;
    for (std::size_t pos = find_token(text, "switch", 0);
         pos != std::string::npos; pos = find_token(text, "switch", pos + 1)) {
      const std::size_t paren = text.find('(', pos);
      if (paren == std::string::npos) continue;
      const std::size_t paren_end = match_bracket(text, paren);
      if (paren_end == std::string::npos) continue;
      const std::size_t brace = text.find('{', paren_end);
      if (brace == std::string::npos) continue;
      const std::size_t body_end = match_bracket(text, brace);
      if (body_end == std::string::npos) continue;

      // Collect "case Enum::Value" labels and default labels in the body.
      std::map<std::string, std::set<std::string>> seen;  // enum -> values
      bool has_default = false;
      for (std::size_t c = find_token(text, "case", brace);
           c != std::string::npos && c < body_end;
           c = find_token(text, "case", c + 1)) {
        const std::size_t colon = [&] {
          std::size_t k = c + 4;
          while (k + 1 < body_end) {
            if (text[k] == ':' && text[k + 1] != ':' && text[k - 1] != ':')
              return k;
            ++k;
          }
          return std::string::npos;
        }();
        if (colon == std::string::npos) continue;
        const std::string label = text.substr(c + 4, colon - (c + 4));
        // Last "Name::Value" pair in the label (handles ns::Enum::Value).
        const std::size_t sep = label.rfind("::");
        if (sep == std::string::npos || sep == 0) continue;
        std::size_t name_start = sep;
        while (name_start > 0 && is_ident_char(label[name_start - 1]))
          --name_start;
        std::size_t value_start = sep + 2;
        std::size_t value_end = value_start;
        while (value_end < label.size() && is_ident_char(label[value_end]))
          ++value_end;
        const std::string enum_name =
            label.substr(name_start, sep - name_start);
        const std::string value =
            label.substr(value_start, value_end - value_start);
        if (!enum_name.empty() && !value.empty())
          seen[enum_name].insert(value);
      }
      // find_token() would reject "default:" (trailing ':' looks like a
      // qualified name), so scan with explicit boundaries here.
      for (std::size_t d = text.find("default", brace);
           d != std::string::npos && d < body_end;
           d = text.find("default", d + 1)) {
        if (d > 0 && is_ident_char(text[d - 1])) continue;
        std::size_t k = d + 7;
        while (k < body_end &&
               std::isspace(static_cast<unsigned char>(text[k]))) {
          ++k;
        }
        if (k < body_end && text[k] == ':' &&
            (k + 1 >= text.size() || text[k + 1] != ':')) {
          has_default = true;
        }
      }

      const std::size_t line = line_of(text, pos);
      for (const auto& [enum_name, values] : seen) {
        if (enforced_enums().count(enum_name) == 0) continue;
        const auto def = enums.find(enum_name);
        if (def == enums.end()) continue;  // definition not in scanned tree
        if (line_allows(file, line, "partial-switch")) continue;
        std::string missing;
        for (const std::string& v : def->second) {
          if (values.count(v) == 0) missing += (missing.empty() ? "" : ", ") + v;
        }
        if (!missing.empty()) {
          diagnostics->push_back(
              {file.rel, line, "partial-switch",
               "switch over " + enum_name + " is missing: " + missing});
        }
        if (has_default) {
          diagnostics->push_back(
              {file.rel, line, "partial-switch",
               "switch over " + enum_name +
                   " has a default label, which silences -Wswitch when an "
                   "enumerator is added; handle every case explicitly"});
        }
      }
    }
  }
}

// --- Driver ---------------------------------------------------------------

bool has_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

int run(int argc, char** argv) {
  std::vector<std::string> rules;
  std::string root;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rule" && i + 1 < argc) {
      rules.emplace_back(argv[++i]);
    } else if (arg == "--list-rules") {
      std::cout << "layering\nraw-logging\nraw-mutex\nraw-socket\n"
                   "partial-switch\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "stalecert_lint: unknown flag " << arg << '\n';
      return 2;
    } else if (root.empty()) {
      root = arg;
    } else {
      std::cerr << "stalecert_lint: more than one root given\n";
      return 2;
    }
  }
  if (root.empty()) {
    std::cerr << "usage: stalecert_lint [--rule NAME]... [--list-rules] "
                 "<repo-root>\n";
    return 2;
  }
  const auto enabled = [&rules](const std::string& rule) {
    return rules.empty() ||
           std::find(rules.begin(), rules.end(), rule) != rules.end();
  };

  const fs::path root_path(root);
  if (!fs::is_directory(root_path)) {
    std::cerr << "stalecert_lint: not a directory: " << root << '\n';
    return 2;
  }

  std::vector<SourceFile> files;
  for (const char* top : {"src", "tools", "examples"}) {
    const fs::path dir = root_path / top;
    if (!fs::is_directory(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory()) {
        const std::string name = it->path().filename().string();
        if (name == ".git" || name.rfind("build", 0) == 0 || name == "data") {
          it.disable_recursion_pending();
        }
        continue;
      }
      if (!it->is_regular_file() || !has_extension(it->path())) continue;
      SourceFile file;
      file.path = it->path();
      file.rel = fs::relative(file.path, root_path).generic_string();
      if (file.rel.rfind("src/", 0) == 0) {
        const std::size_t slash = file.rel.find('/', 4);
        if (slash != std::string::npos)
          file.module = file.rel.substr(4, slash - 4);
      }
      std::ifstream in(file.path, std::ios::binary);
      if (!in) {
        std::cerr << "stalecert_lint: cannot read " << file.rel << '\n';
        return 2;
      }
      std::ostringstream contents;
      contents << in.rdbuf();
      file.raw = contents.str();
      file.sanitized = sanitize(file.raw);
      files.push_back(std::move(file));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });

  std::vector<Diagnostic> diagnostics;
  if (enabled("layering")) check_layering(files, &diagnostics);
  if (enabled("raw-logging")) check_raw_logging(files, &diagnostics);
  if (enabled("raw-mutex")) check_raw_mutex(files, &diagnostics);
  if (enabled("raw-socket")) check_raw_socket(files, &diagnostics);
  if (enabled("partial-switch")) check_switches(files, &diagnostics);

  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  for (const Diagnostic& d : diagnostics) {
    std::cout << d.file << ':' << d.line << ": [" << d.rule << "] "
              << d.message << '\n';
  }
  if (!diagnostics.empty()) {
    std::cout << diagnostics.size() << " violation"
              << (diagnostics.size() == 1 ? "" : "s") << '\n';
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "stalecert_lint: " << e.what() << '\n';
    return 2;
  }
}
