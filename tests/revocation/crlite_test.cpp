#include "stalecert/revocation/crlite.hpp"

#include <gtest/gtest.h>

#include "stalecert/util/error.hpp"
#include "stalecert/util/rng.hpp"

namespace stalecert::revocation {
namespace {

std::vector<std::string> keys(const char* prefix, int n) {
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(std::string(prefix) + std::to_string(i));
  return out;
}

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(4096, 7, 1);
  const auto inserted = keys("in", 200);
  for (const auto& key : inserted) filter.insert(key);
  for (const auto& key : inserted) {
    EXPECT_TRUE(filter.maybe_contains(key)) << key;
  }
}

TEST(BloomFilterTest, LowFalsePositiveRate) {
  BloomFilter filter(4096, 7, 2);
  for (const auto& key : keys("in", 200)) filter.insert(key);
  int false_positives = 0;
  for (const auto& key : keys("out", 2000)) {
    if (filter.maybe_contains(key)) ++false_positives;
  }
  EXPECT_LT(false_positives, 100);  // ~20 bits/entry -> tiny FP rate
}

TEST(BloomFilterTest, SaltChangesPositions) {
  BloomFilter a(1024, 4, 1);
  BloomFilter b(1024, 4, 2);
  a.insert("key");
  // Different salt: "key" should (overwhelmingly likely) not fully match b.
  EXPECT_FALSE(b.maybe_contains("key"));
}

TEST(CrliteTest, ExactOnEnrolledUniverse) {
  const auto revoked = keys("revoked", 500);
  const auto valid = keys("valid", 5000);
  const CrliteFilter filter = CrliteFilter::build(revoked, valid);

  for (const auto& key : revoked) {
    EXPECT_TRUE(filter.is_revoked(key)) << key;
  }
  for (const auto& key : valid) {
    EXPECT_FALSE(filter.is_revoked(key)) << key;
  }
  EXPECT_EQ(filter.enrolled_revoked(), 500u);
  EXPECT_EQ(filter.enrolled_valid(), 5000u);
  EXPECT_GE(filter.level_count(), 1u);
}

TEST(CrliteTest, EmptyRevokedSet) {
  const CrliteFilter filter = CrliteFilter::build({}, keys("valid", 100));
  EXPECT_EQ(filter.level_count(), 0u);
  EXPECT_FALSE(filter.is_revoked("valid1"));
  EXPECT_FALSE(filter.is_revoked("anything"));
}

TEST(CrliteTest, CompressionBeatsPlainList) {
  // The whole point of CRLite: the cascade is far smaller than shipping
  // the revoked serials outright.
  const auto revoked = keys("revoked-certificate-serial-", 2000);
  const auto valid = keys("valid-certificate-serial-", 20000);
  const CrliteFilter filter = CrliteFilter::build(revoked, valid);

  std::size_t plain_bytes = 0;
  for (const auto& key : revoked) plain_bytes += key.size();
  EXPECT_LT(filter.total_bytes(), plain_bytes);
}

TEST(CrliteTest, RejectsAbsurdParameters) {
  EXPECT_THROW(CrliteFilter::build(keys("r", 10), keys("v", 10), 1.0),
               stalecert::LogicError);
}

class CrliteSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrliteSweep, ExactAcrossSizes) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int revoked_n = GetParam();
  const int valid_n = GetParam() * 10;
  std::vector<std::string> revoked;
  std::vector<std::string> valid;
  for (int i = 0; i < revoked_n; ++i) {
    revoked.push_back("r" + std::to_string(rng.next()));
  }
  for (int i = 0; i < valid_n; ++i) {
    valid.push_back("v" + std::to_string(rng.next()));
  }
  const CrliteFilter filter = CrliteFilter::build(revoked, valid);
  for (const auto& key : revoked) EXPECT_TRUE(filter.is_revoked(key));
  for (const auto& key : valid) EXPECT_FALSE(filter.is_revoked(key));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CrliteSweep, ::testing::Values(1, 17, 128, 1000));

TEST(CrliteKeyTest, Format) {
  crypto::Digest digest{};
  digest[0] = 0xab;
  const std::string key = crlite_key(digest, {0x01, 0x02});
  EXPECT_EQ(key.size(), 64 + 1 + 4);
  EXPECT_EQ(key.substr(0, 2), "ab");
  EXPECT_EQ(key.substr(key.size() - 5), ":0102");
}

}  // namespace
}  // namespace stalecert::revocation
