#include "stalecert/revocation/collector.hpp"

#include <gtest/gtest.h>

#include "stalecert/revocation/join.hpp"
#include "stalecert/util/error.hpp"
#include "stalecert/x509/certificate.hpp"

namespace stalecert::revocation {
namespace {

using util::Date;

TEST(RevocationStoreTest, KeepsEarliestObservation) {
  RevocationStore store;
  const auto aki = crypto::Sha256::hash("ca");
  const asn1::Bytes serial = {0x01};
  store.add(aki, serial, {Date::parse("2022-06-01"), ReasonCode::kSuperseded});
  store.add(aki, serial, {Date::parse("2022-05-01"), ReasonCode::kKeyCompromise});
  store.add(aki, serial, {Date::parse("2022-07-01"), ReasonCode::kUnspecified});

  const auto* obs = store.lookup(aki, serial);
  ASSERT_NE(obs, nullptr);
  EXPECT_EQ(obs->revocation_date, Date::parse("2022-05-01"));
  EXPECT_EQ(obs->reason, ReasonCode::kKeyCompromise);
  EXPECT_EQ(store.size(), 1u);
}

TEST(RevocationStoreTest, DistinctKeys) {
  RevocationStore store;
  store.add(crypto::Sha256::hash("ca1"), {0x01}, {Date::parse("2022-01-01"), {}});
  store.add(crypto::Sha256::hash("ca2"), {0x01}, {Date::parse("2022-01-01"), {}});
  store.add(crypto::Sha256::hash("ca1"), {0x02}, {Date::parse("2022-01-01"), {}});
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.lookup(crypto::Sha256::hash("ca3"), {0x01}), nullptr);
}

TEST(CrlCollectorTest, CollectsAndTracksCoverage) {
  Crl crl({"CA A", "OrgA", "US"}, crypto::Sha256::hash("a"),
          Date::parse("2022-11-01"), Date::parse("2022-11-08"));
  crl.add({{0x11}, Date::parse("2022-10-01"), ReasonCode::kKeyCompromise});

  CrlCollector collector(5);
  collector.add_endpoint({"OrgA", "http://a/crl",
                          [&crl](Date) { return std::optional(crl.to_der()); },
                          0.0});
  collector.add_endpoint({"OrgB", "http://b/crl",
                          [](Date) { return std::optional<asn1::Bytes>{}; },
                          0.0});  // always unavailable

  collector.collect_range(Date::parse("2022-11-01"), Date::parse("2022-11-10"));

  EXPECT_EQ(collector.coverage().at("OrgA").attempted, 10u);
  EXPECT_EQ(collector.coverage().at("OrgA").succeeded, 10u);
  EXPECT_EQ(collector.coverage().at("OrgB").succeeded, 0u);
  EXPECT_DOUBLE_EQ(collector.total_coverage().ratio(), 0.5);
  EXPECT_EQ(collector.store().size(), 1u);
}

TEST(CrlCollectorTest, FailureProbabilityReducesCoverage) {
  Crl crl({"CA", "Org", "US"}, crypto::Sha256::hash("k"),
          Date::parse("2022-11-01"), Date::parse("2022-11-08"));
  CrlCollector collector(17);
  collector.add_endpoint({"Flaky", "http://f/crl",
                          [&crl](Date) { return std::optional(crl.to_der()); },
                          0.5});
  collector.collect_range(Date::parse("2022-11-01"), Date::parse("2023-02-01"));
  const auto& stats = collector.coverage().at("Flaky");
  EXPECT_GT(stats.succeeded, 0u);
  EXPECT_LT(stats.succeeded, stats.attempted);
  EXPECT_NEAR(stats.ratio(), 0.5, 0.15);
}

TEST(CrlCollectorTest, ParseFailuresCounted) {
  CrlCollector collector(3);
  collector.add_endpoint({"Broken", "http://broken/crl", [](Date) {
                            return std::optional(asn1::Bytes{0xde, 0xad});
                          }});
  collector.collect_daily(Date::parse("2022-11-01"));
  EXPECT_EQ(collector.parse_failures(), 1u);
  EXPECT_EQ(collector.coverage().at("Broken").succeeded, 0u);
}

TEST(CrlCollectorTest, EndpointWithoutFetchRejected) {
  CrlCollector collector(3);
  EXPECT_THROW(collector.add_endpoint({"X", "http://x", nullptr}),
               stalecert::LogicError);
}

x509::Certificate make_cert(std::uint64_t serial, const crypto::Digest& aki,
                            const char* nb, const char* na) {
  return x509::CertificateBuilder{}
      .serial(serial)
      .subject_cn("joined.example.com")
      .validity(Date::parse(nb), Date::parse(na))
      .key(crypto::KeyPair::derive("k" + std::to_string(serial),
                                   crypto::KeyAlgorithm::kEcdsaP256))
      .add_dns_name("joined.example.com")
      .authority_key_id(aki)
      .build();
}

TEST(JoinTest, FiltersApplyInOrder) {
  const auto aki = crypto::Sha256::hash("issuer");
  std::vector<x509::Certificate> corpus = {
      make_cert(1, aki, "2022-01-01", "2022-12-01"),  // kept
      make_cert(2, aki, "2022-01-01", "2022-12-01"),  // revoked before valid
      make_cert(3, aki, "2022-01-01", "2022-12-01"),  // revoked after expiry
      make_cert(4, aki, "2022-01-01", "2022-12-01"),  // before cutoff
      make_cert(5, aki, "2022-01-01", "2022-12-01"),  // not revoked
  };
  RevocationStore store;
  store.add(aki, corpus[0].serial(), {Date::parse("2022-06-01"), ReasonCode::kKeyCompromise});
  store.add(aki, corpus[1].serial(), {Date::parse("2021-12-15"), ReasonCode::kUnspecified});
  store.add(aki, corpus[2].serial(), {Date::parse("2022-12-15"), ReasonCode::kUnspecified});
  store.add(aki, corpus[3].serial(), {Date::parse("2022-02-01"), ReasonCode::kUnspecified});

  JoinFilters filters;
  filters.min_revocation_date = Date::parse("2022-03-01");
  JoinStats stats;
  const auto joined = join_revocations(corpus, store, filters, &stats);

  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0].certificate.serial(), corpus[0].serial());
  EXPECT_EQ(joined[0].reason, ReasonCode::kKeyCompromise);
  EXPECT_EQ(stats.matched, 4u);
  EXPECT_EQ(stats.dropped_before_valid, 1u);
  EXPECT_EQ(stats.dropped_after_expiry, 1u);
  EXPECT_EQ(stats.dropped_before_cutoff, 1u);
  EXPECT_EQ(stats.kept, 1u);
}

TEST(JoinTest, NoCutoffKeepsEarlyRevocations) {
  const auto aki = crypto::Sha256::hash("issuer");
  std::vector<x509::Certificate> corpus = {
      make_cert(1, aki, "2022-01-01", "2022-12-01")};
  RevocationStore store;
  store.add(aki, corpus[0].serial(), {Date::parse("2022-01-15"), ReasonCode::kSuperseded});
  const auto joined = join_revocations(corpus, store, {}, nullptr);
  EXPECT_EQ(joined.size(), 1u);
}

}  // namespace
}  // namespace stalecert::revocation
