#include "stalecert/revocation/ocsp.hpp"

#include <gtest/gtest.h>

namespace stalecert::revocation {
namespace {

using util::Date;

Crl make_crl(const crypto::Digest& aki, const char* this_update) {
  Crl crl({"CA", "Org", "US"}, aki, Date::parse(this_update),
          Date::parse(this_update) + 7);
  crl.add({{0x11}, Date::parse(this_update) - 10, ReasonCode::kKeyCompromise});
  crl.add({{0x22}, Date::parse(this_update) - 3, ReasonCode::kSuperseded});
  return crl;
}

TEST(OcspResponderTest, UnknownBeforeAnyCrl) {
  OcspResponder responder(crypto::Sha256::hash("ca"));
  const auto response = responder.query({0x11}, Date::parse("2022-01-01"));
  EXPECT_EQ(response.status, CertStatus::kUnknown);
}

TEST(OcspResponderTest, GoodAndRevokedAfterCrl) {
  const auto aki = crypto::Sha256::hash("ca");
  OcspResponder responder(aki);
  ASSERT_TRUE(responder.update_from_crl(make_crl(aki, "2022-06-01")));
  EXPECT_EQ(responder.revoked_count(), 2u);

  const auto revoked = responder.query({0x11}, Date::parse("2022-06-02"));
  EXPECT_EQ(revoked.status, CertStatus::kRevoked);
  EXPECT_EQ(revoked.revocation_time, Date::parse("2022-05-22"));
  EXPECT_EQ(revoked.reason, ReasonCode::kKeyCompromise);

  const auto good = responder.query({0x99}, Date::parse("2022-06-02"));
  EXPECT_EQ(good.status, CertStatus::kGood);
}

TEST(OcspResponderTest, RejectsForeignCrl) {
  OcspResponder responder(crypto::Sha256::hash("ca-a"));
  EXPECT_FALSE(responder.update_from_crl(make_crl(crypto::Sha256::hash("ca-b"),
                                                  "2022-06-01")));
  // Still uninitialized.
  EXPECT_EQ(responder.query({0x11}, Date::parse("2022-06-02")).status,
            CertStatus::kUnknown);
}

TEST(OcspResponderTest, ResponseFreshnessWindow) {
  const auto aki = crypto::Sha256::hash("ca");
  OcspResponder responder(aki, /*response_validity_days=*/7);
  responder.update_from_crl(make_crl(aki, "2022-06-01"));
  const auto response = responder.query({0x99}, Date::parse("2022-06-02"));
  EXPECT_TRUE(response.fresh_at(Date::parse("2022-06-02")));
  EXPECT_TRUE(response.fresh_at(Date::parse("2022-06-08")));
  EXPECT_FALSE(response.fresh_at(Date::parse("2022-06-09")));
  EXPECT_FALSE(response.fresh_at(Date::parse("2022-06-01")));
}

TEST(OcspResponderTest, IncrementalCrlUpdates) {
  const auto aki = crypto::Sha256::hash("ca");
  OcspResponder responder(aki);
  responder.update_from_crl(make_crl(aki, "2022-06-01"));
  Crl later({"CA", "Org", "US"}, aki, Date::parse("2022-07-01"),
            Date::parse("2022-07-08"));
  later.add({{0x33}, Date::parse("2022-06-20"), ReasonCode::kUnspecified});
  responder.update_from_crl(later);
  EXPECT_EQ(responder.revoked_count(), 3u);
  EXPECT_EQ(responder.query({0x33}, Date::parse("2022-07-02")).status,
            CertStatus::kRevoked);
  // Earlier entries persist across updates.
  EXPECT_EQ(responder.query({0x11}, Date::parse("2022-07-02")).status,
            CertStatus::kRevoked);
}

TEST(CertStatusTest, Names) {
  EXPECT_EQ(to_string(CertStatus::kGood), "good");
  EXPECT_EQ(to_string(CertStatus::kRevoked), "revoked");
  EXPECT_EQ(to_string(CertStatus::kUnknown), "unknown");
}

}  // namespace
}  // namespace stalecert::revocation
