#include "stalecert/revocation/crl.hpp"

#include <gtest/gtest.h>

#include "stalecert/util/error.hpp"

namespace stalecert::revocation {
namespace {

using util::Date;

Crl sample_crl() {
  Crl crl({"Example CA", "Example Trust", "US"},
          crypto::Sha256::hash("issuer-key"), Date::parse("2022-11-01"),
          Date::parse("2022-11-08"));
  crl.add({{0x01, 0x02}, Date::parse("2022-10-15"), ReasonCode::kKeyCompromise});
  crl.add({{0x7f}, Date::parse("2022-10-20"), ReasonCode::kSuperseded});
  crl.add({{0x00, 0xff, 0x10}, Date::parse("2022-10-25"),
           ReasonCode::kCessationOfOperation});
  return crl;
}

TEST(CrlTest, BasicAccessors) {
  const Crl crl = sample_crl();
  EXPECT_EQ(crl.size(), 3u);
  EXPECT_EQ(crl.issuer().common_name, "Example CA");
  EXPECT_EQ(crl.this_update(), Date::parse("2022-11-01"));
  EXPECT_EQ(crl.next_update(), Date::parse("2022-11-08"));
}

TEST(CrlTest, NextUpdateBeforeThisUpdateRejected) {
  EXPECT_THROW(Crl({}, {}, Date::parse("2022-11-08"), Date::parse("2022-11-01")),
               stalecert::LogicError);
}

TEST(CrlTest, LookupBySerial) {
  const Crl crl = sample_crl();
  const asn1::Bytes hit = {0x01, 0x02};
  const asn1::Bytes miss = {0x09};
  EXPECT_TRUE(crl.is_revoked(hit));
  EXPECT_FALSE(crl.is_revoked(miss));
  const auto* entry = crl.find(hit);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->reason, ReasonCode::kKeyCompromise);
  EXPECT_EQ(entry->revocation_date, Date::parse("2022-10-15"));
}

TEST(CrlTest, DerRoundTrip) {
  const Crl original = sample_crl();
  const asn1::Bytes der = original.to_der();
  const Crl parsed = Crl::from_der(der);
  EXPECT_EQ(parsed, original);
}

TEST(CrlTest, EmptyCrlRoundTrips) {
  const Crl empty({"CA", "O", "US"}, crypto::Sha256::hash("k"),
                  Date::parse("2022-01-01"), Date::parse("2022-01-08"));
  EXPECT_EQ(Crl::from_der(empty.to_der()), empty);
}

TEST(CrlTest, SerialWithHighBitSurvivesRoundTrip) {
  // 0xff-leading serials require the DER INTEGER zero-pad.
  Crl crl({"CA", "O", "US"}, crypto::Sha256::hash("k"), Date::parse("2022-01-01"),
          Date::parse("2022-01-08"));
  crl.add({{0xff, 0xee, 0xdd}, Date::parse("2021-12-01"), ReasonCode::kUnspecified});
  const Crl parsed = Crl::from_der(crl.to_der());
  EXPECT_EQ(parsed.entries()[0].serial, (asn1::Bytes{0xff, 0xee, 0xdd}));
}

TEST(CrlTest, GarbageRejected) {
  EXPECT_THROW(Crl::from_der(asn1::Bytes{0x01, 0x02, 0x03}), stalecert::ParseError);
  EXPECT_THROW(Crl::from_der(asn1::Bytes{}), stalecert::ParseError);
}

TEST(ReasonCodeTest, RoundTripNames) {
  for (const auto reason :
       {ReasonCode::kUnspecified, ReasonCode::kKeyCompromise,
        ReasonCode::kCaCompromise, ReasonCode::kAffiliationChanged,
        ReasonCode::kSuperseded, ReasonCode::kCessationOfOperation,
        ReasonCode::kCertificateHold, ReasonCode::kRemoveFromCrl,
        ReasonCode::kPrivilegeWithdrawn, ReasonCode::kAaCompromise}) {
    EXPECT_EQ(reason_from_string(to_string(reason)), reason);
  }
  EXPECT_EQ(reason_from_string("nonsense"), std::nullopt);
}

TEST(ReasonCodeTest, MozillaPermitsExactlySix) {
  int permitted = 0;
  for (const auto reason :
       {ReasonCode::kUnspecified, ReasonCode::kKeyCompromise,
        ReasonCode::kCaCompromise, ReasonCode::kAffiliationChanged,
        ReasonCode::kSuperseded, ReasonCode::kCessationOfOperation,
        ReasonCode::kCertificateHold, ReasonCode::kRemoveFromCrl,
        ReasonCode::kPrivilegeWithdrawn, ReasonCode::kAaCompromise}) {
    if (mozilla_permitted(reason)) ++permitted;
  }
  EXPECT_EQ(permitted, 6);
  EXPECT_TRUE(mozilla_permitted(ReasonCode::kKeyCompromise));
  EXPECT_FALSE(mozilla_permitted(ReasonCode::kCertificateHold));
  EXPECT_FALSE(mozilla_permitted(ReasonCode::kCaCompromise));
}

}  // namespace
}  // namespace stalecert::revocation
