// Property sweep: randomized CRLs must DER-round-trip exactly, and mutated
// CRL bytes must never crash the parser.
#include <gtest/gtest.h>

#include "stalecert/revocation/crl.hpp"
#include "stalecert/util/error.hpp"
#include "stalecert/util/rng.hpp"

namespace stalecert::revocation {
namespace {

using util::Date;

Crl random_crl(util::Rng& rng) {
  const Date this_update = Date::parse("2020-01-01") + rng.between(0, 1500);
  Crl crl({"CA " + rng.alpha_label(6), "Org " + rng.alpha_label(4), "US"},
          crypto::Sha256::hash(rng.alpha_label(8)), this_update,
          this_update + rng.between(1, 30));
  const std::uint64_t entries = rng.below(40);
  for (std::uint64_t i = 0; i < entries; ++i) {
    RevokedEntry entry;
    const std::uint64_t serial_len = 1 + rng.below(12);
    for (std::uint64_t b = 0; b < serial_len; ++b) {
      entry.serial.push_back(static_cast<std::uint8_t>(rng.below(256)));
    }
    entry.revocation_date = this_update - rng.between(0, 400);
    entry.reason = static_cast<ReasonCode>(rng.below(11) == 7 ? 0 : rng.below(11));
    crl.add(entry);
  }
  return crl;
}

class CrlRoundTripSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrlRoundTripSweep, RandomCrlsRoundTrip) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    const Crl original = random_crl(rng);
    const asn1::Bytes der = original.to_der();
    const Crl parsed = Crl::from_der(der);
    ASSERT_EQ(parsed, original) << "seed=" << GetParam() << " i=" << i;
    ASSERT_EQ(parsed.to_der(), der);  // canonical re-encode
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrlRoundTripSweep,
                         ::testing::Values(7, 77, 777));

class CrlMutationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrlMutationSweep, MutatedBytesNeverCrash) {
  util::Rng rng(GetParam());
  const Crl crl = random_crl(rng);
  const asn1::Bytes der = crl.to_der();
  for (int trial = 0; trial < 200; ++trial) {
    asn1::Bytes mutated = der;
    const std::uint64_t flips = 1 + rng.below(3);
    for (std::uint64_t f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    if (rng.chance(0.25)) mutated.resize(1 + rng.below(mutated.size()));
    try {
      const Crl parsed = Crl::from_der(mutated);
      (void)parsed.size();
    } catch (const stalecert::Error&) {
      // structured rejection is the expected outcome
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrlMutationSweep, ::testing::Values(13, 1313));

}  // namespace
}  // namespace stalecert::revocation
