#include "stalecert/dns/name.hpp"

#include <gtest/gtest.h>

namespace stalecert::dns {
namespace {

TEST(LabelsTest, SplitAndNormalize) {
  EXPECT_EQ(labels("WWW.Foo.COM"), (std::vector<std::string>{"www", "foo", "com"}));
  EXPECT_EQ(labels("foo.com."), (std::vector<std::string>{"foo", "com"}));
  EXPECT_TRUE(labels("").empty());
  EXPECT_EQ(join_labels({"a", "b", "c"}), "a.b.c");
}

TEST(ValidDomainTest, AcceptsAndRejects) {
  EXPECT_TRUE(is_valid_domain("example.com"));
  EXPECT_TRUE(is_valid_domain("sub-domain.example.co.uk"));
  EXPECT_TRUE(is_valid_domain("*.example.com"));  // wildcard head label
  EXPECT_FALSE(is_valid_domain(""));
  EXPECT_FALSE(is_valid_domain("-bad.example.com"));
  EXPECT_FALSE(is_valid_domain("bad-.example.com"));
  EXPECT_FALSE(is_valid_domain("under_score.example.com"));
  EXPECT_FALSE(is_valid_domain(std::string(64, 'a') + ".com"));
}

TEST(PublicSuffixTest, BuiltinEtld) {
  const auto& psl = PublicSuffixList::builtin();
  EXPECT_EQ(psl.etld("foo.com"), "com");
  EXPECT_EQ(psl.etld("a.b.foo.co.uk"), "co.uk");
  EXPECT_EQ(psl.etld("com"), std::nullopt);      // itself a suffix
  EXPECT_EQ(psl.etld("unknown.zz"), std::nullopt);
}

TEST(PublicSuffixTest, E2ld) {
  EXPECT_EQ(e2ld("foo.com"), "foo.com");
  EXPECT_EQ(e2ld("www.foo.com"), "foo.com");
  EXPECT_EQ(e2ld("a.b.c.foo.co.uk"), "foo.co.uk");
  EXPECT_EQ(e2ld("co.uk"), std::nullopt);
  EXPECT_EQ(e2ld("com"), std::nullopt);
  EXPECT_EQ(e2ld("FOO.Com"), "foo.com");  // case-insensitive
}

TEST(PublicSuffixTest, WildcardRule) {
  const auto& psl = PublicSuffixList::builtin();
  // "*.ck": every child of ck is a suffix, except the "!www.ck" exception.
  EXPECT_TRUE(psl.is_public_suffix("anything.ck"));
  EXPECT_FALSE(psl.is_public_suffix("www.ck"));
  EXPECT_EQ(psl.e2ld("foo.anything.ck"), "foo.anything.ck");
}

TEST(PublicSuffixTest, CustomRules) {
  PublicSuffixList psl;
  psl.add_rule("test");
  psl.add_rule("sub.test");
  EXPECT_EQ(psl.e2ld("x.sub.test"), "x.sub.test");
  EXPECT_EQ(psl.e2ld("x.y.test"), "y.test");
  EXPECT_TRUE(psl.is_public_suffix("sub.test"));
}

TEST(PublicSuffixTest, IsPublicSuffixExactOnly) {
  const auto& psl = PublicSuffixList::builtin();
  EXPECT_TRUE(psl.is_public_suffix("com"));
  EXPECT_TRUE(psl.is_public_suffix("co.uk"));
  EXPECT_FALSE(psl.is_public_suffix("foo.com"));
}

}  // namespace
}  // namespace stalecert::dns
