#include "stalecert/dns/dane.hpp"

#include <gtest/gtest.h>

namespace stalecert::dns {
namespace {

using util::Date;

x509::Certificate make_cert(const char* key_label, std::uint64_t serial = 1) {
  return x509::CertificateBuilder{}
      .serial(serial)
      .subject_cn("dane.example.com")
      .validity(Date::parse("2022-01-01"), Date::parse("2022-12-31"))
      .key(crypto::KeyPair::derive(key_label, crypto::KeyAlgorithm::kEcdsaP256))
      .add_dns_name("dane.example.com")
      .build();
}

class TlsaParams
    : public ::testing::TestWithParam<std::pair<TlsaSelector, TlsaMatching>> {};

TEST_P(TlsaParams, PinMatchesOnlyTheRightCert) {
  const auto [selector, matching] = GetParam();
  const auto cert = make_cert("owner-key");
  const TlsaRecord record =
      tlsa_for_certificate(cert, TlsaUsage::kDaneEe, selector, matching);
  EXPECT_TRUE(tlsa_matches(record, cert));
  // A different key never matches.
  EXPECT_FALSE(tlsa_matches(record, make_cert("other-key", 2)));
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, TlsaParams,
    ::testing::Values(
        std::make_pair(TlsaSelector::kFullCertificate, TlsaMatching::kExact),
        std::make_pair(TlsaSelector::kFullCertificate, TlsaMatching::kSha256),
        std::make_pair(TlsaSelector::kSubjectPublicKeyInfo, TlsaMatching::kExact),
        std::make_pair(TlsaSelector::kSubjectPublicKeyInfo, TlsaMatching::kSha256)));

TEST(TlsaTest, SpkiSelectorSurvivesReissuanceWithSameKey) {
  // Pinning the SPKI (the common deployment) tolerates certificate renewal
  // under the same key; pinning the full certificate does not.
  const auto original = make_cert("stable-key", 1);
  const auto renewed = make_cert("stable-key", 2);  // new serial, same key
  const auto spki_pin =
      tlsa_for_certificate(original, TlsaUsage::kDaneEe,
                           TlsaSelector::kSubjectPublicKeyInfo, TlsaMatching::kSha256);
  const auto cert_pin =
      tlsa_for_certificate(original, TlsaUsage::kDaneEe,
                           TlsaSelector::kFullCertificate, TlsaMatching::kSha256);
  EXPECT_TRUE(tlsa_matches(spki_pin, renewed));
  EXPECT_FALSE(tlsa_matches(cert_pin, renewed));
}

TEST(DaneRegistryTest, PublicationHistorySemantics) {
  DaneRegistry registry;
  const auto cert_a = make_cert("owner-a");
  const auto cert_b = make_cert("owner-b", 2);
  const auto pin_a = tlsa_for_certificate(cert_a, TlsaUsage::kDaneEe,
                                          TlsaSelector::kSubjectPublicKeyInfo,
                                          TlsaMatching::kSha256);
  const auto pin_b = tlsa_for_certificate(cert_b, TlsaUsage::kDaneEe,
                                          TlsaSelector::kSubjectPublicKeyInfo,
                                          TlsaMatching::kSha256);

  registry.publish("Foo.com", pin_a, Date::parse("2022-01-01"));
  registry.publish("foo.com", pin_b, Date::parse("2022-06-01"));

  EXPECT_EQ(registry.lookup("foo.com", Date::parse("2021-12-31")), std::nullopt);
  EXPECT_EQ(registry.lookup("FOO.com", Date::parse("2022-03-01")), pin_a);
  EXPECT_EQ(registry.lookup("foo.com", Date::parse("2022-06-01")), pin_b);

  registry.remove("foo.com", Date::parse("2022-09-01"));
  EXPECT_EQ(registry.lookup("foo.com", Date::parse("2022-10-01")), std::nullopt);
  EXPECT_EQ(registry.lookup("never.com", Date::parse("2022-10-01")), std::nullopt);
}

TEST(DaneRegistryTest, OwnershipChangeKillsOldBindingWithinTtl) {
  // The paper's §7.2 argument in miniature: when foo.com changes hands,
  // the new owner publishes their own TLSA record; the previous owner's
  // certificate stops validating within one TTL, not within 398 days.
  DaneRegistry registry;
  const auto old_owner_cert = make_cert("old-owner");
  const auto new_owner_cert = make_cert("new-owner", 2);

  registry.publish("foo.com",
                   tlsa_for_certificate(old_owner_cert, TlsaUsage::kDaneEe,
                                        TlsaSelector::kSubjectPublicKeyInfo,
                                        TlsaMatching::kSha256),
                   Date::parse("2022-01-01"));
  const Date change = Date::parse("2022-05-01");
  registry.publish("foo.com",
                   tlsa_for_certificate(new_owner_cert, TlsaUsage::kDaneEe,
                                        TlsaSelector::kSubjectPublicKeyInfo,
                                        TlsaMatching::kSha256),
                   change);

  // After the change, authoritative answers no longer match the old cert.
  const auto record = registry.lookup("foo.com", change + 1);
  ASSERT_TRUE(record.has_value());
  EXPECT_FALSE(tlsa_matches(*record, old_owner_cert));
  EXPECT_TRUE(tlsa_matches(*record, new_owner_cert));
  // Worst-case cache staleness: one TTL, i.e. ~a day at our granularity —
  // versus the months a stale PKI certificate stays valid.
  EXPECT_EQ(DaneRegistry::max_cache_staleness_days(*record), 1);
}

TEST(TlsaUsageTest, Names) {
  EXPECT_EQ(to_string(TlsaUsage::kPkixTa), "PKIX-TA");
  EXPECT_EQ(to_string(TlsaUsage::kDaneEe), "DANE-EE");
}

}  // namespace
}  // namespace stalecert::dns
