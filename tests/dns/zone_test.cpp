#include "stalecert/dns/zone.hpp"

#include <gtest/gtest.h>

namespace stalecert::dns {
namespace {

TEST(DnsDatabaseTest, ZoneMembership) {
  DnsDatabase db;
  db.add_to_zone("com", "foo.com");
  db.add_to_zone("com", "bar.com");
  db.add_to_zone("net", "baz.net");
  EXPECT_EQ(db.zones(), (std::vector<std::string>{"com", "net"}));
  EXPECT_EQ(db.zone_domains("com").size(), 2u);
  EXPECT_EQ(db.all_domains().size(), 3u);
  db.remove_from_zone("com", "bar.com");
  EXPECT_EQ(db.zone_domains("com"), (std::vector<std::string>{"foo.com"}));
}

TEST(DnsDatabaseTest, RecordSettersAndResolve) {
  DnsDatabase db;
  db.add_to_zone("com", "foo.com");
  db.set_ns("foo.com", {"NS1.Host.example", "ns2.host.example"});
  db.set_a("foo.com", {"192.0.2.1"});
  db.set_aaaa("foo.com", {"2001:db8::1"});

  const DomainRecords records = db.resolve("foo.com");
  EXPECT_EQ(records.ns, (std::vector<std::string>{"ns1.host.example",
                                                  "ns2.host.example"}));
  EXPECT_EQ(records.a, (std::vector<std::string>{"192.0.2.1"}));
  EXPECT_EQ(records.aaaa, (std::vector<std::string>{"2001:db8::1"}));
  EXPECT_TRUE(records.cname.empty());
}

TEST(DnsDatabaseTest, CnameChainFollowed) {
  DnsDatabase db;
  db.add_to_zone("com", "foo.com");
  db.set_cname("foo.com", "foo.com.cdn.cloudflare.com");
  db.set_cname("foo.com.cdn.cloudflare.com", "edge.cloudflare.com");
  db.set_a("edge.cloudflare.com", {"198.51.100.1"});

  const DomainRecords records = db.resolve("foo.com");
  EXPECT_EQ(records.cname,
            (std::vector<std::string>{"foo.com.cdn.cloudflare.com",
                                      "edge.cloudflare.com"}));
  EXPECT_EQ(records.a, (std::vector<std::string>{"198.51.100.1"}));
}

TEST(DnsDatabaseTest, CnameLoopTerminates) {
  DnsDatabase db;
  db.set_cname("a.example", "b.example");
  db.set_cname("b.example", "a.example");
  const DomainRecords records = db.resolve("a.example", 8);
  EXPECT_LE(records.cname.size(), 9u);
  EXPECT_TRUE(records.a.empty());
}

TEST(DnsDatabaseTest, ClearRecords) {
  DnsDatabase db;
  db.set_a("gone.example", {"192.0.2.9"});
  db.clear_records("gone.example");
  EXPECT_TRUE(db.resolve("gone.example").empty());
}

TEST(DomainRecordsTest, DelegatesTo) {
  DomainRecords records;
  records.ns = {"amy1.ns.cloudflare.com", "bob2.ns.cloudflare.com"};
  EXPECT_TRUE(records.delegates_to("*.ns.cloudflare.com"));
  EXPECT_FALSE(records.delegates_to("*.cdn.cloudflare.com"));
  records.cname = {"foo.com.cdn.cloudflare.com"};
  EXPECT_TRUE(records.delegates_to("*.cdn.cloudflare.com"));
}

TEST(RecordTypeTest, Names) {
  EXPECT_EQ(to_string(RecordType::kA), "A");
  EXPECT_EQ(to_string(RecordType::kAaaa), "AAAA");
  EXPECT_EQ(to_string(RecordType::kNs), "NS");
  EXPECT_EQ(to_string(RecordType::kCname), "CNAME");
}

}  // namespace
}  // namespace stalecert::dns
