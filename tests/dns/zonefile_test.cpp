#include "stalecert/dns/zonefile.hpp"

#include <gtest/gtest.h>

namespace stalecert::dns {
namespace {

TEST(ZoneFileTest, EmitParseRoundTrip) {
  DnsDatabase db;
  db.add_to_zone("com", "alpha.com");
  db.add_to_zone("com", "beta.com");
  db.set_ns("alpha.com", {"ns1.host.example", "ns2.host.example"});
  db.set_a("alpha.com", {"192.0.2.1"});
  db.set_cname("beta.com", "beta.com.cdn.cloudflare.com");

  const std::string text = emit_zone_file(db, "com");
  EXPECT_NE(text.find("$ORIGIN com."), std::string::npos);

  std::size_t skipped = 0;
  const auto records = parse_zone_file(text, &skipped);
  EXPECT_EQ(skipped, 0u);

  DnsDatabase loaded;
  load_zone(loaded, "com", records);
  EXPECT_EQ(loaded.ns("alpha.com"),
            (std::vector<std::string>{"ns1.host.example", "ns2.host.example"}));
  EXPECT_EQ(loaded.resolve("alpha.com").a, (std::vector<std::string>{"192.0.2.1"}));
  EXPECT_EQ(loaded.cname("beta.com"), "beta.com.cdn.cloudflare.com");
  EXPECT_EQ(loaded.zone_domains("com").size(), 2u);
}

TEST(ZoneFileTest, ParserToleratesNoise) {
  const std::string text =
      "; comment line\n"
      "$ORIGIN com.\n"
      "\n"
      "foo.com. 172800 IN NS ns1.example.\n"
      "bar.com. IN A 192.0.2.5\n"          // no TTL
      "baz.com. 300 AAAA 2001:db8::1\n"    // no IN
      "short.line\n"                        // malformed
      "qux.com. 300 IN TXT \"ignored\"\n"  // unsupported type
      "CASE.COM. 300 IN NS NS9.EXAMPLE.\n";
  std::size_t skipped = 0;
  const auto records = parse_zone_file(text, &skipped);
  EXPECT_EQ(records.size(), 4u);
  EXPECT_EQ(skipped, 2u);

  EXPECT_EQ(records[0].name, "foo.com");
  EXPECT_EQ(records[0].type, RecordType::kNs);
  EXPECT_EQ(records[0].ttl, 172800u);
  EXPECT_EQ(records[1].name, "bar.com");
  EXPECT_EQ(records[1].type, RecordType::kA);
  EXPECT_EQ(records[1].value, "192.0.2.5");
  EXPECT_EQ(records[2].type, RecordType::kAaaa);
  EXPECT_EQ(records[3].name, "case.com");     // lowercased
  EXPECT_EQ(records[3].value, "ns9.example"); // trailing dot stripped
}

TEST(ZoneFileTest, EmptyZone) {
  DnsDatabase db;
  const std::string text = emit_zone_file(db, "net");
  const auto records = parse_zone_file(text);
  EXPECT_TRUE(records.empty());
}

TEST(ZoneFileTest, CnameOwnersOmitDirectAddresses) {
  // A CNAME owner's chased A records must not be emitted at the zone cut.
  DnsDatabase db;
  db.add_to_zone("com", "chained.com");
  db.set_cname("chained.com", "edge.cdn.example");
  db.set_a("edge.cdn.example", {"198.51.100.9"});
  const std::string text = emit_zone_file(db, "com");
  EXPECT_NE(text.find("CNAME edge.cdn.example."), std::string::npos);
  EXPECT_EQ(text.find("198.51.100.9"), std::string::npos);
}

}  // namespace
}  // namespace stalecert::dns
