#include "stalecert/dns/scan.hpp"

#include <gtest/gtest.h>

#include "stalecert/util/error.hpp"

namespace stalecert::dns {
namespace {

using util::Date;

TEST(ScanEngineTest, SnapshotCapturesAllZoneDomains) {
  DnsDatabase db;
  db.add_to_zone("com", "one.com");
  db.add_to_zone("com", "two.com");
  db.set_a("one.com", {"192.0.2.1"});
  db.set_ns("two.com", {"ns1.example"});

  ScanEngine engine(db);
  const DailySnapshot snap = engine.scan(Date::parse("2022-08-01"));
  EXPECT_EQ(snap.date, Date::parse("2022-08-01"));
  EXPECT_EQ(snap.records.size(), 2u);
  ASSERT_NE(snap.find("one.com"), nullptr);
  EXPECT_EQ(snap.find("one.com")->a, (std::vector<std::string>{"192.0.2.1"}));
  EXPECT_EQ(snap.find("missing.com"), nullptr);
}

TEST(ScanEngineTest, DomainsWithoutRecordsOmitted) {
  DnsDatabase db;
  db.add_to_zone("com", "empty.com");
  ScanEngine engine(db);
  const DailySnapshot snap = engine.scan(Date::parse("2022-08-01"));
  EXPECT_TRUE(snap.records.empty());
}

TEST(SnapshotStoreTest, OrderedInsertionEnforced) {
  SnapshotStore store;
  store.add({Date::parse("2022-08-01"), {}});
  store.add({Date::parse("2022-08-02"), {}});
  EXPECT_EQ(store.days(), 2u);
  EXPECT_EQ(store.first_date(), Date::parse("2022-08-01"));
  EXPECT_EQ(store.last_date(), Date::parse("2022-08-02"));
  EXPECT_THROW(store.add({Date::parse("2022-08-02"), {}}), stalecert::LogicError);
  EXPECT_THROW(store.add({Date::parse("2022-07-31"), {}}), stalecert::LogicError);
  EXPECT_THROW((void)store.day(5), stalecert::LogicError);
}

TEST(SnapshotStoreTest, EmptyStore) {
  const SnapshotStore store;
  EXPECT_EQ(store.days(), 0u);
  EXPECT_EQ(store.first_date(), std::nullopt);
  EXPECT_EQ(store.last_date(), std::nullopt);
}

TEST(ScanEngineTest, DayOverDayChangeVisible) {
  DnsDatabase db;
  db.add_to_zone("com", "moving.com");
  db.set_cname("moving.com", "moving.com.cdn.cloudflare.com");
  ScanEngine engine(db);
  SnapshotStore store;
  store.add(engine.scan(Date::parse("2022-08-01")));

  // Customer departs: CNAME replaced by direct hosting.
  db.set_cname("moving.com", std::nullopt);
  db.set_a("moving.com", {"203.0.113.5"});
  store.add(engine.scan(Date::parse("2022-08-02")));

  const auto* day0 = store.day(0).find("moving.com");
  const auto* day1 = store.day(1).find("moving.com");
  ASSERT_NE(day0, nullptr);
  ASSERT_NE(day1, nullptr);
  EXPECT_TRUE(day0->delegates_to("*.cdn.cloudflare.com"));
  EXPECT_FALSE(day1->delegates_to("*.cdn.cloudflare.com"));
}

}  // namespace
}  // namespace stalecert::dns
