#include "stalecert/tls/client.hpp"

#include <gtest/gtest.h>

#include "stalecert/util/hex.hpp"

namespace stalecert::tls {
namespace {

using util::Date;

class TlsClientFixture : public ::testing::Test {
 protected:
  TlsClientFixture()
      : issuer_key_(crypto::KeyPair::derive("issuer", crypto::KeyAlgorithm::kEcdsaP384)),
        responder_(issuer_key_.key_id()) {
    trust_.trust(issuer_key_.key_id());
  }

  x509::Certificate make_cert(bool must_staple = false) {
    x509::CertificateBuilder builder;
    builder.serial(7)
        .issuer({"Test CA", "Test", "US"})
        .subject_cn("site.example.com")
        .validity(Date::parse("2022-01-01"), Date::parse("2022-12-31"))
        .key(crypto::KeyPair::derive("leaf", crypto::KeyAlgorithm::kEcdsaP256))
        .dns_names({"site.example.com", "*.site.example.com"})
        .authority_key_id(issuer_key_.key_id())
        .server_auth_profile()
        .sct_log_ids({1});
    if (must_staple) builder.ocsp_must_staple();
    return builder.build();
  }

  Network network_with_responder(bool reachable = true) {
    Network network;
    network.revocation_reachable = reachable;
    network.responders[util::hex_encode(issuer_key_.key_id())] = &responder_;
    return network;
  }

  void revoke_leaf(const x509::Certificate& cert) {
    revocation::Crl crl({"Test CA", "Test", "US"}, issuer_key_.key_id(),
                        Date::parse("2022-06-01"), Date::parse("2022-06-08"));
    crl.add({cert.serial(), Date::parse("2022-05-15"),
             revocation::ReasonCode::kKeyCompromise});
    responder_.update_from_crl(crl);
  }

  crypto::KeyPair issuer_key_;
  revocation::OcspResponder responder_;
  TrustStore trust_;
};

TEST_F(TlsClientFixture, HappyPath) {
  const TlsClient client(chrome(), trust_);
  const ServerContext server{make_cert(), true, std::nullopt};
  const auto result = client.connect("site.example.com", Date::parse("2022-06-15"),
                                     server, {});
  EXPECT_TRUE(result.accepted) << result.reason;
  EXPECT_EQ(result.reason, "ok");
}

TEST_F(TlsClientFixture, KeyPossessionRequired) {
  const TlsClient client(chrome(), trust_);
  const ServerContext server{make_cert(), /*holds_private_key=*/false, std::nullopt};
  const auto result = client.connect("site.example.com", Date::parse("2022-06-15"),
                                     server, {});
  EXPECT_FALSE(result.accepted);
  EXPECT_NE(result.reason.find("private key"), std::string::npos);
}

TEST_F(TlsClientFixture, NameMismatchRejected) {
  const TlsClient client(chrome(), trust_);
  const ServerContext server{make_cert(), true, std::nullopt};
  EXPECT_FALSE(client.connect("other.example.org", Date::parse("2022-06-15"),
                              server, {})
                   .accepted);
  // One-level wildcard works, deeper does not.
  EXPECT_TRUE(client.connect("api.site.example.com", Date::parse("2022-06-15"),
                             server, {})
                  .accepted);
  EXPECT_FALSE(client.connect("a.b.site.example.com", Date::parse("2022-06-15"),
                              server, {})
                   .accepted);
}

TEST_F(TlsClientFixture, ExpiryEnforced) {
  const TlsClient client(chrome(), trust_);
  const ServerContext server{make_cert(), true, std::nullopt};
  EXPECT_FALSE(client.connect("site.example.com", Date::parse("2023-02-01"),
                              server, {})
                   .accepted);
  EXPECT_FALSE(client.connect("site.example.com", Date::parse("2021-06-15"),
                              server, {})
                   .accepted);
}

TEST_F(TlsClientFixture, UntrustedIssuerRejected) {
  TrustStore empty;
  const TlsClient client(chrome(), empty);
  const ServerContext server{make_cert(), true, std::nullopt};
  const auto result = client.connect("site.example.com", Date::parse("2022-06-15"),
                                     server, {});
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, "issuer not trusted");
}

TEST_F(TlsClientFixture, NoRevocationPolicyAcceptsRevoked) {
  // Chrome/Edge do not check subscriber revocation: a revoked certificate
  // sails through (§2.4).
  const auto cert = make_cert();
  revoke_leaf(cert);
  const TlsClient client(chrome(), trust_);
  const auto result = client.connect("site.example.com", Date::parse("2022-06-15"),
                                     ServerContext{cert, true, std::nullopt},
                                     network_with_responder());
  EXPECT_TRUE(result.accepted);
  EXPECT_FALSE(result.revocation_checked);
}

TEST_F(TlsClientFixture, SoftFailRejectsWhenStatusObtainable) {
  const auto cert = make_cert();
  revoke_leaf(cert);
  const TlsClient client(firefox(), trust_);
  const auto result = client.connect("site.example.com", Date::parse("2022-06-15"),
                                     ServerContext{cert, true, std::nullopt},
                                     network_with_responder());
  EXPECT_FALSE(result.accepted);
  EXPECT_TRUE(result.revocation_checked);
}

TEST_F(TlsClientFixture, SoftFailBypassedWhenRevocationBlocked) {
  // The interception loophole: drop OCSP traffic and soft-fail accepts.
  const auto cert = make_cert();
  revoke_leaf(cert);
  const TlsClient client(firefox(), trust_);
  const auto result = client.connect(
      "site.example.com", Date::parse("2022-06-15"),
      ServerContext{cert, true, std::nullopt},
      network_with_responder(/*reachable=*/false));
  EXPECT_TRUE(result.accepted);
  EXPECT_TRUE(result.revocation_unavailable);
}

TEST_F(TlsClientFixture, HardFailRejectsWhenRevocationBlocked) {
  const auto cert = make_cert();
  const TlsClient client(hardened_client(), trust_);
  const auto result = client.connect(
      "site.example.com", Date::parse("2022-06-15"),
      ServerContext{cert, true, std::nullopt},
      network_with_responder(/*reachable=*/false));
  EXPECT_FALSE(result.accepted);
}

TEST_F(TlsClientFixture, MustStapleClosesTheLoophole) {
  // Firefox + Must-Staple hard-fails without a staple even though its
  // general policy is soft-fail (the paper's footnote 2).
  const auto cert = make_cert(/*must_staple=*/true);
  revoke_leaf(cert);
  const TlsClient ff(firefox(), trust_);
  const auto result = ff.connect("site.example.com", Date::parse("2022-06-15"),
                                 ServerContext{cert, true, std::nullopt},
                                 network_with_responder(/*reachable=*/false));
  EXPECT_FALSE(result.accepted);
  EXPECT_NE(result.reason.find("Must-Staple"), std::string::npos);

  // Safari does not enforce Must-Staple: the bypass still works there.
  const TlsClient saf(safari(), trust_);
  EXPECT_TRUE(saf.connect("site.example.com", Date::parse("2022-06-15"),
                          ServerContext{cert, true, std::nullopt},
                          network_with_responder(false))
                  .accepted);
}

TEST_F(TlsClientFixture, FreshGoodStapleAccepted) {
  const auto cert = make_cert(/*must_staple=*/true);
  revocation::OcspResponse staple;
  staple.status = revocation::CertStatus::kGood;
  staple.this_update = Date::parse("2022-06-14");
  staple.next_update = Date::parse("2022-06-21");
  const TlsClient client(firefox(), trust_);
  const auto result = client.connect("site.example.com", Date::parse("2022-06-15"),
                                     ServerContext{cert, true, staple},
                                     network_with_responder(false));
  EXPECT_TRUE(result.accepted) << result.reason;
  EXPECT_TRUE(result.revocation_checked);
}

TEST_F(TlsClientFixture, RevokedStapleRejected) {
  const auto cert = make_cert();
  revocation::OcspResponse staple;
  staple.status = revocation::CertStatus::kRevoked;
  staple.this_update = Date::parse("2022-06-14");
  staple.next_update = Date::parse("2022-06-21");
  const TlsClient client(safari(), trust_);
  EXPECT_FALSE(client.connect("site.example.com", Date::parse("2022-06-15"),
                              ServerContext{cert, true, staple}, {})
                   .accepted);
}

TEST_F(TlsClientFixture, StaleStapleIgnored) {
  // An expired staple is as good as none: Must-Staple enforcement fails.
  const auto cert = make_cert(/*must_staple=*/true);
  revocation::OcspResponse staple;
  staple.status = revocation::CertStatus::kGood;
  staple.this_update = Date::parse("2022-01-01");
  staple.next_update = Date::parse("2022-01-08");
  const TlsClient client(firefox(), trust_);
  EXPECT_FALSE(client.connect("site.example.com", Date::parse("2022-06-15"),
                              ServerContext{cert, true, staple},
                              network_with_responder(false))
                   .accepted);
}

TEST_F(TlsClientFixture, PrecertificateRejected) {
  x509::CertificateBuilder builder;
  builder.serial(9)
      .subject_cn("site.example.com")
      .validity(Date::parse("2022-01-01"), Date::parse("2022-12-31"))
      .key(crypto::KeyPair::derive("leaf2", crypto::KeyAlgorithm::kEcdsaP256))
      .add_dns_name("site.example.com")
      .authority_key_id(issuer_key_.key_id())
      .precert_poison();
  const TlsClient client(chrome(), trust_);
  EXPECT_FALSE(client.connect("site.example.com", Date::parse("2022-06-15"),
                              ServerContext{builder.build(), true, std::nullopt},
                              {})
                   .accepted);
}

TEST_F(TlsClientFixture, CtPolicyRequiresScts) {
  // A certificate without embedded SCTs: Chrome (CT-required) rejects,
  // curl (no CT policy) accepts.
  x509::CertificateBuilder builder;
  builder.serial(55)
      .subject_cn("noct.example.com")
      .validity(Date::parse("2022-01-01"), Date::parse("2022-12-31"))
      .key(crypto::KeyPair::derive("noct", crypto::KeyAlgorithm::kEcdsaP256))
      .add_dns_name("noct.example.com")
      .authority_key_id(issuer_key_.key_id());
  const ServerContext server{builder.build(), true, std::nullopt};

  const auto chrome_result = TlsClient(chrome(), trust_)
                                 .connect("noct.example.com",
                                          Date::parse("2022-06-15"), server, {});
  EXPECT_FALSE(chrome_result.accepted);
  EXPECT_NE(chrome_result.reason.find("SCT"), std::string::npos);

  EXPECT_TRUE(TlsClient(curl_client(), trust_)
                  .connect("noct.example.com", Date::parse("2022-06-15"), server, {})
                  .accepted);
}

TEST(ClientProfilesTest, PaperCharacterization) {
  // §2.4: Chrome and Edge don't check; Firefox/Safari soft-fail; only
  // Firefox enforces Must-Staple.
  EXPECT_EQ(chrome().revocation, RevocationPolicy::kNone);
  EXPECT_EQ(edge().revocation, RevocationPolicy::kNone);
  EXPECT_EQ(curl_client().revocation, RevocationPolicy::kNone);
  EXPECT_EQ(firefox().revocation, RevocationPolicy::kSoftFail);
  EXPECT_EQ(safari().revocation, RevocationPolicy::kSoftFail);
  EXPECT_TRUE(firefox().enforce_must_staple);
  EXPECT_FALSE(safari().enforce_must_staple);
  EXPECT_EQ(all_profiles().size(), 6u);
}

}  // namespace
}  // namespace stalecert::tls
