#include <gtest/gtest.h>

#include "stalecert/revocation/crlite.hpp"
#include "stalecert/tls/client.hpp"

namespace stalecert::tls {
namespace {

using util::Date;

class CrliteClientFixture : public ::testing::Test {
 protected:
  CrliteClientFixture()
      : issuer_key_(
            crypto::KeyPair::derive("crlite-issuer", crypto::KeyAlgorithm::kEcdsaP384)) {
    trust_.trust(issuer_key_.key_id());
    revoked_cert_ = make_cert(1, "revoked-key");
    valid_cert_ = make_cert(2, "valid-key");
    filter_ = std::make_unique<revocation::CrliteFilter>(
        revocation::CrliteFilter::build(
            {key_of(revoked_cert_)}, {key_of(valid_cert_)}));
  }

  x509::Certificate make_cert(std::uint64_t serial, const char* key_label) {
    return x509::CertificateBuilder{}
        .serial(serial)
        .subject_cn("site.example.com")
        .validity(Date::parse("2022-01-01"), Date::parse("2022-12-31"))
        .key(crypto::KeyPair::derive(key_label, crypto::KeyAlgorithm::kEcdsaP256))
        .add_dns_name("site.example.com")
        .authority_key_id(issuer_key_.key_id())
        .sct_log_ids({1})
        .build();
  }

  static std::string key_of(const x509::Certificate& cert) {
    const auto issuer_serial = cert.issuer_serial();
    return revocation::crlite_key(issuer_serial->authority_key_id,
                                  issuer_serial->serial);
  }

  crypto::KeyPair issuer_key_;
  TrustStore trust_;
  x509::Certificate revoked_cert_;
  x509::Certificate valid_cert_;
  std::unique_ptr<revocation::CrliteFilter> filter_;
};

TEST_F(CrliteClientFixture, LocalFilterRejectsRevokedEvenWithNetworkBlocked) {
  // Chrome normally never checks revocation; with a pushed CRLite filter
  // it rejects the revoked certificate — and no network is involved, so
  // the attacker's traffic dropping is useless.
  TlsClient client(chrome(), trust_);
  client.install_crlite(filter_.get());

  Network hostile;
  hostile.revocation_reachable = false;

  const auto rejected = client.connect("site.example.com",
                                       Date::parse("2022-06-15"),
                                       {revoked_cert_, true, std::nullopt}, hostile);
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.reason, "CRLite: certificate revoked");
  EXPECT_TRUE(rejected.revocation_checked);

  const auto accepted = client.connect("site.example.com",
                                       Date::parse("2022-06-15"),
                                       {valid_cert_, true, std::nullopt}, hostile);
  EXPECT_TRUE(accepted.accepted) << accepted.reason;
}

TEST_F(CrliteClientFixture, WithoutFilterChromeAcceptsRevoked) {
  const TlsClient client(chrome(), trust_);
  const auto result = client.connect("site.example.com", Date::parse("2022-06-15"),
                                     {revoked_cert_, true, std::nullopt}, {});
  EXPECT_TRUE(result.accepted);
}

TEST_F(CrliteClientFixture, FilterChecksPrecedeOcspPolicy) {
  // Even a hard-fail client with no responder reachable gets a definitive
  // local answer for enrolled certificates.
  TlsClient client(hardened_client(), trust_);
  client.install_crlite(filter_.get());
  Network hostile;
  hostile.revocation_reachable = false;
  const auto result = client.connect("site.example.com", Date::parse("2022-06-15"),
                                     {revoked_cert_, true, std::nullopt}, hostile);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, "CRLite: certificate revoked");
}

}  // namespace
}  // namespace stalecert::tls
