#include "stalecert/tls/interception.hpp"

#include <gtest/gtest.h>

namespace stalecert::tls {
namespace {

using util::Date;

class InterceptionFixture : public ::testing::Test {
 protected:
  InterceptionFixture()
      : issuer_key_(crypto::KeyPair::derive("icept-issuer",
                                            crypto::KeyAlgorithm::kEcdsaP384)),
        responder_(issuer_key_.key_id()) {
    trust_.trust(issuer_key_.key_id());
  }

  x509::Certificate stale_cert(bool must_staple = false) {
    x509::CertificateBuilder builder;
    builder.serial(21)
        .issuer({"Victim CA", "V", "US"})
        .subject_cn("victim.com")
        .validity(Date::parse("2022-01-01"), Date::parse("2022-12-31"))
        .key(crypto::KeyPair::derive("stale-key", crypto::KeyAlgorithm::kEcdsaP256))
        .dns_names({"victim.com", "www.victim.com"})
        .authority_key_id(issuer_key_.key_id())
        .sct_log_ids({1});
    if (must_staple) builder.ocsp_must_staple();
    return builder.build();
  }

  void revoke(const x509::Certificate& cert) {
    revocation::Crl crl({"Victim CA", "V", "US"}, issuer_key_.key_id(),
                        Date::parse("2022-05-01"), Date::parse("2022-05-08"));
    crl.add({cert.serial(), Date::parse("2022-04-20"),
             revocation::ReasonCode::kKeyCompromise});
    responder_.update_from_crl(crl);
  }

  static const InterceptionOutcome& outcome_for(
      const std::vector<InterceptionOutcome>& outcomes, const std::string& client) {
    for (const auto& outcome : outcomes) {
      if (outcome.client == client) return outcome;
    }
    throw std::runtime_error("missing client " + client);
  }

  crypto::KeyPair issuer_key_;
  revocation::OcspResponder responder_;
  TrustStore trust_;
};

TEST_F(InterceptionFixture, UnrevokedStaleCertInterceptsEveryone) {
  // Registrant change / managed TLS departure without revocation: every
  // client accepts — CT cannot help, revocation was never published.
  InterceptionScenario scenario;
  scenario.description = "registrant change, no revocation";
  scenario.hostname = "victim.com";
  scenario.stale_certificate = stale_cert();
  scenario.when = Date::parse("2022-06-15");
  scenario.responder = &responder_;

  const auto outcomes = run_interception(scenario, all_profiles(), trust_);
  for (const auto& outcome : outcomes) {
    if (outcome.client == "hardened") continue;  // hard-fail needs a status
    EXPECT_TRUE(outcome.intercepted) << outcome.client << ": " << outcome.reason;
  }
}

TEST_F(InterceptionFixture, RevokedCertWithBlockedRevocationStillIntercepts) {
  // Key compromise + revocation published, but the on-path attacker drops
  // revocation traffic: only hard-fail clients resist (§2.4).
  const auto cert = stale_cert();
  revoke(cert);
  InterceptionScenario scenario;
  scenario.description = "key compromise, revocation blocked";
  scenario.hostname = "victim.com";
  scenario.stale_certificate = cert;
  scenario.when = Date::parse("2022-06-15");
  scenario.attacker_blocks_revocation = true;
  scenario.responder = &responder_;

  const auto outcomes = run_interception(scenario, all_profiles(), trust_);
  EXPECT_TRUE(outcome_for(outcomes, "Chrome").intercepted);
  EXPECT_TRUE(outcome_for(outcomes, "Edge").intercepted);
  EXPECT_TRUE(outcome_for(outcomes, "Firefox").intercepted);  // soft-fail bypass
  EXPECT_TRUE(outcome_for(outcomes, "Safari").intercepted);
  EXPECT_TRUE(outcome_for(outcomes, "curl").intercepted);
  EXPECT_FALSE(outcome_for(outcomes, "hardened").intercepted);
}

TEST_F(InterceptionFixture, RevokedCertWithReachableRevocation) {
  // If the attacker cannot block revocation, checking clients reject.
  const auto cert = stale_cert();
  revoke(cert);
  InterceptionScenario scenario;
  scenario.description = "key compromise, revocation reachable";
  scenario.hostname = "victim.com";
  scenario.stale_certificate = cert;
  scenario.when = Date::parse("2022-06-15");
  scenario.attacker_blocks_revocation = false;
  scenario.responder = &responder_;

  const auto outcomes = run_interception(scenario, all_profiles(), trust_);
  EXPECT_TRUE(outcome_for(outcomes, "Chrome").intercepted);   // never checks
  EXPECT_FALSE(outcome_for(outcomes, "Firefox").intercepted); // checks, sees revoked
  EXPECT_FALSE(outcome_for(outcomes, "Safari").intercepted);
  EXPECT_FALSE(outcome_for(outcomes, "hardened").intercepted);
}

TEST_F(InterceptionFixture, MustStapleProtectsFirefoxOnly) {
  const auto cert = stale_cert(/*must_staple=*/true);
  revoke(cert);
  InterceptionScenario scenario;
  scenario.description = "must-staple cert, revocation blocked";
  scenario.hostname = "victim.com";
  scenario.stale_certificate = cert;
  scenario.when = Date::parse("2022-06-15");
  scenario.responder = &responder_;

  const auto outcomes = run_interception(scenario, all_profiles(), trust_);
  EXPECT_FALSE(outcome_for(outcomes, "Firefox").intercepted);  // hard-fails
  EXPECT_TRUE(outcome_for(outcomes, "Safari").intercepted);    // no enforcement
  EXPECT_TRUE(outcome_for(outcomes, "Chrome").intercepted);
}

TEST_F(InterceptionFixture, WithoutKeyNobodyIsIntercepted) {
  // A party that merely SEES the certificate (e.g. from CT) cannot
  // intercept — key custody is everything.
  InterceptionScenario scenario;
  scenario.description = "no key";
  scenario.hostname = "victim.com";
  scenario.stale_certificate = stale_cert();
  scenario.when = Date::parse("2022-06-15");
  scenario.attacker_holds_key = false;

  for (const auto& outcome : run_interception(scenario, all_profiles(), trust_)) {
    EXPECT_FALSE(outcome.intercepted) << outcome.client;
  }
}

TEST_F(InterceptionFixture, ExpiredStaleCertFails) {
  // Expiration is "the final backstop": after notAfter nothing accepts.
  InterceptionScenario scenario;
  scenario.description = "expired";
  scenario.hostname = "victim.com";
  scenario.stale_certificate = stale_cert();
  scenario.when = Date::parse("2023-03-01");

  for (const auto& outcome : run_interception(scenario, all_profiles(), trust_)) {
    EXPECT_FALSE(outcome.intercepted) << outcome.client;
  }
}

}  // namespace
}  // namespace stalecert::tls
