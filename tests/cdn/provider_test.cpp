#include "stalecert/cdn/provider.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "stalecert/util/error.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::cdn {
namespace {

using util::Date;

class ProviderFixture : public ::testing::Test {
 protected:
  ProviderFixture()
      : pack_ca_({.name = "COMODO ECC DV Secure Server CA 2",
                  .organization = "COMODO",
                  .default_days = 365},
                 1),
        direct_ca_({.name = "CloudFlare ECC CA-2",
                    .organization = "Cloudflare",
                    .default_days = 365},
                   2) {}

  ManagedTlsProvider make_provider(std::size_t capacity = 3,
                                   std::optional<Date> switch_date = std::nullopt) {
    ProviderConfig config;
    config.name = "Cloudflare";
    config.ns_suffix = "ns.cloudflare.com";
    config.cname_suffix = "cdn.cloudflare.com";
    config.managed_san_pattern = "sni*.cloudflaressl.com";
    config.cruiseliner_capacity = capacity;
    config.per_domain_switch = switch_date;
    config.actor = 999;
    return ManagedTlsProvider(config, &pack_ca_, &direct_ca_, &dns_, 7);
  }

  ca::CertificateAuthority pack_ca_;
  ca::CertificateAuthority direct_ca_;
  dns::DnsDatabase dns_;
};

TEST_F(ProviderFixture, EnrollSetsDelegationAndIssuesCruiseliner) {
  auto provider = make_provider();
  const auto issued =
      provider.enroll("cust1.com", DelegationKind::kCname, Date::parse("2018-03-01"));
  ASSERT_EQ(issued.size(), 1u);
  const auto& cert = issued[0];

  // SAN carries the sni marker plus customer domain + wildcard.
  const auto names = cert.dns_names();
  EXPECT_TRUE(std::any_of(names.begin(), names.end(), [](const auto& n) {
    return util::wildcard_match("sni*.cloudflaressl.com", n);
  }));
  EXPECT_TRUE(cert.matches_domain("cust1.com"));
  EXPECT_TRUE(cert.matches_domain("www.cust1.com"));
  EXPECT_EQ(cert.issuer().common_name, "COMODO ECC DV Secure Server CA 2");

  // Delegation visible in DNS.
  const auto records = dns_.resolve("cust1.com");
  EXPECT_TRUE(records.delegates_to("*.cdn.cloudflare.com"));
  EXPECT_TRUE(provider.is_enrolled("cust1.com"));
  EXPECT_TRUE(provider.holds_key(cert));
}

TEST_F(ProviderFixture, NsDelegationUsesProviderNameservers) {
  auto provider = make_provider();
  provider.enroll("cust2.com", DelegationKind::kNs, Date::parse("2018-03-01"));
  const auto records = dns_.resolve("cust2.com");
  EXPECT_TRUE(records.delegates_to("*.ns.cloudflare.com"));
  EXPECT_TRUE(records.cname.empty());
}

TEST_F(ProviderFixture, CruiselinerPacksUpToCapacity) {
  auto provider = make_provider(3);
  provider.enroll("a.com", DelegationKind::kCname, Date::parse("2018-01-01"));
  provider.enroll("b.com", DelegationKind::kCname, Date::parse("2018-01-02"));
  const auto third =
      provider.enroll("c.com", DelegationKind::kCname, Date::parse("2018-01-03"));
  // Three customers share one shell: the third issuance covers all three.
  EXPECT_TRUE(third[0].matches_domain("a.com"));
  EXPECT_TRUE(third[0].matches_domain("b.com"));
  EXPECT_TRUE(third[0].matches_domain("c.com"));

  // Capacity exceeded -> a second shell with a different key.
  const auto fourth =
      provider.enroll("d.com", DelegationKind::kCname, Date::parse("2018-01-04"));
  EXPECT_FALSE(fourth[0].matches_domain("a.com"));
  EXPECT_FALSE(fourth[0].subject_key() == third[0].subject_key());
}

TEST_F(ProviderFixture, DepartureReissuesWithoutDomainButKeepsKeys) {
  auto provider = make_provider(3);
  provider.enroll("a.com", DelegationKind::kCname, Date::parse("2018-01-01"));
  const auto before =
      provider.enroll("b.com", DelegationKind::kCname, Date::parse("2018-01-02"));
  ASSERT_TRUE(before[0].matches_domain("a.com"));

  const auto after = provider.depart("a.com", Date::parse("2018-06-01"));
  ASSERT_EQ(after.size(), 1u);
  EXPECT_FALSE(after[0].matches_domain("a.com"));
  EXPECT_TRUE(after[0].matches_domain("b.com"));
  EXPECT_FALSE(provider.is_enrolled("a.com"));

  // DNS now points at new infrastructure.
  EXPECT_FALSE(dns_.resolve("a.com").delegates_to("*.cdn.cloudflare.com"));
  // The provider still holds the key of the OLD certificate covering a.com.
  EXPECT_TRUE(provider.holds_key(before[0]));
  // Enrollment history records the span.
  const auto& history = provider.enrollment_history();
  const auto it = std::find_if(history.begin(), history.end(),
                               [](const auto& e) { return e.domain == "a.com"; });
  ASSERT_NE(it, history.end());
  EXPECT_EQ(it->start, Date::parse("2018-01-01"));
  EXPECT_EQ(it->end, Date::parse("2018-06-01"));
}

TEST_F(ProviderFixture, DepartUnknownThrows) {
  auto provider = make_provider();
  EXPECT_THROW(provider.depart("never.com", Date::parse("2020-01-01")),
               stalecert::LogicError);
}

TEST_F(ProviderFixture, DoubleEnrollThrows) {
  auto provider = make_provider();
  provider.enroll("a.com", DelegationKind::kCname, Date::parse("2020-01-01"));
  EXPECT_THROW(provider.enroll("a.com", DelegationKind::kNs, Date::parse("2020-02-01")),
               stalecert::LogicError);
}

TEST_F(ProviderFixture, PerDomainModeAfterSwitch) {
  auto provider = make_provider(3, Date::parse("2019-07-01"));
  const auto before =
      provider.enroll("old.com", DelegationKind::kCname, Date::parse("2019-01-01"));
  EXPECT_EQ(before[0].issuer().common_name, "COMODO ECC DV Secure Server CA 2");

  const auto after =
      provider.enroll("new.com", DelegationKind::kCname, Date::parse("2019-08-01"));
  EXPECT_EQ(after[0].issuer().common_name, "CloudFlare ECC CA-2");
  EXPECT_TRUE(after[0].matches_domain("new.com"));
  EXPECT_FALSE(after[0].matches_domain("old.com"));  // no packing
}

TEST_F(ProviderFixture, RenewExpiringReissues) {
  auto provider = make_provider(3);
  const auto issued =
      provider.enroll("a.com", DelegationKind::kCname, Date::parse("2018-01-01"));
  const Date expiry = issued[0].not_after();
  EXPECT_TRUE(provider.renew_expiring(expiry - 60, 30).empty());
  const auto renewed = provider.renew_expiring(expiry - 10, 30);
  ASSERT_EQ(renewed.size(), 1u);
  EXPECT_GT(renewed[0].not_after(), expiry);
}

TEST_F(ProviderFixture, CustodyLedgerGrowsMonotonically) {
  auto provider = make_provider(2);
  provider.enroll("a.com", DelegationKind::kCname, Date::parse("2018-01-01"));
  const std::size_t after_one = provider.custody_ledger().size();
  provider.enroll("b.com", DelegationKind::kCname, Date::parse("2018-01-02"));
  const std::size_t after_two = provider.custody_ledger().size();
  EXPECT_GT(after_two, after_one);
  provider.depart("a.com", Date::parse("2018-02-01"));
  EXPECT_GE(provider.custody_ledger().size(), after_two);  // never shrinks
}

TEST_F(ProviderFixture, AssignedNameserversAreDeterministic) {
  auto provider = make_provider();
  const auto a = provider.assigned_nameservers("x.com");
  const auto b = provider.assigned_nameservers("x.com");
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_TRUE(util::wildcard_match("*.ns.cloudflare.com", a[0]));
}

TEST_F(ProviderFixture, KeylessSslRetainsNoKeys) {
  ProviderConfig config;
  config.name = "Cloudflare";
  config.ns_suffix = "ns.cloudflare.com";
  config.cname_suffix = "cdn.cloudflare.com";
  config.managed_san_pattern = "sni*.cloudflaressl.com";
  config.cruiseliner_capacity = 4;
  config.actor = 999;
  config.keyless_ssl = true;
  ManagedTlsProvider provider(config, &pack_ca_, &direct_ca_, &dns_, 7);

  const auto issued =
      provider.enroll("k.com", DelegationKind::kCname, Date::parse("2022-01-01"));
  ASSERT_EQ(issued.size(), 1u);
  // Certificates exist and still carry the managed SAN marker (so a
  // CT-based detector still flags departures)...
  EXPECT_TRUE(issued[0].matches_domain("k.com"));
  // ...but the provider never holds the private key.
  EXPECT_TRUE(provider.custody_ledger().empty());
  EXPECT_FALSE(provider.holds_key(issued[0]));

  provider.depart("k.com", Date::parse("2022-06-01"));
  EXPECT_TRUE(provider.custody_ledger().empty());
}

TEST(DelegationKindTest, Names) {
  EXPECT_EQ(to_string(DelegationKind::kCname), "CNAME");
  EXPECT_EQ(to_string(DelegationKind::kNs), "NS");
}

}  // namespace
}  // namespace stalecert::cdn
