#include "stalecert/popularity/toplist.hpp"

#include <gtest/gtest.h>

#include "stalecert/util/error.hpp"

namespace stalecert::popularity {
namespace {

using util::Date;

TEST(TopListArchiveTest, MinRankAcrossSamples) {
  TopListArchive archive;
  archive.add_sample({Date::parse("2020-01-01"), {"a.com", "b.com", "c.com"}});
  archive.add_sample({Date::parse("2020-07-01"), {"b.com", "a.com", "d.com"}});

  EXPECT_EQ(archive.min_rank("a.com"), 1u);
  EXPECT_EQ(archive.min_rank("b.com"), 1u);
  EXPECT_EQ(archive.min_rank("c.com"), 3u);
  EXPECT_EQ(archive.min_rank("d.com"), 3u);
  EXPECT_EQ(archive.min_rank("absent.com"), std::nullopt);
  EXPECT_EQ(archive.min_rank("A.COM"), 1u);  // case-insensitive
  EXPECT_EQ(archive.sample_count(), 2u);
}

TEST(TopListArchiveTest, BucketCounts) {
  TopListArchive archive;
  std::vector<std::string> ranked;
  for (int i = 0; i < 100; ++i) ranked.push_back("d" + std::to_string(i) + ".com");
  archive.add_sample({Date::parse("2020-01-01"), ranked});

  const std::vector<std::string> probe = {"d0.com", "d5.com", "d50.com",
                                          "unknown.com"};
  const auto buckets = archive.bucket_counts(probe, {10, 100});
  EXPECT_EQ(buckets.at(10), 2u);   // d0 (rank 1), d5 (rank 6)
  EXPECT_EQ(buckets.at(100), 3u);  // + d50 (rank 51)
}

TEST(GenerateBiannualTest, SampleCadenceAndSize) {
  util::Rng rng(3);
  std::vector<std::string> universe;
  for (int i = 0; i < 500; ++i) universe.push_back("u" + std::to_string(i) + ".com");

  const TopListArchive archive = generate_biannual_archive(
      universe, Date::parse("2014-01-01"), Date::parse("2022-01-01"), 100, rng);

  // Biannual over 8 years -> 17 samples (inclusive endpoints).
  EXPECT_EQ(archive.sample_count(), 17u);
  for (const auto& sample : archive.samples()) {
    EXPECT_EQ(sample.ranked_e2lds.size(), 100u);
  }
}

TEST(GenerateBiannualTest, ChurnBetweenSamples) {
  util::Rng rng(5);
  std::vector<std::string> universe;
  for (int i = 0; i < 1000; ++i) universe.push_back("u" + std::to_string(i) + ".com");
  const TopListArchive archive = generate_biannual_archive(
      universe, Date::parse("2018-01-01"), Date::parse("2022-01-01"), 200, rng);

  // The top list must not be identical between consecutive samples.
  const auto& first = archive.samples().front().ranked_e2lds;
  const auto& last = archive.samples().back().ranked_e2lds;
  EXPECT_NE(first, last);
}

TEST(GenerateBiannualTest, ListSizeClampedToUniverse) {
  util::Rng rng(7);
  const std::vector<std::string> universe = {"only.com"};
  const TopListArchive archive = generate_biannual_archive(
      universe, Date::parse("2020-01-01"), Date::parse("2020-06-01"), 100, rng);
  EXPECT_EQ(archive.samples().front().ranked_e2lds.size(), 1u);
}

TEST(GenerateBiannualTest, EmptyUniverseRejected) {
  util::Rng rng(9);
  EXPECT_THROW(generate_biannual_archive({}, Date::parse("2020-01-01"),
                                         Date::parse("2021-01-01"), 10, rng),
               stalecert::LogicError);
}

}  // namespace
}  // namespace stalecert::popularity
