#include "stalecert/whois/record.hpp"

#include <gtest/gtest.h>

#include "stalecert/util/error.hpp"

namespace stalecert::whois {
namespace {

using util::Date;

ThinRecord sample() {
  ThinRecord record;
  record.domain = "foo.com";
  record.registrar = "Example Registrar LLC";
  record.creation_date = Date::parse("2019-05-20");
  record.updated_date = Date::parse("2021-02-14");
  record.expiration_date = Date::parse("2022-05-20");
  record.name_servers = {"ns1.host.example", "ns2.host.example"};
  record.status = {"clientTransferProhibited"};
  record.registrant_name = "Jane Doe";
  return record;
}

class FormatRoundTrip : public ::testing::TestWithParam<TextFormat> {};

TEST_P(FormatRoundTrip, EmitThenParseRecoversRegistryFields) {
  const ThinRecord original = sample();
  const std::string text = emit_text(original, GetParam(), /*gdpr_redacted=*/true);
  const ThinRecord parsed = parse_text(text);
  EXPECT_EQ(parsed.domain, original.domain);
  EXPECT_EQ(parsed.registrar, original.registrar);
  EXPECT_EQ(parsed.creation_date, original.creation_date);
  EXPECT_EQ(parsed.expiration_date, original.expiration_date);
  EXPECT_EQ(parsed.name_servers, original.name_servers);
  // GDPR redaction removes the registrant.
  EXPECT_FALSE(parsed.registrant_name.has_value());
}

INSTANTIATE_TEST_SUITE_P(Formats, FormatRoundTrip,
                         ::testing::Values(TextFormat::kVerisign,
                                           TextFormat::kLegacyKv,
                                           TextFormat::kDense));

TEST(WhoisTextTest, UnredactedRegistrantSurvives) {
  const std::string text =
      emit_text(sample(), TextFormat::kVerisign, /*gdpr_redacted=*/false);
  const ThinRecord parsed = parse_text(text);
  EXPECT_EQ(parsed.registrant_name, "Jane Doe");
}

TEST(WhoisTextTest, ParserToleratesNoiseAndOrdering) {
  const std::string text =
      "% NOTICE: access limited\n"
      "\n"
      "Registrar:Some Registrar\n"
      "creation date: 2018-03-02T11:22:33Z\n"
      "Domain Name: MIXED.COM\n"
      "unknown-field: whatever\n"
      "expires: 2020-03-02\n";
  const ThinRecord parsed = parse_text(text);
  EXPECT_EQ(parsed.domain, "mixed.com");
  EXPECT_EQ(parsed.creation_date, Date::parse("2018-03-02"));
  EXPECT_EQ(parsed.expiration_date, Date::parse("2020-03-02"));
}

TEST(WhoisTextTest, MissingDomainThrows) {
  EXPECT_THROW(parse_text("Creation Date: 2020-01-01\n"), stalecert::ParseError);
}

TEST(WhoisTextTest, MissingCreationDateThrows) {
  EXPECT_THROW(parse_text("Domain Name: foo.com\n"), stalecert::ParseError);
}

TEST(WhoisTextTest, MissingExpiryDefaultsToOneYear) {
  const ThinRecord parsed = parse_text(
      "Domain Name: foo.com\nCreation Date: 2020-01-01\n");
  EXPECT_EQ(parsed.expiration_date, Date::parse("2020-12-31"));
}

TEST(WhoisTextTest, VerisignFormatUppercasesDomain) {
  const std::string text = emit_text(sample(), TextFormat::kVerisign);
  EXPECT_NE(text.find("Domain Name: FOO.COM"), std::string::npos);
  EXPECT_NE(text.find(">>> Last update"), std::string::npos);
}

}  // namespace
}  // namespace stalecert::whois
