#include "stalecert/whois/database.hpp"

#include <gtest/gtest.h>

namespace stalecert::whois {
namespace {

using util::Date;

ThinRecord record_for(const std::string& domain, const char* created) {
  ThinRecord record;
  record.domain = domain;
  record.registrar = "R";
  record.creation_date = Date::parse(created);
  record.updated_date = record.creation_date;
  record.expiration_date = record.creation_date + 365;
  return record;
}

TEST(WhoisDatabaseTest, TldScopeFilter) {
  WhoisDatabase db({"com", "net"});
  EXPECT_TRUE(db.ingest(record_for("a.com", "2019-01-01")));
  EXPECT_TRUE(db.ingest(record_for("b.net", "2019-01-01")));
  EXPECT_FALSE(db.ingest(record_for("c.org", "2019-01-01")));
  EXPECT_EQ(db.domain_count(), 2u);
  EXPECT_EQ(db.record_count(), 2u);
}

TEST(WhoisDatabaseTest, EmptyScopeAcceptsEverything) {
  WhoisDatabase db(std::vector<std::string>{});
  EXPECT_TRUE(db.ingest(record_for("c.org", "2019-01-01")));
}

TEST(WhoisDatabaseTest, CreationDateHistoryDeduplicated) {
  WhoisDatabase db;
  db.ingest(record_for("a.com", "2019-01-01"));
  db.ingest(record_for("a.com", "2019-01-01"));  // repeated observation
  db.ingest(record_for("a.com", "2021-06-15"));  // re-registration
  EXPECT_EQ(db.creation_dates("a.com"),
            (std::vector<Date>{Date::parse("2019-01-01"),
                               Date::parse("2021-06-15")}));
}

TEST(WhoisDatabaseTest, ReRegistrationsRequirePriorObservation) {
  WhoisDatabase db;
  db.ingest(record_for("fresh.com", "2020-01-01"));
  db.ingest(record_for("rereg.com", "2018-01-01"));
  db.ingest(record_for("rereg.com", "2020-05-05"));

  const auto all = db.new_registrations();
  EXPECT_EQ(all.size(), 3u);

  const auto reregs = db.re_registrations();
  ASSERT_EQ(reregs.size(), 1u);
  EXPECT_EQ(reregs[0].domain, "rereg.com");
  EXPECT_EQ(reregs[0].creation_date, Date::parse("2020-05-05"));
  EXPECT_EQ(reregs[0].previous_creation_date, Date::parse("2018-01-01"));
}

TEST(WhoisDatabaseTest, IngestTextCountsMalformed) {
  WhoisDatabase db;
  EXPECT_TRUE(db.ingest_text(emit_text(record_for("t.com", "2020-02-02"),
                                       TextFormat::kLegacyKv)));
  EXPECT_FALSE(db.ingest_text("total garbage, no fields"));
  EXPECT_EQ(db.malformed_count(), 1u);
  EXPECT_EQ(db.record_count(), 1u);
}

TEST(WhoisDatabaseTest, OutOfOrderObservationsStillSorted) {
  WhoisDatabase db;
  db.ingest(record_for("o.com", "2021-01-01"));
  db.ingest(record_for("o.com", "2017-01-01"));  // older snapshot arrives late
  const auto dates = db.creation_dates("o.com");
  ASSERT_EQ(dates.size(), 2u);
  EXPECT_LT(dates[0], dates[1]);
}

TEST(WhoisDatabaseTest, CaseInsensitiveDomains) {
  WhoisDatabase db;
  db.ingest(record_for("CASE.com", "2020-01-01"));
  EXPECT_EQ(db.creation_dates("case.COM").size(), 1u);
}

}  // namespace
}  // namespace stalecert::whois
