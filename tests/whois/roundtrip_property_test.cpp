// Property sweep: randomized WHOIS records, all text formats, with and
// without GDPR redaction — registry fields must always survive the
// emit/parse round trip (the collection pipeline's core guarantee).
#include <gtest/gtest.h>

#include "stalecert/util/rng.hpp"
#include "stalecert/whois/record.hpp"

namespace stalecert::whois {
namespace {

using util::Date;

ThinRecord random_record(util::Rng& rng) {
  ThinRecord record;
  record.domain = rng.alpha_label(3 + rng.below(10)) + "." +
                  (rng.chance(0.5) ? "com" : "net");
  record.registrar = "Registrar " + rng.alpha_label(5);
  record.creation_date = Date::parse("2010-01-01") + rng.between(0, 4000);
  record.updated_date = record.creation_date + rng.between(0, 300);
  record.expiration_date = record.creation_date + rng.between(365, 3650);
  const std::uint64_t ns = rng.below(4);
  for (std::uint64_t i = 0; i < ns; ++i) {
    record.name_servers.push_back("ns" + std::to_string(i + 1) + "." +
                                  rng.alpha_label(6) + ".example");
  }
  if (rng.chance(0.6)) record.status.push_back("clientTransferProhibited");
  if (rng.chance(0.2)) record.status.push_back("serverDeleteProhibited");
  if (rng.chance(0.5)) record.registrant_name = "Person " + rng.alpha_label(4);
  return record;
}

struct Case {
  std::uint64_t seed;
  TextFormat format;
  bool redacted;
};

class WhoisPropertySweep : public ::testing::TestWithParam<Case> {};

TEST_P(WhoisPropertySweep, RegistryFieldsSurvive) {
  const Case& c = GetParam();
  util::Rng rng(c.seed);
  for (int i = 0; i < 40; ++i) {
    const ThinRecord original = random_record(rng);
    const std::string text = emit_text(original, c.format, c.redacted);
    const ThinRecord parsed = parse_text(text);

    ASSERT_EQ(parsed.domain, original.domain);
    ASSERT_EQ(parsed.registrar, original.registrar);
    ASSERT_EQ(parsed.creation_date, original.creation_date);
    ASSERT_EQ(parsed.updated_date, original.updated_date);
    ASSERT_EQ(parsed.expiration_date, original.expiration_date);
    ASSERT_EQ(parsed.name_servers, original.name_servers);
    ASSERT_EQ(parsed.status, original.status);
    if (c.redacted) {
      ASSERT_FALSE(parsed.registrant_name.has_value());
    } else {
      ASSERT_EQ(parsed.registrant_name.has_value(),
                original.registrant_name.has_value());
    }
  }
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  std::uint64_t seed = 1;
  for (const auto format :
       {TextFormat::kVerisign, TextFormat::kLegacyKv, TextFormat::kDense}) {
    for (const bool redacted : {true, false}) {
      cases.push_back({seed++, format, redacted});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllFormats, WhoisPropertySweep,
                         ::testing::ValuesIn(all_cases()));

}  // namespace
}  // namespace stalecert::whois
