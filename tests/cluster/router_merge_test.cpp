// The router's pure merge helpers, pinned against hand-written shard
// bodies in the exact shapes StaledService renders (see handle_summary /
// handle_key / handle_revocation in src/query/src/service.cpp). The
// live-socket equivalence of merged vs. single-node bodies is
// cluster_differential_test.cpp; this file covers the corner cases a
// healthy cluster never produces.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "stalecert/cluster/router.hpp"

namespace stalecert::cluster {
namespace {

TEST(SplitJsonArrayTest, SplitsAtDepthZeroOnly) {
  const auto elements = split_json_array(
      R"({"a":1,"b":[1,2]},{"c":"x,y"},{"d":{"e":3,"f":4}})");
  ASSERT_EQ(elements.size(), 3u);
  EXPECT_EQ(elements[0], R"({"a":1,"b":[1,2]})");
  EXPECT_EQ(elements[1], R"({"c":"x,y"})");
  EXPECT_EQ(elements[2], R"({"d":{"e":3,"f":4}})");
}

TEST(SplitJsonArrayTest, HandlesEscapedQuotesAndEmptyInput) {
  const auto elements = split_json_array(R"({"a":"he said \"1,2\""},{"b":2})");
  ASSERT_EQ(elements.size(), 2u);
  EXPECT_EQ(elements[0], R"({"a":"he said \"1,2\""})");
  EXPECT_TRUE(split_json_array("").empty());
}

TEST(ExtractJsonUintTest, ReadsIntegerAfterKey) {
  EXPECT_EQ(extract_json_uint(R"({"generation":42,"x":7})", "generation"), 42u);
  EXPECT_EQ(extract_json_uint(R"({"x":{"generation":0}})", "generation"), 0u);
  EXPECT_FALSE(extract_json_uint(R"({"gen":42})", "generation").has_value());
  // Non-numeric value after the key is absent, not zero.
  EXPECT_FALSE(extract_json_uint(R"({"generation":"42"})", "generation")
                   .has_value());
}

// A shard /v1/summary body exactly as handle_summary renders it for a
// sharded node (owned-slice counts, shard-tagged profile).
std::string shard_summary(unsigned shard, unsigned count,
                          std::uint64_t generation, std::uint64_t certs,
                          std::uint64_t stale, std::uint64_t key_compromise,
                          std::uint64_t registrant, std::uint64_t departure,
                          std::uint64_t keys, std::uint64_t serials) {
  return "{\"profile\":\"small#shard-" + std::to_string(shard) + "/" +
         std::to_string(count) +
         "\",\"seed\":7,\"window\":{\"start\":\"2024-01-01\",\"end\":"
         "\"2024-03-01\"},\"generation\":" +
         std::to_string(generation) +
         ",\"certificates\":" + std::to_string(certs) +
         ",\"stale_records\":" + std::to_string(stale) +
         ",\"by_class\":{\"key_compromise\":" + std::to_string(key_compromise) +
         ",\"registrant_change\":" + std::to_string(registrant) +
         ",\"managed_departure\":" + std::to_string(departure) +
         "},\"distinct_keys\":" + std::to_string(keys) +
         ",\"revoked_serials\":" + std::to_string(serials) + "}\n";
}

TEST(MergeSummaryTest, SumsCountsStripsShardTagTakesMinGeneration) {
  const std::vector<std::string> bodies = {
      shard_summary(0, 2, 5, 100, 10, 4, 3, 3, 40, 7),
      shard_summary(1, 2, 3, 50, 6, 2, 2, 2, 21, 5),
  };
  const std::string merged = merge_summary_bodies(bodies, {});
  EXPECT_EQ(merged,
            "{\"profile\":\"small\",\"seed\":7,\"window\":{\"start\":"
            "\"2024-01-01\",\"end\":\"2024-03-01\"},\"generation\":3,"
            "\"certificates\":150,\"stale_records\":16,\"by_class\":{"
            "\"key_compromise\":6,\"registrant_change\":5,"
            "\"managed_departure\":5},\"distinct_keys\":61,"
            "\"revoked_serials\":12}\n");
}

TEST(MergeSummaryTest, MissingShardsAppendPartialFlag) {
  const std::vector<std::string> bodies = {
      shard_summary(0, 4, 1, 10, 1, 1, 0, 0, 5, 2),
      shard_summary(3, 4, 1, 20, 2, 0, 1, 1, 9, 4),
  };
  const std::string merged = merge_summary_bodies(bodies, {1, 2});
  EXPECT_NE(merged.find("\"certificates\":30"), std::string::npos);
  EXPECT_NE(merged.find("\"partial\":true,\"shards_missing\":[1,2]"),
            std::string::npos);
  EXPECT_EQ(merged.back(), '\n');
  // A complete gather never mentions partiality.
  EXPECT_EQ(merge_summary_bodies(bodies, {}).find("partial"),
            std::string::npos);
}

TEST(MergeKeyTest, UnionsSortsAndDeduplicatesCertificates) {
  // The certificate objects are pre-rendered JSON; replicas of one
  // certificate render identically on every shard, so dedup by string
  // equality reproduces the single-node list.
  const std::string spki = "ab12";
  const std::vector<std::string> bodies = {
      "{\"spki\":\"" + spki +
          "\",\"certificates\":[{\"index\":2,\"serial\":\"0b\"},"
          "{\"index\":5,\"serial\":\"0e\"}]}\n",
      "{\"spki\":\"" + spki +
          "\",\"certificates\":[{\"index\":2,\"serial\":\"0b\"},"
          "{\"index\":1,\"serial\":\"0a\"}]}\n",
  };
  EXPECT_EQ(merge_key_bodies(bodies),
            "{\"spki\":\"ab12\",\"certificates\":["
            "{\"index\":1,\"serial\":\"0a\"},"
            "{\"index\":2,\"serial\":\"0b\"},"
            "{\"index\":5,\"serial\":\"0e\"}]}\n");
}

TEST(MergeKeyTest, AllShardsEmptyYieldsEmptyList) {
  const std::vector<std::string> bodies = {
      "{\"spki\":\"ab12\",\"certificates\":[]}\n",
      "{\"spki\":\"ab12\",\"certificates\":[]}\n",
  };
  EXPECT_EQ(merge_key_bodies(bodies),
            "{\"spki\":\"ab12\",\"certificates\":[]}\n");
}

TEST(MergeRevocationTest, EarliestRevocationWins) {
  const std::string miss = "{\"serial\":\"0abc\",\"revoked\":false}\n";
  const std::string late =
      "{\"serial\":\"0abc\",\"revoked\":true,\"revocation_date\":"
      "\"2024-05-01\",\"reason\":\"superseded\",\"key_compromise\":false}\n";
  const std::string early =
      "{\"serial\":\"0abc\",\"revoked\":true,\"revocation_date\":"
      "\"2024-02-09\",\"reason\":\"key_compromise\",\"key_compromise\":true}\n";
  EXPECT_EQ(merge_revocation_bodies({miss, late, early}), early);
  EXPECT_EQ(merge_revocation_bodies({early, late}), early);
}

TEST(MergeRevocationTest, DateTieBreaksOnBodyText) {
  const std::string a =
      "{\"serial\":\"0abc\",\"revoked\":true,\"revocation_date\":"
      "\"2024-02-09\",\"reason\":\"key_compromise\",\"key_compromise\":true}\n";
  const std::string b =
      "{\"serial\":\"0abc\",\"revoked\":true,\"revocation_date\":"
      "\"2024-02-09\",\"reason\":\"superseded\",\"key_compromise\":false}\n";
  const std::string smaller = a < b ? a : b;
  EXPECT_EQ(merge_revocation_bodies({a, b}), smaller);
  EXPECT_EQ(merge_revocation_bodies({b, a}), smaller);
}

TEST(MergeRevocationTest, AllMissesPassThroughFirstBody) {
  const std::string miss = "{\"serial\":\"0abc\",\"revoked\":false}\n";
  EXPECT_EQ(merge_revocation_bodies({miss, miss, miss}), miss);
}

}  // namespace
}  // namespace stalecert::cluster
