// Structural invariants of the static world split and the feed delta
// splitter over the golden archive: replication follows the plan, every
// record survives on exactly the shards that must hold it, and the shard
// slices sum back to the single-node world (owned_stats). The serving
// equivalence of the resulting cluster is cluster_differential_test.cpp.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "stalecert/cluster/shard.hpp"
#include "stalecert/cluster/split.hpp"
#include "stalecert/feed/extend.hpp"
#include "stalecert/feed/format.hpp"
#include "stalecert/query/index.hpp"
#include "stalecert/query/shard.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/store/archive.hpp"
#include "stalecert/store/errors.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::cluster {
namespace {

constexpr unsigned kShards = 4;

std::string golden_path() {
  return std::string(STALECERT_CLUSTER_TEST_DATA_DIR) + "/golden_small.scw";
}

/// Golden world + its four in-memory shard slices, built once.
struct SplitWorld {
  store::LoadedWorld full;
  std::vector<store::LoadedWorld> shards;
};

const SplitWorld& split_world() {
  static const SplitWorld shared = [] {
    SplitWorld w;
    w.full = store::load_world(golden_path());
    const ShardPlan plan(kShards);
    for (unsigned k = 0; k < kShards; ++k) {
      w.shards.push_back(shard_world(w.full, plan, k));
    }
    return w;
  }();
  return shared;
}

/// Identity of one CT entry for cross-shard membership checks; timestamps
/// disambiguate re-logged certificates.
std::string entry_key(std::uint64_t log_id, const ct::LogEntry& entry) {
  return std::to_string(log_id) + "|" + entry.timestamp.to_string() + "|" +
         util::to_lower(entry.certificate.serial_hex()) + "|" +
         entry.certificate.subject_key().fingerprint_hex();
}

std::string revocation_key(const revocation::RevocationStore::Entry& entry) {
  std::string key(reinterpret_cast<const char*>(entry.authority_key_id.data()),
                  entry.authority_key_id.size());
  key.append(reinterpret_cast<const char*>(entry.serial.data()),
             entry.serial.size());
  return key;
}

TEST(ShardWorldTest, TagsProfileAndKeepsMetaOtherwise) {
  const auto& w = split_world();
  for (unsigned k = 0; k < kShards; ++k) {
    const auto& meta = w.shards[k].meta;
    EXPECT_EQ(meta.profile,
              w.full.meta.profile + "#shard-" + std::to_string(k) + "/4");
    EXPECT_EQ(meta.seed, w.full.meta.seed);
    EXPECT_EQ(meta.start, w.full.meta.start);
    EXPECT_EQ(meta.end, w.full.meta.end);
  }
}

TEST(ShardWorldTest, CertificatesReplicatePerPlanExactly) {
  const auto& w = split_world();
  const ShardPlan plan(kShards);

  // Multiset of entry identities per shard.
  std::vector<std::map<std::string, int>> held(kShards);
  for (unsigned k = 0; k < kShards; ++k) {
    for (const auto& log : w.shards[k].ct_logs.logs()) {
      for (const auto& entry : log.entries()) {
        held[k][entry_key(log.id(), entry)]++;
      }
    }
  }

  std::uint64_t full_entries = 0;
  for (const auto& log : w.full.ct_logs.logs()) {
    for (const auto& entry : log.entries()) {
      ++full_entries;
      const auto expected = plan.shards_for_certificate(entry.certificate);
      ASSERT_FALSE(expected.empty());
      const std::string key = entry_key(log.id(), entry);
      for (unsigned k = 0; k < kShards; ++k) {
        const bool should_hold =
            std::find(expected.begin(), expected.end(), k) != expected.end();
        const auto it = held[k].find(key);
        const bool holds = it != held[k].end() && it->second > 0;
        ASSERT_EQ(holds, should_hold)
            << "shard " << k << " vs entry " << key;
        if (holds) --it->second;  // consume one replica per full entry
      }
    }
  }
  ASSERT_GT(full_entries, 0u) << "golden world has no CT entries";
  // Nothing a shard holds was unaccounted for (no invented entries).
  for (unsigned k = 0; k < kShards; ++k) {
    for (const auto& [key, count] : held[k]) {
      EXPECT_EQ(count, 0) << "shard " << k << " extra replica of " << key;
    }
  }
}

TEST(ShardWorldTest, ShardLogsKeepDenseIndicesAndIdentity) {
  const auto& w = split_world();
  for (unsigned k = 0; k < kShards; ++k) {
    std::set<std::uint64_t> full_log_ids;
    for (const auto& log : w.full.ct_logs.logs()) full_log_ids.insert(log.id());
    for (const auto& log : w.shards[k].ct_logs.logs()) {
      EXPECT_TRUE(full_log_ids.contains(log.id()));
      for (std::size_t i = 0; i < log.entries().size(); ++i) {
        ASSERT_EQ(log.entries()[i].index, i)
            << "shard " << k << " log " << log.id();
      }
    }
  }
}

TEST(ShardWorldTest, RegistrationsLiveOnlyOnTheirHomeShard) {
  const auto& w = split_world();
  const ShardPlan plan(kShards);
  std::size_t total = 0;
  for (unsigned k = 0; k < kShards; ++k) {
    total += w.shards[k].registrations.size();
    for (const auto& event : w.shards[k].registrations) {
      EXPECT_EQ(plan.shard_for_domain(event.domain), k) << event.domain;
    }
  }
  EXPECT_EQ(total, w.full.registrations.size());
  ASSERT_GT(total, 0u) << "golden world has no registrations";
}

TEST(ShardWorldTest, DnsDayChainsStayContiguousAndPartitioned) {
  const auto& w = split_world();
  const ShardPlan plan(kShards);
  const auto& full_days = w.full.adns.all();
  ASSERT_FALSE(full_days.empty());
  std::size_t total_records = 0;
  for (unsigned k = 0; k < kShards; ++k) {
    const auto& days = w.shards[k].adns.all();
    // Every day survives (possibly empty): the departure detector diffs
    // consecutive days, so a shard must never skip one.
    ASSERT_EQ(days.size(), full_days.size()) << "shard " << k;
    for (std::size_t d = 0; d < days.size(); ++d) {
      EXPECT_EQ(days[d].date, full_days[d].date);
      total_records += days[d].records.size();
      for (const auto& [domain, records] : days[d].records) {
        EXPECT_EQ(plan.shard_for_domain(domain), k) << domain;
      }
    }
  }
  std::size_t full_records = 0;
  for (const auto& day : full_days) full_records += day.records.size();
  EXPECT_EQ(total_records, full_records);
}

TEST(ShardWorldTest, EveryRevocationSurvivesOrphansExactlyOnce) {
  const auto& w = split_world();
  const ShardPlan plan(kShards);

  // Which join keys any full-world certificate matches.
  std::set<std::string> matched;
  for (const auto& log : w.full.ct_logs.logs()) {
    for (const auto& entry : log.entries()) {
      if (const auto is = entry.certificate.issuer_serial()) {
        revocation::RevocationStore::Entry probe;
        probe.authority_key_id = is->authority_key_id;
        probe.serial = is->serial;
        matched.insert(revocation_key(probe));
      }
    }
  }

  std::vector<std::set<std::string>> held(kShards);
  for (unsigned k = 0; k < kShards; ++k) {
    for (const auto& entry : w.shards[k].revocations.entries()) {
      held[k].insert(revocation_key(entry));
    }
  }

  ASSERT_FALSE(w.full.revocations.entries().empty());
  for (const auto& entry : w.full.revocations.entries()) {
    const std::string key = revocation_key(entry);
    unsigned holders = 0;
    for (unsigned k = 0; k < kShards; ++k) holders += held[k].contains(key);
    if (matched.contains(key)) {
      EXPECT_GE(holders, 1u);
    } else {
      // A globally orphaned revocation lands on its serial-hash shard and
      // nowhere else, so merged revoked-serial counts stay exact.
      EXPECT_EQ(holders, 1u);
      EXPECT_TRUE(held[plan.shard_for_serial(entry.serial)].contains(key));
    }
  }
}

TEST(ShardWorldTest, OwnedStatsSumBackToSingleNodeStats) {
  // Per-process path: sibling TESTs run as concurrent ctest processes.
  const auto dir =
      ::testing::TempDir() + "cluster_split_sum_" + std::to_string(::getpid());
  const ShardPlan plan(kShards);
  const auto paths = write_shard_archives(split_world().full, plan, dir);
  ASSERT_EQ(paths.size(), kShards);

  const auto single = query::StalenessIndex::from_archive(golden_path());
  query::StalenessIndex::Stats sum;
  for (unsigned k = 0; k < kShards; ++k) {
    const auto shard =
        query::StalenessIndex::from_archive(paths[k], plan.scope_for(k));
    EXPECT_TRUE(shard->sharded());
    const auto& owned = shard->owned_stats();
    sum.certificates += owned.certificates;
    sum.stale_records += owned.stale_records;
    sum.distinct_keys += owned.distinct_keys;
    sum.distinct_domains += owned.distinct_domains;
    sum.revoked_serials += owned.revoked_serials;
    for (std::size_t i = 0; i < sum.by_class.size(); ++i) {
      sum.by_class[i] += owned.by_class[i];
    }
  }
  const auto& full = single->stats();
  EXPECT_EQ(sum.certificates, full.certificates);
  EXPECT_EQ(sum.stale_records, full.stale_records);
  EXPECT_EQ(sum.distinct_keys, full.distinct_keys);
  EXPECT_EQ(sum.distinct_domains, full.distinct_domains);
  EXPECT_EQ(sum.revoked_serials, full.revoked_serials);
  EXPECT_EQ(sum.by_class, full.by_class);
}

TEST(ApplyShardFilterTest, PreSplitArchivePassesThroughMismatchThrows) {
  const ShardPlan plan(kShards);
  const auto& slice = split_world().shards[1];

  // Already tagged with the same label: a no-op, not a double filter.
  const auto again = query::apply_shard_filter(slice, plan.scope_for(1));
  EXPECT_EQ(again.meta.profile, slice.meta.profile);
  EXPECT_EQ(again.registrations.size(), slice.registrations.size());

  // Tagged with a DIFFERENT label: a deployment error, loudly.
  EXPECT_THROW(query::apply_shard_filter(slice, plan.scope_for(2)),
               store::ArchiveError);
}

TEST(DeltaSplitterTest, RoutesDeltasShardLocallyAndStaysSequenced) {
  // The golden archive's "custom" profile is not regenerable, so the feed
  // path gets a fresh simulated world (same recipe the feed tests use).
  struct FreshWorld {
    store::LoadedWorld full;
    std::vector<store::LoadedWorld> shards;
    std::vector<feed::WorldDelta> deltas;
  };
  static const FreshWorld fresh = [] {
    FreshWorld f;
    const std::string path = ::testing::TempDir() + "cluster_split_fresh_" +
                             std::to_string(::getpid()) + ".scw";
    sim::World world(sim::small_test_config());
    world.run();
    store::save_world(world, path, nullptr, "small");
    f.full = store::load_world(path);
    const ShardPlan fresh_plan(kShards);
    for (unsigned k = 0; k < kShards; ++k) {
      f.shards.push_back(shard_world(f.full, fresh_plan, k));
    }
    f.deltas = feed::extend_world(f.full.meta, 2, 1);
    return f;
  }();
  const auto& w = fresh;
  const ShardPlan plan(kShards);
  const auto& deltas = w.deltas;
  ASSERT_EQ(deltas.size(), 2u);

  // Shard-archive log sizes: the base the first routed delta must extend.
  std::vector<std::map<std::uint64_t, std::uint64_t>> base_sizes(kShards);
  for (unsigned k = 0; k < kShards; ++k) {
    for (const auto& log : w.shards[k].ct_logs.logs()) {
      base_sizes[k][log.id()] = log.entries().size();
    }
  }

  DeltaSplitter splitter(w.full, plan);
  std::vector<std::map<std::uint64_t, std::uint64_t>> expected = base_sizes;
  for (const auto& delta : deltas) {
    const auto routed = splitter.split(delta);
    ASSERT_EQ(routed.size(), kShards);

    for (unsigned k = 0; k < kShards; ++k) {
      // Bound to the SHARD archive's lineage, not the full world's.
      EXPECT_EQ(routed[k].meta.base_world_id,
                feed::world_id(w.shards[k].meta));
      EXPECT_NE(routed[k].meta.base_world_id, feed::world_id(w.full.meta));
      EXPECT_EQ(routed[k].meta.from_day, delta.meta.from_day);
      EXPECT_EQ(routed[k].meta.to_day, delta.meta.to_day);

      // Every DNS day replicates (filtered) so shard day chains never gap.
      ASSERT_EQ(routed[k].adns.size(), delta.adns.size());
      for (std::size_t d = 0; d < delta.adns.size(); ++d) {
        EXPECT_EQ(routed[k].adns[d].date, delta.adns[d].date);
        for (const auto& [domain, records] : routed[k].adns[d].records) {
          EXPECT_EQ(plan.shard_for_domain(domain), k);
        }
      }
      for (const auto& event : routed[k].registrations) {
        EXPECT_EQ(plan.shard_for_domain(event.domain), k);
      }

      // Entry indices are shard-local and dense: each log delta continues
      // exactly where that shard's log currently ends.
      for (const auto& log_delta : routed[k].ct) {
        EXPECT_EQ(log_delta.base_entry_count, expected[k][log_delta.log_id]);
        for (std::size_t i = 0; i < log_delta.entries.size(); ++i) {
          EXPECT_EQ(log_delta.entries[i].index,
                    log_delta.base_entry_count + i);
        }
        expected[k][log_delta.log_id] += log_delta.entries.size();
      }
    }

    // Each delta CT entry replicates to exactly its plan shards.
    for (const auto& log_delta : delta.ct) {
      for (const auto& entry : log_delta.entries) {
        const auto shards = plan.shards_for_certificate(entry.certificate);
        for (unsigned k = 0; k < kShards; ++k) {
          const bool should_hold =
              std::find(shards.begin(), shards.end(), k) != shards.end();
          bool holds = false;
          for (const auto& routed_log : routed[k].ct) {
            if (routed_log.log_id != log_delta.log_id) continue;
            for (const auto& routed_entry : routed_log.entries) {
              if (entry_key(log_delta.log_id, routed_entry) ==
                  entry_key(log_delta.log_id, entry)) {
                holds = true;
              }
            }
          }
          EXPECT_EQ(holds, should_hold) << "shard " << k;
        }
      }
    }
  }
}

}  // namespace
}  // namespace stalecert::cluster
