// The partition policy in isolation: the hash, shard-ref parsing, routing
// determinism, and the scope predicates every other cluster piece closes
// over. Nothing here touches an archive — see split_test.cpp and
// cluster_differential_test.cpp for the data-bearing layers.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "stalecert/cluster/shard.hpp"
#include "stalecert/query/shard.hpp"

namespace stalecert::cluster {
namespace {

TEST(Fnv1a64Test, MatchesPublishedVectors) {
  // Offset basis and the classic FNV-1a reference values: the routing hash
  // may NEVER change, or existing shard archives stop routing correctly.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(ShardRefTest, ParsesValidRefs) {
  const auto ref = ShardRef::parse("2/4");
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->index, 2u);
  EXPECT_EQ(ref->count, 4u);
  EXPECT_EQ(ref->label(), "2/4");

  EXPECT_TRUE(ShardRef::parse("0/1").has_value());
  EXPECT_TRUE(ShardRef::parse("1023/1024").has_value());
}

TEST(ShardRefTest, RejectsMalformedRefs) {
  EXPECT_FALSE(ShardRef::parse("").has_value());
  EXPECT_FALSE(ShardRef::parse("3").has_value());          // no slash
  EXPECT_FALSE(ShardRef::parse("4/4").has_value());        // index == count
  EXPECT_FALSE(ShardRef::parse("5/4").has_value());        // index > count
  EXPECT_FALSE(ShardRef::parse("0/0").has_value());        // zero shards
  EXPECT_FALSE(ShardRef::parse("0/1025").has_value());     // over the cap
  EXPECT_FALSE(ShardRef::parse("a/4").has_value());
  EXPECT_FALSE(ShardRef::parse("1/b").has_value());
  EXPECT_FALSE(ShardRef::parse("1/4x").has_value());
  EXPECT_FALSE(ShardRef::parse("/4").has_value());
  EXPECT_FALSE(ShardRef::parse("1/").has_value());
}

TEST(ShardPlanTest, ConstructorEnforcesCountRange) {
  EXPECT_NO_THROW(ShardPlan(1));
  EXPECT_NO_THROW(ShardPlan(1024));
  EXPECT_THROW(ShardPlan(0), std::invalid_argument);
  EXPECT_THROW(ShardPlan(1025), std::invalid_argument);
}

TEST(ShardPlanTest, NamesRouteByRegisteredDomain) {
  const ShardPlan plan(7);
  // Every name under one e2LD lands on that e2LD's home shard — the
  // invariant that keeps per-domain joins shard-local.
  const unsigned home = plan.shard_for_key(query::routing_domain("example.com"));
  EXPECT_EQ(plan.shard_for_domain("example.com"), home);
  EXPECT_EQ(plan.shard_for_domain("www.example.com"), home);
  EXPECT_EQ(plan.shard_for_domain("a.b.c.example.com"), home);
  EXPECT_EQ(plan.shard_for_domain("WWW.EXAMPLE.COM"), home);
  EXPECT_EQ(plan.shard_for_domain("*.example.com"), home);
}

TEST(ShardPlanTest, RoutingIsDeterministicAndInRange) {
  const ShardPlan plan(4);
  const ShardPlan same(4);
  const std::vector<std::string> names = {
      "example.com", "foo.org", "bar.co.uk", "deep.sub.baz.net", "",
      "localhost", "9a3f", "x"};
  for (const auto& name : names) {
    const unsigned shard = plan.shard_for_domain(name);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(same.shard_for_domain(name), shard) << name;
  }
}

TEST(ShardPlanTest, ShardsForNamesSortedDeduplicated) {
  const ShardPlan plan(4);
  const std::vector<std::string> names = {
      "a.example.com", "b.example.com",  // same e2LD -> one shard
      "other.org", "third.net", "fourth.io", "fifth.dev"};
  const auto shards = plan.shards_for_names(names);
  ASSERT_FALSE(shards.empty());
  for (std::size_t i = 1; i < shards.size(); ++i) {
    EXPECT_LT(shards[i - 1], shards[i]);  // strictly ascending = deduped
  }
  // The duplicate e2LD must not add a shard beyond the distinct domains.
  std::set<unsigned> expected;
  for (const auto& name : names) expected.insert(plan.shard_for_domain(name));
  EXPECT_EQ(shards.size(), expected.size());
}

TEST(ShardPlanTest, EmptyNameListRoutesLikeTheEmptyName) {
  const ShardPlan plan(5);
  const auto shards = plan.shards_for_names({});
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0], plan.shard_for_domain(std::string{}));
}

TEST(ShardPlanTest, ScopePredicatesPartitionEveryKey) {
  // Exactly one shard owns each routing key, and the domain filter agrees
  // with the ownership predicate on routing domains — the property that
  // makes summed owned_stats exact.
  const unsigned kShards = 4;
  const ShardPlan plan(kShards);
  std::vector<query::ShardScope> scopes;
  for (unsigned k = 0; k < kShards; ++k) scopes.push_back(plan.scope_for(k));

  const std::vector<std::string> keys = {
      "example.com", "other.org", "deadbeef00",  // serial-hex-like
      "9b1c2d3e4f5a6b7c8d9e0f1a2b3c4d5e6f708192a3b4c5d6e7f8091a2b3c4d5e",
      ""};
  for (const auto& key : keys) {
    unsigned owners = 0;
    for (unsigned k = 0; k < kShards; ++k) {
      if (scopes[k].owns(key)) ++owners;
    }
    EXPECT_EQ(owners, 1u) << key;
  }

  const std::vector<std::string> names = {"www.example.com", "a.other.org",
                                          "plain.net"};
  for (const auto& name : names) {
    unsigned keepers = 0;
    for (unsigned k = 0; k < kShards; ++k) {
      const bool kept = scopes[k].filter.keep_domain(name);
      EXPECT_EQ(kept, scopes[k].owns(query::routing_domain(name))) << name;
      if (kept) ++keepers;
    }
    EXPECT_EQ(keepers, 1u) << name;
  }
}

TEST(ShardPlanTest, ScopeLabelAndBounds) {
  const ShardPlan plan(4);
  EXPECT_EQ(plan.scope_for(0).label, "0/4");
  EXPECT_EQ(plan.scope_for(3).label, "3/4");
  EXPECT_THROW(plan.scope_for(4), std::invalid_argument);
}

TEST(ShardPlanTest, CanonicalFileAndDirectoryNames) {
  EXPECT_EQ(ShardPlan::archive_name(0, 4), "shard-0-of-4.scw");
  EXPECT_EQ(ShardPlan::archive_name(3, 4), "shard-3-of-4.scw");
  EXPECT_EQ(ShardPlan::shard_dir_name(2, 8), "shard-2-of-8");
}

}  // namespace
}  // namespace stalecert::cluster
