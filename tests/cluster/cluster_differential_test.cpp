// The cluster's end-to-end contract: a 4-shard cluster behind the router
// answers every query endpoint BYTE-IDENTICALLY to a single-node staled
// over the same world — before and after feed deltas — and degrades the
// documented way when a shard dies. Shards are real HttpServers on
// ephemeral ports (the router genuinely scatters over sockets); the router
// and the single node are driven through handle() directly.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "stalecert/cluster/router.hpp"
#include "stalecert/cluster/shard.hpp"
#include "stalecert/cluster/split.hpp"
#include "stalecert/feed/delta.hpp"
#include "stalecert/feed/extend.hpp"
#include "stalecert/feed/runtime.hpp"
#include "stalecert/query/server.hpp"
#include "stalecert/query/service.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/store/archive.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::cluster {
namespace {

constexpr unsigned kShards = 4;

query::HttpRequest make_request(const std::string& target,
                                const std::string& method = "GET") {
  const auto parsed =
      query::parse_request(method + " " + target + " HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(parsed.has_value()) << target;
  return *parsed;
}

/// A full single-node + 4-shard cluster over one fresh simulated world.
/// Built per test process (gtest_discover_tests runs each TEST alone).
struct Cluster {
  std::string base_path;
  store::LoadedWorld full;
  std::vector<feed::WorldDelta> deltas;           // full-world deltas
  std::vector<std::vector<std::string>> routed;   // routed bytes [delta][shard]

  std::unique_ptr<query::StaledService> single;
  std::unique_ptr<feed::FeedRuntime> single_runtime;
  std::vector<std::unique_ptr<query::StaledService>> shard_services;
  std::vector<std::unique_ptr<feed::FeedRuntime>> shard_runtimes;
  std::vector<std::unique_ptr<query::HttpServer>> shard_servers;
  std::unique_ptr<RouterService> router;

  // Query inputs harvested from the world.
  std::vector<std::string> domains;
  std::vector<std::string> spkis;
  std::vector<std::string> serials;
};

Cluster& cluster() {
  static Cluster* shared = [] {
    auto* c = new Cluster;
    // gtest_discover_tests runs sibling TESTs as concurrent processes that
    // share TempDir — the fixture paths must be per-process.
    const std::string tag = std::to_string(::getpid());
    c->base_path = ::testing::TempDir() + "cluster_diff_base_" + tag + ".scw";
    sim::World world(sim::small_test_config());
    world.run();
    store::save_world(world, c->base_path, nullptr, "small");
    c->full = store::load_world(c->base_path);

    const ShardPlan plan(kShards);
    const auto shard_paths = write_shard_archives(
        c->full, plan, ::testing::TempDir() + "cluster_diff_shards_" + tag);

    // Feed deltas: the full-world sequence and its routed split.
    c->deltas = feed::extend_world(c->full.meta, 2, 1);
    DeltaSplitter splitter(c->full, plan);
    for (const auto& delta : c->deltas) {
      const auto per_shard = splitter.split(delta);
      std::vector<std::string> bodies;
      for (const auto& routed : per_shard) {
        const auto bytes = feed::write_delta_bytes(routed);
        bodies.emplace_back(bytes.begin(), bytes.end());
      }
      c->routed.push_back(std::move(bodies));
    }

    c->single = std::make_unique<query::StaledService>(c->base_path);
    c->single->log().set_level(obs::LogLevel::kError);
    c->single_runtime = std::make_unique<feed::FeedRuntime>(c->base_path);
    c->single->set_ingest_handler(c->single_runtime->handler());
    c->single->publish(c->single_runtime->index(), "test base");

    std::vector<ShardEndpoint> endpoints;
    for (unsigned k = 0; k < kShards; ++k) {
      query::ServiceOptions options;
      options.shard_index = k;
      options.shard_count = kShards;
      auto service =
          std::make_unique<query::StaledService>(shard_paths[k], options);
      service->log().set_level(obs::LogLevel::kError);
      auto runtime = std::make_unique<feed::FeedRuntime>(
          shard_paths[k], nullptr, plan.scope_for(k));
      service->set_ingest_handler(runtime->handler());
      service->publish(runtime->index(), "test base");

      query::HttpServer::Options server_options;
      server_options.port = 0;
      auto* raw = service.get();
      auto server = std::make_unique<query::HttpServer>(
          server_options,
          [raw](const query::HttpRequest& r) { return raw->handle(r); });
      server->start();
      endpoints.push_back({"127.0.0.1", server->port()});

      c->shard_services.push_back(std::move(service));
      c->shard_runtimes.push_back(std::move(runtime));
      c->shard_servers.push_back(std::move(server));
    }

    RouterOptions router_options;
    router_options.shards = endpoints;
    router_options.timeout = std::chrono::milliseconds(5000);
    router_options.health_interval = std::chrono::milliseconds(0);
    c->router = std::make_unique<RouterService>(router_options);
    c->router->log().set_level(obs::LogLevel::kError);

    // Harvest query inputs: every name, SPKI and serial the world knows.
    std::set<std::string> domains;
    std::set<std::string> spkis;
    std::set<std::string> serials;
    for (const auto& log : c->full.ct_logs.logs()) {
      for (const auto& entry : log.entries()) {
        for (const auto& name : entry.certificate.dns_names()) {
          domains.insert(name);
        }
        spkis.insert(entry.certificate.subject_key().fingerprint_hex());
        serials.insert(util::to_lower(entry.certificate.serial_hex()));
      }
    }
    for (const auto& event : c->full.registrations) {
      domains.insert(event.domain);
    }
    domains.insert("never-issued.example");  // guaranteed miss
    spkis.insert("00ff00ff");
    serials.insert("deadbeef");
    c->domains.assign(domains.begin(), domains.end());
    c->spkis.assign(spkis.begin(), spkis.end());
    c->serials.assign(serials.begin(), serials.end());
    return c;
  }();
  return *shared;
}

/// Byte-compares the single node's and the router's answer for one target.
void expect_identical(const std::string& target) {
  Cluster& c = cluster();
  const auto request = make_request(target);
  const auto single = c.single->handle(request);
  const auto routed = c.router->handle(request);
  ASSERT_EQ(routed.status, single.status) << target << "\n" << routed.body;
  EXPECT_EQ(routed.content_type, single.content_type) << target;
  EXPECT_EQ(routed.body, single.body) << target;
}

void sweep_all_endpoints() {
  Cluster& c = cluster();
  const std::vector<std::string> dates = {
      c.single->snapshot()->meta().start.to_string(),
      c.single->snapshot()->meta().end.to_string()};
  expect_identical("/v1/summary");
  for (const auto& domain : c.domains) {
    expect_identical("/v1/summary?domain=" + domain);
    for (const auto& date : dates) {
      expect_identical("/v1/stale?domain=" + domain + "&date=" + date);
    }
  }
  for (const auto& spki : c.spkis) expect_identical("/v1/key/" + spki);
  for (const auto& serial : c.serials) {
    expect_identical("/v1/revocation?serial=" + serial);
  }
  // Missing-parameter requests reproduce the single-node 400 bodies.
  expect_identical("/v1/stale");
  expect_identical("/v1/stale?domain=x.example");
  expect_identical("/v1/summary?domain=");
  expect_identical("/v1/revocation");
  expect_identical("/v1/key/");
  expect_identical("/v1/nope");
}

TEST(ClusterDifferentialTest, EveryEndpointMatchesSingleNodeByteForByte) {
  ASSERT_GT(cluster().domains.size(), 10u);
  ASSERT_GT(cluster().spkis.size(), 10u);
  sweep_all_endpoints();
}

TEST(ClusterDifferentialTest, RoutedDeltasKeepClusterEquivalent) {
  Cluster& c = cluster();
  for (std::size_t d = 0; d < c.deltas.size(); ++d) {
    // Single node applies the full-world delta...
    const auto bytes = feed::write_delta_bytes(c.deltas[d]);
    query::IngestSource source;
    source.bytes.assign(bytes.begin(), bytes.end());
    source.origin = "test";
    const auto outcome = c.single->ingest(source);
    ASSERT_TRUE(outcome.ok) << outcome.message;

    // ...each shard applies only its routed slice.
    for (unsigned k = 0; k < kShards; ++k) {
      query::IngestSource shard_source;
      shard_source.bytes = c.routed[d][k];
      shard_source.origin = "test";
      const auto shard_outcome = c.shard_services[k]->ingest(shard_source);
      ASSERT_TRUE(shard_outcome.ok)
          << "shard " << k << ": " << shard_outcome.message;
    }
  }
  // A full-world delta must NOT apply to a shard (wrong world id): the
  // deployment mistake the shard-tagged profile exists to catch.
  query::IngestSource wrong;
  const auto full_bytes = feed::write_delta_bytes(c.deltas[0]);
  wrong.bytes.assign(full_bytes.begin(), full_bytes.end());
  wrong.origin = "test";
  EXPECT_EQ(c.shard_services[0]->ingest(wrong).status, 409);

  EXPECT_EQ(c.single->snapshot()->patch_generation(), c.deltas.size());
  for (unsigned k = 0; k < kShards; ++k) {
    EXPECT_EQ(c.shard_services[k]->snapshot()->patch_generation(),
              c.deltas.size());
  }
  sweep_all_endpoints();
}

TEST(ClusterDifferentialTest, DeadShardDegradesTheDocumentedWay) {
  Cluster& c = cluster();
  const ShardPlan plan(kShards);
  constexpr unsigned kDead = 2;
  c.shard_servers[kDead]->stop();

  // A domain the dead shard owns: its point lookup cannot be served.
  const auto owned = std::find_if(
      c.domains.begin(), c.domains.end(), [&plan](const std::string& d) {
        return plan.shard_for_domain(d) == kDead;
      });
  ASSERT_NE(owned, c.domains.end());
  const auto point =
      c.router->handle(make_request("/v1/summary?domain=" + *owned));
  EXPECT_EQ(point.status, 503);
  EXPECT_NE(point.body.find("shard 2/4 unavailable after retry"),
            std::string::npos);
  ASSERT_TRUE(point.headers.contains("Retry-After"));
  EXPECT_EQ(point.headers.at("Retry-After"), "1");

  // A domain a LIVE shard owns still answers exactly.
  const auto alive = std::find_if(
      c.domains.begin(), c.domains.end(), [&plan](const std::string& d) {
        return plan.shard_for_domain(d) != kDead;
      });
  ASSERT_NE(alive, c.domains.end());
  expect_identical("/v1/summary?domain=" + *alive);

  // Key and revocation gathers fail CLOSED: the dead shard may hold the
  // only replica, so a partial union would silently lie.
  EXPECT_EQ(c.router->handle(make_request("/v1/key/" + c.spkis.front()))
                .status,
            503);
  EXPECT_EQ(c.router
                ->handle(make_request("/v1/revocation?serial=" +
                                      c.serials.front()))
                .status,
            503);

  // The global summary degrades to an explicit partial body instead.
  const auto summary = c.router->handle(make_request("/v1/summary"));
  EXPECT_EQ(summary.status, 200);
  EXPECT_NE(summary.body.find("\"partial\":true,\"shards_missing\":[2]"),
            std::string::npos);

  // The request-path failures marked the shard down; the router's own
  // health and status surfaces say so.
  EXPECT_FALSE(c.router->shard_healthy(kDead));
  const auto healthz = c.router->handle(make_request("/healthz"));
  EXPECT_EQ(healthz.status, 503);
  EXPECT_NE(healthz.body.find("degraded: shards down: 2"), std::string::npos);
  const auto statusz = c.router->handle(make_request("/statusz"));
  EXPECT_EQ(statusz.status, 200);
  EXPECT_NE(statusz.body.find("\"healthy\":false"), std::string::npos);

  const auto metrics = c.router->handle(make_request("/metrics"));
  EXPECT_NE(metrics.body.find("stalecert_router_shard_healthy{shard=\"2\"} 0"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("stalecert_router_shard_errors_total"),
            std::string::npos);
}

TEST(ClusterRouterTest, RouterOwnsItsOperationalEndpoints) {
  Cluster& c = cluster();
  // /ingest never routes: deltas go to the owning shard's staled.
  const auto ingest = c.router->handle(make_request("/ingest", "POST"));
  EXPECT_EQ(ingest.status, 404);
  EXPECT_NE(ingest.body.find("owning shard"), std::string::npos);

  EXPECT_EQ(c.router->handle(make_request("/v1/summary", "PUT")).status, 405);
  EXPECT_EQ(c.router->handle(make_request("/healthz")).status, 200);

  const auto statusz = c.router->handle(make_request("/statusz"));
  EXPECT_EQ(statusz.status, 200);
  EXPECT_NE(statusz.body.find("\"shard_count\":4"), std::string::npos);
  // One entry per shard, each carrying the backend's generation.
  for (unsigned k = 0; k < kShards; ++k) {
    EXPECT_NE(statusz.body.find("\"index\":" + std::to_string(k)),
              std::string::npos);
  }

  const auto metrics = c.router->handle(make_request("/metrics"));
  EXPECT_NE(metrics.body.find("stalecert_router_requests_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("stalecert_router_fanout_shards"),
            std::string::npos);
}

}  // namespace
}  // namespace stalecert::cluster
