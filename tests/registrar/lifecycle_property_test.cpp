// Randomized operation fuzz over the Registry state machine: any sequence
// of register/renew/transfer/delete/advance attempts must either succeed
// legally or throw LogicError — and a set of global invariants must hold
// after every step.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "stalecert/registrar/lifecycle.hpp"
#include "stalecert/util/error.hpp"
#include "stalecert/util/rng.hpp"

namespace stalecert::registrar {
namespace {

using util::Date;

class LifecycleFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LifecycleFuzz, RandomOperationSequencesKeepInvariants) {
  util::Rng rng(GetParam());
  Registry registry;
  const std::vector<std::string> domains = {"a.com", "b.com", "c.com", "d.com"};
  Date today = Date::parse("2020-01-01");
  RegistrantId next_registrant = 1;
  // Last observed creation date per domain: must only move forward.
  std::map<std::string, Date> last_creation;

  for (int step = 0; step < 2000; ++step) {
    const std::string& domain = rng.pick(domains);
    const auto op = rng.below(6);
    try {
      switch (op) {
        case 0:
          registry.register_domain(domain, next_registrant++, "R", today,
                                   static_cast<int>(rng.between(1, 3)));
          break;
        case 1:
          registry.renew(domain, today, 1);
          break;
        case 2:
          registry.transfer(domain, next_registrant++, "R2", today);
          break;
        case 3:
          registry.pre_release_transfer(domain, next_registrant++, today);
          break;
        case 4:
          registry.delete_domain(domain, today);
          break;
        case 5:
          registry.advance(today);
          break;
      }
    } catch (const stalecert::LogicError&) {
      // Illegal transition correctly rejected; state must be unchanged
      // enough that subsequent invariants still hold (checked below).
    }
    today += rng.between(0, 20);
    registry.advance(today);

    // --- invariants ---
    for (const auto* reg : registry.registered_domains()) {
      // Registered records always carry sane dates.
      ASSERT_LE(reg->creation_date, today + 1);
      ASSERT_GT(reg->expiration_date, reg->creation_date);
      ASSERT_NE(reg->state, DomainState::kAvailable);
      // Active implies not past expiration.
      if (reg->state == DomainState::kActive) {
        ASSERT_LT(today, reg->expiration_date);
      }
      const auto it = last_creation.find(reg->domain);
      if (it != last_creation.end()) {
        ASSERT_GE(reg->creation_date, it->second)
            << "creation date moved backwards for " << reg->domain;
      }
      last_creation[reg->domain] = reg->creation_date;
    }
    // Ownership log consistency: creation-date resets only on
    // registrations, never on transfers.
    for (const auto& change : registry.ownership_changes()) {
      if (change.kind == AcquisitionKind::kTransfer ||
          change.kind == AcquisitionKind::kPreReleaseTransfer) {
        ASSERT_FALSE(change.creation_date_reset);
      } else {
        ASSERT_TRUE(change.creation_date_reset);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LifecycleFuzz,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace stalecert::registrar
