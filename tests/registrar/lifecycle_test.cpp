#include "stalecert/registrar/lifecycle.hpp"

#include <gtest/gtest.h>

#include "stalecert/util/error.hpp"

namespace stalecert::registrar {
namespace {

using util::Date;

TEST(RegistryTest, RegisterAndLookup) {
  Registry registry;
  const auto& reg = registry.register_domain("foo.com", 100, "R1",
                                             Date::parse("2020-01-01"), 2);
  EXPECT_EQ(reg.creation_date, Date::parse("2020-01-01"));
  EXPECT_EQ(reg.expiration_date, Date::parse("2020-01-01") + 730);
  EXPECT_EQ(registry.state("foo.com"), DomainState::kActive);
  EXPECT_NE(registry.find("foo.com"), nullptr);
  EXPECT_EQ(registry.find("missing.com"), nullptr);
  EXPECT_EQ(registry.state("missing.com"), DomainState::kAvailable);
}

TEST(RegistryTest, DoubleRegistrationRejected) {
  Registry registry;
  registry.register_domain("foo.com", 1, "R", Date::parse("2020-01-01"));
  EXPECT_THROW(registry.register_domain("foo.com", 2, "R", Date::parse("2020-06-01")),
               stalecert::LogicError);
}

TEST(RegistryTest, YearsValidation) {
  Registry registry;
  EXPECT_THROW(registry.register_domain("a.com", 1, "R", Date::parse("2020-01-01"), 0),
               stalecert::LogicError);
  EXPECT_THROW(registry.register_domain("a.com", 1, "R", Date::parse("2020-01-01"), 11),
               stalecert::LogicError);
}

TEST(RegistryTest, LifecycleWindows) {
  Registry registry;
  const Date start = Date::parse("2020-01-01");
  registry.register_domain("foo.com", 1, "R", start, 1);
  const Date expiry = start + 365;

  EXPECT_TRUE(registry.advance(expiry - 1).empty());
  EXPECT_EQ(registry.state("foo.com"), DomainState::kActive);

  registry.advance(expiry);
  EXPECT_EQ(registry.state("foo.com"), DomainState::kAutoRenewGrace);

  registry.advance(expiry + 45);
  EXPECT_EQ(registry.state("foo.com"), DomainState::kRedemption);

  registry.advance(expiry + 45 + 30);
  EXPECT_EQ(registry.state("foo.com"), DomainState::kPendingDelete);

  const auto released = registry.advance(expiry + 45 + 30 + 5);
  EXPECT_EQ(released, (std::vector<std::string>{"foo.com"}));
  EXPECT_EQ(registry.state("foo.com"), DomainState::kAvailable);
}

TEST(RegistryTest, RenewDuringGraceRestoresActive) {
  Registry registry;
  const Date start = Date::parse("2020-01-01");
  registry.register_domain("foo.com", 1, "R", start, 1);
  registry.advance(start + 370);
  ASSERT_EQ(registry.state("foo.com"), DomainState::kAutoRenewGrace);
  registry.renew("foo.com", start + 370, 1);
  EXPECT_EQ(registry.state("foo.com"), DomainState::kActive);
  EXPECT_EQ(registry.find("foo.com")->expiration_date, start + 365 + 365);
}

TEST(RegistryTest, ReRegistrationResetsCreationDate) {
  Registry registry;
  const Date start = Date::parse("2020-01-01");
  registry.register_domain("foo.com", 1, "R", start, 1);
  registry.advance(start + 365 + 80);  // past full lifecycle -> released
  ASSERT_EQ(registry.state("foo.com"), DomainState::kAvailable);

  const Date rereg_date = start + 365 + 100;
  const auto& reg = registry.register_domain("foo.com", 2, "R2", rereg_date, 1);
  EXPECT_EQ(reg.creation_date, rereg_date);
  EXPECT_EQ(reg.acquired_by, AcquisitionKind::kReRegistration);
  EXPECT_GT(reg.creation_date, start);  // creation date strictly forward

  // Ownership changes recorded with ground truth.
  const auto& changes = registry.ownership_changes();
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_TRUE(changes[1].creation_date_reset);
  EXPECT_EQ(changes[1].old_registrant, 1u);
  EXPECT_EQ(changes[1].new_registrant, 2u);
}

TEST(RegistryTest, TransferKeepsCreationDate) {
  Registry registry;
  const Date start = Date::parse("2020-01-01");
  registry.register_domain("foo.com", 1, "R", start, 2);
  registry.transfer("foo.com", 2, "R2", start + 100);
  const auto* reg = registry.find("foo.com");
  EXPECT_EQ(reg->creation_date, start);  // unchanged — undetectable via WHOIS
  EXPECT_EQ(reg->registrant, 2u);
  EXPECT_EQ(reg->registrar, "R2");
  EXPECT_FALSE(registry.ownership_changes().back().creation_date_reset);
  EXPECT_EQ(registry.ownership_changes().back().kind, AcquisitionKind::kTransfer);
}

TEST(RegistryTest, PreReleaseTransferOnlyInGrace) {
  Registry registry;
  const Date start = Date::parse("2020-01-01");
  registry.register_domain("foo.com", 1, "R", start, 1);
  EXPECT_THROW(registry.pre_release_transfer("foo.com", 2, start + 10),
               stalecert::LogicError);
  registry.advance(start + 370);
  registry.pre_release_transfer("foo.com", 2, start + 370);
  EXPECT_EQ(registry.state("foo.com"), DomainState::kActive);
  EXPECT_EQ(registry.find("foo.com")->creation_date, start);  // kept
}

TEST(RegistryTest, TransferRequiresActiveState) {
  Registry registry;
  const Date start = Date::parse("2020-01-01");
  registry.register_domain("foo.com", 1, "R", start, 1);
  registry.advance(start + 370);  // grace
  EXPECT_THROW(registry.transfer("foo.com", 2, "R", start + 370),
               stalecert::LogicError);
}

TEST(RegistryTest, VoluntaryDeleteReleasesImmediately) {
  Registry registry;
  registry.register_domain("abuse.com", 9, "R", Date::parse("2021-01-01"), 1);
  registry.delete_domain("abuse.com", Date::parse("2021-01-03"));
  EXPECT_EQ(registry.state("abuse.com"), DomainState::kAvailable);
  // Can be re-registered at once (refund-abuse scenario).
  EXPECT_NO_THROW(
      registry.register_domain("abuse.com", 10, "R", Date::parse("2021-01-10"), 1));
}

TEST(RegistryTest, RegisteredDomainsExcludesAvailable) {
  Registry registry;
  registry.register_domain("a.com", 1, "R", Date::parse("2021-01-01"), 1);
  registry.register_domain("b.com", 2, "R", Date::parse("2021-01-01"), 1);
  registry.delete_domain("a.com", Date::parse("2021-01-02"));
  const auto domains = registry.registered_domains();
  ASSERT_EQ(domains.size(), 1u);
  EXPECT_EQ(domains[0]->domain, "b.com");
}

TEST(LifecycleEnums, Names) {
  EXPECT_EQ(to_string(DomainState::kActive), "active");
  EXPECT_EQ(to_string(DomainState::kPendingDelete), "pending-delete");
  EXPECT_EQ(to_string(AcquisitionKind::kReRegistration), "re-registration");
}

}  // namespace
}  // namespace stalecert::registrar
