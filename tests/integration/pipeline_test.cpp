// End-to-end pipeline test: build a tiny world BY HAND (no simulator
// randomness), run all three detectors, and check the exact stale
// certificates they report. This is the full paper methodology in
// miniature: CA issuance -> CT logging -> WHOIS/aDNS/CRL collection ->
// detection -> staleness analysis -> lifetime-cap simulation.
#include <gtest/gtest.h>

#include "stalecert/ca/authority.hpp"
#include "stalecert/cdn/provider.hpp"
#include "stalecert/core/analyzer.hpp"
#include "stalecert/core/detectors.hpp"
#include "stalecert/core/lifetime.hpp"
#include "stalecert/ct/logset.hpp"
#include "stalecert/dns/scan.hpp"
#include "stalecert/revocation/collector.hpp"
#include "stalecert/whois/database.hpp"

namespace stalecert {
namespace {

using util::Date;

TEST(PipelineIntegrationTest, EndToEndThreeClasses) {
  // --- Substrate setup ---
  ct::LogSet logs;
  logs.add_log(ct::CtLog{1, "log", "Op", {.chrome = true, .apple = true}});

  ca::CertificateAuthority commercial(
      {.name = "Commercial CA", .organization = "Commercial", .default_days = 365,
       .crl_url = "http://crl.commercial.example/ca.crl"},
      1);
  commercial.attach_ct(&logs);

  ca::CertificateAuthority comodo(
      {.name = "COMODO ECC DV Secure Server CA 2", .organization = "COMODO",
       .default_days = 365},
      2);
  comodo.attach_ct(&logs);
  ca::CertificateAuthority cf_ca(
      {.name = "CloudFlare ECC CA-2", .organization = "Cloudflare",
       .default_days = 365},
      3);
  cf_ca.attach_ct(&logs);

  dns::DnsDatabase dnsdb;
  dnsdb.add_to_zone("com", "victim.com");
  dnsdb.add_to_zone("com", "sold.com");
  dnsdb.add_to_zone("com", "migrator.com");

  cdn::ProviderConfig provider_config;
  provider_config.name = "Cloudflare";
  provider_config.ns_suffix = "ns.cloudflare.com";
  provider_config.cname_suffix = "cdn.cloudflare.com";
  provider_config.managed_san_pattern = "sni*.cloudflaressl.com";
  provider_config.cruiseliner_capacity = 10;
  provider_config.actor = 99;
  cdn::ManagedTlsProvider cloudflare(provider_config, &comodo, &cf_ca, &dnsdb, 4);

  // --- Scenario 1: key compromise on victim.com ---
  ca::IssuanceRequest request;
  request.domains = {"victim.com"};
  request.subscriber_key =
      crypto::KeyPair::derive("victim", crypto::KeyAlgorithm::kEcdsaP256);
  request.date = Date::parse("2022-01-10");
  const auto victim_cert = commercial.issue_unchecked(request);
  commercial.revoke(victim_cert, Date::parse("2022-05-01"),
                    revocation::ReasonCode::kKeyCompromise);

  // --- Scenario 2: registrant change on sold.com ---
  request.domains = {"sold.com", "www.sold.com"};
  request.subscriber_key =
      crypto::KeyPair::derive("seller", crypto::KeyAlgorithm::kEcdsaP256);
  request.date = Date::parse("2022-02-01");
  const auto sold_cert = commercial.issue_unchecked(request);

  whois::WhoisDatabase whois_db;
  whois::ThinRecord original;
  original.domain = "sold.com";
  original.registrar = "R1";
  original.creation_date = Date::parse("2019-04-01");
  original.updated_date = original.creation_date;
  original.expiration_date = Date::parse("2022-04-01");
  whois_db.ingest(original);
  whois::ThinRecord rereg = original;
  rereg.creation_date = Date::parse("2022-07-15");  // new owner
  rereg.expiration_date = Date::parse("2023-07-15");
  whois_db.ingest(rereg);

  // --- Scenario 3: managed TLS departure of migrator.com ---
  const auto managed_certs = cloudflare.enroll(
      "migrator.com", cdn::DelegationKind::kCname, Date::parse("2022-03-01"));
  ASSERT_EQ(managed_certs.size(), 1u);

  dns::ScanEngine scanner(dnsdb);
  dns::SnapshotStore adns;
  adns.add(scanner.scan(Date::parse("2022-08-01")));
  cloudflare.depart("migrator.com", Date::parse("2022-08-02"));
  adns.add(scanner.scan(Date::parse("2022-08-02")));

  // --- CRL collection ---
  revocation::CrlCollector collector(5);
  collector.add_endpoint({"Commercial", "http://crl.commercial.example/ca.crl",
                          [&commercial](Date d) {
                            return std::optional(commercial.crl_at(d).to_der());
                          }});
  collector.collect_daily(Date::parse("2022-09-01"));

  // --- CT download + detection ---
  core::CertificateCorpus corpus(logs.collect());
  EXPECT_GE(corpus.size(), 3u);

  const auto revocation_result =
      core::analyze_revocations(corpus, collector.store(), {});
  ASSERT_EQ(revocation_result.key_compromise.size(), 1u);
  EXPECT_EQ(revocation_result.key_compromise[0].trigger_domain, "victim.com");
  EXPECT_EQ(revocation_result.key_compromise[0].event_date,
            Date::parse("2022-05-01"));

  const auto registrant_stale =
      core::detect_registrant_change(corpus, whois_db.re_registrations());
  ASSERT_EQ(registrant_stale.size(), 1u);
  EXPECT_EQ(registrant_stale[0].trigger_domain, "sold.com");
  EXPECT_EQ(registrant_stale[0].event_date, Date::parse("2022-07-15"));
  EXPECT_EQ(corpus.at(registrant_stale[0].corpus_index).serial(),
            sold_cert.serial());

  core::ManagedTlsOptions options;
  options.delegation_patterns = {"*.ns.cloudflare.com", "*.cdn.cloudflare.com"};
  options.managed_san_pattern = "sni*.cloudflaressl.com";
  const auto managed_stale =
      core::detect_managed_tls_departure(corpus, adns, options);
  ASSERT_EQ(managed_stale.size(), 1u);
  EXPECT_EQ(managed_stale[0].trigger_domain, "migrator.com");
  EXPECT_EQ(managed_stale[0].event_date, Date::parse("2022-08-02"));
  // The provider really does still hold that key (custody ground truth).
  EXPECT_TRUE(cloudflare.holds_key(corpus.at(managed_stale[0].corpus_index)));

  // --- Analysis + lifetime simulation ---
  std::vector<core::StaleCertificate> all_stale;
  all_stale.insert(all_stale.end(), revocation_result.key_compromise.begin(),
                   revocation_result.key_compromise.end());
  all_stale.insert(all_stale.end(), registrant_stale.begin(), registrant_stale.end());
  all_stale.insert(all_stale.end(), managed_stale.begin(), managed_stale.end());

  core::StalenessAnalyzer analyzer(corpus, all_stale);
  const auto summary =
      analyzer.summarize(Date::parse("2022-01-01"), Date::parse("2022-12-31"));
  EXPECT_EQ(summary.stale_certs, 3u);
  EXPECT_EQ(summary.stale_e2lds, 3u);

  const auto caps = core::simulate_caps(corpus, all_stale, {45, 90, 215});
  for (std::size_t i = 1; i < caps.size(); ++i) {
    EXPECT_LE(caps[i].staleness_days_reduction(),
              caps[i - 1].staleness_days_reduction());
  }
  EXPECT_GT(caps[0].staleness_days_reduction(), 0.0);
}

}  // namespace
}  // namespace stalecert
