// Attack replay: the final link in the paper's argument. Take stale
// certificates DETECTED by the measurement pipeline on a simulated world,
// arm an on-path attacker with the corresponding ground-truth keys, and
// confirm that mainstream TLS clients actually accept the impersonation —
// and that the non-holders cannot. Detection, custody ground truth, and
// handshake semantics must all line up for this test to pass.
#include <gtest/gtest.h>

#include "stalecert/core/pipeline.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/tls/interception.hpp"

namespace stalecert {
namespace {

class AttackReplayFixture : public ::testing::Test {
 protected:
  static sim::World& world() {
    static sim::World* instance = [] {
      auto* w = new sim::World(sim::small_test_config());
      w->run();
      return w;
    }();
    return *instance;
  }

  static const core::PipelineResult& pipeline() {
    static const core::PipelineResult* instance = [] {
      core::PipelineConfig config;
      config.delegation_patterns = world().cloudflare_delegation_patterns();
      config.managed_san_pattern = world().cloudflare_san_pattern();
      return new core::PipelineResult(core::run_pipeline(
          world().ct_logs(), world().crl_collection().store(),
          world().whois().re_registrations(), world().adns(), config));
    }();
    return *instance;
  }

  static tls::TrustStore world_roots() {
    tls::TrustStore trust;
    for (const auto& ca : world().cas()) trust.trust(ca->issuing_key().key_id());
    return trust;
  }
};

TEST_F(AttackReplayFixture, ManagedDepartureStaleCertsIntercept) {
  const auto& stale = pipeline().managed_departure;
  ASSERT_FALSE(stale.empty());
  const tls::TrustStore trust = world_roots();

  std::size_t replayed = 0;
  for (const auto& record : stale) {
    const auto& cert = pipeline().corpus.at(record.corpus_index);
    // Ground truth: the provider really holds this key.
    ASSERT_TRUE(world().cloudflare().holds_key(cert)) << record.trigger_domain;

    tls::InterceptionScenario scenario;
    scenario.description = "CDN impersonates departed customer";
    scenario.hostname = record.trigger_domain;
    scenario.stale_certificate = cert;
    scenario.when = record.event_date + record.staleness_days() / 2;
    scenario.attacker_holds_key = true;  // justified by the ledger check

    for (const auto& outcome :
         tls::run_interception(scenario, {tls::chrome(), tls::firefox()}, trust)) {
      EXPECT_TRUE(outcome.intercepted)
          << record.trigger_domain << " via " << outcome.client << ": "
          << outcome.reason;
    }
    ++replayed;
  }
  EXPECT_GT(replayed, 0u);
}

TEST_F(AttackReplayFixture, InterceptionDiesAtExpiry) {
  const auto& stale = pipeline().managed_departure;
  ASSERT_FALSE(stale.empty());
  const auto& record = stale.front();
  const auto& cert = pipeline().corpus.at(record.corpus_index);

  tls::InterceptionScenario scenario;
  scenario.description = "after expiry";
  scenario.hostname = record.trigger_domain;
  scenario.stale_certificate = cert;
  scenario.when = cert.not_after();  // the backstop
  const auto outcomes =
      tls::run_interception(scenario, tls::all_profiles(), world_roots());
  for (const auto& outcome : outcomes) {
    EXPECT_FALSE(outcome.intercepted) << outcome.client;
  }
}

TEST_F(AttackReplayFixture, KeyCompromiseStaleCertsInterceptUnderBlockedOcsp) {
  const auto& stale = pipeline().revocations.key_compromise;
  ASSERT_FALSE(stale.empty());
  const tls::TrustStore trust = world_roots();

  // Build per-issuer OCSP responders from the world's CRL state — the
  // realistic network the attacker must defeat.
  std::vector<std::unique_ptr<revocation::OcspResponder>> responders;
  for (const auto& ca : world().cas()) {
    auto responder =
        std::make_unique<revocation::OcspResponder>(ca->issuing_key().key_id());
    responder->update_from_crl(ca->crl_at(world().today()));
    responders.push_back(std::move(responder));
  }

  const auto& record = stale.front();
  const auto& cert = pipeline().corpus.at(record.corpus_index);
  const revocation::OcspResponder* responder = nullptr;
  for (const auto& r : responders) {
    if (r->issuer_key_id() == *cert.extensions().authority_key_id) {
      responder = r.get();
    }
  }
  ASSERT_NE(responder, nullptr);
  // Sanity: OCSP really says revoked.
  EXPECT_EQ(responder->query(cert.serial(), record.event_date + 1).status,
            revocation::CertStatus::kRevoked);

  tls::InterceptionScenario scenario;
  scenario.description = "compromised key, OCSP dropped";
  scenario.hostname = record.trigger_domain;
  scenario.stale_certificate = cert;
  scenario.when = record.event_date + 1;
  scenario.attacker_blocks_revocation = true;
  scenario.responder = responder;

  const auto outcomes =
      tls::run_interception(scenario, tls::all_profiles(), trust);
  std::size_t intercepted = 0;
  for (const auto& outcome : outcomes) {
    if (outcome.client == "hardened") {
      EXPECT_FALSE(outcome.intercepted);
    } else {
      EXPECT_TRUE(outcome.intercepted) << outcome.client << ": " << outcome.reason;
      ++intercepted;
    }
  }
  EXPECT_EQ(intercepted, 5u);

  // Flip: revocation reachable -> checking clients now refuse.
  scenario.attacker_blocks_revocation = false;
  for (const auto& outcome :
       tls::run_interception(scenario, {tls::firefox(), tls::safari()}, trust)) {
    EXPECT_FALSE(outcome.intercepted) << outcome.client;
  }
}

}  // namespace
}  // namespace stalecert
