// Fixture: query depending on core is the allowed direction; this edge
// exists so the core -> query edge in bad_dep.cpp closes a cycle.
#include "stalecert/core/taxonomy.hpp"

namespace stalecert::query {

int use_core() { return 2; }

}  // namespace stalecert::query
