// Fixture: core reaching UP into query — a layering violation, and since
// query legitimately depends on core, also an include cycle.
#include "stalecert/query/service.hpp"
#include "stalecert/util/mutex.hpp"

namespace stalecert::core {

int use_query() { return 1; }

}  // namespace stalecert::core
