// Fixture: raw std::mutex outside src/util — thread-safety analysis
// cannot see these locks, so the wrapper is mandatory.
#include <mutex>

namespace stalecert::feed {

std::mutex g_mutex;

int locked_read(const int& value) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  return value;
}

}  // namespace stalecert::feed
