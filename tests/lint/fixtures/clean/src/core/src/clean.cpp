// Fixture: a well-behaved core translation unit. Every rule passes:
// allowed includes only, EventLog-style logging left to callers, the
// annotated mutex wrapper, and no switches over enforced enums.
#include "stalecert/obs/event_log.hpp"
#include "stalecert/util/mutex.hpp"

namespace stalecert::core {

int answer() {
  // "std::cerr in a comment" and "std::mutex in a string" must not trip
  // the scanner: only code positions count.
  const char* text = "std::mutex std::cerr printf(";
  return text[0] == 's' ? 42 : 0;
}

}  // namespace stalecert::core
