// raw-socket fixture: a module outside src/net dialing a socket by hand.
#include <sys/socket.h>

namespace stalecert::query {

struct Dialer {
  int connect(int fd) { return fd; }  // a method named connect is fine
};

int open_raw() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);  // line 11: flagged
  ::connect(fd, nullptr, 0);                         // line 12: flagged
  const int peer = ::accept(fd, nullptr, nullptr);   // line 13: flagged
  Dialer dialer;
  dialer.connect(fd);  // member call: not flagged
  // The escape hatch for the rare legitimate case:
  ::socket(AF_INET, SOCK_DGRAM, 0);  // lint:allow(raw-socket) probe socket
  return peer;
}

struct Redialer {
  int connect(int fd);
};

// Qualified method definition — an identifier precedes the "::", so the
// rule must not mistake it for the libc call.
int Redialer::connect(int fd) { return fd; }

}  // namespace stalecert::query
