// Fixture: raw diagnostics in library code — both the stream and the
// stdio spellings must be flagged; the bounded snprintf must not be.
#include <cstdio>
#include <iostream>

namespace stalecert::query {

void noisy(int code) {
  std::cerr << "something went wrong: " << code << '\n';
  printf("also wrong: %d\n", code);
  fprintf(stderr, "still wrong: %d\n", code);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "fine: %d", code);  // not logging
}

void quiet(int code) {
  // lint:allow(raw-logging): fixture exercising the suppression marker.
  std::cerr << "deliberately allowed: " << code << '\n';
}

}  // namespace stalecert::query
