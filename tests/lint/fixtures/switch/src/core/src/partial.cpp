// Fixture: two broken switches over an enforced enum — one missing an
// enumerator, one hiding future enumerators behind a default — plus a
// correct exhaustive switch that must stay silent.
#include "stalecert/core/taxonomy.hpp"

namespace stalecert::core {

int missing_case(StaleClass c) {
  switch (c) {
    case StaleClass::kKeyCompromise:
      return 1;
    case StaleClass::kRegistrantChange:
      return 2;
  }
  return 0;
}

int default_hides_growth(StaleClass c) {
  switch (c) {
    case StaleClass::kKeyCompromise:
      return 1;
    case StaleClass::kRegistrantChange:
      return 2;
    case StaleClass::kManagedTlsDeparture:
      return 3;
    default:
      return 0;
  }
}

int exhaustive(StaleClass c) {
  switch (c) {
    case StaleClass::kKeyCompromise:
      return 1;
    case StaleClass::kRegistrantChange:
      return 2;
    case StaleClass::kManagedTlsDeparture:
      return 3;
  }
  return 0;
}

}  // namespace stalecert::core
