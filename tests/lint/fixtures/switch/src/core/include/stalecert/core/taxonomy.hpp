// Fixture copy of the StaleClass shape (three enumerators) so the switch
// rule can resolve the enum without scanning the real tree.
#pragma once

namespace stalecert::core {

enum class StaleClass {
  kKeyCompromise,
  kRegistrantChange,
  kManagedTlsDeparture,
};

}  // namespace stalecert::core
