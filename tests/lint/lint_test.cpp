// stalecert_lint: end-to-end tests. Each fixture under tests/lint/fixtures
// is a miniature repo tree; the suite spawns the real binary against it and
// asserts on exit status and diagnostics, then runs the linter over this
// repository itself — the committed tree must always lint clean.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

LintRun run_lint(const std::string& args) {
  const std::string command =
      std::string(STALECERT_LINT_BINARY) + " " + args + " 2>&1";
  LintRun run;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return run;
  std::array<char, 4096> buffer{};
  std::size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    run.output.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  run.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return run;
}

std::string fixture(const std::string& name) {
  return std::string(STALECERT_LINT_FIXTURES_DIR) + "/" + name;
}

TEST(LintTest, CleanFixturePasses) {
  const LintRun run = run_lint(fixture("clean"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(LintTest, LayeringViolationAndCycleAreReported) {
  const LintRun run = run_lint(fixture("layering"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/core/src/bad_dep.cpp:3: [layering] "
                            "module 'core' must not depend on 'query'"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("include cycle between modules: "
                            "core -> query -> core"),
            std::string::npos)
      << run.output;
}

TEST(LintTest, RawLoggingIsReportedButSnprintfAndAllowMarkerAreNot) {
  const LintRun run = run_lint(fixture("logging"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("noisy.cpp:9: [raw-logging] raw 'std::cerr'"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("noisy.cpp:10: [raw-logging] raw 'printf'"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("noisy.cpp:11: [raw-logging] raw 'fprintf'"),
            std::string::npos)
      << run.output;
  // std::snprintf is bounded formatting, not logging; and line 18 carries
  // a lint:allow(raw-logging) marker.
  EXPECT_EQ(run.output.find("snprintf"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find("noisy.cpp:18"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("3 violations"), std::string::npos) << run.output;
}

TEST(LintTest, RawMutexOutsideUtilIsReported) {
  const LintRun run = run_lint(fixture("mutex"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("locked.cpp:7: [raw-mutex] raw 'std::mutex'"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("locked.cpp:10: [raw-mutex] raw 'std::lock_guard'"),
            std::string::npos)
      << run.output;
}

TEST(LintTest, PartialAndDefaultedSwitchesAreReported) {
  const LintRun run = run_lint(fixture("switch"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("partial.cpp:9: [partial-switch] switch over "
                            "StaleClass is missing: kManagedTlsDeparture"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("partial.cpp:19: [partial-switch] switch over "
                            "StaleClass has a default label"),
            std::string::npos)
      << run.output;
  // The exhaustive switch further down must stay silent.
  EXPECT_EQ(run.output.find("partial.cpp:29"), std::string::npos)
      << run.output;
}

TEST(LintTest, RawSocketOutsideNetIsReported) {
  const LintRun run = run_lint(fixture("socket"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("dialer.cpp:11: [raw-socket] raw '::socket'"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("dialer.cpp:12: [raw-socket] raw '::connect'"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("dialer.cpp:13: [raw-socket] raw '::accept'"),
            std::string::npos)
      << run.output;
  // Methods named connect (declared or called) and the lint:allow escape
  // must stay silent.
  EXPECT_EQ(run.output.find("dialer.cpp:7"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find("dialer.cpp:15"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find("dialer.cpp:17"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("3 violations"), std::string::npos) << run.output;
}

TEST(LintTest, RuleFilterRunsOnlyTheNamedRule) {
  // The logging fixture has raw-logging violations but no raw-mutex ones,
  // so filtering to raw-mutex turns it clean.
  const LintRun run = run_lint("--rule raw-mutex " + fixture("logging"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintTest, ListRules) {
  const LintRun run = run_lint("--list-rules");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output,
            "layering\nraw-logging\nraw-mutex\nraw-socket\npartial-switch\n");
}

TEST(LintTest, UsageErrorsExitTwo) {
  EXPECT_EQ(run_lint("").exit_code, 2);
  EXPECT_EQ(run_lint("--bogus-flag .").exit_code, 2);
  EXPECT_EQ(run_lint(fixture("no-such-fixture")).exit_code, 2);
}

// The gate that matters: this repository's own tree must lint clean. A
// failure here means a change introduced a layering break, raw logging,
// a raw mutex, or a partial switch — fix the code (or, deliberately and
// with a written reason, add a lint:allow marker), don't relax the test.
TEST(LintTest, RealTreeIsClean) {
  const LintRun run = run_lint(std::string(STALECERT_LINT_REPO_ROOT));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

}  // namespace
