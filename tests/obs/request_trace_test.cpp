#include "stalecert/obs/request_trace.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace stalecert::obs {
namespace {

using std::chrono::microseconds;
using std::chrono::nanoseconds;

RequestTrace make_trace(std::uint64_t id, nanoseconds total,
                        const std::string& endpoint = "stale") {
  RequestTrace trace;
  trace.id = id;
  trace.endpoint = endpoint;
  trace.target = "/v1/" + endpoint;
  trace.status = 200;
  trace.total = total;
  return trace;
}

TEST(RequestTraceTest, AddSpanMergesRepeats) {
  RequestTrace trace;
  trace.add_span("lookup", microseconds(10));
  trace.add_span("serialize", microseconds(5));
  trace.add_span("lookup", microseconds(3));
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.spans[0].first, "lookup");
  EXPECT_EQ(trace.spans[0].second, microseconds(13));
  EXPECT_EQ(trace.span_sum(), microseconds(18));
}

TEST(RequestTraceTest, JsonHasSpanBreakdown) {
  RequestTrace trace = make_trace(42, microseconds(1500));
  trace.add_span("parse", microseconds(100));
  trace.add_span("lookup", microseconds(1200));
  const std::string json = to_json(trace);
  EXPECT_NE(json.find("\"id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"endpoint\":\"stale\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":200"), std::string::npos);
  EXPECT_NE(json.find("\"total_us\":1500"), std::string::npos);
  EXPECT_NE(json.find("\"parse\":100"), std::string::npos);
  EXPECT_NE(json.find("\"lookup\":1200"), std::string::npos);
}

TEST(SlowTraceRingTest, RetainsSlowestWhenFull) {
  SlowTraceRing ring(3);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    ring.offer(make_trace(i, microseconds(i * 100)));
  }
  const auto kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].id, 10u);
  EXPECT_EQ(kept[1].id, 9u);
  EXPECT_EQ(kept[2].id, 8u);
}

TEST(SlowTraceRingTest, FastRequestRejectedOnceFull) {
  SlowTraceRing ring(2);
  EXPECT_TRUE(ring.offer(make_trace(1, microseconds(500))));
  EXPECT_TRUE(ring.offer(make_trace(2, microseconds(400))));
  EXPECT_FALSE(ring.offer(make_trace(3, microseconds(100))));
  EXPECT_TRUE(ring.offer(make_trace(4, microseconds(600))));
  const auto kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].id, 4u);
  EXPECT_EQ(kept[1].id, 1u);
}

TEST(SlowTraceRingTest, AddLateSpanExtendsRetainedTrace) {
  SlowTraceRing ring(2);
  ring.offer(make_trace(7, microseconds(500)));
  ring.add_late_span(7, "write", microseconds(50));
  const auto kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].total, microseconds(550));
  ASSERT_EQ(kept[0].spans.size(), 1u);
  EXPECT_EQ(kept[0].spans[0].first, "write");
  // Unknown id: silently ignored.
  ring.add_late_span(999, "write", microseconds(1));
}

TEST(SlowTraceRingTest, StaleEntriesEvictedByRecency) {
  // Tiny recency window: after 8 admissions an old trace must be gone even
  // though nothing slower ever arrived.
  SlowTraceRing ring(2, 8);
  ring.offer(make_trace(1, std::chrono::seconds(10)));  // ancient outlier
  for (std::uint64_t i = 2; i <= 40; ++i) {
    ring.offer(make_trace(i, microseconds(10)));
  }
  const auto kept = ring.snapshot();
  for (const auto& trace : kept) EXPECT_NE(trace.id, 1u);
}

TEST(SlowTraceRingTest, OfferedCountsEveryRequest) {
  SlowTraceRing ring(1);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ring.offer(make_trace(i + 1, microseconds(10)));
  }
  EXPECT_EQ(ring.offered(), 5u);
}

// TSan-targeted: many threads offering while a reader snapshots.
TEST(SlowTraceRingConcurrencyTest, ConcurrentOffers) {
  SlowTraceRing ring(8);
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < 1000; ++i) {
        ring.offer(make_trace(static_cast<std::uint64_t>(t) * 10000 + i,
                              nanoseconds((i % 100) * 1000)));
      }
    });
  }
  std::thread reader([&ring] {
    for (int i = 0; i < 100; ++i) (void)ring.snapshot();
  });
  for (auto& worker : workers) worker.join();
  reader.join();
  EXPECT_EQ(ring.offered(), 8u * 1000u);
  EXPECT_LE(ring.snapshot().size(), 8u);
}

}  // namespace
}  // namespace stalecert::obs
