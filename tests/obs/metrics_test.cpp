#include "stalecert/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "stalecert/util/error.hpp"

namespace stalecert::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  Counter& c = registry.counter("stalecert_test_total");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, SameNameReturnsSameHandle) {
  MetricsRegistry registry;
  Counter& a = registry.counter("stalecert_test_total");
  Counter& b = registry.counter("stalecert_test_total");
  EXPECT_EQ(&a, &b);
}

TEST(CounterTest, DistinctLabelsAreDistinctSeries) {
  MetricsRegistry registry;
  Counter& a = registry.counter("stalecert_stage_total", {{"stage", "a"}});
  Counter& b = registry.counter("stalecert_stage_total", {{"stage", "b"}});
  EXPECT_NE(&a, &b);
  a.inc(1);
  b.inc(2);
  EXPECT_EQ(a.value(), 1u);
  EXPECT_EQ(b.value(), 2u);
}

TEST(CounterTest, InvalidNamesThrow) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter(""), LogicError);
  EXPECT_THROW(registry.counter("1starts_with_digit"), LogicError);
  EXPECT_THROW(registry.counter("has space"), LogicError);
  EXPECT_THROW(registry.counter("has-dash"), LogicError);
  EXPECT_NO_THROW(registry.counter("ok_name:with_colon_9"));
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter& c = registry.counter("stalecert_concurrent_total");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(CounterTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 200; ++i) {
        registry.counter("stalecert_shared_total").inc();
        registry.counter("stalecert_per_" + std::to_string(i) + "_total").inc();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.counter("stalecert_shared_total").value(),
            static_cast<std::uint64_t>(kThreads) * 200);
  EXPECT_EQ(registry.counter("stalecert_per_0_total").value(),
            static_cast<std::uint64_t>(kThreads));
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("stalecert_pool_size");
  g.set(10.0);
  g.add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
}

TEST(GaugeTest, ConcurrentAddsAreExact) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("stalecert_concurrent_gauge");
  constexpr int kThreads = 4;
  constexpr int kAdds = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kAdds; ++i) g.add(1.0);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kAdds);
}

TEST(HistogramTest, BucketBoundariesUseLeSemantics) {
  MetricsRegistry registry;
  HistogramMetric& h =
      registry.histogram("stalecert_days_seconds", {1.0, 2.0, 5.0});
  h.observe(0.5);   // le=1
  h.observe(1.0);   // le=1 (boundary counts in its own bucket)
  h.observe(1.001); // le=2
  h.observe(2.0);   // le=2
  h.observe(4.9);   // le=5
  h.observe(5.0);   // le=5
  h.observe(7.0);   // +Inf
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 2.0 + 4.9 + 5.0 + 7.0);
}

TEST(HistogramTest, RejectsBadBounds) {
  EXPECT_THROW(HistogramMetric({}), LogicError);
  EXPECT_THROW(HistogramMetric({2.0, 1.0}), LogicError);
  EXPECT_THROW(HistogramMetric({1.0, 1.0}), LogicError);
}

TEST(HistogramTest, ReregisterWithDifferentBucketsThrows) {
  MetricsRegistry registry;
  registry.histogram("stalecert_h_seconds", {1.0, 2.0});
  EXPECT_NO_THROW(registry.histogram("stalecert_h_seconds", {1.0, 2.0}));
  EXPECT_THROW(registry.histogram("stalecert_h_seconds", {1.0, 3.0}), LogicError);
}

TEST(HistogramTest, ConcurrentObservationsAreExact) {
  MetricsRegistry registry;
  HistogramMetric& h = registry.histogram("stalecert_c_seconds", {0.5});
  constexpr int kThreads = 4;
  constexpr int kObs = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObs; ++i) h.observe(t % 2 == 0 ? 0.25 : 0.75);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kObs);
  const auto counts = h.bucket_counts();
  EXPECT_EQ(counts[0], static_cast<std::uint64_t>(kThreads) / 2 * kObs);
  EXPECT_EQ(counts[1], static_cast<std::uint64_t>(kThreads) / 2 * kObs);
}

TEST(SnapshotTest, SnapshotIsIsolatedFromLaterUpdates) {
  MetricsRegistry registry;
  Counter& c = registry.counter("stalecert_iso_total");
  Gauge& g = registry.gauge("stalecert_iso_gauge");
  HistogramMetric& h = registry.histogram("stalecert_iso_seconds", {1.0});
  c.inc(5);
  g.set(3.0);
  h.observe(0.5);

  const MetricsSnapshot snap = registry.snapshot();
  c.inc(100);
  g.set(-1.0);
  h.observe(2.0);

  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 5u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 3.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].sum, 0.5);
  EXPECT_EQ(snap.histograms[0].bucket_counts, (std::vector<std::uint64_t>{1, 0}));
}

TEST(SnapshotTest, CapturesNamesLabelsAndHelp) {
  MetricsRegistry registry;
  registry.counter("stalecert_x_total", {{"stage", "collect"}}, "certs seen");
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "stalecert_x_total");
  ASSERT_EQ(snap.counters[0].labels.size(), 1u);
  EXPECT_EQ(snap.counters[0].labels[0].first, "stage");
  EXPECT_EQ(snap.counters[0].labels[0].second, "collect");
  EXPECT_EQ(snap.counters[0].help, "certs seen");
}

TEST(ScopedTimerTest, RecordsOneObservation) {
  MetricsRegistry registry;
  HistogramMetric& h = registry.histogram("stalecert_t_seconds", {10.0});
  {
    ScopedTimer timer(h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
  EXPECT_LT(h.sum(), 10.0);  // well under the 10s bound
}

}  // namespace
}  // namespace stalecert::obs
