#include "stalecert/obs/event_log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace stalecert::obs {
namespace {

TEST(LogLevelTest, RoundTripsNames) {
  EXPECT_EQ(to_string(LogLevel::kDebug), "debug");
  EXPECT_EQ(to_string(LogLevel::kInfo), "info");
  EXPECT_EQ(to_string(LogLevel::kWarn), "warn");
  EXPECT_EQ(to_string(LogLevel::kError), "error");
  for (const auto level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                           LogLevel::kError}) {
    EXPECT_EQ(parse_log_level(to_string(level)), level);
  }
}

TEST(LogLevelTest, ParseIsCaseInsensitiveAndAcceptsWarning) {
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("WARNING"), LogLevel::kWarn);
  EXPECT_FALSE(parse_log_level("loud").has_value());
  EXPECT_FALSE(parse_log_level("").has_value());
}

TEST(LogLevelTest, EnvFallback) {
  EXPECT_EQ(log_level_from_env(nullptr, LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(log_level_from_env("debug", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(log_level_from_env("nonsense", LogLevel::kWarn), LogLevel::kWarn);
}

TEST(EventLogTest, RetainsEventsInTail) {
  EventLog log;
  log.enable_stderr(false);
  log.info("first", {{"k", "v"}});
  log.warn("second");
  const auto events = log.tail(10);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].message, "first");
  EXPECT_EQ(events[0].level, LogLevel::kInfo);
  ASSERT_EQ(events[0].fields.size(), 1u);
  EXPECT_EQ(events[0].fields[0].first, "k");
  EXPECT_EQ(events[1].message, "second");
  EXPECT_LT(events[0].sequence, events[1].sequence);
  EXPECT_EQ(log.total_events(), 2u);
}

TEST(EventLogTest, LevelFiltersCheaply) {
  EventLog log;
  log.enable_stderr(false);
  log.set_level(LogLevel::kWarn);
  log.debug("dropped");
  log.info("dropped too");
  log.warn("kept");
  log.error("kept too");
  const auto events = log.tail(10);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].message, "kept");
  EXPECT_EQ(events[1].message, "kept too");
  EXPECT_EQ(log.total_events(), 2u);
}

TEST(EventLogTest, RingOverwritesOldestPerThread) {
  EventLog log(4);
  log.enable_stderr(false);
  for (int i = 0; i < 10; ++i) log.info("event " + std::to_string(i));
  const auto events = log.tail(100);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().message, "event 6");
  EXPECT_EQ(events.back().message, "event 9");
  EXPECT_EQ(log.total_events(), 10u);
}

TEST(EventLogTest, TailMergesThreadsBySequence) {
  EventLog log;
  log.enable_stderr(false);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < 8; ++i) {
        log.info("t" + std::to_string(t) + " e" + std::to_string(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto events = log.tail(1000);
  ASSERT_EQ(events.size(), 32u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].sequence, events[i].sequence);
  }
}

TEST(EventLogTest, JsonlSinkWritesOneObjectPerLine) {
  const std::string path =
      testing::TempDir() + "stalecert_event_log_test.jsonl";
  {
    EventLog log;
    log.enable_stderr(false);
    ASSERT_TRUE(log.open_jsonl(path));
    log.info("hello \"world\"", {{"key", "value"}});
    log.error("bad");
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(lines[0].find("hello \\\"world\\\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"key\":\"value\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"level\":\"error\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(EventLogTest, OpenJsonlFailsOnBadPath) {
  EventLog log;
  log.enable_stderr(false);
  EXPECT_FALSE(log.open_jsonl("/nonexistent-dir-zzz/x.jsonl"));
}

TEST(EventLogRenderTest, HumanFormat) {
  LogEvent event;
  event.level = LogLevel::kWarn;
  event.since_start = std::chrono::milliseconds(1234);
  event.message = "slow request";
  event.fields = {{"endpoint", "stale"}, {"total_us", "1500.0"}};
  const std::string line = to_human(event);
  EXPECT_NE(line.find("WARN"), std::string::npos);
  EXPECT_NE(line.find("slow request"), std::string::npos);
  EXPECT_NE(line.find("endpoint=stale"), std::string::npos);
  EXPECT_NE(line.find("total_us=1500.0"), std::string::npos);
}

TEST(EventLogRenderTest, JsonlFormatEscapes) {
  LogEvent event;
  event.message = "tab\there";
  event.fields = {{"path", "a\\b"}};
  const std::string line = to_jsonl(event);
  EXPECT_NE(line.find("tab\\there"), std::string::npos);
  EXPECT_NE(line.find("a\\\\b"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

// TSan-targeted: hammer one log from many threads while a reader tails.
TEST(EventLogConcurrencyTest, ConcurrentWritersAndReaders) {
  EventLog log(64);
  log.enable_stderr(false);
  std::vector<std::thread> writers;
  for (int t = 0; t < 8; ++t) {
    writers.emplace_back([&log, t] {
      for (int i = 0; i < 500; ++i) {
        log.info("w" + std::to_string(t), {{"i", std::to_string(i)}});
      }
    });
  }
  std::thread reader([&log] {
    for (int i = 0; i < 50; ++i) (void)log.tail(32);
  });
  for (auto& writer : writers) writer.join();
  reader.join();
  EXPECT_EQ(log.total_events(), 8u * 500u);
}

}  // namespace
}  // namespace stalecert::obs
