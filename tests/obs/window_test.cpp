#include "stalecert/obs/window.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "stalecert/obs/quantile.hpp"
#include "stalecert/util/error.hpp"

namespace stalecert::obs {
namespace {

using Clock = WindowedCounter::Clock;
using std::chrono::seconds;

// A fixed, arbitrary origin keeps the tests deterministic: every timestamp
// is an offset from it, so bucket-boundary behaviour is exact.
Clock::time_point origin() {
  return Clock::time_point(seconds(1'000'000));
}

TEST(WindowedCounterTest, SumsWithinWindow) {
  WindowedCounter counter(seconds(60), seconds(5));
  const auto t0 = origin();
  counter.add(3, t0);
  counter.add(2, t0 + seconds(1));
  EXPECT_EQ(counter.sum(seconds(60), t0 + seconds(1)), 5u);
  EXPECT_DOUBLE_EQ(counter.rate_per_second(seconds(60), t0 + seconds(1)),
                   5.0 / 60.0);
}

TEST(WindowedCounterTest, OldBucketsAgeOut) {
  WindowedCounter counter(seconds(60), seconds(5));
  const auto t0 = origin();
  counter.add(10, t0);
  EXPECT_EQ(counter.sum(seconds(60), t0), 10u);
  // Just inside the horizon the events still count...
  EXPECT_EQ(counter.sum(seconds(60), t0 + seconds(59)), 10u);
  // ...well past it they are gone.
  EXPECT_EQ(counter.sum(seconds(60), t0 + seconds(70)), 0u);
}

TEST(WindowedCounterTest, BucketRotationAtBoundary) {
  WindowedCounter counter(seconds(20), seconds(5));
  const auto t0 = origin();
  counter.add(1, t0);
  // Same 5 s bucket: accumulates.
  counter.add(1, t0 + seconds(4));
  // Next bucket.
  counter.add(1, t0 + seconds(5));
  EXPECT_EQ(counter.sum(seconds(20), t0 + seconds(5)), 3u);

  // Drive the clock far enough that the first bucket's slot is reused; its
  // old contents must not resurface.
  const auto later = t0 + seconds(60);
  counter.add(7, later);
  EXPECT_EQ(counter.sum(seconds(20), later), 7u);
}

TEST(WindowedCounterTest, NarrowWindowSeesOnlyRecentBuckets) {
  WindowedCounter counter(seconds(300), seconds(5));
  const auto t0 = origin();
  counter.add(100, t0);
  counter.add(1, t0 + seconds(100));
  EXPECT_EQ(counter.sum(seconds(30), t0 + seconds(100)), 1u);
  EXPECT_EQ(counter.sum(seconds(300), t0 + seconds(100)), 101u);
}

TEST(WindowedCounterTest, WindowClampedToHorizon) {
  WindowedCounter counter(seconds(20), seconds(5));
  const auto t0 = origin();
  counter.add(4, t0);
  // Asking for more than the horizon cannot resurrect aged-out data.
  EXPECT_EQ(counter.sum(seconds(600), t0 + seconds(2)), 4u);
  EXPECT_EQ(counter.sum(seconds(600), t0 + seconds(100)), 0u);
}

TEST(WindowedHistogramTest, SnapshotWorksWithQuantiles) {
  WindowedHistogram histogram({0.001, 0.01, 0.1, 1.0}, seconds(60), seconds(5));
  const auto t0 = origin();
  for (int i = 0; i < 90; ++i) histogram.observe(0.005, t0);
  for (int i = 0; i < 10; ++i) histogram.observe(0.5, t0);
  const auto sample = histogram.snapshot(seconds(60), t0);
  EXPECT_EQ(sample.count, 100u);
  EXPECT_NEAR(sample.sum, 90 * 0.005 + 10 * 0.5, 1e-9);
  const double p50 = histogram_quantile(sample, 0.50);
  EXPECT_GT(p50, 0.001);
  EXPECT_LE(p50, 0.01);
  const double p99 = histogram_quantile(sample, 0.99);
  EXPECT_GT(p99, 0.1);
  EXPECT_LE(p99, 1.0);
}

TEST(WindowedHistogramTest, SlicesAgeOut) {
  WindowedHistogram histogram({0.001, 0.01, 0.1, 1.0}, seconds(60), seconds(5));
  const auto t0 = origin();
  histogram.observe(0.005, t0);
  EXPECT_EQ(histogram.snapshot(seconds(60), t0).count, 1u);
  EXPECT_EQ(histogram.snapshot(seconds(60), t0 + seconds(120)).count, 0u);
}

// The windowed histogram and the lifetime HistogramMetric must agree on
// quantiles when fed the same values inside one window (same bounds, same
// bucket semantics, same interpolation).
TEST(WindowedHistogramTest, QuantilesAgreeWithLifetimeHistogram) {
  const std::vector<double> bounds = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1};
  WindowedHistogram windowed(bounds, seconds(60), seconds(5));
  HistogramMetric lifetime(bounds);
  const auto t0 = origin();
  const std::vector<double> values = {2e-6, 5e-6, 3e-5,  8e-5, 2e-4,
                                      7e-4, 4e-3, 2e-2, 9e-2, 5e-1};
  for (double v : values) {
    windowed.observe(v, t0);
    lifetime.observe(v);
  }

  HistogramSample lifetime_sample;
  lifetime_sample.upper_bounds = lifetime.upper_bounds();
  lifetime_sample.bucket_counts = lifetime.bucket_counts();
  lifetime_sample.sum = lifetime.sum();
  lifetime_sample.count = lifetime.count();

  const auto windowed_sample = windowed.snapshot(seconds(60), t0);
  ASSERT_EQ(windowed_sample.count, lifetime_sample.count);
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(histogram_quantile(windowed_sample, q),
                     histogram_quantile(lifetime_sample, q))
        << "q=" << q;
  }
  const auto ws = summarize_histogram(windowed_sample);
  const auto ls = summarize_histogram(lifetime_sample);
  EXPECT_DOUBLE_EQ(ws.p50, ls.p50);
  EXPECT_DOUBLE_EQ(ws.p99, ls.p99);
}

TEST(WindowedHistogramTest, RejectsBadBounds) {
  EXPECT_THROW(WindowedHistogram({}), LogicError);
  EXPECT_THROW(WindowedHistogram({1.0, 0.5}), LogicError);
  EXPECT_THROW(WindowedHistogram({1.0, 1.0}), LogicError);
}

// TSan-targeted: concurrent writers on both window types while a reader
// snapshots; rotation CAS must never race into undefined behaviour.
TEST(WindowConcurrencyTest, ConcurrentWritersAndReaders) {
  WindowedCounter counter(seconds(60), seconds(5));
  WindowedHistogram histogram({1e-4, 1e-3, 1e-2}, seconds(60), seconds(5));
  std::vector<std::thread> writers;
  for (int t = 0; t < 8; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        counter.add(1);
        histogram.observe(1e-3);
      }
    });
  }
  std::thread reader([&] {
    for (int i = 0; i < 200; ++i) {
      (void)counter.sum(seconds(60));
      (void)histogram.snapshot(seconds(60));
    }
  });
  for (auto& writer : writers) writer.join();
  reader.join();
  // All writes land in the current live bucket (no rotation mid-test on any
  // sane scheduler), so nothing should be lost here; allow the documented
  // rotation-race slack anyway rather than flake on a pathological pause.
  EXPECT_LE(counter.sum(seconds(60)), 8u * 2000u);
  EXPECT_GE(counter.sum(seconds(60)), 8u * 2000u - 200u);
  EXPECT_LE(histogram.snapshot(seconds(60)).count, 8u * 2000u);
}

}  // namespace
}  // namespace stalecert::obs
