#include "stalecert/obs/trace_export.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "stalecert/obs/span.hpp"

namespace stalecert::obs {
namespace {

using std::chrono::milliseconds;

TEST(ChromeTraceTest, EmptyTrace) {
  Trace trace;
  EXPECT_EQ(to_chrome_trace(trace),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

TEST(ChromeTraceTest, CompleteEventsWithCounters) {
  Trace trace;
  trace.begin_span("pipeline");
  trace.count("certificates", 120);
  trace.begin_span("collect");
  trace.end_span(milliseconds(10));
  trace.end_span(milliseconds(30));

  const std::string json = to_chrome_trace(trace);
  EXPECT_NE(json.find("\"name\":\"pipeline\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"collect\""), std::string::npos);
  // Complete ("X") events with microsecond durations.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":30000.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":10000.000"), std::string::npos);
  // Counters ride along in args.
  EXPECT_NE(json.find("\"certificates\":120"), std::string::npos);
  // Valid top-level envelope for chrome://tracing / Perfetto.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(ChromeTraceTest, SpanStartOffsetsAreOnSharedTimeline) {
  Trace trace;
  trace.begin_span("first");
  trace.end_span(milliseconds(1));
  trace.begin_span("second");
  trace.end_span(milliseconds(1));

  const auto& spans = trace.spans();
  ASSERT_EQ(spans.size(), 2u);
  // The first span anchors the timeline at zero; later spans start after it.
  EXPECT_EQ(spans[0].start_offset.count(), 0);
  EXPECT_GE(spans[1].start_offset.count(), 0);
  EXPECT_NE(to_chrome_trace(trace).find("\"ts\":0.000"), std::string::npos);
}

}  // namespace
}  // namespace stalecert::obs
