// Integration: run the simulator + full pipeline under a
// MetricsPipelineObserver and check that (a) the reported funnel counters
// are internally consistent and agree with the returned results, (b) an
// unobserved run produces byte-identical detections, and (c) the whole
// registry serializes to both exposition formats.
#include <gtest/gtest.h>

#include <map>

#include "stalecert/core/pipeline.hpp"
#include "stalecert/obs/exposition.hpp"
#include "stalecert/obs/observer.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/store/archive.hpp"

namespace stalecert {
namespace {

std::map<std::string, std::uint64_t> counters_by_name(
    const obs::MetricsSnapshot& snapshot) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& counter : snapshot.counters) out[counter.name] = counter.value;
  return out;
}

struct SurveyRun {
  sim::WorldConfig config;
  core::PipelineResult result;
};

core::PipelineResult run_survey(const sim::WorldConfig& config,
                                obs::PipelineObserver* observer) {
  sim::World world(config);
  world.set_observer(observer);
  world.run();
  core::PipelineConfig pipeline_config;
  pipeline_config.revocation_cutoff = config.revocation_cutoff;
  pipeline_config.delegation_patterns = world.cloudflare_delegation_patterns();
  pipeline_config.managed_san_pattern = world.cloudflare_san_pattern();
  pipeline_config.observer = observer;
  return core::run_pipeline(world.ct_logs(), world.crl_collection().store(),
                            world.whois().re_registrations(), world.adns(),
                            pipeline_config);
}

TEST(ObserverPipelineTest, FunnelCountersAreInternallyConsistent) {
  obs::MetricsPipelineObserver telemetry;
  const sim::WorldConfig config = sim::small_test_config();
  const auto result = run_survey(config, &telemetry);

  const auto counters = counters_by_name(telemetry.registry().snapshot());
  auto at = [&](const std::string& name) {
    const auto it = counters.find(name);
    EXPECT_NE(it, counters.end()) << "missing counter " << name;
    return it == counters.end() ? 0 : it->second;
  };

  // CT collection funnel: every raw entry is accounted for.
  EXPECT_EQ(at("stalecert_ct_collect_entries_raw_total"),
            at("stalecert_ct_collect_corpus_total") +
                at("stalecert_ct_collect_dropped_duplicates_total") +
                at("stalecert_ct_collect_dropped_anomalous_total"));
  EXPECT_EQ(at("stalecert_ct_collect_corpus_total"), result.corpus.size());
  EXPECT_EQ(at("stalecert_ct_collect_entries_raw_total"),
            result.collect_stats.raw_entries);

  // Revocation join funnel matches JoinStats exactly.
  const auto& join = result.revocations.join_stats;
  EXPECT_EQ(at("stalecert_revocation_join_matched_total"),
            at("stalecert_revocation_join_kept_total") +
                at("stalecert_revocation_join_dropped_before_valid_total") +
                at("stalecert_revocation_join_dropped_after_expiry_total") +
                at("stalecert_revocation_join_dropped_before_cutoff_total"));
  EXPECT_EQ(at("stalecert_revocation_join_matched_total"), join.matched);
  EXPECT_EQ(at("stalecert_revocation_join_kept_total"), join.kept);
  EXPECT_EQ(at("stalecert_revocation_join_stale_key_compromise_total"),
            result.revocations.key_compromise.size());

  // WHOIS candidate funnel.
  EXPECT_EQ(at("stalecert_registrant_change_candidate_certs_total"),
            at("stalecert_registrant_change_stale_found_total") +
                at("stalecert_registrant_change_rejected_outside_validity_total"));
  EXPECT_EQ(at("stalecert_registrant_change_stale_found_total"),
            result.registrant_change.size());

  // aDNS departure funnel.
  EXPECT_EQ(at("stalecert_managed_departure_candidate_certs_total"),
            at("stalecert_managed_departure_stale_found_total") +
                at("stalecert_managed_departure_rejected_expired_total") +
                at("stalecert_managed_departure_rejected_name_mismatch_total") +
                at("stalecert_managed_departure_rejected_unmanaged_total") +
                at("stalecert_managed_departure_rejected_duplicate_total"));
  EXPECT_EQ(at("stalecert_managed_departure_stale_found_total"),
            result.managed_departure.size());

  // Pipeline roll-up covers all three detector classes.
  EXPECT_EQ(at("stalecert_pipeline_stale_key_compromise_total"),
            result.revocations.key_compromise.size());
  EXPECT_EQ(at("stalecert_pipeline_stale_registrant_change_total"),
            result.registrant_change.size());
  EXPECT_EQ(at("stalecert_pipeline_stale_managed_departure_total"),
            result.managed_departure.size());
  EXPECT_EQ(at("stalecert_pipeline_stale_total"),
            result.all_third_party().size());

  // Simulator ground truth flows through the observer too.
  EXPECT_GT(at("stalecert_sim_run_days_simulated_total"), 0u);
  EXPECT_EQ(at("stalecert_sim_run_days_simulated_total"),
            static_cast<std::uint64_t>(config.end - config.start) + 1);
  EXPECT_GT(at("stalecert_sim_run_certificates_issued_total"), 0u);
}

TEST(ObserverPipelineTest, TraceNestsStagesUnderPipeline) {
  obs::MetricsPipelineObserver telemetry;
  run_survey(sim::small_test_config(), &telemetry);

  const auto& spans = telemetry.trace().spans();
  ASSERT_GE(spans.size(), 5u);
  std::size_t pipeline_index = obs::Trace::npos;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name == "pipeline") pipeline_index = i;
  }
  ASSERT_NE(pipeline_index, obs::Trace::npos);
  // All four stage spans hang off the pipeline span.
  for (const char* stage : {"ct_collect", "revocation_join", "registrant_change",
                            "managed_departure"}) {
    bool found = false;
    for (const auto& span : spans) {
      if (span.name == stage && span.parent == pipeline_index) found = true;
    }
    EXPECT_TRUE(found) << "missing child span " << stage;
  }
  // sim_run is a root span (not inside the pipeline).
  bool sim_found = false;
  for (const auto& span : spans) {
    if (span.name == "sim_run") {
      sim_found = true;
      EXPECT_EQ(span.parent, obs::Trace::npos);
    }
    EXPECT_TRUE(span.closed);
  }
  EXPECT_TRUE(sim_found);
}

TEST(ObserverPipelineTest, NullObserverProducesIdenticalResults) {
  const sim::WorldConfig config = sim::small_test_config();
  obs::MetricsPipelineObserver telemetry;
  const auto observed = run_survey(config, &telemetry);
  const auto unobserved = run_survey(config, nullptr);

  ASSERT_EQ(observed.corpus.size(), unobserved.corpus.size());
  ASSERT_EQ(observed.revocations.key_compromise.size(),
            unobserved.revocations.key_compromise.size());
  ASSERT_EQ(observed.registrant_change.size(), unobserved.registrant_change.size());
  ASSERT_EQ(observed.managed_departure.size(), unobserved.managed_departure.size());
  for (const auto cls : core::kAllStaleClasses) {
    const auto& a = observed.of(cls);
    const auto& b = unobserved.of(cls);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].corpus_index, b[i].corpus_index);
      EXPECT_EQ(a[i].event_date, b[i].event_date);
      EXPECT_EQ(a[i].trigger_domain, b[i].trigger_domain);
      EXPECT_EQ(a[i].staleness_days(), b[i].staleness_days());
    }
  }
}

TEST(ObserverPipelineTest, ArchiveRoundTripPreservesStaleSetsAndFunnels) {
  // Generate-once / analyze-many must be invisible to the measurement: the
  // pipeline over a reloaded .scw archive produces the same stale sets and
  // reports the same funnel counters as the pipeline over the live world.
  const sim::WorldConfig config = sim::small_test_config();
  const std::string path = ::testing::TempDir() + "observer_roundtrip.scw";

  obs::MetricsPipelineObserver live_telemetry;
  sim::World world(config);
  world.run();
  store::save_world(world, path, nullptr, "small");

  core::PipelineConfig pipeline_config;
  pipeline_config.revocation_cutoff = config.revocation_cutoff;
  pipeline_config.delegation_patterns = world.cloudflare_delegation_patterns();
  pipeline_config.managed_san_pattern = world.cloudflare_san_pattern();
  pipeline_config.observer = &live_telemetry;
  const auto live = core::run_pipeline(
      world.ct_logs(), world.crl_collection().store(),
      world.whois().re_registrations(), world.adns(), pipeline_config);

  obs::MetricsPipelineObserver loaded_telemetry;
  const store::LoadedWorld loaded = store::load_world(path);
  pipeline_config.observer = &loaded_telemetry;
  const auto replayed = core::run_pipeline(loaded.ct_logs, loaded.revocations,
                                           loaded.re_registrations(),
                                           loaded.adns, pipeline_config);

  // Identical stale sets, member by member.
  for (const auto cls : core::kAllStaleClasses) {
    const auto& a = live.of(cls);
    const auto& b = replayed.of(cls);
    ASSERT_EQ(b.size(), a.size()) << to_string(cls);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(b[i].corpus_index, a[i].corpus_index);
      EXPECT_EQ(b[i].event_date, a[i].event_date);
      EXPECT_EQ(b[i].trigger_domain, a[i].trigger_domain);
    }
  }

  // Identical pipeline funnel counters. Both registries hold only pipeline
  // stages here (sim_run was unobserved, store_load reported elsewhere), so
  // the counter maps must match exactly.
  const auto live_counters = counters_by_name(live_telemetry.registry().snapshot());
  const auto loaded_counters =
      counters_by_name(loaded_telemetry.registry().snapshot());
  EXPECT_EQ(live_counters, loaded_counters);
}

TEST(ObserverPipelineTest, RegistrySerializesToBothFormats) {
  obs::MetricsPipelineObserver telemetry;
  run_survey(sim::small_test_config(), &telemetry);

  const auto snapshot = telemetry.registry().snapshot();
  const std::string prom = obs::to_prometheus(snapshot);
  EXPECT_NE(prom.find("# TYPE stalecert_stage_duration_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("stalecert_ct_collect_entries_raw_total "), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);

  const std::string json = telemetry.report_json();
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(json.find("\"trace\":"), std::string::npos);
  EXPECT_NE(json.find("duration_seconds"), std::string::npos);
}

}  // namespace
}  // namespace stalecert
