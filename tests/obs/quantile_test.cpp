// histogram_quantile / summarize_histogram: Prometheus-style quantile
// estimation over bucketed samples.
#include <gtest/gtest.h>

#include "stalecert/obs/quantile.hpp"
#include "stalecert/util/error.hpp"

namespace stalecert::obs {
namespace {

HistogramSample make_sample(std::vector<double> bounds,
                            std::vector<std::uint64_t> counts, double sum = 0.0) {
  HistogramSample sample;
  sample.upper_bounds = std::move(bounds);
  sample.bucket_counts = std::move(counts);
  for (const auto c : sample.bucket_counts) sample.count += c;
  sample.sum = sum;
  return sample;
}

TEST(HistogramQuantileTest, EmptyHistogramIsZero) {
  EXPECT_EQ(histogram_quantile(make_sample({1.0, 2.0}, {0, 0, 0}), 0.5), 0.0);
}

TEST(HistogramQuantileTest, RejectsOutOfRangeQuantiles) {
  const auto sample = make_sample({1.0}, {1, 0});
  // void-cast: the [[nodiscard]] result is irrelevant when asserting throws.
  EXPECT_THROW((void)histogram_quantile(sample, -0.1), LogicError);
  EXPECT_THROW((void)histogram_quantile(sample, 1.1), LogicError);
}

TEST(HistogramQuantileTest, InterpolatesWithinTheCrossingBucket) {
  // 10 observations in (1, 2]: the median interpolates to the middle.
  const auto sample = make_sample({1.0, 2.0}, {0, 10, 0});
  EXPECT_DOUBLE_EQ(histogram_quantile(sample, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(histogram_quantile(sample, 1.0), 2.0);
}

TEST(HistogramQuantileTest, LowestBucketInterpolatesFromZero) {
  const auto sample = make_sample({4.0}, {8, 0});
  EXPECT_DOUBLE_EQ(histogram_quantile(sample, 0.5), 2.0);
}

TEST(HistogramQuantileTest, SpansBucketsAtTheRightRanks) {
  // 5 in (0,1], 5 in (1,2]: p50 lands exactly on the first bucket edge.
  const auto sample = make_sample({1.0, 2.0}, {5, 5, 0});
  EXPECT_DOUBLE_EQ(histogram_quantile(sample, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(sample, 0.75), 1.5);
}

TEST(HistogramQuantileTest, InfBucketClampsToLargestFiniteBound) {
  const auto sample = make_sample({1.0, 2.0}, {1, 1, 8});
  EXPECT_DOUBLE_EQ(histogram_quantile(sample, 0.99), 2.0);
}

TEST(SummarizeHistogramTest, SummaryCarriesCountSumAndQuantiles) {
  const auto summary = summarize_histogram(make_sample({1.0, 2.0}, {0, 10, 0}, 15.0));
  EXPECT_EQ(summary.count, 10u);
  EXPECT_DOUBLE_EQ(summary.sum, 15.0);
  EXPECT_DOUBLE_EQ(summary.mean(), 1.5);
  EXPECT_DOUBLE_EQ(summary.p50, 1.5);
  EXPECT_DOUBLE_EQ(summary.p90, 1.9);
  EXPECT_DOUBLE_EQ(summary.p99, 1.99);
}

TEST(SummarizeHistogramTest, LiveMetricSnapshotMatchesManualSample) {
  HistogramMetric metric({1.0, 2.0, 4.0});
  for (int i = 0; i < 4; ++i) metric.observe(0.5);
  for (int i = 0; i < 4; ++i) metric.observe(1.5);
  const auto summary = summarize_histogram(metric);
  EXPECT_EQ(summary.count, 8u);
  EXPECT_DOUBLE_EQ(summary.p50, 1.0);
  EXPECT_GT(summary.p99, 1.0);
}

TEST(SummarizeHistogramTest, EmptyMetricSummarizesToZeros) {
  const HistogramMetric metric({1.0});
  const auto summary = summarize_histogram(metric);
  EXPECT_EQ(summary.count, 0u);
  EXPECT_EQ(summary.p50, 0.0);
  EXPECT_EQ(summary.mean(), 0.0);
}

}  // namespace
}  // namespace stalecert::obs
