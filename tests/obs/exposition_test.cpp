#include "stalecert/obs/exposition.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <string>
#include <string_view>

#include "stalecert/obs/observer.hpp"

namespace stalecert::obs {
namespace {

// --- Minimal JSON syntax checker (no external deps) ----------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* expected) {
    const std::string_view word(expected);
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Every non-comment Prometheus line must be `name{labels} value` or
/// `name value` with a parseable value.
bool valid_prometheus(const std::string& text) {
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) return false;  // must end with newline
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) return false;
    if (line[0] == '#') {
      if (line.rfind("# HELP ", 0) != 0 && line.rfind("# TYPE ", 0) != 0) {
        return false;
      }
      continue;
    }
    // Split the sample into metric part and value part at the LAST space
    // (label values may themselves contain escaped content, but never an
    // unescaped space outside quotes in our serializer's output).
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) return false;
    const std::string metric = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    // Metric: name plus optional {..} block.
    const std::size_t brace = metric.find('{');
    const std::string name = metric.substr(0, brace);
    if (name.empty()) return false;
    for (const char c : name) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':')) {
        return false;
      }
    }
    if (brace != std::string::npos && metric.back() != '}') return false;
    if (value.empty()) return false;
    if (value != "+Inf" && value != "-Inf" && value != "NaN") {
      char* parse_end = nullptr;
      std::strtod(value.c_str(), &parse_end);
      if (parse_end == nullptr || *parse_end != '\0') return false;
    }
  }
  return true;
}

MetricsRegistry& populated_registry(MetricsRegistry& registry) {
  registry.counter("stalecert_ct_collect_entries_raw_total", {}, "raw CT entries")
      .inc(1000);
  registry.counter("stalecert_ct_collect_corpus_total").inc(800);
  registry
      .counter("stalecert_stage_events_total", {{"stage", "registrant_change"}})
      .inc(5);
  registry.gauge("stalecert_pipeline_corpus_certs", {}, "corpus size").set(800.0);
  auto& h = registry.histogram("stalecert_stage_duration_seconds",
                               {0.001, 0.01, 0.1, 1.0},
                               {{"stage", "ct_collect"}}, "stage wall-clock");
  h.observe(0.0005);
  h.observe(0.05);
  h.observe(2.0);
  return registry;
}

TEST(PrometheusExpositionTest, EmitsValidTextFormat) {
  MetricsRegistry registry;
  const std::string text = to_prometheus(populated_registry(registry).snapshot());
  EXPECT_TRUE(valid_prometheus(text)) << text;
  EXPECT_NE(text.find("# TYPE stalecert_ct_collect_entries_raw_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP stalecert_ct_collect_entries_raw_total raw CT entries"),
            std::string::npos);
  EXPECT_NE(text.find("stalecert_ct_collect_entries_raw_total 1000"),
            std::string::npos);
  EXPECT_NE(text.find("stalecert_stage_events_total{stage=\"registrant_change\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE stalecert_pipeline_corpus_certs gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE stalecert_stage_duration_seconds histogram"),
            std::string::npos);
}

TEST(PrometheusExpositionTest, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  const std::string text = to_prometheus(populated_registry(registry).snapshot());
  EXPECT_NE(
      text.find(
          "stalecert_stage_duration_seconds_bucket{stage=\"ct_collect\",le=\"0.001\"} 1"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "stalecert_stage_duration_seconds_bucket{stage=\"ct_collect\",le=\"0.1\"} 2"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "stalecert_stage_duration_seconds_bucket{stage=\"ct_collect\",le=\"+Inf\"} 3"),
      std::string::npos);
  EXPECT_NE(text.find("stalecert_stage_duration_seconds_count{stage=\"ct_collect\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("stalecert_stage_duration_seconds_sum{stage=\"ct_collect\"}"),
            std::string::npos);
}

TEST(PrometheusExpositionTest, EscapesLabelValues) {
  MetricsRegistry registry;
  registry.counter("stalecert_esc_total", {{"stage", "a\"b\\c\nd"}}).inc();
  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find(R"(stage="a\"b\\c\nd")"), std::string::npos);
  EXPECT_TRUE(valid_prometheus(text)) << text;
}

TEST(JsonExpositionTest, EmitsValidJson) {
  MetricsRegistry registry;
  const std::string json = to_json(populated_registry(registry).snapshot());
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  EXPECT_NE(json.find("\"name\":\"stalecert_ct_collect_entries_raw_total\""),
            std::string::npos);
  EXPECT_NE(json.find("\"value\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"labels\":{\"stage\":\"registrant_change\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"le\":\"+Inf\""), std::string::npos);
}

TEST(JsonExpositionTest, EmptySnapshotIsValid) {
  MetricsRegistry registry;
  const std::string json = to_json(registry.snapshot());
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  EXPECT_EQ(json, "{\"counters\":[],\"gauges\":[],\"histograms\":[]}");
}

TEST(JsonExpositionTest, ObserverReportJsonIsValid) {
  MetricsPipelineObserver observer;
  {
    const StageScope outer(&observer, "pipeline");
    const StageScope inner(&observer, "ct_collect");
    inner.count("corpus", 3);
  }
  const std::string json = observer.report_json();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(json.find("\"trace\":"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"ct_collect\""), std::string::npos);
}

}  // namespace
}  // namespace stalecert::obs
