#include "stalecert/obs/span.hpp"

#include <gtest/gtest.h>

#include "stalecert/obs/observer.hpp"
#include "stalecert/util/error.hpp"

namespace stalecert::obs {
namespace {

using std::chrono::nanoseconds;

TEST(TraceTest, BuildsParentChildStructure) {
  Trace trace;
  const std::size_t root = trace.begin_span("pipeline");
  const std::size_t child_a = trace.begin_span("ct_collect");
  trace.end_span(nanoseconds(1000));
  const std::size_t child_b = trace.begin_span("revocation_join");
  const std::size_t grandchild = trace.begin_span("crl_fetch");
  trace.end_span(nanoseconds(10));
  trace.end_span(nanoseconds(500));
  trace.end_span(nanoseconds(2000));

  const auto& spans = trace.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[root].parent, Trace::npos);
  EXPECT_EQ(spans[root].depth, 0u);
  EXPECT_EQ(spans[child_a].parent, root);
  EXPECT_EQ(spans[child_a].depth, 1u);
  EXPECT_EQ(spans[child_b].parent, root);
  EXPECT_EQ(spans[grandchild].parent, child_b);
  EXPECT_EQ(spans[grandchild].depth, 2u);
  for (const auto& span : spans) EXPECT_TRUE(span.closed);
  EXPECT_EQ(spans[root].duration, nanoseconds(2000));
  EXPECT_EQ(trace.open_depth(), 0u);
}

TEST(TraceTest, CountersAttachToInnermostOpenSpan) {
  Trace trace;
  trace.begin_span("outer");
  trace.count("outer_things", 1);
  trace.begin_span("inner");
  trace.count("inner_things", 2);
  trace.count("inner_things", 3);  // merges
  trace.end_span(nanoseconds(1));
  trace.count("outer_things", 4);
  trace.end_span(nanoseconds(2));

  const auto& spans = trace.spans();
  ASSERT_EQ(spans.size(), 2u);
  ASSERT_EQ(spans[0].counters.size(), 1u);
  EXPECT_EQ(spans[0].counters[0].first, "outer_things");
  EXPECT_EQ(spans[0].counters[0].second, 5u);
  ASSERT_EQ(spans[1].counters.size(), 1u);
  EXPECT_EQ(spans[1].counters[0].first, "inner_things");
  EXPECT_EQ(spans[1].counters[0].second, 5u);
}

TEST(TraceTest, EndWithoutOpenSpanThrows) {
  Trace trace;
  EXPECT_THROW(trace.end_span(nanoseconds(1)), LogicError);
}

TEST(TraceTest, RenderShowsHierarchyAndCounters) {
  Trace trace;
  trace.begin_span("pipeline");
  trace.begin_span("ct_collect");
  trace.count("corpus", 7);
  trace.end_span(nanoseconds(1500000));  // 1.5 ms
  trace.end_span(nanoseconds(3000000));

  const std::string rendered = trace.render();
  EXPECT_NE(rendered.find("pipeline"), std::string::npos);
  EXPECT_NE(rendered.find("  ct_collect"), std::string::npos);  // indented
  EXPECT_NE(rendered.find("corpus=7"), std::string::npos);
  EXPECT_NE(rendered.find("1.500 ms"), std::string::npos);
}

TEST(TraceTest, ToJsonContainsSpansAndCounters) {
  Trace trace;
  trace.begin_span("pipeline");
  trace.count("stale_total", 3);
  trace.end_span(nanoseconds(1000000));

  const std::string json = to_json(trace);
  EXPECT_NE(json.find("\"name\":\"pipeline\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\":null"), std::string::npos);
  EXPECT_NE(json.find("\"stale_total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"duration_seconds\":0.001"), std::string::npos);
}

TEST(StageScopeTest, NullObserverIsNoop) {
  // Must not crash nor allocate observer state.
  const StageScope scope(nullptr, "stage");
  scope.count("things", 1);
  scope.gauge("level", 2.0);
  EXPECT_FALSE(scope.enabled());
}

TEST(StageScopeTest, NullObserverSingletonIgnoresEverything) {
  PipelineObserver& null_obs = null_observer();
  null_obs.on_stage_start("x");
  null_obs.on_count("x", "c", 1);
  null_obs.on_gauge("x", "g", 1.0);
  null_obs.on_stage_end("x", nanoseconds(1));
}

TEST(StageScopeTest, DrivesMetricsPipelineObserver) {
  MetricsPipelineObserver observer;
  {
    const StageScope outer(&observer, "pipeline");
    {
      const StageScope inner(&observer, "ct_collect");
      inner.count("corpus", 11);
    }
    outer.count("stale_total", 2);
    outer.gauge("corpus_certs", 11.0);
  }

  const auto& spans = observer.trace().spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "pipeline");
  EXPECT_EQ(spans[1].name, "ct_collect");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_GT(spans[0].duration.count(), 0);
  // Outer span duration covers the inner span.
  EXPECT_GE(spans[0].duration, spans[1].duration);

  // Counters materialized under the naming convention.
  const MetricsSnapshot snap = observer.registry().snapshot();
  bool found_corpus = false;
  bool found_stale = false;
  for (const auto& counter : snap.counters) {
    if (counter.name == "stalecert_ct_collect_corpus_total") {
      found_corpus = true;
      EXPECT_EQ(counter.value, 11u);
    }
    if (counter.name == "stalecert_pipeline_stale_total") {
      found_stale = true;
      EXPECT_EQ(counter.value, 2u);
    }
  }
  EXPECT_TRUE(found_corpus);
  EXPECT_TRUE(found_stale);

  // Stage durations recorded into the labeled histogram family.
  std::size_t duration_series = 0;
  for (const auto& histogram : snap.histograms) {
    if (histogram.name == "stalecert_stage_duration_seconds") {
      ++duration_series;
      EXPECT_EQ(histogram.count, 1u);
    }
  }
  EXPECT_EQ(duration_series, 2u);  // one per stage label
}

}  // namespace
}  // namespace stalecert::obs
