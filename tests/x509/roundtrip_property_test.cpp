// Property tests: randomized certificates must round-trip DER exactly, and
// the decoder must never misbehave on mutated input (throw ParseError or
// return a certificate — nothing else).
#include <gtest/gtest.h>

#include "stalecert/util/error.hpp"
#include "stalecert/util/rng.hpp"
#include "stalecert/x509/certificate.hpp"

namespace stalecert::x509 {
namespace {

using util::Date;

Certificate random_cert(util::Rng& rng) {
  CertificateBuilder builder;
  builder.serial(rng.next() | 1);
  builder.issuer({"CA-" + rng.alpha_label(6), "Org-" + rng.alpha_label(4), "US"});
  const std::string base = rng.alpha_label(8) + ".com";
  builder.subject_cn(base);
  const Date not_before = Date::parse("2015-01-01") +
                          rng.between(0, 3000);
  builder.validity(not_before, not_before + rng.between(1, 1200));
  builder.key(crypto::KeyPair::derive(
      rng.alpha_label(10),
      static_cast<crypto::KeyAlgorithm>(rng.below(5))));

  std::vector<std::string> names = {base};
  const std::uint64_t extra = rng.below(5);
  for (std::uint64_t i = 0; i < extra; ++i) {
    names.push_back(rng.alpha_label(5) + "." + base);
  }
  if (rng.chance(0.4)) names.push_back("*." + base);
  builder.dns_names(names);

  if (rng.chance(0.8)) {
    builder.authority_key_id(crypto::Sha256::hash(rng.alpha_label(8)));
  }
  if (rng.chance(0.7)) builder.server_auth_profile();
  if (rng.chance(0.5)) builder.crl_url("http://crl." + base + "/a.crl");
  if (rng.chance(0.5)) builder.ocsp_url("http://ocsp." + base);
  if (rng.chance(0.3)) builder.policy(asn1::Oid{2, 23, 140, 1, 2, 1});
  if (rng.chance(0.2)) builder.ocsp_must_staple();
  if (rng.chance(0.15)) builder.precert_poison();
  if (rng.chance(0.4)) {
    builder.sct_log_ids({rng.next() % 100, rng.next() % 100});
  }
  return builder.build();
}

class RoundTripSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripSweep, RandomCertificatesRoundTripExactly) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Certificate original = random_cert(rng);
    const asn1::Bytes der = original.to_der();
    const Certificate parsed = Certificate::from_der(der);
    ASSERT_EQ(parsed, original) << "seed=" << GetParam() << " i=" << i;
    // Re-encoding is byte-identical (DER is canonical).
    ASSERT_EQ(parsed.to_der(), der);
    // Derived identities agree.
    ASSERT_EQ(parsed.fingerprint(), original.fingerprint());
    ASSERT_EQ(parsed.dedup_fingerprint(), original.dedup_fingerprint());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

class MutationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationSweep, MutatedDerNeverMisbehaves) {
  util::Rng rng(GetParam());
  const Certificate cert = random_cert(rng);
  const asn1::Bytes der = cert.to_der();
  for (int trial = 0; trial < 300; ++trial) {
    asn1::Bytes mutated = der;
    // Flip 1-4 random bytes and/or truncate.
    const std::uint64_t flips = 1 + rng.below(4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    if (rng.chance(0.3)) {
      mutated.resize(rng.below(mutated.size()) + 1);
    }
    try {
      const Certificate parsed = Certificate::from_der(mutated);
      (void)parsed.dns_names();  // decoded objects must be usable
    } catch (const stalecert::ParseError&) {
      // expected for most mutations
    } catch (const stalecert::Error&) {
      // other structured errors acceptable (e.g. date range)
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationSweep, ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace stalecert::x509
