#include "stalecert/x509/extensions.hpp"

#include <gtest/gtest.h>

namespace stalecert::x509 {
namespace {

Extensions round_trip(const Extensions& ext) {
  asn1::Encoder enc;
  ext.encode(enc);
  asn1::Decoder dec(enc.bytes());
  return Extensions::decode(dec);
}

TEST(ExtensionsTest, EmptyRoundTrip) {
  const Extensions empty;
  EXPECT_EQ(round_trip(empty), empty);
}

TEST(ExtensionsTest, SanRoundTrip) {
  Extensions ext;
  ext.subject_alt_names = {"a.example.com", "*.b.example.org", "c.example.net"};
  EXPECT_EQ(round_trip(ext), ext);
}

TEST(ExtensionsTest, KeyIdsRoundTrip) {
  Extensions ext;
  ext.subject_key_id = crypto::Sha256::hash("subject");
  ext.authority_key_id = crypto::Sha256::hash("authority");
  EXPECT_EQ(round_trip(ext), ext);
}

TEST(ExtensionsTest, BasicConstraintsBothValues) {
  Extensions leaf;
  leaf.basic_constraints_ca = false;
  EXPECT_EQ(round_trip(leaf), leaf);
  Extensions ca;
  ca.basic_constraints_ca = true;
  EXPECT_EQ(round_trip(ca), ca);
}

TEST(ExtensionsTest, KeyUsageBits) {
  Extensions ext;
  ext.key_usage = KeyUsage::kDigitalSignature | KeyUsage::kKeyEncipherment;
  const Extensions back = round_trip(ext);
  EXPECT_EQ(back, ext);
  EXPECT_TRUE(back.has_key_usage(KeyUsage::kDigitalSignature));
  EXPECT_TRUE(back.has_key_usage(KeyUsage::kKeyEncipherment));
  EXPECT_FALSE(back.has_key_usage(KeyUsage::kCrlSign));
}

class KeyUsageSweep : public ::testing::TestWithParam<int> {};

TEST_P(KeyUsageSweep, EveryBitRoundTrips) {
  Extensions ext;
  ext.key_usage = static_cast<std::uint16_t>(1u << GetParam());
  EXPECT_EQ(round_trip(ext).key_usage, ext.key_usage);
}

INSTANTIATE_TEST_SUITE_P(Bits, KeyUsageSweep, ::testing::Range(0, 7));

TEST(ExtensionsTest, ExtendedKeyUsage) {
  Extensions ext;
  ext.ext_key_usage = {ExtendedKeyUsage::kServerAuth, ExtendedKeyUsage::kClientAuth,
                       ExtendedKeyUsage::kOcspSigning};
  const Extensions back = round_trip(ext);
  EXPECT_EQ(back, ext);
  EXPECT_TRUE(back.has_eku(ExtendedKeyUsage::kServerAuth));
  EXPECT_FALSE(back.has_eku(ExtendedKeyUsage::kCodeSigning));
}

TEST(ExtensionsTest, RevocationPointers) {
  Extensions ext;
  ext.crl_distribution_points = {"http://crl1.example/a.crl",
                                 "http://crl2.example/b.crl"};
  ext.ocsp_urls = {"http://ocsp.example"};
  EXPECT_EQ(round_trip(ext), ext);
}

TEST(ExtensionsTest, PoliciesAndCtMetadata) {
  Extensions ext;
  ext.certificate_policies = {asn1::Oid{2, 23, 140, 1, 2, 1}};
  ext.precert_poison = true;
  ext.sct_log_ids = {42, 1729};
  EXPECT_EQ(round_trip(ext), ext);
}

TEST(ExtensionsTest, UnknownExtensionsSurvive) {
  Extensions ext;
  Extensions::RawExtension raw;
  raw.oid = asn1::Oid{1, 3, 6, 1, 4, 1, 99999, 1};
  raw.critical = true;
  raw.der = {0x04, 0x02, 0xde, 0xad};
  ext.unknown.push_back(raw);
  EXPECT_EQ(round_trip(ext), ext);
}

TEST(ExtensionsTest, FullKitchenSink) {
  Extensions ext;
  ext.subject_alt_names = {"kitchen.example.com", "*.kitchen.example.com"};
  ext.subject_key_id = crypto::Sha256::hash("s");
  ext.authority_key_id = crypto::Sha256::hash("a");
  ext.basic_constraints_ca = false;
  ext.key_usage = KeyUsage::kDigitalSignature | KeyUsage::kKeyAgreement;
  ext.ext_key_usage = {ExtendedKeyUsage::kServerAuth};
  ext.crl_distribution_points = {"http://crl.example/x.crl"};
  ext.ocsp_urls = {"http://ocsp.example"};
  ext.certificate_policies = {asn1::Oid{2, 23, 140, 1, 2, 1},
                              asn1::Oid{1, 3, 6, 1, 4, 1, 44947, 1, 1, 1}};
  ext.sct_log_ids = {7};
  EXPECT_EQ(round_trip(ext), ext);
}

TEST(ExtendedKeyUsageTest, Names) {
  EXPECT_EQ(to_string(ExtendedKeyUsage::kServerAuth), "serverAuth");
  EXPECT_EQ(to_string(ExtendedKeyUsage::kCodeSigning), "codeSigning");
  EXPECT_EQ(to_string(ExtendedKeyUsage::kEmailProtection), "emailProtection");
}

}  // namespace
}  // namespace stalecert::x509
