#include "stalecert/x509/certificate.hpp"

#include <gtest/gtest.h>

#include "stalecert/util/error.hpp"

namespace stalecert::x509 {
namespace {

using util::Date;

Certificate make_cert(std::vector<std::string> sans = {"example.com",
                                                       "www.example.com"}) {
  return CertificateBuilder{}
      .serial(0x1234)
      .issuer({"Example CA", "Example Trust", "US"})
      .subject_cn(sans.front())
      .validity(Date::parse("2022-01-01"), Date::parse("2022-12-31"))
      .key(crypto::KeyPair::derive("subscriber-key", crypto::KeyAlgorithm::kEcdsaP256))
      .dns_names(sans)
      .authority_key_id(crypto::KeyPair::derive("ca-key", crypto::KeyAlgorithm::kEcdsaP384).key_id())
      .server_auth_profile()
      .crl_url("http://crl.example/ca.crl")
      .ocsp_url("http://ocsp.example")
      .policy(asn1::Oid{2, 23, 140, 1, 2, 1})
      .build();
}

TEST(CertificateBuilderTest, RequiredFieldsEnforced) {
  EXPECT_THROW(CertificateBuilder{}.build(), stalecert::LogicError);
  EXPECT_THROW(CertificateBuilder{}.serial(1).build(), stalecert::LogicError);
  EXPECT_THROW(
      CertificateBuilder{}
          .serial(1)
          .validity(Date::parse("2022-01-01"), Date::parse("2022-02-01"))
          .build(),
      stalecert::LogicError);
  EXPECT_THROW(CertificateBuilder{}.validity(Date::parse("2022-02-01"),
                                             Date::parse("2022-01-01")),
               stalecert::LogicError);
}

TEST(CertificateTest, BasicAccessors) {
  const Certificate cert = make_cert();
  EXPECT_EQ(cert.serial_hex(), "1234");
  EXPECT_EQ(cert.issuer().common_name, "Example CA");
  EXPECT_EQ(cert.subject().common_name, "example.com");
  EXPECT_EQ(cert.lifetime_days(), 364);
  EXPECT_TRUE(cert.valid_at(Date::parse("2022-06-15")));
  EXPECT_FALSE(cert.valid_at(Date::parse("2023-01-01")));
  EXPECT_FALSE(cert.valid_at(Date::parse("2021-12-31")));
}

TEST(CertificateTest, DnsNamesIncludesCnWhenMissingFromSan) {
  const Certificate cert =
      CertificateBuilder{}
          .serial(1)
          .subject_cn("cn-only.example.com")
          .validity(Date::parse("2022-01-01"), Date::parse("2022-06-01"))
          .key(crypto::KeyPair::derive("k", crypto::KeyAlgorithm::kEcdsaP256))
          .add_dns_name("san.example.com")
          .build();
  const auto names = cert.dns_names();
  EXPECT_EQ(names.size(), 2u);
  EXPECT_NE(std::find(names.begin(), names.end(), "cn-only.example.com"),
            names.end());
}

TEST(CertificateTest, MatchesDomainExactAndWildcard) {
  const Certificate cert = make_cert({"example.com", "*.example.com"});
  EXPECT_TRUE(cert.matches_domain("example.com"));
  EXPECT_TRUE(cert.matches_domain("EXAMPLE.COM"));
  EXPECT_TRUE(cert.matches_domain("www.example.com"));
  EXPECT_TRUE(cert.matches_domain("api.example.com"));
  // Wildcards cover exactly one label.
  EXPECT_FALSE(cert.matches_domain("a.b.example.com"));
  EXPECT_FALSE(cert.matches_domain("example.org"));
  EXPECT_FALSE(cert.matches_domain("badexample.com"));
}

TEST(CertificateTest, DerRoundTrip) {
  const Certificate original = make_cert();
  const asn1::Bytes der = original.to_der();
  const Certificate parsed = Certificate::from_der(der);
  EXPECT_EQ(parsed, original);
  EXPECT_EQ(parsed.fingerprint(), original.fingerprint());
}

TEST(CertificateTest, DerRoundTripWithCtComponents) {
  Certificate precert = CertificateBuilder{}
                            .serial(99)
                            .subject_cn("ct.example.com")
                            .validity(Date::parse("2022-01-01"),
                                      Date::parse("2022-04-01"))
                            .key(crypto::KeyPair::derive("k2", crypto::KeyAlgorithm::kRsa2048))
                            .add_dns_name("ct.example.com")
                            .precert_poison()
                            .build();
  EXPECT_TRUE(precert.is_precertificate());
  const Certificate parsed = Certificate::from_der(precert.to_der());
  EXPECT_TRUE(parsed.is_precertificate());
  EXPECT_EQ(parsed, precert);

  Certificate final_cert = CertificateBuilder{}
                               .serial(99)
                               .subject_cn("ct.example.com")
                               .validity(Date::parse("2022-01-01"),
                                         Date::parse("2022-04-01"))
                               .key(crypto::KeyPair::derive("k2", crypto::KeyAlgorithm::kRsa2048))
                               .add_dns_name("ct.example.com")
                               .sct_log_ids({3, 17})
                               .build();
  EXPECT_EQ(Certificate::from_der(final_cert.to_der()).extensions().sct_log_ids,
            (std::vector<std::uint64_t>{3, 17}));
}

TEST(CertificateTest, DedupFingerprintIgnoresCtComponents) {
  auto base = [] {
    return CertificateBuilder{}
        .serial(7)
        .subject_cn("dedup.example.com")
        .validity(Date::parse("2022-01-01"), Date::parse("2022-04-01"))
        .key(crypto::KeyPair::derive("k3", crypto::KeyAlgorithm::kEcdsaP256))
        .add_dns_name("dedup.example.com");
  };
  const Certificate precert = base().precert_poison().build();
  const Certificate final_cert = base().sct_log_ids({1, 2}).build();
  EXPECT_NE(precert.fingerprint(), final_cert.fingerprint());
  EXPECT_EQ(precert.dedup_fingerprint(), final_cert.dedup_fingerprint());
}

TEST(CertificateTest, IssuerSerialJoinKey) {
  const Certificate cert = make_cert();
  const auto key = cert.issuer_serial();
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->serial, cert.serial());
  EXPECT_EQ(key->authority_key_id,
            crypto::KeyPair::derive("ca-key", crypto::KeyAlgorithm::kEcdsaP384).key_id());
}

TEST(CertificateTest, NoAkidMeansNoJoinKey) {
  const Certificate cert =
      CertificateBuilder{}
          .serial(5)
          .subject_cn("x.example.com")
          .validity(Date::parse("2022-01-01"), Date::parse("2022-02-01"))
          .key(crypto::KeyPair::derive("k4", crypto::KeyAlgorithm::kEcdsaP256))
          .build();
  EXPECT_FALSE(cert.issuer_serial().has_value());
}

TEST(CertificateTest, FromDerRejectsGarbage) {
  const asn1::Bytes garbage = {0x30, 0x03, 0x02, 0x01, 0x05};
  EXPECT_THROW(Certificate::from_der(garbage), stalecert::ParseError);
  EXPECT_THROW(Certificate::from_der(asn1::Bytes{}), stalecert::ParseError);
}

TEST(DistinguishedNameTest, ToStringFormat) {
  const DistinguishedName dn{"Example CA", "Example Org", "DE"};
  EXPECT_EQ(dn.to_string(), "CN=Example CA, O=Example Org, C=DE");
  EXPECT_EQ((DistinguishedName{"OnlyCN", "", ""}).to_string(), "CN=OnlyCN");
  EXPECT_TRUE(DistinguishedName{}.empty());
}

}  // namespace
}  // namespace stalecert::x509
