#include "stalecert/ct/monitor.hpp"

#include <gtest/gtest.h>

#include "stalecert/util/error.hpp"

namespace stalecert::ct {
namespace {

using util::Date;

x509::Certificate make_cert(const std::string& domain, std::uint64_t serial) {
  return x509::CertificateBuilder{}
      .serial(serial)
      .subject_cn(domain)
      .validity(Date::parse("2022-01-01"), Date::parse("2022-06-01"))
      .key(crypto::KeyPair::derive(domain + std::to_string(serial),
                                   crypto::KeyAlgorithm::kEcdsaP256))
      .dns_names({domain, "*." + domain})
      .build();
}

class MonitorFixture : public ::testing::Test {
 protected:
  MonitorFixture() : log_(1, "log", "Op", {.chrome = true, .apple = true}) {}

  void submit(const std::string& domain, std::uint64_t serial) {
    log_.submit(make_cert(domain, serial), Date::parse("2022-01-01"));
  }

  CtLog log_;
};

TEST_F(MonitorFixture, IncrementalSyncVerifiesConsistency) {
  LogMonitor monitor(&log_, /*batch_size=*/4);
  for (int i = 0; i < 10; ++i) submit("a" + std::to_string(i) + ".com", 100 + i);

  auto first = monitor.sync(Date::parse("2022-01-02"));
  EXPECT_EQ(first.new_entries, 10u);
  EXPECT_FALSE(first.consistency_verified);  // no previous STH yet
  EXPECT_GT(first.inclusion_checks, 0u);
  EXPECT_EQ(first.inclusion_failures, 0u);
  EXPECT_EQ(monitor.verified_size(), 10u);

  for (int i = 0; i < 7; ++i) submit("b" + std::to_string(i) + ".com", 200 + i);
  auto second = monitor.sync(Date::parse("2022-01-03"));
  EXPECT_EQ(second.new_entries, 7u);
  EXPECT_TRUE(second.consistency_verified);
  EXPECT_EQ(monitor.verified_size(), 17u);

  // Nothing new: no-op sync.
  auto third = monitor.sync(Date::parse("2022-01-04"));
  EXPECT_EQ(third.new_entries, 0u);
}

TEST_F(MonitorFixture, WatchlistMatchesDomainAndSubdomains) {
  LogMonitor monitor(&log_);
  monitor.watch("watched.com");
  submit("other.com", 1);
  submit("watched.com", 2);
  submit("api.watched.com", 3);  // subdomain of a watched name
  submit("notwatched.org", 4);

  const auto result = monitor.sync(Date::parse("2022-01-02"));
  EXPECT_EQ(result.watch_hits.size(), 2u);
  EXPECT_EQ(monitor.all_watch_hits().size(), 2u);
}

TEST_F(MonitorFixture, WildcardSansMatchViaBaseName) {
  LogMonitor monitor(&log_);
  monitor.watch("wild.com");
  // make_cert adds "*.domain"; a cert for exactly the watched base.
  submit("wild.com", 9);
  EXPECT_EQ(monitor.sync(Date::parse("2022-01-02")).watch_hits.size(), 1u);
}

TEST_F(MonitorFixture, ConstructorValidation) {
  EXPECT_THROW(LogMonitor(nullptr), stalecert::LogicError);
  EXPECT_THROW(LogMonitor(&log_, 0), stalecert::LogicError);
}

TEST_F(MonitorFixture, LargeBatchedCatchUp) {
  LogMonitor monitor(&log_, /*batch_size=*/16);
  for (int i = 0; i < 100; ++i) submit("bulk" + std::to_string(i) + ".com", 1000 + i);
  const auto result = monitor.sync(Date::parse("2022-01-02"));
  EXPECT_EQ(result.new_entries, 100u);
  // One inclusion spot-check per batch.
  EXPECT_EQ(result.inclusion_checks, 7u);  // ceil(100/16)
  EXPECT_EQ(result.inclusion_failures, 0u);
}

}  // namespace
}  // namespace stalecert::ct
