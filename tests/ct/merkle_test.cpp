#include "stalecert/ct/merkle.hpp"

#include <gtest/gtest.h>

#include <string>

#include "stalecert/util/error.hpp"
#include "stalecert/util/hex.hpp"

namespace stalecert::ct {
namespace {

std::span<const std::uint8_t> bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

// RFC 6962 test vectors (section 2.1.1 examples use these leaf inputs).
const std::vector<std::string> kRfcLeaves = {
    std::string(""),
    std::string("\x00", 1),
    std::string("\x10", 1),
    std::string("\x20\x21", 2),
    std::string("\x30\x31", 2),
    std::string("\x40\x41\x42\x43", 4),
    std::string("\x50\x51\x52\x53\x54\x55\x56\x57", 8),
    std::string("\x60\x61\x62\x63\x64\x65\x66\x67\x68\x69\x6a\x6b\x6c\x6d\x6e\x6f",
                16),
};

MerkleTree rfc_tree() {
  MerkleTree tree;
  for (const auto& leaf : kRfcLeaves) tree.append(bytes(leaf));
  return tree;
}

TEST(MerkleTest, EmptyTreeHash) {
  EXPECT_EQ(util::hex_encode(empty_tree_hash()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  MerkleTree tree;
  EXPECT_EQ(tree.root(), empty_tree_hash());
}

TEST(MerkleTest, Rfc6962RootOfOne) {
  MerkleTree tree;
  tree.append(bytes(""));
  EXPECT_EQ(util::hex_encode(tree.root()),
            "6e340b9cffb37a989ca544e6bb780a2c78901d3fb33738768511a30617afa01d");
}

TEST(MerkleTest, Rfc6962RootOfEight) {
  const MerkleTree tree = rfc_tree();
  EXPECT_EQ(util::hex_encode(tree.root()),
            "5dc9da79a70659a9ad559cb701ded9a2ab9d823aad2f4960cfe370eff4604328");
}

TEST(MerkleTest, Rfc6962HistoricalRoots) {
  const MerkleTree tree = rfc_tree();
  EXPECT_EQ(util::hex_encode(tree.root_at(2)),
            "fac54203e7cc696cf0dfcb42c92a1d9dbaf70ad9e621f4bd8d98662f00e3c125");
  EXPECT_EQ(util::hex_encode(tree.root_at(3)),
            "aeb6bcfe274b70a14fb067a5e5578264db0fa9b51af5e0ba159158f329e06e77");
  EXPECT_EQ(util::hex_encode(tree.root_at(6)),
            "76e67dadbcdf1e10e1b74ddc608abd2f98dfb16fbce75277b5232a127f2087ef");
}

TEST(MerkleTest, InclusionProofsVerifyForAllIndicesAndSizes) {
  const MerkleTree tree = rfc_tree();
  for (std::uint64_t size = 1; size <= tree.size(); ++size) {
    const Digest root = tree.root_at(size);
    for (std::uint64_t index = 0; index < size; ++index) {
      const auto proof = tree.inclusion_proof(index, size);
      EXPECT_TRUE(verify_inclusion(tree.leaf(index), index, size, proof, root))
          << "index=" << index << " size=" << size;
    }
  }
}

TEST(MerkleTest, InclusionProofRejectsWrongLeaf) {
  const MerkleTree tree = rfc_tree();
  const auto proof = tree.inclusion_proof(3, 8);
  const Digest wrong = leaf_hash(bytes("not-the-leaf"));
  EXPECT_FALSE(verify_inclusion(wrong, 3, 8, proof, tree.root()));
}

TEST(MerkleTest, InclusionProofRejectsWrongIndex) {
  const MerkleTree tree = rfc_tree();
  const auto proof = tree.inclusion_proof(3, 8);
  EXPECT_FALSE(verify_inclusion(tree.leaf(3), 4, 8, proof, tree.root()));
  EXPECT_FALSE(verify_inclusion(tree.leaf(3), 9, 8, proof, tree.root()));
}

TEST(MerkleTest, ConsistencyProofsVerifyForAllSizePairs) {
  const MerkleTree tree = rfc_tree();
  for (std::uint64_t old_size = 0; old_size <= tree.size(); ++old_size) {
    for (std::uint64_t new_size = old_size; new_size <= tree.size(); ++new_size) {
      const auto proof = tree.consistency_proof(old_size, new_size);
      EXPECT_TRUE(verify_consistency(old_size, new_size, tree.root_at(old_size),
                                     tree.root_at(new_size), proof))
          << "old=" << old_size << " new=" << new_size;
    }
  }
}

TEST(MerkleTest, ConsistencyProofRejectsForgedOldRoot) {
  const MerkleTree tree = rfc_tree();
  const auto proof = tree.consistency_proof(3, 8);
  const Digest forged = leaf_hash(bytes("forged"));
  EXPECT_FALSE(verify_consistency(3, 8, forged, tree.root(), proof));
}

TEST(MerkleTest, OutOfRangeThrows) {
  const MerkleTree tree = rfc_tree();
  EXPECT_THROW((void)tree.root_at(9), stalecert::LogicError);
  EXPECT_THROW((void)tree.inclusion_proof(8, 8), stalecert::LogicError);
  EXPECT_THROW((void)tree.inclusion_proof(0, 9), stalecert::LogicError);
  EXPECT_THROW((void)tree.consistency_proof(5, 3), stalecert::LogicError);
  EXPECT_THROW((void)tree.leaf(8), stalecert::LogicError);
}

// Property sweep across larger, irregular tree sizes.
class MerkleProperty : public ::testing::TestWithParam<int> {};

TEST_P(MerkleProperty, ProofsVerifyAtScale) {
  const int n = GetParam();
  MerkleTree tree;
  for (int i = 0; i < n; ++i) {
    tree.append(bytes("leaf-" + std::to_string(i)));
  }
  const Digest root = tree.root();
  // Spot-check a spread of indices.
  for (std::uint64_t index = 0; index < static_cast<std::uint64_t>(n);
       index += static_cast<std::uint64_t>(1 + n / 7)) {
    const auto proof = tree.inclusion_proof(index, static_cast<std::uint64_t>(n));
    EXPECT_TRUE(verify_inclusion(tree.leaf(index), index,
                                 static_cast<std::uint64_t>(n), proof, root));
  }
  // Consistency from several historical sizes.
  for (const std::uint64_t old_size :
       {std::uint64_t{1}, static_cast<std::uint64_t>(n / 3),
        static_cast<std::uint64_t>(n / 2), static_cast<std::uint64_t>(n - 1)}) {
    if (old_size == 0 || old_size > static_cast<std::uint64_t>(n)) continue;
    const auto proof =
        tree.consistency_proof(old_size, static_cast<std::uint64_t>(n));
    EXPECT_TRUE(verify_consistency(old_size, static_cast<std::uint64_t>(n),
                                   tree.root_at(old_size), root, proof));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProperty,
                         ::testing::Values(2, 3, 5, 15, 16, 17, 33, 64, 100, 255));

TEST(MerkleTest, DomainSeparationPreventsSecondPreimage) {
  // leaf_hash and node_hash of the same bytes must differ (0x00/0x01 prefix).
  const Digest left = leaf_hash(bytes("a"));
  const Digest right = leaf_hash(bytes("b"));
  std::vector<std::uint8_t> concat;
  concat.insert(concat.end(), left.begin(), left.end());
  concat.insert(concat.end(), right.begin(), right.end());
  EXPECT_NE(node_hash(left, right), leaf_hash(concat));
}

}  // namespace
}  // namespace stalecert::ct
