#include "stalecert/ct/log.hpp"

#include <gtest/gtest.h>

#include "stalecert/ct/logset.hpp"
#include "stalecert/util/error.hpp"
#include "stalecert/x509/certificate.hpp"

namespace stalecert::ct {
namespace {

using util::Date;

x509::Certificate make_cert(const std::string& domain, const char* nb,
                            const char* na, bool precert = false,
                            std::uint64_t serial = 1) {
  x509::CertificateBuilder builder;
  builder.serial(serial)
      .subject_cn(domain)
      .validity(Date::parse(nb), Date::parse(na))
      .key(crypto::KeyPair::derive(domain + "/key", crypto::KeyAlgorithm::kEcdsaP256))
      .add_dns_name(domain);
  if (precert) builder.precert_poison();
  return builder.build();
}

TEST(CtLogTest, SubmitReturnsSctAndGrowsTree) {
  CtLog log(7, "test", "TestOp", {.chrome = true, .apple = false});
  const auto cert = make_cert("a.example.com", "2022-01-01", "2022-04-01");
  const auto sct = log.submit(cert, Date::parse("2022-01-01"));
  ASSERT_TRUE(sct.has_value());
  EXPECT_EQ(sct->log_id, 7u);
  EXPECT_EQ(sct->index, 0u);
  EXPECT_EQ(log.size(), 1u);
  const auto sct2 = log.submit(make_cert("b.example.com", "2022-01-01", "2022-04-01"),
                               Date::parse("2022-01-02"));
  EXPECT_EQ(sct2->index, 1u);
}

TEST(CtLogTest, TemporalShardRejectsOutOfWindowExpiry) {
  const util::DateInterval window{Date::parse("2022-01-01"), Date::parse("2023-01-01")};
  CtLog log(1, "shard2022", "Op", {.chrome = true, .apple = true}, window);
  EXPECT_TRUE(log.accepts(make_cert("in.example.com", "2022-01-01", "2022-06-01")));
  EXPECT_FALSE(log.accepts(make_cert("out.example.com", "2022-10-01", "2023-02-01")));
  EXPECT_FALSE(
      log.submit(make_cert("out.example.com", "2022-10-01", "2023-02-01"),
                 Date::parse("2022-10-01"))
          .has_value());
}

TEST(CtLogTest, SthAndProofsAreConsistent) {
  CtLog log(1, "log", "Op", {.chrome = true, .apple = true});
  for (int i = 0; i < 20; ++i) {
    log.submit(make_cert("d" + std::to_string(i) + ".example.com", "2022-01-01",
                         "2022-06-01", false, static_cast<std::uint64_t>(i + 1)),
               Date::parse("2022-01-01") + i);
  }
  const SignedTreeHead old_sth = log.sth_at(12, Date::parse("2022-02-01"));
  const SignedTreeHead new_sth = log.sth(Date::parse("2022-02-01"));
  EXPECT_EQ(new_sth.tree_size, 20u);
  const auto consistency = log.consistency_proof(12, 20);
  EXPECT_TRUE(verify_consistency(12, 20, old_sth.root_hash, new_sth.root_hash,
                                 consistency));
  const auto inclusion = log.inclusion_proof(5, 20);
  EXPECT_TRUE(verify_inclusion(log.leaf_hash_at(5), 5, 20, inclusion,
                               new_sth.root_hash));
}

TEST(CtLogTest, GetEntriesClamps) {
  CtLog log(1, "log", "Op", {.chrome = true, .apple = true});
  for (int i = 0; i < 5; ++i) {
    log.submit(make_cert("e.example.com", "2022-01-01", "2022-06-01", false,
                         static_cast<std::uint64_t>(i + 1)),
               Date::parse("2022-01-01"));
  }
  EXPECT_EQ(log.get_entries(1, 3).size(), 2u);
  EXPECT_EQ(log.get_entries(0, 100).size(), 5u);
  EXPECT_EQ(log.get_entries(7, 9).size(), 0u);
  EXPECT_THROW(log.get_entries(3, 1), stalecert::LogicError);
}

TEST(LogSetTest, SubmitFansOutToAcceptingLogs) {
  LogSet set;
  set.add_log(CtLog{1, "a", "Op", {.chrome = true, .apple = true}});
  set.add_log(CtLog{2, "b", "Op", {.chrome = true, .apple = false}});
  const util::DateInterval window{Date::parse("2030-01-01"), Date::parse("2031-01-01")};
  set.add_log(CtLog{3, "future-shard", "Op", {.chrome = true, .apple = true}, window});

  const auto scts = set.submit(make_cert("fan.example.com", "2022-01-01", "2022-06-01"),
                               Date::parse("2022-01-01"));
  EXPECT_EQ(scts.size(), 2u);  // the 2030 shard rejects
  EXPECT_EQ(set.total_entries(), 2u);
}

TEST(LogSetTest, CollectDeduplicatesPrecertAgainstFinal) {
  LogSet set;
  set.add_log(CtLog{1, "a", "Op", {.chrome = true, .apple = true}});

  x509::CertificateBuilder builder;
  builder.serial(42)
      .subject_cn("dedup.example.com")
      .validity(Date::parse("2022-01-01"), Date::parse("2022-06-01"))
      .key(crypto::KeyPair::derive("dk", crypto::KeyAlgorithm::kEcdsaP256))
      .add_dns_name("dedup.example.com");
  x509::CertificateBuilder precert_builder = builder;
  const auto precert = precert_builder.precert_poison().build();
  x509::CertificateBuilder final_builder = builder;
  const auto final_cert = final_builder.sct_log_ids({1}).build();

  set.submit(precert, Date::parse("2022-01-01"));
  set.submit(final_cert, Date::parse("2022-01-01"));

  CollectStats stats;
  const auto corpus = set.collect({}, &stats);
  EXPECT_EQ(stats.raw_entries, 2u);
  ASSERT_EQ(corpus.size(), 1u);
  EXPECT_FALSE(corpus[0].is_precertificate());  // final preferred
}

TEST(LogSetTest, CollectSkipsUntrustedLogs) {
  LogSet set;
  set.add_log(CtLog{1, "untrusted", "Op", {.chrome = false, .apple = false}});
  set.log(0).submit(make_cert("u.example.com", "2022-01-01", "2022-06-01"),
                    Date::parse("2022-01-01"));
  EXPECT_TRUE(set.collect().empty());
  CollectOptions include_all;
  include_all.chrome_or_apple_only = false;
  EXPECT_EQ(set.collect(include_all).size(), 1u);
}

TEST(LogSetTest, CollectDropsAnomalousFqdns) {
  LogSet set;
  set.add_log(CtLog{1, "a", "Op", {.chrome = true, .apple = true}});
  // One FQDN with 5 certificates, another with 1; threshold 4.
  for (int i = 0; i < 5; ++i) {
    set.submit(make_cert("flowers-to-the-world.com", "2022-01-01", "2022-06-01",
                         false, static_cast<std::uint64_t>(i + 1)),
               Date::parse("2022-01-01"));
  }
  set.submit(make_cert("normal.example.com", "2022-01-01", "2022-06-01", false, 99),
             Date::parse("2022-01-01"));

  CollectOptions options;
  options.max_certs_per_fqdn = 4;
  CollectStats stats;
  const auto corpus = set.collect(options, &stats);
  ASSERT_EQ(corpus.size(), 1u);
  EXPECT_EQ(corpus[0].dns_names().front(), "normal.example.com");
  EXPECT_EQ(stats.dropped_anomalous_fqdns, 1u);
  EXPECT_EQ(stats.dropped_certificates, 5u);
}

TEST(LogSetTest, HistoricalEcosystemShape) {
  const LogSet set = make_historical_log_ecosystem();
  EXPECT_GT(set.log_count(), 10u);
  std::size_t sharded = 0;
  for (const auto& log : set.logs()) {
    if (log.expiry_shard()) ++sharded;
  }
  EXPECT_GE(sharded, 14u);
}

}  // namespace
}  // namespace stalecert::ct
