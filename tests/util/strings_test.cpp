#include "stalecert/util/strings.hpp"

#include <gtest/gtest.h>

namespace stalecert::util {
namespace {

TEST(StringsTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(join({}, "."), "");
  EXPECT_EQ(join({"x"}, ", "), "x");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nvalue\r "), "value");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(to_lower("FoO.CoM"), "foo.com");
  EXPECT_EQ(to_lower("already"), "already");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("foo.com", "foo"));
  EXPECT_FALSE(starts_with("foo", "foo.com"));
  EXPECT_TRUE(ends_with("a.ns.cloudflare.com", ".cloudflare.com"));
  EXPECT_FALSE(ends_with("cloudflare.com", "x.cloudflare.com"));
}

TEST(StringsTest, WildcardMatch) {
  EXPECT_TRUE(wildcard_match("sni*.cloudflaressl.com", "sni12345.cloudflaressl.com"));
  EXPECT_FALSE(wildcard_match("sni*.cloudflaressl.com", "www.example.com"));
  EXPECT_TRUE(wildcard_match("*.ns.cloudflare.com", "amy1.ns.cloudflare.com"));
  EXPECT_FALSE(wildcard_match("*.ns.cloudflare.com", "ns.cloudflare.com.evil.org"));
  EXPECT_TRUE(wildcard_match("exact", "exact"));
  EXPECT_FALSE(wildcard_match("exact", "exactX"));
  // Overlap guard: value shorter than prefix+suffix must not match.
  EXPECT_FALSE(wildcard_match("ab*ba", "aba"));
}

TEST(StringsTest, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(1000000000), "1,000,000,000");
}

TEST(StringsTest, Percent) {
  EXPECT_EQ(percent(0.5), "50.0%");
  EXPECT_EQ(percent(0.984, 2), "98.40%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace stalecert::util
