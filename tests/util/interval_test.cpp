#include "stalecert/util/interval.hpp"

#include <gtest/gtest.h>

namespace stalecert::util {
namespace {

Date d(const char* iso) { return Date::parse(iso); }

TEST(DateIntervalTest, BasicAccessors) {
  const DateInterval interval{d("2022-01-01"), d("2022-04-01")};
  EXPECT_EQ(interval.days(), 90);
  EXPECT_FALSE(interval.empty());
  EXPECT_TRUE(interval.contains(d("2022-01-01")));
  EXPECT_TRUE(interval.contains(d("2022-03-31")));
  EXPECT_FALSE(interval.contains(d("2022-04-01")));  // half-open
  EXPECT_FALSE(interval.contains(d("2021-12-31")));
}

TEST(DateIntervalTest, InvertedConstructionClampsToEmpty) {
  const DateInterval interval{d("2022-04-01"), d("2022-01-01")};
  EXPECT_TRUE(interval.empty());
  EXPECT_EQ(interval.days(), 0);
}

TEST(DateIntervalTest, Overlaps) {
  const DateInterval a{d("2022-01-01"), d("2022-02-01")};
  const DateInterval b{d("2022-01-15"), d("2022-03-01")};
  const DateInterval c{d("2022-02-01"), d("2022-03-01")};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));  // touching, half-open
}

TEST(DateIntervalTest, IntersectCommutes) {
  const DateInterval a{d("2022-01-01"), d("2022-02-01")};
  const DateInterval b{d("2022-01-15"), d("2022-03-01")};
  EXPECT_EQ(a.intersect(b), b.intersect(a));
  EXPECT_EQ(a.intersect(b), (DateInterval{d("2022-01-15"), d("2022-02-01")}));
}

TEST(DateIntervalTest, IntersectDisjointIsEmpty) {
  const DateInterval a{d("2022-01-01"), d("2022-02-01")};
  const DateInterval b{d("2022-06-01"), d("2022-07-01")};
  EXPECT_TRUE(a.intersect(b).empty());
}

TEST(DateIntervalTest, ClampDuration) {
  const DateInterval year{d("2022-01-01"), d("2023-01-01")};
  const DateInterval capped = year.clamp_duration(90);
  EXPECT_EQ(capped.begin(), year.begin());
  EXPECT_EQ(capped.days(), 90);
  // Shorter-than-cap intervals are untouched.
  EXPECT_EQ(year.clamp_duration(400), year);
  EXPECT_EQ(capped.clamp_duration(90), capped);
}

TEST(StalenessPeriodTest, EventInsideWindow) {
  const DateInterval validity{d("2022-01-01"), d("2022-12-31")};
  const auto stale = staleness_period(validity, d("2022-06-01"));
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(stale->begin(), d("2022-06-01"));
  EXPECT_EQ(stale->end(), d("2022-12-31"));
}

TEST(StalenessPeriodTest, EventBeforeIssuanceCoversWholeWindow) {
  const DateInterval validity{d("2022-01-01"), d("2022-12-31")};
  const auto stale = staleness_period(validity, d("2021-06-01"));
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(*stale, validity);
}

TEST(StalenessPeriodTest, EventAtOrAfterExpiryIsNotStale) {
  const DateInterval validity{d("2022-01-01"), d("2022-12-31")};
  EXPECT_FALSE(staleness_period(validity, d("2022-12-31")).has_value());
  EXPECT_FALSE(staleness_period(validity, d("2023-01-15")).has_value());
}

// Property: staleness is always non-negative and never exceeds validity.
class StalenessProperty : public ::testing::TestWithParam<int> {};

TEST_P(StalenessProperty, BoundedByValidity) {
  const DateInterval validity{d("2022-01-01"), d("2022-12-31")};
  const Date event = d("2022-01-01") + GetParam();
  const auto stale = staleness_period(validity, event);
  if (stale) {
    EXPECT_GE(stale->days(), 0);
    EXPECT_LE(stale->days(), validity.days());
    EXPECT_EQ(stale->end(), validity.end());
  } else {
    EXPECT_GE(event, validity.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StalenessProperty,
                         ::testing::Range(-100, 500, 37));

}  // namespace
}  // namespace stalecert::util
