#include "stalecert/util/date.hpp"

#include <gtest/gtest.h>

#include "stalecert/util/error.hpp"

namespace stalecert::util {
namespace {

TEST(DateTest, EpochIsZero) {
  EXPECT_EQ(Date::from_ymd(1970, 1, 1).days_since_epoch(), 0);
}

TEST(DateTest, KnownDates) {
  EXPECT_EQ(Date::from_ymd(1970, 1, 2).days_since_epoch(), 1);
  EXPECT_EQ(Date::from_ymd(2000, 1, 1).days_since_epoch(), 10957);
  EXPECT_EQ(Date::from_ymd(2023, 5, 12).days_since_epoch(), 19489);
  EXPECT_EQ(Date::from_ymd(1969, 12, 31).days_since_epoch(), -1);
}

TEST(DateTest, RoundTripYmd) {
  const Date d = Date::from_ymd(2021, 11, 17);
  const auto ymd = d.to_ymd();
  EXPECT_EQ(ymd.year, 2021);
  EXPECT_EQ(ymd.month, 11u);
  EXPECT_EQ(ymd.day, 17u);
}

TEST(DateTest, ParseAndToString) {
  const Date d = Date::parse("2022-08-01");
  EXPECT_EQ(d.to_string(), "2022-08-01");
  EXPECT_EQ(d.year(), 2022);
  EXPECT_EQ(d.month(), 8u);
  EXPECT_EQ(d.day(), 1u);
}

TEST(DateTest, ParseRejectsMalformed) {
  EXPECT_THROW(Date::parse("2022/08/01"), ParseError);
  EXPECT_THROW(Date::parse("2022-13-01"), ParseError);
  EXPECT_THROW(Date::parse("2022-02-30"), ParseError);
  EXPECT_THROW(Date::parse("22-02-03"), ParseError);
  EXPECT_THROW(Date::parse(""), ParseError);
  EXPECT_THROW(Date::parse("2022-0a-01"), ParseError);
}

TEST(DateTest, LeapYearHandling) {
  EXPECT_NO_THROW(Date::from_ymd(2020, 2, 29));
  EXPECT_THROW(Date::from_ymd(2021, 2, 29), ParseError);
  EXPECT_NO_THROW(Date::from_ymd(2000, 2, 29));  // divisible by 400
  EXPECT_THROW(Date::from_ymd(1900, 2, 29), ParseError);  // divisible by 100
}

TEST(DateTest, Arithmetic) {
  const Date d = Date::parse("2020-02-28");
  EXPECT_EQ((d + 1).to_string(), "2020-02-29");
  EXPECT_EQ((d + 2).to_string(), "2020-03-01");
  EXPECT_EQ((d + 366) - d, 366);
  EXPECT_EQ((d - 59).to_string(), "2019-12-31");
}

TEST(DateTest, Comparisons) {
  EXPECT_LT(Date::parse("2020-01-01"), Date::parse("2020-01-02"));
  EXPECT_EQ(Date::parse("2020-01-01"), Date::from_ymd(2020, 1, 1));
}

// Property sweep: round-trip through ymd for a dense range of days.
class DateRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DateRoundTrip, DaysToYmdAndBack) {
  const std::int64_t base = GetParam() * 1000;
  for (std::int64_t offset = 0; offset < 1000; offset += 13) {
    const Date d{base + offset};
    const auto ymd = d.to_ymd();
    EXPECT_EQ(Date::from_ymd(ymd.year, ymd.month, ymd.day), d);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DateRoundTrip,
                         ::testing::Values(-20, -10, -1, 0, 5, 10, 15, 19, 25));

TEST(YearMonthTest, OfAndNext) {
  const YearMonth ym = YearMonth::of(Date::parse("2022-12-31"));
  EXPECT_EQ(ym.year, 2022);
  EXPECT_EQ(ym.month, 12u);
  EXPECT_EQ(ym.next(), (YearMonth{2023, 1}));
  EXPECT_EQ((YearMonth{2022, 5}).next(), (YearMonth{2022, 6}));
  EXPECT_EQ(ym.to_string(), "2022-12");
  EXPECT_EQ(ym.first_day(), Date::parse("2022-12-01"));
}

TEST(YearMonthTest, IndexOrdering) {
  EXPECT_LT((YearMonth{2021, 12}).index(), (YearMonth{2022, 1}).index());
  EXPECT_EQ((YearMonth{2022, 1}).index() - (YearMonth{2021, 12}).index(), 1);
}

TEST(DaysInMonthTest, AllMonths) {
  EXPECT_EQ(days_in_month(2021, 1), 31u);
  EXPECT_EQ(days_in_month(2021, 2), 28u);
  EXPECT_EQ(days_in_month(2020, 2), 29u);
  EXPECT_EQ(days_in_month(2021, 4), 30u);
  EXPECT_EQ(days_in_month(2021, 12), 31u);
  EXPECT_THROW(days_in_month(2021, 0), LogicError);
  EXPECT_THROW(days_in_month(2021, 13), LogicError);
}

}  // namespace
}  // namespace stalecert::util
