#include "stalecert/util/rng.hpp"

#include <gtest/gtest.h>

#include <map>

#include "stalecert/util/error.hpp"

namespace stalecert::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_THROW(rng.below(0), LogicError);
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.between(3, -3), LogicError);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(13);
  for (const double lambda : {0.5, 3.0, 20.0, 100.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(lambda));
    EXPECT_NEAR(sum / n, lambda, lambda * 0.1 + 0.1) << "lambda=" << lambda;
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, WeightedPickDistribution) {
  Rng rng(19);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::map<std::size_t, int> counts;
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_pick(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
  EXPECT_THROW(rng.weighted_pick(std::vector<double>{}), LogicError);
}

TEST(RngTest, NormalMoments) {
  Rng rng(23);
  double sum = 0;
  double sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(RngTest, AlphaLabel) {
  Rng rng(29);
  const std::string label = rng.alpha_label(12);
  EXPECT_EQ(label.size(), 12u);
  for (const char c : label) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(ZipfSamplerTest, RankOneIsMostFrequent) {
  Rng rng(31);
  ZipfSampler zipf(1000, 1.0);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  int max_count = 0;
  std::size_t max_rank = 0;
  for (const auto& [rank, count] : counts) {
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 1000u);
    if (count > max_count) {
      max_count = count;
      max_rank = rank;
    }
  }
  EXPECT_EQ(max_rank, 1u);
}

TEST(ZipfSamplerTest, RejectsEmpty) {
  EXPECT_THROW(ZipfSampler(0, 1.0), LogicError);
}

TEST(SplitMixTest, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), first);
  EXPECT_NE(splitmix64(state2), first);  // advances
}

}  // namespace
}  // namespace stalecert::util
