#include "stalecert/util/table.hpp"

#include <gtest/gtest.h>

#include "stalecert/util/error.hpp"

namespace stalecert::util {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"Name", "Count"});
  table.add_row({"short", "1"});
  table.add_row({"a-much-longer-name", "12345"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| Name"), std::string::npos);
  EXPECT_NE(out.find("| a-much-longer-name |"), std::string::npos);
  // Every line has the same width.
  std::size_t width = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    const auto end = out.find('\n', start);
    const std::size_t len = end - start;
    if (width == 0) width = len;
    EXPECT_EQ(len, width);
    start = end + 1;
  }
}

TEST(TextTableTest, ShortRowsArePadded) {
  TextTable table({"A", "B", "C"});
  table.add_row({"only-one"});
  EXPECT_NE(table.to_string().find("only-one"), std::string::npos);
}

TEST(TextTableTest, EmptyHeaderRejected) {
  EXPECT_THROW(TextTable({}), LogicError);
}

TEST(TextTableTest, CsvEscaping) {
  TextTable table({"k", "v"});
  table.add_row({"plain", "has,comma"});
  table.add_row({"quote\"inside", "line\nbreak"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_EQ(csv.substr(0, 4), "k,v\n");
}

TEST(TextTableTest, RuleAfterRow) {
  TextTable table({"x"});
  table.add_row({"1"}).add_rule();
  table.add_row({"2"});
  const std::string out = table.to_string();
  // Header rule + mid rule + trailing rule = 3 '+--+' lines minimum.
  int rules = 0;
  std::size_t pos = 0;
  while ((pos = out.find('+', pos)) != std::string::npos) {
    if (pos == 0 || out[pos - 1] == '\n') ++rules;
    ++pos;
  }
  EXPECT_EQ(rules, 4);  // top, after header, after row 1, bottom
}

}  // namespace
}  // namespace stalecert::util
