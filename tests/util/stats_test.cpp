#include "stalecert/util/stats.hpp"

#include <gtest/gtest.h>

#include <span>
#include <utility>
#include <vector>

#include "stalecert/util/error.hpp"

namespace stalecert::util {
namespace {

TEST(EmpiricalDistributionTest, CdfBasics) {
  EmpiricalDistribution dist;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) dist.add(v);
  EXPECT_DOUBLE_EQ(dist.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(dist.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(dist.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(dist.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(dist.survival(2.5), 0.5);
}

TEST(EmpiricalDistributionTest, EmptyBehaviour) {
  EmpiricalDistribution dist;
  EXPECT_TRUE(dist.empty());
  EXPECT_DOUBLE_EQ(dist.cdf(10), 0.0);
  EXPECT_THROW((void)dist.quantile(0.5), LogicError);
  EXPECT_THROW((void)dist.mean(), LogicError);
}

TEST(EmpiricalDistributionTest, Quantiles) {
  EmpiricalDistribution dist;
  for (int i = 1; i <= 100; ++i) dist.add(i);
  EXPECT_DOUBLE_EQ(dist.median(), 50.0);
  EXPECT_DOUBLE_EQ(dist.quantile(0.25), 25.0);
  EXPECT_DOUBLE_EQ(dist.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(dist.quantile(0.0), 1.0);
  EXPECT_THROW((void)dist.quantile(-0.1), LogicError);
  EXPECT_THROW((void)dist.quantile(1.1), LogicError);
}

TEST(EmpiricalDistributionTest, SummaryStats) {
  EmpiricalDistribution dist;
  dist.add_all({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(dist.mean(), 4.0);
  EXPECT_DOUBLE_EQ(dist.sum(), 12.0);
  EXPECT_DOUBLE_EQ(dist.min(), 2.0);
  EXPECT_DOUBLE_EQ(dist.max(), 6.0);
  EXPECT_EQ(dist.count(), 3u);
}

TEST(EmpiricalDistributionTest, AddAllAcceptsSpansAndArrays) {
  const std::vector<double> values{1.0, 2.0, 3.0};
  const double raw[] = {4.0, 5.0};
  EmpiricalDistribution dist;
  dist.add_all(values);  // lvalue vector -> span overload
  dist.add_all(raw);     // C array -> span overload
  dist.add_all(std::span<const double>(values).subspan(0, 1));
  EXPECT_EQ(dist.count(), 6u);
  EXPECT_DOUBLE_EQ(dist.sum(), 16.0);
  EXPECT_EQ(values.size(), 3u);  // untouched
}

TEST(EmpiricalDistributionTest, AddAllMovesIntoEmptyDistribution) {
  std::vector<double> values{3.0, 1.0, 2.0};
  EmpiricalDistribution dist;
  dist.add_all(std::move(values));
  EXPECT_EQ(dist.count(), 3u);
  EXPECT_DOUBLE_EQ(dist.median(), 2.0);
  // Moving into a non-empty distribution appends.
  dist.add_all(std::vector<double>{10.0});
  EXPECT_EQ(dist.count(), 4u);
  EXPECT_DOUBLE_EQ(dist.max(), 10.0);
}

TEST(EmpiricalDistributionTest, CdfSeriesMonotone) {
  EmpiricalDistribution dist;
  for (int i = 0; i < 50; ++i) dist.add(i * 3.0);
  std::vector<double> xs;
  for (int i = 0; i < 200; i += 7) xs.push_back(i);
  const auto series = dist.cdf_series(xs);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].second, series[i - 1].second);
  }
}

TEST(EmpiricalDistributionTest, AddAfterQueryResorts) {
  EmpiricalDistribution dist;
  dist.add(5.0);
  EXPECT_DOUBLE_EQ(dist.cdf(5.0), 1.0);
  dist.add(1.0);
  EXPECT_DOUBLE_EQ(dist.cdf(1.0), 0.5);
  EXPECT_DOUBLE_EQ(dist.min(), 1.0);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram hist(0.0, 100.0, 10);
  hist.add(5.0);    // bin 0
  hist.add(15.0);   // bin 1
  hist.add(99.9);   // bin 9
  hist.add(150.0);  // clamped to bin 9
  hist.add(-5.0);   // clamped to bin 0
  EXPECT_EQ(hist.bin_count(0), 2u);
  EXPECT_EQ(hist.bin_count(1), 1u);
  EXPECT_EQ(hist.bin_count(9), 2u);
  EXPECT_EQ(hist.total(), 5u);
  EXPECT_DOUBLE_EQ(hist.bin_low(1), 10.0);
  EXPECT_DOUBLE_EQ(hist.bin_high(1), 20.0);
  EXPECT_THROW((void)hist.bin_count(10), LogicError);
}

TEST(HistogramTest, RejectsBadBounds) {
  EXPECT_THROW(Histogram(0.0, 0.0, 10), LogicError);
  EXPECT_THROW(Histogram(0.0, 10.0, 0), LogicError);
}

TEST(LabelCounterTest, CountsAndSorting) {
  LabelCounter counter;
  counter.add("GoDaddy", 5);
  counter.add("Sectigo");
  counter.add("Sectigo");
  counter.add("Entrust");
  EXPECT_EQ(counter.count("GoDaddy"), 5u);
  EXPECT_EQ(counter.count("Sectigo"), 2u);
  EXPECT_EQ(counter.count("missing"), 0u);
  EXPECT_EQ(counter.total(), 8u);
  const auto sorted = counter.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, "GoDaddy");
  EXPECT_EQ(sorted[1].first, "Sectigo");
}

}  // namespace
}  // namespace stalecert::util
