// TimerWheel: deadlines are driven with an artificial clock, so these
// tests are deterministic — no sleeping, no wall-clock flakiness.
#include "stalecert/net/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

namespace stalecert::net {
namespace {

using namespace std::chrono_literals;
using Clock = TimerWheel::Clock;

TEST(TimerWheelTest, FiresAtDeadlineNotBefore) {
  const Clock::time_point start = Clock::now();
  TimerWheel wheel(start);
  int fired = 0;
  wheel.add(start + 100ms, [&] { ++fired; });
  EXPECT_EQ(wheel.advance(start + 50ms), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel.advance(start + 100ms), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.pending(), 0u);
  // Already fired: advancing further does nothing.
  EXPECT_EQ(wheel.advance(start + 200ms), 0u);
}

TEST(TimerWheelTest, CancelPreventsFiring) {
  const Clock::time_point start = Clock::now();
  TimerWheel wheel(start);
  int fired = 0;
  const std::uint64_t id = wheel.add(start + 20ms, [&] { ++fired; });
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));  // second cancel: already gone
  EXPECT_EQ(wheel.advance(start + 1s), 0u);
  EXPECT_EQ(fired, 0);
}

TEST(TimerWheelTest, FarDeadlineSurvivesAFullRevolution) {
  // 4ms tick x 512 slots = ~2s per revolution; a deadline two revolutions
  // out hashes into a slot that is swept twice before it is due.
  const Clock::time_point start = Clock::now();
  TimerWheel wheel(start);
  int fired = 0;
  wheel.add(start + 5s, [&] { ++fired; });
  EXPECT_EQ(wheel.advance(start + 2s), 0u);
  EXPECT_EQ(wheel.advance(start + 4s), 0u);
  EXPECT_EQ(wheel.advance(start + 5s + 4ms), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, PastDeadlineFiresOnNextAdvance) {
  const Clock::time_point start = Clock::now();
  TimerWheel wheel(start);
  wheel.advance(start + 1s);  // cursor is well past "start" now
  int fired = 0;
  wheel.add(start + 500ms, [&] { ++fired; });  // already in the past
  EXPECT_EQ(wheel.advance(start + 1s + 4ms), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, CallbacksMayAddAndCancelReentrantly) {
  const Clock::time_point start = Clock::now();
  TimerWheel wheel(start);
  std::vector<int> order;
  std::uint64_t victim = 0;
  wheel.add(start + 10ms, [&] {
    order.push_back(1);
    wheel.cancel(victim);                          // cancel a sibling
    wheel.add(start + 30ms, [&] { order.push_back(3); });  // add a new one
  });
  victim = wheel.add(start + 20ms, [&] { order.push_back(2); });
  EXPECT_GE(wheel.advance(start + 100ms), 1u);
  wheel.advance(start + 200ms);
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(TimerWheelTest, MaxSleepTracksSoonestDeadline) {
  const Clock::time_point start = Clock::now();
  TimerWheel wheel(start);
  EXPECT_FALSE(wheel.max_sleep(start).has_value());  // empty: sleep forever
  wheel.add(start + 500ms, [] {});
  const auto sleep = wheel.max_sleep(start);
  ASSERT_TRUE(sleep.has_value());
  EXPECT_LE(*sleep, 500ms);
  EXPECT_GE(*sleep, 4ms);  // never below one tick
  // A sooner timer tightens the bound.
  wheel.add(start + 40ms, [] {});
  ASSERT_TRUE(wheel.max_sleep(start).has_value());
  EXPECT_LE(*wheel.max_sleep(start), 40ms);
}

}  // namespace
}  // namespace stalecert::net
