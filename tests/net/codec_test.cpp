// Http1RequestCodec / Http1ResponseCodec: the incremental parsers under
// the reactor. The wire can deliver a message in any fragmentation, so the
// core property is fragmentation independence: one byte at a time must
// land in exactly the same requests as one big write.
#include "stalecert/net/codec.hpp"

#include <gtest/gtest.h>

#include <string>

namespace stalecert::net {
namespace {

using State = Http1RequestCodec::State;

constexpr std::size_t kMax = 64 * 1024;

TEST(RequestCodecTest, ParsesOneRequestFedByteAtATime) {
  const std::string wire =
      "GET /v1/stale?domain=example.com HTTP/1.1\r\n"
      "Host: localhost\r\n\r\n";
  Http1RequestCodec codec(kMax);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    const State state = codec.consume(wire.substr(i, 1));
    if (i + 1 < wire.size()) {
      ASSERT_NE(state, State::kComplete) << "complete after byte " << i;
      ASSERT_NE(state, State::kError) << "error after byte " << i;
    } else {
      ASSERT_EQ(state, State::kComplete);
    }
  }
  const HttpRequest request = codec.take_request();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/v1/stale");
  EXPECT_EQ(request.param("domain").value_or(""), "example.com");
  EXPECT_TRUE(request.keep_alive());
  EXPECT_TRUE(codec.idle());  // re-armed, nothing buffered
}

TEST(RequestCodecTest, BodyArrivesAcrossFragments) {
  const std::string head =
      "POST /ingest HTTP/1.1\r\nHost: x\r\nContent-Length: 10\r\n\r\n";
  Http1RequestCodec codec(kMax);
  EXPECT_EQ(codec.consume(head), State::kBody);
  EXPECT_EQ(codec.consume("01234"), State::kBody);
  EXPECT_EQ(codec.consume("56789"), State::kComplete);
  const HttpRequest request = codec.take_request();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.body, "0123456789");
}

TEST(RequestCodecTest, PipelinedRequestsComeOutInOrder) {
  const std::string wire =
      "GET /a HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /b HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /c HTTP/1.1\r\nHost: x\r\n\r\n";
  Http1RequestCodec codec(kMax);
  EXPECT_EQ(codec.consume(wire), State::kComplete);
  EXPECT_EQ(codec.take_request().path, "/a");
  // take_request() already advanced into the buffered leftover.
  ASSERT_EQ(codec.state(), State::kComplete);
  EXPECT_EQ(codec.take_request().path, "/b");
  ASSERT_EQ(codec.state(), State::kComplete);
  EXPECT_EQ(codec.take_request().path, "/c");
  EXPECT_TRUE(codec.idle());
}

TEST(RequestCodecTest, IdleFlipsOnFirstBufferedByte) {
  Http1RequestCodec codec(kMax);
  EXPECT_TRUE(codec.idle());
  codec.consume("G");
  EXPECT_FALSE(codec.idle());  // a partial head: slowloris territory
}

TEST(RequestCodecTest, OversizedHeadIs400WithExactBody) {
  Http1RequestCodec codec(/*max_request_bytes=*/128);
  const std::string filler(256, 'a');
  const State state = codec.consume("GET /x HTTP/1.1\r\nHost: " + filler);
  EXPECT_EQ(state, State::kError);
  EXPECT_EQ(codec.error_response().status, 400);
  EXPECT_EQ(codec.error_response().body, "request too large\n");
}

TEST(RequestCodecTest, MalformedHeadIs400WithExactBody) {
  Http1RequestCodec codec(kMax);
  EXPECT_EQ(codec.consume("this is not http\r\n\r\n"), State::kError);
  EXPECT_EQ(codec.error_response().status, 400);
  EXPECT_EQ(codec.error_response().body, "malformed request\n");
}

TEST(RequestCodecTest, BadContentLengthIs400WithExactBody) {
  Http1RequestCodec codec(kMax);
  const State state = codec.consume(
      "POST /x HTTP/1.1\r\nHost: x\r\nContent-Length: banana\r\n\r\n");
  EXPECT_EQ(state, State::kError);
  EXPECT_EQ(codec.error_response().status, 400);
  EXPECT_EQ(codec.error_response().body, "bad or oversized content-length\n");
}

TEST(RequestCodecTest, OversizedContentLengthIsRejected) {
  Http1RequestCodec codec(/*max_request_bytes=*/128);
  const State state = codec.consume(
      "POST /x HTTP/1.1\r\nHost: x\r\nContent-Length: 100000\r\n\r\n");
  EXPECT_EQ(state, State::kError);
  EXPECT_EQ(codec.error_response().body, "bad or oversized content-length\n");
}

using RState = Http1ResponseCodec::State;

TEST(ResponseCodecTest, ParsesResponseFedByteAtATime) {
  const std::string wire =
      "HTTP/1.1 200 OK\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 5\r\n"
      "Connection: keep-alive\r\n\r\n"
      "hello";
  Http1ResponseCodec codec;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    const RState state = codec.consume(wire.substr(i, 1));
    if (i + 1 < wire.size()) {
      ASSERT_NE(state, RState::kComplete) << "complete after byte " << i;
    } else {
      ASSERT_EQ(state, RState::kComplete);
    }
  }
  const auto response = codec.take_response();
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json");
  EXPECT_EQ(response.body, "hello");
  EXPECT_FALSE(response.close);
}

TEST(ResponseCodecTest, HeadResponseCarriesNoBodyDespiteContentLength) {
  Http1ResponseCodec codec(/*head_only=*/true);
  const RState state = codec.consume(
      "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n"
      "Content-Length: 42\r\n\r\n");
  ASSERT_EQ(state, RState::kComplete);
  EXPECT_EQ(codec.take_response().body, "");
}

TEST(ResponseCodecTest, ConnectionCloseIsSurfaced) {
  Http1ResponseCodec codec;
  const RState state = codec.consume(
      "HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\n"
      "Content-Length: 0\r\nConnection: close\r\n\r\n");
  ASSERT_EQ(state, RState::kComplete);
  EXPECT_TRUE(codec.take_response().close);
}

TEST(ResponseCodecTest, KeepAliveResponsesComeOutBackToBack) {
  const std::string one =
      "HTTP/1.1 200 OK\r\nContent-Type: a\r\nContent-Length: 1\r\n\r\nx";
  Http1ResponseCodec codec;
  ASSERT_EQ(codec.consume(one + one), RState::kComplete);
  EXPECT_EQ(codec.take_response().body, "x");
  ASSERT_EQ(codec.state(), RState::kComplete);
  EXPECT_EQ(codec.take_response().body, "x");
}

TEST(ResponseCodecTest, GarbageStatusLineIsError) {
  Http1ResponseCodec codec;
  EXPECT_EQ(codec.consume("SMTP/0.9 yes\r\n\r\n"), RState::kError);
}

}  // namespace
}  // namespace stalecert::net
