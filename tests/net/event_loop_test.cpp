// EventLoop: the reactor primitive. Tests drive it from a real thread with
// real fds (pipes/socketpairs), since epoll semantics are the thing under
// test; timers get generous margins so a loaded CI box does not flake.
#include "stalecert/net/event_loop.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

namespace stalecert::net {
namespace {

using namespace std::chrono_literals;

TEST(EventLoopTest, PostRunsTasksOnLoopThreadInOrder) {
  EventLoop loop;
  std::vector<int> order;
  std::thread::id loop_thread;
  loop.post([&] {
    loop_thread = std::this_thread::get_id();
    order.push_back(1);
  });
  loop.post([&] { order.push_back(2); });
  loop.post([&loop] { loop.stop(); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop_thread, std::this_thread::get_id());
}

TEST(EventLoopTest, PostFromAnotherThreadWakesTheLoop) {
  EventLoop loop;
  std::atomic<bool> ran{false};
  std::thread poster([&] {
    std::this_thread::sleep_for(50ms);
    loop.post([&] {
      ran.store(true);
      loop.stop();
    });
  });
  loop.run();  // blocks in epoll_wait until the eventfd wakes it
  poster.join();
  EXPECT_TRUE(ran.load());
}

TEST(EventLoopTest, TimerFiresOnceAfterDelay) {
  EventLoop loop;
  const auto start = std::chrono::steady_clock::now();
  std::chrono::steady_clock::time_point fired_at;
  loop.post([&] {
    loop.add_timer(50ms, [&] {
      fired_at = std::chrono::steady_clock::now();
      loop.stop();
    });
  });
  loop.run();
  EXPECT_GE(fired_at - start, 40ms);  // one 4ms tick of slack
  EXPECT_LT(fired_at - start, 5s);
}

TEST(EventLoopTest, CancelledTimerNeverFires) {
  EventLoop loop;
  std::atomic<bool> cancelled_fired{false};
  loop.post([&] {
    const std::uint64_t id =
        loop.add_timer(30ms, [&] { cancelled_fired.store(true); });
    loop.cancel_timer(id);
    loop.add_timer(120ms, [&] { loop.stop(); });
  });
  loop.run();
  EXPECT_FALSE(cancelled_fired.load());
}

TEST(EventLoopTest, ReadableCallbackSeesBytesAndEof) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  EventLoop loop;
  std::string received;
  bool saw_eof = false;
  loop.post([&] {
    loop.add_fd(fds[0], EventLoop::kReadable, [&](std::uint32_t events) {
      ASSERT_TRUE(events & EventLoop::kReadable);
      char chunk[64];
      const ssize_t n = ::read(fds[0], chunk, sizeof(chunk));
      if (n > 0) {
        received.append(chunk, static_cast<std::size_t>(n));
        return;
      }
      saw_eof = true;  // peer closed: level-triggered read reports 0
      loop.remove_fd(fds[0]);
      loop.stop();
    });
  });
  std::thread writer([&] {
    ASSERT_EQ(::write(fds[1], "ping", 4), 4);
    std::this_thread::sleep_for(20ms);
    ::close(fds[1]);
  });
  loop.run();
  writer.join();
  ::close(fds[0]);
  EXPECT_EQ(received, "ping");
  EXPECT_TRUE(saw_eof);
}

TEST(EventLoopTest, SetInterestSwitchesBetweenReadAndWrite) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  EventLoop loop;
  bool wrote = false;
  std::string echoed;
  loop.post([&] {
    loop.add_fd(fds[0], EventLoop::kWritable, [&](std::uint32_t events) {
      if (!wrote && (events & EventLoop::kWritable)) {
        ASSERT_EQ(::write(fds[0], "hi", 2), 2);
        wrote = true;
        loop.set_interest(fds[0], EventLoop::kReadable);
        return;
      }
      if (events & EventLoop::kReadable) {
        char chunk[8];
        const ssize_t n = ::read(fds[0], chunk, sizeof(chunk));
        if (n > 0) echoed.append(chunk, static_cast<std::size_t>(n));
        loop.remove_fd(fds[0]);
        loop.stop();
      }
    });
  });
  std::thread echo([&] {
    char chunk[8];
    const ssize_t n = ::read(fds[1], chunk, sizeof(chunk));
    ASSERT_EQ(n, 2);
    ASSERT_EQ(::write(fds[1], chunk, static_cast<std::size_t>(n)), n);
  });
  loop.run();
  echo.join();
  ::close(fds[0]);
  ::close(fds[1]);
  EXPECT_TRUE(wrote);
  EXPECT_EQ(echoed, "hi");
}

TEST(EventLoopTest, CallbackMayRemoveItsOwnFd) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  EventLoop loop;
  int calls = 0;
  loop.post([&] {
    loop.add_fd(fds[0], EventLoop::kReadable, [&](std::uint32_t) {
      ++calls;
      loop.remove_fd(fds[0]);  // self-removal mid-dispatch must be safe
      loop.add_timer(50ms, [&] { loop.stop(); });
    });
  });
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  loop.run();
  ::close(fds[0]);
  ::close(fds[1]);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace stalecert::net
