// net::fetch_all: the router's scatter primitive. A real HttpServer plays
// the shard; the interesting cases are concurrency (N legs under one
// deadline), the per-leg deadline itself, refused connections, and the
// keep-alive fd handoff.
#include "stalecert/net/fetch.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "stalecert/net/server.hpp"

namespace stalecert::net {
namespace {

using namespace std::chrono_literals;

HttpServer::Options shard_options() {
  HttpServer::Options options;
  options.port = 0;
  options.threads = 1;
  return options;
}

TEST(FetchAllTest, EmptySpecsReturnEmpty) {
  EXPECT_TRUE(fetch_all({}, 100ms).empty());
}

TEST(FetchAllTest, SingleLegRoundTrip) {
  HttpServer server(shard_options(), [](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "hello " + request.path + "\n"};
  });
  server.start();
  auto results = fetch_all({{"127.0.0.1", server.port(), "/a", -1}}, 2s);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].outcome, FetchResult::Outcome::kOk);
  EXPECT_EQ(results[0].status, 200);
  EXPECT_EQ(results[0].body, "hello /a\n");
  EXPECT_GT(results[0].elapsed.count(), 0);
  if (results[0].keep_fd >= 0) ::close(results[0].keep_fd);
  server.stop();
}

TEST(FetchAllTest, KeepAliveFdCanBeReusedForTheNextFetch) {
  HttpServer server(shard_options(), [](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", request.path + "\n"};
  });
  server.start();
  auto first = fetch_all({{"127.0.0.1", server.port(), "/one", -1}}, 2s);
  ASSERT_EQ(first[0].outcome, FetchResult::Outcome::kOk);
  ASSERT_GE(first[0].keep_fd, 0);  // server answered keep-alive
  auto second = fetch_all(
      {{"127.0.0.1", server.port(), "/two", first[0].keep_fd}}, 2s);
  ASSERT_EQ(second[0].outcome, FetchResult::Outcome::kOk);
  EXPECT_EQ(second[0].body, "/two\n");
  if (second[0].keep_fd >= 0) ::close(second[0].keep_fd);
  server.stop();
}

TEST(FetchAllTest, StaleReuseFdFallsBackToAFreshConnection) {
  HttpServer server(shard_options(), [](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", request.path + "\n"};
  });
  server.start();
  // A socketpair end whose peer is closed: writable, then immediate EOF —
  // exactly what a pooled connection the server already dropped looks like.
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  ::close(pair[1]);
  auto results = fetch_all(
      {{"127.0.0.1", server.port(), "/retry", pair[0]}}, 2s, /*attempts=*/2);
  ASSERT_EQ(results[0].outcome, FetchResult::Outcome::kOk) << results[0].error;
  EXPECT_EQ(results[0].body, "/retry\n");
  if (results[0].keep_fd >= 0) ::close(results[0].keep_fd);
  server.stop();
}

TEST(FetchAllTest, RefusedConnectionIsErrorNotTimeout) {
  // Grab an ephemeral port and release it so nothing listens there.
  std::uint16_t dead_port = 0;
  {
    HttpServer probe(shard_options(),
                     [](const HttpRequest&) { return HttpResponse{}; });
    probe.start();
    dead_port = probe.port();
    probe.stop();
  }
  auto results = fetch_all({{"127.0.0.1", dead_port, "/x", -1}}, 2s,
                           /*attempts=*/1);
  EXPECT_EQ(results[0].outcome, FetchResult::Outcome::kError);
  EXPECT_FALSE(results[0].error.empty());
}

TEST(FetchAllTest, SlowShardTimesOutWithoutStallingTheFastOne) {
  std::atomic<bool> release{false};
  HttpServer slow(shard_options(), [&](const HttpRequest&) {
    while (!release.load()) std::this_thread::sleep_for(10ms);
    return HttpResponse{200, "text/plain", "late\n"};
  });
  HttpServer fast(shard_options(), [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "fast\n"};
  });
  slow.start();
  fast.start();
  const auto start = std::chrono::steady_clock::now();
  auto results = fetch_all({{"127.0.0.1", slow.port(), "/x", -1},
                            {"127.0.0.1", fast.port(), "/x", -1}},
                           300ms, /*attempts=*/1);
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(results[0].outcome, FetchResult::Outcome::kTimeout);
  EXPECT_EQ(results[1].outcome, FetchResult::Outcome::kOk);
  EXPECT_EQ(results[1].body, "fast\n");
  // The gather is one loop: total wall clock ~= the one deadline, not 2x.
  EXPECT_LT(waited, 2s);
  release.store(true);
  if (results[1].keep_fd >= 0) ::close(results[1].keep_fd);
  slow.stop();
  fast.stop();
}

TEST(FetchAllTest, ManyLegsFlyConcurrently) {
  // One server, N legs, a handler that parks each request ~100ms. Serial
  // legs would take N*100ms; concurrent legs finish in roughly one delay
  // (all reactor-side handlers run on one thread here, so allow the sum
  // of handler time but require far less than serial round trips).
  HttpServer::Options options = shard_options();
  options.threads = 4;
  HttpServer server(options, [](const HttpRequest& request) {
    std::this_thread::sleep_for(50ms);
    return HttpResponse{200, "text/plain", request.path + "\n"};
  });
  server.start();
  constexpr int kLegs = 6;
  std::vector<FetchSpec> specs;
  for (int i = 0; i < kLegs; ++i) {
    specs.push_back(
        {"127.0.0.1", server.port(), "/leg" + std::to_string(i), -1});
  }
  auto results = fetch_all(specs, 5s);
  for (int i = 0; i < kLegs; ++i) {
    ASSERT_EQ(results[i].outcome, FetchResult::Outcome::kOk)
        << results[i].error;
    EXPECT_EQ(results[i].body, "/leg" + std::to_string(i) + "\n");
    if (results[i].keep_fd >= 0) ::close(results[i].keep_fd);
  }
  server.stop();
}

}  // namespace
}  // namespace stalecert::net
