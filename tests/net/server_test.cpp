// net::HttpServer end-to-end over real sockets: protocol parity (keep-alive,
// pipelining, HEAD, oversized requests), the two read deadlines (slowloris
// 408, silent idle close), and concurrent load across reactor threads —
// the latter is the test TSan watches in CI.
#include "stalecert/net/server.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "stalecert/net/client.hpp"

namespace stalecert::net {
namespace {

using namespace std::chrono_literals;

/// A deliberately dumb blocking client: sends exactly the bytes it is told
/// to, reads whatever comes back. The server's deadline behavior can only
/// be observed from a client that misbehaves, which HttpClient refuses to.
class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    const timeval tv{10, 0};  // recv never wedges the test binary
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  RawClient(const RawClient&) = delete;
  RawClient& operator=(const RawClient&) = delete;
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send(const std::string& bytes) const {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// send() that tolerates a peer close (false instead of a test failure) —
  /// for tests where the server closing mid-stream IS the expected outcome.
  bool try_send(const std::string& bytes) const {
    return ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(bytes.size());
  }

  /// Reads until the peer closes (or the 10s guard expires).
  std::string read_to_eof() const {
    std::string out;
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      out.append(chunk, static_cast<std::size_t>(n));
    }
    return out;
  }

  /// Reads until `marker` appears in the accumulated bytes.
  std::string read_until(const std::string& marker) const {
    std::string out;
    char chunk[4096];
    while (out.find(marker) == std::string::npos) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      out.append(chunk, static_cast<std::size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
};

HttpServer::Options test_options() {
  HttpServer::Options options;
  options.port = 0;
  options.threads = 2;
  return options;
}

HttpResponse echo_handler(const HttpRequest& request) {
  return {200, "text/plain", request.method + " " + request.path + "\n"};
}

TEST(NetServerTest, ServesKeepAliveRequestsOnOneConnection) {
  HttpServer server(test_options(), echo_handler);
  server.start();
  HttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 3; ++i) {
    const auto result = client.get("/ping");
    EXPECT_EQ(result.status, 200);
    EXPECT_EQ(result.body, "GET /ping\n");
  }
  EXPECT_EQ(server.requests_served(), 3u);
  server.stop();
}

TEST(NetServerTest, PipelinedRequestsAreAnsweredInOrder) {
  HttpServer server(test_options(), echo_handler);
  server.start();
  RawClient client(server.port());
  client.send(
      "GET /one HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /two HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /three HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  const std::string reply = client.read_to_eof();
  const std::size_t one = reply.find("GET /one");
  const std::size_t two = reply.find("GET /two");
  const std::size_t three = reply.find("GET /three");
  ASSERT_NE(one, std::string::npos) << reply;
  ASSERT_NE(two, std::string::npos) << reply;
  ASSERT_NE(three, std::string::npos) << reply;
  EXPECT_LT(one, two);
  EXPECT_LT(two, three);
  server.stop();
}

TEST(NetServerTest, OversizedRequestGets400AndClose) {
  HttpServer::Options options = test_options();
  options.max_request_bytes = 256;
  HttpServer server(options, echo_handler);
  server.start();
  RawClient client(server.port());
  client.send("GET /x HTTP/1.1\r\nHost: " + std::string(512, 'a') + "\r\n\r\n");
  const std::string reply = client.read_to_eof();  // server must close
  EXPECT_NE(reply.find("400 Bad Request"), std::string::npos) << reply;
  EXPECT_NE(reply.find("request too large"), std::string::npos) << reply;
  server.stop();
}

TEST(NetServerTest, SlowlorisGets408WithinHeaderTimeout) {
  HttpServer::Options options = test_options();
  options.header_timeout = 200ms;
  HttpServer server(options, echo_handler);
  server.start();
  RawClient slow(server.port());
  slow.send("GET /never HTTP/1.1\r\nHost:");  // partial head, then silence
  const auto start = std::chrono::steady_clock::now();
  const std::string reply = slow.read_to_eof();
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_NE(reply.find("408 Request Timeout"), std::string::npos) << reply;
  EXPECT_NE(reply.find("request header timeout"), std::string::npos) << reply;
  EXPECT_LT(waited, 5s);  // fired by the deadline, not the 10s recv guard
  server.stop();
}

TEST(NetServerTest, TricklingBytesDoesNotExtendHeaderDeadline) {
  // The classic attack sends one byte per interval to keep a naive
  // last-activity timer forever fresh; the deadline must anchor at the
  // FIRST byte of the partial request.
  HttpServer::Options options = test_options();
  options.header_timeout = 300ms;
  HttpServer server(options, echo_handler);
  server.start();
  RawClient slow(server.port());
  const auto start = std::chrono::steady_clock::now();
  std::string reply;
  std::thread reader([&] { reply = slow.read_to_eof(); });
  for (int i = 0; i < 20; ++i) {
    ::usleep(100 * 1000);  // 100ms: each write alone is under the deadline
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (elapsed > 2s) break;
    // The send failing is the deadline doing its job: the server already
    // answered 408 and closed, so the trickle bounces off.
    if (!slow.try_send("X")) break;
  }
  reader.join();
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_NE(reply.find("408 Request Timeout"), std::string::npos) << reply;
  EXPECT_LT(waited, 3s);
  server.stop();
}

TEST(NetServerTest, StalledClientDoesNotBlockAHealthyOne) {
  HttpServer::Options options = test_options();
  options.threads = 1;  // the stall would be fatal if anything blocked
  options.header_timeout = 5s;
  HttpServer server(options, echo_handler);
  server.start();
  RawClient stalled(server.port());
  stalled.send("GET /stall HTTP/1.1\r\nHost:");  // holds a partial request
  HttpClient healthy("127.0.0.1", server.port());
  const auto start = std::chrono::steady_clock::now();
  const auto result = healthy.get("/fast");
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(result.status, 200);
  EXPECT_LT(waited, 2s);  // served immediately, not behind the stall
  server.stop();
}

TEST(NetServerTest, IdleKeepAliveConnectionIsClosedSilently) {
  HttpServer::Options options = test_options();
  options.idle_timeout = 200ms;
  HttpServer server(options, echo_handler);
  server.start();
  RawClient client(server.port());
  client.send("GET /once HTTP/1.1\r\nHost: x\r\n\r\n");
  const std::string first = client.read_until("GET /once\n");
  EXPECT_NE(first.find("200 OK"), std::string::npos);
  // Now go idle; the server must close without writing anything more.
  const std::string rest = client.read_to_eof();
  EXPECT_EQ(rest, "");
  server.stop();
}

TEST(NetServerTest, HeadOmitsBodyButKeepsContentLength) {
  HttpServer server(test_options(), [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "0123456789"};
  });
  server.start();
  RawClient client(server.port());
  client.send("HEAD /x HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  const std::string reply = client.read_to_eof();
  EXPECT_NE(reply.find("Content-Length: 10"), std::string::npos) << reply;
  EXPECT_EQ(reply.find("0123456789"), std::string::npos) << reply;
  server.stop();
}

TEST(NetServerTest, RejectedMethodKeepsTheConnectionUsable) {
  HttpServer server(test_options(), echo_handler);
  server.start();
  RawClient client(server.port());
  client.send("PUT /x HTTP/1.1\r\nHost: x\r\nContent-Length: 3\r\n\r\nabc");
  const std::string rejection = client.read_until("\n");
  EXPECT_NE(rejection.find("405"), std::string::npos) << rejection;
  // The body was drained and the connection stayed open: a follow-up GET
  // on the same socket must work.
  client.send("GET /after HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  const std::string reply = client.read_to_eof();
  EXPECT_NE(reply.find("GET /after"), std::string::npos) << reply;
  server.stop();
}

TEST(NetServerTest, ThrowingHandlerYields500AndKeepsServing) {
  std::atomic<int> calls{0};
  HttpServer server(test_options(), [&](const HttpRequest& request) {
    ++calls;
    if (request.path == "/boom") throw std::runtime_error("kaboom");
    return echo_handler(request);
  });
  server.start();
  HttpClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.get("/boom").status, 500);
  EXPECT_EQ(client.get("/fine").status, 200);
  EXPECT_EQ(calls.load(), 2);
  server.stop();
}

TEST(NetServerTest, ConcurrentClientsAcrossReactors) {
  // Many connections, many requests each, across 2 reactor threads. Run
  // under TSan in CI: the per-reactor connection tables must never be
  // touched off their loop thread.
  HttpServer server(test_options(), echo_handler);
  server.start();
  constexpr int kClients = 8;
  constexpr int kRequests = 25;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &ok, c] {
      HttpClient client("127.0.0.1", server.port());
      for (int r = 0; r < kRequests; ++r) {
        const std::string path =
            "/c" + std::to_string(c) + "/r" + std::to_string(r);
        const auto result = client.get(path);
        if (result.status == 200 && result.body == "GET " + path + "\n") ++ok;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kRequests);
  EXPECT_EQ(server.requests_served(),
            static_cast<std::uint64_t>(kClients * kRequests));
  server.stop();
}

TEST(NetServerTest, StopDrainsAndStartIsRefusedAfterwards) {
  HttpServer server(test_options(), echo_handler);
  server.start();
  const std::uint16_t port = server.port();
  {
    HttpClient client("127.0.0.1", port);
    EXPECT_EQ(client.get("/x").status, 200);
  }
  server.stop();
  EXPECT_FALSE(server.running());
  // The port is released: connecting now must fail fast.
  EXPECT_THROW(http_get("127.0.0.1", port, "/x"), NetError);
}

}  // namespace
}  // namespace stalecert::net
