// StalenessIndex unit tests over a small hand-built PipelineResult:
// exercise every lookup surface with known answers (the differential test
// covers the same surfaces statistically over generated worlds).
#include <gtest/gtest.h>

#include <vector>

#include "stalecert/query/index.hpp"
#include "stalecert/util/error.hpp"
#include "stalecert/x509/certificate.hpp"

namespace stalecert::query {
namespace {

using core::StaleClass;
using util::Date;
using util::DateInterval;

x509::Certificate make_cert(std::uint64_t serial,
                            const std::vector<std::string>& names,
                            Date not_before, std::int64_t lifetime_days,
                            const std::string& key_label) {
  const auto key =
      crypto::KeyPair::derive(key_label, crypto::KeyAlgorithm::kEcdsaP256);
  auto builder = x509::CertificateBuilder()
                     .serial(serial)
                     .subject_cn(names.front())
                     .validity(not_before, not_before + lifetime_days)
                     .key(key)
                     .authority_key_id(
                         crypto::KeyPair::derive("idx-ca",
                                                 crypto::KeyAlgorithm::kEcdsaP256)
                             .key_id())
                     .server_auth_profile();
  for (const auto& name : names) builder.add_dns_name(name);
  return builder.build();
}

/// Corpus:
///   0: alpha.test.example + www.alpha.test.example  key A  2022 x 90d
///   1: *.Beta.Example                               key B  2022 x 365d
///   2: gamma.example                                key A  2021 x 398d (shares A)
core::PipelineResult build_result() {
  const Date d2022 = Date::from_ymd(2022, 1, 1);
  const Date d2021 = Date::from_ymd(2021, 6, 1);
  std::vector<x509::Certificate> certs;
  certs.push_back(make_cert(1, {"alpha.test.example", "www.alpha.test.example"},
                            d2022, 90, "key-a"));
  certs.push_back(make_cert(2, {"*.Beta.Example"}, d2022, 365, "key-b"));
  certs.push_back(make_cert(3, {"gamma.example"}, d2021, 398, "key-a"));

  core::PipelineResult result;
  result.corpus = core::CertificateCorpus(std::move(certs));

  // Key compromise of cert 0, 30 days in: every name is at risk.
  core::StaleCertificate kc;
  kc.corpus_index = 0;
  kc.cls = StaleClass::kKeyCompromise;
  kc.event_date = d2022 + 30;
  kc.staleness = DateInterval{d2022 + 30, d2022 + 90};
  kc.trigger_domain = "test.example";
  kc.reason = revocation::ReasonCode::kKeyCompromise;
  result.revocations.key_compromise.push_back(kc);
  result.revocations.all_revoked.push_back(kc);

  // A later, unrelated revocation of the same serial: the earlier one must
  // win revocation_status().
  core::StaleCertificate late = kc;
  late.event_date = d2022 + 45;
  late.staleness = DateInterval{d2022 + 45, d2022 + 90};
  late.reason = revocation::ReasonCode::kSuperseded;
  result.revocations.all_revoked.push_back(late);

  // Registrant change of beta.example 100 days in: only names under that
  // e2LD are at risk.
  core::StaleCertificate rc;
  rc.corpus_index = 1;
  rc.cls = StaleClass::kRegistrantChange;
  rc.event_date = d2022 + 100;
  rc.staleness = DateInterval{d2022 + 100, d2022 + 365};
  rc.trigger_domain = "beta.example";
  result.registrant_change.push_back(rc);
  return result;
}

store::ArchiveMeta make_meta() {
  store::ArchiveMeta meta;
  meta.profile = "unit";
  meta.seed = 7;
  meta.start = Date::from_ymd(2021, 1, 1);
  meta.end = Date::from_ymd(2022, 12, 31);
  return meta;
}

TEST(StalenessIndexTest, StatsCountEverythingOnce) {
  const StalenessIndex index(build_result(), make_meta());
  EXPECT_EQ(index.stats().certificates, 3u);
  EXPECT_EQ(index.stats().stale_records, 2u);
  EXPECT_EQ(index.stats().by_class[0], 1u);  // key compromise
  EXPECT_EQ(index.stats().by_class[1], 1u);  // registrant change
  EXPECT_EQ(index.stats().by_class[2], 0u);
  EXPECT_EQ(index.stats().distinct_keys, 2u);  // certs 0 and 2 share key A
  EXPECT_EQ(index.stats().revoked_serials, 1u);
}

TEST(StalenessIndexTest, CertsForKeyGroupsSharedCustody) {
  const StalenessIndex index(build_result(), make_meta());
  const auto& corpus = index.corpus();
  const std::string spki_a = corpus.at(0).subject_key().fingerprint_hex();
  EXPECT_EQ(index.certs_for_key(spki_a), (std::vector<std::uint32_t>{0, 2}));
  // Lookup is case-insensitive on the hex fingerprint.
  std::string upper = spki_a;
  for (auto& c : upper) c = static_cast<char>(std::toupper(c));
  EXPECT_EQ(index.certs_for_key(upper), (std::vector<std::uint32_t>{0, 2}));
  EXPECT_TRUE(index.certs_for_key("00ff").empty());
}

TEST(StalenessIndexTest, CertsForFqdnNormalizesCaseAndWildcards) {
  const StalenessIndex index(build_result(), make_meta());
  EXPECT_EQ(index.certs_for_fqdn("ALPHA.test.example"),
            (std::vector<std::uint32_t>{0}));
  // The wildcard cert is indexed under its stripped base name, and the
  // query side strips a leading wildcard too.
  EXPECT_EQ(index.certs_for_fqdn("beta.example"), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(index.certs_for_fqdn("*.beta.example"),
            (std::vector<std::uint32_t>{1}));
  EXPECT_TRUE(index.certs_for_fqdn("nope.example").empty());
}

TEST(StalenessIndexTest, IsStaleHonorsAtRiskNamesAndWindow) {
  const StalenessIndex index(build_result(), make_meta());
  const Date d2022 = Date::from_ymd(2022, 1, 1);

  // Key compromise endangers every stripped name plus the trigger e2LD.
  EXPECT_TRUE(index.is_stale("alpha.test.example", d2022 + 30));
  EXPECT_TRUE(index.is_stale("www.alpha.test.example", d2022 + 89));
  EXPECT_TRUE(index.is_stale("test.example", d2022 + 50));
  // Outside the staleness window (half-open on both operations).
  EXPECT_FALSE(index.is_stale("alpha.test.example", d2022 + 29));
  EXPECT_FALSE(index.is_stale("alpha.test.example", d2022 + 90));

  // Registrant change endangers the trigger e2LD's names only.
  EXPECT_TRUE(index.is_stale("beta.example", d2022 + 100));
  EXPECT_FALSE(index.is_stale("beta.example", d2022 + 99));
  // Unrelated name, never stale.
  EXPECT_FALSE(index.is_stale("gamma.example", d2022 + 50));
}

TEST(StalenessIndexTest, RangeQueriesUseOverlapSemantics) {
  const StalenessIndex index(build_result(), make_meta());
  const Date d2022 = Date::from_ymd(2022, 1, 1);
  // [0,100) does not reach the event at +100.
  EXPECT_TRUE(index.stale_records_for_range("beta.example", {d2022, d2022 + 100})
                  .empty());
  EXPECT_EQ(
      index.stale_records_for_range("beta.example", {d2022, d2022 + 101}).size(),
      1u);
  EXPECT_TRUE(index
                  .stale_records_for_range("beta.example",
                                           {d2022 + 100, d2022 + 100})
                  .empty());  // empty range overlaps nothing
}

TEST(StalenessIndexTest, StaleAtFiltersOnClass) {
  const StalenessIndex index(build_result(), make_meta());
  const Date d2022 = Date::from_ymd(2022, 1, 1);
  // The two windows are disjoint: KC covers [+30,+90), RC covers [+100,+365).
  const Date in_kc = d2022 + 50;
  EXPECT_EQ(index.stale_at(in_kc).size(), 1u);
  EXPECT_EQ(index.stale_at(in_kc, StaleClass::kKeyCompromise).size(), 1u);
  EXPECT_EQ(index.stale_at(in_kc, StaleClass::kRegistrantChange).size(), 0u);
  const Date in_rc = d2022 + 120;
  EXPECT_EQ(index.stale_at(in_rc).size(), 1u);
  EXPECT_EQ(index.stale_at(in_rc, StaleClass::kRegistrantChange).size(), 1u);
  EXPECT_EQ(index.stale_at(in_rc, StaleClass::kKeyCompromise).size(), 0u);
  EXPECT_EQ(index.stale_at(in_rc, StaleClass::kManagedTlsDeparture).size(), 0u);
  // Outside every window.
  EXPECT_TRUE(index.stale_at(d2022 + 95).empty());
}

TEST(StalenessIndexTest, RevocationStatusKeepsTheEarliestEvent) {
  const StalenessIndex index(build_result(), make_meta());
  const std::string serial = index.corpus().at(0).serial_hex();
  const auto status = index.revocation_status(serial);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->cert_index, 0u);
  EXPECT_EQ(status->revocation_date, Date::from_ymd(2022, 1, 1) + 30);
  EXPECT_TRUE(status->key_compromise());
  EXPECT_EQ(index.revocation_status("ffff"), std::nullopt);
}

TEST(StalenessIndexTest, ValidCertCountMatchesCalendar) {
  const StalenessIndex index(build_result(), make_meta());
  EXPECT_EQ(index.valid_cert_count(Date::from_ymd(2020, 1, 1)), 0u);
  EXPECT_EQ(index.valid_cert_count(Date::from_ymd(2021, 7, 1)), 1u);  // gamma
  EXPECT_EQ(index.valid_cert_count(Date::from_ymd(2022, 1, 15)), 3u);
  EXPECT_EQ(index.valid_cert_count(Date::from_ymd(2022, 12, 1)), 1u);  // beta
}

TEST(StalenessIndexTest, StaleSummaryAggregatesPerDomain) {
  const StalenessIndex index(build_result(), make_meta());
  const Date d2022 = Date::from_ymd(2022, 1, 1);
  const auto summary = index.stale_summary("Alpha.test.example");
  EXPECT_EQ(summary.domain, "alpha.test.example");
  EXPECT_EQ(summary.certificates, 1u);
  EXPECT_EQ(summary.stale_total(), 1u);
  EXPECT_EQ(summary.earliest_event, d2022 + 30);
  EXPECT_EQ(summary.latest_staleness_end, d2022 + 90);

  const auto empty = index.stale_summary("unknown.example");
  EXPECT_EQ(empty.stale_total(), 0u);
  EXPECT_EQ(empty.earliest_event, std::nullopt);
}

TEST(StalenessIndexTest, RecordAccessorBoundsChecks) {
  const StalenessIndex index(build_result(), make_meta());
  EXPECT_EQ(index.record(0).cls, StaleClass::kKeyCompromise);
  // void-cast: the [[nodiscard]] result is irrelevant when asserting throws.
  EXPECT_THROW((void)index.record(99), LogicError);
}

}  // namespace
}  // namespace stalecert::query
