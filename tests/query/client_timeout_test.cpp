// HttpClient deadline semantics: a server that accepts but never answers
// raises QueryTimeoutError (exit 4 territory for stalecert_query, "mark
// the shard slow" for the router), while a closed port raises plain
// QueryError ("down"). The distinction is load-bearing — see the exception
// hierarchy note in http.hpp.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "stalecert/query/client.hpp"
#include "stalecert/query/http.hpp"

namespace stalecert::query {
namespace {

/// A listening socket that accepts connections but never reads or writes.
class SilentServer {
 public:
  SilentServer() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    EXPECT_EQ(::listen(fd_, 4), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
  }
  ~SilentServer() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

TEST(HttpClientTimeoutTest, SilentServerRaisesTimeoutNotPlainError) {
  SilentServer server;
  HttpClient client("127.0.0.1", server.port(),
                    std::chrono::milliseconds(100));
  EXPECT_THROW(client.get("/healthz"), QueryTimeoutError);
}

TEST(HttpClientTimeoutTest, ZeroTimeoutKeepsConnectWorking) {
  // Timeout 0 = block indefinitely; the connection itself must still work
  // against a live listener (no spurious deadline on the connect path).
  SilentServer server;
  HttpClient client("127.0.0.1", server.port());
  // No request issued: a hang here would be forever. Construction
  // succeeding is the assertion.
  SUCCEED();
}

TEST(HttpClientTimeoutTest, RefusedConnectionRaisesPlainQueryError) {
  // Grab an ephemeral port, then close the listener: connecting to it now
  // refuses. That must surface as QueryError, never QueryTimeoutError.
  std::uint16_t port = 0;
  {
    SilentServer doomed;
    port = doomed.port();
  }
  try {
    HttpClient client("127.0.0.1", port, std::chrono::milliseconds(100));
    FAIL() << "connect to closed port " << port << " unexpectedly succeeded";
  } catch (const QueryTimeoutError&) {
    FAIL() << "refused connection must not be reported as a timeout";
  } catch (const QueryError&) {
    SUCCEED();
  }
}

}  // namespace
}  // namespace stalecert::query
