// /statusz + obs v2 serving-path instrumentation: statusz JSON fields,
// HTML mode, windowed metrics surfacing, slow-trace retention, and the
// HEAD + Content-Type contract for the operational endpoints over a real
// socket.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "stalecert/query/client.hpp"
#include "stalecert/query/server.hpp"
#include "stalecert/query/service.hpp"

#ifndef STALECERT_QUERY_TEST_DATA_DIR
#error "STALECERT_QUERY_TEST_DATA_DIR must be defined by the build"
#endif

namespace stalecert::query {
namespace {

const std::string kGoldenPath =
    std::string(STALECERT_QUERY_TEST_DATA_DIR) + "/golden_small.scw";

HttpRequest make_request(const std::string& path,
                         std::map<std::string, std::string> query = {}) {
  HttpRequest request;
  request.method = "GET";
  request.version = "HTTP/1.1";
  request.path = path;
  request.target = path;
  request.query = std::move(query);
  return request;
}

class StatuszTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<StaledService>(kGoldenPath);
    service_->log().enable_stderr(false);
    service_->load();
  }
  std::unique_ptr<StaledService> service_;
};

TEST_F(StatuszTest, JsonHasOperationalFields) {
  // Serve some traffic first so windows are non-empty.
  for (int i = 0; i < 5; ++i) {
    (void)service_->handle(make_request("/v1/summary"));
  }
  const auto response = service_->handle(make_request("/statusz"));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json");
  const std::string& body = response.body;
  EXPECT_NE(body.find("\"build\":"), std::string::npos);
  EXPECT_NE(body.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(body.find("\"generation\":1"), std::string::npos);
  EXPECT_NE(body.find("\"age_seconds\":"), std::string::npos);
  EXPECT_NE(body.find("\"certificates\":"), std::string::npos);
  EXPECT_NE(body.find("\"windows\":"), std::string::npos);
  EXPECT_NE(body.find("\"summary\":{\"1m\":"), std::string::npos);
  EXPECT_NE(body.find("\"qps\":"), std::string::npos);
  EXPECT_NE(body.find("\"p99_us\":"), std::string::npos);
  EXPECT_NE(body.find("\"slo\":"), std::string::npos);
  EXPECT_NE(body.find("\"burn_rate_1m\":"), std::string::npos);
  EXPECT_NE(body.find("\"slow_traces\":"), std::string::npos);
  EXPECT_NE(body.find("\"events\":"), std::string::npos);
}

TEST_F(StatuszTest, AnswersBeforeSnapshotLoads) {
  StaledService unloaded(kGoldenPath);
  unloaded.log().enable_stderr(false);
  const auto response = unloaded.handle(make_request("/statusz"));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"loaded\":false"), std::string::npos);
  EXPECT_NE(response.body.find("\"generation\":0"), std::string::npos);
}

TEST_F(StatuszTest, HtmlFormat) {
  const auto response =
      service_->handle(make_request("/statusz", {{"format", "html"}}));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "text/html; charset=utf-8");
  EXPECT_NE(response.body.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(response.body.find("snapshot generation"), std::string::npos);
}

TEST_F(StatuszTest, WindowedMetricsTrackTraffic) {
  for (int i = 0; i < 20; ++i) {
    (void)service_->handle(make_request(
        "/v1/stale", {{"domain", "alpha.example.com"}, {"date", "2021-06-01"}}));
  }
  EXPECT_GT(service_->windowed_qps("stale", std::chrono::seconds(60)), 0.0);
  const auto latency =
      service_->windowed_latency("stale", std::chrono::seconds(60));
  EXPECT_EQ(latency.count, 20u);
  EXPECT_GT(latency.p50, 0.0);
  EXPECT_GE(latency.p99, latency.p50);
  // Unknown endpoint: empty, not a crash.
  EXPECT_EQ(service_->windowed_qps("nope", std::chrono::seconds(60)), 0.0);
  EXPECT_EQ(service_->windowed_latency("nope", std::chrono::seconds(60)).count,
            0u);
}

TEST_F(StatuszTest, MetricsExposeWindowedGaugesAndBurnRates) {
  (void)service_->handle(make_request("/v1/summary"));
  const auto response = service_->handle(make_request("/metrics"));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "text/plain; version=0.0.4");
  EXPECT_NE(response.body.find("stalecert_staled_window_qps{"),
            std::string::npos);
  EXPECT_NE(response.body.find("stalecert_staled_window_latency_seconds{"),
            std::string::npos);
  EXPECT_NE(response.body.find(
                "stalecert_staled_slo_burn_rate{slo=\"availability\""),
            std::string::npos);
  EXPECT_NE(
      response.body.find("stalecert_staled_slo_burn_rate{slo=\"latency\""),
      std::string::npos);
  EXPECT_NE(response.body.find("window=\"1m\""), std::string::npos);
  EXPECT_NE(response.body.find("window=\"5m\""), std::string::npos);
}

TEST_F(StatuszTest, SlowTracesRetainSpanBreakdown) {
  // Force retention regardless of how fast the handlers actually are: with
  // a 0 ns slow threshold every request also logs, so silence stderr (done
  // in SetUp) and use a tiny ring.
  ServiceOptions options;
  options.slow_threshold = std::chrono::nanoseconds(0);
  StaledService service(kGoldenPath, options);
  service.log().enable_stderr(false);
  service.load();
  (void)service.handle(make_request(
      "/v1/stale", {{"domain", "alpha.example.com"}, {"date", "2021-06-01"}}));
  const auto traces = service.slow_traces().snapshot();
  ASSERT_FALSE(traces.empty());
  const auto& trace = traces.front();
  EXPECT_EQ(trace.endpoint, "stale");
  EXPECT_EQ(trace.status, 200);
  EXPECT_GT(trace.total.count(), 0);
  bool saw_lookup = false;
  bool saw_serialize = false;
  bool saw_route = false;
  for (const auto& [name, duration] : trace.spans) {
    saw_lookup |= name == "lookup";
    saw_serialize |= name == "serialize";
    saw_route |= name == "route";
    EXPECT_GE(duration.count(), 0);
  }
  EXPECT_TRUE(saw_lookup);
  EXPECT_TRUE(saw_serialize);
  EXPECT_TRUE(saw_route);
  // The retained breakdown shows up in /statusz.
  const auto statusz = service.handle(make_request("/statusz"));
  EXPECT_NE(statusz.body.find("\"spans\":{"), std::string::npos);
}

TEST_F(StatuszTest, SlowRequestsEmitWarnEvents) {
  ServiceOptions options;
  options.slow_threshold = std::chrono::nanoseconds(0);
  StaledService service(kGoldenPath, options);
  service.log().enable_stderr(false);
  service.load();
  (void)service.handle(make_request("/v1/summary"));
  bool saw_slow_warn = false;
  for (const auto& event : service.log().tail(64)) {
    saw_slow_warn |= event.level == obs::LogLevel::kWarn &&
                     event.message == "slow request";
  }
  EXPECT_TRUE(saw_slow_warn);
}

TEST_F(StatuszTest, ErrorResponsesFeedAvailabilityBurnRate) {
  // /v1/* before load() → 503s → availability burn rate over both windows.
  StaledService unloaded(kGoldenPath);
  unloaded.log().enable_stderr(false);
  for (int i = 0; i < 10; ++i) {
    (void)unloaded.handle(make_request("/v1/summary"));
  }
  const auto statusz = unloaded.handle(make_request("/statusz"));
  // All requests to /v1/summary failed: burn rate far above 1.
  const auto pos = statusz.body.find("\"burn_rate_1m\":");
  ASSERT_NE(pos, std::string::npos);
  const double burn =
      std::stod(statusz.body.substr(pos + std::string("\"burn_rate_1m\":").size()));
  EXPECT_GT(burn, 1.0);
}

// ---------------------------------------------------------------------------
// HTTP-layer contract for the operational endpoints, over a real socket.

class StatuszHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<StaledService>(kGoldenPath);
    service_->log().enable_stderr(false);
    service_->load();
    HttpServer::Options options;
    options.port = 0;
    options.threads = 2;
    server_ = std::make_unique<HttpServer>(
        options,
        [this](const HttpRequest& request) { return service_->handle(request); });
    server_->set_request_hook(
        [this](const HttpRequest&, const HttpResponse& response,
               std::chrono::nanoseconds write_duration) {
          service_->on_response_written(response, write_duration);
        });
    server_->start();
  }
  void TearDown() override { server_->stop(); }

  std::unique_ptr<StaledService> service_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(StatuszHttpTest, GetPinsContentTypes) {
  HttpClient client("127.0.0.1", server_->port());
  const auto metrics = client.get("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4");
  EXPECT_FALSE(metrics.body.empty());

  const auto statusz = client.get("/statusz");
  EXPECT_EQ(statusz.status, 200);
  EXPECT_EQ(statusz.content_type, "application/json");
  EXPECT_NE(statusz.body.find("\"qps\":"), std::string::npos);

  const auto html = client.get("/statusz?format=html");
  EXPECT_EQ(html.status, 200);
  EXPECT_EQ(html.content_type, "text/html; charset=utf-8");
}

TEST_F(StatuszHttpTest, HeadReturnsHeadersWithoutBody) {
  HttpClient client("127.0.0.1", server_->port());
  for (const std::string target : {"/metrics", "/statusz"}) {
    const auto head = client.head(target);
    EXPECT_EQ(head.status, 200) << target;
    EXPECT_TRUE(head.body.empty()) << target;
    const auto get = client.get(target);
    EXPECT_EQ(head.content_type, get.content_type) << target;
    // Keep-alive still works after a HEAD (Content-Length was honest).
    EXPECT_EQ(client.get("/healthz").status, 200) << target;
  }
}

TEST_F(StatuszHttpTest, WriteSpanAttributedToRetainedTraces) {
  // End-to-end: drive enough traffic that the ring retains something, then
  // check the retained trace picked up the server's post-write span.
  HttpClient client("127.0.0.1", server_->port());
  for (int i = 0; i < 50; ++i) (void)client.get("/v1/summary");
  // The hook runs after the response is on the wire; give workers a beat.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto traces = service_->slow_traces().snapshot();
  ASSERT_FALSE(traces.empty());
  bool saw_write = false;
  for (const auto& trace : traces) {
    for (const auto& [name, duration] : trace.spans) {
      saw_write |= name == "write";
    }
  }
  EXPECT_TRUE(saw_write);
}

}  // namespace
}  // namespace stalecert::query
