// Differential correctness: every StalenessIndex query surface is
// cross-checked against a naive linear scan of the same PipelineResult, on
// two worlds — the committed golden fixture and a freshly simulated small
// world. The naive side re-derives the at-risk contract from scratch (no
// shared helper), so an indexing bug and a specification bug cannot cancel
// out.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "stalecert/core/pipeline.hpp"
#include "stalecert/dns/name.hpp"
#include "stalecert/query/index.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/store/archive.hpp"
#include "stalecert/util/strings.hpp"

#ifndef STALECERT_QUERY_TEST_DATA_DIR
#error "STALECERT_QUERY_TEST_DATA_DIR must be defined by the build"
#endif

namespace stalecert::query {
namespace {

using core::StaleClass;
using util::Date;
using util::DateInterval;

std::string naive_normalize(const std::string& name) {
  std::string lower = util::to_lower(name);
  if (lower.rfind("*.", 0) == 0) lower = lower.substr(2);
  return lower;
}

/// The flattened record list in the index's documented order (class-major
/// over kAllStaleClasses), so naive record indices line up with the
/// index's.
std::vector<core::StaleCertificate> naive_records(
    const core::PipelineResult& result) {
  std::vector<core::StaleCertificate> records;
  for (const auto cls : core::kAllStaleClasses) {
    for (const auto& stale : result.of(cls)) records.push_back(stale);
  }
  return records;
}

/// Independent restatement of the serving contract: a record endangers a
/// domain when the domain is one of the certificate's names (all of them
/// for key compromise, only those under the trigger e2LD otherwise) or the
/// trigger domain itself.
bool naive_endangers(const core::CertificateCorpus& corpus,
                     const core::StaleCertificate& record,
                     const std::string& domain) {
  if (naive_normalize(record.trigger_domain) == domain) return true;
  for (const auto& raw : corpus.at(record.corpus_index).dns_names()) {
    const std::string name = naive_normalize(raw);
    if (name != domain) continue;
    if (record.cls == StaleClass::kKeyCompromise) return true;
    const auto e2 = dns::e2ld(name);
    if (e2 && *e2 == naive_normalize(record.trigger_domain)) return true;
  }
  return false;
}

struct Fixture {
  store::ArchiveMeta meta;
  core::PipelineResult result;
  std::vector<core::StaleCertificate> records;
  std::shared_ptr<const StalenessIndex> index;

  // Probe sets derived from the data itself, plus guaranteed misses.
  std::vector<std::string> domains;
  std::vector<Date> dates;
};

Fixture build_fixture(const std::string& archive_path) {
  Fixture f;
  const store::LoadedWorld world = store::load_world(archive_path);
  f.meta = world.meta;

  core::PipelineConfig config;
  config.revocation_cutoff = world.meta.revocation_cutoff;
  config.delegation_patterns = world.meta.delegation_patterns;
  config.managed_san_pattern = world.meta.managed_san_pattern;
  f.result = core::run_pipeline(world.ct_logs, world.revocations,
                                world.re_registrations(), world.adns, config);
  f.records = naive_records(f.result);
  f.index = std::make_shared<const StalenessIndex>(f.result, f.meta);

  std::set<std::string> domains;
  for (const auto& cert : f.result.corpus.certificates()) {
    for (const auto& name : cert.dns_names()) {
      domains.insert(naive_normalize(name));
      if (const auto e2 = dns::e2ld(naive_normalize(name))) domains.insert(*e2);
    }
  }
  for (const auto& record : f.records) {
    domains.insert(naive_normalize(record.trigger_domain));
  }
  domains.insert("definitely-not-present.test");
  f.domains.assign(domains.begin(), domains.end());

  std::set<Date> dates;
  for (const auto& record : f.records) {
    for (const std::int64_t delta : {-1, 0, 1}) {
      dates.insert(record.staleness.begin() + delta);
      dates.insert(record.staleness.end() + delta);
    }
  }
  for (Date d = f.meta.start; d <= f.meta.end; d += 13) dates.insert(d);
  f.dates.assign(dates.begin(), dates.end());
  return f;
}

const Fixture& golden_fixture() {
  static const Fixture fixture = build_fixture(
      std::string(STALECERT_QUERY_TEST_DATA_DIR) + "/golden_small.scw");
  return fixture;
}

const Fixture& fresh_fixture() {
  static const Fixture fixture = [] {
    sim::WorldConfig config = sim::small_test_config();
    config.seed = 20260806;
    sim::World world(config);
    world.run();
    // gtest_discover_tests runs sibling TESTs as concurrent processes
    // sharing TempDir(): the archive path must be per-process or a
    // writer can truncate the file under another process's reader.
    const std::string path = ::testing::TempDir() + "differential_fresh_" +
                             std::to_string(::getpid()) + ".scw";
    store::save_world(world, path, nullptr, "small");
    return build_fixture(path);
  }();
  return fixture;
}

class DifferentialTest : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] const Fixture& fixture() const {
    return std::string(GetParam()) == "golden" ? golden_fixture()
                                               : fresh_fixture();
  }
};

TEST_P(DifferentialTest, FreshWorldProducesStaleRecords) {
  // The probe sets are only meaningful when the pipeline found something;
  // the simulated world must produce stale certificates.
  if (std::string(GetParam()) == "fresh") {
    EXPECT_GT(fixture().records.size(), 0u);
  }
  EXPECT_EQ(fixture().index->stale_records().size(), fixture().records.size());
}

TEST_P(DifferentialTest, CertsForFqdnMatchesLinearScan) {
  const Fixture& f = fixture();
  for (const auto& domain : f.domains) {
    std::vector<std::uint32_t> expected;
    for (std::uint32_t i = 0; i < f.result.corpus.size(); ++i) {
      const auto& names = f.result.corpus.at(i).dns_names();
      if (std::any_of(names.begin(), names.end(), [&](const std::string& n) {
            return naive_normalize(n) == domain;
          })) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(f.index->certs_for_fqdn(domain), expected) << domain;
  }
}

TEST_P(DifferentialTest, CertsForKeyMatchesLinearScan) {
  const Fixture& f = fixture();
  std::set<std::string> keys;
  for (const auto& cert : f.result.corpus.certificates()) {
    keys.insert(cert.subject_key().fingerprint_hex());
  }
  keys.insert("not-a-fingerprint");
  for (const auto& key : keys) {
    std::vector<std::uint32_t> expected;
    for (std::uint32_t i = 0; i < f.result.corpus.size(); ++i) {
      if (f.result.corpus.at(i).subject_key().fingerprint_hex() == key) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(f.index->certs_for_key(key), expected) << key;
  }
}

TEST_P(DifferentialTest, StaleRecordsForMatchesLinearScan) {
  const Fixture& f = fixture();
  for (const auto& domain : f.domains) {
    for (const auto date : f.dates) {
      std::vector<std::uint32_t> expected;
      for (std::uint32_t i = 0; i < f.records.size(); ++i) {
        if (f.records[i].staleness.contains(date) &&
            naive_endangers(f.result.corpus, f.records[i], domain)) {
          expected.push_back(i);
        }
      }
      EXPECT_EQ(f.index->stale_records_for(domain, date), expected)
          << domain << " @ " << date.to_string();
      EXPECT_EQ(f.index->is_stale(domain, date), !expected.empty());
    }
  }
}

TEST_P(DifferentialTest, StaleRecordsForRangeMatchesLinearScan) {
  const Fixture& f = fixture();
  for (const auto& domain : f.domains) {
    for (std::size_t i = 0; i + 1 < f.dates.size(); i += 3) {
      const DateInterval range{f.dates[i], f.dates[i + 1]};
      std::vector<std::uint32_t> expected;
      for (std::uint32_t r = 0; r < f.records.size(); ++r) {
        if (f.records[r].staleness.overlaps(range) &&
            naive_endangers(f.result.corpus, f.records[r], domain)) {
          expected.push_back(r);
        }
      }
      EXPECT_EQ(f.index->stale_records_for_range(domain, range), expected)
          << domain;
    }
  }
}

TEST_P(DifferentialTest, StaleAtMatchesLinearScan) {
  const Fixture& f = fixture();
  for (const auto date : f.dates) {
    std::vector<std::uint32_t> expected;
    for (std::uint32_t i = 0; i < f.records.size(); ++i) {
      if (f.records[i].staleness.contains(date)) expected.push_back(i);
    }
    EXPECT_EQ(f.index->stale_at(date), expected) << date.to_string();

    for (const auto cls : core::kAllStaleClasses) {
      std::vector<std::uint32_t> by_class;
      for (const auto i : expected) {
        if (f.records[i].cls == cls) by_class.push_back(i);
      }
      EXPECT_EQ(f.index->stale_at(date, cls), by_class)
          << date.to_string() << " class " << core::to_string(cls);
    }
  }
}

TEST_P(DifferentialTest, RevocationStatusMatchesLinearScan) {
  const Fixture& f = fixture();
  std::set<std::string> serials;
  for (const auto& cert : f.result.corpus.certificates()) {
    serials.insert(util::to_lower(cert.serial_hex()));
  }
  serials.insert("feedfacefeedface");
  for (const auto& serial : serials) {
    std::optional<RevocationStatus> expected;
    for (const auto& revoked : f.result.revocations.all_revoked) {
      const auto& cert = f.result.corpus.at(revoked.corpus_index);
      if (util::to_lower(cert.serial_hex()) != serial) continue;
      RevocationStatus candidate;
      candidate.cert_index = static_cast<std::uint32_t>(revoked.corpus_index);
      candidate.revocation_date = revoked.event_date;
      candidate.reason =
          revoked.reason.value_or(revocation::ReasonCode::kUnspecified);
      const bool better =
          !expected ||
          candidate.revocation_date < expected->revocation_date ||
          (candidate.revocation_date == expected->revocation_date &&
           candidate.cert_index < expected->cert_index);
      if (better) expected = candidate;
    }
    const auto got = f.index->revocation_status(serial);
    ASSERT_EQ(got.has_value(), expected.has_value()) << serial;
    if (expected) {
      EXPECT_EQ(got->cert_index, expected->cert_index) << serial;
      EXPECT_EQ(got->revocation_date, expected->revocation_date) << serial;
      EXPECT_EQ(got->reason, expected->reason) << serial;
    }
  }
}

TEST_P(DifferentialTest, ValidCertCountMatchesLinearScan) {
  const Fixture& f = fixture();
  for (const auto date : f.dates) {
    std::size_t expected = 0;
    for (const auto& cert : f.result.corpus.certificates()) {
      if (cert.not_before() <= date && date < cert.not_after()) ++expected;
    }
    EXPECT_EQ(f.index->valid_cert_count(date), expected) << date.to_string();
  }
}

TEST_P(DifferentialTest, StaleSummaryMatchesLinearScan) {
  const Fixture& f = fixture();
  for (const auto& domain : f.domains) {
    std::array<std::uint64_t, core::kStaleClassCount> by_class{};
    std::optional<Date> earliest;
    std::optional<Date> latest_end;
    for (const auto& record : f.records) {
      if (!naive_endangers(f.result.corpus, record, domain)) continue;
      by_class[static_cast<std::size_t>(record.cls)]++;
      if (!earliest || record.event_date < *earliest) {
        earliest = record.event_date;
      }
      if (!latest_end || *latest_end < record.staleness.end()) {
        latest_end = record.staleness.end();
      }
    }
    const auto summary = f.index->stale_summary(domain);
    EXPECT_EQ(summary.stale_by_class, by_class) << domain;
    EXPECT_EQ(summary.earliest_event, earliest) << domain;
    EXPECT_EQ(summary.latest_staleness_end, latest_end) << domain;
    EXPECT_EQ(summary.certificates, f.index->certs_for_fqdn(domain).size())
        << domain;
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, DifferentialTest,
                         ::testing::Values("golden", "fresh"));

}  // namespace
}  // namespace stalecert::query
