// IntervalIndex differential tests: every stabbing/overlap query must
// return exactly what a naive linear scan over the same entries returns,
// across randomized workloads. The index is the serving hot path, so the
// linear scan is the executable specification.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "stalecert/query/interval_index.hpp"

namespace stalecert::query {
namespace {

using util::Date;
using util::DateInterval;

std::vector<std::uint32_t> naive_stabbing(
    const std::vector<IntervalIndex::Entry>& entries, Date date) {
  std::vector<std::uint32_t> out;
  for (const auto& e : entries) {
    if (e.interval.contains(date)) out.push_back(e.payload);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint32_t> naive_overlapping(
    const std::vector<IntervalIndex::Entry>& entries, const DateInterval& range) {
  std::vector<std::uint32_t> out;
  // Mirror the index contract: empty entries never match, and an empty query
  // range overlaps nothing. (DateInterval::overlaps alone would report an
  // empty interval strictly inside a range as overlapping.)
  if (range.empty()) return out;
  for (const auto& e : entries) {
    if (!e.interval.empty() && e.interval.overlaps(range)) out.push_back(e.payload);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(IntervalIndexTest, EmptyIndexAnswersEverythingWithNothing) {
  const IntervalIndex index;
  EXPECT_TRUE(index.empty());
  EXPECT_TRUE(index.stabbing(Date{100}).empty());
  EXPECT_EQ(index.stabbing_count(Date{100}), 0u);
  EXPECT_TRUE(index.overlapping({Date{0}, Date{1000}}).empty());
}

TEST(IntervalIndexTest, EmptyIntervalsAreDroppedAtBuild) {
  std::vector<IntervalIndex::Entry> entries;
  entries.push_back({{Date{10}, Date{10}}, 0});  // empty
  entries.push_back({{Date{10}, Date{11}}, 1});
  const IntervalIndex index(std::move(entries));
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(index.stabbing(Date{10}), (std::vector<std::uint32_t>{1}));
}

TEST(IntervalIndexTest, StabbingIsHalfOpen) {
  const IntervalIndex index({{{Date{5}, Date{8}}, 7}});
  EXPECT_TRUE(index.stabbing(Date{4}).empty());
  EXPECT_EQ(index.stabbing_count(Date{5}), 1u);
  EXPECT_EQ(index.stabbing_count(Date{7}), 1u);
  EXPECT_TRUE(index.stabbing(Date{8}).empty());
}

TEST(IntervalIndexTest, OverlappingIgnoresEmptyQueryRange) {
  const IntervalIndex index({{{Date{0}, Date{100}}, 3}});
  EXPECT_TRUE(index.overlapping({Date{50}, Date{50}}).empty());
  EXPECT_EQ(index.overlapping({Date{99}, Date{100}}),
            (std::vector<std::uint32_t>{3}));
  EXPECT_TRUE(index.overlapping({Date{100}, Date{200}}).empty());
}

TEST(IntervalIndexTest, PayloadsComeBackAscending) {
  // Same interval registered under shuffled payloads.
  std::vector<IntervalIndex::Entry> entries;
  for (const std::uint32_t p : {9u, 2u, 5u, 0u, 7u}) {
    entries.push_back({{Date{1}, Date{2}}, p});
  }
  const IntervalIndex index(std::move(entries));
  EXPECT_EQ(index.stabbing(Date{1}), (std::vector<std::uint32_t>{0, 2, 5, 7, 9}));
}

TEST(IntervalIndexTest, RandomizedStabbingMatchesLinearScan) {
  for (const unsigned seed : {1u, 7u, 42u}) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::int64_t> begin_dist(0, 2000);
    std::uniform_int_distribution<std::int64_t> len_dist(0, 120);  // incl. empty

    std::vector<IntervalIndex::Entry> entries;
    for (std::uint32_t i = 0; i < 500; ++i) {
      const Date begin{begin_dist(rng)};
      entries.push_back({{begin, begin + len_dist(rng)}, i});
    }
    const IntervalIndex index(entries);

    std::uniform_int_distribution<std::int64_t> probe(-10, 2130);
    for (int i = 0; i < 400; ++i) {
      const Date date{probe(rng)};
      const auto expected = naive_stabbing(entries, date);
      EXPECT_EQ(index.stabbing(date), expected) << "seed " << seed << " date "
                                                << date.days_since_epoch();
      EXPECT_EQ(index.stabbing_count(date), expected.size());
    }
  }
}

TEST(IntervalIndexTest, RandomizedOverlapMatchesLinearScan) {
  for (const unsigned seed : {3u, 11u}) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::int64_t> begin_dist(0, 1500);
    std::uniform_int_distribution<std::int64_t> len_dist(0, 90);

    std::vector<IntervalIndex::Entry> entries;
    for (std::uint32_t i = 0; i < 300; ++i) {
      const Date begin{begin_dist(rng)};
      entries.push_back({{begin, begin + len_dist(rng)}, i});
    }
    const IntervalIndex index(entries);

    for (int i = 0; i < 300; ++i) {
      const Date begin{begin_dist(rng)};
      const DateInterval range{begin, begin + len_dist(rng)};
      EXPECT_EQ(index.overlapping(range), naive_overlapping(entries, range))
          << "seed " << seed << " range [" << range.begin().days_since_epoch()
          << "," << range.end().days_since_epoch() << ")";
    }
  }
}

}  // namespace
}  // namespace stalecert::query
