// StaledService + HttpServer end-to-end: the endpoint surface over a real
// socket (HttpClient), parameter validation, metrics self-reporting and
// graceful drain.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "stalecert/query/client.hpp"
#include "stalecert/query/server.hpp"
#include "stalecert/query/service.hpp"

#ifndef STALECERT_QUERY_TEST_DATA_DIR
#error "STALECERT_QUERY_TEST_DATA_DIR must be defined by the build"
#endif

namespace stalecert::query {
namespace {

const std::string kGoldenPath =
    std::string(STALECERT_QUERY_TEST_DATA_DIR) + "/golden_small.scw";

HttpRequest make_request(const std::string& path,
                         std::map<std::string, std::string> query = {}) {
  HttpRequest request;
  request.method = "GET";
  request.version = "HTTP/1.1";
  request.path = path;
  request.query = std::move(query);
  return request;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<StaledService>(kGoldenPath);
    service_->load();
  }
  std::unique_ptr<StaledService> service_;
};

TEST_F(ServiceTest, HealthzReportsReadiness) {
  EXPECT_EQ(service_->handle(make_request("/healthz")).status, 200);

  StaledService unloaded(kGoldenPath);
  const auto response = unloaded.handle(make_request("/healthz"));
  EXPECT_EQ(response.status, 503);
  const auto stale =
      unloaded.handle(make_request("/v1/stale", {{"domain", "a"}, {"date", "2022-01-01"}}));
  EXPECT_EQ(stale.status, 503);
}

TEST_F(ServiceTest, StaleEndpointValidatesParameters) {
  EXPECT_EQ(service_->handle(make_request("/v1/stale")).status, 400);
  EXPECT_EQ(
      service_->handle(make_request("/v1/stale", {{"domain", "a.test"}})).status,
      400);
  EXPECT_EQ(service_
                ->handle(make_request(
                    "/v1/stale", {{"domain", "a.test"}, {"date", "tomorrow"}}))
                .status,
            400);
  const auto ok = service_->handle(make_request(
      "/v1/stale", {{"domain", "alpha.example.com"}, {"date", "2021-06-01"}}));
  EXPECT_EQ(ok.status, 200);
  EXPECT_NE(ok.body.find("\"domain\":\"alpha.example.com\""), std::string::npos);
  EXPECT_NE(ok.body.find("\"stale\":"), std::string::npos);
}

TEST_F(ServiceTest, KeyEndpointListsCustody) {
  // Don't assume corpus order: derive the expected name from the cert that
  // owns the queried key.
  const auto& corpus = service_->snapshot()->corpus();
  const std::string spki = corpus.at(0).subject_key().fingerprint_hex();
  const std::string name = corpus.at(0).dns_names().front();
  const auto response = service_->handle(make_request("/v1/key/" + spki));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"spki\":\"" + spki + "\""), std::string::npos);
  EXPECT_NE(response.body.find("\"names\":[\"" + name + "\"]"),
            std::string::npos);

  EXPECT_EQ(service_->handle(make_request("/v1/key/")).status, 400);
  const auto miss = service_->handle(make_request("/v1/key/00ff"));
  EXPECT_EQ(miss.status, 200);
  EXPECT_NE(miss.body.find("\"certificates\":[]"), std::string::npos);
}

TEST_F(ServiceTest, SummaryEndpointCoversGlobalAndDomainViews) {
  const auto global = service_->handle(make_request("/v1/summary"));
  EXPECT_EQ(global.status, 200);
  EXPECT_NE(global.body.find("\"profile\":\"custom\""), std::string::npos);
  EXPECT_NE(global.body.find("\"certificates\":3"), std::string::npos);
  EXPECT_NE(global.body.find("\"distinct_keys\":"), std::string::npos);
  // Traffic-dependent request quantiles moved to /statusz so the summary
  // body is a pure function of the data (cluster merge byte-equivalence).
  EXPECT_EQ(global.body.find("\"requests\":{"), std::string::npos);

  const auto domain = service_->handle(
      make_request("/v1/summary", {{"domain", "beta.example.com"}}));
  EXPECT_EQ(domain.status, 200);
  EXPECT_NE(domain.body.find("\"domain\":\"beta.example.com\""),
            std::string::npos);
  EXPECT_NE(domain.body.find("\"certificates\":1"), std::string::npos);
}

TEST_F(ServiceTest, RevocationEndpointJoinsSerials) {
  // Golden cert 1002 (beta) is revoked as superseded on 2021-11-02 — after
  // the archive's revocation cutoff, so the pipeline keeps it. Find it by
  // name rather than assuming corpus order.
  const auto& corpus = service_->snapshot()->corpus();
  std::string beta_serial, alpha_serial;
  for (std::uint32_t i = 0; i < corpus.size(); ++i) {
    const auto& names = corpus.at(i).dns_names();
    if (names.front() == "beta.example.com") beta_serial = corpus.at(i).serial_hex();
    if (names.front() == "alpha.example.com")
      alpha_serial = corpus.at(i).serial_hex();
  }
  ASSERT_FALSE(beta_serial.empty());
  ASSERT_FALSE(alpha_serial.empty());

  const auto revoked = service_->handle(
      make_request("/v1/revocation", {{"serial", beta_serial}}));
  EXPECT_EQ(revoked.status, 200);
  EXPECT_NE(revoked.body.find("\"revoked\":true"), std::string::npos);
  EXPECT_NE(revoked.body.find("\"revocation_date\":\"2021-11-02\""),
            std::string::npos);
  EXPECT_NE(revoked.body.find("\"key_compromise\":false"), std::string::npos);

  // Alpha's revocation predates the cutoff, so the pipeline dropped it: the
  // serving index faithfully reports it as not revoked.
  const auto pre_cutoff = service_->handle(
      make_request("/v1/revocation", {{"serial", alpha_serial}}));
  EXPECT_EQ(pre_cutoff.status, 200);
  EXPECT_NE(pre_cutoff.body.find("\"revoked\":false"), std::string::npos);

  const auto clean = service_->handle(
      make_request("/v1/revocation", {{"serial", "feedface"}}));
  EXPECT_EQ(clean.status, 200);
  EXPECT_NE(clean.body.find("\"revoked\":false"), std::string::npos);

  EXPECT_EQ(service_->handle(make_request("/v1/revocation")).status, 400);
}

TEST_F(ServiceTest, UnknownPathsAre404AndCounted) {
  EXPECT_EQ(service_->handle(make_request("/v2/anything")).status, 404);
  const auto metrics = service_->handle(make_request("/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("stalecert_staled_requests_total{endpoint=\"other\","
                              "code=\"404\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("stalecert_staled_index_generation"),
            std::string::npos);
  EXPECT_NE(metrics.body.find(
                "stalecert_staled_request_duration_seconds_bucket"),
            std::string::npos);
}

TEST(HttpServerTest, ServesOverARealSocketWithKeepAlive) {
  StaledService service(kGoldenPath);
  service.load();
  HttpServer::Options options;
  options.threads = 2;
  HttpServer server(options, [&service](const HttpRequest& request) {
    return service.handle(request);
  });
  server.start();
  ASSERT_NE(server.port(), 0);

  HttpClient client("127.0.0.1", server.port());
  // Several requests over the same keep-alive connection.
  const auto health = client.get("/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");
  const auto summary = client.get("/v1/summary");
  EXPECT_EQ(summary.status, 200);
  EXPECT_EQ(summary.content_type, "application/json");
  const auto missing = client.get("/v1/stale");
  EXPECT_EQ(missing.status, 400);
  const auto nothere = client.get("/nope");
  EXPECT_EQ(nothere.status, 404);

  EXPECT_GE(server.requests_served(), 4u);
  server.stop();
  EXPECT_FALSE(server.running());
  // stop() is idempotent.
  server.stop();
}

TEST(HttpServerTest, RejectsNonGetMethodsAndOversizedHeads) {
  StaledService service(kGoldenPath);
  service.load();
  HttpServer::Options options;
  options.threads = 1;
  options.max_request_bytes = 512;
  HttpServer server(options, [&service](const HttpRequest& request) {
    return service.handle(request);
  });
  server.start();

  HttpClient client("127.0.0.1", server.port());
  // HEAD is allowed (no body comes back).
  const auto head = client.head("/healthz");
  EXPECT_EQ(head.status, 200);
  EXPECT_TRUE(head.body.empty());
  // POST is not.
  const auto post = client.request("POST", "/healthz");
  EXPECT_EQ(post.status, 405);
  // An oversized request head gets 400.
  const auto oversized =
      client.get("/healthz?pad=" + std::string(2048, 'x'));
  EXPECT_EQ(oversized.status, 400);
  server.stop();
}

}  // namespace
}  // namespace stalecert::query
