#include "stalecert/query/staled_options.hpp"

#include <gtest/gtest.h>

namespace stalecert::query {
namespace {

using obs::LogLevel;

TEST(StaledOptionsTest, DefaultsWithArchiveOnly) {
  const auto result = parse_staled_options({"world.scw"}, nullptr);
  ASSERT_TRUE(result.ok());
  const auto& options = *result.options;
  EXPECT_EQ(options.archive_path, "world.scw");
  EXPECT_EQ(options.server.port, 8080);
  EXPECT_EQ(options.server.bind_address, "127.0.0.1");
  EXPECT_EQ(options.server.threads, 4u);
  EXPECT_TRUE(options.log_file.empty());
  EXPECT_EQ(options.log_level, LogLevel::kInfo);
  EXPECT_FALSE(options.log_level_from_flag);
}

TEST(StaledOptionsTest, ParsesServerFlags) {
  const auto result = parse_staled_options(
      {"--port", "0", "--bind", "0.0.0.0", "--threads", "8", "w.scw"}, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.options->server.port, 0);
  EXPECT_EQ(result.options->server.bind_address, "0.0.0.0");
  EXPECT_EQ(result.options->server.threads, 8u);
}

TEST(StaledOptionsTest, ParsesLogFlags) {
  const auto result = parse_staled_options(
      {"--log-file", "/tmp/staled.jsonl", "--log-level", "debug", "w.scw"},
      nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.options->log_file, "/tmp/staled.jsonl");
  EXPECT_EQ(result.options->log_level, LogLevel::kDebug);
  EXPECT_TRUE(result.options->log_level_from_flag);
}

TEST(StaledOptionsTest, LogLevelIsCaseInsensitive) {
  const auto result =
      parse_staled_options({"--log-level", "WARN", "w.scw"}, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.options->log_level, LogLevel::kWarn);
}

TEST(StaledOptionsTest, EnvFallbackAppliesWhenNoFlag) {
  const auto result = parse_staled_options({"w.scw"}, "error");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.options->log_level, LogLevel::kError);
  EXPECT_FALSE(result.options->log_level_from_flag);
}

TEST(StaledOptionsTest, FlagBeatsEnv) {
  const auto result =
      parse_staled_options({"--log-level", "debug", "w.scw"}, "error");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.options->log_level, LogLevel::kDebug);
}

TEST(StaledOptionsTest, BadEnvFallsBackToInfo) {
  const auto result = parse_staled_options({"w.scw"}, "shouty");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.options->log_level, LogLevel::kInfo);
}

TEST(StaledOptionsTest, FeedFlagsDefaultOff) {
  const auto result = parse_staled_options({"world.scw"}, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.options->feed_dir.empty());
  EXPECT_EQ(result.options->feed_poll_ms, 1000);
}

TEST(StaledOptionsTest, ParsesFeedFlags) {
  const auto result = parse_staled_options(
      {"--feed-dir", "/var/feed", "--feed-poll-ms", "250", "w.scw"}, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.options->feed_dir, "/var/feed");
  EXPECT_EQ(result.options->feed_poll_ms, 250);
}

TEST(StaledOptionsTest, RejectsBadFeedPollValues) {
  EXPECT_FALSE(parse_staled_options({"--feed-dir"}, nullptr).ok());
  EXPECT_FALSE(
      parse_staled_options({"--feed-poll-ms", "0", "w.scw"}, nullptr).ok());
  EXPECT_FALSE(
      parse_staled_options({"--feed-poll-ms", "-5", "w.scw"}, nullptr).ok());
  EXPECT_FALSE(parse_staled_options({"--feed-poll-ms", "notanumber", "w.scw"},
                                    nullptr)
                   .ok());
  EXPECT_FALSE(
      parse_staled_options({"--feed-poll-ms", "9999999", "w.scw"}, nullptr)
          .ok());
}

TEST(StaledOptionsTest, ParsesShardFlag) {
  const auto result =
      parse_staled_options({"--shard", "2/4", "w.scw"}, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.options->shard_index, 2u);
  EXPECT_EQ(result.options->shard_count, 4u);
}

TEST(StaledOptionsTest, DefaultIsUnsharded) {
  const auto result = parse_staled_options({"w.scw"}, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.options->shard_count, 0u);
}

TEST(StaledOptionsTest, RejectsBadShardRefs) {
  EXPECT_FALSE(parse_staled_options({"--shard", "4/4", "w.scw"}, nullptr).ok());
  EXPECT_FALSE(parse_staled_options({"--shard", "2", "w.scw"}, nullptr).ok());
  EXPECT_FALSE(
      parse_staled_options({"--shard", "a/b", "w.scw"}, nullptr).ok());
  EXPECT_FALSE(parse_staled_options({"--shard"}, nullptr).ok());
}

TEST(StaledOptionsTest, RejectsBadInput) {
  EXPECT_FALSE(parse_staled_options({}, nullptr).ok());
  EXPECT_FALSE(parse_staled_options({"--port"}, nullptr).ok());
  EXPECT_FALSE(parse_staled_options({"--port", "banana", "w.scw"}, nullptr).ok());
  EXPECT_FALSE(parse_staled_options({"--port", "70000", "w.scw"}, nullptr).ok());
  EXPECT_FALSE(parse_staled_options({"--threads", "0", "w.scw"}, nullptr).ok());
  EXPECT_FALSE(
      parse_staled_options({"--log-level", "loud", "w.scw"}, nullptr).ok());
  EXPECT_FALSE(parse_staled_options({"--wat", "w.scw"}, nullptr).ok());
  EXPECT_FALSE(parse_staled_options({"a.scw", "b.scw"}, nullptr).ok());
  const auto result = parse_staled_options({"--log-level", "loud", "w.scw"},
                                           nullptr);
  EXPECT_FALSE(result.error.empty());
}

}  // namespace
}  // namespace stalecert::query
