// Snapshot hot-swap concurrency: readers race reloads on the SnapshotCell
// and on a live StaledService (the SIGHUP path) while queries are in
// flight. Run under ThreadSanitizer in CI (the sanitizer job builds
// test_query with -fsanitize=thread); assertions here pin the invariants a
// racing reader must observe — never a null or half-built snapshot, and a
// failed reload never replaces the serving one.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "stalecert/query/service.hpp"
#include "stalecert/store/archive.hpp"

#ifndef STALECERT_QUERY_TEST_DATA_DIR
#error "STALECERT_QUERY_TEST_DATA_DIR must be defined by the build"
#endif

namespace stalecert::query {
namespace {

const std::string kGoldenPath =
    std::string(STALECERT_QUERY_TEST_DATA_DIR) + "/golden_small.scw";

TEST(SnapshotCellTest, GenerationCountsPublishes) {
  SnapshotCell cell;
  EXPECT_EQ(cell.get(), nullptr);
  EXPECT_EQ(cell.generation(), 0u);
  cell.set(StalenessIndex::from_archive(kGoldenPath));
  EXPECT_NE(cell.get(), nullptr);
  EXPECT_EQ(cell.generation(), 1u);
}

TEST(SnapshotCellTest, ReadersRacingSwapsAlwaysSeeACompleteSnapshot) {
  SnapshotCell cell;
  const auto initial = StalenessIndex::from_archive(kGoldenPath);
  cell.set(initial);
  const std::uint64_t expected_certs = initial->stats().certificates;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snapshot = cell.get();
        ASSERT_NE(snapshot, nullptr);
        // The snapshot must be fully built and internally consistent no
        // matter how the swap interleaves.
        ASSERT_EQ(snapshot->stats().certificates, expected_certs);
        ASSERT_EQ(snapshot->stale_records().size(),
                  snapshot->stats().stale_records);
        for (const auto& cert : snapshot->corpus().certificates()) {
          ASSERT_FALSE(
              snapshot->certs_for_key(cert.subject_key().fingerprint_hex())
                  .empty());
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread swapper([&] {
    for (int i = 0; i < 20; ++i) {
      cell.set(StalenessIndex::from_archive(kGoldenPath));
    }
    stop.store(true, std::memory_order_relaxed);
  });
  swapper.join();
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(cell.generation(), 21u);
  EXPECT_GT(reads.load(), 0u);
}

TEST(HotSwapTest, ServiceReloadRacesInFlightRequests) {
  StaledService service(kGoldenPath);
  service.load();

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&service, &stop, t] {
      HttpRequest request;
      request.method = "GET";
      request.version = "HTTP/1.1";
      // Mix of endpoints so both index lookups and metrics run during the
      // swap.
      request.path = (t % 2 == 0) ? "/v1/summary" : "/healthz";
      while (!stop.load(std::memory_order_relaxed)) {
        const HttpResponse response = service.handle(request);
        ASSERT_EQ(response.status, 200);
      }
    });
  }

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(service.reload());
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& client : clients) client.join();

  // load() published generation 1; ten reloads follow.
  EXPECT_EQ(service.generation(), 11u);
}

TEST(HotSwapTest, FailedReloadKeepsThePreviousSnapshotServing) {
  // Copy the golden archive so we can corrupt the file after loading.
  const std::string path = ::testing::TempDir() + "hotswap_corrupt.scw";
  {
    std::ifstream in(kGoldenPath, std::ios::binary);
    std::ofstream out(path, std::ios::binary);
    out << in.rdbuf();
  }

  StaledService service(path);
  service.load();
  const auto before = service.snapshot();
  ASSERT_NE(before, nullptr);

  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not an archive";
  }
  EXPECT_FALSE(service.reload());
  EXPECT_EQ(service.snapshot(), before);
  EXPECT_EQ(service.generation(), 1u);

  // The old snapshot still answers.
  HttpRequest request;
  request.method = "GET";
  request.version = "HTTP/1.1";
  request.path = "/healthz";
  EXPECT_EQ(service.handle(request).status, 200);
}

}  // namespace
}  // namespace stalecert::query
