// Unit tests for the minimal HTTP/1.1 subset: request-head parsing,
// percent decoding, connection persistence, response serialization and
// JSON escaping.
#include <gtest/gtest.h>

#include "stalecert/query/http.hpp"

namespace stalecert::query {
namespace {

TEST(PercentDecodeTest, DecodesEscapesAndKeepsMalformedOnesVerbatim) {
  EXPECT_EQ(percent_decode("a%20b"), "a b");
  EXPECT_EQ(percent_decode("%2F%2f"), "//");
  EXPECT_EQ(percent_decode("100%"), "100%");    // truncated escape
  EXPECT_EQ(percent_decode("%zz"), "%zz");      // non-hex escape
  EXPECT_EQ(percent_decode("a+b"), "a+b");      // '+' is NOT a space here
}

TEST(ParseRequestTest, ParsesTargetQueryAndHeaders) {
  const auto request = parse_request(
      "GET /v1/stale?domain=Example.COM&date=2022-01-02 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "X-Custom:  padded value \r\n"
      "\r\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->path, "/v1/stale");
  EXPECT_EQ(request->version, "HTTP/1.1");
  EXPECT_EQ(request->param("domain"), "Example.COM");
  EXPECT_EQ(request->param("date"), "2022-01-02");
  EXPECT_EQ(request->param("absent"), std::nullopt);
  // Header names are lowercased, values trimmed.
  EXPECT_EQ(request->headers.at("host"), "localhost");
  EXPECT_EQ(request->headers.at("x-custom"), "padded value");
}

TEST(ParseRequestTest, DecodesPercentEscapesInPathAndQuery) {
  const auto request =
      parse_request("GET /v1/key/ab%2Fcd?q=a%26b HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->path, "/v1/key/ab/cd");
  EXPECT_EQ(request->param("q"), "a&b");
}

TEST(ParseRequestTest, RejectsMalformedHeads) {
  EXPECT_FALSE(parse_request("").has_value());
  EXPECT_FALSE(parse_request("GET /\r\n\r\n").has_value());  // no version
  EXPECT_FALSE(parse_request("GET / HTTP/1.1\r\nbroken\r\n\r\n").has_value());
  EXPECT_FALSE(parse_request("GET / HTTP/1.1\r\n: empty-name\r\n\r\n").has_value());
  EXPECT_FALSE(parse_request("GET nopath HTTP/1.1\r\n\r\n").has_value());
  EXPECT_FALSE(parse_request("GET / FTP/1.1\r\n\r\n").has_value());
}

TEST(ParseRequestTest, KeepAliveFollowsRfc9112Defaults) {
  const auto v11 = parse_request("GET / HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(v11.has_value());
  EXPECT_TRUE(v11->keep_alive());

  const auto v11_close =
      parse_request("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n");
  ASSERT_TRUE(v11_close.has_value());
  EXPECT_FALSE(v11_close->keep_alive());

  const auto v10 = parse_request("GET / HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(v10.has_value());
  EXPECT_FALSE(v10->keep_alive());

  const auto v10_keep =
      parse_request("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
  ASSERT_TRUE(v10_keep.has_value());
  EXPECT_TRUE(v10_keep->keep_alive());
}

TEST(SerializeResponseTest, CarriesLengthTypeAndConnection) {
  HttpResponse response;
  response.status = 404;
  response.content_type = "text/plain";
  response.body = "nope";
  EXPECT_EQ(serialize_response(response, /*keep_alive=*/false),
            "HTTP/1.1 404 Not Found\r\n"
            "Content-Type: text/plain\r\n"
            "Content-Length: 4\r\n"
            "Connection: close\r\n"
            "\r\n"
            "nope");
}

TEST(SerializeResponseTest, EmitsExtraHeadersAfterStandardSet) {
  HttpResponse response;
  response.status = 503;
  response.content_type = "text/plain";
  response.body = "busy";
  response.headers.emplace("Retry-After", "1");
  EXPECT_EQ(serialize_response(response, /*keep_alive=*/false),
            "HTTP/1.1 503 Service Unavailable\r\n"
            "Content-Type: text/plain\r\n"
            "Content-Length: 4\r\n"
            "Connection: close\r\n"
            "Retry-After: 1\r\n"
            "\r\n"
            "busy");
}

TEST(SerializeResponseTest, HeadOnlyKeepsLengthButOmitsBody) {
  HttpResponse response;
  response.body = "{\"ok\":true}";
  const std::string wire =
      serialize_response(response, /*keep_alive=*/true, /*head_only=*/true);
  EXPECT_NE(wire.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(wire.find("ok"), std::string::npos);
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\tand\r"), "line\\nbreak\\tand\\r");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

}  // namespace
}  // namespace stalecert::query
