#include "stalecert/core/analyzer.hpp"

#include <gtest/gtest.h>

namespace stalecert::core {
namespace {

using util::Date;

x509::Certificate make_cert(std::vector<std::string> sans, std::uint64_t serial,
                            const char* nb, const char* na,
                            const char* issuer_cn = "Issuer A",
                            const char* issuer_org = "Org A") {
  return x509::CertificateBuilder{}
      .serial(serial)
      .issuer({issuer_cn, issuer_org, "US"})
      .subject_cn(sans.front())
      .validity(Date::parse(nb), Date::parse(na))
      .key(crypto::KeyPair::derive("k" + std::to_string(serial),
                                   crypto::KeyAlgorithm::kEcdsaP256))
      .dns_names(sans)
      .build();
}

StaleCertificate stale_record(std::size_t index, StaleClass cls, const char* event,
                              const char* expiry, const std::string& trigger) {
  StaleCertificate record;
  record.corpus_index = index;
  record.cls = cls;
  record.event_date = Date::parse(event);
  record.staleness = util::DateInterval{Date::parse(event), Date::parse(expiry)};
  record.trigger_domain = trigger;
  return record;
}

class AnalyzerFixture : public ::testing::Test {
 protected:
  AnalyzerFixture()
      : corpus_({
            make_cert({"a.com", "www.a.com"}, 1, "2022-01-01", "2022-12-01"),
            make_cert({"b.com"}, 2, "2022-02-01", "2022-11-01", "Issuer B", "Org B"),
            make_cert({"c.com", "other.net"}, 3, "2022-03-01", "2022-10-01"),
        }) {}

  CertificateCorpus corpus_;
};

TEST_F(AnalyzerFixture, SummaryCountsCertsFqdnsE2lds) {
  std::vector<StaleCertificate> stale = {
      stale_record(0, StaleClass::kRegistrantChange, "2022-06-01", "2022-12-01",
                   "a.com"),
      stale_record(1, StaleClass::kRegistrantChange, "2022-06-10", "2022-11-01",
                   "b.com"),
      stale_record(2, StaleClass::kRegistrantChange, "2022-06-20", "2022-10-01",
                   "c.com"),
  };
  StalenessAnalyzer analyzer(corpus_, stale);
  const StaleSummary summary =
      analyzer.summarize(Date::parse("2022-06-01"), Date::parse("2022-06-30"));
  EXPECT_EQ(summary.stale_certs, 3u);
  // a.com + www.a.com + b.com + c.com (other.net excluded: different e2LD).
  EXPECT_EQ(summary.stale_fqdns, 4u);
  EXPECT_EQ(summary.stale_e2lds, 3u);
  EXPECT_EQ(summary.window_days, 30);
  EXPECT_NEAR(summary.daily_certs(), 0.1, 1e-9);
}

TEST_F(AnalyzerFixture, SummaryWindowFiltersByEventDate) {
  std::vector<StaleCertificate> stale = {
      stale_record(0, StaleClass::kKeyCompromise, "2022-06-01", "2022-12-01", "a.com"),
      stale_record(1, StaleClass::kKeyCompromise, "2022-09-01", "2022-11-01", "b.com"),
  };
  StalenessAnalyzer analyzer(corpus_, stale);
  const StaleSummary summary =
      analyzer.summarize(Date::parse("2022-05-01"), Date::parse("2022-07-01"));
  EXPECT_EQ(summary.stale_certs, 1u);
}

TEST_F(AnalyzerFixture, KeyCompromiseCountsAllNamesOnCert) {
  std::vector<StaleCertificate> stale = {
      stale_record(2, StaleClass::kKeyCompromise, "2022-06-01", "2022-10-01",
                   "c.com"),
  };
  StalenessAnalyzer analyzer(corpus_, stale);
  const auto summary =
      analyzer.summarize(Date::parse("2022-06-01"), Date::parse("2022-06-02"));
  EXPECT_EQ(summary.stale_fqdns, 2u);  // c.com AND other.net
}

TEST_F(AnalyzerFixture, MonthlySeries) {
  std::vector<StaleCertificate> stale = {
      stale_record(0, StaleClass::kRegistrantChange, "2022-06-01", "2022-12-01",
                   "a.com"),
      stale_record(1, StaleClass::kRegistrantChange, "2022-06-15", "2022-11-01",
                   "b.com"),
      stale_record(2, StaleClass::kRegistrantChange, "2022-07-02", "2022-10-01",
                   "c.com"),
  };
  StalenessAnalyzer analyzer(corpus_, stale);
  const auto monthly = analyzer.monthly_counts();
  EXPECT_EQ(monthly.at({2022, 6}), 2u);
  EXPECT_EQ(monthly.at({2022, 7}), 1u);
  const auto e2lds = analyzer.monthly_e2lds();
  EXPECT_EQ(e2lds.at({2022, 6}), 2u);
}

TEST_F(AnalyzerFixture, MonthlyByIssuerLabel) {
  std::vector<StaleCertificate> stale = {
      stale_record(0, StaleClass::kRegistrantChange, "2022-06-01", "2022-12-01",
                   "a.com"),
      stale_record(1, StaleClass::kRegistrantChange, "2022-06-15", "2022-11-01",
                   "b.com"),
  };
  StalenessAnalyzer analyzer(corpus_, stale);
  const auto by_cn = analyzer.monthly_by_label(/*use_organization=*/false);
  EXPECT_EQ(by_cn.at({2022, 6}).count("Issuer A"), 1u);
  EXPECT_EQ(by_cn.at({2022, 6}).count("Issuer B"), 1u);
  const auto by_org = analyzer.monthly_by_label(/*use_organization=*/true);
  EXPECT_EQ(by_org.at({2022, 6}).count("Org B"), 1u);
}

TEST_F(AnalyzerFixture, StalenessDistributions) {
  std::vector<StaleCertificate> stale = {
      stale_record(0, StaleClass::kKeyCompromise, "2022-06-04", "2022-12-01",
                   "a.com"),  // 180 days
      stale_record(1, StaleClass::kKeyCompromise, "2022-10-02", "2022-11-01",
                   "b.com"),  // 30 days
  };
  StalenessAnalyzer analyzer(corpus_, stale);
  const auto dist = analyzer.staleness_distribution();
  EXPECT_EQ(dist.count(), 2u);
  EXPECT_DOUBLE_EQ(dist.min(), 30.0);
  EXPECT_DOUBLE_EQ(dist.max(), 180.0);
  EXPECT_DOUBLE_EQ(analyzer.total_staleness_days(), 210.0);

  const auto y2022 = analyzer.staleness_distribution_for_year(2022);
  EXPECT_EQ(y2022.count(), 2u);
  EXPECT_EQ(analyzer.staleness_distribution_for_year(2021).count(), 0u);
}

TEST_F(AnalyzerFixture, TimeToInvalidation) {
  std::vector<StaleCertificate> stale = {
      // Cert 0 issued 2022-01-01, event 2022-06-01 -> offset 151 days.
      stale_record(0, StaleClass::kKeyCompromise, "2022-06-01", "2022-12-01",
                   "a.com"),
  };
  StalenessAnalyzer analyzer(corpus_, stale);
  const auto ttf = analyzer.time_to_invalidation();
  EXPECT_EQ(ttf.count(), 1u);
  EXPECT_DOUBLE_EQ(ttf.min(),
                   static_cast<double>(Date::parse("2022-06-01") -
                                       Date::parse("2022-01-01")));
}

TEST_F(AnalyzerFixture, AffectedE2ldsDeduplicated) {
  std::vector<StaleCertificate> stale = {
      stale_record(0, StaleClass::kRegistrantChange, "2022-06-01", "2022-12-01",
                   "a.com"),
      stale_record(0, StaleClass::kRegistrantChange, "2022-07-01", "2022-12-01",
                   "a.com"),
  };
  StalenessAnalyzer analyzer(corpus_, stale);
  EXPECT_EQ(analyzer.affected_e2lds(), (std::vector<std::string>{"a.com"}));
}

TEST_F(AnalyzerFixture, SummarizeRejectsInvertedWindow) {
  StalenessAnalyzer analyzer(corpus_, {});
  EXPECT_THROW(
      (void)analyzer.summarize(Date::parse("2022-06-30"), Date::parse("2022-06-01")),
      stalecert::LogicError);
}

}  // namespace
}  // namespace stalecert::core
