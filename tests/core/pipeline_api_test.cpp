#include "stalecert/core/pipeline.hpp"

#include <gtest/gtest.h>

#include "stalecert/sim/world.hpp"

namespace stalecert::core {
namespace {

using util::Date;

class PipelineApiFixture : public ::testing::Test {
 protected:
  static sim::World& world() {
    static sim::World* instance = [] {
      auto* w = new sim::World(sim::small_test_config());
      w->run();
      return w;
    }();
    return *instance;
  }

  static PipelineConfig default_config() {
    PipelineConfig config;
    config.delegation_patterns = world().cloudflare_delegation_patterns();
    config.managed_san_pattern = world().cloudflare_san_pattern();
    return config;
  }

  static PipelineResult run(const PipelineConfig& config) {
    return run_pipeline(world().ct_logs(), world().crl_collection().store(),
                        world().whois().re_registrations(), world().adns(),
                        config);
  }
};

TEST_F(PipelineApiFixture, OneCallMatchesManualSteps) {
  const auto result = run(default_config());

  // Manual steps for comparison.
  CertificateCorpus corpus(world().ct_logs().collect());
  const auto manual_revocations =
      analyze_revocations(corpus, world().crl_collection().store(), {});
  const auto manual_registrant =
      detect_registrant_change(corpus, world().whois().re_registrations());

  EXPECT_EQ(result.corpus.size(), corpus.size());
  EXPECT_EQ(result.revocations.all_revoked.size(),
            manual_revocations.all_revoked.size());
  EXPECT_EQ(result.registrant_change.size(), manual_registrant.size());
  EXPECT_GT(result.managed_departure.size(), 0u);
}

TEST_F(PipelineApiFixture, AllThirdPartyConcatenates) {
  const auto result = run(default_config());
  EXPECT_EQ(result.all_third_party().size(),
            result.revocations.key_compromise.size() +
                result.registrant_change.size() +
                result.managed_departure.size());
  EXPECT_EQ(&result.of(StaleClass::kKeyCompromise),
            &result.revocations.key_compromise);
  EXPECT_EQ(&result.of(StaleClass::kRegistrantChange), &result.registrant_change);
  EXPECT_EQ(&result.of(StaleClass::kManagedTlsDeparture),
            &result.managed_departure);
}

TEST_F(PipelineApiFixture, CutoffReducesRevocations) {
  PipelineConfig with_cutoff = default_config();
  with_cutoff.revocation_cutoff = Date::parse("2022-06-01");
  const auto filtered = run(with_cutoff);
  const auto unfiltered = run(default_config());
  EXPECT_LE(filtered.revocations.all_revoked.size(),
            unfiltered.revocations.all_revoked.size());
  for (const auto& stale : filtered.revocations.all_revoked) {
    EXPECT_GE(stale.event_date, Date::parse("2022-06-01"));
  }
}

TEST_F(PipelineApiFixture, LoosePostureFindsAtLeastAsMuch) {
  PipelineConfig loose = default_config();
  loose.require_previous_whois_observation = false;
  // Loose mode consumes new_registrations (first sightings included).
  const auto loose_result = run_pipeline(
      world().ct_logs(), world().crl_collection().store(),
      world().whois().new_registrations(), world().adns(), loose);
  const auto conservative = run(default_config());
  EXPECT_GE(loose_result.registrant_change.size(),
            conservative.registrant_change.size());
}

TEST_F(PipelineApiFixture, NoManagedPatternsSkipsDetection) {
  PipelineConfig config;  // no delegation patterns
  const auto result = run(config);
  EXPECT_TRUE(result.managed_departure.empty());
}

TEST_F(PipelineApiFixture, LowerBoundMissesScenario1Transfers) {
  // Ground truth: scenario-1 transfers happened in the world...
  EXPECT_GT(world().stats().domains_transferred, 0u);

  // ...and the registry recorded them without a creation-date reset...
  std::uint64_t transfers = 0;
  std::set<std::string> transferred_domains;
  for (const auto& change : world().registry().ownership_changes()) {
    if (change.kind == registrar::AcquisitionKind::kTransfer) {
      ++transfers;
      transferred_domains.insert(change.domain);
      EXPECT_FALSE(change.creation_date_reset);
    }
  }
  EXPECT_EQ(transfers, world().stats().domains_transferred);

  // ...so the WHOIS-based detector reports NONE of them unless the same
  // name was also independently re-registered (§4.4: the measurement is a
  // lower bound).
  const auto result = run(default_config());
  std::set<std::string> rereg_domains;
  for (const auto& change : world().registry().ownership_changes()) {
    if (change.creation_date_reset) rereg_domains.insert(change.domain);
  }
  for (const auto& stale : result.registrant_change) {
    const bool via_transfer_only = transferred_domains.contains(stale.trigger_domain) &&
                                   !rereg_domains.contains(stale.trigger_domain);
    EXPECT_FALSE(via_transfer_only)
        << stale.trigger_domain << " detected without a creation-date reset";
  }
}

}  // namespace
}  // namespace stalecert::core
