#include "stalecert/core/taxonomy.hpp"

#include <gtest/gtest.h>

namespace stalecert::core {
namespace {

TEST(TaxonomyTest, ThirdPartyEventsEnableImpersonation) {
  // Table 2: exactly three event kinds hand keys to a third party.
  for (const auto event :
       {InvalidationEvent::kDomainOwnershipChange,
        InvalidationEvent::kKeyOwnershipChange,
        InvalidationEvent::kManagedTlsDeparture}) {
    const SecurityImplication impl = classify(event);
    EXPECT_EQ(impl.party, ControllingParty::kThirdParty) << to_string(event);
    EXPECT_TRUE(impl.enables_impersonation) << to_string(event);
  }
}

TEST(TaxonomyTest, FirstPartyEventsAreBenign) {
  for (const auto event :
       {InvalidationEvent::kDomainUseChange, InvalidationEvent::kKeyUseChange,
        InvalidationEvent::kKeyAuthorizationChange,
        InvalidationEvent::kRevocationInfoChange}) {
    const SecurityImplication impl = classify(event);
    EXPECT_EQ(impl.party, ControllingParty::kFirstParty) << to_string(event);
    EXPECT_FALSE(impl.enables_impersonation) << to_string(event);
  }
}

TEST(TaxonomyTest, CategoryAssignment) {
  // Table 2 column 2.
  EXPECT_EQ(category_of(InvalidationEvent::kDomainOwnershipChange),
            InfoCategory::kSubscriberAuthentication);
  EXPECT_EQ(category_of(InvalidationEvent::kKeyOwnershipChange),
            InfoCategory::kSubscriberAuthentication);
  EXPECT_EQ(category_of(InvalidationEvent::kManagedTlsDeparture),
            InfoCategory::kSubscriberAuthentication);
  EXPECT_EQ(category_of(InvalidationEvent::kKeyAuthorizationChange),
            InfoCategory::kKeyAuthorization);
  EXPECT_EQ(category_of(InvalidationEvent::kRevocationInfoChange),
            InfoCategory::kIssuerInformation);
}

TEST(TaxonomyTest, RelatedFieldsMatchTable1) {
  const auto sub = related_fields(InfoCategory::kSubscriberAuthentication);
  EXPECT_NE(std::find(sub.begin(), sub.end(), "SAN"), sub.end());
  EXPECT_NE(std::find(sub.begin(), sub.end(), "Subject Public Key"), sub.end());
  const auto meta = related_fields(InfoCategory::kCertificateMetadata);
  EXPECT_NE(std::find(meta.begin(), meta.end(), "Precert Poison"), meta.end());
  EXPECT_EQ(related_fields(InfoCategory::kKeyAuthorization).size(), 3u);
  EXPECT_EQ(related_fields(InfoCategory::kIssuerInformation).size(), 6u);
}

TEST(TaxonomyTest, StaleClassMapping) {
  EXPECT_EQ(event_of(StaleClass::kKeyCompromise),
            InvalidationEvent::kKeyOwnershipChange);
  EXPECT_EQ(event_of(StaleClass::kRegistrantChange),
            InvalidationEvent::kDomainOwnershipChange);
  EXPECT_EQ(event_of(StaleClass::kManagedTlsDeparture),
            InvalidationEvent::kManagedTlsDeparture);
  // Every measured stale class is a third-party impersonation hazard.
  for (const auto cls :
       {StaleClass::kKeyCompromise, StaleClass::kRegistrantChange,
        StaleClass::kManagedTlsDeparture}) {
    EXPECT_TRUE(classify(event_of(cls)).enables_impersonation);
  }
}

TEST(TaxonomyTest, ReasonCodeMappingIsLossy) {
  using revocation::ReasonCode;
  EXPECT_EQ(event_from_reason(ReasonCode::kKeyCompromise),
            InvalidationEvent::kKeyOwnershipChange);
  EXPECT_EQ(event_from_reason(ReasonCode::kSuperseded),
            InvalidationEvent::kKeyUseChange);
  EXPECT_EQ(event_from_reason(ReasonCode::kAffiliationChanged),
            InvalidationEvent::kDomainOwnershipChange);
  // The ambiguity the paper calls out: cessationOfOperation defaults to the
  // benign reading even though it may hide a squatted domain.
  EXPECT_EQ(event_from_reason(ReasonCode::kCessationOfOperation),
            InvalidationEvent::kDomainUseChange);
}

TEST(TaxonomyTest, StringsAreHumanReadable) {
  EXPECT_EQ(to_string(StaleClass::kKeyCompromise), "key compromise");
  EXPECT_EQ(to_string(StaleClass::kManagedTlsDeparture), "managed TLS departure");
  EXPECT_EQ(to_string(InfoCategory::kSubscriberAuthentication),
            "Subscriber authentication");
  EXPECT_EQ(to_string(InvalidationEvent::kDomainOwnershipChange),
            "domain ownership change");
}

}  // namespace
}  // namespace stalecert::core
