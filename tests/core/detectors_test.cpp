#include "stalecert/core/detectors.hpp"

#include <gtest/gtest.h>

namespace stalecert::core {
namespace {

using util::Date;

x509::Certificate make_cert(std::vector<std::string> sans, std::uint64_t serial,
                            const char* nb, const char* na,
                            const crypto::Digest* aki = nullptr) {
  x509::CertificateBuilder builder;
  builder.serial(serial)
      .subject_cn(sans.front())
      .validity(Date::parse(nb), Date::parse(na))
      .key(crypto::KeyPair::derive("k" + std::to_string(serial),
                                   crypto::KeyAlgorithm::kEcdsaP256))
      .dns_names(sans);
  if (aki) builder.authority_key_id(*aki);
  return builder.build();
}

// ---------- Key compromise ----------

TEST(RevocationAnalysisTest, SplitsKeyCompromiseSubset) {
  const auto aki = crypto::Sha256::hash("issuer");
  CertificateCorpus corpus({
      make_cert({"kc.com"}, 1, "2022-01-01", "2022-12-01", &aki),
      make_cert({"other.com"}, 2, "2022-01-01", "2022-12-01", &aki),
      make_cert({"clean.com"}, 3, "2022-01-01", "2022-12-01", &aki),
  });
  revocation::RevocationStore store;
  store.add(aki, corpus.at(0).serial(),
            {Date::parse("2022-06-01"), revocation::ReasonCode::kKeyCompromise});
  store.add(aki, corpus.at(1).serial(),
            {Date::parse("2022-07-01"), revocation::ReasonCode::kSuperseded});

  const auto result = analyze_revocations(corpus, store, {});
  EXPECT_EQ(result.all_revoked.size(), 2u);
  ASSERT_EQ(result.key_compromise.size(), 1u);
  const auto& stale = result.key_compromise[0];
  EXPECT_EQ(stale.cls, StaleClass::kKeyCompromise);
  EXPECT_EQ(stale.event_date, Date::parse("2022-06-01"));
  EXPECT_EQ(stale.staleness.end(), Date::parse("2022-12-01"));
  EXPECT_EQ(stale.trigger_domain, "kc.com");
  EXPECT_EQ(stale.reason, revocation::ReasonCode::kKeyCompromise);
  EXPECT_EQ(result.join_stats.kept, 2u);
}

TEST(RevocationAnalysisTest, FiltersMirrorPaper) {
  const auto aki = crypto::Sha256::hash("issuer");
  CertificateCorpus corpus({
      make_cert({"early.com"}, 1, "2022-01-01", "2022-12-01", &aki),
      make_cert({"late.com"}, 2, "2022-01-01", "2022-12-01", &aki),
      make_cert({"precut.com"}, 3, "2022-01-01", "2022-12-01", &aki),
  });
  revocation::RevocationStore store;
  store.add(aki, corpus.at(0).serial(), {Date::parse("2021-06-01"), {}});  // before valid
  store.add(aki, corpus.at(1).serial(), {Date::parse("2023-06-01"), {}});  // after expiry
  store.add(aki, corpus.at(2).serial(), {Date::parse("2022-02-01"), {}});  // before cutoff

  revocation::JoinFilters filters;
  filters.min_revocation_date = Date::parse("2022-03-01");
  const auto result = analyze_revocations(corpus, store, filters);
  EXPECT_TRUE(result.all_revoked.empty());
  EXPECT_EQ(result.join_stats.dropped_before_valid, 1u);
  EXPECT_EQ(result.join_stats.dropped_after_expiry, 1u);
  EXPECT_EQ(result.join_stats.dropped_before_cutoff, 1u);
}

// ---------- Registrant change ----------

TEST(RegistrantChangeTest, ValiditySpanningCreationDateDetected) {
  CertificateCorpus corpus({
      make_cert({"sold.com", "www.sold.com"}, 1, "2022-01-01", "2022-12-01"),
      make_cert({"kept.com"}, 2, "2022-01-01", "2022-12-01"),
  });
  std::vector<whois::NewRegistration> events;
  events.push_back({"sold.com", Date::parse("2022-06-15"),
                    Date::parse("2019-03-01")});

  const auto stale = detect_registrant_change(corpus, events);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].cls, StaleClass::kRegistrantChange);
  EXPECT_EQ(stale[0].trigger_domain, "sold.com");
  EXPECT_EQ(stale[0].event_date, Date::parse("2022-06-15"));
  EXPECT_EQ(stale[0].staleness_days(),
            Date::parse("2022-12-01") - Date::parse("2022-06-15"));
}

TEST(RegistrantChangeTest, StrictBoundaryConditions) {
  CertificateCorpus corpus({
      make_cert({"edge.com"}, 1, "2022-01-01", "2022-12-01"),
  });
  // notBefore < creation < notAfter must be STRICT on both ends.
  for (const char* date : {"2022-01-01", "2022-12-01"}) {
    std::vector<whois::NewRegistration> events;
    events.push_back({"edge.com", Date::parse(date), Date::parse("2020-01-01")});
    EXPECT_TRUE(detect_registrant_change(corpus, events).empty()) << date;
  }
  std::vector<whois::NewRegistration> inside;
  inside.push_back({"edge.com", Date::parse("2022-01-02"), Date::parse("2020-01-01")});
  EXPECT_EQ(detect_registrant_change(corpus, inside).size(), 1u);
}

TEST(RegistrantChangeTest, FirstSightingsExcludedByDefault) {
  CertificateCorpus corpus({
      make_cert({"first.com"}, 1, "2022-01-01", "2022-12-01"),
  });
  std::vector<whois::NewRegistration> events;
  events.push_back({"first.com", Date::parse("2022-06-15"), std::nullopt});

  EXPECT_TRUE(detect_registrant_change(corpus, events).empty());
  RegistrantChangeOptions loose;
  loose.require_previous_observation = false;
  EXPECT_EQ(detect_registrant_change(corpus, events, loose).size(), 1u);
}

TEST(RegistrantChangeTest, SubdomainCertsCaughtViaE2ld) {
  CertificateCorpus corpus({
      make_cert({"api.sold.com"}, 1, "2022-01-01", "2022-12-01"),
  });
  std::vector<whois::NewRegistration> events;
  events.push_back({"sold.com", Date::parse("2022-06-15"), Date::parse("2019-01-01")});
  EXPECT_EQ(detect_registrant_change(corpus, events).size(), 1u);
}

// ---------- Managed TLS departure ----------

dns::DailySnapshot snapshot(const char* date,
                            std::map<std::string, dns::DomainRecords> records) {
  return {Date::parse(date), std::move(records)};
}

dns::DomainRecords cf_records() {
  dns::DomainRecords records;
  records.ns = {"amy1.ns.cloudflare.com", "bob2.ns.cloudflare.com"};
  return records;
}

dns::DomainRecords self_records() {
  dns::DomainRecords records;
  records.ns = {"ns1.newhost.example"};
  records.a = {"203.0.113.1"};
  return records;
}

ManagedTlsOptions cf_options() {
  ManagedTlsOptions options;
  options.delegation_patterns = {"*.ns.cloudflare.com", "*.cdn.cloudflare.com"};
  options.managed_san_pattern = "sni*.cloudflaressl.com";
  return options;
}

TEST(DepartureDetectionTest, DayOverDayDiff) {
  dns::SnapshotStore store;
  store.add(snapshot("2022-08-01", {{"stay.com", cf_records()},
                                    {"leave.com", cf_records()}}));
  store.add(snapshot("2022-08-02", {{"stay.com", cf_records()},
                                    {"leave.com", self_records()}}));

  const auto departures = detect_departures(store, cf_options());
  ASSERT_EQ(departures.size(), 1u);
  EXPECT_EQ(departures[0].domain, "leave.com");
  EXPECT_EQ(departures[0].date, Date::parse("2022-08-02"));
}

TEST(DepartureDetectionTest, DisappearanceFromSnapshotCounts) {
  dns::SnapshotStore store;
  store.add(snapshot("2022-08-01", {{"gone.com", cf_records()}}));
  store.add(snapshot("2022-08-02", {}));
  EXPECT_EQ(detect_departures(store, cf_options()).size(), 1u);
}

TEST(DepartureDetectionTest, NonDelegatedDomainsIgnored) {
  dns::SnapshotStore store;
  store.add(snapshot("2022-08-01", {{"independent.com", self_records()}}));
  store.add(snapshot("2022-08-02", {}));
  EXPECT_TRUE(detect_departures(store, cf_options()).empty());
}

TEST(ManagedTlsDepartureTest, OnlyManagedCertsCounted) {
  CertificateCorpus corpus({
      // Managed cruise-liner covering leave.com.
      make_cert({"sni123.cloudflaressl.com", "leave.com", "*.leave.com"}, 1,
                "2022-01-01", "2022-12-01"),
      // Customer-uploaded cert for the same domain: NOT managed.
      make_cert({"leave.com"}, 2, "2022-01-01", "2022-12-01"),
  });
  dns::SnapshotStore store;
  store.add(snapshot("2022-08-01", {{"leave.com", cf_records()}}));
  store.add(snapshot("2022-08-02", {{"leave.com", self_records()}}));

  const auto stale = detect_managed_tls_departure(corpus, store, cf_options());
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].corpus_index, 0u);
  EXPECT_EQ(stale[0].cls, StaleClass::kManagedTlsDeparture);
  EXPECT_EQ(stale[0].event_date, Date::parse("2022-08-02"));
  EXPECT_EQ(stale[0].trigger_domain, "leave.com");
}

TEST(ManagedTlsDepartureTest, ExpiredManagedCertNotStale) {
  CertificateCorpus corpus({
      make_cert({"sni9.cloudflaressl.com", "leave.com"}, 1, "2021-01-01",
                "2022-01-01"),
  });
  dns::SnapshotStore store;
  store.add(snapshot("2022-08-01", {{"leave.com", cf_records()}}));
  store.add(snapshot("2022-08-02", {}));
  EXPECT_TRUE(detect_managed_tls_departure(corpus, store, cf_options()).empty());
}

TEST(ManagedTlsDepartureTest, ReenrollmentProducesOneEventPerDepartureDay) {
  CertificateCorpus corpus({
      make_cert({"sni9.cloudflaressl.com", "flap.com"}, 1, "2022-01-01",
                "2022-12-01"),
  });
  dns::SnapshotStore store;
  store.add(snapshot("2022-08-01", {{"flap.com", cf_records()}}));
  store.add(snapshot("2022-08-02", {{"flap.com", self_records()}}));
  store.add(snapshot("2022-08-03", {{"flap.com", cf_records()}}));
  store.add(snapshot("2022-08-04", {{"flap.com", self_records()}}));

  // Two departures, but (cert, domain) dedup keeps a single stale record.
  EXPECT_EQ(detect_departures(store, cf_options()).size(), 2u);
  EXPECT_EQ(detect_managed_tls_departure(corpus, store, cf_options()).size(), 1u);
}

// ---------- First-party key rotation ----------

x509::Certificate make_keyed_cert(std::vector<std::string> sans,
                                  std::uint64_t serial, const char* nb,
                                  const char* na, const char* key_label) {
  return x509::CertificateBuilder{}
      .serial(serial)
      .subject_cn(sans.front())
      .validity(Date::parse(nb), Date::parse(na))
      .key(crypto::KeyPair::derive(key_label, crypto::KeyAlgorithm::kEcdsaP256))
      .dns_names(sans)
      .build();
}

TEST(KeyRotationTest, RotationDetectedRenewalIgnored) {
  CertificateCorpus corpus({
      // Rotation: new key while the old cert is valid.
      make_keyed_cert({"rot.com"}, 1, "2022-01-01", "2022-12-01", "key-old"),
      make_keyed_cert({"rot.com"}, 2, "2022-06-01", "2023-06-01", "key-new"),
      // Renewal with the SAME key: not an invalidation event.
      make_keyed_cert({"renew.com"}, 3, "2022-01-01", "2022-12-01", "same-key"),
      make_keyed_cert({"renew.com"}, 4, "2022-10-01", "2023-10-01", "same-key"),
  });
  const auto rotations = detect_key_rotation(corpus);
  ASSERT_EQ(rotations.size(), 1u);
  EXPECT_EQ(rotations[0].e2ld, "rot.com");
  EXPECT_EQ(rotations[0].rotation_date, Date::parse("2022-06-01"));
  EXPECT_EQ(rotations[0].staleness_days(),
            Date::parse("2022-12-01") - Date::parse("2022-06-01"));
  EXPECT_EQ(corpus.at(rotations[0].corpus_index).serial_hex(), "01");
  EXPECT_EQ(corpus.at(rotations[0].successor_index).serial_hex(), "02");
}

TEST(KeyRotationTest, DisjointValidityIsNotRotation) {
  CertificateCorpus corpus({
      make_keyed_cert({"gap.com"}, 1, "2021-01-01", "2021-06-01", "k1"),
      make_keyed_cert({"gap.com"}, 2, "2022-01-01", "2022-06-01", "k2"),
  });
  EXPECT_TRUE(detect_key_rotation(corpus).empty());
}

TEST(KeyRotationTest, DifferentNamesUnderSameE2ldNotConfused) {
  // api.foo.com and web.foo.com have independent certs/keys: no rotation.
  CertificateCorpus corpus({
      make_keyed_cert({"api.foo.com"}, 1, "2022-01-01", "2022-12-01", "ka"),
      make_keyed_cert({"web.foo.com"}, 2, "2022-06-01", "2023-06-01", "kb"),
  });
  EXPECT_TRUE(detect_key_rotation(corpus).empty());
}

TEST(KeyRotationTest, ChainOfRotations) {
  CertificateCorpus corpus({
      make_keyed_cert({"chain.com"}, 1, "2022-01-01", "2022-12-01", "k1"),
      make_keyed_cert({"chain.com"}, 2, "2022-04-01", "2023-04-01", "k2"),
      make_keyed_cert({"chain.com"}, 3, "2022-08-01", "2023-08-01", "k3"),
  });
  // Cert 1 superseded by 2; cert 2 superseded by 3.
  const auto rotations = detect_key_rotation(corpus);
  EXPECT_EQ(rotations.size(), 2u);
}

// Lower-bound (conservativeness) property: every detected record's validity
// truly spans its event date.
TEST(DetectorPropertyTest, EveryDetectionIntersectsEvent) {
  const auto aki = crypto::Sha256::hash("issuer");
  std::vector<x509::Certificate> certs;
  for (std::uint64_t i = 0; i < 50; ++i) {
    certs.push_back(make_cert({"d" + std::to_string(i) + ".com"}, i + 1,
                              "2022-01-01", "2022-12-01", &aki));
  }
  CertificateCorpus corpus(std::move(certs));
  std::vector<whois::NewRegistration> events;
  for (std::uint64_t i = 0; i < 50; ++i) {
    events.push_back({"d" + std::to_string(i) + ".com",
                      Date::parse("2021-06-01") + static_cast<std::int64_t>(i * 14),
                      Date::parse("2019-01-01")});
  }
  for (const auto& stale : detect_registrant_change(corpus, events)) {
    const auto& cert = corpus.at(stale.corpus_index);
    EXPECT_GT(stale.event_date, cert.not_before());
    EXPECT_LT(stale.event_date, cert.not_after());
    EXPECT_GT(stale.staleness_days(), 0);
  }
}

}  // namespace
}  // namespace stalecert::core
