#include "stalecert/core/lifetime.hpp"

#include <gtest/gtest.h>

namespace stalecert::core {
namespace {

using util::Date;

x509::Certificate make_cert(std::uint64_t serial, const char* nb, const char* na) {
  return x509::CertificateBuilder{}
      .serial(serial)
      .subject_cn("d" + std::to_string(serial) + ".com")
      .validity(Date::parse(nb), Date::parse(na))
      .key(crypto::KeyPair::derive("k" + std::to_string(serial),
                                   crypto::KeyAlgorithm::kEcdsaP256))
      .add_dns_name("d" + std::to_string(serial) + ".com")
      .build();
}

StaleCertificate stale_record(std::size_t index, const char* event,
                              const CertificateCorpus& corpus) {
  StaleCertificate record;
  record.corpus_index = index;
  record.cls = StaleClass::kRegistrantChange;
  record.event_date = Date::parse(event);
  record.staleness =
      util::DateInterval{record.event_date, corpus.at(index).not_after()};
  record.trigger_domain = "d" + std::to_string(index) + ".com";
  return record;
}

class LifetimeFixture : public ::testing::Test {
 protected:
  LifetimeFixture()
      : corpus_({
            make_cert(0, "2022-01-01", "2023-01-01"),  // 365-day cert
            make_cert(1, "2022-01-01", "2022-03-01"),  // 59-day cert
        }) {}
  CertificateCorpus corpus_;
};

TEST_F(LifetimeFixture, CapEliminatesLateEvents) {
  // Event at day 180 of a 365-day cert: a 90-day cap removes it entirely.
  const std::vector<StaleCertificate> stale = {
      stale_record(0, "2022-06-30", corpus_)};
  const CapResult result = simulate_cap(corpus_, stale, 90);
  EXPECT_EQ(result.original_count, 1u);
  EXPECT_EQ(result.surviving_count, 0u);
  EXPECT_DOUBLE_EQ(result.cert_reduction(), 1.0);
  EXPECT_DOUBLE_EQ(result.staleness_days_reduction(), 1.0);
}

TEST_F(LifetimeFixture, CapShortensEarlyEvents) {
  // Event at day 30: under a 90-day cap the cert is stale for 60 days
  // instead of 335.
  const std::vector<StaleCertificate> stale = {
      stale_record(0, "2022-01-31", corpus_)};
  const CapResult result = simulate_cap(corpus_, stale, 90);
  EXPECT_EQ(result.surviving_count, 1u);
  EXPECT_DOUBLE_EQ(result.original_staleness_days, 335.0);
  EXPECT_DOUBLE_EQ(result.capped_staleness_days, 60.0);
  EXPECT_NEAR(result.staleness_days_reduction(), 1.0 - 60.0 / 335.0, 1e-9);
}

TEST_F(LifetimeFixture, ShortCertsUntouched) {
  // The 59-day cert is shorter than the 90-day cap: nothing changes.
  const std::vector<StaleCertificate> stale = {
      stale_record(1, "2022-02-01", corpus_)};
  const CapResult result = simulate_cap(corpus_, stale, 90);
  EXPECT_EQ(result.surviving_count, 1u);
  EXPECT_DOUBLE_EQ(result.capped_staleness_days, result.original_staleness_days);
  EXPECT_DOUBLE_EQ(result.staleness_days_reduction(), 0.0);
}

TEST_F(LifetimeFixture, SweepIsMonotoneInCap) {
  std::vector<StaleCertificate> stale;
  for (int day = 10; day < 360; day += 25) {
    StaleCertificate record = stale_record(0, "2022-01-01", corpus_);
    record.event_date = Date::parse("2022-01-01") + day;
    record.staleness =
        util::DateInterval{record.event_date, corpus_.at(0).not_after()};
    stale.push_back(record);
  }
  const auto results = simulate_caps(corpus_, stale, {45, 90, 215, 398});
  for (std::size_t i = 1; i < results.size(); ++i) {
    // Longer caps keep MORE staleness (reduction decreases monotonically).
    EXPECT_LE(results[i].staleness_days_reduction(),
              results[i - 1].staleness_days_reduction());
    EXPECT_GE(results[i].surviving_count, results[i - 1].surviving_count);
  }
  for (const auto& result : results) {
    EXPECT_GE(result.staleness_days_reduction(), 0.0);
    EXPECT_LE(result.staleness_days_reduction(), 1.0);
    EXPECT_LE(result.capped_staleness_days, result.original_staleness_days);
  }
}

TEST_F(LifetimeFixture, EmptySetIsSafe) {
  const CapResult result = simulate_cap(corpus_, {}, 90);
  EXPECT_EQ(result.original_count, 0u);
  EXPECT_DOUBLE_EQ(result.cert_reduction(), 0.0);
  EXPECT_DOUBLE_EQ(result.staleness_days_reduction(), 0.0);
}

TEST_F(LifetimeFixture, SurvivalCurveMonotoneNonIncreasing) {
  std::vector<StaleCertificate> stale;
  for (int day = 5; day < 360; day += 18) {
    StaleCertificate record = stale_record(0, "2022-01-01", corpus_);
    record.event_date = Date::parse("2022-01-01") + day;
    record.staleness =
        util::DateInterval{record.event_date, corpus_.at(0).not_after()};
    stale.push_back(record);
  }
  std::vector<std::int64_t> days;
  for (std::int64_t n = 0; n <= 400; n += 20) days.push_back(n);
  const auto curve = survival_curve(corpus_, stale, days);
  ASSERT_EQ(curve.size(), days.size());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].surviving_fraction, curve[i - 1].surviving_fraction);
    EXPECT_GE(curve[i].surviving_fraction, 0.0);
    EXPECT_LE(curve[i].surviving_fraction, 1.0);
  }
  // All events happen within 360 days -> survival at 400 is zero.
  EXPECT_DOUBLE_EQ(curve.back().surviving_fraction, 0.0);
}

TEST_F(LifetimeFixture, EliminationUpperBound) {
  std::vector<StaleCertificate> stale = {
      stale_record(0, "2022-02-01", corpus_),  // offset 31
      stale_record(0, "2022-07-01", corpus_),  // offset 181
  };
  EXPECT_DOUBLE_EQ(elimination_upper_bound(corpus_, stale, 90), 0.5);
  EXPECT_DOUBLE_EQ(elimination_upper_bound(corpus_, stale, 10), 1.0);
  EXPECT_DOUBLE_EQ(elimination_upper_bound(corpus_, stale, 365), 0.0);
  EXPECT_DOUBLE_EQ(elimination_upper_bound(corpus_, {}, 90), 0.0);
}

}  // namespace
}  // namespace stalecert::core
