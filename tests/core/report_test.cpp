#include "stalecert/core/report.hpp"

#include <gtest/gtest.h>

#include "stalecert/sim/world.hpp"

namespace stalecert::core {
namespace {

class ReportFixture : public ::testing::Test {
 protected:
  static const PipelineResult& result() {
    static const PipelineResult* instance = [] {
      auto world = std::make_unique<sim::World>(sim::small_test_config());
      world->run();
      PipelineConfig config;
      config.delegation_patterns = world->cloudflare_delegation_patterns();
      config.managed_san_pattern = world->cloudflare_san_pattern();
      auto* r = new PipelineResult(run_pipeline(
          world->ct_logs(), world->crl_collection().store(),
          world->whois().re_registrations(), world->adns(), config));
      return r;
    }();
    return *instance;
  }
};

TEST_F(ReportFixture, ContainsAllSections) {
  const std::string report = render_markdown_report(result());
  EXPECT_NE(report.find("# Stale TLS certificate survey"), std::string::npos);
  EXPECT_NE(report.find("## Corpus"), std::string::npos);
  EXPECT_NE(report.find("## Revocation join"), std::string::npos);
  EXPECT_NE(report.find("### key compromise"), std::string::npos);
  EXPECT_NE(report.find("### domain registrant change"), std::string::npos);
  EXPECT_NE(report.find("### managed TLS departure"), std::string::npos);
  EXPECT_NE(report.find("## Combined what-if"), std::string::npos);
}

TEST_F(ReportFixture, CustomTitleAndCaps) {
  ReportOptions options;
  options.title = "Nightly run #42";
  options.caps = {7};
  options.survival_days = {30};
  const std::string report = render_markdown_report(result(), options);
  EXPECT_NE(report.find("# Nightly run #42"), std::string::npos);
  EXPECT_NE(report.find("| 7d |"), std::string::npos);
  EXPECT_EQ(report.find("| 215d |"), std::string::npos);
}

TEST_F(ReportFixture, CorpusNumbersMatchPipeline) {
  const std::string report = render_markdown_report(result());
  EXPECT_NE(report.find("**" + std::to_string(result().corpus.size()) + "**"),
            std::string::npos);
  EXPECT_NE(report.find("**" + std::to_string(
                            result().revocations.key_compromise.size()) +
                        "**"),
            std::string::npos);
}

TEST(ReportEmptyTest, EmptyPipelineRendersCleanly) {
  PipelineResult empty;
  const std::string report = render_markdown_report(empty);
  EXPECT_NE(report.find("_No detections._"), std::string::npos);
  EXPECT_NE(report.find("unique certificates: **0**"), std::string::npos);
}

}  // namespace
}  // namespace stalecert::core
