#include "stalecert/core/corpus.hpp"

#include <gtest/gtest.h>

#include "stalecert/util/error.hpp"

namespace stalecert::core {
namespace {

using util::Date;

x509::Certificate make_cert(std::vector<std::string> sans, std::uint64_t serial) {
  return x509::CertificateBuilder{}
      .serial(serial)
      .subject_cn(sans.front())
      .validity(Date::parse("2022-01-01"), Date::parse("2022-12-01"))
      .key(crypto::KeyPair::derive("k" + std::to_string(serial),
                                   crypto::KeyAlgorithm::kEcdsaP256))
      .dns_names(sans)
      .build();
}

TEST(StripWildcardTest, Basics) {
  EXPECT_EQ(strip_wildcard("*.foo.com"), "foo.com");
  EXPECT_EQ(strip_wildcard("foo.com"), "foo.com");
  EXPECT_EQ(strip_wildcard("www.*.com"), "www.*.com");  // only leading
}

TEST(CorpusTest, E2ldIndex) {
  CertificateCorpus corpus({
      make_cert({"foo.com", "www.foo.com"}, 1),
      make_cert({"bar.com"}, 2),
      make_cert({"api.foo.com"}, 3),
  });
  EXPECT_EQ(corpus.size(), 3u);
  const auto foo_hits = corpus.by_e2ld("foo.com");
  EXPECT_EQ(foo_hits.size(), 2u);
  EXPECT_EQ(corpus.by_e2ld("bar.com").size(), 1u);
  EXPECT_TRUE(corpus.by_e2ld("missing.com").empty());
}

TEST(CorpusTest, FqdnIndexStripsWildcards) {
  CertificateCorpus corpus({make_cert({"foo.com", "*.foo.com"}, 1)});
  EXPECT_EQ(corpus.by_fqdn("foo.com").size(), 1u);
  EXPECT_TRUE(corpus.by_fqdn("other.com").empty());
}

TEST(CorpusTest, CertWithManyNamesIndexedOncePerE2ld) {
  // A cruise-liner-style cert: many names under one e2LD must appear once.
  CertificateCorpus corpus({
      make_cert({"a.foo.com", "b.foo.com", "c.foo.com", "foo.com"}, 1),
  });
  EXPECT_EQ(corpus.by_e2ld("foo.com").size(), 1u);
}

TEST(CorpusTest, E2ldsSortedUnique) {
  CertificateCorpus corpus({
      make_cert({"z.com"}, 1),
      make_cert({"a.com"}, 2),
      make_cert({"www.a.com"}, 3),
  });
  EXPECT_EQ(corpus.e2lds(), (std::vector<std::string>{"a.com", "z.com"}));
}

TEST(CorpusTest, AtRangeChecked) {
  CertificateCorpus corpus({make_cert({"x.com"}, 1)});
  EXPECT_NO_THROW((void)corpus.at(0));
  EXPECT_THROW((void)corpus.at(1), stalecert::LogicError);
}

TEST(CorpusTest, CaseInsensitiveLookup) {
  CertificateCorpus corpus({make_cert({"MiXeD.com"}, 1)});
  EXPECT_EQ(corpus.by_e2ld("mixed.COM").size(), 1u);
}

x509::Certificate cert_with_validity(std::uint64_t serial, const char* nb,
                                     const char* na) {
  return x509::CertificateBuilder{}
      .serial(serial)
      .subject_cn("over.com")
      .validity(Date::parse(nb), Date::parse(na))
      .key(crypto::KeyPair::derive("ok" + std::to_string(serial),
                                   crypto::KeyAlgorithm::kEcdsaP256))
      .add_dns_name("over.com")
      .build();
}

TEST(CorpusOverlapTest, SweepLineCountsConcurrent) {
  // Three overlapping + one disjoint certificate for over.com.
  CertificateCorpus corpus({
      cert_with_validity(1, "2022-01-01", "2022-06-01"),
      cert_with_validity(2, "2022-02-01", "2022-07-01"),
      cert_with_validity(3, "2022-03-01", "2022-04-01"),
      cert_with_validity(4, "2023-01-01", "2023-02-01"),
  });
  const auto stats = corpus.overlap_stats("over.com");
  EXPECT_EQ(stats.certificates, 4u);
  EXPECT_EQ(stats.max_concurrent, 3u);
  EXPECT_EQ(stats.peak_date, Date::parse("2022-03-01"));
}

TEST(CorpusOverlapTest, TouchingIntervalsDoNotOverlap) {
  // Half-open validity: one cert ends the day the next begins.
  CertificateCorpus corpus({
      cert_with_validity(1, "2022-01-01", "2022-03-01"),
      cert_with_validity(2, "2022-03-01", "2022-06-01"),
  });
  EXPECT_EQ(corpus.overlap_stats("over.com").max_concurrent, 1u);
}

TEST(CorpusOverlapTest, UnknownDomainIsEmpty) {
  CertificateCorpus corpus({cert_with_validity(1, "2022-01-01", "2022-03-01")});
  const auto stats = corpus.overlap_stats("missing.com");
  EXPECT_EQ(stats.certificates, 0u);
  EXPECT_EQ(stats.max_concurrent, 0u);
}

TEST(CorpusTest, EmptyCorpus) {
  CertificateCorpus corpus;
  EXPECT_EQ(corpus.size(), 0u);
  EXPECT_TRUE(corpus.e2lds().empty());
}

}  // namespace
}  // namespace stalecert::core
