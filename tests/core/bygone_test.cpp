#include "stalecert/core/bygone.hpp"

#include <gtest/gtest.h>

namespace stalecert::core {
namespace {

using util::Date;

x509::Certificate make_cert(std::vector<std::string> sans, std::uint64_t serial,
                            const char* nb, const char* na) {
  return x509::CertificateBuilder{}
      .serial(serial)
      .subject_cn(sans.front())
      .validity(Date::parse(nb), Date::parse(na))
      .key(crypto::KeyPair::derive("bk" + std::to_string(serial),
                                   crypto::KeyAlgorithm::kEcdsaP256))
      .dns_names(sans)
      .build();
}

TEST(BygoneTest, FindsPriorOwnersLiveCertificates) {
  CertificateCorpus corpus({
      // Prior owner's cert spanning the acquisition: bygone.
      make_cert({"sold.com", "www.sold.com"}, 1, "2022-01-01", "2022-12-01"),
      // Expired before acquisition: harmless.
      make_cert({"sold.com"}, 2, "2021-01-01", "2021-06-01"),
      // Issued after acquisition (by the new owner): not bygone.
      make_cert({"sold.com"}, 3, "2022-08-01", "2023-01-01"),
      // Unrelated domain.
      make_cert({"other.com"}, 4, "2022-01-01", "2022-12-01"),
  });

  const BygoneReport report =
      check_bygone(corpus, "Sold.COM", Date::parse("2022-06-15"));
  EXPECT_EQ(report.domain, "sold.com");
  ASSERT_EQ(report.certificates.size(), 1u);
  const auto& bygone = report.certificates[0];
  EXPECT_EQ(bygone.corpus_index, 0u);
  EXPECT_EQ(bygone.residual_days,
            Date::parse("2022-12-01") - Date::parse("2022-06-15"));
  EXPECT_EQ(bygone.covered_names,
            (std::vector<std::string>{"sold.com", "www.sold.com"}));
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.safe_after(), Date::parse("2022-12-01"));
}

TEST(BygoneTest, CleanDomain) {
  CertificateCorpus corpus({make_cert({"other.com"}, 1, "2022-01-01", "2022-12-01")});
  const BygoneReport report =
      check_bygone(corpus, "fresh.com", Date::parse("2022-06-15"));
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.safe_after(), Date::parse("2022-06-15"));
}

TEST(BygoneTest, SortedByResidualDescending) {
  CertificateCorpus corpus({
      make_cert({"sold.com"}, 1, "2022-01-01", "2022-08-01"),
      make_cert({"sold.com"}, 2, "2022-02-01", "2023-02-01"),
      make_cert({"sold.com"}, 3, "2022-03-01", "2022-10-01"),
  });
  const BygoneReport report =
      check_bygone(corpus, "sold.com", Date::parse("2022-06-15"));
  ASSERT_EQ(report.certificates.size(), 3u);
  EXPECT_GE(report.certificates[0].residual_days,
            report.certificates[1].residual_days);
  EXPECT_GE(report.certificates[1].residual_days,
            report.certificates[2].residual_days);
  EXPECT_EQ(report.safe_after(), Date::parse("2023-02-01"));
}

TEST(BygoneTest, SubdomainCertsOfTheE2ldAreCaught) {
  // A cruise-liner cert containing a subdomain of the acquired e2LD.
  CertificateCorpus corpus({
      make_cert({"sni1.cloudflaressl.com", "shop.sold.com", "*.shop.sold.com"}, 1,
                "2022-01-01", "2022-12-01"),
  });
  const BygoneReport report =
      check_bygone(corpus, "sold.com", Date::parse("2022-06-15"));
  ASSERT_EQ(report.certificates.size(), 1u);
  // Only the acquired domain's names are listed, not the sni marker.
  for (const auto& name : report.certificates[0].covered_names) {
    EXPECT_NE(name.find("sold.com"), std::string::npos);
  }
}

TEST(BygoneTest, BoundaryDatesExcluded) {
  CertificateCorpus corpus({make_cert({"sold.com"}, 1, "2022-01-01", "2022-12-01")});
  // Acquired exactly at notBefore: cert was not issued strictly before.
  EXPECT_TRUE(check_bygone(corpus, "sold.com", Date::parse("2022-01-01")).clean());
  // Acquired exactly at notAfter: no residual validity.
  EXPECT_TRUE(check_bygone(corpus, "sold.com", Date::parse("2022-12-01")).clean());
}

}  // namespace
}  // namespace stalecert::core
