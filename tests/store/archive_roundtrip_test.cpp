// Round-trip fidelity: a world archived to .scw and loaded back must be
// indistinguishable from the original across every Table-3 dataset — same
// CT logs and entries, same revocation observations, same WHOIS event
// stream, same aDNS snapshots, same ground-truth stats — and the pipeline
// must produce identical detections from both.
#include <gtest/gtest.h>

#include <string>

#include "stalecert/core/pipeline.hpp"
#include "stalecert/obs/observer.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/store/archive.hpp"

namespace stalecert::store {
namespace {

const sim::World& test_world() {
  static sim::World* world = [] {
    auto* w = new sim::World(sim::small_test_config());
    w->run();
    return w;
  }();
  return *world;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

core::PipelineConfig pipeline_config_for(
    const std::vector<std::string>& delegation_patterns,
    const std::string& san_pattern, std::optional<util::Date> cutoff) {
  core::PipelineConfig config;
  config.revocation_cutoff = cutoff;
  config.delegation_patterns = delegation_patterns;
  config.managed_san_pattern = san_pattern;
  return config;
}

TEST(ArchiveRoundTripTest, MetaCarriesTheWorldRecipe) {
  const sim::World& world = test_world();
  const std::string path = temp_path("meta.scw");
  save_world(world, path, nullptr, "small");

  const ArchiveReader reader(path);
  const ArchiveMeta& meta = reader.meta();
  EXPECT_EQ(meta.profile, "small");
  EXPECT_EQ(meta.seed, world.config().seed);
  EXPECT_EQ(meta.start, world.config().start);
  EXPECT_EQ(meta.end, world.config().end);
  ASSERT_TRUE(meta.revocation_cutoff.has_value());
  EXPECT_EQ(*meta.revocation_cutoff, world.config().revocation_cutoff);
  EXPECT_EQ(meta.delegation_patterns, world.cloudflare_delegation_patterns());
  EXPECT_EQ(meta.managed_san_pattern, world.cloudflare_san_pattern());
}

TEST(ArchiveRoundTripTest, CtLogsAreBitIdentical) {
  const sim::World& world = test_world();
  const std::string path = temp_path("ct.scw");
  save_world(world, path);
  const LoadedWorld loaded = load_world(path);

  const auto& original = world.ct_logs().logs();
  const auto& restored = loaded.ct_logs.logs();
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    SCOPED_TRACE("log " + std::to_string(i));
    EXPECT_EQ(restored[i].id(), original[i].id());
    EXPECT_EQ(restored[i].name(), original[i].name());
    EXPECT_EQ(restored[i].log_operator(), original[i].log_operator());
    EXPECT_EQ(restored[i].trust().chrome, original[i].trust().chrome);
    EXPECT_EQ(restored[i].trust().apple, original[i].trust().apple);
    EXPECT_EQ(restored[i].expiry_shard(), original[i].expiry_shard());
    const auto& entries = original[i].entries();
    const auto& loaded_entries = restored[i].entries();
    ASSERT_EQ(loaded_entries.size(), entries.size());
    for (std::size_t j = 0; j < entries.size(); ++j) {
      ASSERT_EQ(loaded_entries[j].index, entries[j].index);
      ASSERT_EQ(loaded_entries[j].timestamp, entries[j].timestamp);
      ASSERT_EQ(loaded_entries[j].certificate, entries[j].certificate)
          << "entry " << j << " of log " << i;
    }
    // The Merkle tree is rebuilt from the same leaves in the same order.
    EXPECT_EQ(restored[i].size(), original[i].size());
    if (original[i].size() > 0) {
      EXPECT_EQ(restored[i].leaf_hash_at(0), original[i].leaf_hash_at(0));
      EXPECT_EQ(restored[i].sth(world.config().end).root_hash,
                original[i].sth(world.config().end).root_hash);
    }
  }
}

TEST(ArchiveRoundTripTest, RevocationsWhoisDnsAndStatsSurvive) {
  const sim::World& world = test_world();
  const std::string path = temp_path("datasets.scw");
  save_world(world, path);
  const LoadedWorld loaded = load_world(path);

  // Revocation store: identical (key, observation) multiset.
  const auto original_entries = world.crl_collection().store().entries();
  const auto loaded_entries = loaded.revocations.entries();
  ASSERT_EQ(loaded_entries.size(), original_entries.size());
  for (std::size_t i = 0; i < original_entries.size(); ++i) {
    EXPECT_EQ(loaded_entries[i].authority_key_id,
              original_entries[i].authority_key_id);
    EXPECT_EQ(loaded_entries[i].serial, original_entries[i].serial);
    EXPECT_EQ(loaded_entries[i].observation.revocation_date,
              original_entries[i].observation.revocation_date);
    EXPECT_EQ(loaded_entries[i].observation.reason,
              original_entries[i].observation.reason);
  }

  // WHOIS: the full event stream and the conservative subset both match.
  EXPECT_EQ(loaded.registrations, world.whois().new_registrations());
  EXPECT_EQ(loaded.re_registrations(), world.whois().re_registrations());

  // aDNS: every daily snapshot reconstructs exactly from the stored diffs.
  const auto& original_days = world.adns().all();
  const auto& loaded_days = loaded.adns.all();
  ASSERT_EQ(loaded_days.size(), original_days.size());
  for (std::size_t i = 0; i < original_days.size(); ++i) {
    ASSERT_EQ(loaded_days[i].date, original_days[i].date);
    ASSERT_EQ(loaded_days[i].records, original_days[i].records)
        << "snapshot " << i;
  }

  // Ground-truth stats.
  const auto& s = world.stats();
  EXPECT_EQ(loaded.stats.domains_registered, s.domains_registered);
  EXPECT_EQ(loaded.stats.domains_reregistered, s.domains_reregistered);
  EXPECT_EQ(loaded.stats.domains_transferred, s.domains_transferred);
  EXPECT_EQ(loaded.stats.certificates_issued, s.certificates_issued);
  EXPECT_EQ(loaded.stats.cdn_enrollments, s.cdn_enrollments);
  EXPECT_EQ(loaded.stats.cdn_departures, s.cdn_departures);
  EXPECT_EQ(loaded.stats.key_compromises, s.key_compromises);
  EXPECT_EQ(loaded.stats.other_revocations, s.other_revocations);
  EXPECT_EQ(loaded.stats.refund_abuses, s.refund_abuses);
}

TEST(ArchiveRoundTripTest, PipelineDetectionsAreIdentical) {
  const sim::World& world = test_world();
  const std::string path = temp_path("pipeline.scw");
  save_world(world, path);
  const LoadedWorld loaded = load_world(path);

  const auto config = pipeline_config_for(world.cloudflare_delegation_patterns(),
                                          world.cloudflare_san_pattern(),
                                          world.config().revocation_cutoff);
  const auto in_memory = core::run_pipeline(
      world.ct_logs(), world.crl_collection().store(),
      world.whois().re_registrations(), world.adns(), config);
  const auto from_archive = core::run_pipeline(
      loaded.ct_logs, loaded.revocations, loaded.re_registrations(),
      loaded.adns, config);

  ASSERT_EQ(from_archive.corpus.size(), in_memory.corpus.size());
  EXPECT_EQ(from_archive.collect_stats.raw_entries,
            in_memory.collect_stats.raw_entries);
  for (const auto cls : core::kAllStaleClasses) {
    const auto& a = in_memory.of(cls);
    const auto& b = from_archive.of(cls);
    ASSERT_EQ(b.size(), a.size()) << to_string(cls);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(b[i].corpus_index, a[i].corpus_index);
      EXPECT_EQ(b[i].event_date, a[i].event_date);
      EXPECT_EQ(b[i].trigger_domain, a[i].trigger_domain);
      EXPECT_EQ(b[i].staleness_days(), a[i].staleness_days());
    }
  }
}

TEST(ArchiveRoundTripTest, StreamingCursorsSeeEveryRecord) {
  const sim::World& world = test_world();
  const std::string path = temp_path("streams.scw");
  save_world(world, path);
  const ArchiveReader reader(path);

  auto ct = reader.ct_entries();
  std::uint64_t streamed_entries = 0;
  std::uint64_t streamed_logs = 0;
  while (const auto header = ct.next_log()) {
    ++streamed_logs;
    std::uint64_t in_log = 0;
    while (ct.next_entry()) ++in_log;
    EXPECT_EQ(in_log, header->entry_count);
    streamed_entries += in_log;
  }
  EXPECT_EQ(streamed_logs, world.ct_logs().log_count());
  EXPECT_EQ(streamed_entries, world.ct_logs().total_entries());

  auto revocations = reader.revocations();
  std::uint64_t streamed_revocations = 0;
  while (revocations.next()) ++streamed_revocations;
  EXPECT_EQ(streamed_revocations, world.crl_collection().store().size());

  auto registrations = reader.registrations();
  std::uint64_t streamed_registrations = 0;
  while (registrations.next()) ++streamed_registrations;
  EXPECT_EQ(streamed_registrations, world.whois().new_registrations().size());

  auto snapshots = reader.snapshots();
  std::size_t day = 0;
  while (const auto snapshot = snapshots.next()) {
    ASSERT_LT(day, world.adns().days());
    EXPECT_EQ(snapshot->date, world.adns().day(day).date);
    EXPECT_EQ(snapshot->records, world.adns().day(day).records);
    ++day;
  }
  EXPECT_EQ(day, world.adns().days());
}

TEST(ArchiveRoundTripTest, EmptyDatasetsRoundTrip) {
  const std::string path = temp_path("empty.scw");
  ArchiveMeta meta;
  meta.profile = "custom";
  meta.seed = 1;
  meta.start = util::Date::from_ymd(2021, 1, 1);
  meta.end = util::Date::from_ymd(2021, 1, 2);
  ArchiveWriter(meta).write(path);

  const LoadedWorld loaded = load_world(path);
  EXPECT_EQ(loaded.ct_logs.log_count(), 0u);
  EXPECT_EQ(loaded.revocations.size(), 0u);
  EXPECT_TRUE(loaded.registrations.empty());
  EXPECT_EQ(loaded.adns.days(), 0u);
  EXPECT_EQ(loaded.stats.certificates_issued, 0u);
  EXPECT_EQ(loaded.meta.profile, "custom");
}

TEST(ArchiveRoundTripTest, SaveAndLoadReportObsMetrics) {
  const sim::World& world = test_world();
  const std::string path = temp_path("metrics.scw");

  obs::MetricsPipelineObserver save_telemetry;
  const std::uint64_t bytes = save_world(world, path, &save_telemetry);
  obs::MetricsPipelineObserver load_telemetry;
  (void)load_world(path, &load_telemetry);

  auto counter = [](const obs::MetricsPipelineObserver& telemetry,
                    const std::string& name) -> std::uint64_t {
    for (const auto& c : telemetry.registry().snapshot().counters) {
      if (c.name == name) return c.value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_EQ(counter(save_telemetry, "stalecert_store_save_bytes_written_total"),
            bytes);
  EXPECT_EQ(counter(save_telemetry, "stalecert_store_save_ct_entries_total"),
            world.ct_logs().total_entries());
  EXPECT_EQ(counter(load_telemetry, "stalecert_store_load_bytes_read_total"),
            bytes);
  EXPECT_EQ(counter(load_telemetry, "stalecert_store_load_revocations_total"),
            world.crl_collection().store().size());
  // Both stages timed themselves.
  bool save_span = false, load_span = false;
  for (const auto& span : save_telemetry.trace().spans()) {
    save_span |= span.name == "store_save";
  }
  for (const auto& span : load_telemetry.trace().spans()) {
    load_span |= span.name == "store_load";
  }
  EXPECT_TRUE(save_span);
  EXPECT_TRUE(load_span);
}

}  // namespace
}  // namespace stalecert::store
