// Unit tests for the archive wire primitives: varint / zigzag / CRC32
// round-trips, plus the bounds and overlong-encoding checks that keep a
// corrupt file from turning into an over-read or a giant allocation.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "stalecert/store/errors.hpp"
#include "stalecert/store/intern.hpp"
#include "stalecert/store/wire.hpp"

namespace stalecert::store {
namespace {

TEST(WireTest, VarintRoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (1ull << 32) - 1,
                                  1ull << 32,
                                  (1ull << 63),
                                  std::numeric_limits<std::uint64_t>::max()};
  ByteSink sink;
  for (const auto v : values) sink.varint(v);
  SpanSource source(sink.data());
  WireReader reader(source);
  for (const auto v : values) EXPECT_EQ(reader.varint(), v);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(WireTest, VarintEncodingIsMinimalLength) {
  ByteSink one, two;
  one.varint(127);
  two.varint(128);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(two.size(), 2u);
}

TEST(WireTest, ZigzagMapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  const std::int64_t values[] = {0, -1, 1, 365, -365,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (const auto v : values) EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
}

TEST(WireTest, DateRoundTripsThroughZigzag) {
  ByteSink sink;
  const util::Date dates[] = {util::Date{0}, util::Date::from_ymd(2023, 5, 12),
                              util::Date::from_ymd(1969, 12, 31)};
  for (const auto d : dates) sink.date(d);
  SpanSource source(sink.data());
  WireReader reader(source);
  for (const auto d : dates) EXPECT_EQ(reader.date(), d);
}

TEST(WireTest, OverlongVarintIsCorruptNotAccepted) {
  // 11 continuation bytes: no valid encoding is ever this long.
  const std::vector<std::uint8_t> overlong(11, 0x80);
  SpanSource source(overlong);
  WireReader reader(source);
  EXPECT_THROW((void)reader.varint(), ArchiveCorruptError);
}

TEST(WireTest, TruncatedVarintIsTruncatedError) {
  const std::vector<std::uint8_t> cut = {0x80, 0x80};  // continuation, then EOF
  SpanSource source(cut);
  WireReader reader(source);
  EXPECT_THROW((void)reader.varint(), ArchiveTruncatedError);
}

TEST(WireTest, BlobLengthIsBoundsCheckedBeforeAllocation) {
  ByteSink sink;
  sink.varint(1ull << 40);  // claims a terabyte follows
  sink.u8(0);
  SpanSource source(sink.data());
  WireReader reader(source);
  EXPECT_THROW((void)reader.blob(), ArchiveTruncatedError);
}

TEST(WireTest, CountRejectsMoreRecordsThanBytesRemain) {
  ByteSink sink;
  sink.varint(1000);  // 1000 records claimed, 0 payload bytes follow
  SpanSource source(sink.data());
  WireReader reader(source);
  EXPECT_THROW((void)reader.count(), ArchiveCorruptError);
}

TEST(WireTest, StrRoundTripsEmbeddedNulAndUtf8) {
  ByteSink sink;
  const std::string s1("a\0b", 3);
  const std::string s2 = "d\xC3\xA9j\xC3\xA0.example";
  sink.str(s1);
  sink.str(s2);
  sink.str("");
  SpanSource source(sink.data());
  WireReader reader(source);
  EXPECT_EQ(reader.str(), s1);
  EXPECT_EQ(reader.str(), s2);
  EXPECT_EQ(reader.str(), "");
}

TEST(WireTest, Crc32MatchesKnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE 802.3 check value).
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check), 0xCBF43926u);
  // Incremental application over split input matches one-shot.
  const auto head = std::span(check).first(4);
  const auto tail = std::span(check).subspan(4);
  EXPECT_EQ(crc32_update(crc32_update(0, head), tail), 0xCBF43926u);
}

TEST(WireTest, U32leRoundTrips) {
  ByteSink sink;
  sink.u32le(0xDEADBEEFu);
  ASSERT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.data()[0], 0xEFu);  // little-endian on every platform
  SpanSource source(sink.data());
  WireReader reader(source);
  EXPECT_EQ(reader.u32le(), 0xDEADBEEFu);
}

TEST(InternTest, IndexZeroIsTheEmptyString) {
  StringInterner interner;
  EXPECT_EQ(interner.intern(""), 0u);
  const auto a = interner.intern("a.example.com");
  EXPECT_EQ(interner.intern("a.example.com"), a);
  EXPECT_NE(interner.intern("b.example.com"), a);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(InternTest, TableRoundTripsAndValidatesIndices) {
  StringInterner interner;
  const auto a = interner.intern("stale.example.com");
  const auto b = interner.intern("registrant-b");
  ByteSink sink;
  interner.encode(sink);

  SpanSource source(sink.data());
  WireReader reader(source);
  const StringTable table = StringTable::decode(reader);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.at(0), "");
  EXPECT_EQ(table.at(a), "stale.example.com");
  EXPECT_EQ(table.at(b), "registrant-b");
  EXPECT_THROW((void)table.at(3), ArchiveCorruptError);
}

}  // namespace
}  // namespace stalecert::store
