// Golden-file backward compatibility: tests/store/data/golden_small.scw is
// a committed archive of a small hand-built world. Decoding it pins the
// on-disk format: any byte-level change to the encoders without a
// kFormatVersion bump makes these tests fail (either the golden file stops
// decoding, or re-encoding the same datasets stops being byte-identical).
//
// Versioning policy (see src/store/README.md): when kFormatVersion is
// deliberately bumped, regenerate the fixture by running this binary once
// with STALECERT_REGEN_GOLDEN=1 and commit the new file alongside the bump.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "stalecert/store/archive.hpp"
#include "stalecert/x509/certificate.hpp"

#ifndef STALECERT_STORE_TEST_DATA_DIR
#error "STALECERT_STORE_TEST_DATA_DIR must be defined by the build"
#endif

namespace stalecert::store {
namespace {

const std::string kGoldenPath =
    std::string(STALECERT_STORE_TEST_DATA_DIR) + "/golden_small.scw";

x509::Certificate make_cert(std::uint64_t serial, const std::string& fqdn,
                            int issue_year, std::int64_t lifetime_days,
                            const std::string& issuer_label) {
  const auto key = crypto::KeyPair::derive("golden/" + fqdn,
                                           crypto::KeyAlgorithm::kEcdsaP256);
  const auto issuer_key =
      crypto::KeyPair::derive("golden-ca/" + issuer_label,
                              crypto::KeyAlgorithm::kEcdsaP256);
  const util::Date not_before = util::Date::from_ymd(issue_year, 2, 1);
  return x509::CertificateBuilder()
      .serial(serial)
      .subject_cn(fqdn)
      .add_dns_name(fqdn)
      .validity(not_before, not_before + lifetime_days)
      .key(key)
      .authority_key_id(issuer_key.key_id())
      .server_auth_profile()
      .build();
}

/// The fixture's source datasets, rebuilt identically on every run. This is
/// the reference the golden file is compared against in both directions.
struct GoldenDatasets {
  ArchiveMeta meta;
  ct::LogSet logs;
  revocation::RevocationStore revocations;
  std::vector<whois::NewRegistration> registrations;
  dns::SnapshotStore adns;
  sim::World::Stats stats;
};

GoldenDatasets build_golden() {
  GoldenDatasets g;
  g.meta.profile = "custom";
  g.meta.seed = 424242;
  g.meta.start = util::Date::from_ymd(2021, 1, 1);
  g.meta.end = util::Date::from_ymd(2022, 12, 31);
  g.meta.revocation_cutoff = util::Date::from_ymd(2021, 10, 1);
  g.meta.delegation_patterns = {"*.ns.cloudflare.test"};
  g.meta.managed_san_pattern = "sni*.cloudflaressl.test";

  // Two logs: one unsharded, one 2022 expiry shard — covers both header
  // encodings.
  const std::size_t plain =
      g.logs.add_log(ct::CtLog(1, "golden2021", "Golden Op", {true, false}));
  const std::size_t sharded = g.logs.add_log(ct::CtLog(
      2, "golden2022h1", "Golden Op", {true, true},
      util::DateInterval{util::Date::from_ymd(2022, 1, 1),
                         util::Date::from_ymd(2023, 1, 1)}));
  const auto c1 = make_cert(1001, "alpha.example.com", 2021, 90, "golden-ca");
  const auto c2 = make_cert(1002, "beta.example.com", 2021, 398, "golden-ca");
  const auto c3 = make_cert(1003, "gamma.example.com", 2022, 90, "other-ca");
  g.logs.log(plain).submit(c1, c1.not_before());
  g.logs.log(plain).submit(c2, c2.not_before());
  g.logs.log(sharded).submit(c3, c3.not_before());

  const auto aki1 = crypto::KeyPair::derive("golden-ca/golden-ca",
                                            crypto::KeyAlgorithm::kEcdsaP256)
                        .key_id();
  const auto aki2 = crypto::KeyPair::derive("golden-ca/other-ca",
                                            crypto::KeyAlgorithm::kEcdsaP256)
                        .key_id();
  g.revocations.add(aki1, c1.serial(),
                    {util::Date::from_ymd(2021, 3, 15),
                     revocation::ReasonCode::kKeyCompromise});
  g.revocations.add(aki1, c2.serial(),
                    {util::Date::from_ymd(2021, 11, 2),
                     revocation::ReasonCode::kSuperseded});
  g.revocations.add(aki2, c3.serial(),
                    {util::Date::from_ymd(2022, 5, 1),
                     revocation::ReasonCode::kCessationOfOperation});

  g.registrations.push_back({"alpha.example.com",
                             util::Date::from_ymd(2021, 3, 1),
                             util::Date::from_ymd(2018, 3, 1)});
  g.registrations.push_back(
      {"beta.example.com", util::Date::from_ymd(2021, 6, 1), std::nullopt});

  dns::DailySnapshot day1;
  day1.date = util::Date::from_ymd(2022, 8, 1);
  day1.records["alpha.example.com"].ns = {"ada.ns.cloudflare.test"};
  day1.records["beta.example.com"].a = {"192.0.2.7"};
  g.adns.add(day1);
  dns::DailySnapshot day2;
  day2.date = util::Date::from_ymd(2022, 8, 2);
  day2.records["alpha.example.com"].ns = {"ns1.selfhosted.test"};  // departure
  g.adns.add(day2);  // beta.example.com dropped out of the scan

  g.stats.domains_registered = 3;
  g.stats.domains_reregistered = 1;
  g.stats.certificates_issued = 3;
  g.stats.key_compromises = 1;
  g.stats.other_revocations = 2;
  return g;
}

std::uint64_t write_golden(const GoldenDatasets& g, const std::string& path) {
  return ArchiveWriter(g.meta)
      .ct_logs(g.logs)
      .revocations(g.revocations)
      .registrations(g.registrations)
      .adns(g.adns)
      .stats(g.stats)
      .write(path);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

bool maybe_regenerate() {
  if (std::getenv("STALECERT_REGEN_GOLDEN") == nullptr) return false;
  const auto bytes = write_golden(build_golden(), kGoldenPath);
  std::cerr << "regenerated " << kGoldenPath << " (" << bytes << " bytes)\n";
  return true;
}

TEST(GoldenArchiveTest, FixtureDecodesWithCurrentReader) {
  if (maybe_regenerate()) GTEST_SKIP() << "fixture regenerated";
  const ArchiveReader reader(kGoldenPath);
  EXPECT_EQ(reader.meta().profile, "custom");
  EXPECT_EQ(reader.meta().seed, 424242u);

  const LoadedWorld loaded = reader.load_world();
  const GoldenDatasets expected = build_golden();
  ASSERT_EQ(loaded.ct_logs.log_count(), 2u);
  EXPECT_EQ(loaded.ct_logs.total_entries(), 3u);
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& want = expected.logs.log(i);
    const auto& got = loaded.ct_logs.log(i);
    ASSERT_EQ(got.entries().size(), want.entries().size());
    for (std::size_t j = 0; j < want.entries().size(); ++j) {
      EXPECT_EQ(got.entries()[j].certificate, want.entries()[j].certificate);
      EXPECT_EQ(got.entries()[j].timestamp, want.entries()[j].timestamp);
    }
  }
  const auto got_revocations = loaded.revocations.entries();
  const auto want_revocations = expected.revocations.entries();
  ASSERT_EQ(got_revocations.size(), want_revocations.size());
  for (std::size_t i = 0; i < want_revocations.size(); ++i) {
    EXPECT_EQ(got_revocations[i].authority_key_id,
              want_revocations[i].authority_key_id);
    EXPECT_EQ(got_revocations[i].serial, want_revocations[i].serial);
    EXPECT_EQ(got_revocations[i].observation.revocation_date,
              want_revocations[i].observation.revocation_date);
  }
  EXPECT_EQ(loaded.registrations, expected.registrations);
  ASSERT_EQ(loaded.adns.days(), 2u);
  EXPECT_EQ(loaded.adns.day(0).records, expected.adns.day(0).records);
  EXPECT_EQ(loaded.adns.day(1).records, expected.adns.day(1).records);
  EXPECT_EQ(loaded.stats.certificates_issued, 3u);
}

TEST(GoldenArchiveTest, EncoderIsByteStableAtThisFormatVersion) {
  if (maybe_regenerate()) GTEST_SKIP() << "fixture regenerated";
  const std::string fresh_path = ::testing::TempDir() + "golden_fresh.scw";
  write_golden(build_golden(), fresh_path);
  const auto golden = read_file(kGoldenPath);
  const auto fresh = read_file(fresh_path);
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(fresh, golden)
      << "the encoder's output changed at format version "
      << kFormatVersion
      << " — either restore byte compatibility or bump kFormatVersion and "
         "regenerate the fixture (STALECERT_REGEN_GOLDEN=1)";
}

}  // namespace
}  // namespace stalecert::store
