// Hostile-input robustness: every way a .scw file can be damaged —
// truncation, bit flips in payloads or CRC trailers, a future format
// version, empty segments, out-of-range references — must surface as a
// typed ArchiveError, never a crash, hang, over-read, or huge allocation.
// This suite runs under ASan/UBSan in CI.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "stalecert/store/archive.hpp"

namespace stalecert::store {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// One segment's location inside a serialized archive.
struct SegmentExtent {
  std::uint8_t id = 0;
  std::size_t payload_offset = 0;
  std::size_t payload_length = 0;
  std::size_t crc_offset = 0;
};

/// Independent re-parse of the container framing (not via ArchiveReader),
/// so tests can aim corruption at a specific segment.
std::vector<SegmentExtent> scan_segments(const std::vector<std::uint8_t>& file) {
  std::vector<SegmentExtent> out;
  SpanSource source(file);
  WireReader reader(source);
  for (int i = 0; i < 12; ++i) (void)reader.u8();  // magic + version
  while (reader.remaining() > 0) {
    SegmentExtent extent;
    extent.id = reader.u8();
    extent.payload_length = static_cast<std::size_t>(reader.varint());
    extent.payload_offset = file.size() - static_cast<std::size_t>(reader.remaining());
    extent.crc_offset = extent.payload_offset + extent.payload_length;
    for (std::size_t j = 0; j < extent.payload_length + 4; ++j) (void)reader.u8();
    out.push_back(extent);
  }
  return out;
}

SegmentExtent find_segment(const std::vector<std::uint8_t>& file, SegmentId id) {
  for (const auto& extent : scan_segments(file)) {
    if (extent.id == static_cast<std::uint8_t>(id)) return extent;
  }
  ADD_FAILURE() << "segment " << to_string(id) << " not found";
  return {};
}

/// A small but fully populated archive (every segment non-trivial except
/// CT, which stays empty to keep the fixture cheap to rebuild per test).
std::vector<std::uint8_t> valid_archive() {
  static const std::vector<std::uint8_t> bytes = [] {
    const std::string path = temp_path("robust_valid.scw");
    ArchiveMeta meta;
    meta.profile = "custom";
    meta.seed = 7;
    meta.start = util::Date::from_ymd(2021, 1, 1);
    meta.end = util::Date::from_ymd(2021, 12, 31);
    meta.revocation_cutoff = util::Date::from_ymd(2021, 6, 1);
    meta.delegation_patterns = {"*.ns.managed.example"};
    meta.managed_san_pattern = "sni*.managed.example";

    revocation::RevocationStore revocations;
    crypto::Digest aki{};
    aki[0] = 0xAB;
    revocations.add(aki, {0x01, 0x02},
                    {util::Date::from_ymd(2021, 7, 1),
                     revocation::ReasonCode::kKeyCompromise});

    std::vector<whois::NewRegistration> registrations;
    registrations.push_back({"stale.example.com",
                             util::Date::from_ymd(2021, 3, 1),
                             util::Date::from_ymd(2019, 3, 1)});
    registrations.push_back(
        {"fresh.example.com", util::Date::from_ymd(2021, 4, 1), std::nullopt});

    dns::SnapshotStore adns;
    dns::DailySnapshot day1;
    day1.date = util::Date::from_ymd(2021, 8, 1);
    day1.records["stale.example.com"].ns = {"a.ns.managed.example"};
    adns.add(day1);
    dns::DailySnapshot day2;
    day2.date = util::Date::from_ymd(2021, 8, 2);
    day2.records["stale.example.com"].ns = {"ns1.selfhosted.example"};
    adns.add(day2);

    sim::World::Stats stats;
    stats.certificates_issued = 3;

    ArchiveWriter(meta)
        .revocations(revocations)
        .registrations(registrations)
        .adns(adns)
        .stats(stats)
        .write(path);
    return read_file(path);
  }();
  return bytes;
}

/// Writes `bytes` to a fresh temp file and opens it end-to-end: construct a
/// reader, materialize the world, and read stats. Any corruption must
/// surface as a typed error from one of these.
void open_fully(const std::string& name, const std::vector<std::uint8_t>& bytes) {
  const std::string path = temp_path(name);
  write_file(path, bytes);
  const ArchiveReader reader(path);
  (void)reader.load_world();
  (void)reader.stats();
}

TEST(RobustnessTest, ValidArchiveOpensFully) {
  EXPECT_NO_THROW(open_fully("robust_ok.scw", valid_archive()));
}

TEST(RobustnessTest, TruncationAnywhereIsATypedError) {
  const auto full = valid_archive();
  // Every prefix is either readable (never reaching the cut) or a typed
  // error — exhaustively for the header, sampled beyond it.
  for (std::size_t cut = 0; cut < full.size();
       cut += (cut < 16 ? 1 : full.size() / 37 + 1)) {
    std::vector<std::uint8_t> truncated(full.begin(), full.begin() + cut);
    try {
      open_fully("robust_trunc.scw", truncated);
      ADD_FAILURE() << "truncation at " << cut << " went unnoticed";
    } catch (const ArchiveError&) {
      // expected: truncated or (when the cut lands on a frame boundary
      // mid-file) a missing-segment corruption error
    }
  }
}

TEST(RobustnessTest, PayloadBitFlipFailsTheCrc) {
  auto bytes = valid_archive();
  const auto whois = find_segment(bytes, SegmentId::kWhois);
  ASSERT_GT(whois.payload_length, 0u);
  bytes[whois.payload_offset + whois.payload_length / 2] ^= 0x40;
  const std::string path = temp_path("robust_flip.scw");
  write_file(path, bytes);
  const ArchiveReader reader(path);  // header + strings are intact
  EXPECT_THROW((void)reader.load_world(), ArchiveError);
}

TEST(RobustnessTest, CrcTrailerBitFlipIsCorrupt) {
  auto bytes = valid_archive();
  const auto dns = find_segment(bytes, SegmentId::kDns);
  bytes[dns.crc_offset] ^= 0x01;
  const std::string path = temp_path("robust_crcflip.scw");
  write_file(path, bytes);
  const ArchiveReader reader(path);
  auto stream = reader.snapshots();
  EXPECT_THROW(
      while (stream.next()) {
      },
      ArchiveCorruptError);
}

TEST(RobustnessTest, FutureFormatVersionIsRejectedUpFront) {
  auto bytes = valid_archive();
  bytes[8] = kFormatVersion + 1;  // u32le version field follows the magic
  const std::string path = temp_path("robust_version.scw");
  write_file(path, bytes);
  EXPECT_THROW(ArchiveReader{path}, ArchiveVersionError);
}

TEST(RobustnessTest, BadMagicIsCorruptNotMisparsed) {
  auto bytes = valid_archive();
  bytes[0] ^= 0xFF;
  const std::string path = temp_path("robust_magic.scw");
  write_file(path, bytes);
  EXPECT_THROW(ArchiveReader{path}, ArchiveCorruptError);
}

TEST(RobustnessTest, EmptySegmentPayloadIsCorrupt) {
  // Even an absent dataset carries its zero record count; a 0-byte payload
  // can only come from damage.
  auto bytes = valid_archive();
  ByteSink empty_whois;
  bytes.push_back(static_cast<std::uint8_t>(SegmentId::kWhois));
  bytes.push_back(0);  // varint payload length 0
  const std::uint32_t crc = crc32(empty_whois.data());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  // Drop the original whois segment so the empty one is not a duplicate.
  const auto whois = find_segment(bytes, SegmentId::kWhois);
  const auto begin = static_cast<std::ptrdiff_t>(whois.payload_offset) - 2;
  bytes.erase(bytes.begin() + begin,
              bytes.begin() + static_cast<std::ptrdiff_t>(whois.crc_offset) + 4);
  const std::string path = temp_path("robust_empty.scw");
  write_file(path, bytes);
  EXPECT_THROW(ArchiveReader{path}, ArchiveCorruptError);
}

TEST(RobustnessTest, UnknownSegmentIdsAreSkipped) {
  // Additive format evolution: a reader must ignore segments it does not
  // know, so old binaries can read new archives of the same version.
  auto bytes = valid_archive();
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  bytes.push_back(200);  // unassigned segment id
  bytes.push_back(3);
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  const std::uint32_t crc = crc32(payload);
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  EXPECT_NO_THROW(open_fully("robust_unknown.scw", bytes));
}

TEST(RobustnessTest, DuplicateSegmentIsCorrupt) {
  auto bytes = valid_archive();
  const auto stats = find_segment(bytes, SegmentId::kStats);
  // Re-append the stats segment verbatim (1-byte id + 1-byte length since
  // the payload is tiny).
  ASSERT_LT(stats.payload_length, 128u);
  std::vector<std::uint8_t> copy(
      bytes.begin() + static_cast<std::ptrdiff_t>(stats.payload_offset) - 2,
      bytes.begin() + static_cast<std::ptrdiff_t>(stats.crc_offset) + 4);
  bytes.insert(bytes.end(), copy.begin(), copy.end());
  const std::string path = temp_path("robust_dup.scw");
  write_file(path, bytes);
  EXPECT_THROW(ArchiveReader{path}, ArchiveCorruptError);
}

TEST(RobustnessTest, OutOfRangeStringReferenceIsCorrupt) {
  // Hand-craft a whois segment whose domain index points past the table.
  auto bytes = valid_archive();
  const auto whois = find_segment(bytes, SegmentId::kWhois);
  ByteSink payload;
  payload.varint(1);        // one registration
  payload.varint(1 << 20);  // domain string index far out of range
  payload.date(util::Date::from_ymd(2021, 1, 1));
  payload.u8(0);
  ByteSink framed;
  framed.u8(static_cast<std::uint8_t>(SegmentId::kWhois));
  framed.varint(payload.size());
  framed.bytes(payload.data());
  framed.u32le(crc32(payload.data()));
  // Replace the original whois segment (id byte back through CRC) with the
  // crafted one.
  const auto begin = static_cast<std::ptrdiff_t>(whois.payload_offset) - 2;
  bytes.erase(bytes.begin() + begin,
              bytes.begin() + static_cast<std::ptrdiff_t>(whois.crc_offset) + 4);
  bytes.insert(bytes.begin() + begin, framed.data().begin(), framed.data().end());
  const std::string path = temp_path("robust_strref.scw");
  write_file(path, bytes);
  const ArchiveReader reader(path);
  auto stream = reader.registrations();
  EXPECT_THROW((void)stream.next(), ArchiveCorruptError);
}

TEST(RobustnessTest, InvalidReasonCodeIsCorrupt) {
  auto bytes = valid_archive();
  const auto seg = find_segment(bytes, SegmentId::kRevocations);
  // Build an entry with reason 7 — unused in RFC 5280, never valid.
  ByteSink framed;
  ByteSink entry;
  entry.varint(1);  // aki table: one id
  for (int i = 0; i < 32; ++i) entry.u8(0);
  entry.varint(1);  // one entry
  entry.varint(0);  // aki index 0
  entry.blob(std::vector<std::uint8_t>{0x01});
  entry.date(util::Date::from_ymd(2021, 7, 1));
  entry.varint(7);  // invalid reason
  framed.u8(static_cast<std::uint8_t>(SegmentId::kRevocations));
  framed.varint(entry.size());
  framed.bytes(entry.data());
  framed.u32le(crc32(entry.data()));
  const auto begin = static_cast<std::ptrdiff_t>(seg.payload_offset) - 2;
  bytes.erase(bytes.begin() + begin,
              bytes.begin() + static_cast<std::ptrdiff_t>(seg.crc_offset) + 4);
  bytes.insert(bytes.begin() + begin, framed.data().begin(), framed.data().end());
  const std::string path = temp_path("robust_reason.scw");
  write_file(path, bytes);
  const ArchiveReader reader(path);
  auto stream = reader.revocations();
  EXPECT_THROW((void)stream.next(), ArchiveCorruptError);
}

TEST(RobustnessTest, MissingSegmentIsCorrupt) {
  auto bytes = valid_archive();
  const auto stats = find_segment(bytes, SegmentId::kStats);
  const auto begin = static_cast<std::ptrdiff_t>(stats.payload_offset) - 2;
  bytes.erase(bytes.begin() + begin,
              bytes.begin() + static_cast<std::ptrdiff_t>(stats.crc_offset) + 4);
  const std::string path = temp_path("robust_missing.scw");
  write_file(path, bytes);
  const ArchiveReader reader(path);  // opens fine: meta + strings intact
  EXPECT_FALSE(reader.has_segment(SegmentId::kStats));
  EXPECT_THROW((void)reader.stats(), ArchiveCorruptError);
}

TEST(RobustnessTest, NonexistentFileIsAnArchiveError) {
  EXPECT_THROW(ArchiveReader{temp_path("does_not_exist.scw")}, ArchiveError);
}

}  // namespace
}  // namespace stalecert::store
