// Hostile-input behavior of the feed path: damaged .scwd bytes must throw
// the store error taxonomy, semantically wrong deltas (foreign world,
// gapped/out-of-order days, double-apply, desynced logs) must throw the
// feed taxonomy BEFORE any state changes, and FeedRuntime must map every
// failure to a non-throwing IngestOutcome while the previous snapshot
// keeps serving.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "stalecert/core/pipeline.hpp"
#include "stalecert/feed/applier.hpp"
#include "stalecert/feed/delta.hpp"
#include "stalecert/feed/errors.hpp"
#include "stalecert/feed/extend.hpp"
#include "stalecert/feed/runtime.hpp"
#include "stalecert/query/index.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/store/archive.hpp"
#include "stalecert/store/errors.hpp"

namespace stalecert::feed {
namespace {

struct BaseWorld {
  std::string path;
  store::ArchiveMeta meta;
  std::vector<WorldDelta> deltas;  // three one-day extensions
};

const BaseWorld& base_world() {
  static const BaseWorld base = [] {
    BaseWorld b;
    b.path = ::testing::TempDir() + "feed_robust_base.scw";
    sim::World world(sim::small_test_config());
    world.run();
    store::save_world(world, b.path, nullptr, "small");
    b.meta = store::ArchiveReader(b.path).meta();
    b.deltas = extend_world(b.meta, 3);
    return b;
  }();
  return base;
}

/// A fresh applier over the shared base archive (cheap relative to the
/// simulation: the archive is reloaded and the pipeline re-run per call).
DeltaApplier make_applier() {
  store::LoadedWorld world = store::load_world(base_world().path);
  core::PipelineConfig config;
  config.revocation_cutoff = world.meta.revocation_cutoff;
  config.delegation_patterns = world.meta.delegation_patterns;
  config.managed_san_pattern = world.meta.managed_san_pattern;
  core::PipelineResult result =
      core::run_pipeline(world.ct_logs, world.revocations,
                         world.re_registrations(), world.adns, config);
  auto index = std::make_shared<const query::StalenessIndex>(std::move(result),
                                                             world.meta);
  return DeltaApplier(std::move(world), std::move(index));
}

TEST(FeedRobustnessTest, TruncationAlwaysThrowsArchiveErrors) {
  const std::vector<std::uint8_t> bytes =
      write_delta_bytes(base_world().deltas.front());
  ASSERT_GT(bytes.size(), 64u);
  // Sweep prefixes, including cuts inside the magic, the version word, the
  // segment headers, and one byte short of complete.
  for (std::size_t n = 0; n < bytes.size();
       n = (n < 64 ? n + 1 : n + bytes.size() / 61)) {
    EXPECT_THROW(
        read_delta_bytes(std::span<const std::uint8_t>(bytes.data(), n)),
        store::ArchiveError)
        << "prefix " << n;
  }
  EXPECT_THROW(read_delta_bytes(std::span<const std::uint8_t>(
                   bytes.data(), bytes.size() - 1)),
               store::ArchiveError);
}

TEST(FeedRobustnessTest, BitFlipsAlwaysThrowArchiveErrors) {
  const std::vector<std::uint8_t> pristine =
      write_delta_bytes(base_world().deltas.front());
  // Every region is covered by magic/version checks or a segment CRC, so a
  // single flipped bit anywhere must be detected.
  for (std::size_t offset = 0; offset < pristine.size();
       offset += 1 + pristine.size() / 97) {
    std::vector<std::uint8_t> bytes = pristine;
    bytes[offset] ^= 0x40;
    EXPECT_THROW(read_delta_bytes(bytes), store::ArchiveError)
        << "offset " << offset;
  }
}

TEST(FeedRobustnessTest, WrongWorldIsAMismatch) {
  WorldDelta foreign = base_world().deltas.front();
  foreign.meta.base_world_id ^= 0xdeadbeef;
  DeltaApplier applier = make_applier();
  const auto snapshot = applier.index();
  EXPECT_THROW(applier.apply(foreign), DeltaMismatchError);
  EXPECT_EQ(applier.index().get(), snapshot.get());  // untouched
  EXPECT_EQ(applier.horizon(), base_world().meta.end);
  EXPECT_EQ(applier.deltas_applied(), 0u);
}

TEST(FeedRobustnessTest, GapAndOutOfOrderAreSequenceErrors) {
  DeltaApplier applier = make_applier();
  const auto snapshot = applier.index();

  // Day 3 before days 1-2: gap.
  EXPECT_THROW(applier.apply(base_world().deltas[2]), DeltaSequenceError);
  EXPECT_EQ(applier.index().get(), snapshot.get());

  // Recovery: the failed apply left no trace, the right delta still lands.
  EXPECT_NO_THROW(applier.apply(base_world().deltas[0]));
  EXPECT_EQ(applier.horizon(), base_world().meta.end + 1);

  // Out-of-order now that day 1 is in: day 1 again sorts before horizon.
  EXPECT_THROW(applier.apply(base_world().deltas[0]), DeltaSequenceError);
  EXPECT_THROW(applier.apply(base_world().deltas[2]), DeltaSequenceError);
  EXPECT_NO_THROW(applier.apply(base_world().deltas[1]));
  EXPECT_NO_THROW(applier.apply(base_world().deltas[2]));
  EXPECT_EQ(applier.deltas_applied(), 3u);
  EXPECT_EQ(applier.horizon(), base_world().meta.end + 3);
}

TEST(FeedRobustnessTest, DoubleApplyIsASequenceError) {
  DeltaApplier applier = make_applier();
  ASSERT_NO_THROW(applier.apply(base_world().deltas[0]));
  const auto snapshot = applier.index();
  EXPECT_THROW(applier.apply(base_world().deltas[0]), DeltaSequenceError);
  EXPECT_EQ(applier.index().get(), snapshot.get());
  EXPECT_EQ(applier.deltas_applied(), 1u);
}

TEST(FeedRobustnessTest, DesyncedLogLengthIsASequenceError) {
  // A delta whose per-log base_entry_count does not match the live log's
  // length claims entries at indices the log already assigned.
  WorldDelta desynced = base_world().deltas.front();
  ASSERT_FALSE(desynced.ct.empty());
  desynced.ct.front().base_entry_count += 1;
  DeltaApplier applier = make_applier();
  EXPECT_THROW(applier.apply(desynced), DeltaSequenceError);
}

TEST(FeedRobustnessTest, UnknownLogIsAMismatch) {
  WorldDelta foreign_log = base_world().deltas.front();
  ASSERT_FALSE(foreign_log.ct.empty());
  foreign_log.ct.front().log_id = 0xfeedfeedfeedfeed;
  DeltaApplier applier = make_applier();
  EXPECT_THROW(applier.apply(foreign_log), DeltaMismatchError);
}

TEST(FeedRobustnessTest, RuntimeMapsFailuresToStatusesWithoutThrowing) {
  FeedRuntime runtime(base_world().path);
  const auto served = runtime.index();

  // Unreadable bytes -> 400.
  query::IngestSource garbage;
  garbage.bytes = "these are not delta bytes";
  const auto bad = runtime.ingest(garbage);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.status, 400);
  EXPECT_FALSE(bad.message.empty());

  // Missing file -> 400 (store taxonomy, not an exception).
  query::IngestSource missing;
  missing.path = ::testing::TempDir() + "feed_does_not_exist.scwd";
  EXPECT_EQ(runtime.ingest(missing).status, 400);

  // Wrong world -> 409.
  WorldDelta foreign = base_world().deltas.front();
  foreign.meta.base_world_id ^= 1;
  const auto foreign_bytes = write_delta_bytes(foreign);
  query::IngestSource mismatch;
  mismatch.bytes.assign(foreign_bytes.begin(), foreign_bytes.end());
  EXPECT_EQ(runtime.ingest(mismatch).status, 409);

  // Gap -> 409.
  const auto gap_bytes = write_delta_bytes(base_world().deltas[1]);
  query::IngestSource gap;
  gap.bytes.assign(gap_bytes.begin(), gap_bytes.end());
  EXPECT_EQ(runtime.ingest(gap).status, 409);

  // Through all failures the served snapshot never moved.
  EXPECT_EQ(runtime.index().get(), served.get());
  EXPECT_EQ(runtime.deltas_applied(), 0u);

  // And a valid delta still applies afterwards -> 200.
  const auto good_bytes = write_delta_bytes(base_world().deltas[0]);
  query::IngestSource good;
  good.bytes.assign(good_bytes.begin(), good_bytes.end());
  const auto ok = runtime.ingest(good);
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.feed_generation, 1u);
  EXPECT_NE(runtime.index().get(), served.get());
}

TEST(FeedRobustnessTest, PendingDeltasSkipsForeignAppliedAndBrokenFiles) {
  const std::string dir = ::testing::TempDir() + "feed_pending_dir";
  std::filesystem::create_directories(dir);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::filesystem::remove(entry.path());
  }

  // Three well-formed deltas, one foreign delta, one half-written file.
  std::vector<std::string> expected;
  for (const auto& delta : base_world().deltas) {
    const std::string path = dir + "/" + delta_file_name(delta.meta);
    write_delta(delta, path);
    expected.push_back(path);
  }
  WorldDelta foreign = base_world().deltas.front();
  foreign.meta.base_world_id ^= 1;
  write_delta(foreign, dir + "/aaa-foreign.scwd");
  {
    const auto bytes = write_delta_bytes(base_world().deltas.front());
    std::ofstream out(dir + "/half-written.scwd", std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size() / 2));
  }

  FeedRuntime runtime(base_world().path);
  EXPECT_EQ(runtime.pending_deltas(dir), expected);

  // apply_directory sweeps them in order; afterwards nothing is pending.
  EXPECT_EQ(runtime.apply_directory(dir, "test"), 3u);
  EXPECT_EQ(runtime.deltas_applied(), 3u);
  EXPECT_TRUE(runtime.pending_deltas(dir).empty());
}

TEST(FeedRobustnessTest, ReloadDiscardsAppliedDeltas) {
  FeedRuntime runtime(base_world().path);
  const auto bytes = write_delta_bytes(base_world().deltas[0]);
  query::IngestSource source;
  source.bytes.assign(bytes.begin(), bytes.end());
  ASSERT_TRUE(runtime.ingest(source).ok);
  ASSERT_EQ(runtime.horizon(), base_world().meta.end + 1);

  runtime.reload();
  EXPECT_EQ(runtime.horizon(), base_world().meta.end);
  EXPECT_EQ(runtime.deltas_applied(), 0u);
  // The same delta applies again on the rebuilt base.
  EXPECT_TRUE(runtime.ingest(source).ok);
}

}  // namespace
}  // namespace stalecert::feed
