// Differential correctness of incremental ingest: a StalenessIndex grown
// by applying .scwd deltas must answer every query exactly like an index
// built from scratch over the same extended world. Corpus order is NOT
// comparable across the two builds (the patched corpus appends delta
// certificates after all base entries; a from-scratch collect interleaves
// them per log), so answers are compared semantically — indices are mapped
// to full certificate/record identities before comparison.
//
// Two parameterizations:
//  - "golden": the committed tests/feed/data/*.scwd fixtures applied onto
//    the deterministic profile-small world — also pins the byte format
//    (these files must keep parsing and applying under format evolution).
//  - "fresh": a different seed extended live via extend_world, so the
//    comparison does not fossilize one lucky world.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "stalecert/core/pipeline.hpp"
#include "stalecert/dns/name.hpp"
#include "stalecert/feed/extend.hpp"
#include "stalecert/feed/runtime.hpp"
#include "stalecert/query/index.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/store/archive.hpp"
#include "stalecert/util/strings.hpp"

#ifndef STALECERT_FEED_TEST_DATA_DIR
#error "STALECERT_FEED_TEST_DATA_DIR must be defined by the build"
#endif

namespace stalecert::feed {
namespace {

using query::StalenessIndex;
using util::Date;
using util::DateInterval;

constexpr std::int64_t kFreshExtendDays = 7;

/// Order-independent identity of one corpus certificate: serial, key,
/// validity, and the full (sorted) name set.
std::string cert_identity(const core::CertificateCorpus& corpus,
                          std::uint32_t index) {
  const auto& cert = corpus.at(index);
  std::vector<std::string> names = cert.dns_names();
  std::sort(names.begin(), names.end());
  std::string id = cert.serial_hex() + "|" +
                   cert.subject_key().fingerprint_hex() + "|" +
                   cert.not_before().to_string() + "|" +
                   cert.not_after().to_string();
  for (const auto& name : names) id += "|" + name;
  return id;
}

/// Order-independent identity of one stale record.
std::string record_identity(const StalenessIndex& index, std::uint32_t r) {
  const query::StaleRecord& record = index.stale_records()[r];
  return std::string(core::to_string(record.cls)) + "|" +
         cert_identity(index.corpus(), record.cert_index) + "|" +
         record.trigger_domain + "|" + record.event_date.to_string() + "|" +
         record.staleness.begin().to_string() + "|" +
         record.staleness.end().to_string() + "|" +
         (record.reason ? std::to_string(static_cast<int>(*record.reason))
                        : "-");
}

std::multiset<std::string> cert_identities(const StalenessIndex& index,
                                           const std::vector<std::uint32_t>& v) {
  std::multiset<std::string> out;
  for (const auto i : v) out.insert(cert_identity(index.corpus(), i));
  return out;
}

std::multiset<std::string> record_identities(
    const StalenessIndex& index, const std::vector<std::uint32_t>& v) {
  std::multiset<std::string> out;
  for (const auto r : v) out.insert(record_identity(index, r));
  return out;
}

struct Fixture {
  std::shared_ptr<const StalenessIndex> patched;  // base + deltas
  std::shared_ptr<const StalenessIndex> scratch;  // full pipeline, same world
  std::uint64_t deltas_applied = 0;
  std::uint64_t new_certificates = 0;
  std::uint64_t new_stale_records = 0;

  std::vector<std::string> domains;
  std::vector<Date> dates;
};

// gtest_discover_tests runs every test of this suite as its own process,
// and ctest runs them in parallel — a bare tag would make two processes
// race on the same archive path (observed as "truncated segment" flakes).
std::string unique_tag(const std::string& tag) {
  return tag + "_" + std::to_string(::getpid());
}

std::shared_ptr<const StalenessIndex> build_scratch(
    const sim::WorldConfig& config, std::int64_t extra_days,
    const std::string& tag) {
  sim::World world(config);
  world.run();
  world.extend(extra_days);
  const std::string path =
      ::testing::TempDir() + unique_tag(tag) + "_scratch.scw";
  store::save_world(world, path, nullptr, "small");
  return StalenessIndex::from_archive(path);
}

Fixture build_fixture(std::uint64_t seed, std::int64_t extra_days,
                      const std::vector<std::string>& delta_paths,
                      const std::string& tag) {
  sim::WorldConfig config = sim::small_test_config();
  config.seed = seed;

  // Delta side: archive the base world, feed the deltas through the real
  // serving runtime (decode + validate + apply + with_patch).
  Fixture f;
  const std::string base_path =
      ::testing::TempDir() + unique_tag(tag) + "_base.scw";
  {
    sim::World world(config);
    world.run();
    store::save_world(world, base_path, nullptr, "small");
  }

  std::vector<std::string> paths = delta_paths;
  if (paths.empty()) {
    const auto deltas =
        extend_world(store::ArchiveReader(base_path).meta(), extra_days);
    for (const auto& delta : deltas) {
      const std::string path = ::testing::TempDir() + unique_tag(tag) + "_" +
                               delta_file_name(delta.meta);
      write_delta(delta, path);
      paths.push_back(path);
    }
  }

  FeedRuntime runtime(base_path);
  for (const auto& path : paths) {
    query::IngestSource source;
    source.path = path;
    const query::IngestOutcome outcome = runtime.ingest(source);
    EXPECT_TRUE(outcome.ok) << path << ": " << outcome.message;
    f.new_certificates += outcome.new_certificates;
    f.new_stale_records += outcome.new_stale_records;
  }
  f.patched = runtime.index();
  f.deltas_applied = runtime.deltas_applied();

  f.scratch = build_scratch(config, extra_days, tag);

  // Probe sets from the scratch side (the ground truth): every FQDN and
  // e2LD named anywhere, every trigger domain, plus a guaranteed miss.
  std::set<std::string> domains;
  for (const auto& cert : f.scratch->corpus().certificates()) {
    for (const auto& raw : cert.dns_names()) {
      const std::string name = query::normalize_domain(raw);
      domains.insert(name);
      if (const auto e2 = dns::e2ld(name)) domains.insert(*e2);
    }
  }
  for (const auto& record : f.scratch->stale_records()) {
    domains.insert(query::normalize_domain(record.trigger_domain));
  }
  domains.insert("definitely-not-present.test");
  f.domains.assign(domains.begin(), domains.end());

  std::set<Date> dates;
  for (const auto& record : f.scratch->stale_records()) {
    for (const std::int64_t shift : {-1, 0, 1}) {
      dates.insert(record.staleness.begin() + shift);
      dates.insert(record.staleness.end() + shift);
    }
  }
  const store::ArchiveMeta& meta = f.scratch->meta();
  for (Date d = meta.start; d <= meta.end; d += 11) dates.insert(d);
  dates.insert(meta.end);
  f.dates.assign(dates.begin(), dates.end());
  return f;
}

const Fixture& golden_fixture() {
  static const Fixture fixture = [] {
    const std::string dir = STALECERT_FEED_TEST_DATA_DIR;
    return build_fixture(sim::small_test_config().seed, 3,
                         {dir + "/delta-2023-01-01-2023-01-01.scwd",
                          dir + "/delta-2023-01-02-2023-01-02.scwd",
                          dir + "/delta-2023-01-03-2023-01-03.scwd"},
                         "feed_diff_golden");
  }();
  return fixture;
}

const Fixture& fresh_fixture() {
  static const Fixture fixture =
      build_fixture(20260808, kFreshExtendDays, {}, "feed_diff_fresh");
  return fixture;
}

class FeedDifferentialTest : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] const Fixture& fixture() const {
    return std::string(GetParam()) == "golden" ? golden_fixture()
                                               : fresh_fixture();
  }
};

TEST_P(FeedDifferentialTest, DeltasActuallyChangedTheWorld) {
  // The equivalence below is vacuous if the deltas were empty: the
  // extension must add certificates, and at least one delta window must
  // have produced new stale records somewhere across both fixtures.
  const Fixture& f = fixture();
  EXPECT_GT(f.deltas_applied, 0u);
  EXPECT_GT(f.new_certificates, 0u);
  EXPECT_EQ(f.patched->patch_generation(), f.deltas_applied);
  EXPECT_GT(golden_fixture().new_stale_records +
                fresh_fixture().new_stale_records,
            0u);
}

TEST_P(FeedDifferentialTest, MetaAndTotalsAgree) {
  const Fixture& f = fixture();
  EXPECT_EQ(f.patched->meta().end, f.scratch->meta().end);
  EXPECT_EQ(f.patched->corpus().size(), f.scratch->corpus().size());
  EXPECT_EQ(f.patched->stale_records().size(), f.scratch->stale_records().size());
  EXPECT_EQ(f.patched->stats().certificates, f.scratch->stats().certificates);
  EXPECT_EQ(f.patched->stats().stale_records, f.scratch->stats().stale_records);
  EXPECT_EQ(f.patched->stats().by_class, f.scratch->stats().by_class);
  EXPECT_EQ(f.patched->stats().distinct_keys, f.scratch->stats().distinct_keys);
  EXPECT_EQ(f.patched->stats().revoked_serials,
            f.scratch->stats().revoked_serials);
}

TEST_P(FeedDifferentialTest, CorpusContentsAgree) {
  const Fixture& f = fixture();
  std::multiset<std::string> patched, scratch;
  for (std::uint32_t i = 0; i < f.patched->corpus().size(); ++i) {
    patched.insert(cert_identity(f.patched->corpus(), i));
  }
  for (std::uint32_t i = 0; i < f.scratch->corpus().size(); ++i) {
    scratch.insert(cert_identity(f.scratch->corpus(), i));
  }
  EXPECT_EQ(patched, scratch);
}

TEST_P(FeedDifferentialTest, StaleRecordContentsAgree) {
  const Fixture& f = fixture();
  std::multiset<std::string> patched, scratch;
  for (std::uint32_t r = 0; r < f.patched->stale_records().size(); ++r) {
    patched.insert(record_identity(*f.patched, r));
  }
  for (std::uint32_t r = 0; r < f.scratch->stale_records().size(); ++r) {
    scratch.insert(record_identity(*f.scratch, r));
  }
  EXPECT_EQ(patched, scratch);
}

TEST_P(FeedDifferentialTest, CertsForFqdnAgrees) {
  const Fixture& f = fixture();
  for (const auto& domain : f.domains) {
    EXPECT_EQ(cert_identities(*f.patched, f.patched->certs_for_fqdn(domain)),
              cert_identities(*f.scratch, f.scratch->certs_for_fqdn(domain)))
        << domain;
  }
}

TEST_P(FeedDifferentialTest, CertsForKeyAgrees) {
  const Fixture& f = fixture();
  std::set<std::string> keys;
  for (const auto& cert : f.scratch->corpus().certificates()) {
    keys.insert(cert.subject_key().fingerprint_hex());
  }
  keys.insert("not-a-fingerprint");
  for (const auto& key : keys) {
    EXPECT_EQ(cert_identities(*f.patched, f.patched->certs_for_key(key)),
              cert_identities(*f.scratch, f.scratch->certs_for_key(key)))
        << key;
  }
}

TEST_P(FeedDifferentialTest, IsStaleAndPointQueriesAgree) {
  const Fixture& f = fixture();
  for (const auto& domain : f.domains) {
    for (const auto date : f.dates) {
      EXPECT_EQ(f.patched->is_stale(domain, date),
                f.scratch->is_stale(domain, date))
          << domain << " @ " << date.to_string();
      EXPECT_EQ(
          record_identities(*f.patched, f.patched->stale_records_for(domain, date)),
          record_identities(*f.scratch,
                            f.scratch->stale_records_for(domain, date)))
          << domain << " @ " << date.to_string();
    }
  }
}

TEST_P(FeedDifferentialTest, RangeQueriesAgree) {
  const Fixture& f = fixture();
  for (const auto& domain : f.domains) {
    for (std::size_t i = 0; i + 1 < f.dates.size(); i += 3) {
      const DateInterval range{f.dates[i], f.dates[i + 1]};
      EXPECT_EQ(record_identities(
                    *f.patched, f.patched->stale_records_for_range(domain, range)),
                record_identities(
                    *f.scratch, f.scratch->stale_records_for_range(domain, range)))
          << domain;
    }
  }
}

TEST_P(FeedDifferentialTest, StaleAtAgrees) {
  const Fixture& f = fixture();
  for (const auto date : f.dates) {
    EXPECT_EQ(record_identities(*f.patched, f.patched->stale_at(date)),
              record_identities(*f.scratch, f.scratch->stale_at(date)))
        << date.to_string();
    for (const auto cls : core::kAllStaleClasses) {
      EXPECT_EQ(record_identities(*f.patched, f.patched->stale_at(date, cls)),
                record_identities(*f.scratch, f.scratch->stale_at(date, cls)))
          << date.to_string() << " class " << core::to_string(cls);
    }
  }
}

TEST_P(FeedDifferentialTest, StaleSummaryAgrees) {
  const Fixture& f = fixture();
  for (const auto& domain : f.domains) {
    const query::DomainSummary patched = f.patched->stale_summary(domain);
    const query::DomainSummary scratch = f.scratch->stale_summary(domain);
    EXPECT_EQ(patched.certificates, scratch.certificates) << domain;
    EXPECT_EQ(patched.stale_by_class, scratch.stale_by_class) << domain;
    EXPECT_EQ(patched.earliest_event, scratch.earliest_event) << domain;
    EXPECT_EQ(patched.latest_staleness_end, scratch.latest_staleness_end)
        << domain;
  }
}

TEST_P(FeedDifferentialTest, RevocationStatusAgrees) {
  const Fixture& f = fixture();
  std::set<std::string> serials;
  for (const auto& cert : f.scratch->corpus().certificates()) {
    serials.insert(util::to_lower(cert.serial_hex()));
  }
  serials.insert("feedfacefeedface");
  for (const auto& serial : serials) {
    const auto patched = f.patched->revocation_status(serial);
    const auto scratch = f.scratch->revocation_status(serial);
    ASSERT_EQ(patched.has_value(), scratch.has_value()) << serial;
    if (patched) {
      EXPECT_EQ(patched->revocation_date, scratch->revocation_date) << serial;
      EXPECT_EQ(patched->reason, scratch->reason) << serial;
      // cert_index is order-dependent; the cert it names must not be.
      EXPECT_EQ(cert_identity(f.patched->corpus(), patched->cert_index),
                cert_identity(f.scratch->corpus(), scratch->cert_index))
          << serial;
    }
  }
}

TEST_P(FeedDifferentialTest, ValidCertCountAgrees) {
  const Fixture& f = fixture();
  for (const auto date : f.dates) {
    EXPECT_EQ(f.patched->valid_cert_count(date),
              f.scratch->valid_cert_count(date))
        << date.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, FeedDifferentialTest,
                         ::testing::Values("golden", "fresh"));

}  // namespace
}  // namespace stalecert::feed
