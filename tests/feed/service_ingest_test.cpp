// POST /ingest end-to-end (StaledService + FeedRuntime over a real
// socket) and apply-during-query-load concurrency. The concurrency tests
// run under the TSan CI job (see .github/workflows gtest_filter), so they
// exercise exactly the production sharing pattern: readers resolve
// snapshots through SnapshotCell while one writer ingests deltas.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "stalecert/feed/extend.hpp"
#include "stalecert/feed/runtime.hpp"
#include "stalecert/query/client.hpp"
#include "stalecert/query/server.hpp"
#include "stalecert/query/service.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/store/archive.hpp"

namespace stalecert::feed {
namespace {

struct FeedWorld {
  std::string base_path;
  std::vector<std::string> delta_bodies;  // .scwd bytes, in sequence order
  std::vector<std::string> delta_paths;
};

const FeedWorld& feed_world() {
  static const FeedWorld shared = [] {
    FeedWorld w;
    w.base_path = ::testing::TempDir() + "feed_service_base.scw";
    sim::World world(sim::small_test_config());
    world.run();
    store::save_world(world, w.base_path, nullptr, "small");
    const auto deltas =
        extend_world(store::ArchiveReader(w.base_path).meta(), 3);
    for (const auto& delta : deltas) {
      const auto bytes = write_delta_bytes(delta);
      w.delta_bodies.emplace_back(bytes.begin(), bytes.end());
      const std::string path =
          ::testing::TempDir() + "feed_service_" + delta_file_name(delta.meta);
      write_delta(delta, path);
      w.delta_paths.push_back(path);
    }
    return w;
  }();
  return shared;
}

/// Service in feed mode + HTTP server on an ephemeral port.
class FeedServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<query::StaledService>(feed_world().base_path);
    service_->log().set_level(obs::LogLevel::kError);
    runtime_ = std::make_unique<FeedRuntime>(feed_world().base_path);
    service_->set_ingest_handler(runtime_->handler());
    service_->publish(runtime_->index(), "test base");

    query::HttpServer::Options options;
    options.port = 0;
    server_ = std::make_unique<query::HttpServer>(
        options,
        [this](const query::HttpRequest& r) { return service_->handle(r); });
    server_->start();
    client_ = std::make_unique<query::HttpClient>("127.0.0.1", server_->port());
  }

  void TearDown() override {
    client_.reset();
    if (server_) server_->stop();
  }

  std::unique_ptr<query::StaledService> service_;
  std::unique_ptr<FeedRuntime> runtime_;
  std::unique_ptr<query::HttpServer> server_;
  std::unique_ptr<query::HttpClient> client_;
};

TEST_F(FeedServiceTest, IngestAppliesDeltaAndBumpsGeneration) {
  const auto before = client_->get("/statusz");
  ASSERT_EQ(before.status, 200);
  EXPECT_NE(before.body.find("\"feed\":{\"enabled\":true"), std::string::npos);
  EXPECT_NE(before.body.find("\"generation\":0"), std::string::npos);

  const auto applied = client_->post("/ingest", feed_world().delta_bodies[0],
                                     "application/octet-stream");
  ASSERT_EQ(applied.status, 200) << applied.body;
  EXPECT_NE(applied.body.find("\"applied\":true"), std::string::npos);
  EXPECT_NE(applied.body.find("\"generation\":1"), std::string::npos);
  EXPECT_NE(applied.body.find("\"rebuilt\":"), std::string::npos);

  const auto after = client_->get("/statusz");
  EXPECT_NE(after.body.find("\"generation\":1"), std::string::npos);
  EXPECT_NE(after.body.find("\"patch_generation\":1"), std::string::npos);

  const auto metrics = client_->get("/metrics");
  EXPECT_NE(metrics.body.find("stalecert_staled_feed_generation 1"),
            std::string::npos);
  EXPECT_NE(
      metrics.body.find(
          "stalecert_staled_ingest_total{result=\"ok\"} 1"),
      std::string::npos);
}

TEST_F(FeedServiceTest, IngestByPathParameter) {
  const auto applied =
      client_->post("/ingest?path=" + feed_world().delta_paths[0], "");
  ASSERT_EQ(applied.status, 200) << applied.body;
  EXPECT_NE(applied.body.find("\"applied\":true"), std::string::npos);
}

TEST_F(FeedServiceTest, IngestRejectionsKeepServingOldSnapshot) {
  const auto snapshot = service_->snapshot();

  // Wrong method.
  EXPECT_EQ(client_->get("/ingest").status, 405);
  // Empty body and no ?path=.
  EXPECT_EQ(client_->post("/ingest", "").status, 400);
  // Garbage bytes.
  const auto garbage = client_->post("/ingest", "not a delta");
  EXPECT_EQ(garbage.status, 400);
  EXPECT_NE(garbage.body.find("\"applied\":false"), std::string::npos);
  // Out-of-sequence (delta 2 before delta 1).
  EXPECT_EQ(client_->post("/ingest", feed_world().delta_bodies[1]).status, 409);

  EXPECT_EQ(service_->snapshot().get(), snapshot.get());

  // The failures are visible in the error counter, and a good delta still
  // lands afterwards.
  const auto metrics = client_->get("/metrics");
  EXPECT_NE(
      metrics.body.find(
          "stalecert_staled_ingest_total{result=\"error\"} 2"),
      std::string::npos);
  EXPECT_EQ(client_->post("/ingest", feed_world().delta_bodies[0]).status, 200);
  EXPECT_NE(service_->snapshot().get(), snapshot.get());
}

TEST_F(FeedServiceTest, SequentialDeltasExtendTheServedHorizon) {
  const std::string before_end = service_->snapshot()->meta().end.to_string();
  for (const auto& body : feed_world().delta_bodies) {
    ASSERT_EQ(client_->post("/ingest", body).status, 200);
  }
  const std::string after_end = service_->snapshot()->meta().end.to_string();
  EXPECT_LT(before_end, after_end);
  EXPECT_EQ(service_->snapshot()->patch_generation(), 3u);

  // The summary endpoint serves the extended window.
  const auto summary = client_->get("/v1/summary");
  EXPECT_EQ(summary.status, 200);
  EXPECT_NE(summary.body.find(after_end), std::string::npos);
}

TEST(FeedServiceNoHandlerTest, IngestWithoutFeedModeIs404) {
  query::StaledService service(feed_world().base_path);
  service.log().set_level(obs::LogLevel::kError);
  service.load();
  query::HttpRequest request;
  request.method = "POST";
  request.version = "HTTP/1.1";
  request.path = "/ingest";
  const auto response = service.handle(request);
  EXPECT_EQ(response.status, 404);
  EXPECT_NE(response.body.find("feed"), std::string::npos);
}

/// Apply-during-query-load: readers hammer the full endpoint surface
/// in-process while the main thread ingests every delta. Run under TSan in
/// CI; any unsynchronized snapshot handoff shows up there.
TEST(FeedConcurrencyTest, IngestWhileServing) {
  query::StaledService service(feed_world().base_path);
  service.log().set_level(obs::LogLevel::kError);
  FeedRuntime runtime(feed_world().base_path);
  service.set_ingest_handler(runtime.handler());
  service.publish(runtime.index(), "test base");

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&service, &stop, &served] {
      const std::vector<std::string> targets = {
          "/v1/summary", "/statusz", "/metrics", "/healthz"};
      std::size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        query::HttpRequest request;
        request.method = "GET";
        request.version = "HTTP/1.1";
        request.path = targets[i++ % targets.size()];
        const auto response = service.handle(request);
        if (response.status != 200) {
          ADD_FAILURE() << request.path << " -> " << response.status;
          return;
        }
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (const auto& body : feed_world().delta_bodies) {
    query::IngestSource source;
    source.bytes = body;
    source.origin = "test";
    const auto outcome = service.ingest(source);
    EXPECT_TRUE(outcome.ok) << outcome.message;
  }
  // Let the readers observe the final snapshot for a bit (bounded, in
  // case a reader bailed via ADD_FAILURE).
  for (int spin = 0; spin < 2000 && served.load() < 64; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(service.snapshot()->patch_generation(), 3u);
  EXPECT_GT(served.load(), 0u);
}

TEST(FeedConcurrencyTest, IngestWhileBusyAnswers503WithRetryAfter) {
  // POST /ingest must never queue behind a slow apply: the second request
  // gets an immediate 503 + Retry-After (try_ingest), the poster retries.
  // A handler parked on a latch makes the overlap deterministic.
  query::StaledService service(feed_world().base_path);
  service.log().set_level(obs::LogLevel::kError);
  service.load();
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  service.set_ingest_handler([&](const query::IngestSource&) {
    entered.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    query::IngestOutcome outcome;
    outcome.ok = false;
    outcome.status = 400;
    outcome.message = "test handler";
    return outcome;
  });

  query::HttpRequest post;
  post.method = "POST";
  post.version = "HTTP/1.1";
  post.path = "/ingest";
  post.body = "whatever";

  std::thread first([&] { (void)service.handle(post); });
  while (!entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto busy = service.handle(post);
  EXPECT_EQ(busy.status, 503);
  EXPECT_NE(busy.body.find("busy"), std::string::npos);
  ASSERT_TRUE(busy.headers.contains("Retry-After"));
  EXPECT_EQ(busy.headers.at("Retry-After"), "1");

  release.store(true);
  first.join();

  // With the apply path free again, the next POST reaches the handler.
  const auto after = service.handle(post);
  EXPECT_EQ(after.status, 400);
}

TEST(FeedConcurrencyTest, ConcurrentIngestAttemptsSerialize) {
  // Two threads race the same delta sequence; exactly one apply per day
  // must win, the loser getting a clean 409, never a torn snapshot.
  query::StaledService service(feed_world().base_path);
  service.log().set_level(obs::LogLevel::kError);
  FeedRuntime runtime(feed_world().base_path);
  service.set_ingest_handler(runtime.handler());
  service.publish(runtime.index(), "test base");

  std::atomic<int> ok_count{0};
  std::atomic<int> conflict_count{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&] {
      for (const auto& body : feed_world().delta_bodies) {
        query::IngestSource source;
        source.bytes = body;
        source.origin = "race";
        const auto outcome = service.ingest(source);
        if (outcome.ok) {
          ok_count.fetch_add(1);
        } else {
          EXPECT_EQ(outcome.status, 409) << outcome.message;
          conflict_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& writer : writers) writer.join();

  // All three days landed exactly once; every loser conflicted cleanly.
  EXPECT_EQ(ok_count.load(), 3);
  EXPECT_EQ(conflict_count.load(), 3);
  EXPECT_EQ(service.snapshot()->patch_generation(), 3u);
  EXPECT_EQ(service.snapshot()->meta().end.to_string(),
            runtime.horizon().to_string());
}

}  // namespace
}  // namespace stalecert::feed
