// The .scwd container: encode/decode identity, writer determinism, slicing
// equivalence of world extension, file naming, and the world-id lineage
// fingerprint. Structural equality is checked by re-encoding — the writer
// is canonical (same delta -> same bytes), so encode(decode(b)) == b is a
// full deep comparison without per-record operator==.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "stalecert/feed/delta.hpp"
#include "stalecert/feed/errors.hpp"
#include "stalecert/feed/extend.hpp"
#include "stalecert/feed/format.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/store/archive.hpp"

namespace stalecert::feed {
namespace {

using util::Date;

/// One deterministic small base world, archived once per process.
const store::ArchiveMeta& base_meta() {
  static const store::ArchiveMeta meta = [] {
    sim::World world(sim::small_test_config());
    world.run();
    const std::string path = ::testing::TempDir() + "feed_roundtrip_base.scw";
    store::save_world(world, path, nullptr, "small");
    return store::ArchiveReader(path).meta();
  }();
  return meta;
}

TEST(FeedDeltaTest, ConfigForProfileResolvesKnownRecipes) {
  const auto small = config_for_profile("small", 123);
  ASSERT_TRUE(small.has_value());
  EXPECT_EQ(small->seed, 123u);

  const auto dflt = config_for_profile("default", 9);
  ASSERT_TRUE(dflt.has_value());
  EXPECT_EQ(dflt->seed, 9u);

  EXPECT_FALSE(config_for_profile("custom", 1).has_value());
  EXPECT_FALSE(config_for_profile("banana", 1).has_value());
}

TEST(FeedDeltaTest, WorldIdIgnoresHorizonOnly) {
  store::ArchiveMeta meta = base_meta();
  const std::uint64_t id = world_id(meta);

  // Same world at a later horizon: same lineage.
  meta.end = meta.end + 30;
  EXPECT_EQ(world_id(meta), id);

  // Any recipe change: different lineage.
  store::ArchiveMeta reseeded = base_meta();
  reseeded.seed += 1;
  EXPECT_NE(world_id(reseeded), id);

  store::ArchiveMeta reprofiled = base_meta();
  reprofiled.profile = "default";
  EXPECT_NE(world_id(reprofiled), id);

  store::ArchiveMeta shifted = base_meta();
  shifted.start = shifted.start + 1;
  EXPECT_NE(world_id(shifted), id);

  store::ArchiveMeta repatterned = base_meta();
  repatterned.delegation_patterns.push_back("*.elsewhere.example");
  EXPECT_NE(world_id(repatterned), id);
}

TEST(FeedDeltaTest, RoundtripBytesIsIdentity) {
  const auto deltas = extend_world(base_meta(), 3, 3);
  ASSERT_EQ(deltas.size(), 1u);
  const WorldDelta& delta = deltas.front();
  EXPECT_EQ(delta.meta.base_world_id, world_id(base_meta()));
  EXPECT_EQ(delta.meta.from_day, base_meta().end + 1);
  EXPECT_EQ(delta.meta.to_day, base_meta().end + 3);
  EXPECT_EQ(delta.adns.size(), 3u);

  const std::vector<std::uint8_t> bytes = write_delta_bytes(delta);
  const WorldDelta decoded = read_delta_bytes(bytes);
  EXPECT_EQ(decoded.meta, delta.meta);
  EXPECT_EQ(decoded.ct_entry_count(), delta.ct_entry_count());
  EXPECT_EQ(decoded.revocations.size(), delta.revocations.size());
  EXPECT_EQ(decoded.registrations, delta.registrations);
  EXPECT_EQ(decoded.adns.size(), delta.adns.size());
  // Canonical writer: decoding and re-encoding reproduces the bytes, which
  // pins every record field without per-type equality operators.
  EXPECT_EQ(write_delta_bytes(decoded), bytes);
}

TEST(FeedDeltaTest, FileRoundtripMatchesBytes) {
  const auto deltas = extend_world(base_meta(), 1);
  ASSERT_EQ(deltas.size(), 1u);
  const std::string path = ::testing::TempDir() + "feed_roundtrip.scwd";
  const std::uint64_t written = write_delta(deltas.front(), path);

  std::ifstream in(path, std::ios::binary);
  const std::string on_disk((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(on_disk.size(), written);

  const WorldDelta decoded = read_delta(path);
  EXPECT_EQ(write_delta_bytes(decoded), write_delta_bytes(deltas.front()));
}

TEST(FeedDeltaTest, ExtensionIsDeterministic) {
  const auto first = extend_world(base_meta(), 2);
  const auto second = extend_world(base_meta(), 2);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(write_delta_bytes(first[i]), write_delta_bytes(second[i])) << i;
  }
}

TEST(FeedDeltaTest, SlicingIsEquivalent) {
  // Four one-day deltas and one four-day delta describe the same extended
  // world: same appended records in total, same cumulative ground truth.
  const auto daily = extend_world(base_meta(), 4, 1);
  const auto whole = extend_world(base_meta(), 4, 4);
  ASSERT_EQ(daily.size(), 4u);
  ASSERT_EQ(whole.size(), 1u);

  std::uint64_t ct = 0, revocations = 0, whois = 0, adns = 0;
  for (const auto& d : daily) {
    ct += d.ct_entry_count();
    revocations += d.revocations.size();
    whois += d.registrations.size();
    adns += d.adns.size();
  }
  EXPECT_EQ(ct, whole.front().ct_entry_count());
  EXPECT_EQ(revocations, whole.front().revocations.size());
  EXPECT_EQ(whois, whole.front().registrations.size());
  EXPECT_EQ(adns, whole.front().adns.size());

  // Day coverage tiles the window with no gaps.
  Date expected = base_meta().end + 1;
  for (const auto& d : daily) {
    EXPECT_EQ(d.meta.from_day, expected);
    EXPECT_EQ(d.meta.to_day, expected);
    expected = expected + 1;
  }

  // Stats are cumulative, so the last slice agrees with the whole window.
  const sim::World::Stats& a = daily.back().stats;
  const sim::World::Stats& b = whole.front().stats;
  EXPECT_EQ(a.domains_registered, b.domains_registered);
  EXPECT_EQ(a.domains_reregistered, b.domains_reregistered);
  EXPECT_EQ(a.certificates_issued, b.certificates_issued);
  EXPECT_EQ(a.cdn_departures, b.cdn_departures);
  EXPECT_EQ(a.key_compromises, b.key_compromises);
  EXPECT_EQ(a.other_revocations, b.other_revocations);
}

TEST(FeedDeltaTest, DeltaFileNameSortsInSequenceOrder) {
  DeltaMeta early;
  early.from_day = Date::parse("2023-01-09");
  early.to_day = Date::parse("2023-01-09");
  DeltaMeta late;
  late.from_day = Date::parse("2023-01-10");
  late.to_day = Date::parse("2023-01-11");
  EXPECT_EQ(delta_file_name(early), "delta-2023-01-09-2023-01-09.scwd");
  EXPECT_EQ(delta_file_name(late), "delta-2023-01-10-2023-01-11.scwd");
  EXPECT_LT(delta_file_name(early), delta_file_name(late));
}

TEST(FeedDeltaTest, ExtendRejectsUnreproducibleProfiles) {
  store::ArchiveMeta meta = base_meta();
  meta.profile = "custom";
  EXPECT_THROW(extend_world(meta, 1), FeedError);
}

}  // namespace
}  // namespace stalecert::feed
