#include "stalecert/crypto/keypair.hpp"

#include <gtest/gtest.h>

namespace stalecert::crypto {
namespace {

TEST(KeyPairTest, DeriveIsDeterministic) {
  const KeyPair a = KeyPair::derive("customer-1/key-0", KeyAlgorithm::kEcdsaP256);
  const KeyPair b = KeyPair::derive("customer-1/key-0", KeyAlgorithm::kEcdsaP256);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.fingerprint_hex(), b.fingerprint_hex());
  EXPECT_EQ(a.id64(), b.id64());
}

TEST(KeyPairTest, DistinctLabelsYieldDistinctKeys) {
  const KeyPair a = KeyPair::derive("label-a", KeyAlgorithm::kEcdsaP256);
  const KeyPair b = KeyPair::derive("label-b", KeyAlgorithm::kEcdsaP256);
  EXPECT_FALSE(a == b);
}

TEST(KeyPairTest, AlgorithmAffectsIdentity) {
  const KeyPair rsa = KeyPair::derive("same", KeyAlgorithm::kRsa2048);
  const KeyPair ec = KeyPair::derive("same", KeyAlgorithm::kEcdsaP256);
  EXPECT_FALSE(rsa == ec);
  EXPECT_EQ(rsa.algorithm(), KeyAlgorithm::kRsa2048);
  EXPECT_EQ(ec.algorithm(), KeyAlgorithm::kEcdsaP256);
}

TEST(KeyPairTest, SeedConstructor) {
  const KeyPair a(42, KeyAlgorithm::kEcdsaP384);
  const KeyPair b(42, KeyAlgorithm::kEcdsaP384);
  const KeyPair c(43, KeyAlgorithm::kEcdsaP384);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(KeyPairTest, FromPartsRoundTrip) {
  const KeyPair original = KeyPair::derive("round", KeyAlgorithm::kEd25519);
  const KeyPair rebuilt =
      KeyPair::from_parts(original.spki_fingerprint(), original.algorithm());
  EXPECT_EQ(original, rebuilt);
  EXPECT_EQ(rebuilt.algorithm(), KeyAlgorithm::kEd25519);
}

TEST(KeyPairTest, KeyIdEqualsSpkiFingerprint) {
  const KeyPair kp = KeyPair::derive("skid", KeyAlgorithm::kEcdsaP256);
  EXPECT_EQ(kp.key_id(), kp.spki_fingerprint());
}

TEST(KeyAlgorithmTest, Names) {
  EXPECT_EQ(to_string(KeyAlgorithm::kRsa2048), "RSA-2048");
  EXPECT_EQ(to_string(KeyAlgorithm::kRsa4096), "RSA-4096");
  EXPECT_EQ(to_string(KeyAlgorithm::kEcdsaP256), "ECDSA-P256");
  EXPECT_EQ(to_string(KeyAlgorithm::kEcdsaP384), "ECDSA-P384");
  EXPECT_EQ(to_string(KeyAlgorithm::kEd25519), "Ed25519");
}

}  // namespace
}  // namespace stalecert::crypto
