#include "stalecert/crypto/sha256.hpp"

#include <gtest/gtest.h>

#include "stalecert/util/error.hpp"
#include "stalecert/util/hex.hpp"

namespace stalecert::crypto {
namespace {

std::string hex(const Digest& d) { return digest_hex(d); }

// NIST / well-known SHA-256 test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(hex(Sha256::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64 bytes: padding must spill into a second block.
  const std::string block(64, 'x');
  const Digest once = Sha256::hash(block);
  Sha256 streaming;
  streaming.update(block.substr(0, 13));
  streaming.update(block.substr(13));
  EXPECT_EQ(once, streaming.finish());
}

TEST(Sha256Test, StreamingEqualsOneShotForManySplits) {
  const std::string message =
      "The quick brown fox jumps over the lazy dog, repeatedly, to exercise "
      "every buffer boundary in the streaming implementation of SHA-256.";
  const Digest expected = Sha256::hash(message);
  for (std::size_t split = 0; split <= message.size(); split += 7) {
    Sha256 h;
    h.update(message.substr(0, split));
    h.update(message.substr(split));
    EXPECT_EQ(h.finish(), expected) << "split=" << split;
  }
}

TEST(Sha256Test, FinishTwiceThrows) {
  Sha256 h;
  h.update("x");
  (void)h.finish();
  EXPECT_THROW((void)h.finish(), stalecert::LogicError);
  EXPECT_THROW(h.update("y"), stalecert::LogicError);
  h.reset();
  EXPECT_NO_THROW(h.update("fresh"));
}

TEST(Sha256Test, LengthSensitivity) {
  // Messages of length 55/56/57 straddle the padding boundary.
  const Digest a = Sha256::hash(std::string(55, 'q'));
  const Digest b = Sha256::hash(std::string(56, 'q'));
  const Digest c = Sha256::hash(std::string(57, 'q'));
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
}

TEST(HmacTest, Rfc4231Case1) {
  // RFC 4231 test case 2: key "Jefe", data "what do ya want for nothing?".
  const Digest mac = hmac_sha256("Jefe", "what do ya want for nothing?");
  EXPECT_EQ(digest_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  const std::string long_key(131, '\xaa');
  // RFC 4231 test case 6.
  const Digest mac = hmac_sha256(
      long_key, "Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(digest_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(DigestPrefixTest, BigEndianPrefix) {
  Digest d{};
  d[0] = 0x01;
  d[7] = 0xff;
  EXPECT_EQ(digest_prefix64(d), 0x01000000000000ffULL);
}

TEST(HexRoundTrip, EncodeDecode) {
  const Digest d = Sha256::hash("round-trip");
  const std::string encoded = util::hex_encode(d);
  const auto decoded = util::hex_decode(encoded);
  ASSERT_EQ(decoded.size(), d.size());
  EXPECT_TRUE(std::equal(d.begin(), d.end(), decoded.begin()));
  EXPECT_THROW(util::hex_decode("abc"), stalecert::ParseError);
  EXPECT_THROW(util::hex_decode("zz"), stalecert::ParseError);
}

}  // namespace
}  // namespace stalecert::crypto
