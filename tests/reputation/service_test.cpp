#include "stalecert/reputation/service.hpp"

#include <gtest/gtest.h>

namespace stalecert::reputation {
namespace {

using util::Date;

TEST(DomainReportTest, VendorCountsAreDistinctPerCategory) {
  DomainReport report;
  report.url_verdicts = {
      {"v1", UrlCategory::kPhishing, Date::parse("2022-01-01")},
      {"v1", UrlCategory::kPhishing, Date::parse("2022-01-05")},  // same vendor
      {"v2", UrlCategory::kPhishing, Date::parse("2022-01-02")},
      {"v3", UrlCategory::kMalware, Date::parse("2022-01-03")},
  };
  EXPECT_EQ(report.url_vendor_count(UrlCategory::kPhishing), 2u);
  EXPECT_EQ(report.url_vendor_count(UrlCategory::kMalware), 1u);
  EXPECT_EQ(report.url_vendor_count(UrlCategory::kMalicious), 0u);
}

TEST(DomainReportTest, UrlFlagDateThreshold) {
  DomainReport report;
  for (int v = 0; v < 6; ++v) {
    report.url_verdicts.push_back({"v" + std::to_string(v), UrlCategory::kMalicious,
                                   Date::parse("2022-01-01") + v});
  }
  // Fifth distinct vendor labels on day +4.
  EXPECT_EQ(report.url_flag_date(5), Date::parse("2022-01-05"));
  EXPECT_EQ(report.url_flag_date(7), std::nullopt);
}

TEST(DomainReportTest, EarliestFileSubmission) {
  DomainReport report;
  report.files = {{"h1", Date::parse("2022-03-01"), {}},
                  {"h2", Date::parse("2022-01-15"), {}}};
  EXPECT_EQ(report.earliest_file_submission(), Date::parse("2022-01-15"));
  EXPECT_EQ(DomainReport{}.earliest_file_submission(), std::nullopt);
}

TEST(FamilyLabelerTest, PluralityFamilyExtracted) {
  FamilyLabeler labeler;
  const std::string family = labeler.label({
      "Trojan.emotet!gen1",
      "Win32/Emotet.A",
      "generic.malware",
      "Emotet-variant",
  });
  EXPECT_EQ(family, "emotet");
}

TEST(FamilyLabelerTest, AliasesResolve) {
  FamilyLabeler labeler;
  EXPECT_EQ(labeler.label({"Zbot.A", "zeusvm/variant", "trojan.generic"}), "zeus");
}

TEST(FamilyLabelerTest, UnknownWhenNoConsensus) {
  FamilyLabeler labeler;
  EXPECT_EQ(labeler.label({"foo.alpha", "bar.beta", "baz.gamma"}), "Unknown");
  EXPECT_EQ(labeler.label({}), "Unknown");
}

TEST(FamilyLabelerTest, GenericTokensIgnored) {
  FamilyLabeler labeler;
  EXPECT_EQ(labeler.label({"Trojan.Generic!A", "trojan/generic.b"}), "Unknown");
}

TEST(ReputationServiceTest, QueryUnknownDomainIsEmpty) {
  ReputationService service;
  const DomainReport report = service.query("clean.example.com");
  EXPECT_TRUE(report.empty());
  EXPECT_EQ(report.domain, "clean.example.com");
  EXPECT_EQ(service.query_count(), 1u);
}

TEST(ReputationServiceTest, SeedAndQuery) {
  ReputationService service;
  service.seed_url_verdicts(
      "Bad.Example.COM",
      {{"v1", UrlCategory::kPhishing, Date::parse("2022-01-01")}});
  service.seed_file("bad.example.com", {"hash", Date::parse("2022-02-01"), {"x.fam"}});

  const DomainReport report = service.query("bad.example.com");
  EXPECT_FALSE(report.empty());
  EXPECT_EQ(report.url_verdicts.size(), 1u);
  EXPECT_EQ(report.files.size(), 1u);
  EXPECT_EQ(service.seeded_domains(), 1u);  // case-normalized to one domain
}

TEST(ReputationServiceTest, DetectionThresholdConstant) {
  EXPECT_EQ(ReputationService::kDetectionThreshold, 5u);
}

}  // namespace
}  // namespace stalecert::reputation
