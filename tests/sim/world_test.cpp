#include "stalecert/sim/world.hpp"

#include <gtest/gtest.h>

#include "stalecert/core/analyzer.hpp"
#include "stalecert/core/corpus.hpp"
#include "stalecert/core/detectors.hpp"

namespace stalecert::sim {
namespace {

class WorldFixture : public ::testing::Test {
 protected:
  static World& world() {
    // Running the simulation once for the whole suite keeps the test fast.
    static World* instance = [] {
      auto* w = new World(small_test_config());
      w->run();
      return w;
    }();
    return *instance;
  }
};

TEST_F(WorldFixture, PopulationsAreAlive) {
  const auto& stats = world().stats();
  EXPECT_GT(stats.domains_registered, 300u);
  EXPECT_GT(stats.certificates_issued, 50u);
  EXPECT_GT(stats.cdn_enrollments, 5u);
  EXPECT_GT(stats.domains_reregistered, 0u);
  EXPECT_GT(stats.key_compromises, 0u);
  EXPECT_GT(stats.other_revocations, 0u);
}

TEST_F(WorldFixture, CtCorpusCollectable) {
  ct::CollectStats stats;
  const auto corpus = world().ct_logs().collect({}, &stats);
  EXPECT_GT(corpus.size(), 50u);
  EXPECT_GE(stats.raw_entries, 2 * corpus.size());  // precert + final
  for (const auto& cert : corpus) {
    EXPECT_FALSE(cert.dns_names().empty());
    EXPECT_GT(cert.lifetime_days(), 0);
  }
}

TEST_F(WorldFixture, WhoisObservationsRecorded) {
  EXPECT_GT(world().whois().record_count(), 100u);
  // Some re-registrations must be visible via creation-date changes.
  EXPECT_GT(world().whois().re_registrations().size(), 0u);
}

TEST_F(WorldFixture, AdnsSnapshotsDaily) {
  const auto& adns = world().adns();
  const auto config = small_test_config();
  const std::size_t expected_days =
      static_cast<std::size_t>(config.adns_end - config.adns_start) + 1;
  EXPECT_EQ(adns.days(), expected_days);
}

TEST_F(WorldFixture, CrlCollectionCoversAllCas) {
  const auto& collector = world().crl_collection();
  EXPECT_EQ(collector.coverage().size(), world().cas().size());
  EXPECT_GT(collector.total_coverage().ratio(), 0.9);
  EXPECT_GT(collector.store().size(), 0u);
}

TEST_F(WorldFixture, GodaddyBreachVisibleInRevocations) {
  // Join revocations and check the breach spike lands in Nov/Dec 2021.
  const auto corpus_certs = world().ct_logs().collect();
  core::CertificateCorpus corpus(corpus_certs);
  const auto result =
      core::analyze_revocations(corpus, world().crl_collection().store(), {});
  std::uint64_t godaddy_breach_window = 0;
  for (const auto& stale : result.key_compromise) {
    const auto& cert = corpus.at(stale.corpus_index);
    if (cert.issuer().organization == "GoDaddy" &&
        stale.event_date >= util::Date::parse("2021-11-01") &&
        stale.event_date <= util::Date::parse("2021-12-31")) {
      ++godaddy_breach_window;
    }
  }
  EXPECT_GT(godaddy_breach_window, 2u);
}

TEST_F(WorldFixture, ManagedTlsDeparturesDetectable) {
  const auto corpus_certs = world().ct_logs().collect();
  core::CertificateCorpus corpus(corpus_certs);
  core::ManagedTlsOptions options;
  options.delegation_patterns = world().cloudflare_delegation_patterns();
  options.managed_san_pattern = world().cloudflare_san_pattern();
  const auto departures = core::detect_departures(world().adns(), options);
  const auto stale =
      core::detect_managed_tls_departure(corpus, world().adns(), options);
  // Attrition is configured at 3%/month over 3 months of scanning with
  // dozens of enrolled customers; some departures must surface.
  EXPECT_GT(departures.size(), 0u);
  EXPECT_GT(stale.size(), 0u);
  for (const auto& record : stale) {
    EXPECT_TRUE(corpus.at(record.corpus_index).valid_at(record.event_date));
  }
}

TEST_F(WorldFixture, ValidationEnvironmentSemantics) {
  // The Cloudflare actor controls web for enrolled customers only; random
  // actors control nothing they don't own.
  const auto& world_ref = world();
  EXPECT_FALSE(world_ref.controls_dns("never-registered-domain.com", 12345));
  EXPECT_FALSE(world_ref.controls_web("never-registered-domain.com", 12345));
}

TEST(WorldConfigTest, InvalidRangeRejected) {
  WorldConfig config = small_test_config();
  config.end = config.start - 1;
  EXPECT_THROW(World{config}, stalecert::LogicError);
}

TEST(WorldDeterminismTest, SameSeedSameWorld) {
  WorldConfig config = small_test_config();
  config.end = config.start + 120;  // short run
  World a(config);
  a.run();
  World b(config);
  b.run();
  EXPECT_EQ(a.stats().domains_registered, b.stats().domains_registered);
  EXPECT_EQ(a.stats().certificates_issued, b.stats().certificates_issued);
  EXPECT_EQ(a.ct_logs().total_entries(), b.ct_logs().total_entries());
}

TEST(WorldDeterminismTest, DifferentSeedsDiverge) {
  WorldConfig config = small_test_config();
  config.end = config.start + 120;
  World a(config);
  a.run();
  config.seed = 12345;
  World b(config);
  b.run();
  EXPECT_NE(a.ct_logs().total_entries(), b.ct_logs().total_entries());
}

}  // namespace
}  // namespace stalecert::sim
