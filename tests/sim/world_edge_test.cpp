// Edge-configuration worlds: detectors must degrade to zero cleanly when
// the phenomenon they measure is configured away, and ground truth must
// stay consistent under extreme mixes.
#include <gtest/gtest.h>

#include "stalecert/core/pipeline.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::sim {
namespace {

core::PipelineResult run_pipeline_over(World& world) {
  core::PipelineConfig config;
  config.delegation_patterns = world.cloudflare_delegation_patterns();
  config.managed_san_pattern = world.cloudflare_san_pattern();
  return core::run_pipeline(world.ct_logs(), world.crl_collection().store(),
                            world.whois().re_registrations(), world.adns(),
                            config);
}

WorldConfig short_config() {
  WorldConfig config = small_test_config();
  config.end = config.start + 400;
  config.adns_start = config.start + 200;
  config.adns_end = config.start + 280;
  config.crl_start = config.start + 300;
  config.crl_end = config.start + 400;
  return config;
}

TEST(WorldEdgeTest, NoHttpsMeansNoCertificatesAnywhere) {
  WorldConfig config = short_config();
  config.https_adoption_start = 0.0;
  config.https_adoption_end = 0.0;
  config.daily_refund_abuse = 0.0;  // abuse path forces certificates too
  World world(config);
  world.run();

  EXPECT_EQ(world.stats().certificates_issued, 0u);
  EXPECT_EQ(world.ct_logs().total_entries(), 0u);
  const auto result = run_pipeline_over(world);
  EXPECT_EQ(result.corpus.size(), 0u);
  EXPECT_TRUE(result.all_third_party().empty());
}

TEST(WorldEdgeTest, NoCdnMeansNoManagedDepartures) {
  WorldConfig config = short_config();
  config.cdn_share_start = 0.0;
  config.cdn_share_end = 0.0;
  World world(config);
  world.run();

  EXPECT_EQ(world.stats().cdn_enrollments, 0u);
  EXPECT_EQ(world.stats().cdn_departures, 0u);
  const auto result = run_pipeline_over(world);
  EXPECT_TRUE(result.managed_departure.empty());
  // Other classes keep working.
  EXPECT_GT(result.corpus.size(), 0u);
}

TEST(WorldEdgeTest, EveryoneRenewsMeansNoReRegistrations) {
  WorldConfig config = short_config();
  config.renewal_probability = 1.0;
  config.daily_refund_abuse = 0.0;
  World world(config);
  world.run();

  EXPECT_EQ(world.stats().domains_reregistered, 0u);
  const auto result = run_pipeline_over(world);
  EXPECT_TRUE(result.registrant_change.empty());
}

TEST(WorldEdgeTest, NoRevocationActivityMeansEmptyJoin) {
  WorldConfig config = short_config();
  config.daily_key_compromise_2021 = 0.0;
  config.daily_other_revocations = 0.0;
  config.godaddy_breach = false;
  World world(config);
  world.run();

  EXPECT_EQ(world.stats().key_compromises, 0u);
  EXPECT_EQ(world.stats().other_revocations, 0u);
  const auto result = run_pipeline_over(world);
  EXPECT_TRUE(result.revocations.all_revoked.empty());
  // CRLs were still collected — they were just empty.
  EXPECT_GT(world.crl_collection().total_coverage().succeeded, 0u);
  EXPECT_EQ(world.crl_collection().store().size(), 0u);
}

TEST(WorldEdgeTest, AllCdnWorldStillConsistent) {
  WorldConfig config = short_config();
  config.cdn_share_start = 1.0;
  config.cdn_share_end = 1.0;
  config.https_adoption_start = 1.0;
  config.https_adoption_end = 1.0;
  World world(config);
  world.run();

  EXPECT_GT(world.stats().cdn_enrollments, 0u);
  // Every HTTPS site is managed; the corpus is dominated by managed certs.
  const auto result = run_pipeline_over(world);
  std::uint64_t managed = 0;
  for (const auto& cert : result.corpus.certificates()) {
    for (const auto& name : cert.dns_names()) {
      if (util::wildcard_match(world.cloudflare_san_pattern(), name)) {
        ++managed;
        break;
      }
    }
  }
  EXPECT_GT(managed * 2, result.corpus.size());
}

TEST(WorldEdgeTest, KeylessWorldHasNoCustody) {
  WorldConfig config = short_config();
  config.cloudflare_keyless = true;
  World world(config);
  world.run();
  EXPECT_GT(world.stats().cdn_enrollments, 0u);
  EXPECT_TRUE(world.cloudflare().custody_ledger().empty());
}

}  // namespace
}  // namespace stalecert::sim
