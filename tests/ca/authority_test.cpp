#include "stalecert/ca/authority.hpp"

#include <gtest/gtest.h>

#include <map>

namespace stalecert::ca {
namespace {

using util::Date;

class FakeEnv : public ValidationEnvironment {
 public:
  std::map<std::string, ActorId> owners;
  bool controls_dns(const std::string& domain, ActorId actor) const override {
    const auto it = owners.find(domain);
    return it != owners.end() && it->second == actor;
  }
  bool controls_web(const std::string& domain, ActorId actor) const override {
    return controls_dns(domain, actor);
  }
};

CaProfile le_profile() {
  return {.name = "Let's Encrypt X3",
          .organization = "ISRG (Let's Encrypt)",
          .self_imposed_max_days = 90,
          .default_days = 90,
          .automated = true,
          .crl_url = "http://crl.le.example/x3.crl"};
}

CaProfile commercial_profile() {
  return {.name = "Commercial CA", .organization = "Commercial", .default_days = 365,
          .crl_url = "http://crl.commercial.example/ca.crl"};
}

TEST(CabForumTest, PolicyTimeline) {
  EXPECT_EQ(cab_forum_max_lifetime(Date::parse("2015-06-01")), 39 * 31);
  EXPECT_EQ(cab_forum_max_lifetime(Date::parse("2019-06-01")), 825);
  EXPECT_EQ(cab_forum_max_lifetime(Date::parse("2020-08-31")), 825);
  EXPECT_EQ(cab_forum_max_lifetime(Date::parse("2020-09-01")), 398);
  EXPECT_EQ(cab_forum_max_lifetime(Date::parse("2023-01-01")), 398);
}

TEST(AuthorityTest, SelfImposedCapDominates) {
  CertificateAuthority le(le_profile(), 1);
  EXPECT_EQ(le.max_lifetime_at(Date::parse("2019-01-01")), 90);
  CertificateAuthority commercial(commercial_profile(), 2);
  EXPECT_EQ(commercial.max_lifetime_at(Date::parse("2019-01-01")), 825);
  EXPECT_EQ(commercial.max_lifetime_at(Date::parse("2022-01-01")), 398);
}

TEST(AuthorityTest, IssueUncheckedBuildsCompleteLeaf) {
  CertificateAuthority ca(commercial_profile(), 3);
  IssuanceRequest request;
  request.domains = {"foo.com", "www.foo.com"};
  request.subscriber_key = crypto::KeyPair::derive("sub", crypto::KeyAlgorithm::kEcdsaP256);
  request.date = Date::parse("2022-03-01");
  const auto cert = ca.issue_unchecked(request);

  EXPECT_EQ(cert.issuer().common_name, "Commercial CA");
  EXPECT_EQ(cert.subject().common_name, "foo.com");
  EXPECT_EQ(cert.lifetime_days(), 365);
  EXPECT_EQ(cert.dns_names().size(), 2u);
  EXPECT_EQ(cert.extensions().authority_key_id, ca.issuing_key().key_id());
  EXPECT_FALSE(cert.extensions().crl_distribution_points.empty());
  EXPECT_TRUE(cert.extensions().has_eku(x509::ExtendedKeyUsage::kServerAuth));
  ASSERT_TRUE(cert.issuer_serial().has_value());
  EXPECT_EQ(ca.issued_count(), 1u);
}

TEST(AuthorityTest, LifetimeClampedByPolicyEra) {
  CertificateAuthority ca(commercial_profile(), 3);
  IssuanceRequest request;
  request.domains = {"foo.com"};
  request.subscriber_key = crypto::KeyPair::derive("s", crypto::KeyAlgorithm::kEcdsaP256);
  request.requested_days = 3000;

  request.date = Date::parse("2019-01-01");
  EXPECT_EQ(ca.issue_unchecked(request).lifetime_days(), 825);
  request.date = Date::parse("2021-01-01");
  EXPECT_EQ(ca.issue_unchecked(request).lifetime_days(), 398);
}

TEST(AuthorityTest, SerialsAreUnique) {
  CertificateAuthority ca(commercial_profile(), 3);
  IssuanceRequest request;
  request.domains = {"foo.com"};
  request.subscriber_key = crypto::KeyPair::derive("s", crypto::KeyAlgorithm::kEcdsaP256);
  request.date = Date::parse("2022-01-01");
  const auto a = ca.issue_unchecked(request);
  const auto b = ca.issue_unchecked(request);
  EXPECT_NE(a.serial(), b.serial());
}

TEST(AuthorityTest, ValidationGatesIssuance) {
  FakeEnv env;
  env.owners["foo.com"] = 42;
  CertificateAuthority ca(le_profile(), 4);
  ca.attach_validation(&env);

  IssuanceRequest request;
  request.domains = {"foo.com"};
  request.subscriber_key = crypto::KeyPair::derive("s", crypto::KeyAlgorithm::kEcdsaP256);
  request.date = Date::parse("2022-01-01");

  request.account = 42;
  EXPECT_TRUE(ca.issue(request).ok());
  request.account = 7;  // attacker without control
  const auto denied = ca.issue(request);
  EXPECT_FALSE(denied.ok());
  ASSERT_TRUE(denied.error.has_value());
  EXPECT_EQ(denied.error->kind, IssuanceError::Kind::kValidationFailed);
}

TEST(AuthorityTest, WildcardForcesDnsChallengeOnBaseDomain) {
  FakeEnv env;
  env.owners["foo.com"] = 42;
  CertificateAuthority ca(le_profile(), 4);
  ca.attach_validation(&env);

  IssuanceRequest request;
  request.domains = {"*.foo.com"};
  request.subscriber_key = crypto::KeyPair::derive("s", crypto::KeyAlgorithm::kEcdsaP256);
  request.date = Date::parse("2022-01-01");
  request.account = 42;
  EXPECT_TRUE(ca.issue(request).ok());
}

TEST(AuthorityTest, EmptyDomainsRejected) {
  CertificateAuthority ca(commercial_profile(), 3);
  IssuanceRequest request;
  request.date = Date::parse("2022-01-01");
  const auto outcome = ca.issue(request);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error->kind, IssuanceError::Kind::kNoDomains);
  EXPECT_THROW(ca.issue_unchecked(request), stalecert::LogicError);
}

TEST(AuthorityTest, CtSubmissionEmbedsScts) {
  ct::LogSet logs;
  logs.add_log(ct::CtLog{11, "log", "Op", {.chrome = true, .apple = true}});
  CertificateAuthority ca(commercial_profile(), 3);
  ca.attach_ct(&logs);

  IssuanceRequest request;
  request.domains = {"ct.foo.com"};
  request.subscriber_key = crypto::KeyPair::derive("s", crypto::KeyAlgorithm::kEcdsaP256);
  request.date = Date::parse("2022-01-01");
  const auto cert = ca.issue_unchecked(request);

  EXPECT_EQ(cert.extensions().sct_log_ids, (std::vector<std::uint64_t>{11}));
  EXPECT_EQ(logs.total_entries(), 2u);  // precert + final
  const auto corpus = logs.collect();
  ASSERT_EQ(corpus.size(), 1u);        // deduplicated
  EXPECT_FALSE(corpus[0].is_precertificate());
}

TEST(AuthorityTest, RevocationAndCrl) {
  CertificateAuthority ca(commercial_profile(), 3);
  IssuanceRequest request;
  request.domains = {"r.foo.com"};
  request.subscriber_key = crypto::KeyPair::derive("s", crypto::KeyAlgorithm::kEcdsaP256);
  request.date = Date::parse("2022-01-01");
  const auto cert = ca.issue_unchecked(request);

  EXPECT_FALSE(ca.is_revoked(cert));
  ca.revoke(cert, Date::parse("2022-02-01"), revocation::ReasonCode::kKeyCompromise);
  EXPECT_TRUE(ca.is_revoked(cert));
  ca.revoke(cert, Date::parse("2022-03-01"), revocation::ReasonCode::kSuperseded);
  EXPECT_EQ(ca.revoked_count(), 1u);  // idempotent

  // CRL before the revocation date is empty; after, it contains the entry.
  EXPECT_EQ(ca.crl_at(Date::parse("2022-01-15")).size(), 0u);
  const auto crl = ca.crl_at(Date::parse("2022-02-15"));
  ASSERT_EQ(crl.size(), 1u);
  const auto* entry = crl.find(cert.serial());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->reason, revocation::ReasonCode::kKeyCompromise);
  EXPECT_EQ(crl.authority_key_id(), ca.issuing_key().key_id());
}

}  // namespace
}  // namespace stalecert::ca
