#include "stalecert/ca/dv.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace stalecert::ca {
namespace {

using util::Date;

/// Fake environment: explicit (domain -> controlling actor) maps.
class FakeEnv : public ValidationEnvironment {
 public:
  std::map<std::string, ActorId> dns;
  std::map<std::string, ActorId> web;

  bool controls_dns(const std::string& domain, ActorId actor) const override {
    const auto it = dns.find(domain);
    return it != dns.end() && it->second == actor;
  }
  bool controls_web(const std::string& domain, ActorId actor) const override {
    const auto it = web.find(domain);
    return it != web.end() && it->second == actor;
  }
};

TEST(DvValidatorTest, ChallengeTypeSelectsControlPredicate) {
  FakeEnv env;
  env.dns["foo.com"] = 1;
  env.web["foo.com"] = 2;
  // Reuse disabled so each call exercises its control predicate afresh.
  DvValidator validator(99, {.allow_reuse = false});

  EXPECT_TRUE(validator
                  .validate(env, "foo.com", 1, ChallengeType::kDns01,
                            Date::parse("2022-01-01"))
                  .ok);
  EXPECT_FALSE(validator
                   .validate(env, "foo.com", 1, ChallengeType::kHttp01,
                             Date::parse("2022-01-01"))
                   .ok);
  EXPECT_TRUE(validator
                  .validate(env, "foo.com", 2, ChallengeType::kHttp01,
                            Date::parse("2022-01-01"))
                  .ok);
  EXPECT_TRUE(validator
                  .validate(env, "foo.com", 2, ChallengeType::kTlsAlpn01,
                            Date::parse("2022-01-01"))
                  .ok);
  EXPECT_TRUE(validator
                  .validate(env, "foo.com", 1, ChallengeType::kEmail,
                            Date::parse("2022-01-01"))
                  .ok);
}

TEST(DvValidatorTest, ReuseWithinWindow) {
  FakeEnv env;
  env.web["foo.com"] = 1;
  DvValidator validator(99);

  const auto first = validator.validate(env, "foo.com", 1, ChallengeType::kHttp01,
                                        Date::parse("2022-01-01"));
  EXPECT_TRUE(first.ok);
  EXPECT_FALSE(first.reused);

  // Control is LOST — but the cached validation still passes (the paper's
  // "domain validation reuse" staleness-at-issuance hazard).
  env.web.clear();
  const auto second = validator.validate(env, "foo.com", 1, ChallengeType::kHttp01,
                                         Date::parse("2022-06-01"));
  EXPECT_TRUE(second.ok);
  EXPECT_TRUE(second.reused);
  EXPECT_EQ(validator.fresh_validations(), 1u);
  EXPECT_EQ(validator.reused_validations(), 1u);
}

TEST(DvValidatorTest, ReuseExpiresAfterWindow) {
  FakeEnv env;
  env.web["foo.com"] = 1;
  DvValidator validator(99);
  validator.validate(env, "foo.com", 1, ChallengeType::kHttp01,
                     Date::parse("2020-01-01"));
  env.web.clear();
  const auto late = validator.validate(env, "foo.com", 1, ChallengeType::kHttp01,
                                       Date::parse("2020-01-01") + 399);
  EXPECT_FALSE(late.ok);
}

TEST(DvValidatorTest, ReuseIsPerAccount) {
  FakeEnv env;
  env.web["foo.com"] = 1;
  DvValidator validator(99);
  validator.validate(env, "foo.com", 1, ChallengeType::kHttp01,
                     Date::parse("2022-01-01"));
  // A different account cannot ride the cache.
  const auto other = validator.validate(env, "foo.com", 2, ChallengeType::kHttp01,
                                        Date::parse("2022-01-02"));
  EXPECT_FALSE(other.ok);
}

TEST(DvValidatorTest, ReuseCanBeDisabled) {
  FakeEnv env;
  env.web["foo.com"] = 1;
  DvValidator validator(99, {.allow_reuse = false});
  validator.validate(env, "foo.com", 1, ChallengeType::kHttp01,
                     Date::parse("2022-01-01"));
  env.web.clear();
  EXPECT_FALSE(validator
                   .validate(env, "foo.com", 1, ChallengeType::kHttp01,
                             Date::parse("2022-01-02"))
                   .ok);
}

TEST(DvValidatorTest, NoncesAreUnique) {
  FakeEnv env;
  env.web["foo.com"] = 1;
  DvValidator validator(99, {.allow_reuse = false});
  std::set<std::uint64_t> nonces;
  for (int i = 0; i < 50; ++i) {
    const auto result = validator.validate(env, "foo.com", 1,
                                           ChallengeType::kHttp01,
                                           Date::parse("2022-01-01") + i);
    nonces.insert(result.nonce);
  }
  EXPECT_EQ(nonces.size(), 50u);
}

TEST(ChallengeTypeTest, Names) {
  EXPECT_EQ(to_string(ChallengeType::kHttp01), "http-01");
  EXPECT_EQ(to_string(ChallengeType::kDns01), "dns-01");
  EXPECT_EQ(to_string(ChallengeType::kTlsAlpn01), "tls-alpn-01");
  EXPECT_EQ(to_string(ChallengeType::kEmail), "email");
}

}  // namespace
}  // namespace stalecert::ca
