#include "stalecert/ca/star.hpp"

#include <gtest/gtest.h>

#include "stalecert/util/error.hpp"

namespace stalecert::ca {
namespace {

using util::Date;

class StarFixture : public ::testing::Test {
 protected:
  StarFixture()
      : ca_({.name = "STAR CA", .organization = "STAR", .default_days = 90,
             .automated = true},
            5) {}

  StarIssuer make_issuer(StarIssuer::Options options = {}) {
    return StarIssuer(&ca_, {"star.example.com"},
                      crypto::KeyPair::derive("star", crypto::KeyAlgorithm::kEcdsaP256),
                      1, Date::parse("2022-01-01"), options);
  }

  CertificateAuthority ca_;
};

TEST_F(StarFixture, RollingIssuanceOnCadence) {
  auto issuer = make_issuer({.cert_lifetime_days = 7, .renewal_interval_days = 3});
  const auto first_batch = issuer.advance_to(Date::parse("2022-01-10"));
  // Issues at day 0, 3, 6, 9 -> 4 certificates.
  EXPECT_EQ(first_batch.size(), 4u);
  for (const auto& cert : first_batch) {
    EXPECT_EQ(cert.lifetime_days(), 7);
  }
  // Consecutive certificates overlap: rollover never leaves a gap.
  for (std::size_t i = 1; i < first_batch.size(); ++i) {
    EXPECT_LT(first_batch[i].not_before(), first_batch[i - 1].not_after());
  }
  // Advancing again issues only the increment.
  EXPECT_EQ(issuer.advance_to(Date::parse("2022-01-13")).size(), 1u);
}

TEST_F(StarFixture, CurrentPicksTheFreshest) {
  auto issuer = make_issuer({.cert_lifetime_days = 7, .renewal_interval_days = 3});
  issuer.advance_to(Date::parse("2022-01-10"));
  const auto current = issuer.current(Date::parse("2022-01-10"));
  ASSERT_TRUE(current.has_value());
  EXPECT_EQ(current->not_before(), Date::parse("2022-01-10"));  // day-9 cert
  EXPECT_TRUE(current->valid_at(Date::parse("2022-01-10")));
  // Before the order started: nothing.
  EXPECT_FALSE(issuer.current(Date::parse("2021-12-01")).has_value());
}

TEST_F(StarFixture, TerminationBoundsResidualExposure) {
  auto issuer = make_issuer({.cert_lifetime_days = 7, .renewal_interval_days = 3});
  issuer.advance_to(Date::parse("2022-02-01"));
  const std::size_t issued_before = issuer.issued().size();

  // Subscriber departs (e.g. leaves the managed host) and terminates.
  issuer.terminate(Date::parse("2022-02-01"));
  EXPECT_TRUE(issuer.advance_to(Date::parse("2022-06-01")).empty());
  EXPECT_EQ(issuer.issued().size(), issued_before);

  // Residual exposure: at most one cert lifetime (7 days), vs 398 for a
  // classic certificate. That's the STAR argument.
  const auto last = issuer.current(Date::parse("2022-02-01"));
  ASSERT_TRUE(last.has_value());
  EXPECT_LE(last->not_after() - Date::parse("2022-02-01"), 7);
  EXPECT_FALSE(issuer.current(Date::parse("2022-02-20")).has_value());
}

TEST_F(StarFixture, OrderExpiryStopsUnattendedIssuance) {
  auto issuer = make_issuer({.cert_lifetime_days = 7,
                             .renewal_interval_days = 7,
                             .order_lifetime_days = 30});
  const auto issued = issuer.advance_to(Date::parse("2023-01-01"));
  // Issues at days 0, 7, 14, 21, 28 only — the order expires at day 30,
  // bounding how long a forgotten automation can keep extending the
  // name-to-key binding (the §7.1 hazard, mitigated).
  EXPECT_EQ(issued.size(), 5u);
  EXPECT_LT(issued.back().not_after(), Date::parse("2022-03-01"));
}

TEST_F(StarFixture, ParameterValidation) {
  EXPECT_THROW(make_issuer({.cert_lifetime_days = 7, .renewal_interval_days = 0}),
               stalecert::LogicError);
  EXPECT_THROW(make_issuer({.cert_lifetime_days = 7, .renewal_interval_days = 8}),
               stalecert::LogicError);
  EXPECT_THROW(StarIssuer(nullptr, {"x.com"},
                          crypto::KeyPair::derive("k", crypto::KeyAlgorithm::kEcdsaP256),
                          1, Date::parse("2022-01-01"), {}),
               stalecert::LogicError);
  EXPECT_THROW(StarIssuer(&ca_, {},
                          crypto::KeyPair::derive("k", crypto::KeyAlgorithm::kEcdsaP256),
                          1, Date::parse("2022-01-01"), {}),
               stalecert::LogicError);
}

TEST_F(StarFixture, StaleExposureComparedToClassicCert) {
  // A registrant change at day 40: classic 365-day cert stays stale for
  // 325 days; the STAR series' last certificate dies within a week.
  auto issuer = make_issuer({.cert_lifetime_days = 7, .renewal_interval_days = 3});
  issuer.advance_to(Date::parse("2022-02-09"));  // day 39
  issuer.terminate(Date::parse("2022-02-10"));   // owner stops at change

  IssuanceRequest classic;
  classic.domains = {"star.example.com"};
  classic.subscriber_key =
      crypto::KeyPair::derive("classic", crypto::KeyAlgorithm::kEcdsaP256);
  classic.date = Date::parse("2022-01-01");
  classic.requested_days = 365;
  const auto classic_cert = ca_.issue_unchecked(classic);

  const Date change = Date::parse("2022-02-10");
  const std::int64_t classic_staleness = classic_cert.not_after() - change;
  std::int64_t star_staleness = 0;
  for (const auto& cert : issuer.issued()) {
    if (cert.valid_at(change)) {
      star_staleness = std::max(star_staleness, cert.not_after() - change);
    }
  }
  EXPECT_GT(classic_staleness, 300);
  EXPECT_LE(star_staleness, 7);
}

}  // namespace
}  // namespace stalecert::ca
