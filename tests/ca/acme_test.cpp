#include "stalecert/ca/acme.hpp"

#include <gtest/gtest.h>

#include <map>

#include "stalecert/util/error.hpp"

namespace stalecert::ca {
namespace {

using util::Date;

class FakeEnv : public ValidationEnvironment {
 public:
  std::map<std::string, ActorId> dns;
  std::map<std::string, ActorId> web;
  bool controls_dns(const std::string& domain, ActorId actor) const override {
    const auto it = dns.find(domain);
    return it != dns.end() && it->second == actor;
  }
  bool controls_web(const std::string& domain, ActorId actor) const override {
    const auto it = web.find(domain);
    return it != web.end() && it->second == actor;
  }
};

class AcmeFixture : public ::testing::Test {
 protected:
  AcmeFixture()
      : ca_({.name = "ACME CA", .organization = "ACME", .self_imposed_max_days = 90,
             .default_days = 90, .automated = true},
            3),
        server_(&ca_, 11) {
    env_.dns["foo.com"] = 42;
    env_.web["foo.com"] = 42;
    ca_.attach_validation(&env_);
  }

  FakeEnv env_;
  CertificateAuthority ca_;
  AcmeServer server_;
};

TEST_F(AcmeFixture, FullHappyFlow) {
  const AccountId account =
      server_.new_account(42, "mailto:admin@foo.com", Date::parse("2022-01-01"));
  const OrderId order = server_.new_order(account, {"foo.com", "www.foo.com"},
                                          Date::parse("2022-01-02"));
  EXPECT_EQ(server_.order(order).status, OrderStatus::kPending);
  ASSERT_EQ(server_.order(order).authorizations.size(), 2u);

  env_.web["www.foo.com"] = 42;
  EXPECT_TRUE(server_.respond_challenge(order, "foo.com", ChallengeType::kHttp01,
                                        42, Date::parse("2022-01-02")));
  EXPECT_EQ(server_.order(order).status, OrderStatus::kPending);
  EXPECT_TRUE(server_.respond_challenge(order, "www.foo.com",
                                        ChallengeType::kHttp01, 42,
                                        Date::parse("2022-01-02")));
  EXPECT_EQ(server_.order(order).status, OrderStatus::kReady);

  const auto cert = server_.finalize(
      order, crypto::KeyPair::derive("csr", crypto::KeyAlgorithm::kEcdsaP256),
      Date::parse("2022-01-03"));
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(server_.order(order).status, OrderStatus::kValid);
  EXPECT_TRUE(cert->matches_domain("foo.com"));
  EXPECT_TRUE(cert->matches_domain("www.foo.com"));
  EXPECT_EQ(cert->lifetime_days(), 90);  // self-imposed ACME CA limit
  EXPECT_EQ(server_.issued_count(), 1u);
}

TEST_F(AcmeFixture, ChallengeFailsWithoutControl) {
  const AccountId account = server_.new_account(7, "x", Date::parse("2022-01-01"));
  const OrderId order =
      server_.new_order(account, {"foo.com"}, Date::parse("2022-01-02"));
  // Actor 7 does not control foo.com.
  EXPECT_FALSE(server_.respond_challenge(order, "foo.com", ChallengeType::kHttp01,
                                         7, Date::parse("2022-01-02")));
  EXPECT_EQ(server_.order(order).status, OrderStatus::kInvalid);
  EXPECT_FALSE(server_
                   .finalize(order, crypto::KeyPair::derive(
                                        "csr", crypto::KeyAlgorithm::kEcdsaP256),
                             Date::parse("2022-01-03"))
                   .has_value());
}

TEST_F(AcmeFixture, ActorMustMatchAccount) {
  const AccountId account = server_.new_account(42, "x", Date::parse("2022-01-01"));
  const OrderId order =
      server_.new_order(account, {"foo.com"}, Date::parse("2022-01-02"));
  // A different actor cannot answer the account's challenges even if it
  // controls the domain.
  env_.web["foo.com"] = 99;
  EXPECT_FALSE(server_.respond_challenge(order, "foo.com", ChallengeType::kHttp01,
                                         99, Date::parse("2022-01-02")));
}

TEST_F(AcmeFixture, WildcardRequiresDns01) {
  const AccountId account = server_.new_account(42, "x", Date::parse("2022-01-01"));
  const OrderId order =
      server_.new_order(account, {"*.foo.com"}, Date::parse("2022-01-02"));
  const auto& authz = server_.order(order).authorizations;
  ASSERT_EQ(authz.size(), 1u);
  EXPECT_TRUE(authz[0].wildcard);
  ASSERT_EQ(authz[0].challenges.size(), 1u);
  EXPECT_EQ(authz[0].challenges[0].type, ChallengeType::kDns01);

  EXPECT_FALSE(server_.respond_challenge(order, "foo.com", ChallengeType::kHttp01,
                                         42, Date::parse("2022-01-02")));
  EXPECT_TRUE(server_.respond_challenge(order, "foo.com", ChallengeType::kDns01,
                                        42, Date::parse("2022-01-02")));
  EXPECT_EQ(server_.order(order).status, OrderStatus::kReady);
}

TEST_F(AcmeFixture, WildcardAndBaseShareOneAuthorization) {
  const AccountId account = server_.new_account(42, "x", Date::parse("2022-01-01"));
  const OrderId order = server_.new_order(account, {"foo.com", "*.foo.com"},
                                          Date::parse("2022-01-02"));
  const auto& authz = server_.order(order).authorizations;
  ASSERT_EQ(authz.size(), 1u);
  EXPECT_TRUE(authz[0].wildcard);
  // Wildcard restriction applies to the merged authorization.
  for (const auto& challenge : authz[0].challenges) {
    EXPECT_EQ(challenge.type, ChallengeType::kDns01);
  }
}

TEST_F(AcmeFixture, OrderExpiry) {
  const AccountId account = server_.new_account(42, "x", Date::parse("2022-01-01"));
  const OrderId order =
      server_.new_order(account, {"foo.com"}, Date::parse("2022-01-02"));
  // 8 days later (order lifetime is 7): everything fails.
  EXPECT_FALSE(server_.respond_challenge(order, "foo.com", ChallengeType::kHttp01,
                                         42, Date::parse("2022-01-10")));
  EXPECT_EQ(server_.order(order).status, OrderStatus::kInvalid);
}

TEST_F(AcmeFixture, FinalizeBeforeReadyInvalidatesOrder) {
  const AccountId account = server_.new_account(42, "x", Date::parse("2022-01-01"));
  const OrderId order =
      server_.new_order(account, {"foo.com"}, Date::parse("2022-01-02"));
  EXPECT_FALSE(server_
                   .finalize(order, crypto::KeyPair::derive(
                                        "csr", crypto::KeyAlgorithm::kEcdsaP256),
                             Date::parse("2022-01-02"))
                   .has_value());
  EXPECT_EQ(server_.order(order).status, OrderStatus::kInvalid);
}

TEST_F(AcmeFixture, ApiErrors) {
  EXPECT_THROW(server_.new_order(999, {"foo.com"}, Date::parse("2022-01-01")),
               stalecert::LogicError);
  const AccountId account = server_.new_account(42, "x", Date::parse("2022-01-01"));
  EXPECT_THROW(server_.new_order(account, {}, Date::parse("2022-01-01")),
               stalecert::LogicError);
  EXPECT_THROW((void)server_.order(12345), stalecert::LogicError);
  EXPECT_TRUE(server_.account_exists(account));
  EXPECT_FALSE(server_.account_exists(999));
}

TEST_F(AcmeFixture, IssuedCertIsCtLogged) {
  ct::LogSet logs;
  logs.add_log(ct::CtLog{5, "log", "Op", {.chrome = true, .apple = true}});
  ca_.attach_ct(&logs);

  const AccountId account = server_.new_account(42, "x", Date::parse("2022-01-01"));
  const OrderId order =
      server_.new_order(account, {"foo.com"}, Date::parse("2022-01-02"));
  server_.respond_challenge(order, "foo.com", ChallengeType::kDns01, 42,
                            Date::parse("2022-01-02"));
  const auto cert = server_.finalize(
      order, crypto::KeyPair::derive("csr", crypto::KeyAlgorithm::kEcdsaP256),
      Date::parse("2022-01-03"));
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->extensions().sct_log_ids, (std::vector<std::uint64_t>{5}));
  EXPECT_EQ(logs.collect().size(), 1u);
}

TEST(AcmeStatusStrings, Names) {
  EXPECT_EQ(to_string(OrderStatus::kPending), "pending");
  EXPECT_EQ(to_string(OrderStatus::kReady), "ready");
  EXPECT_EQ(to_string(OrderStatus::kValid), "valid");
  EXPECT_EQ(to_string(OrderStatus::kInvalid), "invalid");
  EXPECT_EQ(to_string(AuthzStatus::kPending), "pending");
  EXPECT_EQ(to_string(AuthzStatus::kValid), "valid");
  EXPECT_EQ(to_string(AuthzStatus::kInvalid), "invalid");
}

}  // namespace
}  // namespace stalecert::ca
