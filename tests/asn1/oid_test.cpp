#include "stalecert/asn1/oid.hpp"

#include <gtest/gtest.h>

#include "stalecert/asn1/der.hpp"
#include "stalecert/util/error.hpp"

namespace stalecert::asn1 {
namespace {

TEST(OidTest, ParseAndToString) {
  const Oid oid = Oid::parse("1.2.840.113549.1.1.11");
  EXPECT_EQ(oid.to_string(), "1.2.840.113549.1.1.11");
  EXPECT_EQ(oid.arcs().size(), 7u);
}

TEST(OidTest, ParseRejectsBadInput) {
  EXPECT_THROW(Oid::parse(""), stalecert::ParseError);
  EXPECT_THROW(Oid::parse("1"), stalecert::ParseError);
  EXPECT_THROW(Oid::parse("1.a.3"), stalecert::ParseError);
  EXPECT_THROW(Oid::parse("1..3"), stalecert::ParseError);
}

TEST(OidTest, Equality) {
  EXPECT_EQ(Oid::parse("2.5.29.17"), oids::subject_alt_name());
  EXPECT_NE(oids::key_usage(), oids::ext_key_usage());
}

class OidRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(OidRoundTrip, DerEncodeDecodeIdentity) {
  const Oid original = Oid::parse(GetParam());
  Encoder enc;
  enc.write_oid(original);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.read_oid(), original);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OidRoundTrip,
    ::testing::Values("0.9.2342", "1.2.840.113549.1.1.11", "2.5.29.17",
                      "2.5.4.3", "1.3.6.1.4.1.11129.2.4.3",
                      "2.23.140.1.2.1", "2.999.4294967295",
                      "1.3.6.1.5.5.7.48.1"));

TEST(OidTest, KnownDerEncodings) {
  // 1.2.840.113549 encodes as 2a 86 48 86 f7 0d.
  Encoder enc;
  enc.write_oid(Oid::parse("1.2.840.113549"));
  const Bytes& b = enc.bytes();
  const Bytes expected = {0x06, 0x06, 0x2a, 0x86, 0x48, 0x86, 0xf7, 0x0d};
  EXPECT_EQ(b, expected);
}

TEST(OidTest, FirstArcTwoDecoding) {
  // 2.999 -> first content byte >= 80: 2*40 + 999 = 1079.
  Encoder enc;
  enc.write_oid(Oid::parse("2.999"));
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.read_oid().to_string(), "2.999");
}

TEST(OidTest, WellKnownAccessors) {
  EXPECT_EQ(oids::common_name().to_string(), "2.5.4.3");
  EXPECT_EQ(oids::basic_constraints().to_string(), "2.5.29.19");
  EXPECT_EQ(oids::ct_precert_poison().to_string(), "1.3.6.1.4.1.11129.2.4.3");
  EXPECT_EQ(oids::authority_info_access().to_string(), "1.3.6.1.5.5.7.1.1");
  EXPECT_EQ(oids::crl_reason().to_string(), "2.5.29.21");
}

TEST(OidTest, TruncatedArcRejected) {
  const Bytes bad = {0x2a, 0x86};  // continuation bit set on final byte
  EXPECT_THROW(decode_oid_content(bad), stalecert::ParseError);
}

}  // namespace
}  // namespace stalecert::asn1
