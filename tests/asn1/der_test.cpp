#include "stalecert/asn1/der.hpp"

#include <gtest/gtest.h>

#include "stalecert/util/error.hpp"

namespace stalecert::asn1 {
namespace {

TEST(DerEncoderTest, Boolean) {
  Encoder enc;
  enc.write_boolean(true);
  enc.write_boolean(false);
  Decoder dec(enc.bytes());
  EXPECT_TRUE(dec.read_boolean());
  EXPECT_FALSE(dec.read_boolean());
  EXPECT_TRUE(dec.at_end());
}

TEST(DerEncoderTest, IntegerMinimalEncoding) {
  Encoder enc;
  enc.write_integer(0);
  const Bytes& bytes = enc.bytes();
  ASSERT_EQ(bytes.size(), 3u);  // 02 01 00
  EXPECT_EQ(bytes[0], 0x02);
  EXPECT_EQ(bytes[1], 0x01);
  EXPECT_EQ(bytes[2], 0x00);
}

class IntegerRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(IntegerRoundTrip, EncodeDecodeIdentity) {
  Encoder enc;
  enc.write_integer(GetParam());
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.read_integer(), GetParam());
  EXPECT_TRUE(dec.at_end());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IntegerRoundTrip,
    ::testing::Values(0, 1, -1, 127, 128, 255, 256, -128, -129, 0x7fff, -0x8000,
                      1'000'000'000LL, -1'000'000'000LL,
                      0x7fffffffffffffffLL, INT64_MIN));

TEST(DerEncoderTest, IntegerBytesStripsLeadingZeros) {
  Encoder enc;
  const std::uint8_t magnitude[] = {0x00, 0x00, 0x8f, 0x01};
  enc.write_integer_bytes(magnitude);
  Decoder dec(enc.bytes());
  const Bytes out = dec.read_integer_bytes();
  EXPECT_EQ(out, (Bytes{0x8f, 0x01}));
}

TEST(DerEncoderTest, IntegerBytesEdgeCases) {
  // Empty magnitude encodes as canonical zero.
  {
    Encoder enc;
    enc.write_integer_bytes({});
    EXPECT_EQ(enc.bytes(), (Bytes{0x02, 0x01, 0x00}));
    Decoder dec(enc.bytes());
    EXPECT_EQ(dec.read_integer_bytes(), (Bytes{0x00}));
  }
  // All-zero magnitude collapses to canonical zero.
  {
    Encoder enc;
    const std::uint8_t zeros[] = {0x00, 0x00, 0x00};
    enc.write_integer_bytes(zeros);
    EXPECT_EQ(enc.bytes(), (Bytes{0x02, 0x01, 0x00}));
  }
  // High-bit magnitude gets the sign pad.
  {
    Encoder enc;
    const std::uint8_t high[] = {0xff};
    enc.write_integer_bytes(high);
    EXPECT_EQ(enc.bytes(), (Bytes{0x02, 0x02, 0x00, 0xff}));
    Decoder dec(enc.bytes());
    EXPECT_EQ(dec.read_integer_bytes(), (Bytes{0xff}));
  }
}

TEST(DerEncoderTest, OctetAndBitStrings) {
  Encoder enc;
  const std::uint8_t data[] = {1, 2, 3, 4, 5};
  enc.write_octet_string(data);
  enc.write_bit_string(data, 3);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.read_octet_string(), Bytes(data, data + 5));
  unsigned unused = 0;
  EXPECT_EQ(dec.read_bit_string(&unused), Bytes(data, data + 5));
  EXPECT_EQ(unused, 3u);
}

TEST(DerEncoderTest, NullRoundTrip) {
  Encoder enc;
  enc.write_null();
  Decoder dec(enc.bytes());
  EXPECT_NO_THROW(dec.read_null());
}

TEST(DerEncoderTest, Strings) {
  Encoder enc;
  enc.write_utf8_string("héllo");
  enc.write_printable_string("Example CA");
  enc.write_ia5_string("foo.example.com");
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.read_string(), "héllo");
  EXPECT_EQ(dec.read_string(), "Example CA");
  EXPECT_EQ(dec.read_string(), "foo.example.com");
}

TEST(DerEncoderTest, TimeUtcAndGeneralized) {
  Encoder enc;
  enc.write_time(util::Date::parse("2022-03-15"));  // UTCTime era
  enc.write_time(util::Date::from_ymd(2055, 6, 1)); // GeneralizedTime era
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.read_time(), util::Date::parse("2022-03-15"));
  EXPECT_EQ(dec.read_time(), util::Date::from_ymd(2055, 6, 1));
}

TEST(DerEncoderTest, NestedSequences) {
  Encoder enc;
  enc.begin_sequence();
  enc.write_integer(7);
  enc.begin_sequence();
  enc.write_utf8_string("inner");
  enc.end_sequence();
  enc.end_sequence();

  Decoder dec(enc.bytes());
  Decoder outer = dec.enter_sequence();
  EXPECT_EQ(outer.read_integer(), 7);
  Decoder inner = outer.enter_sequence();
  EXPECT_EQ(inner.read_string(), "inner");
  EXPECT_TRUE(inner.at_end());
  EXPECT_TRUE(outer.at_end());
}

TEST(DerEncoderTest, LongFormLength) {
  // Content > 127 bytes forces multi-byte length that must be backfilled.
  Encoder enc;
  enc.begin_sequence();
  for (int i = 0; i < 64; ++i) enc.write_integer(i * 1000);
  enc.end_sequence();
  Decoder dec(enc.bytes());
  Decoder seq = dec.enter_sequence();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(seq.read_integer(), i * 1000);
  EXPECT_TRUE(seq.at_end());
}

TEST(DerEncoderTest, VeryLongContent) {
  Encoder enc;
  Bytes big(70000, 0xab);
  enc.write_octet_string(big);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.read_octet_string(), big);
}

TEST(DerEncoderTest, ContextTags) {
  Encoder enc;
  enc.begin_context(3);
  enc.write_integer(5);
  enc.end_context();
  enc.write_context_string(2, "dns.example");

  Decoder dec(enc.bytes());
  const Tlv ctx = dec.read_any();
  EXPECT_TRUE(ctx.is_context(3));
  EXPECT_TRUE(ctx.is_constructed());
  Decoder body(ctx.content);
  EXPECT_EQ(body.read_integer(), 5);
  const Tlv str = dec.read_any();
  EXPECT_TRUE(str.is_context(2));
  EXPECT_FALSE(str.is_constructed());
  EXPECT_EQ(std::string(str.content.begin(), str.content.end()), "dns.example");
}

TEST(DerEncoderTest, UnterminatedSequenceThrows) {
  Encoder enc;
  enc.begin_sequence();
  EXPECT_THROW((void)enc.bytes(), stalecert::LogicError);
  enc.end_sequence();
  EXPECT_NO_THROW((void)enc.bytes());
  EXPECT_THROW(enc.end_sequence(), stalecert::LogicError);  // unmatched extra
}

TEST(DerDecoderTest, TruncatedInputThrows) {
  const Bytes truncated = {0x30, 0x05, 0x02, 0x01};
  Decoder dec(truncated);
  EXPECT_THROW(dec.read_any(), stalecert::ParseError);
}

TEST(DerDecoderTest, NonMinimalLengthRejected) {
  // 0x81 0x05 would be long form for a length that fits short form.
  const Bytes bad = {0x04, 0x81, 0x05, 1, 2, 3, 4, 5};
  Decoder dec(bad);
  EXPECT_THROW(dec.read_octet_string(), stalecert::ParseError);
}

TEST(DerDecoderTest, TagMismatchThrows) {
  Encoder enc;
  enc.write_integer(1);
  Decoder dec(enc.bytes());
  EXPECT_THROW(dec.read_octet_string(), stalecert::ParseError);
}

TEST(DerDecoderTest, NonCanonicalBooleanRejected) {
  const Bytes bad = {0x01, 0x01, 0x42};
  Decoder dec(bad);
  EXPECT_THROW(dec.read_boolean(), stalecert::ParseError);
}

TEST(DerDecoderTest, EmptyInput) {
  Decoder dec(std::span<const std::uint8_t>{});
  EXPECT_TRUE(dec.at_end());
  EXPECT_THROW((void)dec.peek_tag(), stalecert::ParseError);
}

}  // namespace
}  // namespace stalecert::asn1
