// Reproduces Table 3: the dataset inventory. Prints the simulated
// analogues of the paper's four collections — CT, CRL, WHOIS, active DNS —
// with their sizes and measurement windows, next to the paper's.
#include <iostream>

#include "bench_world.hpp"
#include "stalecert/util/strings.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;

int main() {
  bench::print_header(
      "Table 3 — Datasets",
      "CT 2013/03-2023/05 (5B certs) ; CRL 2022/11-2023/05 (31M, 92 CAs) ; "
      "WHOIS 2016/01-2021/07 (4B records, 301M domains) ; aDNS "
      "2022/08-2022/10 (daily scans of all public e2LDs)");

  const auto& bw = bench::bench_world();
  const auto config = bench::bench_config();

  ct::CollectStats ct_stats;
  (void)bw.world->ct_logs().collect({}, &ct_stats);
  const auto crl_total = bw.world->crl_collection().total_coverage();

  // Average records per aDNS snapshot (the retained Cloudflare slice).
  std::uint64_t adns_records = 0;
  for (const auto& snapshot : bw.world->adns().all()) {
    adns_records += snapshot.records.size();
  }
  const double adns_daily =
      bw.world->adns().days() == 0
          ? 0
          : static_cast<double>(adns_records) /
                static_cast<double>(bw.world->adns().days());

  util::TextTable table({"Dataset", "Used for", "Window", "Size (measured)",
                         "Size (paper)"});
  table.add_row({"CT", "revocations, managed TLS, registrant change",
                 config.start.to_string() + " .. " + config.end.to_string(),
                 util::with_commas(bw.corpus.size()) + " certs (dedup of " +
                     util::with_commas(ct_stats.raw_entries) + " entries)",
                 "5B certs (deduplicated)"});
  table.add_row({"CRL", "revocations",
                 config.crl_start.to_string() + " .. " + config.crl_end.to_string(),
                 util::with_commas(crl_total.succeeded) + " CRL downloads, " +
                     util::with_commas(bw.world->crl_collection().store().size()) +
                     " revocations, " +
                     std::to_string(bw.world->cas().size()) + " CAs",
                 "31M total CRLs from 92 CAs"});
  table.add_row({"WHOIS", "registrant change",
                 config.whois_start.to_string() + " .. " +
                     config.whois_end.to_string(),
                 util::with_commas(bw.world->whois().record_count()) +
                     " records (" +
                     util::with_commas(bw.world->whois().domain_count()) +
                     " domains)",
                 "4B records (301M domains)"});
  table.add_row({"aDNS", "managed TLS",
                 config.adns_start.to_string() + " .. " +
                     config.adns_end.to_string(),
                 bench::fmt(adns_daily, 0) + " delegated-domain records/day over " +
                     std::to_string(bw.world->adns().days()) + " daily scans",
                 "300M A/AAAA, 274M NS, 10M CNAME per day"});
  table.print(std::cout);

  std::cout << "\nShape checks:\n";
  std::cout << "  every dataset non-empty and windowed as in the paper: "
            << ((bw.corpus.size() > 0 && crl_total.succeeded > 0 &&
                 bw.world->whois().record_count() > 0 &&
                 bw.world->adns().days() == static_cast<std::size_t>(
                     (config.adns_end - config.adns_start) + 1))
                    ? "PASS"
                    : "FAIL")
            << "\n";
  std::cout << "  CT is the largest collection (as in the paper): "
            << (bw.corpus.size() > bw.world->crl_collection().store().size()
                    ? "PASS"
                    : "FAIL")
            << "\n";
  return 0;
}
