// Ablation: domain-validation reuse (§4.4 "Limitations"). The Baseline
// Requirements let a CA skip re-validation for up to 398 days, so a
// certificate can be stale FROM THE MOMENT OF ISSUANCE: the subscriber
// proved control once, lost the domain, and the CA keeps issuing. The
// paper explicitly does NOT measure this; this ablation quantifies it in
// the simulator by sweeping the reuse window.
#include <iostream>

#include "bench_world.hpp"
#include "stalecert/ca/authority.hpp"
#include "stalecert/util/strings.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;
using util::Date;

namespace {

/// Control flips from the original account to nobody partway through.
class FlippingEnv : public ca::ValidationEnvironment {
 public:
  Date lose_control_at;
  mutable Date now;  // the environment is queried "at" the request date

  bool controls_dns(const std::string&, ca::ActorId actor) const override {
    return actor == 1 && now < lose_control_at;
  }
  bool controls_web(const std::string& domain, ca::ActorId actor) const override {
    return controls_dns(domain, actor);
  }
};

}  // namespace

int main() {
  bench::print_header(
      "Ablation — domain-validation reuse window",
      "the BRs allow validation reuse for 398 days; certificates issued on "
      "cached validations after domain control changed are stale at birth "
      "(a staleness class the paper's measurement does not cover)");

  // Scenario: account 1 validates control on day 0, loses the domain on
  // day 60, and an unattended ACME client keeps requesting certificates
  // every 60 days for two years. Count how many issue on cached
  // validation after control was lost, per reuse-window policy.
  const Date start = Date::parse("2022-01-01");
  const Date lost = start + 60;

  util::TextTable table({"Reuse window", "Issued total", "Issued after control lost",
                         "Stale-at-issuance share"});
  for (const std::int64_t window : {0LL, 90LL, 180LL, 398LL}) {
    FlippingEnv env;
    env.lose_control_at = lost;

    ca::DvValidator::Options options;
    options.allow_reuse = window > 0;
    options.reuse_window_days = window;
    ca::CertificateAuthority authority(
        {.name = "Reuse CA", .organization = "Reuse", .self_imposed_max_days = 90,
         .default_days = 90, .automated = true},
        7);
    // Swap in a validator with the ablated options.
    authority.attach_validation(&env);
    ca::DvValidator validator(7, options);

    std::uint64_t issued = 0;
    std::uint64_t stale_at_birth = 0;
    for (Date d = start; d < start + 730; d += 60) {
      env.now = d;
      const auto result = validator.validate(env, "flip.example.com", 1,
                                             ca::ChallengeType::kHttp01, d);
      if (!result.ok) continue;
      ++issued;
      if (d >= lost) ++stale_at_birth;
    }
    table.add_row({window == 0 ? "disabled" : std::to_string(window) + "d",
                   std::to_string(issued), std::to_string(stale_at_birth),
                   issued ? util::percent(static_cast<double>(stale_at_birth) /
                                              static_cast<double>(issued),
                                          1)
                          : "-"});
  }
  table.print(std::cout);

  std::cout <<
      "\nReading: with the full 398-day window, an unattended client keeps\n"
      "obtaining certificates for ~11 months after losing the domain; with\n"
      "reuse disabled, issuance stops at the first post-loss validation.\n"
      "Shorter reuse windows bound staleness-at-issuance exactly like\n"
      "shorter lifetimes bound post-issuance staleness (§6).\n";
  return 0;
}
