// bench_feed: incremental ingest vs full reload. For 1/7/30-day extension
// windows it measures, over the same small-profile world:
//
//   apply   — feed::DeltaApplier::apply() of one .scwd covering the window
//             (decode excluded; the applier is rebuilt untimed per rep),
//             i.e. the time staled's POST /ingest spends off the serving
//             path before the snapshot swap.
//   reload  — StalenessIndex::from_archive() over the extended .scw, the
//             pre-feed alternative (what SIGHUP costs): load + full
//             pipeline + index build.
//
// and a single-thread closed-loop is_stale() throughput on both resulting
// snapshots, to show the patched index serves as fast as a from-scratch
// one. Medians over --reps runs. --json <path|-> writes the machine
// readable report; BENCH_feed.json in the repo root is a committed run,
// summarized in EXPERIMENTS.md.
//
//   $ ./bench_feed [--reps N] [--seed N] [--json <path|->]
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "stalecert/core/pipeline.hpp"
#include "stalecert/feed/applier.hpp"
#include "stalecert/feed/extend.hpp"
#include "stalecert/query/index.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/store/archive.hpp"
#include "stalecert/store/errors.hpp"

using namespace stalecert;
using Clock = std::chrono::steady_clock;

namespace {

int usage(const std::string& detail) {
  std::cerr << "usage: bench_feed [--reps N] [--seed N] [--json <path|->]\n";
  if (!detail.empty()) std::cerr << detail << '\n';
  return 2;
}

struct Options {
  unsigned reps = 5;
  std::uint64_t seed = 20230512;
  std::string json_path;
};

const std::vector<std::int64_t> kWindows = {1, 7, 30};

std::string temp_path(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  std::string path = (tmp != nullptr ? std::string(tmp) : std::string("/tmp"));
  if (!path.empty() && path.back() != '/') path += '/';
  return path + name;
}

double median_ms(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// One applier over the loaded base world — rebuilt untimed for every
/// apply rep so each rep starts from the same pre-delta state.
feed::DeltaApplier make_applier(const std::string& base_path) {
  store::LoadedWorld world = store::load_world(base_path);
  core::PipelineConfig config;
  config.revocation_cutoff = world.meta.revocation_cutoff;
  config.delegation_patterns = world.meta.delegation_patterns;
  config.managed_san_pattern = world.meta.managed_san_pattern;
  core::PipelineResult result =
      core::run_pipeline(world.ct_logs, world.revocations,
                         world.re_registrations(), world.adns, config);
  auto index = std::make_shared<const query::StalenessIndex>(std::move(result),
                                                             world.meta);
  return feed::DeltaApplier(std::move(world), std::move(index));
}

/// Closed-loop single-thread is_stale() for ~0.2 s; returns queries/sec.
double query_qps(const query::StalenessIndex& index) {
  std::vector<std::string> domains;
  for (const auto& record : index.stale_records()) {
    domains.push_back(record.trigger_domain);
  }
  if (domains.empty()) domains.push_back("miss.invalid");
  std::vector<util::Date> dates;
  for (util::Date d = index.meta().start; d <= index.meta().end; d += 7) {
    dates.push_back(d);
  }
  std::uint64_t ops = 0;
  const auto begin = Clock::now();
  while (Clock::now() - begin < std::chrono::milliseconds(200)) {
    for (int burst = 0; burst < 256; ++burst, ++ops) {
      (void)index.is_stale(domains[ops % domains.size()],
                           dates[ops % dates.size()]);
    }
  }
  const std::chrono::duration<double> wall = Clock::now() - begin;
  return static_cast<double>(ops) / wall.count();
}

struct WindowResult {
  std::int64_t days = 0;
  std::uint64_t delta_bytes = 0;
  std::uint64_t new_certificates = 0;
  std::uint64_t new_stale_records = 0;
  bool rebuilt = false;
  double apply_ms = 0.0;
  double reload_ms = 0.0;
  double patched_qps = 0.0;
  double scratch_qps = 0.0;

  [[nodiscard]] double speedup() const {
    return apply_ms > 0.0 ? reload_ms / apply_ms : 0.0;
  }
};

int run(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" || arg == "--seed" || arg == "--json") {
      if (i + 1 >= argc) return usage(arg + " requires an argument");
      const std::string value = argv[++i];
      if (arg == "--reps") {
        options.reps = static_cast<unsigned>(std::atoi(value.c_str()));
      } else if (arg == "--seed") {
        options.seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
      } else {
        options.json_path = value;
      }
    } else {
      return usage("unknown argument " + arg);
    }
  }
  if (options.reps == 0) options.reps = 1;

  sim::WorldConfig config = sim::small_test_config();
  config.seed = options.seed;

  // Base world once; one extended archive per window (same world, longer
  // run) for the reload side.
  const std::string base_path = temp_path("stalecert_bench_feed_base.scw");
  {
    sim::World world(config);
    world.run();
    store::save_world(world, base_path, nullptr, "small");
  }
  const store::ArchiveMeta base_meta = store::ArchiveReader(base_path).meta();
  std::cout << "base: " << base_meta.start.to_string() << " .. "
            << base_meta.end.to_string() << ", seed " << options.seed << ", "
            << options.reps << " reps\n";

  std::vector<WindowResult> results;
  for (const std::int64_t days : kWindows) {
    WindowResult r;
    r.days = days;

    const auto deltas = feed::extend_world(base_meta, days, days);
    const feed::WorldDelta& delta = deltas.front();
    r.delta_bytes = feed::write_delta_bytes(delta).size();

    const std::string ext_path = temp_path(
        "stalecert_bench_feed_ext_" + std::to_string(days) + ".scw");
    {
      sim::World world(config);
      world.run();
      world.extend(days);
      store::save_world(world, ext_path, nullptr, "small");
    }

    std::shared_ptr<const query::StalenessIndex> patched;
    std::shared_ptr<const query::StalenessIndex> scratch;
    std::vector<double> apply_samples, reload_samples;
    for (unsigned rep = 0; rep < options.reps; ++rep) {
      feed::DeltaApplier applier = make_applier(base_path);  // untimed
      auto begin = Clock::now();
      const auto applied = applier.apply(delta);
      apply_samples.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - begin)
              .count());
      r.new_certificates = applied.new_certificates;
      r.new_stale_records = applied.new_stale_records;
      r.rebuilt = applied.rebuilt;
      patched = applied.index;

      begin = Clock::now();
      scratch = query::StalenessIndex::from_archive(ext_path);
      reload_samples.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - begin)
              .count());
    }
    r.apply_ms = median_ms(apply_samples);
    r.reload_ms = median_ms(reload_samples);
    r.patched_qps = query_qps(*patched);
    r.scratch_qps = query_qps(*scratch);
    results.push_back(r);

    std::cout << "  " << days << "-day delta (" << r.delta_bytes << " bytes, "
              << r.new_certificates << " new certs, " << r.new_stale_records
              << " new stale" << (r.rebuilt ? ", REBUILT" : "")
              << "): apply " << r.apply_ms << " ms vs reload " << r.reload_ms
              << " ms = " << r.speedup() << "x; is_stale "
              << static_cast<std::uint64_t>(r.patched_qps) << " qps patched vs "
              << static_cast<std::uint64_t>(r.scratch_qps) << " qps scratch\n";
  }

  if (!options.json_path.empty()) {
    std::ostringstream out;
    out << "{\n  \"bench\": \"bench_feed\",\n"
        << "  \"profile\": \"small\",\n"
        << "  \"seed\": " << options.seed << ",\n"
        << "  \"reps\": " << options.reps << ",\n"
        << "  \"windows\": {";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      out << (i > 0 ? "," : "") << "\n    \"" << r.days << "d\": {"
          << "\"delta_bytes\": " << r.delta_bytes
          << ", \"new_certificates\": " << r.new_certificates
          << ", \"new_stale_records\": " << r.new_stale_records
          << ", \"rebuilt\": " << (r.rebuilt ? "true" : "false")
          << ", \"apply_ms\": " << r.apply_ms
          << ", \"reload_ms\": " << r.reload_ms
          << ", \"speedup\": " << r.speedup()
          << ", \"patched_is_stale_qps\": "
          << static_cast<std::uint64_t>(r.patched_qps)
          << ", \"scratch_is_stale_qps\": "
          << static_cast<std::uint64_t>(r.scratch_qps) << "}";
    }
    out << "\n  }\n}\n";
    if (options.json_path == "-") {
      std::cout << out.str();
    } else {
      std::ofstream file(options.json_path);
      if (!file) {
        std::cerr << "cannot write " << options.json_path << '\n';
        return 1;
      }
      file << out.str();
      std::cout << "wrote " << options.json_path << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const store::ArchiveError& e) {
    std::cerr << "bench_feed: cannot use archive: " << e.what() << '\n';
    return 1;
  } catch (const stalecert::Error& e) {
    std::cerr << "bench_feed: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "bench_feed: unexpected error: " << e.what() << '\n';
    return 1;
  }
}
