// Reproduces Figure 6: CDF of staleness periods for the three third-party
// stale certificate classes. Paper medians: domain registrant change
// ~90 days, managed TLS departure ~300 days, key compromise ~398 days —
// i.e. over 50% of third-party stale certificates stay abusable for more
// than 90 days.
#include <iostream>

#include "bench_world.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;

int main() {
  bench::print_header(
      "Figure 6 — CDF of third-party staleness periods (days)",
      "medians: registrant change 90d < managed TLS 300d <= key compromise "
      "398d; >50% of all classes exceed 90 days");

  const auto& bw = bench::bench_world();
  struct Class {
    std::string name;
    const std::vector<core::StaleCertificate>* stale;
    double paper_median;
  };
  const Class classes[] = {
      {"Domain change", &bw.registrant_change, 90},
      {"Managed TLS dept.", &bw.managed_departure, 300},
      {"Key compromise", &bw.revocations.key_compromise, 398},
  };

  util::TextTable table({"Class", "n", "p25", "median", "p75", "max",
                         "CDF(90d)", "CDF(215d)", "Paper median"});
  std::vector<double> medians;
  std::vector<double> cdf90;
  for (const auto& cls : classes) {
    core::StalenessAnalyzer analyzer(bw.corpus, *cls.stale);
    const auto dist = analyzer.staleness_distribution();
    if (dist.empty()) {
      table.add_row({cls.name, "0"});
      medians.push_back(0);
      cdf90.push_back(1);
      continue;
    }
    medians.push_back(dist.median());
    cdf90.push_back(dist.cdf(90));
    table.add_row({cls.name, std::to_string(dist.count()),
                   bench::fmt(dist.quantile(0.25), 0),
                   bench::fmt(dist.median(), 0),
                   bench::fmt(dist.quantile(0.75), 0), bench::fmt(dist.max(), 0),
                   bench::fmt(dist.cdf(90), 3), bench::fmt(dist.cdf(215), 3),
                   bench::fmt(cls.paper_median, 0) + "d"});
  }
  table.print(std::cout);

  // Full CDF series for plotting.
  std::cout << "\nCDF series (staleness days -> proportion):\n";
  std::vector<double> xs;
  for (int d = 0; d <= 420; d += 30) xs.push_back(d);
  for (const auto& cls : classes) {
    core::StalenessAnalyzer analyzer(bw.corpus, *cls.stale);
    const auto dist = analyzer.staleness_distribution();
    std::cout << "  " << cls.name << ":";
    for (const auto& [x, y] : dist.cdf_series(xs)) {
      std::cout << " (" << x << "," << bench::fmt(y, 2) << ")";
    }
    std::cout << "\n";
  }

  std::cout << "\nShape checks:\n";
  std::cout << "  registrant-change median < managed-TLS median: "
            << (medians[0] < medians[1] ? "PASS" : "FAIL") << " ("
            << bench::fmt(medians[0], 0) << " vs " << bench::fmt(medians[1], 0)
            << ")\n";
  std::cout << "  key-compromise median is the longest: "
            << (medians[2] >= medians[1] ? "PASS" : "FAIL") << " ("
            << bench::fmt(medians[2], 0) << ")\n";
  std::cout << "  >50% of every class exceeds 90 days... registrant change is "
               "borderline in the paper (median ~90): "
            << ((cdf90[1] < 0.5 && cdf90[2] < 0.5) ? "PASS" : "FAIL") << "\n";
  return 0;
}
