// Ablations over the measurement pipeline's design choices (§4):
//   A. CT collection: precertificate dedup and the anomalous-FQDN filter —
//      what the corpus would look like without them.
//   B. Registrant-change detection: the paper's conservative
//      "previous-observation-required" rule vs counting first sightings
//      (precision-over-recall posture, §4.2/§4.4).
//   C. Revocation outlier filters: how many joins each §4.1 filter drops.
#include <iostream>

#include "bench_world.hpp"
#include "stalecert/util/strings.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;

int main() {
  bench::print_header(
      "Ablation — pipeline design choices",
      "quantifies the methodology decisions of §4: dedup, anomalous-FQDN "
      "filtering, conservative WHOIS matching, revocation outlier filters");

  const auto& bw = bench::bench_world();
  const auto config = bench::bench_config();

  // --- A. CT collection ablation ---
  std::cout << "A. CT collection (dedup + anomalous-FQDN filter)\n";
  ct::CollectStats default_stats;
  (void)bw.world->ct_logs().collect({}, &default_stats);

  ct::CollectOptions no_fqdn_filter;
  no_fqdn_filter.max_certs_per_fqdn = ~0ull;
  ct::CollectStats no_filter_stats;
  (void)bw.world->ct_logs().collect(no_fqdn_filter, &no_filter_stats);

  util::TextTable collect({"Configuration", "Raw entries", "After dedup",
                           "Dropped FQDNs", "Final corpus"});
  collect.add_row({"paper defaults", util::with_commas(default_stats.raw_entries),
                   util::with_commas(default_stats.after_dedup),
                   util::with_commas(default_stats.dropped_anomalous_fqdns),
                   util::with_commas(default_stats.after_dedup -
                                     default_stats.dropped_certificates)});
  collect.add_row({"no FQDN filter", util::with_commas(no_filter_stats.raw_entries),
                   util::with_commas(no_filter_stats.after_dedup), "0",
                   util::with_commas(no_filter_stats.after_dedup)});
  collect.print(std::cout);
  const double dedup_ratio =
      default_stats.after_dedup == 0
          ? 0
          : static_cast<double>(default_stats.raw_entries) /
                static_cast<double>(default_stats.after_dedup);
  std::cout << "Dedup factor (raw entries per unique certificate): "
            << bench::fmt(dedup_ratio, 2)
            << "  (paper dedups precert+cert pairs: factor ~2 per log)\n\n";

  // --- B. Registrant-change conservativeness ---
  std::cout << "B. Registrant-change detection posture\n";
  const auto conservative = bw.registrant_change;
  core::RegistrantChangeOptions loose;
  loose.require_previous_observation = false;
  const auto loose_stale = core::detect_registrant_change(
      bw.corpus, bw.world->whois().new_registrations(), loose);

  core::StalenessAnalyzer cons_analyzer(bw.corpus, conservative);
  core::StalenessAnalyzer loose_analyzer(bw.corpus, loose_stale);
  const auto cons_summary =
      cons_analyzer.summarize(config.whois_start, config.whois_end);
  const auto loose_summary =
      loose_analyzer.summarize(config.whois_start, config.whois_end);

  util::TextTable posture({"Posture", "Stale certs", "Stale e2LDs",
                           "Daily e2LDs"});
  posture.add_row({"conservative (paper: re-registration observed)",
                   util::with_commas(cons_summary.stale_certs),
                   util::with_commas(cons_summary.stale_e2lds),
                   bench::fmt(cons_summary.daily_e2lds(), 2)});
  posture.add_row({"loose (count first sightings too)",
                   util::with_commas(loose_summary.stale_certs),
                   util::with_commas(loose_summary.stale_e2lds),
                   bench::fmt(loose_summary.daily_e2lds(), 2)});
  posture.print(std::cout);
  std::cout << "The conservative rule is a strict lower bound: "
            << (cons_summary.stale_certs <= loose_summary.stale_certs ? "PASS"
                                                                      : "FAIL")
            << "\n\n";

  // --- C. Revocation outlier filters ---
  std::cout << "C. Revocation join filters (Section 4.1)\n";
  const auto& stats = bw.revocations.join_stats;
  util::TextTable filters({"Stage", "Count", "Paper analogue"});
  filters.add_row({"CRL rows matched to CT", util::with_commas(stats.matched),
                   "21.39M matched"});
  filters.add_row({"- revoked before validity",
                   util::with_commas(stats.dropped_before_valid), "129 (0.0006%)"});
  filters.add_row({"- revoked after expiry",
                   util::with_commas(stats.dropped_after_expiry), "7,945 (0.037%)"});
  filters.add_row({"- revoked before cutoff",
                   util::with_commas(stats.dropped_before_cutoff),
                   "33,860 (0.16%)"});
  filters.add_row({"kept", util::with_commas(stats.kept), "~21.3M"});
  filters.print(std::cout);
  const bool small_fraction =
      stats.matched == 0 ||
      (stats.dropped_before_valid + stats.dropped_after_expiry) * 10 <
          stats.matched;
  std::cout << "Outlier filters remove only a small fraction: "
            << (small_fraction ? "PASS" : "FAIL") << "\n\n";

  // --- D. First-party vs third-party staleness ---
  // §3.4: "The majority of certificate invalidation events lead to stale
  // certificates controlled by the domain owner." Key rotations (first
  // party) should dwarf the three third-party classes combined.
  std::cout << "D. First-party (key rotation) vs third-party staleness\n";
  const auto rotations = core::detect_key_rotation(bw.corpus);
  const std::size_t third_party = bw.revocations.key_compromise.size() +
                                  bw.registrant_change.size() +
                                  bw.managed_departure.size();
  util::TextTable parties({"Population", "Stale certs"});
  parties.add_row({"first-party (key rotation / supersession)",
                   util::with_commas(rotations.size())});
  parties.add_row({"third-party (KC + registrant + managed)",
                   util::with_commas(third_party)});
  parties.print(std::cout);
  std::cout << "First-party staleness dominates (paper §3.4): "
            << (rotations.size() > third_party ? "PASS" : "FAIL") << "\n";
  return 0;
}
