// bench_query: closed-loop multithreaded load generator for the
// stalecert::query serving stack. Two modes over the same archive-backed
// StalenessIndex:
//
//   index  — worker threads call the index's point lookups directly
//            (is_stale, certs_for_key, revocation_status, stale_at);
//            measures the pure lookup cost the daemon's handlers pay.
//   http   — an in-process staled (HttpServer + StaledService) serves a
//            mixed GET workload to keep-alive HttpClient threads; measures
//            end-to-end request latency including parsing and sockets.
//
// Each worker runs closed-loop (next request when the previous answers)
// and records every latency; quantiles are exact (sorted samples, no
// bucketing). Reports QPS and p50/p90/p99 per mode, prints a summary and
// writes machine-readable JSON with --json <path|-> (BENCH_query.json in
// the repo root is a committed run).
//
//   $ ./bench_query [--archive W.scw] [--threads N] [--seconds S]
//                   [--seed N] [--mode index|http|both] [--json <path|->]
//
// Without --archive, a small-profile world (seed 20230512, same recipe as
// bench_store) is simulated and archived under TMPDIR first.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "stalecert/query/client.hpp"
#include "stalecert/query/server.hpp"
#include "stalecert/query/service.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/store/archive.hpp"
#include "stalecert/store/errors.hpp"

using namespace stalecert;
using Clock = std::chrono::steady_clock;

namespace {

int usage(const std::string& detail) {
  std::cerr << "usage: bench_query [--archive W.scw] [--threads N]"
               " [--seconds S] [--seed N] [--mode index|http|both]"
               " [--json <path|->]\n";
  if (!detail.empty()) std::cerr << detail << '\n';
  return 2;
}

struct Options {
  std::string archive;
  unsigned threads = 4;
  double seconds = 3.0;
  std::uint64_t seed = 1;
  std::string mode = "both";
  std::string json_path;
};

/// The randomized probe sets every worker draws from, extracted from the
/// index so hits and misses both occur.
struct Workload {
  std::vector<std::string> domains;
  std::vector<util::Date> dates;
  std::vector<std::string> spkis;
  std::vector<std::string> serials;
};

Workload build_workload(const query::StalenessIndex& index) {
  Workload w;
  std::set<std::string> domains;
  std::set<std::string> spkis;
  std::set<std::string> serials;
  const auto& corpus = index.corpus();
  for (std::uint32_t i = 0; i < corpus.size(); ++i) {
    const auto& cert = corpus.at(i);
    for (const auto& name : cert.dns_names()) {
      domains.insert(query::normalize_domain(name));
    }
    spkis.insert(cert.subject_key().fingerprint_hex());
    serials.insert(cert.serial_hex());
  }
  for (const auto& record : index.stale_records()) {
    domains.insert(record.trigger_domain);
  }
  domains.insert("miss.invalid");
  spkis.insert("0000");
  serials.insert("0000");
  w.domains.assign(domains.begin(), domains.end());
  w.spkis.assign(spkis.begin(), spkis.end());
  w.serials.assign(serials.begin(), serials.end());
  for (util::Date d = index.meta().start; d <= index.meta().end; d += 7) {
    w.dates.push_back(d);
  }
  return w;
}

struct ModeResult {
  std::string mode;
  std::uint64_t operations = 0;
  double wall_seconds = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;

  [[nodiscard]] double qps() const {
    return wall_seconds > 0.0 ? static_cast<double>(operations) / wall_seconds
                              : 0.0;
  }
};

double quantile_us(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(rank, sorted_us.size() - 1)];
}

/// Runs `threads` closed-loop workers for `seconds`, each invoking `op(rng)`
/// repeatedly and timing every call; merges all samples into one result.
template <typename Op>
ModeResult run_closed_loop(const std::string& mode, const Options& options,
                           Op&& op) {
  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> latencies(options.threads);
  std::vector<std::thread> workers;
  const auto begin = Clock::now();
  for (unsigned t = 0; t < options.threads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(options.seed * 7919 + t);
      auto& samples = latencies[t];
      samples.reserve(1 << 20);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto start = Clock::now();
        op(rng, t);
        const std::chrono::duration<double, std::micro> took =
            Clock::now() - start;
        samples.push_back(took.count());
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(options.seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) worker.join();
  const std::chrono::duration<double> wall = Clock::now() - begin;

  ModeResult result;
  result.mode = mode;
  result.wall_seconds = wall.count();
  std::vector<double> merged;
  for (const auto& samples : latencies) {
    merged.insert(merged.end(), samples.begin(), samples.end());
  }
  result.operations = merged.size();
  std::sort(merged.begin(), merged.end());
  result.p50_us = quantile_us(merged, 0.50);
  result.p90_us = quantile_us(merged, 0.90);
  result.p99_us = quantile_us(merged, 0.99);
  return result;
}

void print_result(const ModeResult& r) {
  std::cout << "  " << r.mode << ": " << r.operations << " ops in "
            << r.wall_seconds << " s = " << static_cast<std::uint64_t>(r.qps())
            << " qps, p50 " << r.p50_us << " us, p90 " << r.p90_us
            << " us, p99 " << r.p99_us << " us\n";
}

std::string json_report(const query::StalenessIndex& index,
                        const Options& options,
                        const std::vector<ModeResult>& results) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"bench_query\",\n"
      << "  \"profile\": \"" << index.meta().profile << "\",\n"
      << "  \"seed\": " << index.meta().seed << ",\n"
      << "  \"certificates\": " << index.stats().certificates << ",\n"
      << "  \"stale_records\": " << index.stats().stale_records << ",\n"
      << "  \"threads\": " << options.threads << ",\n"
      << "  \"seconds_per_mode\": " << options.seconds << ",\n"
      << "  \"modes\": {";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << (i > 0 ? "," : "") << "\n    \"" << r.mode << "\": {"
        << "\"operations\": " << r.operations << ", \"qps\": "
        << static_cast<std::uint64_t>(r.qps()) << ", \"p50_us\": " << r.p50_us
        << ", \"p90_us\": " << r.p90_us << ", \"p99_us\": " << r.p99_us << "}";
  }
  out << "\n  }\n}\n";
  return out.str();
}

int run(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--archive" || arg == "--threads" || arg == "--seconds" ||
        arg == "--seed" || arg == "--mode" || arg == "--json") {
      if (i + 1 >= argc) return usage(arg + " requires an argument");
      const std::string value = argv[++i];
      if (arg == "--archive") {
        options.archive = value;
      } else if (arg == "--threads") {
        options.threads = static_cast<unsigned>(std::atoi(value.c_str()));
      } else if (arg == "--seconds") {
        options.seconds = std::atof(value.c_str());
      } else if (arg == "--seed") {
        options.seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
      } else if (arg == "--mode") {
        options.mode = value;
      } else {
        options.json_path = value;
      }
    } else {
      return usage("unknown argument " + arg);
    }
  }
  if (options.threads == 0) options.threads = 1;
  if (options.mode != "index" && options.mode != "http" &&
      options.mode != "both") {
    return usage("bad --mode " + options.mode);
  }

  if (options.archive.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    std::string path = (tmp != nullptr ? std::string(tmp) : std::string("/tmp"));
    if (!path.empty() && path.back() != '/') path += '/';
    path += "stalecert_bench_query.scw";
    sim::WorldConfig config = sim::small_test_config();
    config.seed = 20230512;
    sim::World world(config);
    world.run();
    store::save_world(world, path, nullptr, "small");
    options.archive = path;
    std::cout << "simulated small world -> " << path << "\n";
  }

  const auto index = query::StalenessIndex::from_archive(options.archive);
  const Workload workload = build_workload(*index);
  std::cout << "index: " << index->stats().certificates << " certificates, "
            << index->stats().stale_records << " stale records, "
            << workload.domains.size() << " probe domains\n"
            << "closed loop: " << options.threads << " threads x "
            << options.seconds << " s per mode\n";

  std::vector<ModeResult> results;

  if (options.mode != "http") {
    // Direct index lookups, round-robin over the four point queries.
    results.push_back(run_closed_loop(
        "index", options, [&](std::mt19937_64& rng, unsigned) {
          const auto pick = rng();
          switch (pick % 4) {
            case 0:
              (void)index->is_stale(
                  workload.domains[pick % workload.domains.size()],
                  workload.dates[(pick >> 8) % workload.dates.size()]);
              break;
            case 1:
              (void)index->certs_for_key(
                  workload.spkis[pick % workload.spkis.size()]);
              break;
            case 2:
              (void)index->revocation_status(
                  workload.serials[pick % workload.serials.size()]);
              break;
            default:
              (void)index->stale_at(
                  workload.dates[pick % workload.dates.size()]);
          }
        }));
    print_result(results.back());
  }

  if (options.mode != "index") {
    query::StaledService service(options.archive);
    // Closed-loop load trips the slow-request warn path constantly; the
    // bench only wants the measurements, not a firehose on stderr.
    service.log().enable_stderr(false);
    service.load();
    query::HttpServer::Options server_options;
    server_options.threads = options.threads;
    query::HttpServer server(server_options,
                             [&service](const query::HttpRequest& request) {
                               return service.handle(request);
                             });
    server.set_request_hook([&service](const query::HttpRequest&,
                                       const query::HttpResponse& response,
                                       std::chrono::nanoseconds write_duration) {
      service.on_response_written(response, write_duration);
    });
    server.start();

    std::vector<query::HttpClient> clients;
    clients.reserve(options.threads);
    for (unsigned t = 0; t < options.threads; ++t) {
      clients.emplace_back("127.0.0.1", server.port());
    }
    results.push_back(run_closed_loop(
        "http", options, [&](std::mt19937_64& rng, unsigned t) {
          const auto pick = rng();
          std::string target;
          switch (pick % 4) {
            case 0:
              target = "/v1/stale?domain=" +
                       workload.domains[pick % workload.domains.size()] +
                       "&date=" +
                       workload.dates[(pick >> 8) % workload.dates.size()]
                           .to_string();
              break;
            case 1:
              target = "/v1/key/" + workload.spkis[pick % workload.spkis.size()];
              break;
            case 2:
              target = "/v1/revocation?serial=" +
                       workload.serials[pick % workload.serials.size()];
              break;
            default:
              target = "/healthz";
          }
          (void)clients[t].get(target);
        }));
    print_result(results.back());

    // Report the service's own sliding-window accounting next to the
    // bench's exact samples. Windowed qps is normalized over the full 1m
    // window (so a 3 s burst reads ~burst/60); the windowed quantiles are
    // bucket-resolution approximations of the exact ones above.
    const auto window = std::chrono::seconds(60);
    double windowed_qps = 0.0;
    for (const char* endpoint : {"stale", "key", "revocation", "healthz"}) {
      windowed_qps += service.windowed_qps(endpoint, window);
    }
    const auto stale_latency = service.windowed_latency("stale", window);
    std::cout << "  service windows (1m): " << static_cast<std::uint64_t>(windowed_qps)
              << " qps, stale p50 " << stale_latency.p50 * 1e6 << " us, p99 "
              << stale_latency.p99 * 1e6 << " us, slow traces retained "
              << service.slow_traces().snapshot().size() << "\n";
    server.stop();
  }

  if (!options.json_path.empty()) {
    const std::string report = json_report(*index, options, results);
    if (options.json_path == "-") {
      std::cout << report;
    } else {
      std::ofstream out(options.json_path);
      if (!out) {
        std::cerr << "cannot write " << options.json_path << '\n';
        return 1;
      }
      out << report;
      std::cout << "wrote " << options.json_path << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const store::ArchiveError& e) {
    std::cerr << "bench_query: cannot use archive: " << e.what() << '\n';
    return 1;
  } catch (const stalecert::Error& e) {
    std::cerr << "bench_query: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "bench_query: unexpected error: " << e.what() << '\n';
    return 1;
  }
}
