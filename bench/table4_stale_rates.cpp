// Reproduces Table 4: average daily rates (and totals) of new stale
// certificates, stale FQDNs, and stale e2LDs for the four detection
// methods. Absolute totals are simulation-scale; the comparison target is
// the ORDERING and the per-day magnitude relationships the paper reports:
// managed TLS departure > registrant change > key compromise (daily e2LDs),
// with "revoked: all" far above "revoked: key compromise".
#include <iostream>

#include "bench_world.hpp"
#include "stalecert/util/strings.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;

namespace {

struct Row {
  std::string method;
  util::Date first;
  util::Date last;
  const std::vector<core::StaleCertificate>* stale;
  std::string paper_daily;  // paper's daily certs / FQDNs / e2LDs
};

}  // namespace

int main() {
  bench::print_header(
      "Table 4 — Stale certificate detection (daily + total rates)",
      "daily certs/FQDNs/e2LDs: revoked-all 20,327/28,035/7,125 ; "
      "key-compromise 493/787/347 ; registrant change 2,593/2,807/1,214 ; "
      "Cloudflare managed departure 9,495/18,833/7,722");

  const auto& bw = bench::bench_world();
  const auto config = bench::bench_config();

  const Row rows[] = {
      {"Revoked: all", config.revocation_cutoff, config.crl_end,
       &bw.revocations.all_revoked, "20,327 / 28,035 / 7,125"},
      {"Revoked: key compromise", config.revocation_cutoff, config.crl_end,
       &bw.revocations.key_compromise, "493 / 787 / 347"},
      {"Domain registrant change", config.whois_start, config.whois_end,
       &bw.registrant_change, "2,593 / 2,807 / 1,214"},
      {"Cloudflare managed TLS departure", config.adns_start, config.adns_end,
       &bw.managed_departure, "9,495 / 18,833 / 7,722"},
  };

  util::TextTable table({"Method", "Date range", "Certs (daily/total)",
                         "FQDNs (daily/total)", "e2LDs (daily/total)",
                         "Paper daily (certs/FQDNs/e2LDs)"});
  for (const auto& row : rows) {
    core::StalenessAnalyzer analyzer(bw.corpus, *row.stale);
    const auto summary = analyzer.summarize(row.first, row.last);
    table.add_row({row.method,
                   row.first.to_string() + " .. " + row.last.to_string(),
                   bench::fmt(summary.daily_certs(), 2) + " / " +
                       util::with_commas(summary.stale_certs),
                   bench::fmt(summary.daily_fqdns(), 2) + " / " +
                       util::with_commas(summary.stale_fqdns),
                   bench::fmt(summary.daily_e2lds(), 2) + " / " +
                       util::with_commas(summary.stale_e2lds),
                   row.paper_daily});
  }
  table.print(std::cout);

  // Shape checks the paper's narrative rests on (§5.4).
  core::StalenessAnalyzer all_rev(bw.corpus, bw.revocations.all_revoked);
  core::StalenessAnalyzer kc(bw.corpus, bw.revocations.key_compromise);
  core::StalenessAnalyzer reg(bw.corpus, bw.registrant_change);
  core::StalenessAnalyzer man(bw.corpus, bw.managed_departure);
  const double all_daily =
      all_rev.summarize(config.revocation_cutoff, config.crl_end).daily_certs();
  const double kc_daily =
      kc.summarize(config.revocation_cutoff, config.crl_end).daily_e2lds();
  const double reg_daily = reg.summarize(config.whois_start, config.whois_end)
                               .daily_e2lds();
  const double man_daily =
      man.summarize(config.adns_start, config.adns_end).daily_e2lds();

  std::cout << "\nShape checks (paper §5.4):\n";
  std::cout << "  managed-TLS daily e2LDs > registrant-change daily e2LDs: "
            << (man_daily > reg_daily ? "PASS" : "FAIL") << " ("
            << bench::fmt(man_daily, 2) << " vs " << bench::fmt(reg_daily, 2)
            << ")\n";
  std::cout << "  registrant-change daily e2LDs > key-compromise daily e2LDs: "
            << (reg_daily > kc_daily ? "PASS" : "FAIL") << " ("
            << bench::fmt(reg_daily, 2) << " vs " << bench::fmt(kc_daily, 2)
            << ")\n";
  std::cout << "  revoked-all daily certs >> key-compromise daily e2LDs: "
            << (all_daily > 5 * kc_daily ? "PASS" : "FAIL") << "\n";
  return 0;
}
