// Reproduces Figure 4: monthly key-compromise revocation volumes by CA,
// 2021-10 .. 2023-05 (log scale in the paper). The defining features:
// a massive GoDaddy spike in Nov/Dec 2021 (the Managed WordPress breach),
// Let's Encrypt (ISRG) appearing only from July 2022 (when it began
// publishing keyCompromise reasons), and a gradually rising baseline.
#include <algorithm>
#include <iostream>

#include "bench_world.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;

int main() {
  bench::print_header(
      "Figure 4 — Monthly key-compromise revocations by CA",
      "GoDaddy dominates Nov+Dec 2021 (>65% of all KC revocations); ISRG "
      "(Let's Encrypt) series starts 2022-07; baseline grows 2021->2023");

  const auto& bw = bench::bench_world();
  core::StalenessAnalyzer analyzer(bw.corpus, bw.revocations.key_compromise);
  const auto monthly = analyzer.monthly_by_label(/*use_organization=*/true);

  const std::vector<std::string> cas = {"Entrust", "GoDaddy", "ISRG (Let's Encrypt)",
                                        "Sectigo"};
  util::TextTable table({"Month", "Entrust", "GoDaddy", "ISRG (LE)", "Sectigo",
                         "Other", "Total"});
  std::uint64_t godaddy_breach = 0, total_all = 0;
  std::uint64_t le_before_july22 = 0;
  std::uint64_t first_half = 0, second_half = 0;
  for (const auto& [month, counter] : monthly) {
    std::uint64_t other = counter.total();
    std::vector<std::string> row = {month.to_string()};
    for (const auto& ca : cas) {
      const std::uint64_t n = counter.count(ca);
      other -= n;
      row.push_back(std::to_string(n));
    }
    row.push_back(std::to_string(other));
    row.push_back(std::to_string(counter.total()));
    table.add_row(row);

    total_all += counter.total();
    if ((month.year == 2021 && month.month >= 11)) {
      godaddy_breach += counter.count("GoDaddy");
    }
    if (month.index() < util::YearMonth{2022, 7}.index()) {
      le_before_july22 += counter.count("ISRG (Let's Encrypt)");
    }
    if (month.index() <= util::YearMonth{2022, 3}.index()) {
      first_half += counter.total() - counter.count("GoDaddy");
    } else {
      second_half += counter.total() - counter.count("GoDaddy");
    }
  }
  table.print(std::cout);

  std::cout << "\nShape checks:\n";
  std::cout << "  GoDaddy Nov+Dec 2021 share of all KC > 50% (paper >65%): "
            << (total_all > 0 && godaddy_breach * 2 > total_all ? "PASS" : "FAIL")
            << " (" << godaddy_breach << " of " << total_all << ")\n";
  std::cout << "  no ISRG keyCompromise before 2022-07: "
            << (le_before_july22 == 0 ? "PASS" : "FAIL") << "\n";
  std::cout << "  non-breach baseline rises over time: "
            << (second_half > first_half ? "PASS" : "FAIL") << " (" << first_half
            << " -> " << second_half << ")\n";
  return 0;
}
