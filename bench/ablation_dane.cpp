// Ablation: DANE (§7.2/§8). The paper argues that aligning keys with the
// authoritative name source shrinks authentication cache durations from
// certificate lifetimes (months-years) to DNS TTLs (hours). This bench
// replays every detected registrant-change stale certificate under a
// DANE-EE regime: the new registrant publishes their own TLSA record at
// acquisition, so the old binding dies within one TTL.
#include <iostream>

#include "bench_world.hpp"
#include "stalecert/dns/dane.hpp"
#include "stalecert/util/strings.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;

int main() {
  bench::print_header(
      "Ablation — DANE vs web-PKI staleness windows",
      "stale DNS records are abusable for hours/days (TTL); stale "
      "certificates for months/years (validity). DANE-EE collapses the "
      "third-party exposure window accordingly (§7.2, §8)");

  const auto& bw = bench::bench_world();

  struct Regime {
    std::string name;
    std::int64_t exposure_cap_days;  // per-event third-party exposure bound
  };
  // Exposure under PKI = full staleness period; under DANE = one TTL.
  const dns::TlsaRecord representative{
      dns::TlsaUsage::kDaneEe, dns::TlsaSelector::kSubjectPublicKeyInfo,
      dns::TlsaMatching::kSha256, {}, 3600};
  const std::int64_t dane_ttl_days =
      dns::DaneRegistry::max_cache_staleness_days(representative);

  util::TextTable table({"Class", "Events", "PKI staleness-days",
                         "DANE exposure-days (1h TTL)", "Reduction"});
  struct Class {
    std::string name;
    const std::vector<core::StaleCertificate>* stale;
  };
  const Class classes[] = {
      {"Domain registrant change", &bw.registrant_change},
      {"Managed TLS departure", &bw.managed_departure},
  };
  bool all_above_99 = true;
  for (const auto& cls : classes) {
    double pki_days = 0;
    double dane_days = 0;
    for (const auto& record : *cls.stale) {
      pki_days += static_cast<double>(record.staleness_days());
      dane_days += static_cast<double>(
          std::min<std::int64_t>(record.staleness_days(), dane_ttl_days));
    }
    const double reduction = pki_days <= 0 ? 0.0 : 1.0 - dane_days / pki_days;
    all_above_99 &= reduction > 0.9;
    table.add_row({cls.name, std::to_string(cls.stale->size()),
                   bench::fmt(pki_days, 0), bench::fmt(dane_days, 0),
                   util::percent(reduction, 2)});
  }
  table.print(std::cout);

  std::cout <<
      "\nCaveats the paper raises: DANE condenses trust onto registrars /\n"
      "nameserver operators (already trusted as connection entrypoints),\n"
      "requires DNSSEC, and does nothing about key compromise when the\n"
      "compromised party also controls DNS.\n";

  std::cout << "\nShape checks:\n";
  std::cout << "  TTL-scale exposure is >90% smaller than lifetime-scale: "
            << (all_above_99 ? "PASS" : "FAIL") << "\n";

  // Functional spot-check: an ownership change invalidates the old pin.
  dns::DaneRegistry registry;
  const auto old_cert = x509::CertificateBuilder{}
                            .serial(1)
                            .subject_cn("sold.example.com")
                            .validity(util::Date::parse("2022-01-01"),
                                      util::Date::parse("2022-12-31"))
                            .key(crypto::KeyPair::derive(
                                "old", crypto::KeyAlgorithm::kEcdsaP256))
                            .add_dns_name("sold.example.com")
                            .build();
  const auto new_cert = x509::CertificateBuilder{}
                            .serial(2)
                            .subject_cn("sold.example.com")
                            .validity(util::Date::parse("2022-05-01"),
                                      util::Date::parse("2023-05-01"))
                            .key(crypto::KeyPair::derive(
                                "new", crypto::KeyAlgorithm::kEcdsaP256))
                            .add_dns_name("sold.example.com")
                            .build();
  registry.publish("sold.example.com",
                   dns::tlsa_for_certificate(old_cert, dns::TlsaUsage::kDaneEe,
                                             dns::TlsaSelector::kSubjectPublicKeyInfo,
                                             dns::TlsaMatching::kSha256),
                   util::Date::parse("2022-01-01"));
  registry.publish("sold.example.com",
                   dns::tlsa_for_certificate(new_cert, dns::TlsaUsage::kDaneEe,
                                             dns::TlsaSelector::kSubjectPublicKeyInfo,
                                             dns::TlsaMatching::kSha256),
                   util::Date::parse("2022-05-01"));
  const auto active = registry.lookup("sold.example.com",
                                      util::Date::parse("2022-06-01"));
  std::cout << "  old owner's cert rejected the day after the TLSA change: "
            << (active && !dns::tlsa_matches(*active, old_cert) &&
                        dns::tlsa_matches(*active, new_cert)
                    ? "PASS"
                    : "FAIL")
            << "\n";
  return 0;
}
