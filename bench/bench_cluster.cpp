// bench_cluster: point-lookup scaling of the sharded serving tier. One
// world is split into 1, 2 and 4 shard archives; each configuration runs
// the same closed-loop point-lookup workload (/v1/stale and
// /v1/summary?domain=) against real HttpServer-backed shard staleds:
//
//   single    — one unsharded StaledService (the pre-cluster baseline).
//   shards-N  — N shard services; every client thread routes each request
//               client-side to the owning shard (ShardPlan hash), the
//               upper bound of horizontal scaling with no router hop.
//   router-4  — the same 4-shard cluster behind RouterService::handle,
//               measuring what the extra front-tier hop costs.
//
// Workers are closed-loop keep-alive HttpClients (one connection per
// worker per shard); every latency is recorded and quantiles are exact.
// Reports QPS and p50/p90/p99 per mode plus the 1->4 shard scaling factor,
// and writes machine-readable JSON with --json <path|-> (BENCH_cluster.json
// in the repo root is a committed run).
//
//   $ ./bench_cluster [--archive W.scw] [--threads N] [--seconds S]
//                     [--seed N] [--json <path|->]
//
// Without --archive, a small-profile world (seed 20230512, same recipe as
// bench_query) is simulated and archived under TMPDIR first.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "stalecert/cluster/router.hpp"
#include "stalecert/cluster/shard.hpp"
#include "stalecert/cluster/split.hpp"
#include "stalecert/query/client.hpp"
#include "stalecert/query/server.hpp"
#include "stalecert/query/service.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/store/archive.hpp"

using namespace stalecert;
using Clock = std::chrono::steady_clock;

namespace {

int usage(const std::string& detail) {
  std::cerr << "usage: bench_cluster [--archive W.scw] [--threads N]"
               " [--seconds S] [--seed N] [--json <path|->]\n";
  if (!detail.empty()) std::cerr << detail << '\n';
  return 2;
}

struct Options {
  std::string archive;
  unsigned threads = 8;
  double seconds = 3.0;
  std::uint64_t seed = 1;
  std::string json_path;
};

/// Point-lookup probe set: domains (hits and misses) plus query dates.
struct Workload {
  std::vector<std::string> domains;
  std::vector<std::string> dates;
};

Workload build_workload(const store::LoadedWorld& world) {
  Workload w;
  std::set<std::string> domains;
  for (const auto& log : world.ct_logs.logs()) {
    for (const auto& entry : log.entries()) {
      for (const auto& name : entry.certificate.dns_names()) {
        domains.insert(name);
      }
    }
  }
  for (const auto& event : world.registrations) domains.insert(event.domain);
  domains.insert("miss.invalid");
  w.domains.assign(domains.begin(), domains.end());
  for (util::Date d = world.meta.start; d <= world.meta.end; d += 7) {
    w.dates.push_back(d.to_string());
  }
  return w;
}

struct ModeResult {
  std::string mode;
  std::uint64_t operations = 0;
  double wall_seconds = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;

  [[nodiscard]] double qps() const {
    return wall_seconds > 0.0 ? static_cast<double>(operations) / wall_seconds
                              : 0.0;
  }
};

double quantile_us(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(rank, sorted_us.size() - 1)];
}

template <typename Op>
ModeResult run_closed_loop(const std::string& mode, const Options& options,
                           Op&& op) {
  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> latencies(options.threads);
  std::vector<std::thread> workers;
  const auto begin = Clock::now();
  for (unsigned t = 0; t < options.threads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(options.seed * 7919 + t);
      auto& samples = latencies[t];
      samples.reserve(1 << 20);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto start = Clock::now();
        op(rng, t);
        const std::chrono::duration<double, std::micro> took =
            Clock::now() - start;
        samples.push_back(took.count());
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(options.seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) worker.join();
  const std::chrono::duration<double> wall = Clock::now() - begin;

  ModeResult result;
  result.mode = mode;
  result.wall_seconds = wall.count();
  std::vector<double> merged;
  for (const auto& samples : latencies) {
    merged.insert(merged.end(), samples.begin(), samples.end());
  }
  result.operations = merged.size();
  std::sort(merged.begin(), merged.end());
  result.p50_us = quantile_us(merged, 0.50);
  result.p90_us = quantile_us(merged, 0.90);
  result.p99_us = quantile_us(merged, 0.99);
  return result;
}

void print_result(const ModeResult& r) {
  std::cout << "  " << r.mode << ": " << r.operations << " ops in "
            << r.wall_seconds << " s = " << static_cast<std::uint64_t>(r.qps())
            << " qps, p50 " << r.p50_us << " us, p90 " << r.p90_us
            << " us, p99 " << r.p99_us << " us\n";
}

/// One running shard tier: services behind real HTTP servers.
struct ShardTier {
  std::vector<std::unique_ptr<query::StaledService>> services;
  std::vector<std::unique_ptr<query::HttpServer>> servers;
  std::vector<cluster::ShardEndpoint> endpoints;

  ShardTier() = default;
  ShardTier(ShardTier&&) = default;
  ShardTier& operator=(ShardTier&&) = default;
  ~ShardTier() {
    for (auto& server : servers) {
      if (server) server->stop();
    }
  }
};

ShardTier start_tier(const std::vector<std::string>& archive_paths,
                     const cluster::ShardPlan* plan,
                     unsigned server_threads) {
  ShardTier tier;
  for (unsigned k = 0; k < archive_paths.size(); ++k) {
    query::ServiceOptions service_options;
    if (plan != nullptr) {
      service_options.shard_index = k;
      service_options.shard_count = plan->count();
      const auto scope = plan->scope_for(k);
      service_options.snapshot_builder = [scope](const std::string& path) {
        return query::StalenessIndex::from_archive(path, scope);
      };
    }
    auto service = std::make_unique<query::StaledService>(archive_paths[k],
                                                          service_options);
    service->log().set_level(obs::LogLevel::kError);
    service->load();

    query::HttpServer::Options server_options;
    server_options.port = 0;
    // Each closed-loop worker keeps one persistent connection per shard,
    // and the server is thread-per-connection: size the pool to the
    // worker count or the extra workers would block in connect forever.
    server_options.threads = server_threads;
    auto* raw = service.get();
    auto server = std::make_unique<query::HttpServer>(
        server_options,
        [raw](const query::HttpRequest& r) { return raw->handle(r); });
    server->start();
    tier.endpoints.push_back({"127.0.0.1", server->port()});
    tier.services.push_back(std::move(service));
    tier.servers.push_back(std::move(server));
  }
  return tier;
}

std::string point_target(const Workload& workload, std::mt19937_64& rng,
                         std::string* domain_out) {
  const auto& domain =
      workload.domains[rng() % workload.domains.size()];
  *domain_out = domain;
  if (rng() % 2 == 0) {
    return "/v1/stale?domain=" + domain + "&date=" +
           workload.dates[rng() % workload.dates.size()];
  }
  return "/v1/summary?domain=" + domain;
}

/// Closed-loop workers routing each point lookup client-side to the
/// owning shard over per-worker keep-alive connections.
ModeResult run_direct(const std::string& mode, const Options& options,
                      const Workload& workload, const ShardTier& tier,
                      const cluster::ShardPlan& plan) {
  std::vector<std::vector<std::unique_ptr<query::HttpClient>>> clients(
      options.threads);
  for (unsigned t = 0; t < options.threads; ++t) {
    for (const auto& endpoint : tier.endpoints) {
      clients[t].push_back(std::make_unique<query::HttpClient>(
          endpoint.host, endpoint.port));
    }
  }
  return run_closed_loop(mode, options,
                         [&](std::mt19937_64& rng, unsigned t) {
                           std::string domain;
                           const auto target =
                               point_target(workload, rng, &domain);
                           const unsigned shard = plan.shard_for_domain(domain);
                           (void)clients[t][shard]->get(target);
                         });
}

std::string json_report(const store::LoadedWorld& world,
                        const Options& options,
                        const std::vector<ModeResult>& results,
                        double scaling) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"bench_cluster\",\n"
      << "  \"profile\": \"" << world.meta.profile << "\",\n"
      << "  \"seed\": " << world.meta.seed << ",\n"
      << "  \"threads\": " << options.threads << ",\n"
      << "  \"hardware_cores\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "  \"seconds_per_mode\": " << options.seconds << ",\n"
      << "  \"modes\": {";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << (i > 0 ? "," : "") << "\n    \"" << r.mode << "\": {"
        << "\"operations\": " << r.operations << ", \"qps\": "
        << static_cast<std::uint64_t>(r.qps()) << ", \"p50_us\": " << r.p50_us
        << ", \"p90_us\": " << r.p90_us << ", \"p99_us\": " << r.p99_us << "}";
  }
  out << "\n  },\n  \"scaling_1_to_4_shards\": " << scaling << "\n}\n";
  return out.str();
}

int run(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--archive" || arg == "--threads" || arg == "--seconds" ||
        arg == "--seed" || arg == "--json") {
      if (i + 1 >= argc) return usage(arg + " requires an argument");
      const std::string value = argv[++i];
      if (arg == "--archive") {
        options.archive = value;
      } else if (arg == "--threads") {
        options.threads = static_cast<unsigned>(std::atoi(value.c_str()));
      } else if (arg == "--seconds") {
        options.seconds = std::atof(value.c_str());
      } else if (arg == "--seed") {
        options.seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
      } else {
        options.json_path = value;
      }
    } else {
      return usage("unknown argument " + arg);
    }
  }
  if (options.threads == 0) options.threads = 1;

  const char* tmp = std::getenv("TMPDIR");
  std::string tmp_dir = (tmp != nullptr ? std::string(tmp) : std::string("/tmp"));
  if (!tmp_dir.empty() && tmp_dir.back() != '/') tmp_dir += '/';

  if (options.archive.empty()) {
    const std::string path = tmp_dir + "stalecert_bench_cluster.scw";
    sim::WorldConfig config = sim::small_test_config();
    config.seed = 20230512;
    sim::World world(config);
    world.run();
    store::save_world(world, path, nullptr, "small");
    options.archive = path;
    std::cout << "simulated small world -> " << path << "\n";
  }
  const store::LoadedWorld world = store::load_world(options.archive);
  const Workload workload = build_workload(world);
  std::cout << "workload: " << workload.domains.size() << " domains, "
            << workload.dates.size() << " dates\n";

  std::vector<ModeResult> results;

  // Baseline: one unsharded staled.
  {
    ShardTier tier = start_tier({options.archive}, nullptr, options.threads);
    const cluster::ShardPlan plan(1);
    results.push_back(run_direct("single", options, workload, tier, plan));
    print_result(results.back());
  }

  double shards1_qps = 0.0;
  double shards4_qps = 0.0;
  for (const unsigned shards : {1u, 2u, 4u}) {
    const cluster::ShardPlan plan(shards);
    const std::string dir =
        tmp_dir + "stalecert_bench_cluster_shards" + std::to_string(shards);
    const auto paths = cluster::write_shard_archives(world, plan, dir);
    ShardTier tier = start_tier(paths, &plan, options.threads);
    results.push_back(run_direct("shards-" + std::to_string(shards), options,
                                 workload, tier, plan));
    print_result(results.back());
    if (shards == 1) shards1_qps = results.back().qps();
    if (shards == 4) shards4_qps = results.back().qps();

    // The 4-shard tier also measures the router hop.
    if (shards == 4) {
      cluster::RouterOptions router_options;
      router_options.shards = tier.endpoints;
      router_options.timeout = std::chrono::milliseconds(5000);
      router_options.health_interval = std::chrono::milliseconds(0);
      cluster::RouterService router(router_options);
      router.log().set_level(obs::LogLevel::kError);
      results.push_back(run_closed_loop(
          "router-4", options, [&](std::mt19937_64& rng, unsigned) {
            std::string domain;
            const auto target = point_target(workload, rng, &domain);
            const auto parsed = query::parse_request(
                "GET " + target + " HTTP/1.1\r\n\r\n");
            (void)router.handle(*parsed);
          }));
      print_result(results.back());
    }
  }

  const double scaling =
      shards1_qps > 0.0 ? shards4_qps / shards1_qps : 0.0;
  std::cout << "scaling 1 -> 4 shards (direct-routed point lookups): "
            << scaling << "x\n";
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores < 4) {
    std::cout << "NOTE: only " << cores
              << " hardware core(s) — every tier shares the same CPU, so "
                 "wall-clock qps cannot scale with shard count on this "
                 "machine; compare per-mode latency instead.\n";
  }

  const std::string json = json_report(world, options, results, scaling);
  if (!options.json_path.empty()) {
    if (options.json_path == "-") {
      std::cout << json;
    } else {
      std::ofstream out(options.json_path);
      out << json;
      std::cout << "wrote " << options.json_path << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench_cluster: " << e.what() << '\n';
    return 1;
  }
}
