// Reproduces Table 5: domain reputation of stale-certificate domains. The
// paper samples 100K registrant-change stale domains, queries VirusTotal,
// and finds ~1% (1,013) with malicious activity: 352 with malware files
// (grayware 82, backdoor 74, Unknown 53, downloader 51, virus 29,
// spyware 27, ransomware 18, Other 18), 685 with malicious URLs
// (phishing 367, malicious 190, malware 128); overlap MW-only 328,
// MW+URL 24, URL-only 661.
#include <algorithm>
#include <iostream>
#include <set>

#include "bench_world.hpp"
#include "stalecert/reputation/service.hpp"
#include "stalecert/util/strings.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;

int main() {
  bench::print_header(
      "Table 5 — Domain reputation of stale-certificate domains",
      "~1% of 100K sampled domains show malicious activity; URL-only (661) > "
      "MW-only (328) >> both (24); phishing is the top URL label");

  const auto& bw = bench::bench_world();
  core::StalenessAnalyzer analyzer(bw.corpus, bw.registrant_change);
  std::vector<std::string> domains = analyzer.affected_e2lds();
  // The paper samples 100K; we sample min(all, 100K) deterministically.
  if (domains.size() > 100000) domains.resize(100000);

  const auto& vt = bw.world->reputation();
  reputation::FamilyLabeler labeler;

  util::LabelCounter families;
  util::LabelCounter url_categories;
  std::uint64_t mw_only = 0, url_only = 0, both = 0;

  for (const auto& domain : domains) {
    const auto report = vt.query(domain);
    if (report.empty()) continue;

    bool has_mw = false;
    for (const auto& file : report.files) {
      // Paper threshold: flagged by at least five vendors.
      if (file.av_labels.size() >= reputation::ReputationService::kDetectionThreshold) {
        has_mw = true;
        families.add(labeler.label(file.av_labels));
      }
    }
    bool has_url = false;
    std::string top_category;
    std::size_t top_count = 0;
    for (const auto category :
         {reputation::UrlCategory::kPhishing, reputation::UrlCategory::kMalicious,
          reputation::UrlCategory::kMalware}) {
      const std::size_t vendors = report.url_vendor_count(category);
      if (vendors >= reputation::ReputationService::kDetectionThreshold) {
        has_url = true;
        if (vendors > top_count) {
          top_count = vendors;
          top_category = to_string(category);
        }
      }
    }
    if (has_url) url_categories.add(top_category);
    if (has_mw && has_url) {
      ++both;
    } else if (has_mw) {
      ++mw_only;
    } else if (has_url) {
      ++url_only;
    }
  }

  const std::uint64_t flagged = mw_only + url_only + both;
  std::cout << "Sampled stale e2LDs: " << domains.size() << ", flagged: " << flagged
            << " (" << util::percent(domains.empty()
                                         ? 0.0
                                         : static_cast<double>(flagged) /
                                               static_cast<double>(domains.size()),
                                     2)
            << ";  paper: 1,013 of 100K = ~1%)\n\n";

  util::TextTable mw_table({"Malware family", "Domains", "Paper"});
  const std::vector<std::pair<std::string, std::string>> paper_families = {
      {"grayware", "82"},    {"backdoor", "74"},  {"Unknown", "53"},
      {"downloader", "51"},  {"virus", "29"},     {"spyware", "27"},
      {"ransomware", "18"},  {"Other", "18"}};
  for (const auto& [family, paper] : paper_families) {
    // Our simulator uses the suffix "fam" for synthetic families.
    std::uint64_t count = families.count(family);
    if (count == 0) count = families.count(family + "fam");
    if (family == "Unknown") count += families.count("unknownfam");
    mw_table.add_row({family, util::with_commas(count), paper});
  }
  mw_table.add_row({"TOTAL (malware domains)", util::with_commas(mw_only + both),
                    "352"});
  mw_table.print(std::cout);

  util::TextTable url_table({"URL label", "Domains", "Paper"});
  url_table.add_row({"phishing", util::with_commas(url_categories.count("phishing")),
                     "367"});
  url_table.add_row({"malicious",
                     util::with_commas(url_categories.count("malicious")), "190"});
  url_table.add_row({"malware", util::with_commas(url_categories.count("malware")),
                     "128"});
  url_table.add_row({"TOTAL (URL domains)", util::with_commas(url_only + both),
                     "685"});
  url_table.print(std::cout);

  util::TextTable overlap({"Overlap", "Domains", "Paper"});
  overlap.add_row({"MW only", util::with_commas(mw_only), "328"});
  overlap.add_row({"MW + URL", util::with_commas(both), "24"});
  overlap.add_row({"URL only", util::with_commas(url_only), "661"});
  overlap.print(std::cout);

  std::cout << "\nShape checks:\n";
  std::cout << "  small flagged minority (<=5%): "
            << ((flagged > 0 &&
                 flagged * 100 <= domains.size() * 5)
                    ? "PASS"
                    : "FAIL")
            << "\n";
  std::cout << "  URL-only >= MW-only, overlap smallest: "
            << ((url_only >= mw_only && both < url_only) ? "PASS" : "FAIL")
            << "\n";
  std::cout << "  phishing is top URL label: "
            << ((url_categories.count("phishing") >=
                 url_categories.count("malicious")) &&
                        (url_categories.count("phishing") >=
                         url_categories.count("malware"))
                    ? "PASS"
                    : "FAIL")
            << "\n";
  return 0;
}
