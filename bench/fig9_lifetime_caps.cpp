// Reproduces Figure 9 (and the Section 6 headline numbers): simulated
// maximum-lifetime reduction. Every stale certificate longer than the cap
// has its expiry pulled in to notBefore+cap; staleness-days are recomputed.
// Paper staleness-days reductions:
//   registrant change: 96.7% (45d), 86.7% (90d), 35.8% (215d)
//   managed TLS dept.: 97.7% (45d), 75.3% (90d), 45.3% (215d)
//   key compromise:    89.6% (45d), 75.2% (90d), 44.3% (215d)
#include <iostream>

#include "bench_world.hpp"
#include "stalecert/core/lifetime.hpp"
#include "stalecert/util/strings.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;

int main() {
  bench::print_header(
      "Figure 9 — Staleness-days reduction under max-lifetime caps",
      "90-day cap removes ~75-87% of staleness-days per class "
      "(45d: 90-98%, 215d: 36-45%); reductions shrink as caps grow");

  const auto& bw = bench::bench_world();
  struct Class {
    std::string name;
    const std::vector<core::StaleCertificate>* stale;
    double paper[3];  // 45 / 90 / 215
  };
  const Class classes[] = {
      {"Domain registrant change", &bw.registrant_change, {0.967, 0.867, 0.358}},
      {"Managed TLS departure", &bw.managed_departure, {0.977, 0.753, 0.453}},
      {"Key compromise", &bw.revocations.key_compromise, {0.896, 0.752, 0.443}},
  };
  const std::vector<std::int64_t> caps = {45, 90, 215, 398};

  for (const auto& cls : classes) {
    std::cout << "\n" << cls.name << " (" << cls.stale->size()
              << " stale certificates, "
              << bench::fmt(core::simulate_cap(bw.corpus, *cls.stale, 100000)
                                .original_staleness_days,
                            0)
              << " staleness-days):\n";
    util::TextTable table({"Max lifetime", "Surviving stale certs",
                           "Staleness-days", "Reduction", "Paper reduction"});
    const auto results = core::simulate_caps(bw.corpus, *cls.stale, caps);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      table.add_row({std::to_string(r.cap_days) + "d",
                     std::to_string(r.surviving_count),
                     bench::fmt(r.capped_staleness_days, 0),
                     util::percent(r.staleness_days_reduction(), 1),
                     i < 3 ? util::percent(cls.paper[i], 1) : std::string("-")});
    }
    table.print(std::cout);
  }

  std::cout << "\nShape checks:\n";
  bool monotone = true, ninety_band = true;
  for (const auto& cls : classes) {
    const auto results = core::simulate_caps(bw.corpus, *cls.stale, caps);
    for (std::size_t i = 1; i < results.size(); ++i) {
      monotone &= results[i].staleness_days_reduction() <=
                  results[i - 1].staleness_days_reduction() + 1e-9;
    }
    if (!cls.stale->empty()) {
      const double r90 = results[1].staleness_days_reduction();
      ninety_band &= r90 > 0.4 && r90 < 0.99;
    }
  }
  std::cout << "  reduction monotone decreasing in cap: "
            << (monotone ? "PASS" : "FAIL") << "\n";
  std::cout << "  90-day cap removes a large majority band (paper 75-87%): "
            << (ninety_band ? "PASS" : "FAIL") << "\n";

  // Overall staleness reduction at 90 days across all classes combined
  // (the paper's abstract claims ~75%).
  std::vector<core::StaleCertificate> all;
  for (const auto& cls : classes) {
    all.insert(all.end(), cls.stale->begin(), cls.stale->end());
  }
  const auto overall = core::simulate_cap(bw.corpus, all, 90);
  std::cout << "  overall staleness-days reduction at 90d: "
            << util::percent(overall.staleness_days_reduction(), 1)
            << " (paper: ~75%)\n";
  return 0;
}
