// Ablation: the §7.2 mitigations, quantified.
//   A. CRLite — push the full revocation set to every client as a
//      Bloom-filter cascade: blocking OCSP no longer helps the attacker,
//      but the two never-revoked staleness classes remain exploitable.
//   B. Keyless SSL — the managed-TLS provider never holds customer keys:
//      detected "stale" certificates remain, but the third-party
//      impersonation capability disappears.
#include <iostream>

#include "bench_world.hpp"
#include "stalecert/revocation/crlite.hpp"
#include "stalecert/tls/interception.hpp"
#include "stalecert/util/strings.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;
using util::Date;

int main() {
  bench::print_header(
      "Ablation — §7.2 mitigations (CRLite, Keyless SSL)",
      "CRLite makes revocation unblockable (helps key compromise only); "
      "Keyless SSL removes the provider's key custody entirely");

  // ---------------- A. CRLite ----------------
  const auto& bw = bench::bench_world();

  // Build the cascade from the world's ground truth: revoked = every
  // joined revocation, valid = the rest of the corpus.
  std::vector<std::string> revoked_keys;
  std::vector<bool> is_revoked_index(bw.corpus.size(), false);
  for (const auto& stale : bw.revocations.all_revoked) {
    is_revoked_index[stale.corpus_index] = true;
  }
  std::vector<std::string> valid_keys;
  for (std::size_t i = 0; i < bw.corpus.size(); ++i) {
    const auto& cert = bw.corpus.at(i);
    const auto issuer_serial = cert.issuer_serial();
    if (!issuer_serial) continue;
    const std::string key = revocation::crlite_key(issuer_serial->authority_key_id,
                                                   issuer_serial->serial);
    (is_revoked_index[i] ? revoked_keys : valid_keys).push_back(key);
  }
  const auto filter = revocation::CrliteFilter::build(revoked_keys, valid_keys);
  std::cout << "CRLite cascade: " << filter.level_count() << " levels, "
            << util::with_commas(filter.total_bytes()) << " bytes for "
            << util::with_commas(filter.enrolled_revoked()) << " revocations among "
            << util::with_commas(filter.enrolled_valid() +
                                 filter.enrolled_revoked())
            << " certificates ("
            << bench::fmt(static_cast<double>(filter.total_bytes()) /
                              std::max<double>(1.0, static_cast<double>(
                                                        filter.enrolled_revoked())),
                          1)
            << " B/revocation; paper cites CRLite as the push-to-all-browsers "
               "design)\n\n";

  // Interception with and without the pushed filter, for a revoked stale
  // certificate whose OCSP traffic the attacker drops.
  const auto& kc = bw.revocations.key_compromise;
  if (!kc.empty()) {
    const auto& victim = kc.front();
    const auto& cert = bw.corpus.at(victim.corpus_index);
    tls::TrustStore trust;
    for (const auto& ca : bw.world->cas()) trust.trust(ca->issuing_key().key_id());

    tls::InterceptionScenario scenario;
    scenario.description = "revoked stale cert, OCSP dropped";
    scenario.hostname = core::strip_wildcard(cert.dns_names().front());
    scenario.stale_certificate = cert;
    scenario.when = victim.event_date + 1;
    scenario.attacker_blocks_revocation = true;

    util::TextTable matrix({"Client", "without CRLite", "with CRLite"});
    const auto before = tls::run_interception(scenario, tls::all_profiles(), trust);
    scenario.crlite = &filter;
    const auto after = tls::run_interception(scenario, tls::all_profiles(), trust);
    std::uint64_t intercepted_before = 0, intercepted_after = 0;
    for (std::size_t i = 0; i < before.size(); ++i) {
      matrix.add_row({before[i].client,
                      before[i].intercepted ? "INTERCEPTED" : "safe",
                      after[i].intercepted ? "INTERCEPTED" : "safe"});
      intercepted_before += before[i].intercepted;
      intercepted_after += after[i].intercepted;
    }
    matrix.print(std::cout);
    std::cout << "Shape check — CRLite stops the blocked-OCSP attack: "
              << (intercepted_after == 0 && intercepted_before > 0 ? "PASS"
                                                                   : "FAIL")
              << " (" << intercepted_before << " -> " << intercepted_after
              << " clients intercepted)\n";
    std::cout << "But CRLite cannot help never-revoked stale certs "
                 "(registrant change / managed departure): those keys are "
                 "legitimately unrevoked.\n\n";
  }

  // ---------------- B. Keyless SSL ----------------
  std::cout << "Keyless SSL (two small worlds, identical seeds):\n";
  util::TextTable keyless_table({"Provider mode", "Managed stale certs detected",
                                 "Provider-held keys (custody ledger)",
                                 "Actually abusable"});
  for (const bool keyless : {false, true}) {
    sim::WorldConfig config = sim::small_test_config();
    config.cloudflare_keyless = keyless;
    sim::World world(config);
    world.run();
    core::CertificateCorpus corpus(world.ct_logs().collect());
    core::ManagedTlsOptions options;
    options.delegation_patterns = world.cloudflare_delegation_patterns();
    options.managed_san_pattern = world.cloudflare_san_pattern();
    const auto stale =
        core::detect_managed_tls_departure(corpus, world.adns(), options);

    std::uint64_t abusable = 0;
    for (const auto& record : stale) {
      if (world.cloudflare().holds_key(corpus.at(record.corpus_index))) ++abusable;
    }
    keyless_table.add_row({keyless ? "Keyless SSL" : "classic managed TLS",
                           std::to_string(stale.size()),
                           std::to_string(world.cloudflare().custody_ledger().size()),
                           std::to_string(abusable)});
    if (keyless) {
      std::cout << keyless_table.to_string();
      std::cout << "Shape check — keyless mode zeroes abusable stale certs: "
                << (abusable == 0 ? "PASS" : "FAIL") << "\n";
    }
  }
  return 0;
}
