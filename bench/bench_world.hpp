#pragma once

// Shared benchmark world: one paper-scale simulation (2013-2023) reused by
// every table/figure reproduction binary. Absolute counts are laptop-scale
// (~10^4 domains, ~10^5 certificates); the *shapes* — who wins, ratios,
// medians, crossovers — are what each bench compares against the paper.

#include <memory>
#include <string>
#include <vector>

#include "stalecert/core/analyzer.hpp"
#include "stalecert/core/corpus.hpp"
#include "stalecert/core/detectors.hpp"
#include "stalecert/sim/world.hpp"

namespace stalecert::bench {

sim::WorldConfig bench_config();

struct BenchWorld {
  std::unique_ptr<sim::World> world;
  core::CertificateCorpus corpus;
  core::RevocationAnalysisResult revocations;          // with paper cutoff
  std::vector<core::StaleCertificate> registrant_change;
  std::vector<core::StaleCertificate> managed_departure;
};

/// Builds and runs the world once per process (cached thereafter), then
/// runs all three detectors with the paper's filters.
const BenchWorld& bench_world();

/// Prints a standard header naming the table/figure being reproduced.
void print_header(const std::string& title, const std::string& paper_claim);

/// Formats a double with fixed precision.
std::string fmt(double value, int decimals = 1);

}  // namespace stalecert::bench
