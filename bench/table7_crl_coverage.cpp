// Reproduces Table 7 (Appendix B): daily CRL download coverage per CA.
// The paper downloads Mozilla-disclosed CRLs daily from 2022-11 to 2023-05
// and achieves 98.4% overall coverage, with a few CAs behind scrape
// protection. Our collector models per-endpoint failure probabilities.
#include <iostream>

#include "bench_world.hpp"
#include "stalecert/util/strings.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;

int main() {
  bench::print_header(
      "Table 7 — CRL download coverage per CA",
      "98.40% of daily CRLs downloaded and parsed overall; most CAs at 100%, "
      "a few (scrape-protected) below");

  const auto& bw = bench::bench_world();
  const auto& collector = bw.world->crl_collection();

  util::TextTable table({"CA", "CRL coverage", "Ratio"});
  std::uint64_t at_full = 0;
  for (const auto& [ca, stats] : collector.coverage()) {
    table.add_row({ca,
                   util::with_commas(stats.succeeded) + " / " +
                       util::with_commas(stats.attempted),
                   util::percent(stats.ratio(), 2)});
    if (stats.succeeded == stats.attempted) ++at_full;
  }
  const auto total = collector.total_coverage();
  table.add_rule();
  table.add_row({"Total coverage",
                 util::with_commas(total.succeeded) + " / " +
                     util::with_commas(total.attempted),
                 util::percent(total.ratio(), 2)});
  table.print(std::cout);

  std::cout << "\nPaper: total 4,963 / 5,044 (98.40%); 70 of 92 CAs at 100%\n";
  std::cout << "Parse failures: " << collector.parse_failures() << "\n";

  std::cout << "\nShape checks:\n";
  std::cout << "  overall coverage > 95%: "
            << (total.ratio() > 0.95 ? "PASS" : "FAIL") << " ("
            << util::percent(total.ratio(), 2) << ")\n";
  std::cout << "  majority of CAs at 100%: "
            << (at_full * 2 > collector.coverage().size() ? "PASS" : "FAIL")
            << " (" << at_full << " of " << collector.coverage().size() << ")\n";
  return 0;
}
