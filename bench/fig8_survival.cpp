// Reproduces Figure 8: survival analysis — the proportion of (eventually
// stale) certificates that had not yet become stale n days after issuance.
// Under an n-day maximum lifetime those certificates would never become
// stale at all (upper bound; assumes no renewal). Paper: at 90 days, 56%
// of registrant-change, 49.5% of managed-TLS and ~1% of key-compromise
// events still lie ahead; at 215 days, 14.5% / 29.5% / ~0%.
#include <iostream>

#include "bench_world.hpp"
#include "stalecert/core/lifetime.hpp"
#include "stalecert/util/strings.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;

int main() {
  bench::print_header(
      "Figure 8 — Certificate survival: P(not yet stale after n days)",
      "S(90): registrant 56%, managed 49.5%, key compromise ~1%; "
      "S(215): 14.5%, 29.5%, ~0%");

  const auto& bw = bench::bench_world();
  struct Class {
    std::string name;
    const std::vector<core::StaleCertificate>* stale;
    double paper_s90;
    double paper_s215;
  };
  const Class classes[] = {
      {"Domain registrant change", &bw.registrant_change, 0.56, 0.145},
      {"Managed TLS departure", &bw.managed_departure, 0.495, 0.295},
      {"Key compromise", &bw.revocations.key_compromise, 0.01, 0.0},
  };

  std::vector<std::int64_t> days;
  for (std::int64_t n = 0; n <= 400; n += 25) days.push_back(n);

  util::TextTable table({"Class", "S(90) measured", "S(90) paper",
                         "S(215) measured", "S(215) paper"});
  std::vector<double> s90;
  for (const auto& cls : classes) {
    const double m90 = core::elimination_upper_bound(bw.corpus, *cls.stale, 90);
    const double m215 = core::elimination_upper_bound(bw.corpus, *cls.stale, 215);
    s90.push_back(m90);
    table.add_row({cls.name, util::percent(m90, 1), util::percent(cls.paper_s90, 1),
                   util::percent(m215, 1), util::percent(cls.paper_s215, 1)});
  }
  table.print(std::cout);

  std::cout << "\nSurvival curves (days -> surviving fraction):\n";
  for (const auto& cls : classes) {
    const auto curve = core::survival_curve(bw.corpus, *cls.stale, days);
    std::cout << "  " << cls.name << ":";
    for (const auto& point : curve) {
      std::cout << " (" << point.days << "," << bench::fmt(point.surviving_fraction, 2)
                << ")";
    }
    std::cout << "\n";
  }

  std::cout << "\nShape checks:\n";
  std::cout << "  key-compromise survival at 90d is tiny (<10%): "
            << (s90[2] < 0.10 ? "PASS" : "FAIL") << " (" << util::percent(s90[2], 1)
            << ")\n";
  std::cout << "  registrant & managed survival at 90d is substantial (>25%): "
            << (s90[0] > 0.25 && s90[1] > 0.25 ? "PASS" : "FAIL") << " ("
            << util::percent(s90[0], 1) << ", " << util::percent(s90[1], 1) << ")\n";
  bool monotone = true;
  for (const auto& cls : classes) {
    const auto curve = core::survival_curve(bw.corpus, *cls.stale, days);
    for (std::size_t i = 1; i < curve.size(); ++i) {
      monotone &= curve[i].surviving_fraction <= curve[i - 1].surviving_fraction;
    }
  }
  std::cout << "  survival curves monotone non-increasing: "
            << (monotone ? "PASS" : "FAIL") << "\n";
  return 0;
}
