// Benchmarks for the stalecert::store archive layer: how fast a simulated
// world saves to and loads from a .scw archive, and — the number that
// motivates the subsystem — how load-and-analyze compares with regenerating
// the world from scratch for every analysis run (generate-once /
// analyze-many, amortizing the expensive simulation).
//
// Save/load stages report through an obs::MetricsPipelineObserver that
// accumulates across all iterations; the snapshot is printed at exit and
// written as JSON when STALECERT_METRICS_JSON=<path> is set (same contract
// as the other benches).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "stalecert/core/pipeline.hpp"
#include "stalecert/obs/observer.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/store/archive.hpp"

namespace {

using namespace stalecert;

obs::MetricsPipelineObserver& telemetry() {
  static obs::MetricsPipelineObserver instance;
  return instance;
}

sim::WorldConfig store_bench_config() {
  sim::WorldConfig config = sim::small_test_config();
  config.seed = 20230512;
  return config;
}

const sim::World& bench_world() {
  static sim::World* world = [] {
    auto* w = new sim::World(store_bench_config());
    w->run();
    return w;
  }();
  return *world;
}

const std::string& archive_path() {
  static const std::string path = [] {
    const char* tmp = std::getenv("TMPDIR");
    std::string p = (tmp != nullptr ? std::string(tmp) : std::string("/tmp"));
    if (!p.empty() && p.back() != '/') p += '/';
    p += "stalecert_bench_store.scw";
    store::save_world(bench_world(), p);
    return p;
  }();
  return path;
}

core::PipelineConfig pipeline_config(const std::vector<std::string>& patterns,
                                     const std::string& san) {
  core::PipelineConfig config;
  config.delegation_patterns = patterns;
  config.managed_san_pattern = san;
  return config;
}

/// The baseline the archive competes against: simulate the world from
/// nothing (what every analysis run pays without an archive).
void BM_ColdGeneration(benchmark::State& state) {
  for (auto _ : state) {
    sim::World world(store_bench_config());
    world.run();
    benchmark::DoNotOptimize(world.stats().certificates_issued);
  }
}
BENCHMARK(BM_ColdGeneration)->Unit(benchmark::kMillisecond);

void BM_SaveWorld(benchmark::State& state) {
  const sim::World& world = bench_world();
  const std::string path = archive_path() + ".save";
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    bytes = store::save_world(world, path, &telemetry());
    benchmark::DoNotOptimize(bytes);
  }
  std::remove(path.c_str());
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) * state.iterations());
}
BENCHMARK(BM_SaveWorld)->Unit(benchmark::kMillisecond);

void BM_LoadWorld(benchmark::State& state) {
  const std::string& path = archive_path();
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const store::LoadedWorld loaded = store::load_world(path, &telemetry());
    bytes = store::ArchiveReader(path).file_size();
    benchmark::DoNotOptimize(loaded.registrations.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) * state.iterations());
}
BENCHMARK(BM_LoadWorld)->Unit(benchmark::kMillisecond);

/// Out-of-core cursor over the biggest segment, no materialization: the
/// per-entry decode cost an archive-larger-than-RAM consumer would pay.
void BM_StreamCtEntries(benchmark::State& state) {
  const std::string& path = archive_path();
  std::uint64_t entries = 0;
  for (auto _ : state) {
    const store::ArchiveReader reader(path);
    auto stream = reader.ct_entries();
    entries = 0;
    while (stream.next_log()) {
      while (const auto entry = stream.next_entry()) {
        benchmark::DoNotOptimize(entry->certificate.serial());
        ++entries;
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(entries) * state.iterations());
}
BENCHMARK(BM_StreamCtEntries)->Unit(benchmark::kMillisecond);

void BM_GenerateAndPipeline(benchmark::State& state) {
  for (auto _ : state) {
    sim::World world(store_bench_config());
    world.run();
    const auto result = core::run_pipeline(
        world.ct_logs(), world.crl_collection().store(),
        world.whois().re_registrations(), world.adns(),
        pipeline_config(world.cloudflare_delegation_patterns(),
                        world.cloudflare_san_pattern()));
    benchmark::DoNotOptimize(result.all_third_party().size());
  }
}
BENCHMARK(BM_GenerateAndPipeline)->Unit(benchmark::kMillisecond);

void BM_LoadAndPipeline(benchmark::State& state) {
  const std::string& path = archive_path();
  for (auto _ : state) {
    const store::LoadedWorld loaded = store::load_world(path, &telemetry());
    const auto result = core::run_pipeline(
        loaded.ct_logs, loaded.revocations, loaded.re_registrations(),
        loaded.adns,
        pipeline_config(loaded.meta.delegation_patterns,
                        loaded.meta.managed_san_pattern));
    benchmark::DoNotOptimize(result.all_third_party().size());
  }
}
BENCHMARK(BM_LoadAndPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Accumulated store_save / store_load telemetry across all iterations.
  std::cerr << "[bench-store] stage trace:\n" << telemetry().trace().render();
  if (const char* path = std::getenv("STALECERT_METRICS_JSON")) {
    std::ofstream out(path);
    if (out) {
      out << telemetry().report_json() << '\n';
      std::cerr << "[bench-store] metrics JSON written to " << path << "\n";
    } else {
      std::cerr << "[bench-store] cannot write metrics JSON to " << path << "\n";
    }
  }
  std::remove(archive_path().c_str());
  return 0;
}
