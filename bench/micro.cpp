// Microbenchmarks (google-benchmark) for the performance-critical pieces
// of the pipeline: hashing, DER codec, Merkle proofs, corpus indexing and
// the three detectors. These quantify the cost of processing a CT-scale
// certificate stream, the operational concern behind the paper's
// "operational burden" tradeoff discussion (§6, §7.2).
#include <benchmark/benchmark.h>

#include "stalecert/core/corpus.hpp"
#include "stalecert/core/detectors.hpp"
#include "stalecert/core/lifetime.hpp"
#include "stalecert/ca/acme.hpp"
#include "stalecert/crypto/sha256.hpp"
#include "stalecert/ct/merkle.hpp"
#include "stalecert/revocation/crlite.hpp"
#include "stalecert/dns/name.hpp"
#include "stalecert/util/rng.hpp"
#include "stalecert/x509/certificate.hpp"

namespace {

using namespace stalecert;
using util::Date;

x509::Certificate make_cert(std::uint64_t serial) {
  const std::string domain = "bench" + std::to_string(serial) + ".example.com";
  return x509::CertificateBuilder{}
      .serial(serial)
      .issuer({"Bench CA", "Bench Org", "US"})
      .subject_cn(domain)
      .validity(Date::parse("2022-01-01") + static_cast<std::int64_t>(serial % 300),
                Date::parse("2022-01-01") + static_cast<std::int64_t>(serial % 300) +
                    365)
      .key(crypto::KeyPair::derive("bk" + std::to_string(serial),
                                   crypto::KeyAlgorithm::kEcdsaP256))
      .dns_names({domain, "*." + domain})
      .authority_key_id(crypto::Sha256::hash("bench-issuer"))
      .server_auth_profile()
      .build();
}

void BM_Sha256(benchmark::State& state) {
  const std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)),
                                       0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_CertificateEncode(benchmark::State& state) {
  const auto cert = make_cert(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cert.to_der());
  }
}
BENCHMARK(BM_CertificateEncode);

void BM_CertificateDecode(benchmark::State& state) {
  const auto der = make_cert(1).to_der();
  for (auto _ : state) {
    benchmark::DoNotOptimize(x509::Certificate::from_der(der));
  }
}
BENCHMARK(BM_CertificateDecode);

void BM_MerkleAppend(benchmark::State& state) {
  const auto der = make_cert(1).to_der();
  for (auto _ : state) {
    state.PauseTiming();
    ct::MerkleTree tree;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) tree.append(der);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MerkleAppend)->Arg(1024);

void BM_MerkleInclusionProof(benchmark::State& state) {
  ct::MerkleTree tree;
  const auto der = make_cert(1).to_der();
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) tree.append(der);
  std::uint64_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.inclusion_proof(index, n));
    index = (index + 97) % n;
  }
}
BENCHMARK(BM_MerkleInclusionProof)->Arg(1024)->Arg(8192);

void BM_E2ldExtraction(benchmark::State& state) {
  const std::vector<std::string> names = {
      "www.example.com", "a.b.c.example.co.uk", "deep.sub.domain.example.org",
      "example.net", "x.anything.ck"};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::e2ld(names[i % names.size()]));
    ++i;
  }
}
BENCHMARK(BM_E2ldExtraction);

void BM_CorpusIndexBuild(benchmark::State& state) {
  std::vector<x509::Certificate> certs;
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(state.range(0)); ++i) {
    certs.push_back(make_cert(i));
  }
  for (auto _ : state) {
    core::CertificateCorpus corpus(certs);
    benchmark::DoNotOptimize(corpus.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CorpusIndexBuild)->Arg(1000)->Arg(10000);

void BM_RegistrantChangeDetection(benchmark::State& state) {
  std::vector<x509::Certificate> certs;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) certs.push_back(make_cert(i));
  const core::CertificateCorpus corpus(std::move(certs));
  std::vector<whois::NewRegistration> events;
  util::Rng rng(4);
  for (std::uint64_t i = 0; i < n / 4; ++i) {
    events.push_back({"bench" + std::to_string(rng.below(n)) + ".example.com",
                      Date::parse("2022-06-01") +
                          static_cast<std::int64_t>(rng.below(200)),
                      Date::parse("2020-01-01")});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::detect_registrant_change(corpus, events));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_RegistrantChangeDetection)->Arg(4000);

void BM_LifetimeCapSimulation(benchmark::State& state) {
  std::vector<x509::Certificate> certs;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) certs.push_back(make_cert(i));
  const core::CertificateCorpus corpus(std::move(certs));
  std::vector<core::StaleCertificate> stale;
  util::Rng rng(9);
  for (std::uint64_t i = 0; i < n; ++i) {
    core::StaleCertificate record;
    record.corpus_index = i;
    record.cls = core::StaleClass::kRegistrantChange;
    record.event_date =
        corpus.at(i).not_before() + static_cast<std::int64_t>(rng.below(300));
    record.staleness =
        util::DateInterval{record.event_date, corpus.at(i).not_after()};
    stale.push_back(record);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::simulate_cap(corpus, stale, 90));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LifetimeCapSimulation)->Arg(10000);

void BM_CrliteBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::string> revoked;
  std::vector<std::string> valid;
  for (std::size_t i = 0; i < n; ++i) revoked.push_back("r" + std::to_string(i));
  for (std::size_t i = 0; i < n * 10; ++i) valid.push_back("v" + std::to_string(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(revocation::CrliteFilter::build(revoked, valid));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n * 11));
}
BENCHMARK(BM_CrliteBuild)->Arg(1000);

void BM_CrliteQuery(benchmark::State& state) {
  std::vector<std::string> revoked;
  std::vector<std::string> valid;
  for (int i = 0; i < 2000; ++i) revoked.push_back("r" + std::to_string(i));
  for (int i = 0; i < 20000; ++i) valid.push_back("v" + std::to_string(i));
  const auto filter = revocation::CrliteFilter::build(revoked, valid);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.is_revoked(valid[i % valid.size()]));
    ++i;
  }
}
BENCHMARK(BM_CrliteQuery);

void BM_AcmeFullFlow(benchmark::State& state) {
  // Account -> order -> challenge -> finalize, the per-certificate cost of
  // issuance automation (the §6 operational-burden side).
  ca::CertificateAuthority authority(
      {.name = "Bench ACME", .organization = "Bench", .self_imposed_max_days = 90,
       .default_days = 90, .automated = true},
      3);
  ca::AcmeServer server(&authority, 9);
  const auto account =
      server.new_account(1, "mailto:x@example.com", Date::parse("2022-01-01"));
  const auto key = crypto::KeyPair::derive("acme", crypto::KeyAlgorithm::kEcdsaP256);
  std::uint64_t n = 0;
  for (auto _ : state) {
    const auto order = server.new_order(
        account, {"bench" + std::to_string(n++) + ".example.com"},
        Date::parse("2022-01-02"));
    server.respond_challenge(order,
                             "bench" + std::to_string(n - 1) + ".example.com",
                             ca::ChallengeType::kHttp01, 1,
                             Date::parse("2022-01-02"));
    benchmark::DoNotOptimize(server.finalize(order, key, Date::parse("2022-01-03")));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AcmeFullFlow);

void BM_OverlapSweepLine(benchmark::State& state) {
  std::vector<x509::Certificate> certs;
  for (std::uint64_t i = 0; i < 500; ++i) {
    certs.push_back(x509::CertificateBuilder{}
                        .serial(i + 1)
                        .subject_cn("crowded.example.com")
                        .validity(Date::parse("2022-01-01") +
                                      static_cast<std::int64_t>(i % 200),
                                  Date::parse("2022-01-01") +
                                      static_cast<std::int64_t>(i % 200) + 365)
                        .key(crypto::KeyPair::derive(
                            "o" + std::to_string(i), crypto::KeyAlgorithm::kEcdsaP256))
                        .add_dns_name("crowded.example.com")
                        .build());
  }
  const core::CertificateCorpus corpus(std::move(certs));
  for (auto _ : state) {
    benchmark::DoNotOptimize(corpus.overlap_stats("crowded.example.com"));
  }
}
BENCHMARK(BM_OverlapSweepLine);

}  // namespace

BENCHMARK_MAIN();
