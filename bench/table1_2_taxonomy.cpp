// Renders Tables 1 and 2 from the typed taxonomy in core/ — the paper's
// framework contribution. Table 1 categorizes certificate information by
// role; Table 2 classifies invalidation events and their security
// implications (which party ends up controlling the stale certificate, and
// whether TLS domain impersonation becomes possible).
#include <iostream>

#include "stalecert/core/taxonomy.hpp"
#include "stalecert/util/strings.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;

int main() {
  std::cout << "Table 1 — Certificate Information Taxonomy\n";
  util::TextTable t1({"Category", "Related fields"});
  for (const auto category :
       {core::InfoCategory::kSubscriberAuthentication,
        core::InfoCategory::kKeyAuthorization,
        core::InfoCategory::kIssuerInformation,
        core::InfoCategory::kCertificateMetadata}) {
    t1.add_row({to_string(category),
                util::join(core::related_fields(category), ", ")});
  }
  t1.print(std::cout);

  std::cout << "\nTable 2 — Certificate Invalidation Events\n";
  util::TextTable t2({"Invalidation event", "Category", "Party", "Impersonation",
                      "Implication"});
  for (const auto event :
       {core::InvalidationEvent::kDomainOwnershipChange,
        core::InvalidationEvent::kDomainUseChange,
        core::InvalidationEvent::kKeyOwnershipChange,
        core::InvalidationEvent::kKeyUseChange,
        core::InvalidationEvent::kManagedTlsDeparture,
        core::InvalidationEvent::kKeyAuthorizationChange,
        core::InvalidationEvent::kRevocationInfoChange}) {
    const auto implication = core::classify(event);
    t2.add_row({to_string(event), to_string(core::category_of(event)),
                implication.party == core::ControllingParty::kThirdParty
                    ? "Third-party"
                    : "First-party",
                implication.enables_impersonation ? "YES" : "no",
                implication.description});
  }
  t2.print(std::cout);

  // Consistency checks against the paper's Table 2.
  int third_party = 0;
  for (const auto cls :
       {core::StaleClass::kKeyCompromise, core::StaleClass::kRegistrantChange,
        core::StaleClass::kManagedTlsDeparture}) {
    const auto implication = core::classify(core::event_of(cls));
    if (implication.party == core::ControllingParty::kThirdParty &&
        implication.enables_impersonation) {
      ++third_party;
    }
  }
  std::cout << "\nShape checks:\n";
  std::cout << "  exactly the three measured classes are third-party "
               "impersonation hazards: "
            << (third_party == 3 ? "PASS" : "FAIL") << "\n";

  // The RFC 5280 critique (§3): Mozilla permits only 6 of 10 reasons, and
  // the mapping onto real events is lossy.
  int permitted = 0;
  for (int code = 0; code <= 10; ++code) {
    if (code == 7) continue;
    if (revocation::mozilla_permitted(static_cast<revocation::ReasonCode>(code))) {
      ++permitted;
    }
  }
  std::cout << "  Mozilla permits 6 of the 10 RFC 5280 reasons: "
            << (permitted == 6 ? "PASS" : "FAIL") << "\n";
  return 0;
}
