// Reproduces Figure 5: (a) monthly new stale certificates and affected
// e2LDs from domain registrant change; (b) the issuer breakdown behind the
// 2018 spike — COMODO-issued Cloudflare "cruise-liner" certificates, which
// pack dozens of customers per certificate and are re-issued on every
// enrollment change, yielding many overlapping stale certificates per
// e2LD. By mid-2019 Cloudflare moves to per-domain certificates from its
// own CA.
#include <iostream>

#include "bench_world.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;

int main() {
  bench::print_header(
      "Figure 5 — Registrant-change stale certificates over time",
      "(a) counts grow strongly after Let's Encrypt adoption; certificate "
      "count spikes harder than e2LD count in 2018 (cruise-liners). "
      "(b) 2018-19 stale certs dominated by 'COMODO ECC DV Secure Server "
      "CA 2'; per-domain 'CloudFlare ECC CA-2' takes over from mid-2019");

  const auto& bw = bench::bench_world();
  core::StalenessAnalyzer analyzer(bw.corpus, bw.registrant_change);

  // --- (a) monthly series ---
  const auto monthly_certs = analyzer.monthly_counts();
  const auto monthly_e2lds = analyzer.monthly_e2lds();
  util::TextTable series({"Month", "New stale certs", "Affected e2LDs",
                          "Certs per e2LD"});
  std::map<int, std::uint64_t> yearly;
  for (const auto& [month, certs] : monthly_certs) {
    const std::uint64_t e2lds = monthly_e2lds.count(month)
                                    ? monthly_e2lds.at(month)
                                    : 0;
    series.add_row({month.to_string(), std::to_string(certs),
                    std::to_string(e2lds),
                    e2lds ? bench::fmt(static_cast<double>(certs) /
                                           static_cast<double>(e2lds),
                                       2)
                          : "-"});
    yearly[month.year] += certs;
  }
  series.print(std::cout);

  std::cout << "\nYearly totals (measured):\n";
  for (const auto& [year, total] : yearly) {
    std::cout << "  " << year << ": " << total << "\n";
  }

  // --- (b) issuer attribution 2018-2019 (and after) ---
  const auto by_issuer = analyzer.monthly_by_label(/*use_organization=*/false);
  util::LabelCounter era_2018_19;
  util::LabelCounter era_2021_plus;
  for (const auto& [month, counter] : by_issuer) {
    for (const auto& [issuer, count] : counter.raw()) {
      if (month.year >= 2018 && month.year <= 2019) {
        era_2018_19.add(issuer, count);
      } else if (month.year >= 2021) {
        era_2021_plus.add(issuer, count);
      }
    }
  }
  std::cout << "\nFigure 5b — issuer breakdown of stale certs, 2018-2019:\n";
  util::TextTable issuers({"Issuer CN", "Stale certs"});
  for (const auto& [issuer, count] : era_2018_19.sorted()) {
    issuers.add_row({issuer, std::to_string(count)});
  }
  issuers.print(std::cout);

  std::cout << "\nIssuer breakdown, 2021+ (per-domain era):\n";
  util::TextTable issuers2({"Issuer CN", "Stale certs"});
  for (const auto& [issuer, count] : era_2021_plus.sorted()) {
    issuers2.add_row({issuer, std::to_string(count)});
  }
  issuers2.print(std::cout);

  // --- cruise-liner overlap observation (§5.2) ---
  // "For a single Cloudflare customer domain, we observe hundreds of
  // temporally-overlapping certificates": report the heaviest overlaps.
  std::size_t deepest = 0;
  std::string deepest_domain;
  for (const auto& record : bw.registrant_change) {
    const auto stats = bw.corpus.overlap_stats(record.trigger_domain);
    if (stats.max_concurrent > deepest) {
      deepest = stats.max_concurrent;
      deepest_domain = record.trigger_domain;
    }
  }
  std::cout << "\nDeepest certificate overlap among stale e2LDs: " << deepest
            << " simultaneously-valid certificates (" << deepest_domain
            << ") — the cruise-liner reissue effect.\n";

  // --- shape checks ---
  std::uint64_t early = 0, late = 0;  // growth across the window
  for (const auto& [year, total] : yearly) {
    if (year <= 2017) {
      early += total;
    } else {
      late += total;
    }
  }
  const std::uint64_t comodo_18_19 =
      era_2018_19.count("COMODO ECC DV Secure Server CA 2");
  const std::uint64_t cf_21 = era_2021_plus.count("CloudFlare ECC CA-2");
  const std::uint64_t comodo_21 =
      era_2021_plus.count("COMODO ECC DV Secure Server CA 2");

  std::cout << "\nShape checks:\n";
  std::cout << "  post-2018 stale certs >> pre-2018: "
            << (late > 2 * early ? "PASS" : "FAIL") << " (" << early << " -> "
            << late << ")\n";
  std::cout << "  COMODO cruise-liners lead 2018-19 cohort: "
            << (comodo_18_19 == era_2018_19.sorted().front().second &&
                        comodo_18_19 > 0
                    ? "PASS"
                    : "FAIL")
            << " (" << comodo_18_19 << " of " << era_2018_19.total() << ")\n";
  std::cout << "  CloudFlare CA overtakes COMODO after the 2019 switch: "
            << (cf_21 > comodo_21 ? "PASS" : "FAIL") << " (" << cf_21 << " vs "
            << comodo_21 << ")\n";
  return 0;
}
