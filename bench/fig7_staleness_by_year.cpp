// Reproduces Figure 7: registrant-change staleness CDFs per event year,
// 2016-2021. The paper's findings are mixed: the long tail (825+ day
// staleness from the pre-2018 lifetime era) disappears after 2018, but
// average staleness does not monotonically improve — it rises between
// 2019 and 2020 and holds between 2020 and 2021.
#include <iostream>

#include "bench_world.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;

int main() {
  bench::print_header(
      "Figure 7 — Registrant-change staleness by event year (2016-2021)",
      "max staleness shrinks after the 825-day (2018) and 398-day (2020) "
      "caps; mean staleness fluctuates rather than monotonically dropping");

  const auto& bw = bench::bench_world();
  core::StalenessAnalyzer analyzer(bw.corpus, bw.registrant_change);

  util::TextTable table({"Event year", "n", "median", "mean", "p90", "max"});
  std::map<int, double> max_by_year;
  std::map<int, double> mean_by_year;
  for (int year = 2016; year <= 2021; ++year) {
    const auto dist = analyzer.staleness_distribution_for_year(year);
    if (dist.empty()) {
      table.add_row({std::to_string(year), "0", "-", "-", "-", "-"});
      continue;
    }
    max_by_year[year] = dist.max();
    mean_by_year[year] = dist.mean();
    table.add_row({std::to_string(year), std::to_string(dist.count()),
                   bench::fmt(dist.median(), 0), bench::fmt(dist.mean(), 0),
                   bench::fmt(dist.quantile(0.9), 0), bench::fmt(dist.max(), 0)});
  }
  table.print(std::cout);

  std::cout << "\nCDF series per year (days -> proportion):\n";
  std::vector<double> xs;
  for (int d = 0; d <= 1000; d += 100) xs.push_back(d);
  for (int year = 2016; year <= 2021; ++year) {
    const auto dist = analyzer.staleness_distribution_for_year(year);
    if (dist.empty()) continue;
    std::cout << "  " << year << ":";
    for (const auto& [x, y] : dist.cdf_series(xs)) {
      std::cout << " (" << x << "," << bench::fmt(y, 2) << ")";
    }
    std::cout << "\n";
  }

  std::cout << "\nShape checks:\n";
  const bool have_both = max_by_year.count(2016) && max_by_year.count(2021);
  std::cout << "  2021 max staleness < 2016/2017-era max (tail curtailed): "
            << (have_both && max_by_year[2021] < max_by_year[2016] ? "PASS"
                                                                   : "FAIL")
            << "\n";
  // Mixed results: means should NOT be strictly decreasing year over year.
  bool strictly_decreasing = true;
  for (int year = 2017; year <= 2021; ++year) {
    if (mean_by_year.count(year) && mean_by_year.count(year - 1) &&
        mean_by_year[year] >= mean_by_year[year - 1]) {
      strictly_decreasing = false;
    }
  }
  std::cout << "  mean staleness fluctuates (not strictly decreasing): "
            << (!strictly_decreasing ? "PASS" : "FAIL") << "\n";
  return 0;
}
