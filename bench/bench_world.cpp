#include "bench_world.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "stalecert/obs/observer.hpp"

namespace stalecert::bench {

sim::WorldConfig bench_config() {
  sim::WorldConfig config;  // defaults carry the paper's measurement windows
  config.seed = 20230512;
  config.initial_domains = 2500;
  config.daily_new_domains_start = 3.0;
  config.daily_new_domains_end = 10.0;
  config.daily_key_compromise_2021 = 0.15;
  config.key_compromise_growth = 3.0;
  config.daily_other_revocations = 3.5;
  config.godaddy_breach_revocations = 120;
  return config;
}

const BenchWorld& bench_world() {
  static const BenchWorld instance = [] {
    const auto t0 = std::chrono::steady_clock::now();
    obs::MetricsPipelineObserver telemetry;
    BenchWorld bw;
    const sim::WorldConfig config = bench_config();
    bw.world = std::make_unique<sim::World>(config);
    bw.world->set_observer(&telemetry);
    bw.world->run();
    bw.world->set_observer(nullptr);  // telemetry outlives this scope only

    ct::CollectStats collect_stats;
    bw.corpus = core::CertificateCorpus(
        bw.world->ct_logs().collect({}, &collect_stats, &telemetry));

    revocation::JoinFilters filters;
    filters.min_revocation_date = config.revocation_cutoff;
    bw.revocations = core::analyze_revocations(
        bw.corpus, bw.world->crl_collection().store(), filters, &telemetry);

    bw.registrant_change = core::detect_registrant_change(
        bw.corpus, bw.world->whois().re_registrations(), {}, &telemetry);

    core::ManagedTlsOptions options;
    options.delegation_patterns = bw.world->cloudflare_delegation_patterns();
    options.managed_san_pattern = bw.world->cloudflare_san_pattern();
    bw.managed_departure = core::detect_managed_tls_departure(
        bw.corpus, bw.world->adns(), options, &telemetry);

    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t0);
    std::cout << "[bench-world] simulated " << config.start << " .. " << config.end
              << " | corpus=" << bw.corpus.size()
              << " certs (raw CT entries=" << collect_stats.raw_entries << ")"
              << " | revoked=" << bw.revocations.all_revoked.size()
              << " (keyCompromise=" << bw.revocations.key_compromise.size() << ")"
              << " | registrant-change stale=" << bw.registrant_change.size()
              << " | managed-TLS stale=" << bw.managed_departure.size() << " | "
              << elapsed.count() << " ms\n";
    // Per-stage perf trajectory: always dumped to stderr; set
    // STALECERT_METRICS_JSON=<path> to also write the full JSON snapshot.
    std::cerr << "[bench-world] stage trace:\n" << telemetry.trace().render();
    if (const char* path = std::getenv("STALECERT_METRICS_JSON")) {
      std::ofstream out(path);
      if (out) {
        out << telemetry.report_json() << '\n';
        std::cerr << "[bench-world] metrics JSON written to " << path << "\n";
      } else {
        std::cerr << "[bench-world] cannot write metrics JSON to " << path << "\n";
      }
    }
    std::cout << "\n";
    return bw;
  }();
  return instance;
}

void print_header(const std::string& title, const std::string& paper_claim) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "Paper: " << paper_claim << "\n"
            << "==============================================================\n";
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

}  // namespace stalecert::bench
