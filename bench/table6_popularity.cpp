// Reproduces Table 6: popularity (Alexa-style rank) of domains appearing
// in stale certificates. The paper samples the Alexa Top 1M biannually
// 2014-2022 and reports, per stale class, how many affected e2LDs ever hit
// the Top 1K / 10K / 100K / 1M. Our universe is ~10^4 domains, so buckets
// are the same *fractions* of the list (0.1% / 1% / 10% / 100%).
#include <iostream>

#include "bench_world.hpp"
#include "stalecert/popularity/toplist.hpp"
#include "stalecert/util/strings.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;

int main() {
  bench::print_header(
      "Table 6 — Domain popularity of stale-certificate domains",
      "long tail dominates: only 2.5% / 2.4% / 3.9% of registrant-change / "
      "managed-TLS / key-compromise domains ever appear in the Top 1M; yet "
      "every class reaches into the Top 1K");

  const auto& bw = bench::bench_world();

  // Build the biannual top-list archive over the simulated universe.
  const std::vector<std::string> universe = bw.world->domain_universe();
  util::Rng rng(777);
  const std::size_t list_size = universe.size();  // "Top 1M" == whole list here
  const auto archive = popularity::generate_biannual_archive(
      universe, util::Date::from_ymd(2014, 1, 1), util::Date::from_ymd(2022, 7, 1),
      list_size, rng);
  std::cout << "Top-list archive: " << archive.sample_count() << " biannual samples, "
            << list_size << " ranked e2LDs each (paper: 17 samples of 1M)\n\n";

  const std::vector<std::uint64_t> bounds = {
      std::max<std::uint64_t>(1, list_size / 1000),  // "Top 1K" of 1M
      std::max<std::uint64_t>(1, list_size / 100),   // "Top 10K"
      std::max<std::uint64_t>(1, list_size / 10),    // "Top 100K"
      list_size};                                    // "Top 1M"
  const std::vector<std::string> bucket_names = {"Top 0.1%", "Top 1%", "Top 10%",
                                                 "Whole list"};

  struct ClassRow {
    std::string name;
    const std::vector<core::StaleCertificate>* stale;
    std::string paper;  // 1K/10K/100K/1M paper values
  };
  const ClassRow classes[] = {
      {"Domain reg. change", &bw.registrant_change, "8 / 307 / 5,839 / 84,319"},
      {"Managed TLS dept.", &bw.managed_departure, "12 / 127 / 1,742 / 14,776"},
      {"Key compromise", &bw.revocations.key_compromise, "41 / 217 / 928 / 6,771"},
  };

  util::TextTable table({"Bucket", classes[0].name, classes[1].name,
                         classes[2].name});
  std::vector<std::map<std::uint64_t, std::uint64_t>> per_class;
  std::vector<std::size_t> totals;
  for (const auto& cls : classes) {
    core::StalenessAnalyzer analyzer(bw.corpus, *cls.stale);
    const auto e2lds = analyzer.affected_e2lds();
    per_class.push_back(archive.bucket_counts(e2lds, bounds));
    totals.push_back(e2lds.size());
  }
  for (std::size_t b = 0; b < bounds.size(); ++b) {
    table.add_row({bucket_names[b],
                   util::with_commas(per_class[0].at(bounds[b])),
                   util::with_commas(per_class[1].at(bounds[b])),
                   util::with_commas(per_class[2].at(bounds[b]))});
  }
  std::vector<std::string> total_row = {"Total stale e2LDs"};
  std::vector<std::string> pct_row = {"% in whole list"};
  for (std::size_t c = 0; c < 3; ++c) {
    total_row.push_back(util::with_commas(totals[c]));
    const double pct = totals[c] == 0
                           ? 0.0
                           : static_cast<double>(per_class[c].at(bounds.back())) /
                                 static_cast<double>(totals[c]);
    pct_row.push_back(util::percent(pct, 1));
  }
  table.add_row(total_row);
  table.add_row(pct_row);
  table.print(std::cout);

  std::cout << "\nPaper reference rows (Top 1K / 10K / 100K / 1M):\n";
  for (const auto& cls : classes) {
    std::cout << "  " << cls.name << ": " << cls.paper << "\n";
  }

  std::cout << "\nShape checks:\n";
  bool monotone = true;
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t b = 1; b < bounds.size(); ++b) {
      monotone &= per_class[c].at(bounds[b]) >= per_class[c].at(bounds[b - 1]);
    }
  }
  std::cout << "  bucket counts monotone in bucket size: "
            << (monotone ? "PASS" : "FAIL") << "\n";
  // Long-tail property: even the largest bucket captures a small share of
  // stale domains relative to the universe of stale e2LDs for top buckets.
  const bool long_tail =
      per_class[0].at(bounds[0]) * 20 < per_class[0].at(bounds.back()) + 1;
  std::cout << "  top bucket is a thin slice (long tail): "
            << (long_tail ? "PASS" : "FAIL") << "\n";
  return 0;
}
