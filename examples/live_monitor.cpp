// Live monitoring end-to-end: the extend -> ingest -> query loop that
// keeps a serving index fresh without ever re-running the full pipeline.
// Everything staled's --feed-dir/POST /ingest path does, as direct library
// calls: archive a base world, build the feed runtime, emit a .scwd delta
// per day past the horizon, ingest each one, and watch query answers
// change as the snapshot advances.
//
//   $ ./live_monitor [days]
#include <cstdlib>
#include <iostream>

#include "stalecert/feed/extend.hpp"
#include "stalecert/feed/runtime.hpp"
#include "stalecert/query/index.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/store/archive.hpp"

using namespace stalecert;

int main(int argc, char** argv) {
  const std::int64_t days = argc > 1 ? std::atoll(argv[1]) : 5;

  // Day 0: generate and archive the base world — in production this is
  // `world_gen --profile small base.scw`.
  sim::World world(sim::small_test_config());
  world.run();
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string base_path =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/live_monitor.scw";
  store::save_world(world, base_path, nullptr, "small");

  // The serving side: one FeedRuntime per process. Its snapshot is what
  // staled would publish into the SnapshotCell.
  feed::FeedRuntime runtime(base_path);
  auto snapshot = runtime.index();
  std::cout << "base snapshot: horizon " << snapshot->meta().end.to_string()
            << ", " << snapshot->stats().certificates << " certificates, "
            << snapshot->stats().stale_records << " stale records\n";

  // The producer side: advance the simulated world one day at a time and
  // encode each day as a .scwd — `world_gen --extend-days N --slice-days 1`.
  const auto deltas =
      feed::extend_world(store::ArchiveReader(base_path).meta(), days);

  for (const auto& delta : deltas) {
    const auto bytes = feed::write_delta_bytes(delta);
    query::IngestSource source;  // what POST /ingest hands the runtime
    source.bytes.assign(bytes.begin(), bytes.end());
    source.origin = "live_monitor";
    const query::IngestOutcome outcome = runtime.ingest(source);
    if (!outcome.ok) {
      std::cerr << "ingest failed (" << outcome.status
                << "): " << outcome.message << '\n';
      return 1;
    }

    // Each apply yields a new immutable snapshot; readers holding the old
    // one are unaffected (that is the SnapshotCell swap in staled).
    snapshot = outcome.index;
    std::cout << feed::delta_file_name(delta.meta) << ": +"
              << outcome.new_certificates << " certs, +"
              << outcome.new_stale_records << " stale records"
              << (outcome.rebuilt ? " (full rebuild)" : "") << " -> generation "
              << outcome.feed_generation << ", horizon " << outcome.horizon
              << '\n';

    // Query the fresh snapshot: who became at-risk on the new day?
    const auto new_records = snapshot->stale_at(delta.meta.to_day);
    for (const auto r : new_records) {
      const query::StaleRecord& record = snapshot->stale_records()[r];
      if (record.event_date < delta.meta.from_day) continue;  // pre-existing
      std::cout << "  new risk: " << record.trigger_domain << " ("
                << core::to_string(record.cls) << ", stale until "
                << record.staleness.end().to_string() << ")\n";
    }
  }

  std::cout << "final snapshot: horizon " << snapshot->meta().end.to_string()
            << ", " << snapshot->stats().certificates << " certificates, "
            << snapshot->stats().stale_records << " stale records, patch "
            << "generation " << snapshot->patch_generation() << '\n';
  return 0;
}
