// Registrant-change walk-through: a domain's registration lapses, a
// drop-catcher re-registers it, and the previous owner's still-valid
// certificate becomes a third-party stale certificate (paper §3.1 / §5.2).
// Shows the registry lifecycle day by day and the detection via WHOIS
// creation dates.
//
//   $ ./registrant_watch
#include <iostream>

#include "stalecert/ca/authority.hpp"
#include "stalecert/core/bygone.hpp"
#include "stalecert/core/corpus.hpp"
#include "stalecert/core/detectors.hpp"
#include "stalecert/ct/logset.hpp"
#include "stalecert/registrar/lifecycle.hpp"
#include "stalecert/whois/database.hpp"

using namespace stalecert;
using util::Date;

int main() {
  registrar::Registry registry;
  whois::WhoisDatabase whois_db;
  ct::LogSet logs;
  logs.add_log(ct::CtLog{1, "log", "Op", {.chrome = true, .apple = true}});
  ca::CertificateAuthority ca(
      {.name = "Demo CA", .organization = "Demo", .default_days = 365}, 7);
  ca.attach_ct(&logs);

  auto observe_whois = [&](const std::string& domain, Date date) {
    const auto* reg = registry.find(domain);
    if (!reg) return;
    whois::ThinRecord record;
    record.domain = domain;
    record.registrar = reg->registrar;
    record.creation_date = reg->creation_date;
    record.updated_date = date;
    record.expiration_date = reg->expiration_date;
    // Through the text round-trip, as a bulk WHOIS feed would deliver it.
    whois_db.ingest_text(whois::emit_text(record, whois::TextFormat::kVerisign));
  };

  // Alice registers shop.com and gets a one-year certificate.
  const Date reg_day = Date::parse("2021-03-01");
  registry.register_domain("shop.com", /*registrant=*/1, "GoRegister", reg_day, 1);
  observe_whois("shop.com", reg_day);
  ca::IssuanceRequest request;
  request.domains = {"shop.com", "www.shop.com"};
  request.subscriber_key =
      crypto::KeyPair::derive("alice-key", crypto::KeyAlgorithm::kEcdsaP256);
  request.date = Date::parse("2021-09-01");  // renewed mid-year
  const auto cert = ca.issue_unchecked(request);
  std::cout << "2021-09-01: certificate issued to Alice, valid until "
            << cert.not_after() << "\n";

  // Alice lets the registration lapse; walk the lifecycle.
  for (Date day = Date::parse("2022-03-01"); day <= Date::parse("2022-06-01");
       day += 7) {
    const auto released = registry.advance(day);
    static registrar::DomainState last = registrar::DomainState::kActive;
    const auto state = registry.state("shop.com");
    if (state != last) {
      std::cout << day << ": shop.com is now '" << to_string(state) << "'\n";
      last = state;
    }
    if (!released.empty()) break;
  }

  // Mallory drop-catches the released name. The registry creation date
  // resets — the one signal public WHOIS exposes.
  const Date rereg_day = Date::parse("2022-06-03");
  registry.register_domain("shop.com", /*registrant=*/2, "DropCatchCo", rereg_day, 1);
  observe_whois("shop.com", rereg_day);
  std::cout << rereg_day << ": shop.com re-registered by a new owner\n\n";

  // Detection: join WHOIS re-registrations against the CT corpus.
  core::CertificateCorpus corpus(logs.collect());
  const auto stale =
      core::detect_registrant_change(corpus, whois_db.re_registrations());

  for (const auto& record : stale) {
    const auto& c = corpus.at(record.corpus_index);
    std::cout << "STALE: cert serial " << c.serial_hex() << " for "
              << record.trigger_domain << "\n"
              << "  registrant changed " << record.event_date
              << ", cert valid until " << c.not_after() << "\n"
              << "  -> Alice can impersonate Mallory's shop.com for "
              << record.staleness_days() << " more days\n";
  }
  if (stale.empty()) std::cout << "no stale certificates detected\n";

  // Defender's view (BygoneSSL): Mallory, as the NEW owner, checks CT for
  // certificates the previous owner may still hold keys for.
  const auto bygone = core::check_bygone(corpus, "shop.com", rereg_day);
  std::cout << "\nBygoneSSL check for the new owner:\n";
  for (const auto& b : bygone.certificates) {
    std::cout << "  serial " << corpus.at(b.corpus_index).serial_hex()
              << " still valid " << b.residual_days << " more days, covering";
    for (const auto& name : b.covered_names) std::cout << " " << name;
    std::cout << "\n";
  }
  if (!bygone.clean()) {
    std::cout << "  -> safe (absent revocation) only after " << bygone.safe_after()
              << "\n";
  }

  // Ground truth from the registry: the change was a creation-date reset.
  std::cout << "\nregistry ownership log:\n";
  for (const auto& change : registry.ownership_changes()) {
    std::cout << "  " << change.date << " " << change.domain << ": "
              << to_string(change.kind)
              << (change.creation_date_reset ? " (creation date reset)" : "")
              << "\n";
  }
  return 0;
}
