// Full measurement survey: the one-call pipeline API over a simulated
// world, printing a compact report covering the paper's whole arc —
// detection (Table 4), staleness (Fig. 6), survival (Fig. 8), lifetime
// caps (Fig. 9) and the mitigation outlook (§7.2).
//
//   $ ./full_survey [seed]
#include <cstdlib>
#include <iostream>

#include "stalecert/core/pipeline.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/util/strings.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;

int main(int argc, char** argv) {
  sim::WorldConfig config = sim::small_test_config();
  if (argc > 1) config.seed = static_cast<std::uint64_t>(std::atoll(argv[1]));

  sim::World world(config);
  world.run();

  core::PipelineConfig pipeline_config;
  pipeline_config.delegation_patterns = world.cloudflare_delegation_patterns();
  pipeline_config.managed_san_pattern = world.cloudflare_san_pattern();
  const auto result = core::run_pipeline(
      world.ct_logs(), world.crl_collection().store(),
      world.whois().re_registrations(), world.adns(), pipeline_config);

  std::cout << "=== stalecert survey (seed " << config.seed << ") ===\n";
  std::cout << "corpus: " << result.corpus.size() << " certificates ("
            << result.collect_stats.raw_entries << " raw CT entries, "
            << result.collect_stats.dropped_anomalous_fqdns
            << " anomalous FQDNs dropped)\n\n";

  util::TextTable detection({"Class", "Stale certs", "e2LDs", "Median staleness",
                             "S(90d)"});
  for (const auto cls :
       {core::StaleClass::kKeyCompromise, core::StaleClass::kRegistrantChange,
        core::StaleClass::kManagedTlsDeparture}) {
    const auto& stale = result.of(cls);
    core::StalenessAnalyzer analyzer(result.corpus, stale);
    const auto dist = analyzer.staleness_distribution();
    detection.add_row(
        {to_string(cls), std::to_string(stale.size()),
         std::to_string(analyzer.affected_e2lds().size()),
         stale.empty() ? "-" : std::to_string(static_cast<int>(dist.median())) + "d",
         util::percent(core::elimination_upper_bound(result.corpus, stale, 90), 1)});
  }
  detection.print(std::cout);

  const auto all = result.all_third_party();
  std::cout << "\nlifetime-cap sweep over all " << all.size()
            << " third-party stale certificates:\n";
  util::TextTable caps({"Cap", "Still stale", "Staleness-days cut"});
  for (const auto& cap : core::simulate_caps(result.corpus, all, {7, 45, 90, 215, 398})) {
    caps.add_row({std::to_string(cap.cap_days) + "d",
                  std::to_string(cap.surviving_count) + " / " +
                      std::to_string(cap.original_count),
                  util::percent(cap.staleness_days_reduction(), 1)});
  }
  caps.print(std::cout);

  std::cout <<
      "\nmitigation outlook (see bench_ablation_mitigations / _dane):\n"
      "  revocation:  absent or soft-fail-bypassable in mainstream clients\n"
      "  CRLite:      fixes the bypass, but only for *revoked* certs\n"
      "  Keyless SSL: removes managed-TLS key custody entirely\n"
      "  STAR / 7d:   caps any staleness at days (see the 7d row above)\n"
      "  DANE:        hours-scale TTLs replace month-scale lifetimes\n";
  return 0;
}
