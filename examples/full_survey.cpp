// Full measurement survey: the one-call pipeline API over a simulated
// world, printing a compact report covering the paper's whole arc —
// detection (Table 4), staleness (Fig. 6), survival (Fig. 8), lifetime
// caps (Fig. 9) and the mitigation outlook (§7.2).
//
//   $ ./full_survey [seed] [--metrics-json <path|->] [--metrics-prom <path>]
//                   [--save-world <path>] [--load-world <path>]
//
// --metrics-json writes the observability snapshot (per-stage durations,
// funnel counters, span trace) as JSON to <path>, or to stderr for "-".
// --metrics-prom writes the same registry in Prometheus text format.
// --save-world archives the simulated world's datasets as a .scw file
// (see src/store/README.md); --load-world skips the simulation and
// analyzes a previously saved archive instead.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "stalecert/core/pipeline.hpp"
#include "stalecert/obs/exposition.hpp"
#include "stalecert/obs/observer.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/store/archive.hpp"
#include "stalecert/util/strings.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;

namespace {

bool write_text(const std::string& path, const std::string& text,
                const char* what) {
  if (path == "-") {
    std::cerr << text << '\n';
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << what << " to " << path << "\n";
    return false;
  }
  out << text << '\n';
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  sim::WorldConfig config = sim::small_test_config();
  std::string metrics_json_path;
  std::string metrics_prom_path;
  std::string save_world_path;
  std::string load_world_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-json" || arg == "--metrics-prom" ||
        arg == "--save-world" || arg == "--load-world") {
      if (i + 1 >= argc) {
        std::cerr << "usage: full_survey [seed] [--metrics-json <path|->]"
                     " [--metrics-prom <path|->] [--save-world <path>]"
                     " [--load-world <path>]\n"
                  << arg << " requires a path argument\n";
        return 2;
      }
      const std::string value = argv[++i];
      if (arg == "--metrics-json") {
        metrics_json_path = value;
      } else if (arg == "--metrics-prom") {
        metrics_prom_path = value;
      } else if (arg == "--save-world") {
        save_world_path = value;
      } else {
        load_world_path = value;
      }
    } else {
      config.seed = static_cast<std::uint64_t>(std::atoll(arg.c_str()));
    }
  }
  if (!save_world_path.empty() && !load_world_path.empty()) {
    std::cerr << "--save-world and --load-world cannot be combined\n";
    return 2;
  }
  const bool want_metrics = !metrics_json_path.empty() || !metrics_prom_path.empty();

  obs::MetricsPipelineObserver telemetry;
  obs::PipelineObserver* observer = want_metrics ? &telemetry : nullptr;

  core::PipelineConfig pipeline_config;
  pipeline_config.observer = observer;

  std::uint64_t seed = config.seed;
  core::PipelineResult result;
  try {
    if (!load_world_path.empty()) {
      const store::LoadedWorld loaded = store::load_world(load_world_path, observer);
      seed = loaded.meta.seed;
      pipeline_config.delegation_patterns = loaded.meta.delegation_patterns;
      pipeline_config.managed_san_pattern = loaded.meta.managed_san_pattern;
      result = core::run_pipeline(loaded.ct_logs, loaded.revocations,
                                  loaded.re_registrations(), loaded.adns,
                                  pipeline_config);
    } else {
      sim::World world(config);
      world.set_observer(observer);
      world.run();
      if (!save_world_path.empty()) {
        store::save_world(world, save_world_path, observer, "small");
      }
      pipeline_config.delegation_patterns = world.cloudflare_delegation_patterns();
      pipeline_config.managed_san_pattern = world.cloudflare_san_pattern();
      result = core::run_pipeline(
          world.ct_logs(), world.crl_collection().store(),
          world.whois().re_registrations(), world.adns(), pipeline_config);
    }
  } catch (const stalecert::Error& e) {
    std::cerr << "full_survey: " << e.what() << '\n';
    return 1;
  }

  std::cout << "=== stalecert survey (seed " << seed << ") ===\n";
  std::cout << "corpus: " << result.corpus.size() << " certificates ("
            << result.collect_stats.raw_entries << " raw CT entries, "
            << result.collect_stats.dropped_anomalous_fqdns
            << " anomalous FQDNs dropped)\n\n";

  util::TextTable detection({"Class", "Stale certs", "e2LDs", "Median staleness",
                             "S(90d)"});
  for (const auto cls : core::kAllStaleClasses) {
    const auto& stale = result.of(cls);
    core::StalenessAnalyzer analyzer(result.corpus, stale);
    const auto dist = analyzer.staleness_distribution();
    detection.add_row(
        {to_string(cls), std::to_string(stale.size()),
         std::to_string(analyzer.affected_e2lds().size()),
         stale.empty() ? "-" : std::to_string(static_cast<int>(dist.median())) + "d",
         util::percent(core::elimination_upper_bound(result.corpus, stale, 90), 1)});
  }
  detection.print(std::cout);

  const auto all = result.all_third_party();
  std::cout << "\nlifetime-cap sweep over all " << all.size()
            << " third-party stale certificates:\n";
  util::TextTable caps({"Cap", "Still stale", "Staleness-days cut"});
  for (const auto& cap : core::simulate_caps(result.corpus, all, {7, 45, 90, 215, 398})) {
    caps.add_row({std::to_string(cap.cap_days) + "d",
                  std::to_string(cap.surviving_count) + " / " +
                      std::to_string(cap.original_count),
                  util::percent(cap.staleness_days_reduction(), 1)});
  }
  caps.print(std::cout);

  std::cout <<
      "\nmitigation outlook (see bench_ablation_mitigations / _dane):\n"
      "  revocation:  absent or soft-fail-bypassable in mainstream clients\n"
      "  CRLite:      fixes the bypass, but only for *revoked* certs\n"
      "  Keyless SSL: removes managed-TLS key custody entirely\n"
      "  STAR / 7d:   caps any staleness at days (see the 7d row above)\n"
      "  DANE:        hours-scale TTLs replace month-scale lifetimes\n";

  bool ok = true;
  if (!metrics_json_path.empty()) {
    ok &= write_text(metrics_json_path, telemetry.report_json(), "metrics JSON");
  }
  if (!metrics_prom_path.empty()) {
    ok &= write_text(metrics_prom_path,
                     obs::to_prometheus(telemetry.registry().snapshot()),
                     "Prometheus metrics");
  }
  return ok ? 0 : 1;
}
