// Lifetime-policy analysis (paper §6): given a simulated world's stale
// certificates, sweep hypothetical maximum certificate lifetimes and print
// the security/operational tradeoff: staleness-days eliminated vs extra
// issuance load on CAs and CT logs.
//
//   $ ./lifetime_policy [max_days...]     (defaults: 45 90 215 398 825)
#include <cstdlib>
#include <iostream>

#include "stalecert/core/analyzer.hpp"
#include "stalecert/core/corpus.hpp"
#include "stalecert/core/detectors.hpp"
#include "stalecert/core/lifetime.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/util/strings.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;

int main(int argc, char** argv) {
  std::vector<std::int64_t> caps = {45, 90, 215, 398, 825};
  if (argc > 1) {
    caps.clear();
    for (int i = 1; i < argc; ++i) caps.push_back(std::atol(argv[i]));
  }

  sim::World world(sim::small_test_config());
  world.run();
  core::CertificateCorpus corpus(world.ct_logs().collect());

  // Gather every third-party stale certificate.
  const auto revocations =
      core::analyze_revocations(corpus, world.crl_collection().store(), {});
  auto stale = core::detect_registrant_change(
      corpus, world.whois().re_registrations());
  core::ManagedTlsOptions options;
  options.delegation_patterns = world.cloudflare_delegation_patterns();
  options.managed_san_pattern = world.cloudflare_san_pattern();
  const auto managed =
      core::detect_managed_tls_departure(corpus, world.adns(), options);
  stale.insert(stale.end(), revocations.key_compromise.begin(),
               revocations.key_compromise.end());
  stale.insert(stale.end(), managed.begin(), managed.end());

  std::cout << "corpus: " << corpus.size() << " certificates, " << stale.size()
            << " third-party stale\n\n";

  // Operational-cost proxy: issuance multiplier. A cert that would have
  // lived L days needs ceil(L / cap) issuances under the cap.
  double base_issuances = 0;
  std::vector<double> capped_issuances(caps.size(), 0);
  for (const auto& cert : corpus.certificates()) {
    base_issuances += 1;
    for (std::size_t i = 0; i < caps.size(); ++i) {
      const double lifetime = static_cast<double>(cert.lifetime_days());
      capped_issuances[i] +=
          std::max(1.0, std::ceil(lifetime / static_cast<double>(caps[i])));
    }
  }

  util::TextTable table({"Max lifetime", "Stale certs left", "Staleness-days cut",
                         "Elimination upper bound", "Issuance multiplier"});
  const auto results = core::simulate_caps(corpus, stale, caps);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    table.add_row({std::to_string(r.cap_days) + "d",
                   std::to_string(r.surviving_count) + " / " +
                       std::to_string(r.original_count),
                   util::percent(r.staleness_days_reduction(), 1),
                   util::percent(
                       core::elimination_upper_bound(corpus, stale, r.cap_days), 1),
                   base_issuances > 0
                       ? std::to_string(capped_issuances[i] / base_issuances)
                                 .substr(0, 4) +
                             "x"
                       : "-"});
  }
  table.print(std::cout);

  std::cout << "\nReading: shorter lifetimes cut staleness sharply but multiply\n"
               "issuance volume — the operational tradeoff the CA/Browser Forum\n"
               "debates (paper §6/§7.2). 90 days is the paper's sweet spot:\n"
               "~75% staleness reduction for a ~4x issuance multiplier.\n";
  return 0;
}
