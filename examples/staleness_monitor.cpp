// Staleness monitoring with the embedded serving index: simulate a world,
// run the measurement pipeline once, build a query::StalenessIndex, and
// answer the operational questions the staled daemon serves over HTTP —
// here as direct library calls (no sockets).
//
//   $ ./staleness_monitor [seed]
#include <cstdlib>
#include <iostream>

#include "stalecert/core/pipeline.hpp"
#include "stalecert/query/index.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;

int main(int argc, char** argv) {
  sim::WorldConfig config = sim::small_test_config();
  if (argc > 1) config.seed = static_cast<std::uint64_t>(std::atoll(argv[1]));

  sim::World world(config);
  world.run();

  core::PipelineConfig pipeline_config;
  pipeline_config.revocation_cutoff = config.revocation_cutoff;
  pipeline_config.delegation_patterns = world.cloudflare_delegation_patterns();
  pipeline_config.managed_san_pattern = world.cloudflare_san_pattern();
  core::PipelineResult result = core::run_pipeline(
      world.ct_logs(), world.crl_collection().store(),
      world.whois().re_registrations(), world.adns(), pipeline_config);

  store::ArchiveMeta meta;
  meta.profile = "small";
  meta.seed = config.seed;
  meta.start = config.start;
  meta.end = config.end;
  meta.revocation_cutoff = config.revocation_cutoff;

  const query::StalenessIndex index(std::move(result), meta);
  const auto& stats = index.stats();
  std::cout << "indexed " << stats.certificates << " certificates, "
            << stats.stale_records << " stale records, "
            << stats.distinct_keys << " distinct keys, "
            << stats.revoked_serials << " revoked serials\n\n";

  if (index.stale_records().empty()) {
    std::cout << "no staleness in this world; try another seed\n";
    return 0;
  }

  // Walk the first stale record of each class through the query surface.
  for (const auto cls : core::kAllStaleClasses) {
    const auto& of_class = index.of_class(cls);
    if (of_class.empty()) continue;
    const auto& record = index.record(of_class.front());
    const auto& cert = index.corpus().at(record.cert_index);
    const std::string domain = query::normalize_domain(record.trigger_domain);

    std::cout << "=== " << core::to_string(cls) << " — " << domain << " ===\n";
    std::cout << "certificate serial " << cert.serial_hex() << ", window "
              << record.staleness.begin().to_string() << " .. "
              << record.staleness.end().to_string() << "\n";

    // Point-in-time: was the domain endangered the day after the event?
    const util::Date probe = record.event_date + 1;
    std::cout << "is_stale(" << domain << ", " << probe.to_string()
              << ") = " << (index.is_stale(domain, probe) ? "yes" : "no")
              << "\n";

    // Custody: every certificate sharing this record's private key.
    const auto custody =
        index.certs_for_key(cert.subject_key().fingerprint_hex());
    std::cout << "key custody: " << custody.size()
              << " certificate(s) share this private key\n";

    // Revocation join: was the certificate ever revoked?
    if (const auto status = index.revocation_status(cert.serial_hex())) {
      std::cout << "revoked " << status->revocation_date.to_string()
                << (status->key_compromise() ? " (key compromise)" : "")
                << "\n";
    } else {
      std::cout << "never revoked — staleness without revocation\n";
    }

    // Aggregate: everything endangering the domain, ever.
    const auto summary = index.stale_summary(domain);
    std::cout << "domain summary: " << summary.stale_total()
              << " stale record(s) across " << summary.certificates
              << " certificate(s)\n\n";
  }

  // The corpus-wide time dimension: how many windows are open at a few
  // points across the measurement window?
  util::TextTable table({"Date", "Open staleness windows", "Valid certs"});
  const std::int64_t span =
      meta.end.days_since_epoch() - meta.start.days_since_epoch();
  for (int i = 1; i <= 4; ++i) {
    const util::Date date = meta.start + (span * i) / 5;
    table.add_row({date.to_string(),
                   std::to_string(index.stale_at(date).size()),
                   std::to_string(index.valid_cert_count(date))});
  }
  table.print(std::cout);
  return 0;
}
