// Why revocation doesn't save you from stale certificates (paper §2.4):
// runs the interception experiment — a third party holding a stale
// certificate's key, positioned on-path — against the browser policies the
// paper characterizes, across four scenarios.
//
//   $ ./revocation_failure
#include <iostream>

#include "stalecert/tls/interception.hpp"
#include "stalecert/util/table.hpp"

using namespace stalecert;
using util::Date;

int main() {
  const crypto::KeyPair issuer_key =
      crypto::KeyPair::derive("demo-issuer", crypto::KeyAlgorithm::kEcdsaP384);
  tls::TrustStore trust;
  trust.trust(issuer_key.key_id());

  auto make_cert = [&](bool must_staple) {
    x509::CertificateBuilder builder;
    builder.serial(77)
        .issuer({"Demo CA", "Demo", "US"})
        .subject_cn("victim.com")
        .validity(Date::parse("2022-01-01"), Date::parse("2022-12-31"))
        .key(crypto::KeyPair::derive("stale", crypto::KeyAlgorithm::kEcdsaP256))
        .dns_names({"victim.com", "www.victim.com"})
        .authority_key_id(issuer_key.key_id())
        .sct_log_ids({1});
    if (must_staple) builder.ocsp_must_staple();
    return builder.build();
  };

  // OCSP responder that knows the certificate is revoked.
  revocation::OcspResponder responder(issuer_key.key_id());
  {
    revocation::Crl crl({"Demo CA", "Demo", "US"}, issuer_key.key_id(),
                        Date::parse("2022-05-01"), Date::parse("2022-05-08"));
    crl.add({make_cert(false).serial(), Date::parse("2022-04-20"),
             revocation::ReasonCode::kKeyCompromise});
    responder.update_from_crl(crl);
  }

  struct Case {
    const char* label;
    bool revoked;
    bool blocked;
    bool must_staple;
  };
  const Case cases[] = {
      {"not revoked (registrant change / CDN departure)", false, true, false},
      {"revoked, attacker drops OCSP traffic", true, true, false},
      {"revoked, revocation reachable", true, false, false},
      {"revoked + Must-Staple, OCSP dropped", true, true, true},
  };

  util::TextTable table({"Scenario", "Chrome", "Edge", "Firefox", "Safari",
                         "curl", "hardened"});
  for (const auto& c : cases) {
    tls::InterceptionScenario scenario;
    scenario.description = c.label;
    scenario.hostname = "victim.com";
    scenario.stale_certificate = make_cert(c.must_staple);
    scenario.when = Date::parse("2022-06-15");
    scenario.attacker_blocks_revocation = c.blocked;
    scenario.responder = c.revoked ? &responder : nullptr;

    const auto outcomes =
        tls::run_interception(scenario, tls::all_profiles(), trust);
    std::vector<std::string> row = {c.label};
    for (const auto& outcome : outcomes) {
      row.push_back(outcome.intercepted ? "INTERCEPTED" : "safe");
    }
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout <<
      "\nTakeaways (matching paper §2.4):\n"
      " * Without revocation, every mainstream client is interceptable —\n"
      "   and two of the three stale-cert classes are never revoked.\n"
      " * Even WITH revocation, an on-path attacker defeats soft-fail\n"
      "   checking by dropping OCSP/CRL traffic; Chrome and Edge never ask.\n"
      " * OCSP Must-Staple closes the loophole, but only Firefox enforces\n"
      "   it. Expiration remains the only reliable backstop — which is why\n"
      "   the paper turns to shorter certificate lifetimes.\n";
  return 0;
}
