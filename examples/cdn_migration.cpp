// Managed-TLS departure walk-through (paper §3.1 / §5.3 / Figure 3): a
// customer enrolls with a Cloudflare-style CDN, the CDN issues a
// cruise-liner certificate it holds the keys for, the customer migrates
// away — and the CDN still holds valid keys for the domain. Detection via
// day-over-day active-DNS diffs.
//
//   $ ./cdn_migration
#include <iostream>

#include "stalecert/ca/authority.hpp"
#include "stalecert/cdn/provider.hpp"
#include "stalecert/core/corpus.hpp"
#include "stalecert/core/detectors.hpp"
#include "stalecert/ct/logset.hpp"
#include "stalecert/dns/scan.hpp"

using namespace stalecert;
using util::Date;

int main() {
  ct::LogSet logs;
  logs.add_log(ct::CtLog{1, "log", "Op", {.chrome = true, .apple = true}});
  ca::CertificateAuthority comodo(
      {.name = "COMODO ECC DV Secure Server CA 2", .organization = "COMODO",
       .default_days = 365},
      1);
  comodo.attach_ct(&logs);
  ca::CertificateAuthority cf_ca(
      {.name = "CloudFlare ECC CA-2", .organization = "Cloudflare",
       .default_days = 365},
      2);
  cf_ca.attach_ct(&logs);

  dns::DnsDatabase dnsdb;
  for (const char* domain : {"alpha.com", "beta.com", "gamma.com"}) {
    dnsdb.add_to_zone("com", domain);
  }

  cdn::ProviderConfig config;
  config.name = "Cloudflare";
  config.ns_suffix = "ns.cloudflare.com";
  config.cname_suffix = "cdn.cloudflare.com";
  config.managed_san_pattern = "sni*.cloudflaressl.com";
  config.cruiseliner_capacity = 16;  // pre-2019 packing behaviour
  config.actor = 99;
  cdn::ManagedTlsProvider cloudflare(config, &comodo, &cf_ca, &dnsdb, 5);

  // Three customers enroll; they end up packed into one cruise-liner.
  cloudflare.enroll("alpha.com", cdn::DelegationKind::kCname, Date::parse("2022-01-10"));
  cloudflare.enroll("beta.com", cdn::DelegationKind::kNs, Date::parse("2022-02-01"));
  const auto packed =
      cloudflare.enroll("gamma.com", cdn::DelegationKind::kCname, Date::parse("2022-02-20"));
  std::cout << "cruise-liner issued by '" << packed[0].issuer().common_name
            << "' covers " << packed[0].dns_names().size() << " SANs:\n";
  for (const auto& name : packed[0].dns_names()) std::cout << "  " << name << "\n";

  // Daily active-DNS scanning (the aDNS dataset).
  dns::ScanEngine scanner(dnsdb);
  dns::SnapshotStore adns;
  adns.add(scanner.scan(Date::parse("2022-08-01")));

  // beta.com migrates to a competitor on Aug 2.
  std::cout << "\n2022-08-02: beta.com migrates away from Cloudflare\n";
  cloudflare.depart("beta.com", Date::parse("2022-08-02"));
  adns.add(scanner.scan(Date::parse("2022-08-02")));
  adns.add(scanner.scan(Date::parse("2022-08-03")));

  // Detection: delegation present yesterday, absent today + managed SAN.
  core::CertificateCorpus corpus(logs.collect());
  core::ManagedTlsOptions options;
  options.delegation_patterns = {"*.ns.cloudflare.com", "*.cdn.cloudflare.com"};
  options.managed_san_pattern = "sni*.cloudflaressl.com";

  for (const auto& event : core::detect_departures(adns, options)) {
    std::cout << "departure detected: " << event.domain << " on " << event.date
              << "\n";
  }
  for (const auto& record :
       core::detect_managed_tls_departure(corpus, adns, options)) {
    const auto& cert = corpus.at(record.corpus_index);
    std::cout << "STALE: managed cert serial " << cert.serial_hex()
              << " still covers " << record.trigger_domain << " until "
              << cert.not_after() << " (" << record.staleness_days()
              << " days of third-party key access)\n";
    std::cout << "  Cloudflare still holds the private key: "
              << (cloudflare.holds_key(cert) ? "yes" : "no") << "\n";
  }

  // The custody ledger never shrinks — the crux of the hazard.
  std::cout << "\nprovider key-custody ledger:\n";
  for (const auto& custody : cloudflare.custody_ledger()) {
    std::cout << "  " << custody.acquired << " " << custody.domain << " key "
              << custody.key.fingerprint_hex().substr(0, 12) << "...\n";
  }
  return 0;
}
