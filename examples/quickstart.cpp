// Quickstart: simulate a small web-PKI world, run all three stale
// certificate detectors, and print a summary — the paper's whole pipeline
// in ~60 lines of user code.
//
//   $ ./quickstart
#include <iostream>

#include "stalecert/core/analyzer.hpp"
#include "stalecert/core/corpus.hpp"
#include "stalecert/core/detectors.hpp"
#include "stalecert/core/lifetime.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/util/strings.hpp"

using namespace stalecert;

int main() {
  // 1. Build a two-year synthetic world (domains, CAs, CT logs, a CDN,
  //    WHOIS feeds, daily DNS scans, CRL collection).
  sim::World world(sim::small_test_config());
  world.run();
  std::cout << "Simulated " << world.stats().domains_registered
            << " domain registrations, " << world.stats().certificates_issued
            << " certificates, " << world.stats().cdn_enrollments
            << " CDN enrollments\n";

  // 2. Download the deduplicated CT corpus and index it.
  core::CertificateCorpus corpus(world.ct_logs().collect());
  std::cout << "CT corpus: " << corpus.size() << " unique certificates\n\n";

  // 3. Run the three third-party stale-certificate detectors.
  const auto revocations =
      core::analyze_revocations(corpus, world.crl_collection().store(), {});

  const auto registrant =
      core::detect_registrant_change(corpus, world.whois().re_registrations());

  core::ManagedTlsOptions options;
  options.delegation_patterns = world.cloudflare_delegation_patterns();
  options.managed_san_pattern = world.cloudflare_san_pattern();
  const auto managed =
      core::detect_managed_tls_departure(corpus, world.adns(), options);

  std::cout << "Third-party stale certificates found:\n";
  std::cout << "  key compromise:          " << revocations.key_compromise.size()
            << " (of " << revocations.all_revoked.size() << " revoked)\n";
  std::cout << "  registrant change:       " << registrant.size() << "\n";
  std::cout << "  managed TLS departure:   " << managed.size() << "\n\n";

  // 4. How long do they stay abusable, and what would a 90-day maximum
  //    certificate lifetime fix?
  std::vector<core::StaleCertificate> all = revocations.key_compromise;
  all.insert(all.end(), registrant.begin(), registrant.end());
  all.insert(all.end(), managed.begin(), managed.end());
  if (all.empty()) {
    std::cout << "No stale certificates in this run.\n";
    return 0;
  }

  core::StalenessAnalyzer analyzer(corpus, all);
  const auto dist = analyzer.staleness_distribution();
  std::cout << "Staleness period: median " << dist.median() << " days, max "
            << dist.max() << " days\n";

  for (const std::int64_t cap : {45, 90, 215}) {
    const auto result = core::simulate_cap(corpus, all, cap);
    std::cout << "  with a " << cap << "-day max lifetime: "
              << util::percent(result.staleness_days_reduction(), 1)
              << " of staleness-days eliminated ("
              << result.original_count - result.surviving_count << " of "
              << result.original_count << " certs no longer stale)\n";
  }
  return 0;
}
