// CT monitor walk-through: operate a Certificate Transparency log directly
// — submit certificates, fetch signed tree heads, verify inclusion and
// consistency proofs, and watch for certificates covering a domain you
// care about (the transparency machinery the paper's corpus rests on).
//
//   $ ./ct_monitor
#include <iostream>

#include "stalecert/ca/authority.hpp"
#include "stalecert/ct/logset.hpp"
#include "stalecert/util/hex.hpp"

using namespace stalecert;
using util::Date;

int main() {
  // A log fleet: one unsharded log plus a 2022 temporal shard.
  ct::LogSet logs;
  logs.add_log(ct::CtLog{1, "evergreen", "Example Trust",
                         {.chrome = true, .apple = true}});
  logs.add_log(ct::CtLog{2, "shard2022", "Example Trust",
                         {.chrome = true, .apple = true},
                         util::DateInterval{Date::parse("2022-01-01"),
                                            Date::parse("2023-01-01")}});

  // A CA that logs everything it issues.
  ca::CertificateAuthority ca(
      {.name = "Demo CA", .organization = "Demo Trust", .default_days = 200}, 42);
  ca.attach_ct(&logs);

  for (int i = 0; i < 8; ++i) {
    ca::IssuanceRequest request;
    request.domains = {"site" + std::to_string(i) + ".example.com"};
    request.subscriber_key = crypto::KeyPair::derive(
        "key" + std::to_string(i), crypto::KeyAlgorithm::kEcdsaP256);
    request.date = Date::parse("2022-03-01") + i * 7;
    (void)ca.issue_unchecked(request);
  }
  ca::IssuanceRequest watched;
  watched.domains = {"watched.example.com", "www.watched.example.com"};
  watched.subscriber_key =
      crypto::KeyPair::derive("watched", crypto::KeyAlgorithm::kEcdsaP256);
  watched.date = Date::parse("2022-05-01");
  (void)ca.issue_unchecked(watched);

  // Monitor side: inspect each log.
  for (const auto& log : logs.logs()) {
    const auto sth = log.sth(Date::parse("2022-06-01"));
    std::cout << "log '" << log.name() << "': " << sth.tree_size
              << " entries, root " << util::hex_encode(sth.root_hash).substr(0, 16)
              << "...\n";
    if (sth.tree_size < 2) continue;

    // Verify inclusion of the first entry against the current STH.
    const auto proof = log.inclusion_proof(0, sth.tree_size);
    const bool included = ct::verify_inclusion(log.leaf_hash_at(0), 0,
                                               sth.tree_size, proof, sth.root_hash);
    std::cout << "  inclusion proof for entry 0: "
              << (included ? "VERIFIED" : "FAILED") << " (" << proof.size()
              << " hashes)\n";

    // Verify append-only consistency between half-size and full-size trees.
    const std::uint64_t old_size = sth.tree_size / 2;
    const auto old_sth = log.sth_at(old_size, Date::parse("2022-04-01"));
    const auto consistency = log.consistency_proof(old_size, sth.tree_size);
    const bool consistent =
        ct::verify_consistency(old_size, sth.tree_size, old_sth.root_hash,
                               sth.root_hash, consistency);
    std::cout << "  consistency " << old_size << " -> " << sth.tree_size << ": "
              << (consistent ? "VERIFIED" : "FAILED") << "\n";
  }

  // Domain watch: scan the aggregate, deduplicated corpus for our domain.
  std::cout << "\ncertificates covering watched.example.com:\n";
  for (const auto& cert : logs.collect()) {
    if (!cert.matches_domain("watched.example.com")) continue;
    std::cout << "  serial " << cert.serial_hex() << ", " << cert.not_before()
              << " .. " << cert.not_after() << ", issuer '"
              << cert.issuer().common_name << "'\n";
  }
  return 0;
}
