file(REMOVE_RECURSE
  "CMakeFiles/test_registrar.dir/registrar/lifecycle_property_test.cpp.o"
  "CMakeFiles/test_registrar.dir/registrar/lifecycle_property_test.cpp.o.d"
  "CMakeFiles/test_registrar.dir/registrar/lifecycle_test.cpp.o"
  "CMakeFiles/test_registrar.dir/registrar/lifecycle_test.cpp.o.d"
  "test_registrar"
  "test_registrar.pdb"
  "test_registrar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_registrar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
