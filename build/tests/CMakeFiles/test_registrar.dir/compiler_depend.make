# Empty compiler generated dependencies file for test_registrar.
# This may be replaced when dependencies are built.
