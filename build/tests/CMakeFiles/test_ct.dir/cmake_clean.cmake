file(REMOVE_RECURSE
  "CMakeFiles/test_ct.dir/ct/log_test.cpp.o"
  "CMakeFiles/test_ct.dir/ct/log_test.cpp.o.d"
  "CMakeFiles/test_ct.dir/ct/merkle_test.cpp.o"
  "CMakeFiles/test_ct.dir/ct/merkle_test.cpp.o.d"
  "CMakeFiles/test_ct.dir/ct/monitor_test.cpp.o"
  "CMakeFiles/test_ct.dir/ct/monitor_test.cpp.o.d"
  "test_ct"
  "test_ct.pdb"
  "test_ct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
