file(REMOVE_RECURSE
  "CMakeFiles/test_popularity.dir/popularity/toplist_test.cpp.o"
  "CMakeFiles/test_popularity.dir/popularity/toplist_test.cpp.o.d"
  "test_popularity"
  "test_popularity.pdb"
  "test_popularity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
