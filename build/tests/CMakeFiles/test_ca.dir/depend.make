# Empty dependencies file for test_ca.
# This may be replaced when dependencies are built.
