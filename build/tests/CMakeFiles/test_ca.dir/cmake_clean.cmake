file(REMOVE_RECURSE
  "CMakeFiles/test_ca.dir/ca/acme_test.cpp.o"
  "CMakeFiles/test_ca.dir/ca/acme_test.cpp.o.d"
  "CMakeFiles/test_ca.dir/ca/authority_test.cpp.o"
  "CMakeFiles/test_ca.dir/ca/authority_test.cpp.o.d"
  "CMakeFiles/test_ca.dir/ca/dv_test.cpp.o"
  "CMakeFiles/test_ca.dir/ca/dv_test.cpp.o.d"
  "CMakeFiles/test_ca.dir/ca/star_test.cpp.o"
  "CMakeFiles/test_ca.dir/ca/star_test.cpp.o.d"
  "test_ca"
  "test_ca.pdb"
  "test_ca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
