
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/reputation/service_test.cpp" "tests/CMakeFiles/test_reputation.dir/reputation/service_test.cpp.o" "gcc" "tests/CMakeFiles/test_reputation.dir/reputation/service_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stalecert_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stalecert_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ca/CMakeFiles/stalecert_ca.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/stalecert_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/stalecert_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/ct/CMakeFiles/stalecert_ct.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/stalecert_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/registrar/CMakeFiles/stalecert_registrar.dir/DependInfo.cmake"
  "/root/repo/build/src/reputation/CMakeFiles/stalecert_reputation.dir/DependInfo.cmake"
  "/root/repo/build/src/popularity/CMakeFiles/stalecert_popularity.dir/DependInfo.cmake"
  "/root/repo/build/src/revocation/CMakeFiles/stalecert_revocation.dir/DependInfo.cmake"
  "/root/repo/build/src/whois/CMakeFiles/stalecert_whois.dir/DependInfo.cmake"
  "/root/repo/build/src/x509/CMakeFiles/stalecert_x509.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/stalecert_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/stalecert_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stalecert_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
