# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_asn1[1]_include.cmake")
include("/root/repo/build/tests/test_x509[1]_include.cmake")
include("/root/repo/build/tests/test_ct[1]_include.cmake")
include("/root/repo/build/tests/test_dns[1]_include.cmake")
include("/root/repo/build/tests/test_whois[1]_include.cmake")
include("/root/repo/build/tests/test_registrar[1]_include.cmake")
include("/root/repo/build/tests/test_ca[1]_include.cmake")
include("/root/repo/build/tests/test_revocation[1]_include.cmake")
include("/root/repo/build/tests/test_tls[1]_include.cmake")
include("/root/repo/build/tests/test_cdn[1]_include.cmake")
include("/root/repo/build/tests/test_reputation[1]_include.cmake")
include("/root/repo/build/tests/test_popularity[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
