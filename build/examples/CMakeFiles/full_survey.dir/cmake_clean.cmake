file(REMOVE_RECURSE
  "CMakeFiles/full_survey.dir/full_survey.cpp.o"
  "CMakeFiles/full_survey.dir/full_survey.cpp.o.d"
  "full_survey"
  "full_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
