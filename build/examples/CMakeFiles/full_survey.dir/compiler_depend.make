# Empty compiler generated dependencies file for full_survey.
# This may be replaced when dependencies are built.
