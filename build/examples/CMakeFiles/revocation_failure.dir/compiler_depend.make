# Empty compiler generated dependencies file for revocation_failure.
# This may be replaced when dependencies are built.
