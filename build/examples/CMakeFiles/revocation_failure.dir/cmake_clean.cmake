file(REMOVE_RECURSE
  "CMakeFiles/revocation_failure.dir/revocation_failure.cpp.o"
  "CMakeFiles/revocation_failure.dir/revocation_failure.cpp.o.d"
  "revocation_failure"
  "revocation_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revocation_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
