file(REMOVE_RECURSE
  "CMakeFiles/lifetime_policy.dir/lifetime_policy.cpp.o"
  "CMakeFiles/lifetime_policy.dir/lifetime_policy.cpp.o.d"
  "lifetime_policy"
  "lifetime_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifetime_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
