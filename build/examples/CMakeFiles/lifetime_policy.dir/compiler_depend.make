# Empty compiler generated dependencies file for lifetime_policy.
# This may be replaced when dependencies are built.
