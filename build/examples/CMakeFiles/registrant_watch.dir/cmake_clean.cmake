file(REMOVE_RECURSE
  "CMakeFiles/registrant_watch.dir/registrant_watch.cpp.o"
  "CMakeFiles/registrant_watch.dir/registrant_watch.cpp.o.d"
  "registrant_watch"
  "registrant_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/registrant_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
