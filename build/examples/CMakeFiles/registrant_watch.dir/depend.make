# Empty dependencies file for registrant_watch.
# This may be replaced when dependencies are built.
