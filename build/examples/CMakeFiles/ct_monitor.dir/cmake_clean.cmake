file(REMOVE_RECURSE
  "CMakeFiles/ct_monitor.dir/ct_monitor.cpp.o"
  "CMakeFiles/ct_monitor.dir/ct_monitor.cpp.o.d"
  "ct_monitor"
  "ct_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
