file(REMOVE_RECURSE
  "CMakeFiles/cdn_migration.dir/cdn_migration.cpp.o"
  "CMakeFiles/cdn_migration.dir/cdn_migration.cpp.o.d"
  "cdn_migration"
  "cdn_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
