# Empty dependencies file for cdn_migration.
# This may be replaced when dependencies are built.
