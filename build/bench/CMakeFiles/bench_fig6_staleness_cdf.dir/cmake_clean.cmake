file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_staleness_cdf.dir/bench_world.cpp.o"
  "CMakeFiles/bench_fig6_staleness_cdf.dir/bench_world.cpp.o.d"
  "CMakeFiles/bench_fig6_staleness_cdf.dir/fig6_staleness_cdf.cpp.o"
  "CMakeFiles/bench_fig6_staleness_cdf.dir/fig6_staleness_cdf.cpp.o.d"
  "bench_fig6_staleness_cdf"
  "bench_fig6_staleness_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_staleness_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
