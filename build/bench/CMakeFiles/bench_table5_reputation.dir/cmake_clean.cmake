file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_reputation.dir/bench_world.cpp.o"
  "CMakeFiles/bench_table5_reputation.dir/bench_world.cpp.o.d"
  "CMakeFiles/bench_table5_reputation.dir/table5_reputation.cpp.o"
  "CMakeFiles/bench_table5_reputation.dir/table5_reputation.cpp.o.d"
  "bench_table5_reputation"
  "bench_table5_reputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_reputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
