# Empty dependencies file for bench_fig4_key_compromise.
# This may be replaced when dependencies are built.
