file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_key_compromise.dir/bench_world.cpp.o"
  "CMakeFiles/bench_fig4_key_compromise.dir/bench_world.cpp.o.d"
  "CMakeFiles/bench_fig4_key_compromise.dir/fig4_key_compromise.cpp.o"
  "CMakeFiles/bench_fig4_key_compromise.dir/fig4_key_compromise.cpp.o.d"
  "bench_fig4_key_compromise"
  "bench_fig4_key_compromise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_key_compromise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
