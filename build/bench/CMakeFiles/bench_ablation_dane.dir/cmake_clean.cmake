file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dane.dir/ablation_dane.cpp.o"
  "CMakeFiles/bench_ablation_dane.dir/ablation_dane.cpp.o.d"
  "CMakeFiles/bench_ablation_dane.dir/bench_world.cpp.o"
  "CMakeFiles/bench_ablation_dane.dir/bench_world.cpp.o.d"
  "bench_ablation_dane"
  "bench_ablation_dane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
