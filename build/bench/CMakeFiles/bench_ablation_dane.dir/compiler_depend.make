# Empty compiler generated dependencies file for bench_ablation_dane.
# This may be replaced when dependencies are built.
