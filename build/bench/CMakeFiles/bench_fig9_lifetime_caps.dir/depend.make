# Empty dependencies file for bench_fig9_lifetime_caps.
# This may be replaced when dependencies are built.
