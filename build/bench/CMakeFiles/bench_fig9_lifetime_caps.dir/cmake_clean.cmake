file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_lifetime_caps.dir/bench_world.cpp.o"
  "CMakeFiles/bench_fig9_lifetime_caps.dir/bench_world.cpp.o.d"
  "CMakeFiles/bench_fig9_lifetime_caps.dir/fig9_lifetime_caps.cpp.o"
  "CMakeFiles/bench_fig9_lifetime_caps.dir/fig9_lifetime_caps.cpp.o.d"
  "bench_fig9_lifetime_caps"
  "bench_fig9_lifetime_caps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_lifetime_caps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
