file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_validation_reuse.dir/ablation_validation_reuse.cpp.o"
  "CMakeFiles/bench_ablation_validation_reuse.dir/ablation_validation_reuse.cpp.o.d"
  "CMakeFiles/bench_ablation_validation_reuse.dir/bench_world.cpp.o"
  "CMakeFiles/bench_ablation_validation_reuse.dir/bench_world.cpp.o.d"
  "bench_ablation_validation_reuse"
  "bench_ablation_validation_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_validation_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
