file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mitigations.dir/ablation_mitigations.cpp.o"
  "CMakeFiles/bench_ablation_mitigations.dir/ablation_mitigations.cpp.o.d"
  "CMakeFiles/bench_ablation_mitigations.dir/bench_world.cpp.o"
  "CMakeFiles/bench_ablation_mitigations.dir/bench_world.cpp.o.d"
  "bench_ablation_mitigations"
  "bench_ablation_mitigations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mitigations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
