# Empty dependencies file for bench_fig5_registrant_change.
# This may be replaced when dependencies are built.
