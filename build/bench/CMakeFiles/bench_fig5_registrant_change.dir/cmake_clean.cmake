file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_registrant_change.dir/bench_world.cpp.o"
  "CMakeFiles/bench_fig5_registrant_change.dir/bench_world.cpp.o.d"
  "CMakeFiles/bench_fig5_registrant_change.dir/fig5_registrant_change.cpp.o"
  "CMakeFiles/bench_fig5_registrant_change.dir/fig5_registrant_change.cpp.o.d"
  "bench_fig5_registrant_change"
  "bench_fig5_registrant_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_registrant_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
