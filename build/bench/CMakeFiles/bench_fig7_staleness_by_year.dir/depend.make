# Empty dependencies file for bench_fig7_staleness_by_year.
# This may be replaced when dependencies are built.
