file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_staleness_by_year.dir/bench_world.cpp.o"
  "CMakeFiles/bench_fig7_staleness_by_year.dir/bench_world.cpp.o.d"
  "CMakeFiles/bench_fig7_staleness_by_year.dir/fig7_staleness_by_year.cpp.o"
  "CMakeFiles/bench_fig7_staleness_by_year.dir/fig7_staleness_by_year.cpp.o.d"
  "bench_fig7_staleness_by_year"
  "bench_fig7_staleness_by_year.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_staleness_by_year.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
