file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_survival.dir/bench_world.cpp.o"
  "CMakeFiles/bench_fig8_survival.dir/bench_world.cpp.o.d"
  "CMakeFiles/bench_fig8_survival.dir/fig8_survival.cpp.o"
  "CMakeFiles/bench_fig8_survival.dir/fig8_survival.cpp.o.d"
  "bench_fig8_survival"
  "bench_fig8_survival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_survival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
