# Empty dependencies file for bench_fig8_survival.
# This may be replaced when dependencies are built.
