file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_crl_coverage.dir/bench_world.cpp.o"
  "CMakeFiles/bench_table7_crl_coverage.dir/bench_world.cpp.o.d"
  "CMakeFiles/bench_table7_crl_coverage.dir/table7_crl_coverage.cpp.o"
  "CMakeFiles/bench_table7_crl_coverage.dir/table7_crl_coverage.cpp.o.d"
  "bench_table7_crl_coverage"
  "bench_table7_crl_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_crl_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
