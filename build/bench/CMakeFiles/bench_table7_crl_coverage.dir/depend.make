# Empty dependencies file for bench_table7_crl_coverage.
# This may be replaced when dependencies are built.
