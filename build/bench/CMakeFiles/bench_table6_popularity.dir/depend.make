# Empty dependencies file for bench_table6_popularity.
# This may be replaced when dependencies are built.
