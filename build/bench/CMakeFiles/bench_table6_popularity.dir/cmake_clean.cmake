file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_popularity.dir/bench_world.cpp.o"
  "CMakeFiles/bench_table6_popularity.dir/bench_world.cpp.o.d"
  "CMakeFiles/bench_table6_popularity.dir/table6_popularity.cpp.o"
  "CMakeFiles/bench_table6_popularity.dir/table6_popularity.cpp.o.d"
  "bench_table6_popularity"
  "bench_table6_popularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
