file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_stale_rates.dir/bench_world.cpp.o"
  "CMakeFiles/bench_table4_stale_rates.dir/bench_world.cpp.o.d"
  "CMakeFiles/bench_table4_stale_rates.dir/table4_stale_rates.cpp.o"
  "CMakeFiles/bench_table4_stale_rates.dir/table4_stale_rates.cpp.o.d"
  "bench_table4_stale_rates"
  "bench_table4_stale_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_stale_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
