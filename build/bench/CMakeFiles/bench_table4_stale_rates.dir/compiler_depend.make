# Empty compiler generated dependencies file for bench_table4_stale_rates.
# This may be replaced when dependencies are built.
