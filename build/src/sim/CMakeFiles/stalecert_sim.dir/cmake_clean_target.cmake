file(REMOVE_RECURSE
  "libstalecert_sim.a"
)
