# Empty dependencies file for stalecert_sim.
# This may be replaced when dependencies are built.
