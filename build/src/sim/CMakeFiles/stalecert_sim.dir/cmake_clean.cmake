file(REMOVE_RECURSE
  "CMakeFiles/stalecert_sim.dir/src/config.cpp.o"
  "CMakeFiles/stalecert_sim.dir/src/config.cpp.o.d"
  "CMakeFiles/stalecert_sim.dir/src/world.cpp.o"
  "CMakeFiles/stalecert_sim.dir/src/world.cpp.o.d"
  "libstalecert_sim.a"
  "libstalecert_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stalecert_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
