# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("crypto")
subdirs("asn1")
subdirs("x509")
subdirs("ct")
subdirs("dns")
subdirs("whois")
subdirs("registrar")
subdirs("ca")
subdirs("tls")
subdirs("revocation")
subdirs("cdn")
subdirs("reputation")
subdirs("popularity")
subdirs("sim")
subdirs("core")
