file(REMOVE_RECURSE
  "CMakeFiles/stalecert_core.dir/src/analyzer.cpp.o"
  "CMakeFiles/stalecert_core.dir/src/analyzer.cpp.o.d"
  "CMakeFiles/stalecert_core.dir/src/bygone.cpp.o"
  "CMakeFiles/stalecert_core.dir/src/bygone.cpp.o.d"
  "CMakeFiles/stalecert_core.dir/src/corpus.cpp.o"
  "CMakeFiles/stalecert_core.dir/src/corpus.cpp.o.d"
  "CMakeFiles/stalecert_core.dir/src/detectors.cpp.o"
  "CMakeFiles/stalecert_core.dir/src/detectors.cpp.o.d"
  "CMakeFiles/stalecert_core.dir/src/lifetime.cpp.o"
  "CMakeFiles/stalecert_core.dir/src/lifetime.cpp.o.d"
  "CMakeFiles/stalecert_core.dir/src/pipeline.cpp.o"
  "CMakeFiles/stalecert_core.dir/src/pipeline.cpp.o.d"
  "CMakeFiles/stalecert_core.dir/src/report.cpp.o"
  "CMakeFiles/stalecert_core.dir/src/report.cpp.o.d"
  "CMakeFiles/stalecert_core.dir/src/taxonomy.cpp.o"
  "CMakeFiles/stalecert_core.dir/src/taxonomy.cpp.o.d"
  "libstalecert_core.a"
  "libstalecert_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stalecert_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
