# Empty compiler generated dependencies file for stalecert_core.
# This may be replaced when dependencies are built.
