
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/src/analyzer.cpp" "src/core/CMakeFiles/stalecert_core.dir/src/analyzer.cpp.o" "gcc" "src/core/CMakeFiles/stalecert_core.dir/src/analyzer.cpp.o.d"
  "/root/repo/src/core/src/bygone.cpp" "src/core/CMakeFiles/stalecert_core.dir/src/bygone.cpp.o" "gcc" "src/core/CMakeFiles/stalecert_core.dir/src/bygone.cpp.o.d"
  "/root/repo/src/core/src/corpus.cpp" "src/core/CMakeFiles/stalecert_core.dir/src/corpus.cpp.o" "gcc" "src/core/CMakeFiles/stalecert_core.dir/src/corpus.cpp.o.d"
  "/root/repo/src/core/src/detectors.cpp" "src/core/CMakeFiles/stalecert_core.dir/src/detectors.cpp.o" "gcc" "src/core/CMakeFiles/stalecert_core.dir/src/detectors.cpp.o.d"
  "/root/repo/src/core/src/lifetime.cpp" "src/core/CMakeFiles/stalecert_core.dir/src/lifetime.cpp.o" "gcc" "src/core/CMakeFiles/stalecert_core.dir/src/lifetime.cpp.o.d"
  "/root/repo/src/core/src/pipeline.cpp" "src/core/CMakeFiles/stalecert_core.dir/src/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/stalecert_core.dir/src/pipeline.cpp.o.d"
  "/root/repo/src/core/src/report.cpp" "src/core/CMakeFiles/stalecert_core.dir/src/report.cpp.o" "gcc" "src/core/CMakeFiles/stalecert_core.dir/src/report.cpp.o.d"
  "/root/repo/src/core/src/taxonomy.cpp" "src/core/CMakeFiles/stalecert_core.dir/src/taxonomy.cpp.o" "gcc" "src/core/CMakeFiles/stalecert_core.dir/src/taxonomy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ct/CMakeFiles/stalecert_ct.dir/DependInfo.cmake"
  "/root/repo/build/src/x509/CMakeFiles/stalecert_x509.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/stalecert_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/whois/CMakeFiles/stalecert_whois.dir/DependInfo.cmake"
  "/root/repo/build/src/revocation/CMakeFiles/stalecert_revocation.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stalecert_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/stalecert_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/stalecert_asn1.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
