file(REMOVE_RECURSE
  "libstalecert_core.a"
)
