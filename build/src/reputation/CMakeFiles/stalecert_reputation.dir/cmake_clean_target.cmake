file(REMOVE_RECURSE
  "libstalecert_reputation.a"
)
