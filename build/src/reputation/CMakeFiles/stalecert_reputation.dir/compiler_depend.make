# Empty compiler generated dependencies file for stalecert_reputation.
# This may be replaced when dependencies are built.
