file(REMOVE_RECURSE
  "CMakeFiles/stalecert_reputation.dir/src/service.cpp.o"
  "CMakeFiles/stalecert_reputation.dir/src/service.cpp.o.d"
  "libstalecert_reputation.a"
  "libstalecert_reputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stalecert_reputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
