# Empty compiler generated dependencies file for stalecert_popularity.
# This may be replaced when dependencies are built.
