file(REMOVE_RECURSE
  "libstalecert_popularity.a"
)
