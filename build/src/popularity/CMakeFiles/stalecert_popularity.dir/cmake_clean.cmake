file(REMOVE_RECURSE
  "CMakeFiles/stalecert_popularity.dir/src/toplist.cpp.o"
  "CMakeFiles/stalecert_popularity.dir/src/toplist.cpp.o.d"
  "libstalecert_popularity.a"
  "libstalecert_popularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stalecert_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
