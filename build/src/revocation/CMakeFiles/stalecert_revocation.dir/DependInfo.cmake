
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/revocation/src/collector.cpp" "src/revocation/CMakeFiles/stalecert_revocation.dir/src/collector.cpp.o" "gcc" "src/revocation/CMakeFiles/stalecert_revocation.dir/src/collector.cpp.o.d"
  "/root/repo/src/revocation/src/crl.cpp" "src/revocation/CMakeFiles/stalecert_revocation.dir/src/crl.cpp.o" "gcc" "src/revocation/CMakeFiles/stalecert_revocation.dir/src/crl.cpp.o.d"
  "/root/repo/src/revocation/src/crlite.cpp" "src/revocation/CMakeFiles/stalecert_revocation.dir/src/crlite.cpp.o" "gcc" "src/revocation/CMakeFiles/stalecert_revocation.dir/src/crlite.cpp.o.d"
  "/root/repo/src/revocation/src/join.cpp" "src/revocation/CMakeFiles/stalecert_revocation.dir/src/join.cpp.o" "gcc" "src/revocation/CMakeFiles/stalecert_revocation.dir/src/join.cpp.o.d"
  "/root/repo/src/revocation/src/ocsp.cpp" "src/revocation/CMakeFiles/stalecert_revocation.dir/src/ocsp.cpp.o" "gcc" "src/revocation/CMakeFiles/stalecert_revocation.dir/src/ocsp.cpp.o.d"
  "/root/repo/src/revocation/src/reasons.cpp" "src/revocation/CMakeFiles/stalecert_revocation.dir/src/reasons.cpp.o" "gcc" "src/revocation/CMakeFiles/stalecert_revocation.dir/src/reasons.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/x509/CMakeFiles/stalecert_x509.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/stalecert_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/stalecert_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stalecert_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
