# Empty dependencies file for stalecert_revocation.
# This may be replaced when dependencies are built.
