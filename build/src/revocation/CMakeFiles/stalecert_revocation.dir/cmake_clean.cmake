file(REMOVE_RECURSE
  "CMakeFiles/stalecert_revocation.dir/src/collector.cpp.o"
  "CMakeFiles/stalecert_revocation.dir/src/collector.cpp.o.d"
  "CMakeFiles/stalecert_revocation.dir/src/crl.cpp.o"
  "CMakeFiles/stalecert_revocation.dir/src/crl.cpp.o.d"
  "CMakeFiles/stalecert_revocation.dir/src/crlite.cpp.o"
  "CMakeFiles/stalecert_revocation.dir/src/crlite.cpp.o.d"
  "CMakeFiles/stalecert_revocation.dir/src/join.cpp.o"
  "CMakeFiles/stalecert_revocation.dir/src/join.cpp.o.d"
  "CMakeFiles/stalecert_revocation.dir/src/ocsp.cpp.o"
  "CMakeFiles/stalecert_revocation.dir/src/ocsp.cpp.o.d"
  "CMakeFiles/stalecert_revocation.dir/src/reasons.cpp.o"
  "CMakeFiles/stalecert_revocation.dir/src/reasons.cpp.o.d"
  "libstalecert_revocation.a"
  "libstalecert_revocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stalecert_revocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
