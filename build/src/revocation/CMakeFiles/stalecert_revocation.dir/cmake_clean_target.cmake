file(REMOVE_RECURSE
  "libstalecert_revocation.a"
)
