file(REMOVE_RECURSE
  "libstalecert_whois.a"
)
