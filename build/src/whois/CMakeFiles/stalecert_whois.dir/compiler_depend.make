# Empty compiler generated dependencies file for stalecert_whois.
# This may be replaced when dependencies are built.
