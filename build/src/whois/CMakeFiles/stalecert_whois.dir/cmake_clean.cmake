file(REMOVE_RECURSE
  "CMakeFiles/stalecert_whois.dir/src/database.cpp.o"
  "CMakeFiles/stalecert_whois.dir/src/database.cpp.o.d"
  "CMakeFiles/stalecert_whois.dir/src/record.cpp.o"
  "CMakeFiles/stalecert_whois.dir/src/record.cpp.o.d"
  "libstalecert_whois.a"
  "libstalecert_whois.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stalecert_whois.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
