# Empty dependencies file for stalecert_cdn.
# This may be replaced when dependencies are built.
