file(REMOVE_RECURSE
  "libstalecert_cdn.a"
)
