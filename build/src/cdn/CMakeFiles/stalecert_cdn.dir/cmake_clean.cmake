file(REMOVE_RECURSE
  "CMakeFiles/stalecert_cdn.dir/src/provider.cpp.o"
  "CMakeFiles/stalecert_cdn.dir/src/provider.cpp.o.d"
  "libstalecert_cdn.a"
  "libstalecert_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stalecert_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
