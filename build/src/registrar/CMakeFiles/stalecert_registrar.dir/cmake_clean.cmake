file(REMOVE_RECURSE
  "CMakeFiles/stalecert_registrar.dir/src/lifecycle.cpp.o"
  "CMakeFiles/stalecert_registrar.dir/src/lifecycle.cpp.o.d"
  "libstalecert_registrar.a"
  "libstalecert_registrar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stalecert_registrar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
