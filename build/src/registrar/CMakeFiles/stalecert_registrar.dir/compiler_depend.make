# Empty compiler generated dependencies file for stalecert_registrar.
# This may be replaced when dependencies are built.
