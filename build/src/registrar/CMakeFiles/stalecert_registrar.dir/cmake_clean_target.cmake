file(REMOVE_RECURSE
  "libstalecert_registrar.a"
)
