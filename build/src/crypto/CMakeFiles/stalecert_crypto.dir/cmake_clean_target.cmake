file(REMOVE_RECURSE
  "libstalecert_crypto.a"
)
