file(REMOVE_RECURSE
  "CMakeFiles/stalecert_crypto.dir/src/keypair.cpp.o"
  "CMakeFiles/stalecert_crypto.dir/src/keypair.cpp.o.d"
  "CMakeFiles/stalecert_crypto.dir/src/sha256.cpp.o"
  "CMakeFiles/stalecert_crypto.dir/src/sha256.cpp.o.d"
  "libstalecert_crypto.a"
  "libstalecert_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stalecert_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
