# Empty dependencies file for stalecert_crypto.
# This may be replaced when dependencies are built.
