# Empty compiler generated dependencies file for stalecert_tls.
# This may be replaced when dependencies are built.
