file(REMOVE_RECURSE
  "CMakeFiles/stalecert_tls.dir/src/client.cpp.o"
  "CMakeFiles/stalecert_tls.dir/src/client.cpp.o.d"
  "CMakeFiles/stalecert_tls.dir/src/interception.cpp.o"
  "CMakeFiles/stalecert_tls.dir/src/interception.cpp.o.d"
  "libstalecert_tls.a"
  "libstalecert_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stalecert_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
