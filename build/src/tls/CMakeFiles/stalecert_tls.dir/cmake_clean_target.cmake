file(REMOVE_RECURSE
  "libstalecert_tls.a"
)
