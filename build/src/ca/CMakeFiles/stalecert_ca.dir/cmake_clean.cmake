file(REMOVE_RECURSE
  "CMakeFiles/stalecert_ca.dir/src/acme.cpp.o"
  "CMakeFiles/stalecert_ca.dir/src/acme.cpp.o.d"
  "CMakeFiles/stalecert_ca.dir/src/authority.cpp.o"
  "CMakeFiles/stalecert_ca.dir/src/authority.cpp.o.d"
  "CMakeFiles/stalecert_ca.dir/src/dv.cpp.o"
  "CMakeFiles/stalecert_ca.dir/src/dv.cpp.o.d"
  "CMakeFiles/stalecert_ca.dir/src/star.cpp.o"
  "CMakeFiles/stalecert_ca.dir/src/star.cpp.o.d"
  "libstalecert_ca.a"
  "libstalecert_ca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stalecert_ca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
