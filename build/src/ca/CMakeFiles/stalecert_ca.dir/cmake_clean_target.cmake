file(REMOVE_RECURSE
  "libstalecert_ca.a"
)
