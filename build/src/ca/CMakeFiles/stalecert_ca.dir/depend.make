# Empty dependencies file for stalecert_ca.
# This may be replaced when dependencies are built.
