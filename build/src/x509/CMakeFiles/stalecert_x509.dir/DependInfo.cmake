
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/x509/src/certificate.cpp" "src/x509/CMakeFiles/stalecert_x509.dir/src/certificate.cpp.o" "gcc" "src/x509/CMakeFiles/stalecert_x509.dir/src/certificate.cpp.o.d"
  "/root/repo/src/x509/src/extensions.cpp" "src/x509/CMakeFiles/stalecert_x509.dir/src/extensions.cpp.o" "gcc" "src/x509/CMakeFiles/stalecert_x509.dir/src/extensions.cpp.o.d"
  "/root/repo/src/x509/src/name.cpp" "src/x509/CMakeFiles/stalecert_x509.dir/src/name.cpp.o" "gcc" "src/x509/CMakeFiles/stalecert_x509.dir/src/name.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asn1/CMakeFiles/stalecert_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/stalecert_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stalecert_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
