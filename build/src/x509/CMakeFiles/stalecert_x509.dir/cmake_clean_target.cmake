file(REMOVE_RECURSE
  "libstalecert_x509.a"
)
