file(REMOVE_RECURSE
  "CMakeFiles/stalecert_x509.dir/src/certificate.cpp.o"
  "CMakeFiles/stalecert_x509.dir/src/certificate.cpp.o.d"
  "CMakeFiles/stalecert_x509.dir/src/extensions.cpp.o"
  "CMakeFiles/stalecert_x509.dir/src/extensions.cpp.o.d"
  "CMakeFiles/stalecert_x509.dir/src/name.cpp.o"
  "CMakeFiles/stalecert_x509.dir/src/name.cpp.o.d"
  "libstalecert_x509.a"
  "libstalecert_x509.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stalecert_x509.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
