# Empty dependencies file for stalecert_x509.
# This may be replaced when dependencies are built.
