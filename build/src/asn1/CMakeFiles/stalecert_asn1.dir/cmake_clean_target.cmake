file(REMOVE_RECURSE
  "libstalecert_asn1.a"
)
