# Empty compiler generated dependencies file for stalecert_asn1.
# This may be replaced when dependencies are built.
