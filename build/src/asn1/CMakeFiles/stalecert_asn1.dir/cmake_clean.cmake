file(REMOVE_RECURSE
  "CMakeFiles/stalecert_asn1.dir/src/der.cpp.o"
  "CMakeFiles/stalecert_asn1.dir/src/der.cpp.o.d"
  "CMakeFiles/stalecert_asn1.dir/src/oid.cpp.o"
  "CMakeFiles/stalecert_asn1.dir/src/oid.cpp.o.d"
  "libstalecert_asn1.a"
  "libstalecert_asn1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stalecert_asn1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
