# Empty dependencies file for stalecert_ct.
# This may be replaced when dependencies are built.
