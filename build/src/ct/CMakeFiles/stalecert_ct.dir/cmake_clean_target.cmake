file(REMOVE_RECURSE
  "libstalecert_ct.a"
)
