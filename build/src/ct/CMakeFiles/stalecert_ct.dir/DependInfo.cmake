
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ct/src/log.cpp" "src/ct/CMakeFiles/stalecert_ct.dir/src/log.cpp.o" "gcc" "src/ct/CMakeFiles/stalecert_ct.dir/src/log.cpp.o.d"
  "/root/repo/src/ct/src/logset.cpp" "src/ct/CMakeFiles/stalecert_ct.dir/src/logset.cpp.o" "gcc" "src/ct/CMakeFiles/stalecert_ct.dir/src/logset.cpp.o.d"
  "/root/repo/src/ct/src/merkle.cpp" "src/ct/CMakeFiles/stalecert_ct.dir/src/merkle.cpp.o" "gcc" "src/ct/CMakeFiles/stalecert_ct.dir/src/merkle.cpp.o.d"
  "/root/repo/src/ct/src/monitor.cpp" "src/ct/CMakeFiles/stalecert_ct.dir/src/monitor.cpp.o" "gcc" "src/ct/CMakeFiles/stalecert_ct.dir/src/monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/x509/CMakeFiles/stalecert_x509.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/stalecert_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stalecert_util.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/stalecert_asn1.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
