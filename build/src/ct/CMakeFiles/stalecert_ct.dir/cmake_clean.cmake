file(REMOVE_RECURSE
  "CMakeFiles/stalecert_ct.dir/src/log.cpp.o"
  "CMakeFiles/stalecert_ct.dir/src/log.cpp.o.d"
  "CMakeFiles/stalecert_ct.dir/src/logset.cpp.o"
  "CMakeFiles/stalecert_ct.dir/src/logset.cpp.o.d"
  "CMakeFiles/stalecert_ct.dir/src/merkle.cpp.o"
  "CMakeFiles/stalecert_ct.dir/src/merkle.cpp.o.d"
  "CMakeFiles/stalecert_ct.dir/src/monitor.cpp.o"
  "CMakeFiles/stalecert_ct.dir/src/monitor.cpp.o.d"
  "libstalecert_ct.a"
  "libstalecert_ct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stalecert_ct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
