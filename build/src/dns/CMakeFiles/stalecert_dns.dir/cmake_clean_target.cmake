file(REMOVE_RECURSE
  "libstalecert_dns.a"
)
