file(REMOVE_RECURSE
  "CMakeFiles/stalecert_dns.dir/src/dane.cpp.o"
  "CMakeFiles/stalecert_dns.dir/src/dane.cpp.o.d"
  "CMakeFiles/stalecert_dns.dir/src/name.cpp.o"
  "CMakeFiles/stalecert_dns.dir/src/name.cpp.o.d"
  "CMakeFiles/stalecert_dns.dir/src/records.cpp.o"
  "CMakeFiles/stalecert_dns.dir/src/records.cpp.o.d"
  "CMakeFiles/stalecert_dns.dir/src/scan.cpp.o"
  "CMakeFiles/stalecert_dns.dir/src/scan.cpp.o.d"
  "CMakeFiles/stalecert_dns.dir/src/zone.cpp.o"
  "CMakeFiles/stalecert_dns.dir/src/zone.cpp.o.d"
  "CMakeFiles/stalecert_dns.dir/src/zonefile.cpp.o"
  "CMakeFiles/stalecert_dns.dir/src/zonefile.cpp.o.d"
  "libstalecert_dns.a"
  "libstalecert_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stalecert_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
