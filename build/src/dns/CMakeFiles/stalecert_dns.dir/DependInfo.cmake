
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/src/dane.cpp" "src/dns/CMakeFiles/stalecert_dns.dir/src/dane.cpp.o" "gcc" "src/dns/CMakeFiles/stalecert_dns.dir/src/dane.cpp.o.d"
  "/root/repo/src/dns/src/name.cpp" "src/dns/CMakeFiles/stalecert_dns.dir/src/name.cpp.o" "gcc" "src/dns/CMakeFiles/stalecert_dns.dir/src/name.cpp.o.d"
  "/root/repo/src/dns/src/records.cpp" "src/dns/CMakeFiles/stalecert_dns.dir/src/records.cpp.o" "gcc" "src/dns/CMakeFiles/stalecert_dns.dir/src/records.cpp.o.d"
  "/root/repo/src/dns/src/scan.cpp" "src/dns/CMakeFiles/stalecert_dns.dir/src/scan.cpp.o" "gcc" "src/dns/CMakeFiles/stalecert_dns.dir/src/scan.cpp.o.d"
  "/root/repo/src/dns/src/zone.cpp" "src/dns/CMakeFiles/stalecert_dns.dir/src/zone.cpp.o" "gcc" "src/dns/CMakeFiles/stalecert_dns.dir/src/zone.cpp.o.d"
  "/root/repo/src/dns/src/zonefile.cpp" "src/dns/CMakeFiles/stalecert_dns.dir/src/zonefile.cpp.o" "gcc" "src/dns/CMakeFiles/stalecert_dns.dir/src/zonefile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/x509/CMakeFiles/stalecert_x509.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stalecert_util.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/stalecert_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/stalecert_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
