# Empty dependencies file for stalecert_dns.
# This may be replaced when dependencies are built.
