file(REMOVE_RECURSE
  "libstalecert_util.a"
)
