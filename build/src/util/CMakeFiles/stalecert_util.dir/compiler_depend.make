# Empty compiler generated dependencies file for stalecert_util.
# This may be replaced when dependencies are built.
