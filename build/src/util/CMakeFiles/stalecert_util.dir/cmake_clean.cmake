file(REMOVE_RECURSE
  "CMakeFiles/stalecert_util.dir/src/date.cpp.o"
  "CMakeFiles/stalecert_util.dir/src/date.cpp.o.d"
  "CMakeFiles/stalecert_util.dir/src/hex.cpp.o"
  "CMakeFiles/stalecert_util.dir/src/hex.cpp.o.d"
  "CMakeFiles/stalecert_util.dir/src/rng.cpp.o"
  "CMakeFiles/stalecert_util.dir/src/rng.cpp.o.d"
  "CMakeFiles/stalecert_util.dir/src/stats.cpp.o"
  "CMakeFiles/stalecert_util.dir/src/stats.cpp.o.d"
  "CMakeFiles/stalecert_util.dir/src/strings.cpp.o"
  "CMakeFiles/stalecert_util.dir/src/strings.cpp.o.d"
  "CMakeFiles/stalecert_util.dir/src/table.cpp.o"
  "CMakeFiles/stalecert_util.dir/src/table.cpp.o.d"
  "libstalecert_util.a"
  "libstalecert_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stalecert_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
