#pragma once

#include <string>

#include "stalecert/obs/span.hpp"

namespace stalecert::obs {

/// Serializes a pipeline Trace in the Chrome trace-event (catapult) JSON
/// format, loadable in chrome://tracing and Perfetto:
///   {"traceEvents":[{"name":"ct_collect","ph":"X","ts":0.0,"dur":12.5,
///                    "pid":1,"tid":1,"args":{"entries_raw":1000}},...],
///    "displayTimeUnit":"ms"}
/// One complete ("ph":"X") event per span; ts/dur are microseconds relative
/// to the first span. Span counters become event args.
[[nodiscard]] std::string to_chrome_trace(const Trace& trace);

}  // namespace stalecert::obs
