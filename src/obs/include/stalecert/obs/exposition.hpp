#pragma once

#include <string>

#include "stalecert/obs/metrics.hpp"

namespace stalecert::obs {

/// Serializes a snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` / `# TYPE` comments followed by sample lines,
/// histogram buckets rendered cumulatively with `le` labels plus `_sum` and
/// `_count` series.
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Serializes a snapshot as a JSON object:
///   {"counters": [{"name": ..., "labels": {...}, "value": N}, ...],
///    "gauges": [...],
///    "histograms": [{"name": ..., "labels": {...},
///                    "buckets": [{"le": 1.0, "count": N}, ...,
///                                {"le": "+Inf", "count": N}],
///                    "sum": S, "count": N}, ...]}
/// Bucket counts are per-bucket (non-cumulative).
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

}  // namespace stalecert::obs
