#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "stalecert/util/mutex.hpp"

namespace stalecert::obs {

/// Label set attached to a metric, e.g. {{"stage", "ct_collect"}}. Order is
/// preserved as registered (it becomes part of the registry key), so always
/// pass labels in a consistent order for a given metric name.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter. The hot path is one relaxed atomic
/// add: obtain the handle once (registration takes a mutex), then call
/// inc() from any thread.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous value that can go up and down (pool sizes, progress).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta);
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with Prometheus `le` (less-or-equal) semantics:
/// bucket i counts observations <= upper_bounds[i]; one implicit +Inf
/// bucket catches the rest. Bounds are fixed at registration, so observe()
/// is a binary search plus two relaxed atomic updates — safe from any
/// thread.
class HistogramMetric {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit HistogramMetric(std::vector<double> upper_bounds);

  void observe(double value);

  /// Finite bucket upper bounds (excludes the implicit +Inf bucket).
  [[nodiscard]] const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds_.size() is +Inf.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<double> sum_{0.0};
};

/// RAII timer: records elapsed wall-clock seconds into a histogram when it
/// goes out of scope.
class ScopedTimer {
 public:
  explicit ScopedTimer(HistogramMetric& histogram);
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer();

 private:
  HistogramMetric* histogram_;
  std::chrono::steady_clock::time_point start_;
};

// --- Snapshot types -------------------------------------------------------

struct CounterSample {
  std::string name;
  Labels labels;
  std::string help;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  Labels labels;
  std::string help;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  Labels labels;
  std::string help;
  std::vector<double> upper_bounds;          // finite bounds
  std::vector<std::uint64_t> bucket_counts;  // per-bucket, +Inf last
  double sum = 0.0;
  std::uint64_t count = 0;
};

/// Point-in-time copy of every metric in a registry. Snapshots are plain
/// values: serialize them (exposition.hpp) or diff them without holding any
/// lock, and later registry updates never show through.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Thread-safe registry of named metrics. Registration (counter()/gauge()/
/// histogram()) takes a mutex and returns a stable handle; all subsequent
/// updates through the handle are lock-free atomics. Re-registering the
/// same (name, labels) returns the existing handle.
///
/// Naming convention (see src/obs/README.md):
///   stalecert_<subsystem>_<name>[_total|_seconds]
/// Names must match [a-zA-Z_:][a-zA-Z0-9_:]*; anything else throws.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = "");
  /// Throws if re-registered with different bounds.
  HistogramMetric& histogram(const std::string& name,
                             std::vector<double> upper_bounds,
                             const Labels& labels = {},
                             const std::string& help = "");

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  template <typename Metric>
  struct Entry {
    std::string name;
    Labels labels;
    std::string help;
    std::unique_ptr<Metric> metric;
  };

  mutable util::Mutex mutex_;
  // Keyed by name + rendered labels; std::map keeps exposition output in
  // deterministic sorted order.
  std::map<std::string, Entry<Counter>> counters_ GUARDED_BY(mutex_);
  std::map<std::string, Entry<Gauge>> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, Entry<HistogramMetric>> histograms_ GUARDED_BY(mutex_);
};

}  // namespace stalecert::obs
