#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stalecert::obs {

/// One node of a hierarchical pipeline trace: a named stage, its wall-clock
/// duration, and the funnel counters attributed to it while it was the
/// innermost open span.
struct SpanRecord {
  std::string name;
  std::size_t parent = SIZE_MAX;  // index into Trace::spans(); SIZE_MAX = root
  std::size_t depth = 0;
  /// Wall-clock offset of begin_span from the trace's first span (zero for
  /// the first); lets exporters place spans on a shared timeline.
  std::chrono::nanoseconds start_offset{0};
  std::chrono::nanoseconds duration{0};
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  bool closed = false;

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(duration).count();
  }
};

/// An append-only tree of spans describing one pipeline run. Spans open and
/// close stack-wise (begin_span/end_span), building parent/child structure;
/// counters recorded in between attach to the innermost open span. Not
/// thread-safe: use one Trace per pipeline thread.
class Trace {
 public:
  static constexpr std::size_t npos = SIZE_MAX;

  /// Opens a child of the current span (or a root span) and returns its index.
  std::size_t begin_span(std::string name);
  /// Closes the innermost open span, recording its duration. Throws if no
  /// span is open.
  void end_span(std::chrono::nanoseconds duration);
  /// Attaches a counter delta to the innermost open span. Merges repeated
  /// names. No-op when no span is open.
  void count(const std::string& counter, std::uint64_t delta);

  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return spans_; }
  [[nodiscard]] bool empty() const { return spans_.empty(); }
  /// Number of currently open (unclosed) spans.
  [[nodiscard]] std::size_t open_depth() const { return stack_.size(); }

  /// Human-readable indented tree with millisecond durations and counters.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<SpanRecord> spans_;
  std::vector<std::size_t> stack_;
  std::chrono::steady_clock::time_point epoch_{};  // set by the first span
};

/// Serializes a trace to a JSON array of span objects:
///   [{"name": ..., "depth": 0, "parent": null, "duration_seconds": ...,
///     "counters": {...}}, ...]
[[nodiscard]] std::string to_json(const Trace& trace);

}  // namespace stalecert::obs
