#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "stalecert/util/mutex.hpp"

namespace stalecert::obs {

/// One traced request: a trace id, the routed endpoint, and a flat ordered
/// list of sub-span durations (parse -> route -> lookup -> serialize ->
/// write for the serving path). `total` is the end-to-end latency the
/// caller measured; the span breakdown should account for (nearly) all of
/// it.
struct RequestTrace {
  std::uint64_t id = 0;
  std::uint64_t sequence = 0;  // admission order; recency for the ring
  std::string endpoint;
  std::string target;  // raw request target, for display
  int status = 0;
  std::chrono::nanoseconds total{0};
  std::vector<std::pair<std::string, std::chrono::nanoseconds>> spans;

  /// Adds `duration` to the named span, merging repeats in place.
  void add_span(std::string_view name, std::chrono::nanoseconds duration);

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(total).count();
  }
  [[nodiscard]] std::chrono::nanoseconds span_sum() const;
};

/// Renders a trace as a JSON object (the /statusz slow-trace entries).
[[nodiscard]] std::string to_json(const RequestTrace& trace);

/// Bounded retention of the N slowest recent request traces.
///
/// "Recent" is enforced by admission order: whenever a retained trace is
/// older than `recency_window` admissions ago it is evicted, so one ancient
/// outlier cannot pin a slot forever under live traffic. offer() is called
/// for every request; the fast path (ring full, request faster than the
/// slowest retained floor) is a single relaxed atomic load and no lock.
class SlowTraceRing {
 public:
  explicit SlowTraceRing(std::size_t capacity = 16,
                         std::uint64_t recency_window = 65536);

  /// Considers a finished trace for retention. Assigns trace.sequence.
  /// Returns true when the trace was retained.
  bool offer(RequestTrace trace);

  /// Appends a late span (the server's post-handler write time) to the
  /// retained trace with this id, if it is still in the ring.
  void add_late_span(std::uint64_t trace_id, std::string_view name,
                     std::chrono::nanoseconds duration);

  /// Retained traces, slowest first.
  [[nodiscard]] std::vector<RequestTrace> snapshot() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t offered() const {
    return next_sequence_.load(std::memory_order_relaxed);
  }

 private:
  void evict_stale_locked(std::uint64_t now_sequence) REQUIRES(mutex_);
  void refresh_floor_locked() REQUIRES(mutex_);

  const std::size_t capacity_;
  const std::uint64_t recency_window_;
  std::atomic<std::uint64_t> next_sequence_{0};
  /// Fastest retained total when the ring is full; below it, offer() skips
  /// the lock entirely. 0 while the ring has room.
  std::atomic<std::int64_t> floor_ns_{0};
  mutable util::Mutex mutex_;
  std::vector<RequestTrace> traces_ GUARDED_BY(mutex_);  // sorted slowest-first
};

}  // namespace stalecert::obs
