#pragma once

#include "stalecert/obs/metrics.hpp"

namespace stalecert::obs {

/// Estimates the q-quantile (q in [0, 1]) of a histogram sample with
/// Prometheus histogram_quantile() semantics: find the bucket where the
/// cumulative count crosses rank q*count, then interpolate linearly inside
/// it. The lowest bucket interpolates from 0; an answer landing in the
/// +Inf bucket is clamped to the largest finite bound. Returns 0 for an
/// empty histogram; throws LogicError for q outside [0, 1].
[[nodiscard]] double histogram_quantile(const HistogramSample& sample, double q);

/// Compact latency summary derived from one histogram — what the staled
/// summary endpoint and the bench reports print.
struct QuantileSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

[[nodiscard]] QuantileSummary summarize_histogram(const HistogramSample& sample);
/// Snapshot + summarize a live metric in one call.
[[nodiscard]] QuantileSummary summarize_histogram(const HistogramMetric& metric);

}  // namespace stalecert::obs
