#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "stalecert/util/mutex.hpp"

namespace stalecert::obs {

/// Event severity, ordered so a numeric comparison implements level
/// filtering (debug < info < warn < error).
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

[[nodiscard]] std::string_view to_string(LogLevel level);
/// Parses "debug" / "info" / "warn" / "error" (case-insensitive; "warning"
/// is accepted for "warn"). nullopt for anything else.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view text);

/// Structured key/value payload attached to an event. Order is preserved
/// in every rendering.
using LogFields = std::vector<std::pair<std::string, std::string>>;

/// One structured log event. `since_start` is a monotonic offset from the
/// owning EventLog's construction (steady clock, so reload/suspend-proof);
/// `sequence` totally orders events across threads.
struct LogEvent {
  LogLevel level = LogLevel::kInfo;
  std::chrono::nanoseconds since_start{0};
  std::uint64_t sequence = 0;
  std::string message;
  LogFields fields;
};

/// Renders one event as a single JSON object line (JSONL record):
///   {"ts_seconds":1.234,"level":"info","message":"...","fields":{...}}
[[nodiscard]] std::string to_jsonl(const LogEvent& event);
/// Renders one event for humans: `[   1.234s] INFO  message key=value`.
[[nodiscard]] std::string to_human(const LogEvent& event);

/// Structured event log with per-thread ring-buffer retention and pluggable
/// sinks. Replaces ad-hoc std::cerr diagnostics in the daemons/tools.
///
/// Design:
///   - Each logging thread owns a private ring of the most recent events,
///     so writers never contend with one another; the tiny per-ring mutex
///     only synchronizes a writer with tail() snapshot readers (uncontended
///     in steady state, since snapshots are rare /statusz reads).
///   - Level filtering is one relaxed atomic load; suppressed events cost
///     nothing else.
///   - Sinks (human-readable stderr, JSONL file) are serialized by a sink
///     mutex; events are rare (startup, reload, slow requests), so this is
///     never on a request fast path.
///
/// tail(n) merges the per-thread rings by sequence number into the n most
/// recent events — what /statusz shows.
class EventLog {
 public:
  explicit EventLog(std::size_t ring_capacity = 256);
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;
  ~EventLog();

  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }

  /// Human-readable sink on stderr; enabled by default.
  void enable_stderr(bool enabled);
  /// Opens (truncates) a JSONL sink at `path`. Returns false and leaves the
  /// previous sink (if any) untouched when the file cannot be opened.
  bool open_jsonl(const std::string& path);

  void log(LogLevel level, std::string_view message, LogFields fields = {});
  void debug(std::string_view message, LogFields fields = {}) {
    log(LogLevel::kDebug, message, std::move(fields));
  }
  void info(std::string_view message, LogFields fields = {}) {
    log(LogLevel::kInfo, message, std::move(fields));
  }
  void warn(std::string_view message, LogFields fields = {}) {
    log(LogLevel::kWarn, message, std::move(fields));
  }
  void error(std::string_view message, LogFields fields = {}) {
    log(LogLevel::kError, message, std::move(fields));
  }

  /// The most recent `n` retained events across all threads, oldest first.
  [[nodiscard]] std::vector<LogEvent> tail(std::size_t n) const;
  /// Events accepted (post level filter) over the log's lifetime.
  [[nodiscard]] std::uint64_t total_events() const {
    return sequence_.load(std::memory_order_relaxed);
  }

 private:
  struct Ring {
    mutable util::Mutex mutex;
    // Slot capacity is fixed at construction; `next` is the next slot to
    // overwrite, `written` counts events ever written to this ring.
    std::vector<LogEvent> slots GUARDED_BY(mutex);
    std::size_t next GUARDED_BY(mutex) = 0;
    std::uint64_t written GUARDED_BY(mutex) = 0;
  };

  Ring& thread_ring();
  void emit(const LogEvent& event);

  const std::size_t ring_capacity_;
  const std::uint64_t id_;  // process-unique; keys the thread-local ring cache
  const std::chrono::steady_clock::time_point start_;
  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<std::uint64_t> sequence_{0};

  mutable util::Mutex rings_mutex_;
  std::vector<std::unique_ptr<Ring>> rings_ GUARDED_BY(rings_mutex_);

  util::Mutex sink_mutex_;
  bool stderr_enabled_ GUARDED_BY(sink_mutex_) = true;
  std::ofstream jsonl_ GUARDED_BY(sink_mutex_);
};

/// STALECERT_LOG_LEVEL=debug|info|warn|error environment fallback:
/// returns the parsed value of `env_value` (pass getenv(...)), or
/// `fallback` when unset/unparsable.
[[nodiscard]] LogLevel log_level_from_env(const char* env_value,
                                          LogLevel fallback);

}  // namespace stalecert::obs
