#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "stalecert/obs/metrics.hpp"

namespace stalecert::obs {

/// Sliding-window counter: a ring of time-bucketed sub-counters covering
/// the last `horizon` seconds at `bucket_width` resolution. add() is a few
/// relaxed atomics (plus one CAS when the bucket rotates into a new time
/// slice), so it is safe and cheap from any number of writer threads; a
/// concurrent rotation may drop a handful of racing increments, which is
/// acceptable for monitoring-grade rates (lifetime counters stay exact).
///
/// All time-taking methods accept an explicit `now` so tests can drive the
/// clock deterministically; production callers use the default.
class WindowedCounter {
 public:
  using Clock = std::chrono::steady_clock;

  explicit WindowedCounter(std::chrono::seconds horizon = std::chrono::seconds(300),
                           std::chrono::seconds bucket_width = std::chrono::seconds(5));

  void add(std::uint64_t n = 1, Clock::time_point now = Clock::now());

  /// Events recorded in the trailing `window` (clamped to the horizon).
  [[nodiscard]] std::uint64_t sum(std::chrono::seconds window,
                                  Clock::time_point now = Clock::now()) const;
  /// sum(window) / window — events per second.
  [[nodiscard]] double rate_per_second(std::chrono::seconds window,
                                       Clock::time_point now = Clock::now()) const;

  [[nodiscard]] std::chrono::seconds horizon() const { return horizon_; }

 private:
  struct Bucket {
    std::atomic<std::int64_t> epoch{-1};  // bucket index since clock epoch
    std::atomic<std::uint64_t> count{0};
  };

  [[nodiscard]] std::int64_t epoch_of(Clock::time_point now) const;

  std::chrono::seconds horizon_;
  std::chrono::seconds width_;
  std::vector<Bucket> buckets_;
};

/// Sliding-window histogram: like WindowedCounter but each time slice holds
/// a full fixed-bucket value histogram (same `le` semantics as
/// HistogramMetric). snapshot(window) folds the live slices into a
/// HistogramSample, so histogram_quantile()/summarize_histogram() work on
/// recent data exactly as they do on lifetime histograms.
class WindowedHistogram {
 public:
  using Clock = std::chrono::steady_clock;

  /// `upper_bounds` must be non-empty and strictly increasing (validated
  /// the same way as HistogramMetric).
  WindowedHistogram(std::vector<double> upper_bounds,
                    std::chrono::seconds horizon = std::chrono::seconds(300),
                    std::chrono::seconds slice_width = std::chrono::seconds(5));

  void observe(double value, Clock::time_point now = Clock::now());

  /// Merged histogram over the trailing `window` (clamped to the horizon).
  /// name/labels/help of the returned sample are left empty.
  [[nodiscard]] HistogramSample snapshot(
      std::chrono::seconds window, Clock::time_point now = Clock::now()) const;

  [[nodiscard]] const std::vector<double>& upper_bounds() const { return bounds_; }
  [[nodiscard]] std::chrono::seconds horizon() const { return horizon_; }

 private:
  struct Slice {
    std::atomic<std::int64_t> epoch{-1};
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;  // bounds + Inf
    std::atomic<double> sum{0.0};
  };

  [[nodiscard]] std::int64_t epoch_of(Clock::time_point now) const;
  Slice& rotated_slice(std::int64_t epoch);

  std::vector<double> bounds_;
  std::chrono::seconds horizon_;
  std::chrono::seconds width_;
  std::vector<Slice> slices_;
};

}  // namespace stalecert::obs
