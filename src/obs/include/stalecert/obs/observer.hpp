#pragma once

#include <chrono>
#include <string>
#include <string_view>
#include <unordered_map>

#include "stalecert/obs/metrics.hpp"
#include "stalecert/obs/span.hpp"
#include "stalecert/util/mutex.hpp"

namespace stalecert::obs {

/// Hook interface the measurement pipeline reports into. Every stage
/// (ct::LogSet::collect, core::analyze_revocations, the WHOIS and aDNS
/// detectors, core::run_pipeline, sim::World::run) accepts an optional
/// `PipelineObserver*`; a nullptr (the default everywhere) disables
/// instrumentation entirely — call sites pay one pointer test and nothing
/// else. The core libraries only depend on this in-memory interface; all
/// I/O (serialization, file output) lives with the caller.
///
/// Stages emit aggregate counter deltas once per stage, not per item, so an
/// active observer costs one virtual call + one atomic add per counter per
/// stage.
class PipelineObserver {
 public:
  virtual ~PipelineObserver() = default;

  /// A stage began. Stages nest stack-wise (run_pipeline wraps the
  /// per-stage detectors).
  virtual void on_stage_start(std::string_view stage) { (void)stage; }
  /// The matching stage ended after `elapsed` wall-clock time.
  virtual void on_stage_end(std::string_view stage,
                            std::chrono::nanoseconds elapsed) {
    (void)stage;
    (void)elapsed;
  }
  /// A funnel counter delta for the innermost open stage.
  virtual void on_count(std::string_view stage, std::string_view counter,
                        std::uint64_t delta) {
    (void)stage;
    (void)counter;
    (void)delta;
  }
  /// An instantaneous value (pool sizes, coverage rates).
  virtual void on_gauge(std::string_view stage, std::string_view gauge,
                        double value) {
    (void)stage;
    (void)gauge;
    (void)value;
  }
};

/// Shared no-op observer for callers that want a non-null reference.
PipelineObserver& null_observer();

/// RAII stage guard: emits on_stage_start at construction and
/// on_stage_end with measured wall-clock at destruction. Null-safe — with
/// observer == nullptr it does nothing, not even read the clock.
class StageScope {
 public:
  StageScope(PipelineObserver* observer, std::string_view stage);
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;
  ~StageScope();

  /// Forwards a counter delta for this stage (no-op when disabled).
  void count(std::string_view counter, std::uint64_t delta) const;
  /// Forwards a gauge value for this stage (no-op when disabled).
  void gauge(std::string_view name, double value) const;
  [[nodiscard]] bool enabled() const { return observer_ != nullptr; }

 private:
  PipelineObserver* observer_;
  std::string stage_;
  std::chrono::steady_clock::time_point start_{};
};

/// The standard observer: materializes stage reports into a MetricsRegistry
/// and a hierarchical Trace.
///
///   - on_count  -> counter `stalecert_<stage>_<counter>_total`, and the
///                  delta is attached to the innermost open span
///   - on_gauge  -> gauge `stalecert_<stage>_<gauge>`
///   - stage end -> histogram `stalecert_stage_duration_seconds{stage=...}`
///                  plus the span's duration in the trace
///
/// Handles are resolved once per (stage, counter) pair and cached, so
/// repeated reports pay a hash lookup + atomic add.
class MetricsPipelineObserver final : public PipelineObserver {
 public:
  MetricsPipelineObserver();

  void on_stage_start(std::string_view stage) override;
  void on_stage_end(std::string_view stage,
                    std::chrono::nanoseconds elapsed) override;
  void on_count(std::string_view stage, std::string_view counter,
                std::uint64_t delta) override;
  void on_gauge(std::string_view stage, std::string_view gauge,
                double value) override;

  [[nodiscard]] MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] const MetricsRegistry& registry() const { return registry_; }
  // Unchecked read of trace_: valid only after the observed run finished
  // (single-threaded result inspection — how every caller uses it).
  // Concurrent use during a run would be racy by contract; report_json()
  // is the locked alternative.
  [[nodiscard]] const Trace& trace() const NO_THREAD_SAFETY_ANALYSIS {
    return trace_;
  }

  /// Full run report as one JSON object: {"metrics": ..., "trace": ...}.
  [[nodiscard]] std::string report_json() const;

 private:
  MetricsRegistry registry_;
  mutable util::Mutex mutex_;
  Trace trace_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, Counter*> counter_handles_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, Gauge*> gauge_handles_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, HistogramMetric*> duration_handles_
      GUARDED_BY(mutex_);
};

}  // namespace stalecert::obs
