#include "stalecert/obs/trace_export.hpp"

#include <cstdio>

namespace stalecert::obs {

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_micros(std::string& out, std::chrono::nanoseconds duration) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f",
                static_cast<double>(duration.count()) / 1e3);
  out += buf;
}

}  // namespace

std::string to_chrome_trace(const Trace& trace) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& span : trace.spans()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, span.name);
    out += ",\"cat\":\"pipeline\",\"ph\":\"X\",\"ts\":";
    append_micros(out, span.start_offset);
    out += ",\"dur\":";
    append_micros(out, span.duration);
    out += ",\"pid\":1,\"tid\":1,\"args\":{";
    bool first_arg = true;
    for (const auto& [name, value] : span.counters) {
      if (!first_arg) out += ',';
      first_arg = false;
      append_json_string(out, name);
      out += ':' + std::to_string(value);
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace stalecert::obs
