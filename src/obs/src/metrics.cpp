#include "stalecert/obs/metrics.hpp"

#include <algorithm>
#include <cctype>

#include "stalecert/util/error.hpp"

namespace stalecert::obs {
namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  if (!head(name.front())) return false;
  return std::all_of(name.begin() + 1, name.end(), [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  });
}

/// Registry key: name plus rendered labels, unique per (name, labels).
std::string metric_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';  // unit separator: cannot appear in a valid name
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

void check_name(const std::string& name) {
  if (!valid_metric_name(name)) {
    throw LogicError("MetricsRegistry: invalid metric name '" + name + "'");
  }
}

void atomic_add_double(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::add(double delta) { atomic_add_double(value_, delta); }

HistogramMetric::HistogramMetric(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) throw LogicError("HistogramMetric: no buckets");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw LogicError("HistogramMetric: bounds must be strictly increasing");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void HistogramMetric::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, value);
}

std::vector<std::uint64_t> HistogramMetric::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t HistogramMetric::count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double HistogramMetric::sum() const { return sum_.load(std::memory_order_relaxed); }

ScopedTimer::ScopedTimer(HistogramMetric& histogram)
    : histogram_(&histogram), start_(std::chrono::steady_clock::now()) {}

ScopedTimer::~ScopedTimer() {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start_;
  histogram_->observe(elapsed.count());
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels,
                                  const std::string& help) {
  check_name(name);
  const util::MutexLock lock(mutex_);
  auto [it, inserted] = counters_.try_emplace(metric_key(name, labels));
  if (inserted) {
    it->second = {name, labels, help, std::make_unique<Counter>()};
  }
  return *it->second.metric;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels,
                              const std::string& help) {
  check_name(name);
  const util::MutexLock lock(mutex_);
  auto [it, inserted] = gauges_.try_emplace(metric_key(name, labels));
  if (inserted) {
    it->second = {name, labels, help, std::make_unique<Gauge>()};
  }
  return *it->second.metric;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            std::vector<double> upper_bounds,
                                            const Labels& labels,
                                            const std::string& help) {
  check_name(name);
  const util::MutexLock lock(mutex_);
  auto [it, inserted] = histograms_.try_emplace(metric_key(name, labels));
  if (inserted) {
    it->second = {name, labels, help,
                  std::make_unique<HistogramMetric>(std::move(upper_bounds))};
  } else if (it->second.metric->upper_bounds() != upper_bounds) {
    throw LogicError("MetricsRegistry: histogram '" + name +
                     "' re-registered with different buckets");
  }
  return *it->second.metric;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const util::MutexLock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [key, entry] : counters_) {
    snap.counters.push_back(
        {entry.name, entry.labels, entry.help, entry.metric->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, entry] : gauges_) {
    snap.gauges.push_back(
        {entry.name, entry.labels, entry.help, entry.metric->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, entry] : histograms_) {
    snap.histograms.push_back({entry.name, entry.labels, entry.help,
                               entry.metric->upper_bounds(),
                               entry.metric->bucket_counts(),
                               entry.metric->sum(), entry.metric->count()});
  }
  return snap;
}

}  // namespace stalecert::obs
