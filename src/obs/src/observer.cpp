#include "stalecert/obs/observer.hpp"

#include "stalecert/obs/exposition.hpp"

namespace stalecert::obs {
namespace {

/// Default latency buckets for stage durations: 100us .. 60s.
std::vector<double> duration_buckets() {
  return {0.0001, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0};
}

std::string sanitized(std::string_view part) {
  std::string out(part);
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

PipelineObserver& null_observer() {
  static PipelineObserver instance;
  return instance;
}

StageScope::StageScope(PipelineObserver* observer, std::string_view stage)
    : observer_(observer) {
  if (observer_ == nullptr) return;
  stage_ = stage;
  observer_->on_stage_start(stage_);
  start_ = std::chrono::steady_clock::now();
}

StageScope::~StageScope() {
  if (observer_ == nullptr) return;
  observer_->on_stage_end(stage_, std::chrono::steady_clock::now() - start_);
}

void StageScope::count(std::string_view counter, std::uint64_t delta) const {
  if (observer_ != nullptr) observer_->on_count(stage_, counter, delta);
}

void StageScope::gauge(std::string_view name, double value) const {
  if (observer_ != nullptr) observer_->on_gauge(stage_, name, value);
}

MetricsPipelineObserver::MetricsPipelineObserver() = default;

void MetricsPipelineObserver::on_stage_start(std::string_view stage) {
  const util::MutexLock lock(mutex_);
  trace_.begin_span(std::string(stage));
}

void MetricsPipelineObserver::on_stage_end(std::string_view stage,
                                           std::chrono::nanoseconds elapsed) {
  HistogramMetric* histogram = nullptr;
  {
    const util::MutexLock lock(mutex_);
    trace_.end_span(elapsed);
    const std::string key(stage);
    const auto it = duration_handles_.find(key);
    if (it != duration_handles_.end()) {
      histogram = it->second;
    } else {
      histogram = &registry_.histogram(
          "stalecert_stage_duration_seconds", duration_buckets(),
          {{"stage", sanitized(stage)}}, "Wall-clock time spent per stage");
      duration_handles_.emplace(key, histogram);
    }
  }
  histogram->observe(std::chrono::duration<double>(elapsed).count());
}

void MetricsPipelineObserver::on_count(std::string_view stage,
                                       std::string_view counter,
                                       std::uint64_t delta) {
  Counter* handle = nullptr;
  {
    const util::MutexLock lock(mutex_);
    std::string key;
    key.reserve(stage.size() + counter.size() + 1);
    key.append(stage);
    key += '\x1f';
    key.append(counter);
    const auto it = counter_handles_.find(key);
    if (it != counter_handles_.end()) {
      handle = it->second;
    } else {
      std::string name =
          "stalecert_" + sanitized(stage) + '_' + sanitized(counter);
      if (!name.ends_with("_total")) name += "_total";
      handle = &registry_.counter(name);
      counter_handles_.emplace(std::move(key), handle);
    }
    trace_.count(std::string(counter), delta);
  }
  handle->inc(delta);
}

void MetricsPipelineObserver::on_gauge(std::string_view stage,
                                       std::string_view gauge, double value) {
  Gauge* handle = nullptr;
  {
    const util::MutexLock lock(mutex_);
    std::string key;
    key.reserve(stage.size() + gauge.size() + 1);
    key.append(stage);
    key += '\x1f';
    key.append(gauge);
    const auto it = gauge_handles_.find(key);
    if (it != gauge_handles_.end()) {
      handle = it->second;
    } else {
      handle = &registry_.gauge("stalecert_" + sanitized(stage) + '_' +
                                sanitized(gauge));
      gauge_handles_.emplace(std::move(key), handle);
    }
  }
  handle->set(value);
}

std::string MetricsPipelineObserver::report_json() const {
  const MetricsSnapshot snap = registry_.snapshot();
  std::string trace_json;
  {
    const util::MutexLock lock(mutex_);
    trace_json = to_json(trace_);
  }
  return "{\"metrics\":" + to_json(snap) + ",\"trace\":" + trace_json + '}';
}

}  // namespace stalecert::obs
