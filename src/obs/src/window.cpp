#include "stalecert/obs/window.hpp"

#include <algorithm>

#include "stalecert/util/error.hpp"

namespace stalecert::obs {

namespace {

void atomic_add_double(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

std::size_t bucket_count_for(std::chrono::seconds horizon,
                             std::chrono::seconds width) {
  if (width.count() <= 0) throw LogicError("windowed metric: bucket width <= 0");
  if (horizon < width) throw LogicError("windowed metric: horizon < bucket width");
  // One spare bucket so the oldest in-horizon slice is never the one being
  // overwritten by the current time.
  return static_cast<std::size_t>(horizon / width) + 1;
}

}  // namespace

WindowedCounter::WindowedCounter(std::chrono::seconds horizon,
                                 std::chrono::seconds bucket_width)
    : horizon_(horizon),
      width_(bucket_width),
      buckets_(bucket_count_for(horizon, bucket_width)) {}

std::int64_t WindowedCounter::epoch_of(Clock::time_point now) const {
  return std::chrono::duration_cast<std::chrono::seconds>(
             now.time_since_epoch()) /
         width_;
}

void WindowedCounter::add(std::uint64_t n, Clock::time_point now) {
  const std::int64_t epoch = epoch_of(now);
  Bucket& bucket = buckets_[static_cast<std::size_t>(epoch) % buckets_.size()];
  std::int64_t seen = bucket.epoch.load(std::memory_order_acquire);
  if (seen != epoch) {
    // First writer into a new time slice resets the stale bucket. A racing
    // add between the exchange and the store can be lost; windows are
    // monitoring-grade, lifetime counters remain the exact record.
    if (bucket.epoch.compare_exchange_strong(seen, epoch,
                                             std::memory_order_acq_rel)) {
      bucket.count.store(0, std::memory_order_release);
    }
  }
  bucket.count.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t WindowedCounter::sum(std::chrono::seconds window,
                                   Clock::time_point now) const {
  const std::int64_t newest = epoch_of(now);
  const auto span = std::min(window, horizon_);
  const std::int64_t oldest = newest - span / width_ + 1;
  std::uint64_t total = 0;
  for (const Bucket& bucket : buckets_) {
    const std::int64_t epoch = bucket.epoch.load(std::memory_order_acquire);
    if (epoch >= oldest && epoch <= newest) {
      total += bucket.count.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double WindowedCounter::rate_per_second(std::chrono::seconds window,
                                        Clock::time_point now) const {
  const auto span = std::min(window, horizon_);
  if (span.count() <= 0) return 0.0;
  return static_cast<double>(sum(span, now)) /
         static_cast<double>(span.count());
}

WindowedHistogram::WindowedHistogram(std::vector<double> upper_bounds,
                                     std::chrono::seconds horizon,
                                     std::chrono::seconds slice_width)
    : bounds_(std::move(upper_bounds)),
      horizon_(horizon),
      width_(slice_width),
      slices_(bucket_count_for(horizon, slice_width)) {
  if (bounds_.empty()) throw LogicError("WindowedHistogram: no buckets");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw LogicError("WindowedHistogram: bounds must be strictly increasing");
  }
  for (Slice& slice : slices_) {
    slice.counts =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  }
}

std::int64_t WindowedHistogram::epoch_of(Clock::time_point now) const {
  return std::chrono::duration_cast<std::chrono::seconds>(
             now.time_since_epoch()) /
         width_;
}

WindowedHistogram::Slice& WindowedHistogram::rotated_slice(std::int64_t epoch) {
  Slice& slice = slices_[static_cast<std::size_t>(epoch) % slices_.size()];
  std::int64_t seen = slice.epoch.load(std::memory_order_acquire);
  if (seen != epoch) {
    if (slice.epoch.compare_exchange_strong(seen, epoch,
                                            std::memory_order_acq_rel)) {
      for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        slice.counts[i].store(0, std::memory_order_release);
      }
      slice.sum.store(0.0, std::memory_order_release);
    }
  }
  return slice;
}

void WindowedHistogram::observe(double value, Clock::time_point now) {
  Slice& slice = rotated_slice(epoch_of(now));
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  slice.counts[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  atomic_add_double(slice.sum, value);
}

HistogramSample WindowedHistogram::snapshot(std::chrono::seconds window,
                                            Clock::time_point now) const {
  const std::int64_t newest = epoch_of(now);
  const auto span = std::min(window, horizon_);
  const std::int64_t oldest = newest - span / width_ + 1;

  HistogramSample sample;
  sample.upper_bounds = bounds_;
  sample.bucket_counts.assign(bounds_.size() + 1, 0);
  for (const Slice& slice : slices_) {
    const std::int64_t epoch = slice.epoch.load(std::memory_order_acquire);
    if (epoch < oldest || epoch > newest) continue;
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      sample.bucket_counts[i] += slice.counts[i].load(std::memory_order_relaxed);
    }
    sample.sum += slice.sum.load(std::memory_order_relaxed);
  }
  for (const std::uint64_t count : sample.bucket_counts) sample.count += count;
  return sample;
}

}  // namespace stalecert::obs
