#include "stalecert/obs/span.hpp"

#include <cstdio>

#include "stalecert/util/error.hpp"

namespace stalecert::obs {

std::size_t Trace::begin_span(std::string name) {
  const auto now = std::chrono::steady_clock::now();
  if (spans_.empty()) epoch_ = now;
  SpanRecord span;
  span.name = std::move(name);
  span.parent = stack_.empty() ? npos : stack_.back();
  span.depth = stack_.size();
  span.start_offset = now - epoch_;
  spans_.push_back(std::move(span));
  stack_.push_back(spans_.size() - 1);
  return spans_.size() - 1;
}

void Trace::end_span(std::chrono::nanoseconds duration) {
  if (stack_.empty()) throw LogicError("Trace: end_span with no open span");
  SpanRecord& span = spans_[stack_.back()];
  span.duration = duration;
  span.closed = true;
  stack_.pop_back();
}

void Trace::count(const std::string& counter, std::uint64_t delta) {
  if (stack_.empty()) return;
  auto& counters = spans_[stack_.back()].counters;
  for (auto& [name, value] : counters) {
    if (name == counter) {
      value += delta;
      return;
    }
  }
  counters.emplace_back(counter, delta);
}

std::string Trace::render() const {
  std::string out;
  for (const auto& span : spans_) {
    out.append(span.depth * 2, ' ');
    out += span.name;
    char buf[48];
    std::snprintf(buf, sizeof buf, "  %.3f ms", span.seconds() * 1e3);
    out += buf;
    for (const auto& [name, value] : span.counters) {
      out += "  ";
      out += name;
      out += '=';
      out += std::to_string(value);
    }
    out += '\n';
  }
  return out;
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string to_json(const Trace& trace) {
  std::string out = "[";
  bool first_span = true;
  for (const auto& span : trace.spans()) {
    if (!first_span) out += ',';
    first_span = false;
    out += "{\"name\":";
    append_json_string(out, span.name);
    out += ",\"depth\":" + std::to_string(span.depth);
    out += ",\"parent\":";
    out += span.parent == Trace::npos ? "null" : std::to_string(span.parent);
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9f", span.seconds());
    out += ",\"duration_seconds\":";
    out += buf;
    out += ",\"counters\":{";
    bool first_counter = true;
    for (const auto& [name, value] : span.counters) {
      if (!first_counter) out += ',';
      first_counter = false;
      append_json_string(out, name);
      out += ':' + std::to_string(value);
    }
    out += "}}";
  }
  out += ']';
  return out;
}

}  // namespace stalecert::obs
