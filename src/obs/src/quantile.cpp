#include "stalecert/obs/quantile.hpp"

#include <algorithm>

#include "stalecert/util/error.hpp"

namespace stalecert::obs {

double histogram_quantile(const HistogramSample& sample, double q) {
  if (q < 0.0 || q > 1.0) throw LogicError("histogram_quantile: q outside [0, 1]");
  if (sample.count == 0) return 0.0;

  const double rank = q * static_cast<double>(sample.count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < sample.bucket_counts.size(); ++i) {
    const std::uint64_t in_bucket = sample.bucket_counts[i];
    if (in_bucket == 0) continue;
    const double below = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < rank) continue;

    if (i >= sample.upper_bounds.size()) {
      // +Inf bucket: no upper edge to interpolate toward; report the
      // largest finite bound (Prometheus does the same).
      return sample.upper_bounds.empty() ? 0.0 : sample.upper_bounds.back();
    }
    const double hi = sample.upper_bounds[i];
    const double lo = i == 0 ? 0.0 : sample.upper_bounds[i - 1];
    const double fraction =
        (rank - below) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * std::min(1.0, std::max(0.0, fraction));
  }
  return sample.upper_bounds.empty() ? 0.0 : sample.upper_bounds.back();
}

QuantileSummary summarize_histogram(const HistogramSample& sample) {
  QuantileSummary summary;
  summary.count = sample.count;
  summary.sum = sample.sum;
  if (sample.count > 0) {
    summary.p50 = histogram_quantile(sample, 0.50);
    summary.p90 = histogram_quantile(sample, 0.90);
    summary.p99 = histogram_quantile(sample, 0.99);
  }
  return summary;
}

QuantileSummary summarize_histogram(const HistogramMetric& metric) {
  HistogramSample sample;
  sample.upper_bounds = metric.upper_bounds();
  sample.bucket_counts = metric.bucket_counts();
  sample.sum = metric.sum();
  sample.count = metric.count();
  return summarize_histogram(sample);
}

}  // namespace stalecert::obs
