#include "stalecert/obs/exposition.hpp"

#include <cmath>
#include <cstdio>
#include <set>

namespace stalecert::obs {
namespace {

/// Shortest double representation that round-trips; Prometheus and JSON
/// both accept plain decimal/exponent notation.
std::string format_double(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof shorter, "%.*g", precision, value);
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == value) return shorter;
  }
  return buf;
}

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Renders `{k1="v1",k2="v2"}`, with `extra` appended last (used for the
/// histogram `le` label). Empty label sets render as "".
std::string render_labels(const Labels& labels,
                          const std::pair<std::string, std::string>* extra) {
  if (labels.empty() && !extra) return "";
  std::string out = "{";
  bool first = true;
  auto append = [&](const std::string& key, const std::string& value) {
    if (!first) out += ',';
    first = false;
    out += key + "=\"" + escape_label_value(value) + '"';
  };
  for (const auto& [key, value] : labels) append(key, value);
  if (extra) append(extra->first, extra->second);
  out += '}';
  return out;
}

/// Emits HELP/TYPE header lines once per metric family name.
void emit_header(std::string& out, std::set<std::string>& seen,
                 const std::string& name, const std::string& help,
                 const char* type) {
  if (!seen.insert(name).second) return;
  if (!help.empty()) out += "# HELP " + name + ' ' + help + '\n';
  out += "# TYPE " + name + ' ' + type + '\n';
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_labels(std::string& out, const Labels& labels) {
  out += "\"labels\":{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, key);
    out += ':';
    append_json_string(out, value);
  }
  out += '}';
}

/// JSON numbers may not be Inf/NaN; emit those as strings.
std::string json_number(double value) {
  if (std::isnan(value) || std::isinf(value)) {
    return '"' + format_double(value) + '"';
  }
  return format_double(value);
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::set<std::string> seen;
  for (const auto& sample : snapshot.counters) {
    emit_header(out, seen, sample.name, sample.help, "counter");
    out += sample.name + render_labels(sample.labels, nullptr) + ' ' +
           std::to_string(sample.value) + '\n';
  }
  for (const auto& sample : snapshot.gauges) {
    emit_header(out, seen, sample.name, sample.help, "gauge");
    out += sample.name + render_labels(sample.labels, nullptr) + ' ' +
           format_double(sample.value) + '\n';
  }
  for (const auto& sample : snapshot.histograms) {
    emit_header(out, seen, sample.name, sample.help, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < sample.bucket_counts.size(); ++i) {
      cumulative += sample.bucket_counts[i];
      const std::pair<std::string, std::string> le{
          "le", i < sample.upper_bounds.size()
                    ? format_double(sample.upper_bounds[i])
                    : "+Inf"};
      out += sample.name + "_bucket" + render_labels(sample.labels, &le) + ' ' +
             std::to_string(cumulative) + '\n';
    }
    out += sample.name + "_sum" + render_labels(sample.labels, nullptr) + ' ' +
           format_double(sample.sum) + '\n';
    out += sample.name + "_count" + render_labels(sample.labels, nullptr) + ' ' +
           std::to_string(sample.count) + '\n';
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& sample : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, sample.name);
    out += ',';
    append_json_labels(out, sample.labels);
    out += ",\"value\":" + std::to_string(sample.value) + '}';
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& sample : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, sample.name);
    out += ',';
    append_json_labels(out, sample.labels);
    out += ",\"value\":" + json_number(sample.value) + '}';
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& sample : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, sample.name);
    out += ',';
    append_json_labels(out, sample.labels);
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i < sample.bucket_counts.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"le\":";
      out += i < sample.upper_bounds.size()
                 ? json_number(sample.upper_bounds[i])
                 : std::string("\"+Inf\"");
      out += ",\"count\":" + std::to_string(sample.bucket_counts[i]) + '}';
    }
    out += "],\"sum\":" + json_number(sample.sum);
    out += ",\"count\":" + std::to_string(sample.count) + '}';
  }
  out += "]}";
  return out;
}

}  // namespace stalecert::obs
