#include "stalecert/obs/event_log.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "stalecert/util/strings.hpp"

namespace stalecert::obs {

namespace {

std::atomic<std::uint64_t> next_log_id{1};

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

std::optional<LogLevel> parse_log_level(std::string_view text) {
  const std::string lowered = util::to_lower(text);
  if (lowered == "debug") return LogLevel::kDebug;
  if (lowered == "info") return LogLevel::kInfo;
  if (lowered == "warn" || lowered == "warning") return LogLevel::kWarn;
  if (lowered == "error") return LogLevel::kError;
  return std::nullopt;
}

LogLevel log_level_from_env(const char* env_value, LogLevel fallback) {
  if (env_value == nullptr) return fallback;
  return parse_log_level(env_value).value_or(fallback);
}

std::string to_jsonl(const LogEvent& event) {
  std::string out = "{\"ts_seconds\":";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f",
                std::chrono::duration<double>(event.since_start).count());
  out += buf;
  out += ",\"seq\":" + std::to_string(event.sequence);
  out += ",\"level\":\"";
  out += to_string(event.level);
  out += "\",\"message\":";
  append_json_string(out, event.message);
  out += ",\"fields\":{";
  bool first = true;
  for (const auto& [key, value] : event.fields) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, key);
    out += ':';
    append_json_string(out, value);
  }
  out += "}}";
  return out;
}

std::string to_human(const LogEvent& event) {
  char head[48];
  static constexpr const char* kNames[] = {"DEBUG", "INFO ", "WARN ", "ERROR"};
  std::snprintf(head, sizeof head, "[%9.3fs] %s ",
                std::chrono::duration<double>(event.since_start).count(),
                kNames[static_cast<int>(event.level)]);
  std::string out = head;
  out += event.message;
  for (const auto& [key, value] : event.fields) {
    out += ' ';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

EventLog::EventLog(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      id_(next_log_id.fetch_add(1, std::memory_order_relaxed)),
      start_(std::chrono::steady_clock::now()) {}

EventLog::~EventLog() = default;

void EventLog::enable_stderr(bool enabled) {
  const util::MutexLock lock(sink_mutex_);
  stderr_enabled_ = enabled;
}

bool EventLog::open_jsonl(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  const util::MutexLock lock(sink_mutex_);
  jsonl_ = std::move(out);
  return true;
}

EventLog::Ring& EventLog::thread_ring() {
  // Cache keyed by the log's process-unique id, not its address: ids are
  // never reused, so an entry left behind by a destroyed log can never be
  // mistaken for this one.
  thread_local std::unordered_map<std::uint64_t, Ring*> cache;
  if (const auto it = cache.find(id_); it != cache.end()) return *it->second;
  auto ring = std::make_unique<Ring>();
  ring->slots.reserve(ring_capacity_);
  Ring* raw = ring.get();
  {
    const util::MutexLock lock(rings_mutex_);
    rings_.push_back(std::move(ring));
  }
  cache.emplace(id_, raw);
  return *raw;
}

void EventLog::log(LogLevel level, std::string_view message, LogFields fields) {
  if (static_cast<int>(level) < level_.load(std::memory_order_relaxed)) return;

  LogEvent event;
  event.level = level;
  event.since_start = std::chrono::steady_clock::now() - start_;
  event.sequence = sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  event.message = std::string(message);
  event.fields = std::move(fields);

  emit(event);

  Ring& ring = thread_ring();
  const util::MutexLock lock(ring.mutex);
  if (ring.slots.size() < ring_capacity_) {
    ring.slots.push_back(std::move(event));
  } else {
    ring.slots[ring.next] = std::move(event);
  }
  ring.next = (ring.next + 1) % ring_capacity_;
  ++ring.written;
}

void EventLog::emit(const LogEvent& event) {
  const util::MutexLock lock(sink_mutex_);
  if (stderr_enabled_) {
    // One preassembled write so concurrent threads never interleave lines.
    std::cerr << to_human(event) + "\n";
  }
  if (jsonl_.is_open()) {
    jsonl_ << to_jsonl(event) << '\n';
    jsonl_.flush();
  }
}

std::vector<LogEvent> EventLog::tail(std::size_t n) const {
  std::vector<LogEvent> merged;
  {
    const util::MutexLock lock(rings_mutex_);
    for (const auto& ring : rings_) {
      const util::MutexLock ring_lock(ring->mutex);
      merged.insert(merged.end(), ring->slots.begin(), ring->slots.end());
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const LogEvent& a, const LogEvent& b) {
              return a.sequence < b.sequence;
            });
  if (merged.size() > n) merged.erase(merged.begin(), merged.end() - n);
  return merged;
}

}  // namespace stalecert::obs
