#include "stalecert/obs/request_trace.hpp"

#include <algorithm>
#include <cstdio>

namespace stalecert::obs {

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_micros(std::string& out, std::chrono::nanoseconds duration) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f",
                static_cast<double>(duration.count()) / 1e3);
  out += buf;
}

}  // namespace

void RequestTrace::add_span(std::string_view name,
                            std::chrono::nanoseconds duration) {
  for (auto& [existing, total_duration] : spans) {
    if (existing == name) {
      total_duration += duration;
      return;
    }
  }
  spans.emplace_back(std::string(name), duration);
}

std::chrono::nanoseconds RequestTrace::span_sum() const {
  std::chrono::nanoseconds sum{0};
  for (const auto& [name, duration] : spans) sum += duration;
  return sum;
}

std::string to_json(const RequestTrace& trace) {
  std::string out = "{\"id\":" + std::to_string(trace.id);
  out += ",\"endpoint\":";
  append_json_string(out, trace.endpoint);
  out += ",\"target\":";
  append_json_string(out, trace.target);
  out += ",\"status\":" + std::to_string(trace.status);
  out += ",\"total_us\":";
  append_micros(out, trace.total);
  out += ",\"spans\":{";
  bool first = true;
  for (const auto& [name, duration] : trace.spans) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_micros(out, duration);
  }
  out += "}}";
  return out;
}

SlowTraceRing::SlowTraceRing(std::size_t capacity, std::uint64_t recency_window)
    : capacity_(capacity == 0 ? 1 : capacity),
      recency_window_(recency_window == 0 ? 1 : recency_window) {}

void SlowTraceRing::evict_stale_locked(std::uint64_t now_sequence) {
  traces_.erase(std::remove_if(traces_.begin(), traces_.end(),
                               [&](const RequestTrace& t) {
                                 return now_sequence - t.sequence >
                                        recency_window_;
                               }),
                traces_.end());
}

void SlowTraceRing::refresh_floor_locked() {
  floor_ns_.store(traces_.size() < capacity_ ? 0 : traces_.back().total.count(),
                  std::memory_order_relaxed);
}

bool SlowTraceRing::offer(RequestTrace trace) {
  const std::uint64_t sequence =
      next_sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  trace.sequence = sequence;

  // Fast path: the ring is full of fresh, slower traces — no lock needed.
  // floor_ns_ is 0 while the ring has room (or holds possibly-stale
  // entries), which forces the locked path.
  const std::int64_t floor = floor_ns_.load(std::memory_order_relaxed);
  if (floor > 0 && trace.total.count() <= floor &&
      sequence % (recency_window_ / 4 + 1) != 0) {
    return false;
  }

  const util::MutexLock lock(mutex_);
  evict_stale_locked(sequence);
  const bool admit =
      traces_.size() < capacity_ || trace.total > traces_.back().total;
  if (admit) {
    const auto pos = std::upper_bound(
        traces_.begin(), traces_.end(), trace,
        [](const RequestTrace& a, const RequestTrace& b) {
          return a.total > b.total;
        });
    traces_.insert(pos, std::move(trace));
    if (traces_.size() > capacity_) traces_.pop_back();
  }
  refresh_floor_locked();
  return admit;
}

void SlowTraceRing::add_late_span(std::uint64_t trace_id, std::string_view name,
                                  std::chrono::nanoseconds duration) {
  const util::MutexLock lock(mutex_);
  for (RequestTrace& trace : traces_) {
    if (trace.id != trace_id) continue;
    trace.add_span(name, duration);
    trace.total += duration;
    return;
  }
}

std::vector<RequestTrace> SlowTraceRing::snapshot() const {
  const util::MutexLock lock(mutex_);
  return traces_;
}

}  // namespace stalecert::obs
