#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "stalecert/dns/records.hpp"
#include "stalecert/dns/zone.hpp"
#include "stalecert/util/date.hpp"

namespace stalecert::dns {

/// One day's resolution results for all scanned domains — the aDNS dataset
/// unit in Table 3 of the paper.
struct DailySnapshot {
  util::Date date;
  std::map<std::string, DomainRecords> records;

  [[nodiscard]] const DomainRecords* find(const std::string& domain) const;
};

/// Stores consecutive daily snapshots and answers day-over-day diff
/// queries — the substrate for the managed-TLS departure detector (§4.3).
class SnapshotStore {
 public:
  void add(DailySnapshot snapshot);

  [[nodiscard]] std::size_t days() const { return snapshots_.size(); }
  [[nodiscard]] const DailySnapshot& day(std::size_t i) const;
  [[nodiscard]] const std::vector<DailySnapshot>& all() const { return snapshots_; }
  [[nodiscard]] std::optional<util::Date> first_date() const;
  [[nodiscard]] std::optional<util::Date> last_date() const;

 private:
  std::vector<DailySnapshot> snapshots_;
};

/// Active-DNS scan engine: enumerates every domain in the public zones of a
/// DnsDatabase and resolves it, producing one DailySnapshot per call. The
/// paper ran this daily over CZDS-derived zones for three months.
class ScanEngine {
 public:
  explicit ScanEngine(const DnsDatabase& database) : database_(&database) {}

  [[nodiscard]] DailySnapshot scan(util::Date date) const;

 private:
  const DnsDatabase* database_;
};

}  // namespace stalecert::dns
