#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "stalecert/util/date.hpp"
#include "stalecert/x509/certificate.hpp"

namespace stalecert::dns {

/// RFC 6698 TLSA certificate usages.
enum class TlsaUsage : std::uint8_t {
  kPkixTa = 0,  // CA constraint (still requires PKIX validation)
  kPkixEe = 1,  // service certificate constraint
  kDaneTa = 2,  // trust anchor assertion
  kDaneEe = 3,  // domain-issued certificate (no CA involved at all)
};

enum class TlsaSelector : std::uint8_t {
  kFullCertificate = 0,
  kSubjectPublicKeyInfo = 1,
};

enum class TlsaMatching : std::uint8_t {
  kExact = 0,
  kSha256 = 1,
};

std::string to_string(TlsaUsage usage);

/// A TLSA resource record published at _443._tcp.<name>. The TTL is the
/// paper's point (§7.2/§8): DANE bindings live in DNS caches for *hours*,
/// versus the *months-to-years* of certificate lifetimes — so ownership
/// changes propagate almost immediately.
struct TlsaRecord {
  TlsaUsage usage = TlsaUsage::kDaneEe;
  TlsaSelector selector = TlsaSelector::kSubjectPublicKeyInfo;
  TlsaMatching matching = TlsaMatching::kSha256;
  std::vector<std::uint8_t> association;
  std::uint32_t ttl_seconds = 3600;

  bool operator==(const TlsaRecord&) const = default;
};

/// Builds the TLSA record that pins a given certificate.
TlsaRecord tlsa_for_certificate(const x509::Certificate& cert, TlsaUsage usage,
                                TlsaSelector selector, TlsaMatching matching);

/// Does the record match the presented certificate?
bool tlsa_matches(const TlsaRecord& record, const x509::Certificate& cert);

/// The authoritative publication side: TLSA records keyed by domain, with
/// publication history so a resolver cache can be modelled on top.
class DaneRegistry {
 public:
  /// Publishes (replacing any previous record) at `when`.
  void publish(const std::string& domain, TlsaRecord record, util::Date when);
  /// Removes the record (domain abandoned / DANE disabled).
  void remove(const std::string& domain, util::Date when);

  /// The authoritative record at `when` (publication-time semantics).
  [[nodiscard]] std::optional<TlsaRecord> lookup(const std::string& domain,
                                                 util::Date when) const;

  /// Worst-case staleness of a cached answer in days: a resolver that
  /// fetched just before a change serves the old binding for at most one
  /// TTL. (Sub-day TTLs round up to 1 day at our simulation granularity.)
  [[nodiscard]] static std::int64_t max_cache_staleness_days(const TlsaRecord& r) {
    return std::max<std::int64_t>(1, r.ttl_seconds / 86400);
  }

 private:
  struct Publication {
    util::Date when;
    std::optional<TlsaRecord> record;  // nullopt = removal
  };
  std::map<std::string, std::vector<Publication>> history_;
};

}  // namespace stalecert::dns
