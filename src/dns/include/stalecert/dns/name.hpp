#pragma once

#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace stalecert::dns {

/// Splits a domain name into labels ("www.foo.co.uk" -> {www,foo,co,uk}).
/// Names are normalized to lowercase; a trailing root dot is dropped.
std::vector<std::string> labels(std::string_view domain);

/// Joins labels back into a domain name.
std::string join_labels(const std::vector<std::string>& parts);

/// True if the string is a plausible DNS name (non-empty labels, LDH).
bool is_valid_domain(std::string_view domain);

/// Public suffix list: the set of effective TLDs (eTLDs) under which the
/// public can register names. Supports exact rules ("com", "co.uk") and
/// wildcard rules ("*.ck"). Mirrors the publicsuffix.org semantics the
/// paper relies on for e2LD aggregation.
class PublicSuffixList {
 public:
  PublicSuffixList() = default;

  /// A small built-in list sufficient for the simulated zones: generic
  /// TLDs + common country second-level registries.
  static const PublicSuffixList& builtin();

  void add_rule(std::string_view rule);      // e.g. "co.uk" or "*.ck"
  void add_exception(std::string_view rule); // e.g. "!www.ck"

  /// Effective TLD of a domain ("foo.co.uk" -> "co.uk"); nullopt when the
  /// domain itself is a public suffix or empty.
  [[nodiscard]] std::optional<std::string> etld(std::string_view domain) const;

  /// Effective second-level domain ("a.b.foo.co.uk" -> "foo.co.uk").
  /// nullopt when no registrable parent exists.
  [[nodiscard]] std::optional<std::string> e2ld(std::string_view domain) const;

  /// True if the name is exactly a public suffix.
  [[nodiscard]] bool is_public_suffix(std::string_view domain) const;

 private:
  std::set<std::string> rules_;
  std::set<std::string> wildcard_parents_;  // "ck" for rule "*.ck"
  std::set<std::string> exceptions_;
};

/// Convenience wrapper over the builtin list.
std::optional<std::string> e2ld(std::string_view domain);

}  // namespace stalecert::dns
