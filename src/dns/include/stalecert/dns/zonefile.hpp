#pragma once

#include <string>
#include <vector>

#include "stalecert/dns/records.hpp"
#include "stalecert/dns/zone.hpp"

namespace stalecert::dns {

/// Zone-file text I/O — the CZDS artifact (§4.3): registries publish their
/// zones as master files; the paper extracts the domain universe from
/// them. We emit/parse the minimal master-file dialect those dumps use:
///   name TTL IN TYPE rdata
/// with '$ORIGIN'/comment lines tolerated on input.

/// Renders one zone of a DnsDatabase (delegations only, as CZDS dumps
/// carry NS/A records for the zone cut).
std::string emit_zone_file(const DnsDatabase& db, const std::string& tld);

/// Parses master-file text into resource records. Unknown record types
/// and malformed lines are skipped (counted via `skipped` when provided).
std::vector<ResourceRecord> parse_zone_file(const std::string& text,
                                            std::size_t* skipped = nullptr);

/// Loads parsed records into a DnsDatabase zone (the consumer side of a
/// CZDS download): every owner name is added to the zone and its
/// NS/A/AAAA/CNAME records installed.
void load_zone(DnsDatabase& db, const std::string& tld,
               const std::vector<ResourceRecord>& records);

}  // namespace stalecert::dns
