#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stalecert::dns {

/// The record types collected by the paper's active-DNS dataset (Table 3).
enum class RecordType : std::uint8_t { kA, kAaaa, kNs, kCname };

std::string to_string(RecordType type);

/// One resource record.
struct ResourceRecord {
  std::string name;   // owner, lowercase, no trailing dot
  RecordType type = RecordType::kA;
  std::string value;  // address text or target name
  std::uint32_t ttl = 300;

  bool operator==(const ResourceRecord&) const = default;
};

/// All records for one domain as seen by a single resolution pass — the
/// unit stored per (domain, day) in the scan snapshots.
struct DomainRecords {
  std::vector<std::string> a;       // IPv4 addresses
  std::vector<std::string> aaaa;    // IPv6 addresses
  std::vector<std::string> ns;      // nameserver host names
  std::vector<std::string> cname;   // canonical-name chain in order

  [[nodiscard]] bool empty() const {
    return a.empty() && aaaa.empty() && ns.empty() && cname.empty();
  }

  /// True if any NS or CNAME value matches a wildcard pattern like
  /// "*.ns.cloudflare.com" — the paper's managed-TLS delegation test.
  [[nodiscard]] bool delegates_to(const std::string& pattern) const;

  bool operator==(const DomainRecords&) const = default;
};

}  // namespace stalecert::dns
