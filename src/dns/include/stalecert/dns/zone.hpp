#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "stalecert/dns/records.hpp"

namespace stalecert::dns {

/// The authoritative DNS state of the simulated Internet at an instant:
/// per-domain NS delegation, CNAME and address records. The simulator
/// mutates this as registrants change hosting; the ScanEngine reads it
/// daily.
class DnsDatabase {
 public:
  /// Registers a domain into a zone (CZDS-visible). Idempotent.
  void add_to_zone(const std::string& tld, const std::string& domain);
  void remove_from_zone(const std::string& tld, const std::string& domain);

  /// All zone names ("com", "net", "org", ...).
  [[nodiscard]] std::vector<std::string> zones() const;
  /// All domains in a zone — the CZDS zone-file enumeration.
  [[nodiscard]] std::vector<std::string> zone_domains(const std::string& tld) const;
  /// All domains across all public zones.
  [[nodiscard]] std::vector<std::string> all_domains() const;

  void set_ns(const std::string& domain, std::vector<std::string> nameservers);
  void set_cname(const std::string& domain, std::optional<std::string> target);
  void set_a(const std::string& domain, std::vector<std::string> addresses);
  void set_aaaa(const std::string& domain, std::vector<std::string> addresses);
  /// Removes every record for the domain (expired / deleted).
  void clear_records(const std::string& domain);

  [[nodiscard]] std::vector<std::string> ns(const std::string& domain) const;
  [[nodiscard]] std::optional<std::string> cname(const std::string& domain) const;

  /// Resolves a domain the way the paper's scanner records it: direct NS,
  /// the CNAME chain (followed up to `max_chain` hops), and the terminal
  /// A/AAAA records.
  [[nodiscard]] DomainRecords resolve(const std::string& domain,
                                      int max_chain = 8) const;

  [[nodiscard]] std::size_t domain_count() const { return entries_.size(); }

 private:
  struct Entry {
    std::vector<std::string> ns;
    std::optional<std::string> cname;
    std::vector<std::string> a;
    std::vector<std::string> aaaa;
  };
  std::map<std::string, Entry> entries_;
  std::map<std::string, std::set<std::string>> zones_;
};

}  // namespace stalecert::dns
