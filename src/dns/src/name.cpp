#include "stalecert/dns/name.hpp"

#include <cctype>

#include "stalecert/util/strings.hpp"

namespace stalecert::dns {

std::vector<std::string> labels(std::string_view domain) {
  std::string lowered = util::to_lower(domain);
  if (!lowered.empty() && lowered.back() == '.') lowered.pop_back();
  if (lowered.empty()) return {};
  return util::split(lowered, '.');
}

std::string join_labels(const std::vector<std::string>& parts) {
  return util::join(parts, ".");
}

bool is_valid_domain(std::string_view domain) {
  const auto parts = labels(domain);
  if (parts.empty()) return false;
  for (const auto& label : parts) {
    if (label.empty() || label.size() > 63) return false;
    for (std::size_t i = 0; i < label.size(); ++i) {
      const char c = label[i];
      const bool alnum = std::isalnum(static_cast<unsigned char>(c)) != 0;
      const bool wildcard_head = c == '*' && i == 0 && label.size() == 1;
      if (!alnum && c != '-' && !wildcard_head) return false;
    }
    if (label.front() == '-' || label.back() == '-') return false;
  }
  return true;
}

void PublicSuffixList::add_rule(std::string_view rule) {
  const std::string lowered = util::to_lower(rule);
  if (util::starts_with(lowered, "*.")) {
    wildcard_parents_.insert(lowered.substr(2));
  } else {
    rules_.insert(lowered);
  }
}

void PublicSuffixList::add_exception(std::string_view rule) {
  std::string lowered = util::to_lower(rule);
  if (!lowered.empty() && lowered.front() == '!') lowered.erase(lowered.begin());
  exceptions_.insert(lowered);
}

bool PublicSuffixList::is_public_suffix(std::string_view domain) const {
  const auto parts = labels(domain);
  if (parts.empty()) return false;
  const std::string name = join_labels(parts);
  if (exceptions_.contains(name)) return false;
  if (rules_.contains(name)) return true;
  if (parts.size() >= 2) {
    const std::string parent = join_labels({parts.begin() + 1, parts.end()});
    if (wildcard_parents_.contains(parent)) return true;
  }
  return false;
}

std::optional<std::string> PublicSuffixList::etld(std::string_view domain) const {
  auto parts = labels(domain);
  // Find the longest suffix that is a public suffix.
  for (std::size_t drop = 0; drop < parts.size(); ++drop) {
    const std::string candidate = join_labels({parts.begin() + static_cast<std::ptrdiff_t>(drop), parts.end()});
    if (is_public_suffix(candidate)) {
      return drop == 0 ? std::nullopt : std::optional<std::string>{candidate};
    }
  }
  return std::nullopt;
}

std::optional<std::string> PublicSuffixList::e2ld(std::string_view domain) const {
  const auto parts = labels(domain);
  const auto suffix = etld(domain);
  if (!suffix) return std::nullopt;
  const std::size_t suffix_labels = labels(*suffix).size();
  if (parts.size() < suffix_labels + 1) return std::nullopt;
  return join_labels({parts.end() - static_cast<std::ptrdiff_t>(suffix_labels) - 1,
                      parts.end()});
}

const PublicSuffixList& PublicSuffixList::builtin() {
  static const PublicSuffixList list = [] {
    PublicSuffixList psl;
    for (const char* rule :
         {"com", "net", "org", "io", "info", "biz", "dev", "app", "xyz",
          "online", "shop", "site", "store", "edu", "gov", "mil", "us", "de",
          "fr", "nl", "jp", "cn", "ru", "br", "in", "uk", "co.uk", "org.uk",
          "ac.uk", "gov.uk", "com.au", "net.au", "org.au", "co.jp", "ne.jp",
          "com.br", "com.cn", "co.in", "co.nz"}) {
      psl.add_rule(rule);
    }
    psl.add_rule("*.ck");
    psl.add_exception("!www.ck");
    return psl;
  }();
  return list;
}

std::optional<std::string> e2ld(std::string_view domain) {
  return PublicSuffixList::builtin().e2ld(domain);
}

}  // namespace stalecert::dns
