#include "stalecert/dns/zone.hpp"

#include "stalecert/util/strings.hpp"

namespace stalecert::dns {

void DnsDatabase::add_to_zone(const std::string& tld, const std::string& domain) {
  zones_[util::to_lower(tld)].insert(util::to_lower(domain));
  entries_.try_emplace(util::to_lower(domain));
}

void DnsDatabase::remove_from_zone(const std::string& tld, const std::string& domain) {
  const auto it = zones_.find(util::to_lower(tld));
  if (it != zones_.end()) it->second.erase(util::to_lower(domain));
}

std::vector<std::string> DnsDatabase::zones() const {
  std::vector<std::string> out;
  out.reserve(zones_.size());
  for (const auto& [tld, domains] : zones_) out.push_back(tld);
  return out;
}

std::vector<std::string> DnsDatabase::zone_domains(const std::string& tld) const {
  const auto it = zones_.find(util::to_lower(tld));
  if (it == zones_.end()) return {};
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

std::vector<std::string> DnsDatabase::all_domains() const {
  std::vector<std::string> out;
  for (const auto& [tld, domains] : zones_) {
    out.insert(out.end(), domains.begin(), domains.end());
  }
  return out;
}

void DnsDatabase::set_ns(const std::string& domain,
                         std::vector<std::string> nameservers) {
  auto& entry = entries_[util::to_lower(domain)];
  entry.ns.clear();
  for (auto& host : nameservers) entry.ns.push_back(util::to_lower(host));
}

void DnsDatabase::set_cname(const std::string& domain,
                            std::optional<std::string> target) {
  auto& entry = entries_[util::to_lower(domain)];
  entry.cname = target ? std::optional<std::string>{util::to_lower(*target)}
                       : std::nullopt;
}

void DnsDatabase::set_a(const std::string& domain, std::vector<std::string> addresses) {
  entries_[util::to_lower(domain)].a = std::move(addresses);
}

void DnsDatabase::set_aaaa(const std::string& domain,
                           std::vector<std::string> addresses) {
  entries_[util::to_lower(domain)].aaaa = std::move(addresses);
}

void DnsDatabase::clear_records(const std::string& domain) {
  const auto it = entries_.find(util::to_lower(domain));
  if (it != entries_.end()) it->second = Entry{};
}

std::vector<std::string> DnsDatabase::ns(const std::string& domain) const {
  const auto it = entries_.find(util::to_lower(domain));
  return it == entries_.end() ? std::vector<std::string>{} : it->second.ns;
}

std::optional<std::string> DnsDatabase::cname(const std::string& domain) const {
  const auto it = entries_.find(util::to_lower(domain));
  return it == entries_.end() ? std::nullopt : it->second.cname;
}

DomainRecords DnsDatabase::resolve(const std::string& domain, int max_chain) const {
  DomainRecords out;
  std::string current = util::to_lower(domain);
  for (int hop = 0; hop <= max_chain; ++hop) {
    const auto it = entries_.find(current);
    if (it == entries_.end()) break;
    const Entry& entry = it->second;
    if (hop == 0) out.ns = entry.ns;
    if (entry.cname) {
      out.cname.push_back(*entry.cname);
      current = *entry.cname;
      continue;
    }
    out.a = entry.a;
    out.aaaa = entry.aaaa;
    break;
  }
  return out;
}

}  // namespace stalecert::dns
