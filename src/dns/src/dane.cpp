#include "stalecert/dns/dane.hpp"

#include <algorithm>

#include "stalecert/util/strings.hpp"

namespace stalecert::dns {

std::string to_string(TlsaUsage usage) {
  switch (usage) {
    case TlsaUsage::kPkixTa: return "PKIX-TA";
    case TlsaUsage::kPkixEe: return "PKIX-EE";
    case TlsaUsage::kDaneTa: return "DANE-TA";
    case TlsaUsage::kDaneEe: return "DANE-EE";
  }
  return "?";
}

namespace {

std::vector<std::uint8_t> selected_data(const x509::Certificate& cert,
                                        TlsaSelector selector) {
  if (selector == TlsaSelector::kFullCertificate) return cert.to_der();
  const auto& fp = cert.subject_key().spki_fingerprint();
  return std::vector<std::uint8_t>(fp.begin(), fp.end());
}

std::vector<std::uint8_t> matched_data(std::vector<std::uint8_t> data,
                                       TlsaMatching matching) {
  if (matching == TlsaMatching::kExact) return data;
  const auto digest = crypto::Sha256::hash(data);
  return std::vector<std::uint8_t>(digest.begin(), digest.end());
}

}  // namespace

TlsaRecord tlsa_for_certificate(const x509::Certificate& cert, TlsaUsage usage,
                                TlsaSelector selector, TlsaMatching matching) {
  TlsaRecord record;
  record.usage = usage;
  record.selector = selector;
  record.matching = matching;
  record.association = matched_data(selected_data(cert, selector), matching);
  return record;
}

bool tlsa_matches(const TlsaRecord& record, const x509::Certificate& cert) {
  return matched_data(selected_data(cert, record.selector), record.matching) ==
         record.association;
}

void DaneRegistry::publish(const std::string& domain, TlsaRecord record,
                           util::Date when) {
  history_[util::to_lower(domain)].push_back({when, std::move(record)});
}

void DaneRegistry::remove(const std::string& domain, util::Date when) {
  history_[util::to_lower(domain)].push_back({when, std::nullopt});
}

std::optional<TlsaRecord> DaneRegistry::lookup(const std::string& domain,
                                               util::Date when) const {
  const auto it = history_.find(util::to_lower(domain));
  if (it == history_.end()) return std::nullopt;
  std::optional<TlsaRecord> current;
  for (const auto& publication : it->second) {
    if (publication.when > when) break;
    current = publication.record;
  }
  return current;
}

}  // namespace stalecert::dns
