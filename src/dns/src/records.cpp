#include "stalecert/dns/records.hpp"

#include "stalecert/util/strings.hpp"

namespace stalecert::dns {

std::string to_string(RecordType type) {
  switch (type) {
    case RecordType::kA: return "A";
    case RecordType::kAaaa: return "AAAA";
    case RecordType::kNs: return "NS";
    case RecordType::kCname: return "CNAME";
  }
  return "?";
}

bool DomainRecords::delegates_to(const std::string& pattern) const {
  for (const auto& host : ns) {
    if (util::wildcard_match(pattern, host)) return true;
  }
  for (const auto& host : cname) {
    if (util::wildcard_match(pattern, host)) return true;
  }
  return false;
}

}  // namespace stalecert::dns
