#include "stalecert/dns/zonefile.hpp"

#include <charconv>
#include <sstream>

#include "stalecert/util/strings.hpp"

namespace stalecert::dns {
namespace {

std::optional<RecordType> type_from_token(std::string_view token) {
  if (token == "A") return RecordType::kA;
  if (token == "AAAA") return RecordType::kAaaa;
  if (token == "NS") return RecordType::kNs;
  if (token == "CNAME") return RecordType::kCname;
  return std::nullopt;
}

std::string strip_trailing_dot(std::string name) {
  if (!name.empty() && name.back() == '.') name.pop_back();
  return name;
}

}  // namespace

std::string emit_zone_file(const DnsDatabase& db, const std::string& tld) {
  std::ostringstream os;
  os << "$ORIGIN " << tld << ".\n";
  os << "; zone file for ." << tld << " (simulated CZDS dump)\n";
  for (const auto& domain : db.zone_domains(tld)) {
    for (const auto& host : db.ns(domain)) {
      os << domain << ". 172800 IN NS " << host << ".\n";
    }
    if (const auto target = db.cname(domain)) {
      os << domain << ". 300 IN CNAME " << *target << ".\n";
    }
    const DomainRecords resolved = db.resolve(domain);
    // Only direct A records (no CNAME chase) appear at the zone cut.
    if (resolved.cname.empty()) {
      for (const auto& address : resolved.a) {
        os << domain << ". 300 IN A " << address << "\n";
      }
      for (const auto& address : resolved.aaaa) {
        os << domain << ". 300 IN AAAA " << address << "\n";
      }
    }
  }
  return os.str();
}

std::vector<ResourceRecord> parse_zone_file(const std::string& text,
                                            std::size_t* skipped) {
  std::vector<ResourceRecord> records;
  std::size_t dropped = 0;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == ';' || trimmed.front() == '$') {
      continue;
    }
    // Tokenize on whitespace.
    std::vector<std::string> tokens;
    std::istringstream ls{std::string(trimmed)};
    std::string token;
    while (ls >> token) tokens.push_back(token);
    // name [ttl] [IN] TYPE rdata
    if (tokens.size() < 3) {
      ++dropped;
      continue;
    }
    std::size_t cursor = 1;
    std::uint32_t ttl = 300;
    {
      std::uint32_t parsed_ttl = 0;
      const auto& maybe_ttl = tokens[cursor];
      const auto [ptr, ec] = std::from_chars(
          maybe_ttl.data(), maybe_ttl.data() + maybe_ttl.size(), parsed_ttl);
      if (ec == std::errc{} && ptr == maybe_ttl.data() + maybe_ttl.size()) {
        ttl = parsed_ttl;
        ++cursor;
      }
    }
    if (cursor < tokens.size() && (tokens[cursor] == "IN" || tokens[cursor] == "in")) {
      ++cursor;
    }
    if (cursor + 1 >= tokens.size()) {
      ++dropped;
      continue;
    }
    const auto type = type_from_token(tokens[cursor]);
    if (!type) {
      ++dropped;
      continue;
    }
    ResourceRecord record;
    record.name = util::to_lower(strip_trailing_dot(tokens[0]));
    record.ttl = ttl;
    record.type = *type;
    record.value = *type == RecordType::kA || *type == RecordType::kAaaa
                       ? tokens[cursor + 1]
                       : util::to_lower(strip_trailing_dot(tokens[cursor + 1]));
    records.push_back(std::move(record));
  }
  if (skipped) *skipped = dropped;
  return records;
}

void load_zone(DnsDatabase& db, const std::string& tld,
               const std::vector<ResourceRecord>& records) {
  // Group by owner so multi-valued record sets install together.
  std::map<std::string, DomainRecords> grouped;
  for (const auto& record : records) {
    auto& slot = grouped[record.name];
    switch (record.type) {
      case RecordType::kA: slot.a.push_back(record.value); break;
      case RecordType::kAaaa: slot.aaaa.push_back(record.value); break;
      case RecordType::kNs: slot.ns.push_back(record.value); break;
      case RecordType::kCname: slot.cname.push_back(record.value); break;
    }
  }
  for (auto& [name, slot] : grouped) {
    db.add_to_zone(tld, name);
    if (!slot.ns.empty()) db.set_ns(name, slot.ns);
    if (!slot.cname.empty()) db.set_cname(name, slot.cname.front());
    if (!slot.a.empty()) db.set_a(name, slot.a);
    if (!slot.aaaa.empty()) db.set_aaaa(name, slot.aaaa);
  }
}

}  // namespace stalecert::dns
