#include "stalecert/dns/scan.hpp"

#include "stalecert/util/error.hpp"

namespace stalecert::dns {

const DomainRecords* DailySnapshot::find(const std::string& domain) const {
  const auto it = records.find(domain);
  return it == records.end() ? nullptr : &it->second;
}

void SnapshotStore::add(DailySnapshot snapshot) {
  if (!snapshots_.empty() && snapshot.date <= snapshots_.back().date) {
    throw LogicError("SnapshotStore: snapshots must be added in date order");
  }
  snapshots_.push_back(std::move(snapshot));
}

const DailySnapshot& SnapshotStore::day(std::size_t i) const {
  if (i >= snapshots_.size()) throw LogicError("SnapshotStore: day out of range");
  return snapshots_[i];
}

std::optional<util::Date> SnapshotStore::first_date() const {
  if (snapshots_.empty()) return std::nullopt;
  return snapshots_.front().date;
}

std::optional<util::Date> SnapshotStore::last_date() const {
  if (snapshots_.empty()) return std::nullopt;
  return snapshots_.back().date;
}

DailySnapshot ScanEngine::scan(util::Date date) const {
  DailySnapshot snapshot;
  snapshot.date = date;
  for (const auto& domain : database_->all_domains()) {
    DomainRecords records = database_->resolve(domain);
    if (!records.empty()) snapshot.records.emplace(domain, std::move(records));
  }
  return snapshot;
}

}  // namespace stalecert::dns
