#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "stalecert/ct/log.hpp"
#include "stalecert/dns/scan.hpp"
#include "stalecert/feed/format.hpp"
#include "stalecert/revocation/collector.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/whois/database.hpp"

namespace stalecert::obs {
class PipelineObserver;
}

namespace stalecert::feed {

/// New entries appended to one CT log during the delta window. Entry
/// indices are base-relative: entry i lands at log index
/// base_entry_count + i, and apply refuses the delta when the live log's
/// length is not exactly base_entry_count (sequence error).
struct CtLogDelta {
  std::uint64_t log_id = 0;
  std::uint64_t base_entry_count = 0;
  std::vector<ct::LogEntry> entries;
};

/// One decoded .scwd delta: everything the world gained over the covered
/// days, self-contained (DNS diffs in the file chain from empty state, and
/// the decoder hands back fully materialized snapshots).
struct WorldDelta {
  DeltaMeta meta;
  std::vector<CtLogDelta> ct;
  /// Newly observed revocations: (AKI, serial) keys absent from the base
  /// store. Re-observations of base revocations are never emitted (the
  /// store keeps the earliest observation; nothing would change).
  std::vector<revocation::RevocationStore::Entry> revocations;
  /// New WHOIS registration events, first sightings included (the same
  /// stream shape the base archive stores).
  std::vector<whois::NewRegistration> registrations;
  /// One materialized snapshot per newly scanned day, date-ascending.
  std::vector<dns::DailySnapshot> adns;
  /// CUMULATIVE simulator ground truth as of to_day (replaces, not adds).
  sim::World::Stats stats;

  [[nodiscard]] std::uint64_t ct_entry_count() const {
    std::uint64_t n = 0;
    for (const auto& log : ct) n += log.entries.size();
    return n;
  }
};

/// Encodes a delta into .scwd bytes (same framing as .scw: magic, version,
/// then id + varint length + payload + CRC32 per segment).
std::vector<std::uint8_t> write_delta_bytes(const WorldDelta& delta);

/// Encodes and writes one .scwd file. Returns bytes written. Reports under
/// the obs stage name "feed_delta_save" when `observer` is non-null.
std::uint64_t write_delta(const WorldDelta& delta, const std::string& path,
                          obs::PipelineObserver* observer = nullptr);

/// Decodes .scwd bytes. Container problems throw the store error taxonomy
/// (ArchiveTruncatedError / ArchiveCorruptError / ArchiveVersionError);
/// semantic problems (from_day > to_day, unsorted DNS days) throw
/// ArchiveCorruptError too — the bytes cannot have come from a writer.
WorldDelta read_delta_bytes(std::span<const std::uint8_t> data);

/// Reads and decodes one .scwd file (deltas are small: the whole file is
/// slurped, unlike the streaming .scw reader). Reports under the obs stage
/// name "feed_delta_load" when `observer` is non-null.
WorldDelta read_delta(const std::string& path,
                      obs::PipelineObserver* observer = nullptr);

}  // namespace stalecert::feed
