#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "stalecert/store/format.hpp"
#include "stalecert/util/date.hpp"

namespace stalecert::feed {

/// First 8 bytes of every .scwd delta file.
inline constexpr std::array<std::uint8_t, 8> kDeltaMagic = {'S', 'C', 'W', 'D',
                                                            'E', 'L', 'T', 0};

/// Delta format version, bumped on ANY byte-level change (the versioning
/// policy is the store's, restated in src/feed/README.md). Readers refuse
/// versions they do not speak.
inline constexpr std::uint32_t kDeltaFormatVersion = 1;

/// Segment identifiers, mirroring the .scw layout: one segment per Table-3
/// dataset plus meta and the string table. Ids are stable forever; new
/// segment kinds get new ids and readers skip ids they do not know.
enum class DeltaSegmentId : std::uint8_t {
  kMeta = 1,         // base binding + covered day range
  kStrings = 2,      // interned string table
  kCtLogs = 3,       // per-log appended entries
  kRevocations = 4,  // newly observed revocations
  kWhois = 5,        // new registration events
  kDns = 6,          // daily snapshot diffs for the covered days
  kStats = 7,        // cumulative simulator counters at to_day
};

std::string to_string(DeltaSegmentId id);

/// Binding and coverage of one delta: which base world it extends and the
/// inclusive day range it appends. A delta applies cleanly only when
/// base_world_id matches the live world's lineage id and from_day is
/// exactly one past the current horizon.
struct DeltaMeta {
  /// world_id() of the base archive's recipe (see below).
  std::uint64_t base_world_id = 0;
  /// Profile + seed restated for error messages; the id is authoritative.
  std::string profile = "custom";
  std::uint64_t seed = 0;
  util::Date from_day;
  util::Date to_day;

  bool operator==(const DeltaMeta&) const = default;
};

/// Lineage fingerprint of an archive's recipe: FNV-1a 64 over a canonical
/// serialization of every ArchiveMeta field EXCEPT `end`. Two archives of
/// the same world at different horizons share the id (that is the point: a
/// delta binds to the world, and the day-range check handles position),
/// while any change to profile, seed, start, posture or patterns yields a
/// different id and a DeltaMismatchError at apply time.
std::uint64_t world_id(const store::ArchiveMeta& meta);

}  // namespace stalecert::feed
