#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "stalecert/core/detectors.hpp"
#include "stalecert/feed/delta.hpp"
#include "stalecert/query/index.hpp"
#include "stalecert/store/archive.hpp"

namespace stalecert::obs {
class PipelineObserver;
}

namespace stalecert::feed {

/// Applies .scwd deltas to a live serving state: holds the accumulated
/// world datasets plus the current StalenessIndex snapshot, and for each
/// delta runs the three staleness detectors over ONLY the delta records
/// joined against the base — new revocations against existing certificates
/// by (AKI, serial), new registry creation dates against overlapping
/// validity windows, new delegation departures against managed
/// certificates — then folds the result into a successor snapshot via
/// StalenessIndex::with_patch(). Query answers on the successor are
/// equivalent to a from-scratch pipeline over the extended world (the
/// differential test in tests/feed pins this).
///
/// Rare events the incremental path cannot express as an append (a
/// precertificate in the base corpus replaced by its issued certificate,
/// an FQDN newly crossing the anomaly threshold, a revocation re-observed
/// with a different date) fall back to a full pipeline rebuild over the
/// accumulated world — still correct, just not fast; rebuilds() counts
/// them.
///
/// Thread model: apply() mutates the applier and must be externally
/// serialized (one ingest at a time); the returned snapshots are immutable
/// and safe to serve from any number of reader threads.
class DeltaApplier {
 public:
  /// Takes ownership of the loaded base world; `base_index` must have been
  /// built from exactly that world (from_archive of the same file, or an
  /// equivalent run_pipeline + StalenessIndex build).
  DeltaApplier(store::LoadedWorld base,
               std::shared_ptr<const query::StalenessIndex> base_index,
               obs::PipelineObserver* observer = nullptr);

  struct ApplyResult {
    std::shared_ptr<const query::StalenessIndex> index;
    std::uint64_t new_certificates = 0;
    std::uint64_t new_stale_records = 0;
    /// True when the delta hit an incremental blind spot and the pipeline
    /// was re-run from the accumulated world instead of patched.
    bool rebuilt = false;
  };

  /// Validates and applies one delta, returning the successor snapshot
  /// (also retained as index()). Validation failures throw
  /// DeltaMismatchError / DeltaSequenceError BEFORE any state changes, so
  /// the applier keeps serving its current snapshot afterwards.
  ApplyResult apply(const WorldDelta& delta);

  [[nodiscard]] const std::shared_ptr<const query::StalenessIndex>& index()
      const {
    return index_;
  }
  /// Last day covered by the applied data (base end before any apply()).
  [[nodiscard]] util::Date horizon() const { return world_.meta.end; }
  [[nodiscard]] std::uint64_t base_world_id() const { return base_world_id_; }
  [[nodiscard]] std::uint64_t deltas_applied() const { return deltas_applied_; }
  [[nodiscard]] std::uint64_t rebuilds() const { return rebuilds_; }
  /// The accumulated world (base + every applied delta).
  [[nodiscard]] const store::LoadedWorld& world() const { return world_; }

 private:
  /// How collect() resolved one dedup fingerprint.
  struct CollectState {
    bool precert = false;   // the kept form is (still) a precertificate
    bool dropped = false;   // removed by the anomalous-FQDN filter
  };

  /// (Re)derives every join structure from world_ + index_ — at
  /// construction and after a rebuild.
  void rebuild_state();
  void validate(const WorldDelta& delta) const;
  /// Folds the delta's records into world_ (runs only after validate()).
  void commit(const WorldDelta& delta);
  /// Full pipeline re-run over the accumulated world (the fallback path).
  ApplyResult rebuild();

  store::LoadedWorld world_;
  std::shared_ptr<const query::StalenessIndex> index_;
  obs::PipelineObserver* observer_;
  std::uint64_t base_world_id_ = 0;
  std::uint64_t deltas_applied_ = 0;
  std::uint64_t rebuilds_ = 0;

  // --- Replayed collect() bookkeeping (dedup + anomaly filter) ---
  std::unordered_map<std::string, CollectState> dedup_;  // binary digest key
  std::unordered_map<std::string, std::uint64_t> fqdn_counts_;
  std::unordered_set<std::string> anomalous_;
  ct::CollectStats collect_stats_;

  // --- Revocation join state ---
  /// Binary (AKI || serial) key -> corpus indices carrying that key.
  std::unordered_map<std::string, std::vector<std::size_t>> key_to_certs_;
  std::unordered_set<std::string> revocation_keys_;  // observed (AKI, serial)
  revocation::JoinStats join_stats_;

  // --- Registrant-change join state ---
  /// Re-registration events only (previous creation date observed), in
  /// base-stream order; the map joins new certificates back to old events.
  std::vector<whois::NewRegistration> rereg_events_;
  std::unordered_map<std::string, std::vector<std::size_t>> rereg_by_domain_;

  // --- Managed-departure join state ---
  core::ManagedTlsOptions tls_options_;
  bool managed_enabled_ = false;
  /// Every departure event so far, chronological (new certificates must
  /// join against history, not just the newest delta).
  std::vector<core::DepartureEvent> departures_;
  /// The detector's first-event-wins dedup, persisted across deltas.
  std::set<std::pair<std::size_t, std::string>> reported_;
};

}  // namespace stalecert::feed
