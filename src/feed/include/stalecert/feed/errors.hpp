#pragma once

#include <string>

#include "stalecert/util/error.hpp"

namespace stalecert::feed {

/// Base class for every incremental-ingest failure that is about delta
/// SEMANTICS rather than container bytes. Byte-level problems (truncation,
/// CRC mismatch, bad magic, future version) reuse the store error taxonomy
/// (store::ArchiveTruncatedError & co), so one catch handles "bad file"
/// across both archive kinds; these errors mean "valid file, wrong world".
class FeedError : public Error {
 public:
  explicit FeedError(const std::string& what) : Error("feed: " + what) {}
};

/// The delta was produced for a different base world: base_world_id (the
/// fingerprint of the base archive's recipe) does not match, or the delta
/// references a CT log the base world does not have.
class DeltaMismatchError : public FeedError {
 public:
  explicit DeltaMismatchError(const std::string& what)
      : FeedError("mismatch: " + what) {}
};

/// The delta is for the right world but the wrong position in the
/// sequence: already applied (double-apply / out-of-order), a day gap
/// since the current horizon, or a per-log entry count that does not line
/// up with the log's current length.
class DeltaSequenceError : public FeedError {
 public:
  explicit DeltaSequenceError(const std::string& what)
      : FeedError("sequence: " + what) {}
};

}  // namespace stalecert::feed
