#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "stalecert/feed/delta.hpp"
#include "stalecert/sim/config.hpp"
#include "stalecert/store/format.hpp"

namespace stalecert::obs {
class PipelineObserver;
}

namespace stalecert::feed {

/// Resolves a named WorldConfig recipe ("small", "default") with the given
/// seed; nullopt for unknown names (incl. "custom" — not regenerable).
std::optional<sim::WorldConfig> config_for_profile(const std::string& profile,
                                                   std::uint64_t seed);

/// Advances the simulated world described by `base_meta` past its horizon
/// and captures what each slice added as one WorldDelta. The world is
/// regenerated from the profile + seed (so base_meta.profile must name a
/// known recipe — FeedError otherwise), run to base_meta.end, then extended
/// `days` further in `slice_days` chunks (the last slice may be shorter).
/// Determinism of World::extend makes this reproducible: generating
/// 7 one-day deltas and one 7-day delta yields worlds with identical data.
/// Throws DeltaMismatchError when the regenerated world's posture does not
/// match base_meta (the archive was not produced by this recipe).
/// A non-null observer receives per-slice record counts under the obs
/// stage name "feed_extend".
std::vector<WorldDelta> extend_world(const store::ArchiveMeta& base_meta,
                                     std::int64_t days,
                                     std::int64_t slice_days = 1,
                                     obs::PipelineObserver* observer = nullptr);

/// Conventional file name for a delta: "delta-<from>-<to>.scwd" with ISO
/// dates, so a lexicographic directory sort IS sequence order.
std::string delta_file_name(const DeltaMeta& meta);

}  // namespace stalecert::feed
