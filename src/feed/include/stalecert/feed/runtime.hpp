#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "stalecert/feed/applier.hpp"
#include "stalecert/query/service.hpp"
#include "stalecert/query/shard.hpp"
#include "stalecert/util/mutex.hpp"

namespace stalecert::feed {

/// The staled-side feed backend: owns the accumulated world + DeltaApplier
/// and adapts them to the query::IngestHandler seam. One FeedRuntime per
/// serving process; install with
///   service.set_ingest_handler(runtime.handler());
///
/// ingest() never throws: every failure — unreadable bytes, wrong world,
/// out-of-sequence day — is mapped to an IngestOutcome with an HTTP-ish
/// status (400 container errors, 409 mismatch/sequence, 500 unexpected),
/// so the daemon keeps serving its current snapshot no matter what arrives.
class FeedRuntime {
 public:
  /// Loads the base archive and builds the base snapshot (same pipeline
  /// posture as StalenessIndex::from_archive). Throws the store/pipeline
  /// error taxonomy when the archive itself is unusable.
  ///
  /// With a `scope` (staled --shard) the world is reduced to the shard's
  /// slice first — a pre-split shard archive passes through after a label
  /// check — and every snapshot carries the scope's ownership predicate,
  /// so only deltas bound to the SHARD's world id (profile tagged
  /// "#shard-K/N") apply; full-world deltas are rejected with 409.
  explicit FeedRuntime(const std::string& archive_path,
                       obs::PipelineObserver* observer = nullptr,
                       std::optional<query::ShardScope> scope = std::nullopt);

  /// Applies one delta from a file or raw bytes. Serialized internally.
  query::IngestOutcome ingest(const query::IngestSource& source);

  /// An IngestHandler bound to this runtime (which must outlive the
  /// service it is installed into).
  [[nodiscard]] query::IngestHandler handler() {
    return [this](const query::IngestSource& source) { return ingest(source); };
  }

  /// Sorted paths of .scwd files in `dir` still ahead of the horizon:
  /// readable, bound to this world, to_day past the applied data. Files
  /// that fail to parse are skipped this round — a half-written file being
  /// copied in simply stays pending until it parses. ISO dates in
  /// delta_file_name() make lexicographic order the apply order.
  [[nodiscard]] std::vector<std::string> pending_deltas(
      const std::string& dir);

  /// Convenience sweep for startup/SIGHUP/tests: ingest every pending
  /// delta in order, stopping at the first failure. Returns applied count.
  std::size_t apply_directory(const std::string& dir,
                              const std::string& origin = "startup");

  /// SIGHUP semantics: reload the base archive from disk and rebuild the
  /// base snapshot, discarding all applied deltas (the caller re-applies
  /// the feed directory afterwards). Throws on a broken archive, leaving
  /// the current state untouched.
  void reload();

  [[nodiscard]] std::shared_ptr<const query::StalenessIndex> index() {
    const util::MutexLock lock(mutex_);
    return applier_.index();
  }
  [[nodiscard]] util::Date horizon() {
    const util::MutexLock lock(mutex_);
    return applier_.horizon();
  }
  [[nodiscard]] std::uint64_t deltas_applied() {
    const util::MutexLock lock(mutex_);
    return applier_.deltas_applied();
  }
  [[nodiscard]] std::uint64_t rebuilds() {
    const util::MutexLock lock(mutex_);
    return applier_.rebuilds();
  }

 private:
  std::string archive_path_;
  std::optional<query::ShardScope> scope_;
  obs::PipelineObserver* observer_;
  util::Mutex mutex_;
  DeltaApplier applier_ GUARDED_BY(mutex_);
};

}  // namespace stalecert::feed
