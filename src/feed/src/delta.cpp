#include "stalecert/feed/delta.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <utility>

#include "stalecert/obs/observer.hpp"
#include "stalecert/store/errors.hpp"
#include "stalecert/store/intern.hpp"
#include "stalecert/store/wire.hpp"

namespace stalecert::feed {

using store::ArchiveCorruptError;
using store::ArchiveError;
using store::ArchiveTruncatedError;
using store::ArchiveVersionError;

namespace {

// --- Encoders (store idiom: payloads built in memory, framed with CRC) ---

void encode_meta(const DeltaMeta& meta, store::ByteSink& sink) {
  sink.varint(0);  // reserved flags
  sink.varint(meta.base_world_id);
  sink.str(meta.profile);
  sink.varint(meta.seed);
  sink.date(meta.from_day);
  sink.date(meta.to_day);
}

std::uint64_t encode_ct(const std::vector<CtLogDelta>& logs,
                        store::ByteSink& sink) {
  std::uint64_t total_entries = 0;
  sink.varint(logs.size());
  for (const auto& log : logs) {
    sink.varint(log.log_id);
    sink.varint(log.base_entry_count);
    sink.varint(log.entries.size());
    util::Date previous{0};  // timestamps are non-decreasing: deltas stay tiny
    for (const auto& entry : log.entries) {
      sink.zigzag(entry.timestamp - previous);
      previous = entry.timestamp;
      sink.blob(entry.certificate.to_der());
      ++total_entries;
    }
  }
  return total_entries;
}

void encode_revocations(
    const std::vector<revocation::RevocationStore::Entry>& entries,
    store::ByteSink& sink) {
  // Authority key ids repeat heavily: dedup into a local table, first-seen
  // order (the same layout as the .scw kRevocations segment).
  std::vector<crypto::Digest> akis;
  std::map<crypto::Digest, std::uint64_t> aki_index;
  for (const auto& entry : entries) {
    if (aki_index.emplace(entry.authority_key_id, akis.size()).second) {
      akis.push_back(entry.authority_key_id);
    }
  }
  sink.varint(akis.size());
  for (const auto& aki : akis) sink.bytes(aki);
  sink.varint(entries.size());
  for (const auto& entry : entries) {
    sink.varint(aki_index.at(entry.authority_key_id));
    sink.blob(entry.serial);
    sink.date(entry.observation.revocation_date);
    sink.varint(static_cast<std::uint64_t>(entry.observation.reason));
  }
}

void encode_whois(const std::vector<whois::NewRegistration>& events,
                  store::StringInterner& interner, store::ByteSink& sink) {
  sink.varint(events.size());
  for (const auto& event : events) {
    sink.varint(interner.intern(event.domain));
    sink.date(event.creation_date);
    sink.u8(event.previous_creation_date ? 1 : 0);
    if (event.previous_creation_date) sink.date(*event.previous_creation_date);
  }
}

void encode_records(const dns::DomainRecords& records,
                    store::StringInterner& interner, store::ByteSink& sink) {
  for (const auto* list :
       {&records.a, &records.aaaa, &records.ns, &records.cname}) {
    sink.varint(list->size());
    for (const auto& value : *list) sink.varint(interner.intern(value));
  }
}

void encode_dns(const std::vector<dns::DailySnapshot>& snapshots,
                store::StringInterner& interner, store::ByteSink& sink) {
  // Same diff chain as the .scw kDns segment, but seeded from EMPTY state:
  // a delta is self-contained, so its first day is one full upsert batch
  // and later days diff against the previous delta day.
  sink.varint(snapshots.size());
  util::Date previous_date{0};
  const std::map<std::string, dns::DomainRecords> empty;
  const std::map<std::string, dns::DomainRecords>* previous = &empty;
  for (const auto& snapshot : snapshots) {
    sink.zigzag(snapshot.date - previous_date);
    previous_date = snapshot.date;
    std::vector<std::uint64_t> removed;
    for (const auto& [domain, records] : *previous) {
      if (snapshot.records.find(domain) == snapshot.records.end()) {
        removed.push_back(interner.intern(domain));
      }
    }
    sink.varint(removed.size());
    for (const std::uint64_t idx : removed) sink.varint(idx);

    std::vector<const std::pair<const std::string, dns::DomainRecords>*> upserts;
    for (const auto& item : snapshot.records) {
      const auto it = previous->find(item.first);
      if (it == previous->end() || !(it->second == item.second)) {
        upserts.push_back(&item);
      }
    }
    sink.varint(upserts.size());
    for (const auto* item : upserts) {
      sink.varint(interner.intern(item->first));
      encode_records(item->second, interner, sink);
    }
    previous = &snapshot.records;
  }
}

void encode_stats(const sim::World::Stats& stats, store::ByteSink& sink) {
  sink.varint(9);
  sink.varint(stats.domains_registered);
  sink.varint(stats.domains_reregistered);
  sink.varint(stats.domains_transferred);
  sink.varint(stats.certificates_issued);
  sink.varint(stats.cdn_enrollments);
  sink.varint(stats.cdn_departures);
  sink.varint(stats.key_compromises);
  sink.varint(stats.other_revocations);
  sink.varint(stats.refund_abuses);
}

void frame_segment(DeltaSegmentId id, const store::ByteSink& payload,
                   store::ByteSink& out) {
  out.u8(static_cast<std::uint8_t>(id));
  out.varint(payload.size());
  out.bytes(payload.data());
  out.u32le(store::crc32(payload.data()));
}

// --- Decoders -------------------------------------------------------------

revocation::ReasonCode decode_reason(std::uint64_t raw) {
  switch (raw) {
    case 0: return revocation::ReasonCode::kUnspecified;
    case 1: return revocation::ReasonCode::kKeyCompromise;
    case 2: return revocation::ReasonCode::kCaCompromise;
    case 3: return revocation::ReasonCode::kAffiliationChanged;
    case 4: return revocation::ReasonCode::kSuperseded;
    case 5: return revocation::ReasonCode::kCessationOfOperation;
    case 6: return revocation::ReasonCode::kCertificateHold;
    case 8: return revocation::ReasonCode::kRemoveFromCrl;
    case 9: return revocation::ReasonCode::kPrivilegeWithdrawn;
    case 10: return revocation::ReasonCode::kAaCompromise;
    default:
      throw ArchiveCorruptError("unknown CRL reason code " + std::to_string(raw));
  }
}

bool decode_flag(store::WireReader& reader, const char* what) {
  const std::uint8_t flag = reader.u8();
  if (flag > 1) {
    throw ArchiveCorruptError(std::string(what) + " flag byte " +
                              std::to_string(flag) + " is not 0/1");
  }
  return flag == 1;
}

std::uint64_t read_span_varint(std::span<const std::uint8_t> data,
                               std::size_t& pos) {
  std::uint64_t value = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (pos == data.size()) {
      throw ArchiveTruncatedError("file ends mid segment header");
    }
    const std::uint8_t byte = data[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) {
      if (shift == 63 && byte > 1) {
        throw ArchiveCorruptError("segment length varint overflows 64 bits");
      }
      return value;
    }
  }
  throw ArchiveCorruptError("segment length varint longer than 10 bytes");
}

bool known_segment(std::uint8_t id) {
  return id >= static_cast<std::uint8_t>(DeltaSegmentId::kMeta) &&
         id <= static_cast<std::uint8_t>(DeltaSegmentId::kStats);
}

/// Decoded-segment cursor: SpanSource + WireReader over one payload, with
/// the stream readers' "no undecoded trailing bytes" check on finish().
struct SegmentCursor {
  SegmentCursor(std::span<const std::uint8_t> payload, DeltaSegmentId id)
      : source(payload), reader(source), name(to_string(id)) {}

  void finish() {
    if (source.remaining() != 0) {
      throw ArchiveCorruptError("segment " + name + " has " +
                                std::to_string(source.remaining()) +
                                " undecoded trailing bytes");
    }
  }

  store::SpanSource source;
  store::WireReader reader;
  std::string name;
};

DeltaMeta decode_meta(store::WireReader& reader) {
  DeltaMeta meta;
  (void)reader.varint();  // reserved flags
  meta.base_world_id = reader.varint();
  meta.profile = reader.str();
  meta.seed = reader.varint();
  meta.from_day = reader.date();
  meta.to_day = reader.date();
  if (meta.to_day < meta.from_day) {
    throw ArchiveCorruptError("delta covers to_day before from_day");
  }
  return meta;
}

std::vector<CtLogDelta> decode_ct(SegmentCursor& cursor) {
  store::WireReader& reader = cursor.reader;
  std::vector<CtLogDelta> logs;
  const std::uint64_t log_count = reader.count(3);
  logs.reserve(static_cast<std::size_t>(log_count));
  for (std::uint64_t i = 0; i < log_count; ++i) {
    CtLogDelta log;
    log.log_id = reader.varint();
    log.base_entry_count = reader.varint();
    const std::uint64_t entries = reader.count(2);
    log.entries.reserve(static_cast<std::size_t>(entries));
    util::Date previous{0};
    for (std::uint64_t j = 0; j < entries; ++j) {
      ct::LogEntry entry;
      entry.index = log.base_entry_count + j;
      entry.timestamp = previous + reader.zigzag();
      previous = entry.timestamp;
      const auto der = reader.blob();
      try {
        entry.certificate = x509::Certificate::from_der(der);
      } catch (const ParseError& e) {
        throw ArchiveCorruptError(std::string("undecodable certificate DER: ") +
                                  e.what());
      }
      log.entries.push_back(std::move(entry));
    }
    logs.push_back(std::move(log));
  }
  cursor.finish();
  return logs;
}

std::vector<revocation::RevocationStore::Entry> decode_revocations(
    SegmentCursor& cursor) {
  store::WireReader& reader = cursor.reader;
  const std::uint64_t aki_count = reader.count(sizeof(crypto::Digest));
  std::vector<crypto::Digest> akis(static_cast<std::size_t>(aki_count));
  for (auto& aki : akis) cursor.source.read(aki);
  const std::uint64_t count = reader.count();
  std::vector<revocation::RevocationStore::Entry> entries;
  entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    revocation::RevocationStore::Entry entry;
    const std::uint64_t aki_index = reader.varint();
    if (aki_index >= akis.size()) {
      throw ArchiveCorruptError("authority key id index " +
                                std::to_string(aki_index) + " out of range");
    }
    entry.authority_key_id = akis[static_cast<std::size_t>(aki_index)];
    entry.serial = reader.blob();
    entry.observation.revocation_date = reader.date();
    entry.observation.reason = decode_reason(reader.varint());
    entries.push_back(std::move(entry));
  }
  cursor.finish();
  return entries;
}

std::vector<whois::NewRegistration> decode_whois(
    SegmentCursor& cursor, const store::StringTable& strings) {
  store::WireReader& reader = cursor.reader;
  const std::uint64_t count = reader.count(3);
  std::vector<whois::NewRegistration> events;
  events.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    whois::NewRegistration event;
    event.domain = strings.at(reader.varint());
    event.creation_date = reader.date();
    if (decode_flag(reader, "previous creation date")) {
      event.previous_creation_date = reader.date();
    }
    events.push_back(std::move(event));
  }
  cursor.finish();
  return events;
}

std::vector<dns::DailySnapshot> decode_dns(SegmentCursor& cursor,
                                           const store::StringTable& strings) {
  store::WireReader& reader = cursor.reader;
  const std::uint64_t days = reader.count();
  std::vector<dns::DailySnapshot> snapshots;
  snapshots.reserve(static_cast<std::size_t>(days));
  util::Date previous_date{0};
  std::map<std::string, dns::DomainRecords> state;
  for (std::uint64_t i = 0; i < days; ++i) {
    dns::DailySnapshot snapshot;
    snapshot.date = previous_date + reader.zigzag();
    if (i > 0 && snapshot.date <= previous_date) {
      throw ArchiveCorruptError("dns snapshots out of date order");
    }
    previous_date = snapshot.date;

    const std::uint64_t removed = reader.count();
    for (std::uint64_t j = 0; j < removed; ++j) {
      const std::string& domain = strings.at(reader.varint());
      if (state.erase(domain) == 0) {
        throw ArchiveCorruptError("snapshot diff removes unknown domain " +
                                  domain);
      }
    }
    const std::uint64_t upserts = reader.count(2);
    for (std::uint64_t j = 0; j < upserts; ++j) {
      const std::string& domain = strings.at(reader.varint());
      dns::DomainRecords records;
      for (auto* list :
           {&records.a, &records.aaaa, &records.ns, &records.cname}) {
        const std::uint64_t n = reader.count();
        list->reserve(static_cast<std::size_t>(n));
        for (std::uint64_t k = 0; k < n; ++k) {
          list->push_back(strings.at(reader.varint()));
        }
      }
      state[domain] = std::move(records);
    }
    snapshot.records = state;
    snapshots.push_back(std::move(snapshot));
  }
  cursor.finish();
  return snapshots;
}

sim::World::Stats decode_stats(SegmentCursor& cursor) {
  store::WireReader& reader = cursor.reader;
  const std::uint64_t fields = reader.count();
  if (fields < 9) {
    throw ArchiveCorruptError("stats segment has " + std::to_string(fields) +
                              " fields, expected at least 9");
  }
  sim::World::Stats stats;
  stats.domains_registered = reader.varint();
  stats.domains_reregistered = reader.varint();
  stats.domains_transferred = reader.varint();
  stats.certificates_issued = reader.varint();
  stats.cdn_enrollments = reader.varint();
  stats.cdn_departures = reader.varint();
  stats.key_compromises = reader.varint();
  stats.other_revocations = reader.varint();
  stats.refund_abuses = reader.varint();
  // Trailing fields from a later minor revision are tolerated and ignored.
  for (std::uint64_t i = 9; i < fields; ++i) (void)reader.varint();
  return stats;
}

}  // namespace

std::vector<std::uint8_t> write_delta_bytes(const WorldDelta& delta) {
  store::StringInterner interner;

  // Data segments first (interning as they go) so the string table is
  // complete before it is framed; file order puts strings ahead of every
  // segment that references it, mirroring the .scw layout.
  store::ByteSink ct_payload, revocation_payload, whois_payload, dns_payload,
      stats_payload, meta_payload, strings_payload;
  encode_ct(delta.ct, ct_payload);
  encode_revocations(delta.revocations, revocation_payload);
  encode_whois(delta.registrations, interner, whois_payload);
  encode_dns(delta.adns, interner, dns_payload);
  encode_stats(delta.stats, stats_payload);
  encode_meta(delta.meta, meta_payload);
  interner.encode(strings_payload);

  store::ByteSink file;
  file.bytes(kDeltaMagic);
  file.u32le(kDeltaFormatVersion);
  frame_segment(DeltaSegmentId::kMeta, meta_payload, file);
  frame_segment(DeltaSegmentId::kStrings, strings_payload, file);
  frame_segment(DeltaSegmentId::kCtLogs, ct_payload, file);
  frame_segment(DeltaSegmentId::kRevocations, revocation_payload, file);
  frame_segment(DeltaSegmentId::kWhois, whois_payload, file);
  frame_segment(DeltaSegmentId::kDns, dns_payload, file);
  frame_segment(DeltaSegmentId::kStats, stats_payload, file);
  return file.data();
}

std::uint64_t write_delta(const WorldDelta& delta, const std::string& path,
                          obs::PipelineObserver* observer) {
  const obs::StageScope scope(observer, "feed_delta_save");
  const std::vector<std::uint8_t> bytes = write_delta_bytes(delta);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw ArchiveError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) throw ArchiveError("short write to " + path);
  if (scope.enabled()) {
    scope.count("bytes_written", bytes.size());
    scope.count("ct_entries", delta.ct_entry_count());
    scope.count("revocations", delta.revocations.size());
    scope.count("registrations", delta.registrations.size());
    scope.count("dns_snapshots", delta.adns.size());
  }
  return bytes.size();
}

WorldDelta read_delta_bytes(std::span<const std::uint8_t> data) {
  if (data.size() < kDeltaMagic.size()) {
    throw ArchiveTruncatedError("file shorter than the 8-byte magic");
  }
  if (!std::equal(kDeltaMagic.begin(), kDeltaMagic.end(), data.begin())) {
    throw ArchiveCorruptError("not a .scwd world delta (bad magic)");
  }
  std::size_t pos = kDeltaMagic.size();
  if (data.size() - pos < 4) {
    throw ArchiveTruncatedError("file ends inside the format version field");
  }
  const std::uint32_t version = static_cast<std::uint32_t>(data[pos]) |
                                (static_cast<std::uint32_t>(data[pos + 1]) << 8) |
                                (static_cast<std::uint32_t>(data[pos + 2]) << 16) |
                                (static_cast<std::uint32_t>(data[pos + 3]) << 24);
  pos += 4;
  if (version != kDeltaFormatVersion) {
    throw ArchiveVersionError("delta declares format version " +
                              std::to_string(version) + ", this reader speaks " +
                              std::to_string(kDeltaFormatVersion));
  }

  // Segment scan: whole-payload slices (deltas are small enough to hold in
  // memory, unlike .scw archives, which stream).
  std::map<DeltaSegmentId, std::span<const std::uint8_t>> segments;
  while (pos < data.size()) {
    const std::uint8_t id_byte = data[pos++];
    const std::uint64_t length = read_span_varint(data, pos);
    if (data.size() - pos < 4 || length > data.size() - pos - 4) {
      throw ArchiveTruncatedError(
          "segment at offset " + std::to_string(pos) + " declares " +
          std::to_string(length) + " payload bytes but only " +
          std::to_string(data.size() - pos) + " remain");
    }
    const auto payload = data.subspan(pos, static_cast<std::size_t>(length));
    pos += static_cast<std::size_t>(length);
    const std::uint32_t crc = static_cast<std::uint32_t>(data[pos]) |
                              (static_cast<std::uint32_t>(data[pos + 1]) << 8) |
                              (static_cast<std::uint32_t>(data[pos + 2]) << 16) |
                              (static_cast<std::uint32_t>(data[pos + 3]) << 24);
    pos += 4;
    if (!known_segment(id_byte)) continue;  // forward-compatible skip
    const auto id = static_cast<DeltaSegmentId>(id_byte);
    if (store::crc32(payload) != crc) {
      throw ArchiveCorruptError("segment " + to_string(id) + " CRC32 mismatch");
    }
    if (length == 0) {
      throw ArchiveCorruptError("segment " + to_string(id) +
                                " is empty (every dataset segment carries at "
                                "least its record count)");
    }
    if (!segments.emplace(id, payload).second) {
      throw ArchiveCorruptError("duplicate segment " + to_string(id));
    }
  }
  const auto require = [&](DeltaSegmentId id) {
    const auto it = segments.find(id);
    if (it == segments.end()) {
      throw ArchiveCorruptError("missing segment " + to_string(id));
    }
    return it->second;
  };

  WorldDelta delta;
  {
    SegmentCursor cursor(require(DeltaSegmentId::kMeta), DeltaSegmentId::kMeta);
    delta.meta = decode_meta(cursor.reader);
  }
  store::StringTable strings;
  {
    SegmentCursor cursor(require(DeltaSegmentId::kStrings),
                         DeltaSegmentId::kStrings);
    strings = store::StringTable::decode(cursor.reader);
  }
  {
    SegmentCursor cursor(require(DeltaSegmentId::kCtLogs),
                         DeltaSegmentId::kCtLogs);
    delta.ct = decode_ct(cursor);
  }
  {
    SegmentCursor cursor(require(DeltaSegmentId::kRevocations),
                         DeltaSegmentId::kRevocations);
    delta.revocations = decode_revocations(cursor);
  }
  {
    SegmentCursor cursor(require(DeltaSegmentId::kWhois),
                         DeltaSegmentId::kWhois);
    delta.registrations = decode_whois(cursor, strings);
  }
  {
    SegmentCursor cursor(require(DeltaSegmentId::kDns), DeltaSegmentId::kDns);
    delta.adns = decode_dns(cursor, strings);
  }
  {
    SegmentCursor cursor(require(DeltaSegmentId::kStats),
                         DeltaSegmentId::kStats);
    delta.stats = decode_stats(cursor);
  }
  return delta;
}

WorldDelta read_delta(const std::string& path,
                      obs::PipelineObserver* observer) {
  const obs::StageScope scope(observer, "feed_delta_load");
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ArchiveError("cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (static_cast<std::uint64_t>(in.gcount()) != size) {
    throw ArchiveTruncatedError(path + " ends before its reported size");
  }
  WorldDelta delta = read_delta_bytes(bytes);
  if (scope.enabled()) {
    scope.count("bytes_read", size);
    scope.count("ct_entries", delta.ct_entry_count());
    scope.count("revocations", delta.revocations.size());
    scope.count("registrations", delta.registrations.size());
    scope.count("dns_snapshots", delta.adns.size());
  }
  return delta;
}

}  // namespace stalecert::feed
