#include "stalecert/feed/extend.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "stalecert/feed/errors.hpp"
#include "stalecert/obs/observer.hpp"
#include "stalecert/sim/world.hpp"

namespace stalecert::feed {

namespace {

/// Key a revocation entry for set membership: fixed-width AKI then serial,
/// so no two distinct (AKI, serial) pairs share bytes.
std::string revocation_key(const revocation::RevocationStore::Entry& entry) {
  std::string key(entry.authority_key_id.begin(), entry.authority_key_id.end());
  key.append(entry.serial.begin(), entry.serial.end());
  return key;
}

std::string registration_key(const whois::NewRegistration& event) {
  std::string key = event.domain;
  key.push_back('|');
  key += std::to_string(event.creation_date.days_since_epoch());
  key.push_back('|');
  key += event.previous_creation_date
             ? std::to_string(event.previous_creation_date->days_since_epoch())
             : std::string("-");
  return key;
}

store::ArchiveMeta meta_of(const sim::World& world, const std::string& profile) {
  const sim::WorldConfig& config = world.config();
  store::ArchiveMeta meta;
  meta.profile = profile;
  meta.seed = config.seed;
  meta.start = config.start;
  meta.end = world.horizon();
  meta.revocation_cutoff = config.revocation_cutoff;
  meta.delegation_patterns = world.cloudflare_delegation_patterns();
  meta.managed_san_pattern = world.cloudflare_san_pattern();
  return meta;
}

}  // namespace

std::optional<sim::WorldConfig> config_for_profile(const std::string& profile,
                                                   std::uint64_t seed) {
  sim::WorldConfig config;
  if (profile == "small") {
    config = sim::small_test_config();
  } else if (profile != "default") {
    return std::nullopt;
  }
  config.seed = seed;
  return config;
}

std::string delta_file_name(const DeltaMeta& meta) {
  return "delta-" + meta.from_day.to_string() + "-" + meta.to_day.to_string() +
         ".scwd";
}

std::vector<WorldDelta> extend_world(const store::ArchiveMeta& base_meta,
                                     std::int64_t days,
                                     std::int64_t slice_days,
                                     obs::PipelineObserver* observer) {
  const obs::StageScope scope(observer, "feed_extend");
  if (days <= 0) throw FeedError("extend_world: day count must be positive");
  if (slice_days <= 0) {
    throw FeedError("extend_world: slice length must be positive");
  }
  const auto config = config_for_profile(base_meta.profile, base_meta.seed);
  if (!config) {
    throw FeedError("profile \"" + base_meta.profile +
                    "\" names no known recipe; deltas can only be generated "
                    "for regenerable archives (small, default)");
  }
  if (base_meta.end < config->end) {
    throw DeltaMismatchError(
        "base archive ends " + base_meta.end.to_string() +
        ", before the profile's configured horizon " + config->end.to_string());
  }

  sim::World world(*config);
  world.run();
  // Catch up to the base archive's horizon first: the base may itself have
  // been produced by an earlier extension round.
  if (base_meta.end > config->end) world.extend(base_meta.end - config->end);

  // The regenerated world must BE the base world; world_id covers every
  // lineage field (posture, patterns), so one comparison suffices.
  const std::uint64_t id = world_id(base_meta);
  if (world_id(meta_of(world, base_meta.profile)) != id) {
    throw DeltaMismatchError(
        "regenerating profile \"" + base_meta.profile + "\" seed " +
        std::to_string(base_meta.seed) +
        " does not reproduce the base archive's recipe");
  }

  // Watermarks: everything the base world already contains.
  std::unordered_map<std::uint64_t, std::size_t> log_sizes;
  for (const auto& log : world.ct_logs().logs()) {
    log_sizes[log.id()] = log.entries().size();
  }
  std::unordered_set<std::string> revocation_keys;
  for (const auto& entry : world.crl_collection().store().entries()) {
    revocation_keys.insert(revocation_key(entry));
  }
  std::unordered_set<std::string> registration_keys;
  for (const auto& event : world.whois().new_registrations()) {
    registration_keys.insert(registration_key(event));
  }
  std::size_t adns_days = world.adns().days();

  std::vector<WorldDelta> deltas;
  std::uint64_t ct_total = 0, revocation_total = 0, registration_total = 0,
                snapshot_total = 0;
  for (std::int64_t done = 0; done < days;) {
    const std::int64_t step = std::min(slice_days, days - done);
    const util::Date prev_horizon = world.horizon();
    world.extend(step);
    done += step;

    WorldDelta delta;
    delta.meta.base_world_id = id;
    delta.meta.profile = base_meta.profile;
    delta.meta.seed = base_meta.seed;
    delta.meta.from_day = prev_horizon + 1;
    delta.meta.to_day = world.horizon();

    for (const auto& log : world.ct_logs().logs()) {
      std::size_t& seen = log_sizes[log.id()];
      const auto& entries = log.entries();
      if (entries.size() == seen) continue;  // quiet logs are omitted
      CtLogDelta log_delta;
      log_delta.log_id = log.id();
      log_delta.base_entry_count = seen;
      log_delta.entries.assign(
          entries.begin() + static_cast<std::ptrdiff_t>(seen), entries.end());
      seen = entries.size();
      ct_total += log_delta.entries.size();
      delta.ct.push_back(std::move(log_delta));
    }
    for (const auto& entry : world.crl_collection().store().entries()) {
      if (revocation_keys.insert(revocation_key(entry)).second) {
        delta.revocations.push_back(entry);
      }
    }
    // new_registrations() is recomputed domain-sorted; the watermark set
    // (not an offset) extracts the additions. WHOIS history is append-only
    // per domain, so base events never mutate or disappear.
    for (const auto& event : world.whois().new_registrations()) {
      if (registration_keys.insert(registration_key(event)).second) {
        delta.registrations.push_back(event);
      }
    }
    for (std::size_t day = adns_days; day < world.adns().days(); ++day) {
      delta.adns.push_back(world.adns().day(day));
    }
    adns_days = world.adns().days();
    delta.stats = world.stats();

    revocation_total += delta.revocations.size();
    registration_total += delta.registrations.size();
    snapshot_total += delta.adns.size();
    deltas.push_back(std::move(delta));
  }

  if (scope.enabled()) {
    scope.count("slices", deltas.size());
    scope.count("ct_entries", ct_total);
    scope.count("revocations", revocation_total);
    scope.count("registrations", registration_total);
    scope.count("dns_snapshots", snapshot_total);
  }
  return deltas;
}

}  // namespace stalecert::feed
