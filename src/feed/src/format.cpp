#include "stalecert/feed/format.hpp"

#include "stalecert/store/wire.hpp"

namespace stalecert::feed {

std::string to_string(DeltaSegmentId id) {
  switch (id) {
    case DeltaSegmentId::kMeta: return "meta";
    case DeltaSegmentId::kStrings: return "strings";
    case DeltaSegmentId::kCtLogs: return "ct_logs";
    case DeltaSegmentId::kRevocations: return "revocations";
    case DeltaSegmentId::kWhois: return "whois";
    case DeltaSegmentId::kDns: return "dns";
    case DeltaSegmentId::kStats: return "stats";
  }
  return "segment#" + std::to_string(static_cast<unsigned>(id));
}

std::uint64_t world_id(const store::ArchiveMeta& meta) {
  // Canonical serialization of the lineage fields. `end` is deliberately
  // absent: extending a world moves its horizon, not its identity. The
  // encoding is length-prefixed throughout (ByteSink::str), so no two
  // distinct field tuples share bytes.
  store::ByteSink sink;
  sink.str(meta.profile);
  sink.varint(meta.seed);
  sink.date(meta.start);
  sink.u8(meta.revocation_cutoff ? 1 : 0);
  if (meta.revocation_cutoff) sink.date(*meta.revocation_cutoff);
  sink.varint(meta.delegation_patterns.size());
  for (const auto& pattern : meta.delegation_patterns) sink.str(pattern);
  sink.str(meta.managed_san_pattern);

  // FNV-1a 64.
  std::uint64_t hash = 14695981039346656037ull;
  for (const std::uint8_t byte : sink.data()) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace stalecert::feed
