#include "stalecert/feed/runtime.hpp"

#include <algorithm>
#include <filesystem>

#include "stalecert/core/pipeline.hpp"
#include "stalecert/feed/errors.hpp"
#include "stalecert/store/errors.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::feed {

namespace {

DeltaApplier make_applier(const std::string& archive_path,
                          obs::PipelineObserver* observer,
                          const std::optional<query::ShardScope>& scope) {
  store::LoadedWorld world = store::load_world(archive_path, observer);
  if (scope) world = query::apply_shard_filter(std::move(world), *scope);
  // Same posture as StalenessIndex::from_archive — the archive's own
  // cutoff and provider patterns — but keeping the LoadedWorld, which the
  // applier needs for its join state.
  core::PipelineConfig config;
  config.revocation_cutoff = world.meta.revocation_cutoff;
  config.delegation_patterns = world.meta.delegation_patterns;
  config.managed_san_pattern = world.meta.managed_san_pattern;
  config.observer = observer;
  core::PipelineResult result =
      core::run_pipeline(world.ct_logs, world.revocations,
                         world.re_registrations(), world.adns, config);
  auto index = std::make_shared<query::StalenessIndex>(std::move(result),
                                                       world.meta, observer);
  if (scope) index->set_ownership(scope->owns);
  return DeltaApplier(std::move(world),
                      std::shared_ptr<const query::StalenessIndex>(index),
                      observer);
}

}  // namespace

FeedRuntime::FeedRuntime(const std::string& archive_path,
                         obs::PipelineObserver* observer,
                         std::optional<query::ShardScope> scope)
    : archive_path_(archive_path),
      scope_(std::move(scope)),
      observer_(observer),
      applier_(make_applier(archive_path, observer, scope_)) {}

void FeedRuntime::reload() {
  // Build the replacement fully off-lock, then swap: a concurrent ingest
  // either lands on the old state (and is discarded with it) or on the
  // fresh one.
  DeltaApplier fresh = make_applier(archive_path_, observer_, scope_);
  const util::MutexLock lock(mutex_);
  applier_ = std::move(fresh);
}

query::IngestOutcome FeedRuntime::ingest(const query::IngestSource& source) {
  query::IngestOutcome outcome;
  try {
    const WorldDelta delta =
        source.path.empty()
            ? read_delta_bytes(std::span<const std::uint8_t>(
                  reinterpret_cast<const std::uint8_t*>(source.bytes.data()),
                  source.bytes.size()))
            : read_delta(source.path, observer_);
    const util::MutexLock lock(mutex_);
    const DeltaApplier::ApplyResult applied = applier_.apply(delta);
    outcome.ok = true;
    outcome.status = 200;
    outcome.index = applied.index;
    outcome.new_certificates = applied.new_certificates;
    outcome.new_stale_records = applied.new_stale_records;
    outcome.rebuilt = applied.rebuilt;
    outcome.feed_generation = applier_.deltas_applied();
    outcome.horizon = applier_.horizon().to_string();
  } catch (const DeltaMismatchError& e) {
    outcome.status = 409;
    outcome.message = e.what();
  } catch (const DeltaSequenceError& e) {
    outcome.status = 409;
    outcome.message = e.what();
  } catch (const store::ArchiveError& e) {
    outcome.status = 400;  // unreadable container: truncated/corrupt/version
    outcome.message = e.what();
  } catch (const std::exception& e) {
    outcome.status = 500;
    outcome.message = e.what();
  }
  return outcome;
}

std::vector<std::string> FeedRuntime::pending_deltas(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().extension() != ".scwd") continue;
    paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());

  const util::Date horizon = this->horizon();
  const std::uint64_t world = [this] {
    const util::MutexLock lock(mutex_);
    return applier_.base_world_id();
  }();
  std::vector<std::string> pending;
  for (const auto& path : paths) {
    try {
      const WorldDelta delta = read_delta(path, nullptr);
      if (delta.meta.base_world_id != world) continue;
      if (delta.meta.to_day <= horizon) continue;  // already applied
      pending.push_back(path);
    } catch (const std::exception&) {
      // Unreadable this round (possibly still being written): stays
      // pending until it parses.
    }
  }
  return pending;
}

std::size_t FeedRuntime::apply_directory(const std::string& dir,
                                         const std::string& origin) {
  std::size_t applied = 0;
  for (const auto& path : pending_deltas(dir)) {
    query::IngestSource source;
    source.path = path;
    source.origin = origin;
    if (!ingest(source).ok) break;
    ++applied;
  }
  return applied;
}

}  // namespace stalecert::feed
